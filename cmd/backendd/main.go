// Command backendd runs the backend database tier as a standalone TCP
// server — the remote DBMS of the paper's three-tier setup. Middle tiers
// connect with backend.Dial.
//
// Usage:
//
//	backendd -scale small -listen 127.0.0.1:7070
//	backendd -scale medium -data histsale.gob -sleep
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/chunk"
	"aggcache/internal/data"
	"aggcache/internal/sizer"
	"aggcache/internal/views"
)

func main() {
	var (
		scaleFlag  = flag.String("scale", "small", "dataset scale: tiny|small|medium|full")
		seedFlag   = flag.Int64("seed", 1, "generator seed (when -data is not given)")
		dataFlag   = flag.String("data", "", "fact table file from apbgen (optional)")
		listenFlag = flag.String("listen", "127.0.0.1:7070", "listen address")
		sleepFlag  = flag.Bool("sleep", false, "actually sleep the simulated backend latency")
		viewsFlag  = flag.Int("views", 0, "materialize up to this many greedy [HRU96] aggregate views")

		readTimeoutFlag  = flag.Duration("read-timeout", backend.DefaultTimeouts.Read, "idle deadline per connection awaiting the next request (0 = none)")
		writeTimeoutFlag = flag.Duration("write-timeout", backend.DefaultTimeouts.Write, "deadline for writing one response")
		reqTimeoutFlag   = flag.Duration("request-timeout", backend.DefaultTimeouts.Request, "compute deadline per request, replied as a transient error (0 = none)")
		maxFrameFlag     = flag.Int("wire-max-frame", 0, "max wire frame payload in bytes (0 = 64MiB default)")
		inFlightFlag     = flag.Int("wire-max-inflight", 0, "max concurrently served frames per connection (0 = 32 default)")
		busyLimitFlag    = flag.Int("busy-limit", 0, "max concurrently computed requests server-wide before shedding with a Busy reply (0 = unlimited)")
	)
	flag.Parse()

	scale, err := apb.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	cfg := apb.New(scale)
	grid, err := chunk.NewGrid(cfg.Schema, cfg.ChunkCounts)
	if err != nil {
		fatal(err)
	}
	var tab *data.Table
	if *dataFlag != "" {
		f, err := os.Open(*dataFlag)
		if err != nil {
			fatal(err)
		}
		tab, err = data.LoadTable(f, cfg.Schema)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		tab, err = data.Generate(cfg.Schema, data.Params{
			Rows: cfg.Rows, Density: cfg.Density, TimeDim: cfg.TimeDim, Seed: *seedFlag,
		})
		if err != nil {
			fatal(err)
		}
	}
	latency := backend.DefaultLatency
	latency.Sleep = *sleepFlag
	engine, err := backend.NewEngine(grid, tab, latency)
	if err != nil {
		fatal(err)
	}
	if *viewsFlag > 0 {
		sel, err := views.Greedy(grid, sizer.NewEstimate(grid, int64(tab.Len())), *viewsFlag, 0)
		if err != nil {
			fatal(err)
		}
		if err := engine.Materialize(sel.Views...); err != nil {
			fatal(err)
		}
		fmt.Printf("backendd: materialized %d views: %s\n", len(sel.Views), sel.Describe(grid.Lattice()))
	}
	srv := backend.NewServer(engine)
	srv.SetTimeouts(backend.Timeouts{
		Read:    *readTimeoutFlag,
		Write:   *writeTimeoutFlag,
		Request: *reqTimeoutFlag,
	})
	srv.SetMaxPayload(*maxFrameFlag)
	srv.SetMaxInFlight(*inFlightFlag)
	srv.SetBusyLimit(*busyLimitFlag)
	addr, err := srv.Listen(*listenFlag)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("backendd: %d rows (%s scale) serving on %s\n", tab.Len(), scale, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("backendd: shutting down")
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "backendd:", err)
	os.Exit(1)
}
