// Command aggbench reproduces the paper's evaluation: every table and
// figure of "Aggregate Aware Caching for Multi-Dimensional Queries"
// (Deshpande & Naughton, EDBT 2000), plus the Lemma checks and policy
// ablations listed in DESIGN.md.
//
// Usage:
//
//	aggbench -scale small -exp all
//	aggbench -scale medium -exp fig9 -queries 100
//	aggbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"aggcache/internal/apb"
	"aggcache/internal/bench"
)

func main() {
	var (
		scaleFlag   = flag.String("scale", "small", "dataset scale: tiny|small|medium|full")
		expFlag     = flag.String("exp", "all", "experiment id or 'all'")
		queriesFlag = flag.Int("queries", 100, "query stream length")
		seedFlag    = flag.Int64("seed", 1, "random seed for data and streams")
		budgetFlag  = flag.Int64("budget", 4_000_000, "node budget per exhaustive (ESM/ESMC) lookup; 0 = unlimited")
		fracFlag    = flag.String("fractions", "0.45,0.68,0.91,1.14", "cache sizes as fractions of the base table")
		widthFlag   = flag.Int("width", 2, "max query region width in chunks per dimension")
		csvFlag     = flag.String("csv", "", "also write each report's table as CSV into this directory")
		listFlag    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *listFlag {
		fmt.Println("experiments:", strings.Join(bench.IDs(), " "))
		return
	}

	scale, err := apb.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	fractions, err := parseFractions(*fracFlag)
	if err != nil {
		fatal(err)
	}
	cfg := bench.DefaultConfig(scale)
	cfg.Queries = *queriesFlag
	cfg.Seed = *seedFlag
	cfg.LookupBudget = *budgetFlag
	cfg.CacheFractions = fractions
	cfg.MaxQueryWidth = *widthFlag

	fmt.Printf("aggbench: scale=%v rows≈%d queries=%d seed=%d budget=%d\n",
		scale, apb.New(scale).Rows, cfg.Queries, cfg.Seed, cfg.LookupBudget)
	start := time.Now()
	env, err := bench.NewEnv(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset: %d rows, %d group-bys, %d chunks over all levels, base ≈ %s (built in %v)\n\n",
		env.Table.Len(), env.Grid.Lattice().NumNodes(), env.Grid.TotalChunks(),
		bench.SizeLabel(env.BaseBytes()), time.Since(start).Round(time.Millisecond))

	reports, err := bench.Run(env, *expFlag)
	if err != nil {
		fatal(err)
	}
	for _, r := range reports {
		fmt.Println(r.String())
		if *csvFlag != "" {
			if err := writeCSV(*csvFlag, r); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}

func writeCSV(dir string, r *bench.Report) error {
	if len(r.Header) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, r.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

func parseFractions(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad cache fraction %q", p)
		}
		out = append(out, f)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aggbench:", err)
	os.Exit(1)
}
