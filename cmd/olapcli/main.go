// Command olapcli is an interactive shell over an aggregate aware cache:
// type mdq queries (SUM(UnitSales) BY Product:Group, Time:Month WHERE ...)
// and watch whether each answer came from the cache, in-cache aggregation,
// or the backend.
//
// Usage:
//
//	olapcli -scale tiny
//	olapcli -scale small -strategy VCMC -cache-kb 512 -backend 127.0.0.1:7070
//
// Shell commands: \schema, \stats, \preload, \help, \quit.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/bench"
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/core"
	"aggcache/internal/data"
	"aggcache/internal/mdq"
	"aggcache/internal/metrics"
	"aggcache/internal/mtier"
	"aggcache/internal/sizer"
)

func main() {
	var (
		scaleFlag       = flag.String("scale", "tiny", "dataset scale: tiny|small|medium|full")
		seedFlag        = flag.Int64("seed", 1, "generator seed")
		stratFlag       = flag.String("strategy", "VCMC", "lookup strategy: ESM|ESMC|VCM|VCMC|NoAgg")
		cacheKBFlag     = flag.Int64("cache-kb", 256, "cache size in KB")
		shardsFlag      = flag.Int("cache-shards", 1, "cache shard count (power of two, max 64); 1 = single lock, 0 = auto (GOMAXPROCS)")
		backendFlag     = flag.String("backend", "", "remote backend address (empty = in-process)")
		rowsFlag        = flag.Int("rows", 20, "max result rows to print")
		maxFrame        = flag.Int("wire-max-frame", 0, "max wire frame payload in bytes for the remote backend (0 = 64MiB default)")
		peersFlag       = flag.String("peers", "", "comma-separated aggcached cluster addresses; local misses are peer-filled from the key's ring owner before the backend")
		recycleFlag     = flag.Bool("recycle", true, "benefit-driven recycling of intermediate aggregates (admits profitable interior roll-ups; uses the probation+promote replacement rings)")
		recycleMinFlag  = flag.Float64("recycle-min-benefit", core.DefaultRecycleMinBenefit, "recycler admission threshold in saved recompute cost per byte (0 = default)")
		resultCacheFlag = flag.Int("result-cache", 256, "semantic result-cache entries above the chunk cache (0 = disabled)")
		coldKBFlag      = flag.Int64("cold-kb", 0, "compressed in-RAM cold tier size in KB: hot-tier victims demote instead of dropping, and promote back on hit (0 = disabled)")
	)
	flag.Parse()

	scale, err := apb.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	cfg := apb.New(scale)
	grid, err := chunk.NewGrid(cfg.Schema, cfg.ChunkCounts)
	if err != nil {
		fatal(err)
	}

	var be backend.Backend
	var rows int
	if *backendFlag != "" {
		remote, err := backend.Dial(*backendFlag)
		if err != nil {
			fatal(err)
		}
		remote.SetMaxPayload(*maxFrame)
		be = remote
		rows = cfg.Rows // assume the server runs the same preset
		fmt.Printf("olapcli: using remote backend %s\n", *backendFlag)
	} else {
		tab, err := data.Generate(cfg.Schema, data.Params{
			Rows: cfg.Rows, Density: cfg.Density, TimeDim: cfg.TimeDim, Seed: *seedFlag,
		})
		if err != nil {
			fatal(err)
		}
		engine, err := backend.NewEngine(grid, tab, backend.DefaultLatency)
		if err != nil {
			fatal(err)
		}
		be = engine
		rows = tab.Len()
	}
	defer be.Close()

	sz := sizer.NewEstimate(grid, int64(rows))
	env := &bench.Env{Grid: grid, Sizer: sz} // reuse the strategy factory
	strat, err := env.NewStrategy(bench.StrategyName(*stratFlag), 2_000_000)
	if err != nil {
		fatal(err)
	}
	var copts []cache.Option
	if *shardsFlag != 1 {
		copts = append(copts, cache.WithShards(*shardsFlag))
	}
	// With recycling, replacement runs the probation+promote variant so
	// recycled intermediates earn their place via reuse.
	pol := cache.NewTwoLevel()
	if *recycleFlag {
		pol = cache.NewTwoLevelPromote()
	}
	c, err := cache.New(*cacheKBFlag<<10, pol, copts...)
	if err != nil {
		fatal(err)
	}
	if *coldKBFlag > 0 {
		tc, err := cache.NewTiered(c, *coldKBFlag<<10)
		if err != nil {
			fatal(err)
		}
		c = tc
		fmt.Printf("olapcli: cold tier enabled, %dKB compressed\n", *coldKBFlag)
	}
	// Cluster tier: with -peers, local misses consult the key's ring owner
	// in the aggcached group before the backend. Self is empty — the shell
	// is a pure client of the ring, every owner is remote — and the same
	// deterministic ring construction the servers use guarantees the shell
	// routes each key to the node that would own it.
	if *peersFlag != "" {
		var members []string
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				members = append(members, p)
			}
		}
		pc, err := cache.NewPeered(c, cache.PeeredConfig{
			Members: members,
			Dial:    func(addr string) cache.Peer { return mtier.NewPeerClient(addr, *maxFrame) },
		})
		if err != nil {
			fatal(err)
		}
		defer pc.Close()
		c = pc
		fmt.Printf("olapcli: cluster %s\n", pc.Ring())
	}
	eng, err := core.New(grid, c, strat, be, sz,
		core.WithRecycling(*recycleFlag),
		core.WithRecycleMinBenefit(*recycleMinFlag),
		core.WithResultCache(*resultCacheFlag))
	if err != nil {
		fatal(err)
	}

	fmt.Printf("olapcli: %s scale, %s strategy, %dKB cache. Type \\help for help.\n",
		scale, strat.Name(), *cacheKBFlag)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("mdq> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return
		case line == `\help`:
			printHelp(grid)
		case line == `\schema`:
			printSchema(grid)
		case line == `\stats`:
			printStats(eng)
		case strings.HasPrefix(line, `\explain `):
			explain(grid, eng, strings.TrimPrefix(line, `\explain `))
		case line == `\preload`:
			gb, ok, err := eng.Preload(context.Background())
			switch {
			case err != nil:
				fmt.Println("error:", err)
			case !ok:
				fmt.Println("no group-by fits the cache")
			default:
				fmt.Printf("preloaded %s (%d chunks, cache %dKB used)\n",
					grid.Lattice().LevelTupleString(gb), grid.NumChunks(gb), c.Used()>>10)
			}
		default:
			runQuery(grid, eng, line, *rowsFlag)
		}
		fmt.Print("mdq> ")
	}
}

func runQuery(grid *chunk.Grid, eng *core.Engine, line string, maxRows int) {
	q, agg, err := mdq.Compile(line, grid)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := eng.Execute(context.Background(), q)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(mdq.FormatResult(grid, res, agg, maxRows))
	source := "backend"
	if res.CompleteHit {
		source = "cache"
		if res.AggregatedTuples > 0 {
			source = "cache (aggregated)"
		}
	} else if res.PeerChunks == res.MissChunks {
		source = "peers"
	} else if res.PeerChunks > 0 {
		source = "backend+peers"
	}
	fmt.Printf("  [%s; %d hit / %d miss chunks; lookup %s agg %s update %s backend %s ms]\n",
		source, res.HitChunks, res.MissChunks,
		ms(res.Breakdown.Lookup), ms(res.Breakdown.Aggregate),
		ms(res.Breakdown.Update), ms(res.Breakdown.Backend))
}

func ms(d interface{ Nanoseconds() int64 }) string {
	return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e6)
}

func explain(grid *chunk.Grid, eng *core.Engine, src string) {
	q, _, err := mdq.Compile(src, grid)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	out, err := eng.Explain(q)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(out)
}

func printHelp(grid *chunk.Grid) {
	fmt.Println(`queries:  SUM|COUNT|AVG(UnitSales) BY Dim:Level[, Dim:Level...] [WHERE Dim:Level IN lo..hi [AND ...]]
commands: \schema         show dimensions and levels
          \preload        preload the best-fitting group-by (two-level policy)
          \explain <query> show the answer plan without executing
          \stats          engine counters
          \quit           exit`)
	fmt.Print("example:  ")
	sch := grid.Schema()
	d0 := sch.Dim(0)
	fmt.Printf("SUM(%s) BY %s:%s\n", sch.Measure(), d0.Name(), d0.LevelName(1))
}

func printSchema(grid *chunk.Grid) {
	sch := grid.Schema()
	for d := 0; d < sch.NumDims(); d++ {
		dim := sch.Dim(d)
		var lv []string
		for l := 0; l <= dim.Hierarchy(); l++ {
			lv = append(lv, fmt.Sprintf("%s(%d)", dim.LevelName(l), dim.Card(l)))
		}
		fmt.Printf("  %-10s %s\n", dim.Name(), strings.Join(lv, " > "))
	}
	fmt.Printf("  measure: %s; %d group-bys in the lattice\n", sch.Measure(), grid.Lattice().NumNodes())
}

func printStats(eng *core.Engine) {
	st := eng.Stats()
	fmt.Printf("  queries=%d complete-hits=%d backend-queries=%d backend-tuples=%d agg-tuples=%d\n",
		st.Queries, st.CompleteHits, st.BackendQueries, st.BackendTuples, st.AggTuples)
	fmt.Printf("  recycled=%d recycle-rejected=%d result-cache-hits=%d\n",
		st.Recycled, st.RecycleRejected, st.ResultCacheHits)
	if pc, ok := eng.Cache().(*cache.Peered); ok {
		ps := pc.PeerStats()
		fmt.Printf("  cluster: peer-chunks=%d fills=%d fill-misses=%d fill-errors=%d skips=%d\n",
			st.PeerChunks, ps.Fills, ps.FillMisses, ps.FillErrors, ps.FillSkips)
	}
	var b metrics.Breakdown = st.Breakdown
	fmt.Printf("  cumulative: %s\n", b.String())
	fmt.Printf("  cache: %d chunks, %dKB/%dKB\n",
		eng.Cache().Len(), eng.Cache().Used()>>10, eng.Cache().Capacity()>>10)
	if ts, ok := eng.TierStats(); ok {
		ratio := 1.0
		if ts.ColdUsed > 0 {
			ratio = float64(ts.ColdRawBytes) / float64(ts.ColdUsed)
		}
		fmt.Printf("  cold tier: %d chunks, %dKB/%dKB (%.1fx compressed), hits=%d promotes=%d demotes=%d denied=%d\n",
			ts.ColdChunks, ts.ColdUsed>>10, ts.ColdCapacity>>10, ratio,
			ts.ColdHits, ts.Promotes, ts.Demotes, ts.DemoteDenied)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "olapcli:", err)
	os.Exit(1)
}
