// Command apbgen generates an APB-1-style synthetic fact table (the paper's
// HistSale) and writes it to a gob file for cmd/backendd and the examples.
//
// Usage:
//
//	apbgen -scale medium -seed 7 -o histsale.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"aggcache/internal/apb"
	"aggcache/internal/data"
)

func main() {
	var (
		scaleFlag = flag.String("scale", "small", "dataset scale: tiny|small|medium|full")
		seedFlag  = flag.Int64("seed", 1, "generator seed")
		outFlag   = flag.String("o", "histsale.gob", "output file")
	)
	flag.Parse()

	scale, err := apb.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	cfg := apb.New(scale)
	tab, err := data.Generate(cfg.Schema, data.Params{
		Rows:    cfg.Rows,
		Density: cfg.Density,
		TimeDim: cfg.TimeDim,
		Seed:    *seedFlag,
	})
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*outFlag)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := data.SaveTable(f, tab); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("apbgen: wrote %d rows (%s scale, seed %d, ≈%d KB) to %s\n",
		tab.Len(), scale, *seedFlag, tab.Bytes()/1024, *outFlag)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apbgen:", err)
	os.Exit(1)
}
