// Command aggcached runs the middle tier as a standalone server: an
// aggregate aware chunk cache in front of a backend database, answering mdq
// queries from TCP clients (see internal/mtier for the protocol).
//
// Usage:
//
//	aggcached -scale small -listen 127.0.0.1:7071                  # in-process backend
//	aggcached -scale small -backend 127.0.0.1:7070 -preload        # against backendd
//	aggcached -scale small -ops 127.0.0.1:9090                     # + live observability
//	aggcached -backend 127.0.0.1:7070 -query-timeout 2s            # bounded queries
//	aggcached -listen 127.0.0.1:7071 \
//	          -peers 127.0.0.1:7071,127.0.0.1:7072                 # 2-node cluster member
//
// With -ops set, an HTTP listener serves /metrics (Prometheus text format),
// /healthz, /traces (recent query provenance as JSON) and /debug/pprof/.
//
// The backend path is fault tolerant: remote requests are retried with
// capped exponential backoff (-backend-attempts, -backend-backoff,
// -backend-io-timeout), a circuit breaker (-breaker-threshold,
// -breaker-cooldown) fails fast once the backend is down, and while it is
// open the cache keeps answering every cache-computable query (degraded
// mode — /healthz stays 200 and says so).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/bench"
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/core"
	"aggcache/internal/data"
	"aggcache/internal/mtier"
	"aggcache/internal/obs"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
	"aggcache/internal/wire"
)

func main() {
	var (
		scaleFlag       = flag.String("scale", "small", "dataset scale: tiny|small|medium|full")
		seedFlag        = flag.Int64("seed", 1, "generator seed (in-process backend)")
		stratFlag       = flag.String("strategy", "VCMC", "lookup strategy: ESM|ESMC|VCM|VCMC|NoAgg")
		cacheKBFlag     = flag.Int64("cache-kb", 512, "cache size in KB")
		shardsFlag      = flag.Int("cache-shards", 1, "cache shard count (power of two, max 64); 1 = single lock, 0 = auto (GOMAXPROCS)")
		backendFlag     = flag.String("backend", "", "remote backend address (empty = in-process)")
		listenFlag      = flag.String("listen", "127.0.0.1:7071", "listen address")
		preloadFlag     = flag.Bool("preload", false, "preload the best-fitting group-by before serving")
		bypassFlag      = flag.Bool("cost-bypass", false, "enable the §5.2 cost-based cache/backend routing")
		recycleFlag     = flag.Bool("recycle", true, "benefit-driven recycling of intermediate aggregates (admits profitable interior roll-ups; uses the probation+promote replacement rings)")
		recycleMinFlag  = flag.Float64("recycle-min-benefit", core.DefaultRecycleMinBenefit, "recycler admission threshold in saved recompute cost per byte (0 = default)")
		resultCacheFlag = flag.Int("result-cache", 256, "semantic result-cache entries above the chunk cache (0 = disabled)")
		coldKBFlag      = flag.Int64("cold-kb", 0, "compressed in-RAM cold tier size in KB: hot-tier victims are demoted (delta/varint-encoded) instead of dropped, and promoted back on hit (0 = disabled)")
		snapDirFlag     = flag.String("snapshot-dir", "", "snapshot directory: cache.snap inside it is loaded at startup (warm restart) and written on SIGINT/SIGTERM and every -snapshot-interval")
		snapIntFlag     = flag.Duration("snapshot-interval", 0, "periodic cache snapshot flush interval (0 = flush on shutdown only; needs -snapshot-dir)")
		opsFlag         = flag.String("ops", "", "ops HTTP listen address serving /metrics, /healthz, /traces and /debug/pprof (empty = disabled)")
		tracesFlag      = flag.Int("traces", obs.DefaultTraceDepth, "query traces retained for /traces")

		queryTimeoutFlag = flag.Duration("query-timeout", 0, "per-query execution deadline (0 = unbounded)")
		attemptsFlag     = flag.Int("backend-attempts", backend.DefaultRetryPolicy.MaxAttempts, "tries per remote backend request, including the first")
		backoffFlag      = flag.Duration("backend-backoff", backend.DefaultRetryPolicy.BaseBackoff, "base backoff before the first remote retry (doubles, jittered, capped)")
		ioTimeoutFlag    = flag.Duration("backend-io-timeout", backend.DefaultRetryPolicy.IOTimeout, "wire deadline per remote backend exchange")
		brkThreshFlag    = flag.Int("breaker-threshold", 5, "consecutive backend failures that open the circuit breaker (0 = breaker disabled)")
		brkCooldownFlag  = flag.Duration("breaker-cooldown", 2*time.Second, "how long the breaker stays open before probing the backend")

		maxFrameFlag    = flag.Int("wire-max-frame", 0, "max wire frame payload in bytes, both tiers (0 = 64MiB default)")
		inFlightFlag    = flag.Int("wire-max-inflight", 0, "max concurrently served frames per client connection (0 = 32 default)")
		clientReadFlag  = flag.Duration("client-read-timeout", mtier.DefaultTimeouts.Read, "idle deadline per client connection awaiting the next query (0 = none)")
		clientWriteFlag = flag.Duration("client-write-timeout", mtier.DefaultTimeouts.Write, "deadline for writing one response to a client")

		admitMaxFlag    = flag.Int("admit-max", 0, "execution slots for the server-wide admission queue (0 = admission control disabled)")
		admitQueueFlag  = flag.Int("admit-queue", 0, "queued queries beyond the slots before shedding (0 = 4x -admit-max)")
		admitWaitFlag   = flag.Duration("admit-max-wait", 0, "longest a query may wait for a slot before being shed (0 = 250ms)")
		tenantQPSFlag   = flag.Float64("tenant-qps", 0, "admitted queries/sec per tenant (0 = unlimited)")
		tenantBurstFlag = flag.Int("tenant-burst", 0, "per-tenant qps burst size (0 = 2x -tenant-qps)")
		tenantBytesFlag = flag.Float64("tenant-bytes-per-sec", 0, "response bytes/sec per tenant, charged after encoding (0 = unlimited)")

		peersFlag     = flag.String("peers", "", "comma-separated cluster membership (aggcached listen addresses, including this node's own); empty = no cluster tier")
		peerSelfFlag  = flag.String("peer-self", "", "this node's address as it appears in -peers (default: the -listen address)")
		peersFileFlag = flag.String("peers-file", "", "file with one peer address per line, merged with -peers at startup and re-read on SIGHUP to rebuild the ring")
	)
	flag.Parse()

	scale, err := apb.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	cfg := apb.New(scale)
	grid, err := chunk.NewGrid(cfg.Schema, cfg.ChunkCounts)
	if err != nil {
		fatal(err)
	}

	// Observability: one registry and trace ring shared by every tier of
	// the process; disabled entirely (nil bundles, no overhead) without -ops.
	var reg *obs.Registry
	var ring *obs.TraceRing
	if *opsFlag != "" {
		reg = obs.NewRegistry()
		ring = obs.NewTraceRing(*tracesFlag)
	}

	var be backend.Backend
	rows := cfg.Rows
	if *backendFlag != "" {
		pol := backend.DefaultRetryPolicy
		pol.MaxAttempts = *attemptsFlag
		pol.BaseBackoff = *backoffFlag
		pol.IOTimeout = *ioTimeoutFlag
		remote, err := backend.DialPolicy(*backendFlag, pol)
		if err != nil {
			fatal(err)
		}
		remote.SetMaxPayload(*maxFrameFlag)
		if reg != nil {
			remote.SetMetrics(obs.NewRemoteMetrics(reg))
		}
		be = remote
		fmt.Printf("aggcached: using remote backend %s (%d attempts, %v base backoff)\n",
			*backendFlag, pol.MaxAttempts, pol.BaseBackoff)
	} else {
		tab, err := data.Generate(cfg.Schema, data.Params{
			Rows: cfg.Rows, Density: cfg.Density, TimeDim: cfg.TimeDim, Seed: *seedFlag,
		})
		if err != nil {
			fatal(err)
		}
		rows = tab.Len()
		engine, err := backend.NewEngine(grid, tab, backend.DefaultLatency)
		if err != nil {
			fatal(err)
		}
		if reg != nil {
			engine.SetMetrics(obs.NewBackendMetrics(reg))
		}
		be = engine
	}
	if *brkThreshFlag > 0 {
		brk := backend.NewBreaker(be, backend.BreakerConfig{
			FailureThreshold: *brkThreshFlag,
			Cooldown:         *brkCooldownFlag,
		})
		if reg != nil {
			brk.SetMetrics(obs.NewBreakerMetrics(reg))
		}
		be = brk
	}
	defer be.Close()

	sz := sizer.NewEstimate(grid, int64(rows))
	env := &bench.Env{Grid: grid, Sizer: sz}
	strat, err := env.NewStrategy(bench.StrategyName(*stratFlag), 2_000_000)
	if err != nil {
		fatal(err)
	}
	if reg != nil {
		strat = strategy.Instrument(strat, obs.NewStrategyMetrics(reg, strat.Name()))
	}
	var copts []cache.Option
	if *shardsFlag != 1 {
		copts = append(copts, cache.WithShards(*shardsFlag))
	}
	if reg != nil {
		copts = append(copts, cache.WithMetrics(obs.NewCacheMetrics(reg)))
	}
	// With recycling, replacement runs the probation+promote variant:
	// recycled intermediates enter a probationary ring and only reuse
	// (Reinforce) moves them next to the proven working set.
	pol := cache.NewTwoLevel()
	if *recycleFlag {
		pol = cache.NewTwoLevelPromote()
	}
	c, err := cache.New(*cacheKBFlag<<10, pol, copts...)
	if err != nil {
		fatal(err)
	}

	// Tiered storage: hot-tier victims demote into a compressed in-RAM cold
	// tier and promote back (into the protected ring) on hit. The cluster
	// tier, when configured below, wraps the tiered store so peer fills land
	// through the same demotion path.
	var tc *cache.Tiered
	if *coldKBFlag > 0 {
		tc, err = cache.NewTiered(c, *coldKBFlag<<10)
		if err != nil {
			fatal(err)
		}
		if reg != nil {
			tc.SetTierMetrics(obs.NewTierMetrics(reg))
		}
		c = tc
		fmt.Printf("aggcached: cold tier enabled, %dKB compressed\n", *coldKBFlag)
	}

	// Cluster tier: compose the local store with the consistent-hash peer
	// ring. The engine sees one cache.Store; misses route to the key's ring
	// owner before the backend (see DESIGN.md §12).
	var pc *cache.Peered
	if *peersFlag != "" || *peersFileFlag != "" {
		members := splitPeers(*peersFlag)
		if *peersFileFlag != "" {
			fm, err := readPeersFile(*peersFileFlag)
			if err != nil {
				fatal(err)
			}
			members = append(members, fm...)
		}
		self := *peerSelfFlag
		if self == "" {
			self = *listenFlag
		}
		pcfg := cache.PeeredConfig{
			Self:    self,
			Members: members,
			Dial:    func(addr string) cache.Peer { return mtier.NewPeerClient(addr, *maxFrameFlag) },
		}
		if reg != nil {
			pcfg.Metrics = func(peer string) obs.PeerMetrics { return obs.NewPeerMetrics(reg, peer) }
		}
		pc, err = cache.NewPeered(c, pcfg)
		if err != nil {
			fatal(err)
		}
		c = pc
		fmt.Printf("aggcached: cluster %s, self=%s\n", pc.Ring(), self)
	}

	eopts := []core.Option{
		core.WithCostBypass(*bypassFlag),
		core.WithRecycling(*recycleFlag),
		core.WithRecycleMinBenefit(*recycleMinFlag),
		core.WithResultCache(*resultCacheFlag),
	}
	if reg != nil {
		eopts = append(eopts, core.WithMetrics(obs.NewEngineMetrics(reg)))
	}
	eng, err := core.New(grid, c, strat, be, sz, eopts...)
	if err != nil {
		fatal(err)
	}
	snapPath := ""
	if *snapDirFlag != "" {
		if err := os.MkdirAll(*snapDirFlag, 0o755); err != nil {
			fatal(err)
		}
		snapPath = filepath.Join(*snapDirFlag, "cache.snap")
		n, lerr := eng.LoadCacheFile(snapPath)
		switch {
		case lerr == nil:
			fmt.Printf("aggcached: warm restart, %d chunks from %s\n", n, snapPath)
		case errors.Is(lerr, os.ErrNotExist):
			// First boot: nothing to restore.
		case errors.Is(lerr, cache.ErrSnapshot) && n > 0:
			// Torn tail or flipped bit mid-log: a partially warm cache beats
			// a cold one, so keep the valid prefix and move on.
			fmt.Fprintf(os.Stderr, "aggcached: partial warm restart, %d chunks from %s (%v)\n", n, snapPath, lerr)
		default:
			fatal(lerr)
		}
	}
	if *preloadFlag && c.Len() == 0 {
		if gb, ok, err := eng.Preload(context.Background()); err != nil {
			fatal(err)
		} else if ok {
			fmt.Printf("aggcached: preloaded %s (%d chunks)\n",
				grid.Lattice().LevelTupleString(gb), grid.NumChunks(gb))
		}
	}

	srv := mtier.NewServer(eng)
	srv.SetQueryTimeout(*queryTimeoutFlag)
	srv.SetTimeouts(wire.Timeouts{Read: *clientReadFlag, Write: *clientWriteFlag})
	srv.SetMaxPayload(*maxFrameFlag)
	srv.SetMaxInFlight(*inFlightFlag)
	if *admitMaxFlag > 0 {
		srv.SetAdmission(mtier.AdmissionConfig{
			MaxConcurrent:     *admitMaxFlag,
			MaxQueue:          *admitQueueFlag,
			MaxWait:           *admitWaitFlag,
			TenantQPS:         *tenantQPSFlag,
			TenantBurst:       *tenantBurstFlag,
			TenantBytesPerSec: *tenantBytesFlag,
		})
		queue, wait := *admitQueueFlag, *admitWaitFlag
		if queue <= 0 {
			queue = 4 * *admitMaxFlag
		}
		if wait <= 0 {
			wait = 250 * time.Millisecond
		}
		fmt.Printf("aggcached: admission control: %d slots, queue %d, max wait %v\n",
			*admitMaxFlag, queue, wait)
	}
	if reg != nil {
		srv.SetObs(reg, ring)
	}
	addr, err := srv.Listen(*listenFlag)
	if err != nil {
		fatal(err)
	}
	shards := 1
	if sh, ok := c.(interface{ Shards() int }); ok {
		shards = sh.Shards()
	}
	fmt.Printf("aggcached: %s scale, %s strategy, %dKB cache (%d shard(s)), serving on %s\n",
		scale, strat.Name(), *cacheKBFlag, shards, addr)
	if *opsFlag != "" {
		opsAddr, err := srv.ServeOps(*opsFlag)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("aggcached: ops endpoint on http://%s/metrics\n", opsAddr)
	}

	// SIGHUP reloads the cluster membership from -peers-file and rebuilds
	// the ring in place; traffic in flight routes by whichever ring it
	// loaded first.
	if pc != nil && *peersFileFlag != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				members, err := readPeersFile(*peersFileFlag)
				if err != nil {
					fmt.Fprintln(os.Stderr, "aggcached: peers reload:", err)
					continue
				}
				if err := pc.Rebuild(members); err != nil {
					fmt.Fprintln(os.Stderr, "aggcached: peers reload:", err)
					continue
				}
				fmt.Printf("aggcached: peer ring rebuilt: %s\n", pc.Ring())
			}
		}()
	}

	// Periodic snapshot flush: every interval the cache is re-snapshotted
	// atomically (temp + rename), so a later crash restarts warm from the
	// last flush rather than only from a clean shutdown.
	flushDone := make(chan struct{})
	if snapPath != "" && *snapIntFlag > 0 {
		ticker := time.NewTicker(*snapIntFlag)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if _, err := eng.SaveCacheFile(snapPath); err != nil {
						fmt.Fprintln(os.Stderr, "aggcached: snapshot flush:", err)
					}
				case <-flushDone:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(flushDone)
	fmt.Println("aggcached: shutting down")
	st := eng.Stats()
	fmt.Printf("aggcached: served %d queries, %d complete hits, %d backend trips\n",
		st.Queries, st.CompleteHits, st.BackendQueries)
	if ts, ok := eng.TierStats(); ok {
		fmt.Printf("aggcached: cold tier: %d hits, %d promotes, %d demotes (%d denied), %d/%d bytes holding %d raw\n",
			ts.ColdHits, ts.Promotes, ts.Demotes, ts.DemoteDenied, ts.ColdUsed, ts.ColdCapacity, ts.ColdRawBytes)
	}
	if pc != nil {
		ps := pc.PeerStats()
		fmt.Printf("aggcached: cluster: %d peer fills, %d fill misses, %d fill errors, %d puts\n",
			ps.Fills, ps.FillMisses, ps.FillErrors, ps.Puts)
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	if pc != nil {
		pc.Close()
	}
	if snapPath != "" {
		n, err := eng.SaveCacheFile(snapPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("aggcached: cache snapshot written to %s (%d chunks)\n", snapPath, n)
	}
}

// splitPeers parses a comma-separated peer list, dropping empty entries.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// readPeersFile reads one peer address per line; blank lines and #-comments
// are skipped.
func readPeersFile(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("peers file: %w", err)
	}
	var out []string
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aggcached:", err)
	os.Exit(1)
}
