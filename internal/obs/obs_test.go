package obs

import (
	"bufio"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("y_bytes", "help")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	// Re-registering returns the same metric.
	if r.Counter("x_total", "help") != c {
		t.Fatalf("re-registration created a new counter")
	}
	// Nil handles are no-ops.
	var nc *Counter
	nc.Inc()
	nc.Add(3)
	var ng *Gauge
	ng.Set(1)
	var nh *Histogram
	nh.Observe(time.Second)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 || nh.Quantile(0.5) != 0 {
		t.Fatalf("nil metrics recorded something")
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("kind clash did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 samples of exactly 1ms: every quantile must land within the
	// power-of-two bucket holding 1ms, i.e. [2^19, 2^20) ns.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := h.Quantile(q)
		if got < 512*time.Microsecond || got > 1049*time.Microsecond {
			t.Fatalf("Quantile(%v) = %v outside the 1ms bucket", q, got)
		}
	}
	if h.Count() != 100 || h.Sum() != 100*time.Millisecond {
		t.Fatalf("count/sum = %d/%v", h.Count(), h.Sum())
	}
	// Quantiles are monotone in q.
	if h.Quantile(0.99) < h.Quantile(0.5) {
		t.Fatalf("p99 < p50")
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines (run
// with -race) and checks the quantile estimates stay sane: a uniform spread
// over [1ms, 10ms] must put p50 and p99 inside that range with log-bucket
// slack.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Deterministic spread over [1ms, 10ms].
				v := time.Millisecond + time.Duration(i%10)*time.Millisecond
				h.Observe(v)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < time.Millisecond || p50 > 10*time.Millisecond {
		t.Fatalf("p50 = %v outside [1ms, 10ms]", p50)
	}
	// 10ms lives in the [8.39ms, 16.78ms) bucket; interpolation may land
	// anywhere inside it.
	if p99 < p50 || p99 > 17*time.Millisecond {
		t.Fatalf("p99 = %v (p50 = %v)", p99, p50)
	}
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf|NaN)$`)

// TestWritePrometheusParses renders a populated registry and checks every
// line is either a comment or a well-formed sample, histograms included.
func TestWritePrometheusParses(t *testing.T) {
	r := NewRegistry()
	em := NewEngineMetrics(r)
	cm := NewCacheMetrics(r)
	sm := NewStrategyMetrics(r, "VCMC")
	bm := NewBackendMetrics(r)
	vm := NewServerMetrics(r)
	r.GaugeFunc("custom_ratio", "computed at scrape", func() float64 { return 0.25 })

	em.Queries.Add(3)
	em.Lookup.Observe(100 * time.Microsecond)
	em.Lookup.Observe(3 * time.Millisecond)
	cm.OccupancyBytes.Set(1 << 20)
	cm.EvictionsPolicy.Add(2)
	cm.EvictionsAdmin.Inc()
	sm.Finds.Add(7)
	sm.FindLatency.Observe(40 * time.Microsecond)
	bm.Requests.Inc()
	bm.Wall.Observe(2 * time.Millisecond)
	vm.Latency.Observe(5 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	samples := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(out))
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		lines++
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %d: %q", lines, line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad value on line %q: %v", line, err)
		}
		samples[m[1]+m[2]] = v
	}
	for _, want := range []string{
		"aggcache_engine_queries_total",
		"aggcache_cache_occupancy_bytes",
		`aggcache_cache_evictions_total{cause="policy"}`,
		`aggcache_cache_evictions_total{cause="admin"}`,
		`aggcache_strategy_find_total{strategy="VCMC"}`,
		"aggcache_engine_lookup_seconds_count",
		"aggcache_backend_request_seconds_sum",
		"custom_ratio",
	} {
		if _, ok := samples[want]; !ok {
			t.Fatalf("missing sample %q in output:\n%s", want, out)
		}
	}
	if samples["aggcache_engine_queries_total"] != 3 {
		t.Fatalf("queries_total = %v", samples["aggcache_engine_queries_total"])
	}
	if samples["aggcache_engine_lookup_seconds_count"] != 2 {
		t.Fatalf("lookup count = %v", samples["aggcache_engine_lookup_seconds_count"])
	}
	// Histogram buckets must be cumulative (non-decreasing) and end at +Inf
	// equal to the count.
	var prev float64 = -1
	inf := 0.0
	sc = bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "aggcache_engine_lookup_seconds_bucket") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		v, _ := strconv.ParseFloat(m[3], 64)
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = v
		if strings.Contains(m[2], "+Inf") {
			inf = v
		}
	}
	if inf != 2 {
		t.Fatalf("+Inf bucket = %v, want 2", inf)
	}
}

func TestTraceRingTruncates(t *testing.T) {
	r := NewTraceRing(64)
	for i := 0; i < 1000; i++ {
		id := r.Add(QueryTrace{Query: fmt.Sprintf("q%d", i)})
		if id != uint64(i+1) {
			t.Fatalf("Add returned id %d, want %d", id, i+1)
		}
	}
	got := r.Snapshot()
	if len(got) != 64 {
		t.Fatalf("snapshot kept %d traces, want 64", len(got))
	}
	if r.Total() != 1000 {
		t.Fatalf("total = %d", r.Total())
	}
	for i, tr := range got {
		wantID := uint64(1000 - 64 + i + 1)
		if tr.ID != wantID {
			t.Fatalf("trace %d has id %d, want %d (oldest-first order)", i, tr.ID, wantID)
		}
		if tr.Query != fmt.Sprintf("q%d", wantID-1) {
			t.Fatalf("trace %d payload %q does not match id %d", i, tr.Query, wantID)
		}
	}
	// A short ring still works before wrapping.
	r2 := NewTraceRing(8)
	r2.Add(QueryTrace{})
	r2.Add(QueryTrace{})
	if got := r2.Snapshot(); len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("partial ring snapshot: %+v", got)
	}
	// Nil ring is inert.
	var nr *TraceRing
	if nr.Add(QueryTrace{}) != 0 || nr.Snapshot() != nil || nr.Total() != 0 {
		t.Fatalf("nil ring not inert")
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(32)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add(QueryTrace{Outcome: "ok"})
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if r.Total() != 2000 {
		t.Fatalf("total = %d, want 2000", r.Total())
	}
	if got := len(r.Snapshot()); got != 32 {
		t.Fatalf("snapshot length = %d", got)
	}
}
