package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// NewHandler builds the ops endpoint mux:
//
//	/metrics       Prometheus text exposition of reg
//	/healthz       200 "ok" while healthy() is true, 503 otherwise
//	/traces        recent query traces from ring as JSON (?n=K for the last K)
//	/debug/pprof/  the standard runtime profiles
//
// reg and ring may be nil; healthy may be nil (always healthy). The handler
// performs no locking beyond the registry's own, so it is safe to serve
// while the instrumented system runs at full speed.
func NewHandler(reg *Registry, ring *TraceRing, healthy func() bool) http.Handler {
	if healthy == nil {
		return NewStatusHandler(reg, ring, nil)
	}
	return NewStatusHandler(reg, ring, func() (bool, string) { return healthy(), "" })
}

// NewStatusHandler is NewHandler with a richer health probe: status returns
// (healthy, detail). /healthz responds 200 while healthy — with "ok" plus
// the detail line, so a server running in cache-only degraded mode can say
// so without failing its liveness check — and 503 with the detail
// otherwise.
func NewStatusHandler(reg *Registry, ring *TraceRing, status func() (bool, string)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			_ = reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		ok, detail := true, ""
		if status != nil {
			ok, detail = status()
		}
		if !ok {
			if detail == "" {
				detail = "closed"
			}
			http.Error(w, detail, http.StatusServiceUnavailable)
			return
		}
		if detail != "" {
			fmt.Fprintf(w, "ok %s\n", detail)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		traces := ring.Snapshot()
		if s := r.URL.Query().Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if n < len(traces) {
				traces = traces[len(traces)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Total  uint64       `json:"total"`
			Traces []QueryTrace `json:"traces"`
		}{Total: ring.Total(), Traces: traces})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// OpsServer is a running ops HTTP listener.
type OpsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server for h on addr (host:port; port 0 picks a free
// one) and returns once the listener is bound.
func Serve(addr string, h http.Handler) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	o := &OpsServer{ln: ln, srv: &http.Server{Handler: h}}
	go func() { _ = o.srv.Serve(ln) }()
	return o, nil
}

// Addr returns the bound address.
func (o *OpsServer) Addr() string { return o.ln.Addr().String() }

// Close stops the listener and closes open connections.
func (o *OpsServer) Close() error {
	if o == nil {
		return nil
	}
	return o.srv.Close()
}
