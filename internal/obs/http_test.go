package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	em := NewEngineMetrics(reg)
	em.Queries.Add(5)
	em.Lookup.Observe(250 * time.Microsecond)
	ring := NewTraceRing(4)
	for i := 0; i < 6; i++ {
		ring.Add(QueryTrace{Query: "SUM(UnitSales) BY Time:Year", Outcome: "ok"})
	}
	var healthy atomic.Bool
	healthy.Store(true)
	h := NewHandler(reg, ring, healthy.Load)
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, "aggcache_engine_queries_total 5") ||
		!strings.Contains(body, "aggcache_engine_lookup_seconds_count 1") {
		t.Fatalf("/metrics: code %d body:\n%s", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz healthy: %d %q", code, body)
	}
	healthy.Store(false)
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after close: code %d, want 503", code)
	}

	code, body := get("/traces")
	if code != 200 {
		t.Fatalf("/traces: code %d", code)
	}
	var tr struct {
		Total  uint64       `json:"total"`
		Traces []QueryTrace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("/traces JSON: %v\n%s", err, body)
	}
	if tr.Total != 6 || len(tr.Traces) != 4 {
		t.Fatalf("/traces total=%d len=%d, want 6/4", tr.Total, len(tr.Traces))
	}
	if _, body := get("/traces?n=2"); !strings.Contains(body, `"id": 6`) || strings.Contains(body, `"id": 4`) {
		t.Fatalf("/traces?n=2 did not trim to the most recent: %s", body)
	}
	if code, _ := get("/traces?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("/traces?n=bogus: code %d", code)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code %d", code)
	}
}

// TestHandlerNilParts: the handler must serve with no registry, ring or
// health callback wired.
func TestHandlerNilParts(t *testing.T) {
	srv := httptest.NewServer(NewHandler(nil, nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/healthz", "/traces"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: code %d", path, resp.StatusCode)
		}
	}
}

func TestServeAndClose(t *testing.T) {
	o, err := Serve("127.0.0.1:0", NewHandler(nil, nil, nil))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	resp, err := http.Get("http://" + o.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if err := o.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + o.Addr() + "/healthz"); err == nil {
		t.Fatalf("ops listener still serving after Close")
	}
	var nilSrv *OpsServer
	if err := nilSrv.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}
