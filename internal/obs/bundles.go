package obs

import "fmt"

// This file defines the metric bundles the instrumented components record
// into. Each bundle is a plain struct of metric handles; the zero value
// (all-nil handles) is valid and records nothing, so components hold a
// bundle by value and stay dependency-free of the registry itself. The
// exported metric names below are the observability contract documented in
// DESIGN.md §7.

// EngineMetrics instruments core.Engine: query counts and outcomes, chunk
// provenance, singleflight behavior, and the Figure-10 phase latencies.
type EngineMetrics struct {
	Queries      *Counter
	QueryErrors  *Counter
	CompleteHits *Counter
	BudgetMisses *Counter
	Bypassed     *Counter

	ChunksHit        *Counter
	ChunksAggregated *Counter
	ChunksFetched    *Counter
	ChunksPeerFilled *Counter

	AggregatedTuples *Counter
	BackendTuples    *Counter
	BackendRequests  *Counter

	FlightLeaderChunks   *Counter
	FlightFollowerChunks *Counter

	DegradedAnswers    *Counter
	BackendUnavailable *Counter
	DeadlineExceeded   *Counter

	RecycledChunks  *Counter
	RecycleRejected *Counter
	ResultCacheHits *Counter

	Lookup    *Histogram
	Aggregate *Histogram
	Update    *Histogram
	Backend   *Histogram
	Query     *Histogram
}

// NewEngineMetrics registers the engine metric set on r.
func NewEngineMetrics(r *Registry) EngineMetrics {
	return EngineMetrics{
		Queries:      r.Counter("aggcache_engine_queries_total", "Queries executed by the cache engine."),
		QueryErrors:  r.Counter("aggcache_engine_query_errors_total", "Queries that failed inside the engine."),
		CompleteHits: r.Counter("aggcache_engine_complete_hits_total", "Queries answered without any backend access."),
		BudgetMisses: r.Counter("aggcache_engine_budget_misses_total", "Chunk lookups abandoned because the strategy exhausted its node budget."),
		Bypassed:     r.Counter("aggcache_engine_bypassed_chunks_total", "Cache-computable chunks routed to the backend by the cost-based optimizer."),

		ChunksHit:        r.Counter("aggcache_engine_chunks_hit_total", "Chunks answered directly by a resident cache entry."),
		ChunksAggregated: r.Counter("aggcache_engine_chunks_aggregated_total", "Chunks computed by aggregating other cached chunks."),
		ChunksFetched:    r.Counter("aggcache_engine_chunks_fetched_total", "Chunks fetched from the backend (cache misses)."),
		ChunksPeerFilled: r.Counter("aggcache_engine_chunks_peer_filled_total", "Missing chunks served by a cluster peer instead of the backend."),

		AggregatedTuples: r.Counter("aggcache_engine_aggregated_tuples_total", "Tuples scanned by in-cache aggregation."),
		BackendTuples:    r.Counter("aggcache_engine_backend_tuples_total", "Tuples scanned at the backend on behalf of this engine."),
		BackendRequests:  r.Counter("aggcache_engine_backend_requests_total", "Batched backend requests issued."),

		FlightLeaderChunks:   r.Counter("aggcache_engine_flight_leader_chunks_total", "Missing chunks this engine fetched as singleflight leader."),
		FlightFollowerChunks: r.Counter("aggcache_engine_flight_follower_chunks_total", "Missing chunks satisfied by waiting on another query's in-flight fetch."),

		DegradedAnswers:    r.Counter("aggcache_engine_degraded_answers_total", "Queries answered from the cache alone while the backend circuit breaker was not closed."),
		BackendUnavailable: r.Counter("aggcache_engine_backend_unavailable_total", "Queries failed fast with ErrBackendUnavailable (circuit open or retry budget exhausted)."),
		DeadlineExceeded:   r.Counter("aggcache_engine_deadline_exceeded_total", "Queries that failed because their context deadline expired."),

		RecycledChunks:  r.Counter("aggcache_engine_recycled_chunks_total", "Intermediate aggregates admitted to the cache by the benefit-driven recycler."),
		RecycleRejected: r.Counter("aggcache_engine_recycle_rejected_total", "Interior plan nodes the recycler priced and declined to cache."),
		ResultCacheHits: r.Counter("aggcache_engine_result_cache_hits_total", "Queries answered entirely from the semantic result cache (exact or subsumed)."),

		Lookup:    r.Histogram("aggcache_engine_lookup_seconds", "Per-query cache lookup (strategy Find) phase latency."),
		Aggregate: r.Histogram("aggcache_engine_aggregate_seconds", "Per-query in-cache aggregation phase latency."),
		Update:    r.Histogram("aggcache_engine_update_seconds", "Per-query strategy maintenance (virtual count/cost update) latency."),
		Backend:   r.Histogram("aggcache_engine_backend_seconds", "Per-query backend phase latency (compute plus simulated network)."),
		Query:     r.Histogram("aggcache_engine_query_seconds", "Whole-query latency as the sum of the phase breakdown."),
	}
}

// CacheMetrics instruments cache.Cache: occupancy, traffic, and the
// replacement behavior split by cause.
type CacheMetrics struct {
	CapacityBytes  *Gauge
	OccupancyBytes *Gauge
	ResidentChunks *Gauge

	Hits         *Counter
	Misses       *Counter
	Inserts      *Counter
	Replacements *Counter

	EvictionsPolicy *Counter
	EvictionsAdmin  *Counter
	Denied          *Counter
	PinFailures     *Counter
}

// NewCacheMetrics registers the cache metric set on r.
func NewCacheMetrics(r *Registry) CacheMetrics {
	return CacheMetrics{
		CapacityBytes:  r.Gauge("aggcache_cache_capacity_bytes", "Configured cache capacity."),
		OccupancyBytes: r.Gauge("aggcache_cache_occupancy_bytes", "Bytes currently charged to resident chunks."),
		ResidentChunks: r.Gauge("aggcache_cache_resident_chunks", "Number of resident chunks."),

		Hits:         r.Counter("aggcache_cache_hits_total", "Cache lookups that found the chunk resident."),
		Misses:       r.Counter("aggcache_cache_misses_total", "Cache lookups that missed."),
		Inserts:      r.Counter("aggcache_cache_inserts_total", "Chunks newly admitted to the cache."),
		Replacements: r.Counter("aggcache_cache_replacements_total", "Resident chunks whose payload was replaced in place."),

		EvictionsPolicy: r.Counter(`aggcache_cache_evictions_total{cause="policy"}`, "Chunks removed, by cause: policy-chosen victims vs administrative removal."),
		EvictionsAdmin:  r.Counter(`aggcache_cache_evictions_total{cause="admin"}`, ""),
		Denied:          r.Counter("aggcache_cache_admission_denied_total", "Insertions denied by the replacement policy or the size bound."),
		PinFailures:     r.Counter("aggcache_cache_pin_failures_total", "Pin attempts on chunks that were not resident."),
	}
}

// TierMetrics instruments the cold tier of a cache.Tiered store: compressed
// occupancy against the raw footprint of the same residents (their ratio is
// the effective compression), and the promote/demote traffic between tiers.
// The zero value records nothing, like every bundle here.
type TierMetrics struct {
	ColdCapacityBytes  *Gauge
	ColdOccupancyBytes *Gauge
	ColdRawBytes       *Gauge
	ColdChunks         *Gauge

	ColdHits      *Counter
	ColdMisses    *Counter
	Promotes      *Counter
	Demotes       *Counter
	DemoteDenied  *Counter
	ColdEvictions *Counter
}

// NewTierMetrics registers the cold-tier metric set on r.
func NewTierMetrics(r *Registry) TierMetrics {
	return TierMetrics{
		ColdCapacityBytes:  r.Gauge("aggcache_cold_capacity_bytes", "Configured cold-tier capacity."),
		ColdOccupancyBytes: r.Gauge("aggcache_cold_occupancy_bytes", "Compressed bytes charged to cold residents."),
		ColdRawBytes:       r.Gauge("aggcache_cold_raw_bytes", "Uncompressed footprint of the cold residents (raw/occupancy = compression ratio)."),
		ColdChunks:         r.Gauge("aggcache_cold_resident_chunks", "Number of cold-tier residents."),

		ColdHits:      r.Counter("aggcache_cold_hits_total", "Hot-tier misses answered by decompressing a cold resident."),
		ColdMisses:    r.Counter("aggcache_cold_misses_total", "Lookups that missed both tiers."),
		Promotes:      r.Counter("aggcache_tier_promotes_total", "Chunks decompressed back into the hot tier."),
		Demotes:       r.Counter("aggcache_tier_demotes_total", "Hot-tier victims re-admitted to the cold tier compressed."),
		DemoteDenied:  r.Counter("aggcache_tier_demote_denied_total", "Hot-tier victims the cold tier refused."),
		ColdEvictions: r.Counter("aggcache_cold_evictions_total", "Cold residents dropped for cold-tier space."),
	}
}

// StrategyMetrics instruments a lookup strategy through strategy.Instrument.
// All series carry a strategy=… label so several strategies can share a
// registry.
type StrategyMetrics struct {
	Finds        *Counter
	FindHits     *Counter
	NodesVisited *Counter
	FindLatency  *Histogram
}

// NewStrategyMetrics registers the strategy metric set on r, labeled with
// the strategy name.
func NewStrategyMetrics(r *Registry, strategy string) StrategyMetrics {
	l := fmt.Sprintf("{strategy=%q}", strategy)
	return StrategyMetrics{
		Finds:        r.Counter("aggcache_strategy_find_total"+l, "Cache lookup (Find) calls per strategy."),
		FindHits:     r.Counter("aggcache_strategy_find_hits_total"+l, "Find calls that produced an executable plan."),
		NodesVisited: r.Counter("aggcache_strategy_nodes_visited_total"+l, "Lattice nodes visited across all Find calls."),
		FindLatency:  r.Histogram("aggcache_strategy_find_seconds"+l, "Single Find call latency per strategy."),
	}
}

// BackendMetrics instruments backend.Engine and backend.Server: request
// traffic, the split between real compute and the simulated network/DBMS
// latency, and the wire-level frame/byte/error accounting.
type BackendMetrics struct {
	Requests      *Counter
	Chunks        *Counter
	TuplesScanned *Counter
	ResultCells   *Counter
	WireErrors    *Counter
	IdleCloses    *Counter
	Panics        *Counter
	Sheds         *Counter
	WireBytesIn   *Counter
	WireBytesOut  *Counter
	FramesIn      *Counter
	FramesOut     *Counter
	InFlight      *Gauge
	Wall          *Histogram
	Sim           *Histogram
}

// NewBackendMetrics registers the backend metric set on r.
func NewBackendMetrics(r *Registry) BackendMetrics {
	return BackendMetrics{
		Requests:      r.Counter("aggcache_backend_requests_total", "ComputeChunks requests served."),
		Chunks:        r.Counter("aggcache_backend_chunks_computed_total", "Chunks computed at the backend."),
		TuplesScanned: r.Counter("aggcache_backend_tuples_scanned_total", "Fact/aggregate tuples scanned."),
		ResultCells:   r.Counter("aggcache_backend_result_cells_total", "Result cells produced."),
		WireErrors:    r.Counter("aggcache_backend_wire_errors_total", "Connections torn down by malformed frames, resets or write failures."),
		IdleCloses:    r.Counter("aggcache_backend_idle_closes_total", "Idle connections reaped by the read deadline (not errors)."),
		Panics:        r.Counter("aggcache_backend_request_panics_total", "Requests whose handler panicked and was recovered into an error response."),
		Sheds:         r.Counter("aggcache_backend_sheds_total", "Requests refused with a Busy reply by the server-wide in-flight limit."),
		WireBytesIn:   r.Counter("aggcache_backend_wire_bytes_in_total", "Frame bytes received by the backend server."),
		WireBytesOut:  r.Counter("aggcache_backend_wire_bytes_out_total", "Frame bytes sent by the backend server."),
		FramesIn:      r.Counter("aggcache_backend_wire_frames_in_total", "Frames received by the backend server."),
		FramesOut:     r.Counter("aggcache_backend_wire_frames_out_total", "Frames sent by the backend server."),
		InFlight:      r.Gauge("aggcache_backend_requests_in_flight", "Requests currently executing across all connections."),
		Wall:          r.Histogram("aggcache_backend_request_seconds", "Real compute time per backend request."),
		Sim:           r.Histogram("aggcache_backend_sim_seconds", "Simulated network/DBMS latency charged per backend request."),
	}
}

// ServerMetrics instruments mtier.Server: connection and request traffic
// with failures counted by kind.
type ServerMetrics struct {
	ConnectionsOpen   *Gauge
	Requests          *Counter
	CompileErrors     *Counter
	ExecuteErrors     *Counter
	TimeoutErrors     *Counter
	UnavailableErrors *Counter
	WireErrors        *Counter
	IdleCloses        *Counter
	WireBytesIn       *Counter
	WireBytesOut      *Counter
	FramesIn          *Counter
	FramesOut         *Counter
	InFlight          *Gauge
	Latency           *Histogram
}

// NewServerMetrics registers the middle-tier server metric set on r.
func NewServerMetrics(r *Registry) ServerMetrics {
	return ServerMetrics{
		ConnectionsOpen:   r.Gauge("aggcache_server_connections_open", "Client connections currently served."),
		Requests:          r.Counter("aggcache_server_requests_total", "Requests received."),
		CompileErrors:     r.Counter(`aggcache_server_request_errors_total{kind="compile"}`, "Failed requests, by failure kind."),
		ExecuteErrors:     r.Counter(`aggcache_server_request_errors_total{kind="execute"}`, ""),
		TimeoutErrors:     r.Counter(`aggcache_server_request_errors_total{kind="timeout"}`, ""),
		UnavailableErrors: r.Counter(`aggcache_server_request_errors_total{kind="unavailable"}`, ""),
		WireErrors:        r.Counter("aggcache_server_wire_errors_total", "Client connections torn down by malformed frames, resets or write failures."),
		IdleCloses:        r.Counter("aggcache_server_idle_closes_total", "Idle client connections reaped by the read deadline (not errors)."),
		WireBytesIn:       r.Counter("aggcache_server_wire_bytes_in_total", "Frame bytes received from clients."),
		WireBytesOut:      r.Counter("aggcache_server_wire_bytes_out_total", "Frame bytes sent to clients."),
		FramesIn:          r.Counter("aggcache_server_wire_frames_in_total", "Frames received from clients."),
		FramesOut:         r.Counter("aggcache_server_wire_frames_out_total", "Frames sent to clients."),
		InFlight:          r.Gauge("aggcache_server_requests_in_flight", "Client requests currently executing."),
		Latency:           r.Histogram("aggcache_server_request_seconds", "Server-side wall time per request."),
	}
}

// RemoteMetrics instruments the self-healing backend.Remote client: retry
// and redial churn, requests abandoned as unavailable, and the multiplexed
// wire traffic.
type RemoteMetrics struct {
	Requests     *Counter
	Retries      *Counter
	Redials      *Counter
	Unavailable  *Counter
	Busy         *Counter
	WireBytesIn  *Counter
	WireBytesOut *Counter
	FramesIn     *Counter
	FramesOut    *Counter
	InFlight     *Gauge
}

// NewRemoteMetrics registers the remote-client metric set on r.
func NewRemoteMetrics(r *Registry) RemoteMetrics {
	return RemoteMetrics{
		Requests:     r.Counter("aggcache_remote_requests_total", "Backend wire requests issued by the remote client."),
		Retries:      r.Counter("aggcache_remote_retries_total", "Attempts beyond the first, after a transient failure."),
		Redials:      r.Counter("aggcache_remote_redials_total", "Reconnects after a torn-down backend connection."),
		Unavailable:  r.Counter("aggcache_remote_unavailable_total", "Requests abandoned after exhausting the retry budget."),
		Busy:         r.Counter("aggcache_remote_busy_total", "Busy (shed) replies received from the server."),
		WireBytesIn:  r.Counter("aggcache_remote_wire_bytes_in_total", "Frame bytes received from the backend."),
		WireBytesOut: r.Counter("aggcache_remote_wire_bytes_out_total", "Frame bytes sent to the backend."),
		FramesIn:     r.Counter("aggcache_remote_wire_frames_in_total", "Frames received from the backend."),
		FramesOut:    r.Counter("aggcache_remote_wire_frames_out_total", "Frames sent to the backend."),
		InFlight:     r.Gauge("aggcache_remote_requests_in_flight", "Exchanges currently in flight on the multiplexed connection."),
	}
}

// PeerMetrics instruments one remote member of the peered cache tier. All
// series carry a peer=… label so every cluster member shares a registry.
type PeerMetrics struct {
	Hits      *Counter
	Misses    *Counter
	Errors    *Counter
	Skips     *Counter
	Puts      *Counter
	PutDrops  *Counter
	PutErrors *Counter

	BreakerState *Gauge
	Latency      *Histogram
}

// NewPeerMetrics registers the per-peer metric set on r, labeled with the
// peer's address.
func NewPeerMetrics(r *Registry, peer string) PeerMetrics {
	l := fmt.Sprintf("{peer=%q}", peer)
	return PeerMetrics{
		Hits:      r.Counter("aggcache_peer_fill_hits_total"+l, "Peer-fill exchanges that returned the chunk."),
		Misses:    r.Counter("aggcache_peer_fill_misses_total"+l, "Peer-fill exchanges the peer answered without the chunk."),
		Errors:    r.Counter("aggcache_peer_fill_errors_total"+l, "Peer-fill exchanges that failed (timeout, connection or protocol error)."),
		Skips:     r.Counter("aggcache_peer_fill_skips_total"+l, "Peer-fill attempts suppressed by the peer's open circuit breaker."),
		Puts:      r.Counter("aggcache_peer_puts_total"+l, "Replication puts delivered to the peer."),
		PutDrops:  r.Counter("aggcache_peer_put_drops_total"+l, "Replication puts dropped (queue full or breaker open)."),
		PutErrors: r.Counter("aggcache_peer_put_errors_total"+l, "Replication puts that failed."),

		BreakerState: r.Gauge("aggcache_peer_breaker_state"+l, "Per-peer breaker state: 0 closed, 1 probing, 2 open."),
		Latency:      r.Histogram("aggcache_peer_fill_seconds"+l, "Peer-fill exchange latency."),
	}
}

// AdmissionMetrics instruments the middle-tier admission controller: the
// queue's live depth, admitted traffic, queue-wait latency, and sheds split
// by cause so a flash crowd (queue_full) reads differently from a scan
// flood of unmeetable deadlines (deadline) or a quota-capped tenant (quota).
type AdmissionMetrics struct {
	Admitted *Counter

	ShedQueueFull *Counter
	ShedDeadline  *Counter
	ShedExpired   *Counter
	ShedQuota     *Counter

	QueueDepth *Gauge
	QueueWait  *Histogram
}

// NewAdmissionMetrics registers the admission metric set on r.
func NewAdmissionMetrics(r *Registry) AdmissionMetrics {
	return AdmissionMetrics{
		Admitted: r.Counter("aggcache_admission_admitted_total", "Requests admitted past the admission queue to the engine."),

		ShedQueueFull: r.Counter(`aggcache_admission_sheds_total{reason="queue_full"}`, "Requests shed before execution, by cause: admission queue full, deadline unmeetable at enqueue, deadline expired while queued, or tenant quota exhausted."),
		ShedDeadline:  r.Counter(`aggcache_admission_sheds_total{reason="deadline"}`, ""),
		ShedExpired:   r.Counter(`aggcache_admission_sheds_total{reason="expired"}`, ""),
		ShedQuota:     r.Counter(`aggcache_admission_sheds_total{reason="quota"}`, ""),

		QueueDepth: r.Gauge("aggcache_admission_queue_depth", "Requests currently waiting for an execution slot."),
		QueueWait:  r.Histogram("aggcache_admission_queue_wait_seconds", "Time admitted requests spent waiting for an execution slot."),
	}
}

// BreakerMetrics instruments backend.Breaker: live state plus transition
// and fail-fast traffic.
type BreakerMetrics struct {
	State     *Gauge
	Opens     *Counter
	FastFails *Counter
	Probes    *Counter
}

// NewBreakerMetrics registers the circuit-breaker metric set on r.
func NewBreakerMetrics(r *Registry) BreakerMetrics {
	return BreakerMetrics{
		State:     r.Gauge("aggcache_breaker_state", "Circuit breaker state: 0 closed, 1 half-open, 2 open."),
		Opens:     r.Counter("aggcache_breaker_opens_total", "Times the breaker tripped open."),
		FastFails: r.Counter("aggcache_breaker_fast_fails_total", "Requests failed fast while the breaker was open."),
		Probes:    r.Counter("aggcache_breaker_probes_total", "Half-open probe requests admitted."),
	}
}
