// Package obs is the live observability layer: a stdlib-only metrics
// registry (atomic counters, gauges, and log-scale latency histograms with
// quantile estimation), a bounded per-query trace ring, and an ops HTTP
// handler exposing them as /metrics (Prometheus text format), /healthz,
// /traces (JSON) and /debug/pprof.
//
// Instrumentation is designed to be allocation-free off the hot path: every
// metric is a fixed set of atomics allocated at registration time, and every
// recording method is nil-receiver safe, so instrumented components run with
// zero overhead beyond a nil check when observability is disabled.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use; a nil *Counter is a no-op, so disabled instrumentation costs one
// branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of a histogram: bucket i holds
// samples whose nanosecond value needs exactly i bits, i.e. v in
// [2^(i-1), 2^i), so the full int64 range is covered by 64 preallocated
// buckets and recording is one bits.Len64 plus three atomic adds.
const histBuckets = 64

// Histogram is a log-scale (powers-of-two) latency histogram over
// nanosecond samples. Recording is lock-free and allocation-free; quantiles
// are estimated at read time by linear interpolation inside the matched
// bucket, so they carry at worst the bucket's factor-of-two resolution.
// A nil *Histogram is a no-op.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNS(int64(d)) }

// ObserveNS records one nanosecond sample. Non-positive samples land in the
// first bucket.
func (h *Histogram) ObserveNS(v int64) {
	if h == nil {
		return
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded samples,
// interpolating linearly within the matched power-of-two bucket. It returns
// 0 when nothing has been recorded.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	q = math.Max(0, math.Min(1, q))
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			var lo int64
			if i > 0 {
				lo = int64(1) << (i - 1)
			}
			hi := int64(1)<<i - 1
			frac := float64(target-cum) / float64(c)
			return time.Duration(lo) + time.Duration(frac*float64(hi-lo))
		}
		cum += c
	}
	return time.Duration(math.MaxInt64)
}

// metricKind distinguishes registry entries for rendering.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered series. name may carry constant labels in
// Prometheus syntax (`evictions_total{cause="policy"}`); family is the name
// with labels stripped, used to group HELP/TYPE headers.
type metric struct {
	name    string
	family  string
	labels  string // inner label text without braces, "" if none
	help    string
	kind    metricKind
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry holds named metrics and renders them in Prometheus text format.
// Registration takes a lock; recording on the returned metric handles is
// lock-free. Registering a name twice returns the existing metric, so
// several components may share a series.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

// splitName separates constant labels from a metric name:
// `x_total{cause="policy"}` → family `x_total`, labels `cause="policy"`.
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// register returns the metric for name, creating it with the given kind if
// new. A kind clash on an existing name panics: it is a wiring bug, not a
// runtime condition.
func (r *Registry) register(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return m
	}
	family, labels := splitName(name)
	m := &metric{name: name, family: family, labels: labels, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		m.hist = &Histogram{}
	}
	r.metrics = append(r.metrics, m)
	r.index[name] = m
	return m
}

// Counter registers (or finds) a counter. name may carry constant labels,
// e.g. `aggcache_cache_evictions_total{cause="policy"}`.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter).counter
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape time.
// fn must be safe to call concurrently with the instrumented code.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	m := r.register(name, help, kindGaugeFunc)
	m.gaugeFn = fn
}

// Histogram registers (or finds) a latency histogram. Samples are recorded
// in nanoseconds and rendered in seconds; by Prometheus convention the name
// should end in `_seconds`.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.register(name, help, kindHistogram).hist
}

// snapshot copies the metric list so rendering runs without the lock.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	return out
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Histograms render as cumulative
// `_bucket{le="…"}` series in seconds plus `_sum`/`_count`, followed by a
// comment line carrying the p50/p95/p99 estimates for human readers.
func (r *Registry) WritePrometheus(w io.Writer) error {
	seen := make(map[string]bool)
	for _, m := range r.snapshot() {
		if !seen[m.family] {
			seen[m.family] = true
			kind := "counter"
			switch m.kind {
			case kindGauge, kindGaugeFunc:
				kind = "gauge"
			case kindHistogram:
				kind = "histogram"
			}
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.family, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.family, kind); err != nil {
				return err
			}
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.gauge.Value())
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %g\n", m.name, m.gaugeFn())
		case kindHistogram:
			err = writeHistogram(w, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram family member with cumulative
// buckets. Empty leading/trailing buckets are elided; the +Inf bucket and
// sum/count always appear so the series is valid even when empty.
func writeHistogram(w io.Writer, m *metric) error {
	h := m.hist
	var counts [histBuckets]int64
	lo, hi := -1, -1
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	series := func(suffix, extraLabels string) string {
		name := m.family + suffix
		labels := m.labels
		if extraLabels != "" {
			if labels != "" {
				labels += ","
			}
			labels += extraLabels
		}
		if labels != "" {
			return name + "{" + labels + "}"
		}
		return name
	}
	var cum int64
	for i := lo; i >= 0 && i <= hi; i++ {
		cum += counts[i]
		// The bucket's inclusive upper bound is 2^i - 1 ns, rendered in
		// seconds.
		ub := float64(int64(1)<<i-1) / 1e9
		if _, err := fmt.Fprintf(w, "%s %d\n", series("_bucket", fmt.Sprintf("le=%q", formatFloat(ub))), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", series("_bucket", `le="+Inf"`), h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", series("_sum", ""), formatFloat(h.Sum().Seconds())); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", series("_count", ""), h.Count()); err != nil {
		return err
	}
	if h.Count() > 0 {
		if _, err := fmt.Fprintf(w, "# %s quantiles: p50=%v p95=%v p99=%v\n",
			m.name, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float compactly without losing precision.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Families returns the registered family names in registration order,
// deduplicated; used by tests and diagnostics.
func (r *Registry) Families() []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range r.snapshot() {
		if !seen[m.family] {
			seen[m.family] = true
			out = append(out, m.family)
		}
	}
	return out
}

// Sorted is like Families but sorted; convenient for stable test output.
func (r *Registry) Sorted() []string {
	out := r.Families()
	sort.Strings(out)
	return out
}
