package obs

import (
	"sync"
	"time"
)

// QueryTrace is the per-query provenance record the middle tier keeps for
// recent queries: what was asked, how the plan resolved (chunks answered
// directly, by in-cache aggregation, or fetched from the backend), the
// Figure-10 phase timings, and the outcome.
type QueryTrace struct {
	// ID is a process-unique, monotonically increasing sequence number
	// assigned by the ring.
	ID uint64 `json:"id"`
	// Start is when the server began handling the query.
	Start time.Time `json:"start"`
	// Query is the mdq source text as received.
	Query string `json:"query"`
	// GroupBy is the resolved group-by level tuple (the plan shape), empty
	// when compilation failed.
	GroupBy string `json:"group_by,omitempty"`
	// Chunks is the number of chunks the query covered; Hit of them were
	// resident, Aggregated were computed from other cached chunks, and
	// Fetched came from the backend.
	Chunks     int `json:"chunks"`
	Hit        int `json:"hit"`
	Aggregated int `json:"aggregated"`
	Fetched    int `json:"fetched"`
	// AggregatedTuples and BackendTuples count tuples scanned in-cache and
	// at the backend.
	AggregatedTuples int64 `json:"aggregated_tuples"`
	BackendTuples    int64 `json:"backend_tuples"`
	// LookupNS/AggregateNS/UpdateNS/BackendNS are the Figure-10 phase
	// timings; TotalNS is the server-side wall time for the whole request.
	LookupNS    int64 `json:"lookup_ns"`
	AggregateNS int64 `json:"aggregate_ns"`
	UpdateNS    int64 `json:"update_ns"`
	BackendNS   int64 `json:"backend_ns"`
	TotalNS     int64 `json:"total_ns"`
	// CompleteHit reports the query was answered without the backend.
	CompleteHit bool `json:"complete_hit"`
	// Outcome is "ok", "compile_error" or "execute_error"; Err carries the
	// error text for the failure outcomes.
	Outcome string `json:"outcome"`
	Err     string `json:"err,omitempty"`
}

// TraceRing keeps the most recent query traces in a fixed-size ring buffer.
// Add is O(1) and copies one struct; a nil *TraceRing is a no-op, so
// tracing can be disabled like any other metric.
type TraceRing struct {
	mu    sync.Mutex
	buf   []QueryTrace
	total uint64
}

// DefaultTraceDepth is the ring capacity used when none is given.
const DefaultTraceDepth = 256

// NewTraceRing returns a ring holding the last n traces (DefaultTraceDepth
// when n <= 0).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = DefaultTraceDepth
	}
	return &TraceRing{buf: make([]QueryTrace, n)}
}

// Add records one trace, assigning and returning its sequence ID (1-based).
// The oldest trace is overwritten once the ring is full.
func (r *TraceRing) Add(t QueryTrace) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	r.total++
	t.ID = r.total
	r.buf[(r.total-1)%uint64(len(r.buf))] = t
	r.mu.Unlock()
	return t.ID
}

// Total returns how many traces have ever been added.
func (r *TraceRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained traces, oldest first.
func (r *TraceRing) Snapshot() []QueryTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	kept := r.total
	if kept > n {
		kept = n
	}
	out := make([]QueryTrace, 0, kept)
	for i := r.total - kept; i < r.total; i++ {
		out = append(out, r.buf[i%n])
	}
	return out
}
