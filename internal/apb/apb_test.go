package apb

import (
	"testing"

	"aggcache/internal/chunk"
)

func TestScaleString(t *testing.T) {
	for _, s := range []Scale{ScaleTiny, ScaleSmall, ScaleMedium, ScaleFull} {
		name := s.String()
		got, err := ParseScale(name)
		if err != nil || got != s {
			t.Fatalf("ParseScale(%q) = %v,%v", name, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatalf("ParseScale(huge): expected error")
	}
	if got := Scale(99).String(); got != "Scale(99)" {
		t.Fatalf("unknown scale String = %q", got)
	}
}

func TestTinyBuild(t *testing.T) {
	cfg := New(ScaleTiny)
	g, tab, err := cfg.Build(1)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := g.Lattice().NumNodes(); got != 18 {
		t.Fatalf("tiny lattice nodes = %d, want 18", got)
	}
	if tab.Len() < 300 || tab.Len() > 800 {
		t.Fatalf("tiny rows = %d, want ~500", tab.Len())
	}
}

// TestLatticeShape336 checks the paper's lattice claim for every non-tiny
// scale: (6+1)(2+1)(3+1)(1+1)(1+1) = 336 group-bys.
func TestLatticeShape336(t *testing.T) {
	for _, s := range []Scale{ScaleSmall, ScaleMedium, ScaleFull} {
		cfg := New(s)
		hs := cfg.Schema.HierarchySizes()
		want := []int{6, 2, 3, 1, 1}
		for i := range want {
			if hs[i] != want[i] {
				t.Fatalf("%v: hierarchy sizes %v, want %v", s, hs, want)
			}
		}
		n := 1
		for _, h := range hs {
			n *= h + 1
		}
		if n != 336 {
			t.Fatalf("%v: %d group-bys, want 336", s, n)
		}
	}
}

// TestGridsConstruct checks chunk-count feasibility (closure alignment) for
// all scales without generating the large datasets.
func TestGridsConstruct(t *testing.T) {
	for _, s := range []Scale{ScaleTiny, ScaleSmall, ScaleMedium, ScaleFull} {
		cfg := New(s)
		g, err := chunk.NewGrid(cfg.Schema, cfg.ChunkCounts)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if g.TotalChunks() <= 0 {
			t.Fatalf("%v: no chunks", s)
		}
	}
}

func TestSmallBuildRows(t *testing.T) {
	cfg := New(ScaleSmall)
	_, tab, err := cfg.Build(2)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if tab.Len() < 14_000 || tab.Len() > 28_000 {
		t.Fatalf("small rows = %d, want ~20k", tab.Len())
	}
}
