// Package apb provides APB-1-style schema presets (OLAP Council Analytical
// Processing Benchmark) at several scales, mirroring §7 of the paper: five
// dimensions Product, Customer, Time, Channel and Scenario with hierarchy
// sizes 6, 2, 3, 1 and 1, a UnitSales measure, and a density-controlled
// HistSale fact table.
package apb

import (
	"fmt"

	"aggcache/internal/chunk"
	"aggcache/internal/data"
	"aggcache/internal/schema"
)

// Scale selects a preset size. Absolute numbers shrink with scale but the
// lattice shape (336 group-bys) is preserved for Small/Medium/Full; Tiny is
// a 3-dimension schema for fast unit tests.
type Scale int

const (
	// ScaleTiny is a 3-dimension, 18-group-by schema with a few hundred rows.
	ScaleTiny Scale = iota
	// ScaleSmall keeps the full 336-node APB lattice at toy cardinalities.
	ScaleSmall
	// ScaleMedium is large enough for representative measurements.
	ScaleMedium
	// ScaleFull approximates the paper's setup: ~1M rows, ~50k chunks.
	ScaleFull
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScaleFull:
		return "full"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// ParseScale converts a flag value into a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return ScaleTiny, nil
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "full":
		return ScaleFull, nil
	}
	return 0, fmt.Errorf("apb: unknown scale %q (want tiny|small|medium|full)", s)
}

// Config bundles everything needed to instantiate an APB-style workload.
type Config struct {
	Schema      *schema.Schema
	ChunkCounts [][]int
	Rows        int
	Density     float64
	TimeDim     int
}

// New returns the preset configuration for a scale.
func New(scale Scale) Config {
	mk := func(name string, names []string, cards []int) *schema.Dimension {
		specs := make([]schema.HierarchySpec, len(cards))
		for i := range cards {
			specs[i] = schema.HierarchySpec{Name: names[i], Card: cards[i]}
		}
		return schema.MustNewDimension(name, specs)
	}
	productLevels := []string{"Division", "Line", "Family", "Group", "Class", "Code"}
	customerLevels := []string{"Retailer", "Store"}
	timeLevels := []string{"Year", "Quarter", "Month"}

	switch scale {
	case ScaleTiny:
		product := mk("Product", []string{"Group", "Code"}, []int{2, 16})
		timeD := mk("Time", []string{"Year", "Month"}, []int{2, 8})
		channel := mk("Channel", []string{"Base"}, []int{8})
		return Config{
			Schema:      schema.MustNew("UnitSales", product, timeD, channel),
			ChunkCounts: [][]int{{1, 2, 4}, {1, 1, 2}, {1, 2}},
			Rows:        500,
			Density:     0.7,
			TimeDim:     1,
		}
	case ScaleSmall:
		return Config{
			Schema: schema.MustNew("UnitSales",
				mk("Product", productLevels, []int{2, 4, 8, 16, 32, 64}),
				mk("Customer", customerLevels, []int{10, 100}),
				mk("Time", timeLevels, []int{2, 8, 24}),
				mk("Channel", []string{"Base"}, []int{4}),
				mk("Scenario", []string{"Scenario"}, []int{2}),
			),
			ChunkCounts: [][]int{
				{1, 1, 2, 4, 8, 8, 16},
				{1, 2, 5},
				{1, 1, 2, 4},
				{1, 2},
				{1, 1},
			},
			Rows:    20_000,
			Density: 0.7,
			TimeDim: 2,
		}
	case ScaleMedium:
		return Config{
			Schema: schema.MustNew("UnitSales",
				mk("Product", productLevels, []int{4, 16, 64, 256, 1024, 4096}),
				mk("Customer", customerLevels, []int{40, 400}),
				mk("Time", timeLevels, []int{2, 8, 24}),
				mk("Channel", []string{"Base"}, []int{10}),
				mk("Scenario", []string{"Scenario"}, []int{2}),
			),
			ChunkCounts: [][]int{
				{1, 1, 2, 4, 8, 16, 32},
				{1, 4, 8},
				{1, 1, 2, 6},
				{1, 2},
				{1, 1},
			},
			Rows:    150_000,
			Density: 0.7,
			TimeDim: 2,
		}
	case ScaleFull:
		return Config{
			Schema: schema.MustNew("UnitSales",
				mk("Product", productLevels, []int{5, 20, 80, 320, 1600, 9600}),
				mk("Customer", customerLevels, []int{90, 900}),
				mk("Time", timeLevels, []int{2, 8, 24}),
				mk("Channel", []string{"Base"}, []int{10}),
				mk("Scenario", []string{"Scenario"}, []int{2}),
			),
			ChunkCounts: [][]int{
				{1, 1, 2, 4, 8, 16, 32},
				{1, 3, 9},
				{1, 1, 2, 6},
				{1, 2},
				{1, 1},
			},
			Rows:    1_000_000,
			Density: 0.7,
			TimeDim: 2,
		}
	}
	panic(fmt.Sprintf("apb: unknown scale %v", scale))
}

// Build instantiates the grid and generates the fact table for the preset.
func (c Config) Build(seed int64) (*chunk.Grid, *data.Table, error) {
	g, err := chunk.NewGrid(c.Schema, c.ChunkCounts)
	if err != nil {
		return nil, nil, fmt.Errorf("apb: %w", err)
	}
	tab, err := data.Generate(c.Schema, data.Params{
		Rows:    c.Rows,
		Density: c.Density,
		TimeDim: c.TimeDim,
		Seed:    seed,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("apb: %w", err)
	}
	return g, tab, nil
}
