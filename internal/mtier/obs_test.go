package mtier

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aggcache/internal/obs"
)

// startObsServer is startServer with the observability layer attached
// (before Listen, per the SetObs contract).
func startObsServer(t *testing.T) (*Server, string, *obs.Registry, *obs.TraceRing) {
	t.Helper()
	reg := obs.NewRegistry()
	ring := obs.NewTraceRing(8)
	srv, _, _ := newTestServer(t)
	srv.SetObs(reg, ring)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, reg, ring
}

func scrape(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	body, _ := io.ReadAll(w.Result().Body)
	return w.Result().StatusCode, string(body)
}

// metricValue finds a sample value on a /metrics page by exact series name.
func metricValue(t *testing.T, page, name string) string {
	t.Helper()
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	t.Fatalf("series %q not found in /metrics", name)
	return ""
}

func TestOpsMetricsMoveUnderWorkload(t *testing.T) {
	srv, addr, _, ring := startObsServer(t)
	h := srv.OpsHandler()

	code, page := scrape(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if metricValue(t, page, "aggcache_server_requests_total") != "0" {
		t.Fatalf("requests_total non-zero before any query:\n%s", page)
	}

	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		if _, err := cl.Query("SUM(UnitSales) BY Time:Year"); err != nil {
			t.Fatalf("Query: %v", err)
		}
	}

	_, page = scrape(t, h, "/metrics")
	if got := metricValue(t, page, "aggcache_server_requests_total"); got != "3" {
		t.Fatalf("requests_total = %s, want 3", got)
	}
	if got := metricValue(t, page, "aggcache_server_request_seconds_count"); got != "3" {
		t.Fatalf("request_seconds_count = %s, want 3", got)
	}
	if ring.Total() != 3 {
		t.Fatalf("ring.Total = %d, want 3", ring.Total())
	}
	traces := ring.Snapshot()
	last := traces[len(traces)-1]
	if last.Outcome != "ok" || !last.CompleteHit {
		t.Fatalf("third trace: %+v", last)
	}
	if last.Hit+last.Aggregated == 0 || last.Fetched != 0 {
		t.Fatalf("warm trace provenance: %+v", last)
	}
}

// TestAnswerRecordsErrors is the regression test for the silent-failure fix:
// a bad query must be visible as an error counter and an error trace, not
// only as the wire Err string.
func TestAnswerRecordsErrors(t *testing.T) {
	srv, addr, _, ring := startObsServer(t)
	h := srv.OpsHandler()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Query("THIS IS NOT MDQ"); err == nil {
		t.Fatal("bad query succeeded")
	}
	if _, err := cl.Query("SUM(UnitSales) BY NoSuchDim:Level"); err == nil {
		t.Fatal("unknown dimension succeeded")
	}

	_, page := scrape(t, h, "/metrics")
	var compile string
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, "aggcache_server_request_errors_total{kind=\"compile\"} ") {
			compile = line[strings.LastIndex(line, " ")+1:]
		}
	}
	if compile != "2" {
		t.Fatalf("compile errors = %q, want 2\n%s", compile, page)
	}
	if got := metricValue(t, page, "aggcache_server_requests_total"); got != "2" {
		t.Fatalf("requests_total = %s, want 2", got)
	}
	traces := ring.Snapshot()
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	for _, tr := range traces {
		if tr.Outcome != "compile_error" || tr.Err == "" {
			t.Fatalf("error trace: %+v", tr)
		}
	}
}

func TestOpsTracesEndpoint(t *testing.T) {
	srv, addr, _, _ := startObsServer(t)
	h := srv.OpsHandler()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Query("SUM(UnitSales) BY Time:Year"); err != nil {
		t.Fatalf("Query: %v", err)
	}

	code, body := scrape(t, h, "/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces = %d", code)
	}
	var page struct {
		Total  int64            `json:"total"`
		Traces []obs.QueryTrace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatalf("unmarshal /traces: %v\n%s", err, body)
	}
	if page.Total != 1 || len(page.Traces) != 1 {
		t.Fatalf("traces page: total=%d len=%d", page.Total, len(page.Traces))
	}
	if page.Traces[0].Query != "SUM(UnitSales) BY Time:Year" || page.Traces[0].GroupBy == "" {
		t.Fatalf("trace: %+v", page.Traces[0])
	}
}

func TestHealthzFlipsOnClose(t *testing.T) {
	srv, _, _, _ := startObsServer(t)
	h := srv.OpsHandler()

	if code, body := scrape(t, h, "/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz before close: %d %q", code, body)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if code, _ := scrape(t, h, "/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after close = %d, want 503", code)
	}
}

func TestServeOpsLifecycle(t *testing.T) {
	srv, addr, _, _ := startObsServer(t)
	opsAddr, err := srv.ServeOps("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeOps: %v", err)
	}
	if _, err := srv.ServeOps("127.0.0.1:0"); err == nil {
		t.Fatal("second ServeOps succeeded")
	}

	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Query("SUM(UnitSales) BY Time:Year"); err != nil {
		t.Fatalf("Query: %v", err)
	}

	resp, err := http.Get("http://" + opsAddr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "aggcache_server_requests_total 1") {
		t.Fatalf("live /metrics: %d\n%s", resp.StatusCode, body)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + opsAddr + "/healthz"); err == nil {
		t.Fatal("ops listener still serving after Close")
	}
}
