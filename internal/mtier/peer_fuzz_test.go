package mtier

import (
	"testing"

	"aggcache/internal/cache"
)

// FuzzPeerFrame throws arbitrary bytes at all four peer payload decoders.
// The invariants mirror wire.FuzzFrame: no panic, no allocation the payload
// cannot back, and everything a decoder accepts re-encodes byte-identically.
func FuzzPeerFrame(f *testing.F) {
	k := cache.Key{GB: 3, Num: 17}
	data := peerChunk(17, 5)
	f.Add(encodePeerGet(nil, k))
	f.Add(encodePeerChunk(nil, data, cache.ClassBackend, 2.5, true))
	f.Add(encodePeerChunk(nil, nil, 0, 0, false))
	f.Add(encodePeerPut(nil, k, data, cache.ClassComputed, 9.75))
	f.Add(encodePeerAck(nil, true))
	f.Add(encodePeerAck(nil, false))
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{2, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, payload []byte) {
		if gk, err := decodePeerGet(payload); err == nil {
			if got := encodePeerGet(nil, gk); string(got) != string(payload) {
				t.Fatalf("peer get did not round-trip: %x vs %x", got, payload)
			}
		}
		if c, cl, benefit, found, err := decodePeerChunk(payload); err == nil {
			if found && 16*c.Cells() > len(payload) {
				t.Fatalf("decoded %d cells from %d payload bytes", c.Cells(), len(payload))
			}
			if got := encodePeerChunk(nil, c, cl, benefit, found); string(got) != string(payload) {
				t.Fatalf("peer chunk did not round-trip: %x vs %x", got, payload)
			}
		}
		if pk, c, cl, benefit, err := decodePeerPut(payload); err == nil {
			if 16*c.Cells() > len(payload) {
				t.Fatalf("decoded %d cells from %d payload bytes", c.Cells(), len(payload))
			}
			if got := encodePeerPut(nil, pk, c, cl, benefit); string(got) != string(payload) {
				t.Fatalf("peer put did not round-trip: %x vs %x", got, payload)
			}
		}
		if stored, err := decodePeerAck(payload); err == nil {
			if got := encodePeerAck(nil, stored); string(got) != string(payload) {
				t.Fatalf("peer ack did not round-trip: %x vs %x", got, payload)
			}
		}
	})
}
