package mtier

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/wire"
)

// Frame types of the peer cache protocol. Peers ride the same listener,
// framing layer and mux as client queries — a cluster member is just another
// pipelined client of its neighbor, with two extra request types:
//
//	PeerGet   0x20 → PeerChunk 0xA0   ask the owner for one chunk
//	PeerPut   0x21 → PeerAck   0xA1   replicate a backend fill to the owner
//	                 PeerErr   0xE1   in-band failure for either request
//
// A PeerGet miss is an authoritative answer (found=0), never an error: the
// owner does not consult its own backend on a peer's behalf — only the
// querying node charges a backend trip, so a chunk resident nowhere costs
// the cluster exactly one fetch.
const (
	framePeerGet   uint8 = 0x20
	framePeerPut   uint8 = 0x21
	framePeerChunk uint8 = 0xA0
	framePeerAck   uint8 = 0xA1
	framePeerErr   uint8 = 0xE1
)

// encodePeerGet appends a framePeerGet payload: gb u32 | num u32.
func encodePeerGet(b []byte, k cache.Key) []byte {
	b = wire.AppendU32(b, uint32(k.GB))
	b = wire.AppendU32(b, uint32(k.Num))
	return b
}

// decodePeerGet parses a framePeerGet payload.
func decodePeerGet(p []byte) (cache.Key, error) {
	d := wire.NewDec(p)
	k := cache.Key{GB: lattice.ID(d.U32()), Num: int32(d.U32())}
	if d.Err() != nil || d.Remaining() != 0 {
		return cache.Key{}, errors.New("mtier: malformed peer get payload")
	}
	return k, nil
}

// encodePeerChunk appends a framePeerChunk payload:
// found u8 | class u8 | benefit f64 | chunk slab (present only when found).
func encodePeerChunk(b []byte, data *chunk.Chunk, cl cache.Class, benefit float64, found bool) []byte {
	if !found {
		return wire.AppendU8(b, 0)
	}
	b = wire.AppendU8(b, 1)
	b = wire.AppendU8(b, uint8(cl))
	b = wire.AppendF64(b, benefit)
	return wire.AppendChunk(b, data)
}

// decodePeerChunk parses a framePeerChunk payload.
func decodePeerChunk(p []byte) (data *chunk.Chunk, cl cache.Class, benefit float64, found bool, err error) {
	bad := errors.New("mtier: malformed peer chunk payload")
	d := wire.NewDec(p)
	switch d.U8() {
	case 0:
		if d.Err() != nil || d.Remaining() != 0 {
			return nil, 0, 0, false, bad
		}
		return nil, 0, 0, false, nil
	case 1:
	default:
		return nil, 0, 0, false, bad
	}
	c := d.U8()
	benefit = d.F64()
	data = d.Chunk()
	if data == nil || d.Err() != nil || d.Remaining() != 0 || c > uint8(cache.ClassComputed) {
		return nil, 0, 0, false, bad
	}
	return data, cache.Class(c), benefit, true, nil
}

// encodePeerPut appends a framePeerPut payload:
// gb u32 | num u32 | class u8 | benefit f64 | chunk slab.
func encodePeerPut(b []byte, k cache.Key, data *chunk.Chunk, cl cache.Class, benefit float64) []byte {
	b = wire.AppendU32(b, uint32(k.GB))
	b = wire.AppendU32(b, uint32(k.Num))
	b = wire.AppendU8(b, uint8(cl))
	b = wire.AppendF64(b, benefit)
	return wire.AppendChunk(b, data)
}

// decodePeerPut parses a framePeerPut payload.
func decodePeerPut(p []byte) (k cache.Key, data *chunk.Chunk, cl cache.Class, benefit float64, err error) {
	bad := errors.New("mtier: malformed peer put payload")
	d := wire.NewDec(p)
	k = cache.Key{GB: lattice.ID(d.U32()), Num: int32(d.U32())}
	c := d.U8()
	benefit = d.F64()
	data = d.Chunk()
	if data == nil || d.Err() != nil || d.Remaining() != 0 || c > uint8(cache.ClassComputed) {
		return cache.Key{}, nil, 0, 0, bad
	}
	return k, data, cache.Class(c), benefit, nil
}

// encodePeerAck appends a framePeerAck payload: stored u8.
func encodePeerAck(b []byte, stored bool) []byte {
	v := uint8(0)
	if stored {
		v = 1
	}
	return wire.AppendU8(b, v)
}

// decodePeerAck parses a framePeerAck payload.
func decodePeerAck(p []byte) (stored bool, err error) {
	d := wire.NewDec(p)
	v := d.U8()
	if d.Err() != nil || d.Remaining() != 0 || v > 1 {
		return false, errors.New("mtier: malformed peer ack payload")
	}
	return v == 1, nil
}

// peerErrFrame builds an in-band peer error reply; transient failures carry
// wire.FlagTransient so the caller's breaker taxonomy sees them as such.
func peerErrFrame(msg string, transient bool) wire.Frame {
	fr := wire.Frame{Type: framePeerErr, Payload: wire.AppendString(nil, msg)}
	if transient {
		fr.Flags = wire.FlagTransient
	}
	return fr
}

// peerInfoStore is the read surface a peer answer wants: payload plus the
// replacement attributes the owner stored the chunk under.
type peerInfoStore interface {
	GetInfo(cache.Key) (*chunk.Chunk, cache.Class, float64, bool)
}

// peerStore returns the store peer requests should be served from: the local
// hot tier when the engine's store is a Peered (never the peer tier itself —
// answering a peer from another peer would let a chunk resident nowhere
// bounce around the ring), otherwise the store as-is.
func (s *Server) peerStore() cache.Store {
	st := s.engine.Cache()
	if p, ok := st.(interface{ Local() cache.Store }); ok {
		return p.Local()
	}
	return st
}

// validKey reports whether a peer-supplied key names a real chunk of this
// grid — a malformed or hostile key must not poison the cache.
func (s *Server) validKey(k cache.Key) bool {
	if k.GB < 0 || int(k.GB) >= s.grid.Lattice().NumNodes() {
		return false
	}
	return k.Num >= 0 && int(k.Num) < s.grid.NumChunks(k.GB)
}

// handlePeerGet answers a peer's chunk lookup from the local tier.
func (s *Server) handlePeerGet(fr *wire.Frame) wire.Frame {
	k, err := decodePeerGet(fr.Payload)
	if err != nil {
		return peerErrFrame(err.Error(), false)
	}
	if !s.validKey(k) {
		return peerErrFrame(fmt.Sprintf("mtier: peer get: no such chunk (%d,%d)", k.GB, k.Num), false)
	}
	st := s.peerStore()
	var (
		data    *chunk.Chunk
		cl      cache.Class
		benefit float64
		found   bool
	)
	if is, ok := st.(peerInfoStore); ok {
		data, cl, benefit, found = is.GetInfo(k)
	} else {
		data, found = st.Get(k)
		cl = cache.ClassBackend
	}
	return wire.Frame{Type: framePeerChunk, Payload: encodePeerChunk(nil, data, cl, benefit, found)}
}

// handlePeerPut stores a peer-replicated chunk in the local tier. The
// replica is inserted with computed-class residency whatever class the
// sender fetched it under: it is a second copy the cluster can re-obtain
// cheaply (the origin node has it, and the backend always does), so it must
// never displace the chunks this node's own clients keep hot — the owner
// holds its partition in spare capacity, opportunistically. The benefit
// still travels with the replica, so within the computed ring the most
// expensive chunks survive longest.
func (s *Server) handlePeerPut(fr *wire.Frame) wire.Frame {
	k, data, _, benefit, err := decodePeerPut(fr.Payload)
	if err != nil {
		return peerErrFrame(err.Error(), false)
	}
	if !s.validKey(k) {
		return peerErrFrame(fmt.Sprintf("mtier: peer put: no such chunk (%d,%d)", k.GB, k.Num), false)
	}
	stored := s.peerStore().Insert(k, data, cache.AsComputed(benefit))
	return wire.Frame{Type: framePeerAck, Payload: encodePeerAck(nil, stored)}
}

// errPeerClosed is the permanent error after PeerClient.Close.
var errPeerClosed = errors.New("mtier: peer client is closed")

// DefaultPeerIOTimeout bounds one peer exchange when the caller's context
// carries no earlier deadline (the Peered store always supplies one).
const DefaultPeerIOTimeout = 2 * time.Second

// PeerClient is the cache.Peer implementation over the middle-tier wire
// protocol: one lazily-dialed multiplexed connection per peer, shared by
// concurrent fills and puts. There is no retry loop here — the Peered
// store's per-peer breaker owns failure policy, so one failed exchange
// reports immediately (marked transient when a fresh connection might cure
// it) and the broken connection is dropped for the next exchange to redial.
type PeerClient struct {
	addr    string
	maxPay  int
	dialTmo time.Duration

	closed atomic.Bool

	mu  sync.Mutex // guards mux swaps only, never held across I/O
	mux *wire.Mux
}

// NewPeerClient returns a lazily-connecting peer client. maxPayload bounds
// response frames (0 means wire.DefaultMaxPayload); the peer need not be
// reachable yet.
func NewPeerClient(addr string, maxPayload int) *PeerClient {
	return &PeerClient{addr: addr, maxPay: maxPayload, dialTmo: 2 * time.Second}
}

// getMux returns the live multiplexed connection, dialing if needed.
func (c *PeerClient) getMux(ctx context.Context) (*wire.Mux, error) {
	c.mu.Lock()
	if c.closed.Load() {
		c.mu.Unlock()
		return nil, errPeerClosed
	}
	if m := c.mux; m != nil && m.Healthy() {
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()
	d := net.Dialer{Timeout: c.dialTmo}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, backend.MarkTransient(err)
	}
	m := wire.NewMux(conn, c.maxPay, wire.Metrics{})
	c.mu.Lock()
	if c.closed.Load() {
		c.mu.Unlock()
		m.Close()
		return nil, errPeerClosed
	}
	if cur := c.mux; cur != nil && cur.Healthy() {
		c.mu.Unlock()
		m.Close()
		return cur, nil
	}
	old := c.mux
	c.mux = m
	c.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return m, nil
}

// dropMux discards a connection whose stream failed, if still current.
func (c *PeerClient) dropMux(m *wire.Mux) {
	c.mu.Lock()
	if c.mux == m {
		c.mux = nil
	}
	c.mu.Unlock()
	m.Close()
}

// exchange performs one peer round trip with the PR-3 error taxonomy:
// wire-level failures are transient (and tear the connection down), in-band
// PeerErr frames become RemoteError transient-or-not per the frame flag.
func (c *PeerClient) exchange(ctx context.Context, typ uint8, payload []byte) (*wire.Frame, error) {
	m, err := c.getMux(ctx)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(DefaultPeerIOTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	fr, err := m.RoundTrip(ctx, typ, 0, payload, deadline)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if errors.Is(err, wire.ErrClosed) {
			return nil, errPeerClosed
		}
		c.dropMux(m)
		return nil, backend.MarkTransient(fmt.Errorf("mtier: peer exchange: %w", err))
	}
	if fr.Type == wire.FrameBusy {
		// A shedding peer is transient, not a protocol violation: the fill
		// falls back to the backend and the put is dropped, both by design.
		return nil, wire.DecodeBusy(fr.Payload)
	}
	if fr.Type == framePeerErr {
		d := wire.NewDec(fr.Payload)
		rerr := &backend.RemoteError{Msg: d.String()}
		if fr.Flags&wire.FlagTransient != 0 {
			return nil, backend.MarkTransient(rerr)
		}
		return nil, rerr
	}
	return &fr, nil
}

// Get implements cache.Peer.
func (c *PeerClient) Get(ctx context.Context, k cache.Key) (*chunk.Chunk, cache.Class, float64, bool, error) {
	fr, err := c.exchange(ctx, framePeerGet, encodePeerGet(nil, k))
	if err != nil {
		return nil, 0, 0, false, err
	}
	if fr.Type != framePeerChunk {
		return nil, 0, 0, false, fmt.Errorf("mtier: peer get: unexpected frame type 0x%02x", fr.Type)
	}
	return decodePeerChunk(fr.Payload)
}

// Put implements cache.Peer.
func (c *PeerClient) Put(ctx context.Context, k cache.Key, data *chunk.Chunk, cl cache.Class, benefit float64) error {
	fr, err := c.exchange(ctx, framePeerPut, encodePeerPut(nil, k, data, cl, benefit))
	if err != nil {
		return err
	}
	if fr.Type != framePeerAck {
		return fmt.Errorf("mtier: peer put: unexpected frame type 0x%02x", fr.Type)
	}
	// A denied insert (owner declined admission) is not a peer failure; the
	// ack only needs to be well-formed.
	_, err = decodePeerAck(fr.Payload)
	return err
}

// Close implements cache.Peer.
func (c *PeerClient) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.mu.Lock()
	m := c.mux
	c.mux = nil
	c.mu.Unlock()
	if m != nil {
		m.Close()
	}
	return nil
}
