package mtier

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"aggcache/internal/obs"
	"aggcache/internal/wire"
)

// AdmissionConfig tunes the server-wide admission controller: a bounded
// queue of execution slots in front of the engine, deadline-aware shedding,
// and per-tenant rate quotas. The zero value disables admission entirely
// (every query executes immediately, the pre-admission behavior).
type AdmissionConfig struct {
	// MaxConcurrent is the number of queries executing at once, server-wide
	// (not per connection — a flash crowd of connections shares one pool).
	// <= 0 disables admission control.
	MaxConcurrent int
	// MaxQueue bounds how many queries may wait for a slot; arrivals beyond
	// it are shed immediately with a Busy reply instead of growing an
	// unbounded backlog. <= 0 means 4×MaxConcurrent.
	MaxQueue int
	// MaxWait bounds how long one query may wait in the queue before being
	// shed; it is also the ceiling on retry-after hints. <= 0 means 250ms.
	MaxWait time.Duration
	// TenantQPS caps admitted queries per second per tenant (token bucket,
	// burst TenantBurst). 0 means unlimited.
	TenantQPS float64
	// TenantBurst is the qps bucket's burst size; <= 0 means
	// max(1, ceil(2×TenantQPS)).
	TenantBurst int
	// TenantBytesPerSec caps response bytes per second per tenant. Bytes are
	// charged after the response is encoded (their size is unknowable at
	// admission), so the bucket runs a debt model: a tenant that overdraws
	// is shed until the debt refills. 0 means unlimited.
	TenantBytesPerSec float64
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 250 * time.Millisecond
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = int(math.Max(1, math.Ceil(2*c.TenantQPS)))
	}
	return c
}

// admission is the server-wide admission controller. Admit gates every
// client query (peer cache frames bypass it — they are cheap memory
// operations, and shedding them would only push load back to the backend);
// the decision to shed is made before any engine work happens, so a Busy
// reply costs microseconds while an admitted query may cost milliseconds —
// the asymmetry that keeps goodput flat when offered load exceeds capacity.
type admission struct {
	cfg AdmissionConfig
	met obs.AdmissionMetrics

	slots  chan struct{} // execution slots; buffered to MaxConcurrent
	queued atomic.Int64  // queries waiting for a slot right now

	// svc is the live service-time histogram (admitted execute latency,
	// queue wait excluded). Its p95 feeds the deadline-aware shed: a query
	// whose remaining budget is below the p95 would very likely expire
	// mid-execution, so refusing it up front converts a wasted execution
	// into a cheap Busy reply. Standalone (not registry-owned): the zero
	// value records and quantiles without registration.
	svc obs.Histogram

	sheds shedWindow // sheds/sec over a sliding window, for /healthz

	mu      sync.Mutex
	tenants map[string]*tenantState
}

func newAdmission(cfg AdmissionConfig) *admission {
	cfg = cfg.withDefaults()
	return &admission{
		cfg:     cfg,
		slots:   make(chan struct{}, cfg.MaxConcurrent),
		tenants: make(map[string]*tenantState),
	}
}

// Admit gates one query. On admission it returns a release closure the
// caller must invoke exactly once with the encoded response size — release
// frees the execution slot, feeds the service-time histogram, and charges
// the tenant's byte quota. On shed it returns the BusyError to reply with
// (reason + retry-after hint) and a nil release.
func (a *admission) Admit(tenant string, budget time.Duration) (release func(respBytes int), busy *wire.BusyError) {
	start := time.Now()
	ts := a.tenant(tenant)
	if ts != nil {
		if be := ts.admit(start); be != nil {
			a.shed(a.met.ShedQuota, start)
			return nil, be
		}
	}
	est := a.svc.Quantile(0.95)
	if budget > 0 && est > 0 && budget < est {
		// The deadline is unmeetable before any queueing: executing would
		// almost certainly blow the budget, so the work would be wasted.
		a.shed(a.met.ShedDeadline, start)
		return nil, &wire.BusyError{RetryAfter: a.cfg.MaxWait, Reason: "deadline"}
	}
	if a.queued.Add(1) > int64(a.cfg.MaxQueue) {
		a.queued.Add(-1)
		a.shed(a.met.ShedQueueFull, start)
		return nil, &wire.BusyError{RetryAfter: a.drainHint(est), Reason: "queue_full"}
	}
	a.met.QueueDepth.Add(1)
	// Wait for a slot, bounded by MaxWait — or by the query's own remaining
	// budget when that is tighter, so a deadline can only ever expire in the
	// queue, never silently mid-execution after queueing ate the budget.
	wait, timedOutReason := a.cfg.MaxWait, "queue_full"
	if budget > 0 && budget < wait {
		wait, timedOutReason = budget, "expired"
	}
	t := time.NewTimer(wait)
	select {
	case a.slots <- struct{}{}:
		t.Stop()
	case <-t.C:
		a.queued.Add(-1)
		a.met.QueueDepth.Add(-1)
		if timedOutReason == "expired" {
			a.shed(a.met.ShedExpired, start)
		} else {
			a.shed(a.met.ShedQueueFull, start)
		}
		return nil, &wire.BusyError{RetryAfter: a.drainHint(est), Reason: timedOutReason}
	}
	a.queued.Add(-1)
	a.met.QueueDepth.Add(-1)
	waited := time.Since(start)
	if budget > 0 && waited >= budget {
		// Belt-and-braces: the slot arrived in the same instant the deadline
		// passed. Shedding here is what makes "zero queries execute after
		// their deadline" structural rather than probabilistic.
		<-a.slots
		a.shed(a.met.ShedExpired, start)
		return nil, &wire.BusyError{RetryAfter: a.drainHint(est), Reason: "expired"}
	}
	a.met.QueueWait.Observe(waited)
	a.met.Admitted.Inc()
	admitted := time.Now()
	return func(respBytes int) {
		<-a.slots
		a.svc.Observe(time.Since(admitted))
		if ts != nil {
			ts.charge(time.Now(), respBytes)
		}
	}, nil
}

// shed counts one shed on its per-reason counter and the healthz rate
// window.
func (a *admission) shed(c *obs.Counter, now time.Time) {
	c.Inc()
	a.sheds.note(now)
}

// drainHint estimates how long until the queue has drained enough for a
// retry to be admitted: the current backlog served MaxConcurrent-wide at
// the p95 service time, clamped to [1ms, MaxWait] so clients neither
// hammer instantly nor stall on a wild estimate.
func (a *admission) drainHint(est time.Duration) time.Duration {
	if est <= 0 {
		est = 5 * time.Millisecond
	}
	h := time.Duration(float64(est) * float64(a.queued.Load()+1) / float64(a.cfg.MaxConcurrent))
	if h < time.Millisecond {
		h = time.Millisecond
	}
	if h > a.cfg.MaxWait {
		h = a.cfg.MaxWait
	}
	return h
}

// Depth returns the number of queries waiting for a slot right now.
func (a *admission) Depth() int {
	if a == nil {
		return 0
	}
	return int(a.queued.Load())
}

// ShedsPerSec returns the shed rate over the sliding window.
func (a *admission) ShedsPerSec() float64 {
	if a == nil {
		return 0
	}
	return a.sheds.rate(time.Now())
}

// tenant returns the quota state for a tenant id, creating it on first
// sight. Nil when the id is empty or no tenant quota is configured —
// quota-free tenants skip the lock entirely.
func (a *admission) tenant(id string) *tenantState {
	if id == "" || (a.cfg.TenantQPS <= 0 && a.cfg.TenantBytesPerSec <= 0) {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	ts := a.tenants[id]
	if ts == nil {
		now := time.Now()
		ts = &tenantState{
			qps:   bucket{rate: a.cfg.TenantQPS, burst: float64(a.cfg.TenantBurst), tokens: float64(a.cfg.TenantBurst), last: now},
			bytes: bucket{rate: a.cfg.TenantBytesPerSec, burst: a.cfg.TenantBytesPerSec, tokens: a.cfg.TenantBytesPerSec, last: now},
		}
		a.tenants[id] = ts
	}
	return ts
}

// tenantState is one tenant's pair of token buckets.
type tenantState struct {
	mu    sync.Mutex
	qps   bucket // admitted queries per second
	bytes bucket // response bytes per second, debt model
}

// admit checks both quotas at admission time, returning the quota shed to
// reply with or nil. The byte bucket is only *checked* here (is the tenant
// in debt from earlier responses?); the actual charge lands in charge once
// the response size is known.
func (ts *tenantState) admit(now time.Time) *wire.BusyError {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.bytes.rate > 0 {
		ts.bytes.refill(now)
		if ts.bytes.tokens < 0 {
			return &wire.BusyError{RetryAfter: ts.bytes.delay(0), Reason: "quota"}
		}
	}
	if ts.qps.rate > 0 && !ts.qps.take(now, 1) {
		return &wire.BusyError{RetryAfter: ts.qps.delay(1), Reason: "quota"}
	}
	return nil
}

// charge debits the byte bucket for one delivered response; the balance may
// go negative (debt), which admit sheds against until it refills.
func (ts *tenantState) charge(now time.Time, n int) {
	if ts.bytes.rate <= 0 {
		return
	}
	ts.mu.Lock()
	ts.bytes.refill(now)
	ts.bytes.tokens -= float64(n)
	ts.mu.Unlock()
}

// bucket is a token bucket refilled by wall clock. Callers hold the owning
// tenantState's lock.
type bucket struct {
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64 // may be negative under the debt model
	last   time.Time
}

func (b *bucket) refill(now time.Time) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
		b.last = now
	}
}

func (b *bucket) take(now time.Time, n float64) bool {
	b.refill(now)
	if b.tokens >= n {
		b.tokens -= n
		return true
	}
	return false
}

// delay returns how long until the bucket holds n tokens — the honest
// retry-after hint for a quota shed.
func (b *bucket) delay(n float64) time.Duration {
	need := n - b.tokens
	if need <= 0 || b.rate <= 0 {
		return time.Millisecond
	}
	return time.Duration(need / b.rate * float64(time.Second))
}

// shedWindowSecs is the sliding window the /healthz sheds/sec rate averages
// over.
const shedWindowSecs = 10

// shedWindow is a ring of per-second shed counts: each slot is stamped with
// the unix second it counts, so stale slots age out by being overwritten or
// skipped rather than needing a ticker goroutine.
type shedWindow struct {
	mu     sync.Mutex
	secs   [shedWindowSecs]int64
	counts [shedWindowSecs]int64
}

func (w *shedWindow) note(now time.Time) {
	s := now.Unix()
	i := int(s % shedWindowSecs)
	w.mu.Lock()
	if w.secs[i] != s {
		w.secs[i] = s
		w.counts[i] = 0
	}
	w.counts[i]++
	w.mu.Unlock()
}

func (w *shedWindow) rate(now time.Time) float64 {
	s := now.Unix()
	var total int64
	w.mu.Lock()
	for i := range w.secs {
		if s-w.secs[i] < shedWindowSecs {
			total += w.counts[i]
		}
	}
	w.mu.Unlock()
	return float64(total) / shedWindowSecs
}
