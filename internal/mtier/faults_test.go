package mtier

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/core"
	"aggcache/internal/obs"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
)

// newFaultyServer builds a middle tier whose backend path is
// Breaker(Faulty(engine)), for degraded-mode and timeout tests.
func newFaultyServer(t *testing.T, bcfg backend.BreakerConfig) (*Server, *backend.Faulty) {
	t.Helper()
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(44)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	be, err := backend.NewEngine(g, tab, backend.LatencyModel{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	faulty := backend.NewFaulty(be, backend.FaultPlan{Seed: 1})
	brk := backend.NewBreaker(faulty, bcfg)
	sz := sizer.NewEstimate(g, int64(tab.Len()))
	c, _ := cache.New(1<<20, cache.NewTwoLevel())
	eng, err := core.New(g, c, strategy.NewVCMC(g, sz), brk, sz)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return NewServer(eng), faulty
}

// TestDegradedEndToEnd drives the full wire path through an outage: cached
// answers keep flowing (marked Degraded on the response), backend-requiring
// queries fail, and /healthz stays 200 while reporting degraded mode.
func TestDegradedEndToEnd(t *testing.T) {
	bcfg := backend.BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute}
	srv, faulty := newFaultyServer(t, bcfg)
	srv.SetObs(obs.NewRegistry(), obs.NewTraceRing(8))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	h := srv.OpsHandler()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	const cached = "SUM(UnitSales) BY Time:Year"
	const uncached = "SUM(UnitSales) BY Product:Code, Time:Month"
	resp, err := cl.Query(cached)
	if err != nil {
		t.Fatalf("warm query: %v", err)
	}
	if resp.Degraded {
		t.Fatalf("healthy answer marked degraded")
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || strings.Contains(rec.Body.String(), "degraded") {
		t.Fatalf("healthy /healthz: %d %q", rec.Code, rec.Body.String())
	}

	// Outage: trip the breaker through the wire path.
	faulty.SetDown(true)
	for i := 0; i < bcfg.FailureThreshold; i++ {
		if _, err := cl.Query(uncached); err == nil {
			t.Fatalf("backend-requiring query succeeded during outage")
		}
	}

	resp, err = cl.Query(cached)
	if err != nil {
		t.Fatalf("cached query during outage: %v", err)
	}
	if !resp.Degraded {
		t.Fatalf("outage answer not marked degraded")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "degraded") {
		t.Fatalf("degraded /healthz: %d %q", rec.Code, rec.Body.String())
	}
}

// TestQueryTimeoutOutcome: a backend that hangs past the server's query
// budget yields a timeout-classified failure, counted on its own metric
// series, while the connection survives.
func TestQueryTimeoutOutcome(t *testing.T) {
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(44)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	be, err := backend.NewEngine(g, tab, backend.LatencyModel{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	faulty := backend.NewFaulty(be, backend.FaultPlan{Seed: 1, HangRate: 1, HangFor: time.Minute})
	sz := sizer.NewEstimate(g, int64(tab.Len()))
	c, _ := cache.New(1<<20, cache.NewTwoLevel())
	eng, err := core.New(g, c, strategy.NewVCMC(g, sz), faulty, sz)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	srv := NewServer(eng)
	srv.SetQueryTimeout(30 * time.Millisecond)
	ring := obs.NewTraceRing(8)
	srv.SetObs(obs.NewRegistry(), ring)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })

	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	start := time.Now()
	_, err = cl.Query("SUM(UnitSales) BY Time:Year")
	if err == nil {
		t.Fatalf("hung backend answered")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("query timeout took %v", elapsed)
	}
	traces := ring.Snapshot()
	if len(traces) == 0 || traces[len(traces)-1].Outcome != "timeout" {
		t.Fatalf("trace outcome not 'timeout': %+v", traces)
	}

	// The connection survives; a second (still-hanging) query also times out
	// in-band rather than tearing the stream down.
	if _, err := cl.Query("SUM(UnitSales) BY Time:Year"); err == nil {
		t.Fatalf("second hung query answered")
	}
}
