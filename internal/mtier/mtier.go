// Package mtier exposes a middle-tier (aggregate aware cache) engine to
// remote clients over TCP, completing the paper's three-tier deployment:
// clients send mdq query strings, the middle tier answers from its cache or
// the backend, and replies with the result cells plus provenance (cache hit,
// aggregated, backend) and the Figure-10 time breakup.
//
// The wire protocol is gob over a persistent connection, mirroring
// package backend's protocol between the middle tier and the database.
package mtier

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"aggcache/internal/chunk"
	"aggcache/internal/core"
	"aggcache/internal/mdq"
)

// Request is one client query.
type Request struct {
	// Query is an mdq statement, e.g.
	// "SUM(UnitSales) BY Product:Group WHERE Product:Group IN 0..3".
	Query string
}

// Cell is one result cell: absolute member ids at the queried levels plus
// the aggregate value (already computed per the query's aggregate function)
// and the underlying sum/count pair.
type Cell struct {
	Members []int32
	Value   float64
	Sum     float64
	Count   int64
}

// Response answers one Request.
type Response struct {
	// Agg is the aggregate function applied ("SUM", "COUNT", "AVG").
	Agg string
	// Levels names the group-by level per dimension.
	Levels []string
	Cells  []Cell
	// CompleteHit reports that the cache answered without the backend;
	// Aggregated reports in-cache aggregation happened.
	CompleteHit bool
	Aggregated  bool
	// Lookup/Aggregate/Update/Backend are the time-breakup components in
	// nanoseconds.
	Lookup, Aggregate, Update, Backend int64
	// Err is non-empty on failure.
	Err string
}

// Total returns the response's total service time.
func (r *Response) Total() time.Duration {
	return time.Duration(r.Lookup + r.Aggregate + r.Update + r.Backend)
}

// Server serves one engine to many clients. Each connection is served by
// its own goroutine and the engine executes queries concurrently, so
// clients scale with cores instead of queueing on a global engine lock.
type Server struct {
	engine *core.Engine
	grid   *chunk.Grid

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer wraps an engine for serving.
func NewServer(engine *core.Engine) *Server {
	return &Server{engine: engine, grid: engine.Grid(), conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting connections on addr and returns the bound
// address. A server listens at most once: a second call — or a call after
// Close — is rejected so the first listener is never silently leaked.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("mtier: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed || s.ln != nil {
		closed := s.closed
		s.mu.Unlock()
		ln.Close()
		if closed {
			return "", errors.New("mtier: listen: server is closed")
		}
		return "", errors.New("mtier: listen: server is already listening")
	}
	s.ln = ln
	s.wg.Add(1)
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Re-check closed under mu before tracking: Close may have swept
		// conns between Accept returning and this point, and a connection
		// registered after the sweep would never be closed. The wg.Add must
		// also happen before unlocking so Close's wg.Wait cannot miss the
		// serving goroutine.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.answer(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// answer executes one query.
func (s *Server) answer(req Request) *Response {
	q, agg, err := mdq.Compile(req.Query, s.grid)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	res, err := s.engine.Execute(q)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	lat := s.grid.Lattice()
	lv := lat.Level(q.GB)
	sch := s.grid.Schema()
	resp := &Response{
		Agg:         agg.String(),
		CompleteHit: res.CompleteHit,
		Aggregated:  res.AggregatedTuples > 0,
		Lookup:      int64(res.Breakdown.Lookup),
		Aggregate:   int64(res.Breakdown.Aggregate),
		Update:      int64(res.Breakdown.Update),
		Backend:     int64(res.Breakdown.Backend),
	}
	for d, l := range lv {
		resp.Levels = append(resp.Levels, sch.Dim(d).Name()+":"+sch.Dim(d).LevelName(l))
	}
	for _, c := range res.Chunks {
		for i, key := range c.Keys {
			members := s.grid.CellMembers(c.GB, int(c.Num), key, nil)
			count := int64(1)
			if c.Counts != nil {
				count = c.Counts[i]
			}
			resp.Cells = append(resp.Cells, Cell{
				Members: members,
				Value:   agg.Apply(c.Vals[i], count),
				Sum:     c.Vals[i],
				Count:   count,
			})
		}
	}
	return resp
}

// Close stops the listener and closes active connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a middle-tier client. It is safe for concurrent use; requests
// are serialized over one connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *gob.Decoder
	enc  *gob.Encoder
}

// Dial connects to a middle-tier server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mtier: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, dec: gob.NewDecoder(conn), enc: gob.NewEncoder(conn)}, nil
}

// Query runs one mdq query on the middle tier.
func (c *Client) Query(src string) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, errors.New("mtier: client is closed")
	}
	if err := c.enc.Encode(&Request{Query: src}); err != nil {
		return nil, fmt.Errorf("mtier: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			err = errors.New("server closed the connection")
		}
		return nil, fmt.Errorf("mtier: receive: %w", err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("mtier: remote: %s", resp.Err)
	}
	return &resp, nil
}

// Close releases the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
