// Package mtier exposes a middle-tier (aggregate aware cache) engine to
// remote clients over TCP, completing the paper's three-tier deployment:
// clients send mdq query strings, the middle tier answers from its cache or
// the backend, and replies with the result cells plus provenance (cache hit,
// aggregated, backend) and the Figure-10 time breakup.
//
// The wire protocol is the length-prefixed binary framing of package wire
// over a persistent connection — the same layer the middle tier speaks to
// the backend — so clients can pipeline queries: concurrent Query calls
// share one connection and responses are matched by request id, in
// whatever order the server finishes them.
package mtier

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"aggcache/internal/chunk"
	"aggcache/internal/core"
	"aggcache/internal/mdq"
	"aggcache/internal/obs"
	"aggcache/internal/wire"
)

// Request is one client query.
type Request struct {
	// Query is an mdq statement, e.g.
	// "SUM(UnitSales) BY Product:Group WHERE Product:Group IN 0..3".
	Query string
	// Tenant identifies the client for per-tenant admission quotas; empty
	// means anonymous (no quota applies).
	Tenant string
	// Budget is the query's remaining deadline budget; the engine runs
	// under min(Budget, server query timeout). 0 means no client deadline.
	Budget time.Duration
}

// Cell is one result cell: absolute member ids at the queried levels plus
// the aggregate value (already computed per the query's aggregate function)
// and the underlying sum/count pair.
type Cell struct {
	Members []int32
	Value   float64
	Sum     float64
	Count   int64
}

// Response answers one Request.
type Response struct {
	// Agg is the aggregate function applied ("SUM", "COUNT", "AVG").
	Agg string
	// Levels names the group-by level per dimension.
	Levels []string
	Cells  []Cell
	// CompleteHit reports that the cache answered without the backend;
	// Aggregated reports in-cache aggregation happened.
	CompleteHit bool
	Aggregated  bool
	// Degraded reports the answer was served from the cache alone while the
	// backend was unreachable (circuit breaker open) — see core.Result.
	Degraded bool
	// Lookup/Aggregate/Update/Backend are the time-breakup components in
	// nanoseconds.
	Lookup, Aggregate, Update, Backend int64
	// Err is non-empty on failure.
	Err string
}

// Total returns the response's total service time.
func (r *Response) Total() time.Duration {
	return time.Duration(r.Lookup + r.Aggregate + r.Update + r.Backend)
}

// Server serves one engine to many clients. Each connection is served by
// its own goroutine and the engine executes queries concurrently, so
// clients scale with cores instead of queueing on a global engine lock.
type Server struct {
	engine *core.Engine
	grid   *chunk.Grid
	// queryTimeout bounds each query's execution; zero means no bound.
	queryTimeout time.Duration
	// tmo is the wire deadline policy (idle reaping, response writes).
	tmo wire.Timeouts
	// maxPay bounds request frames; 0 means wire.DefaultMaxPayload.
	maxPay int
	// maxInFlight caps concurrently executing handlers per connection; 0
	// means wire.DefaultMaxInFlight.
	maxInFlight int
	// adm is the server-wide admission controller; nil means every query is
	// admitted (the pre-admission behavior).
	adm *admission

	// reg/ring/met are the observability layer, wired by SetObs (or lazily
	// by OpsHandler). met's handles are atomics; the ring takes its own
	// short lock per trace.
	reg  *obs.Registry
	ring *obs.TraceRing
	met  obs.ServerMetrics

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[net.Conn]struct{}
	ops    *obs.OpsServer
	wg     sync.WaitGroup
}

// DefaultTimeouts is the middle-tier server's out-of-the-box wire deadline
// policy: no idle limit (clients legitimately hold idle persistent
// connections), one minute to write a response to a slow client.
var DefaultTimeouts = wire.Timeouts{Write: time.Minute}

// NewServer wraps an engine for serving with DefaultTimeouts.
func NewServer(engine *core.Engine) *Server {
	return &Server{engine: engine, grid: engine.Grid(), tmo: DefaultTimeouts, conns: make(map[net.Conn]struct{})}
}

// SetTimeouts replaces the wire deadline policy — the same Timeouts the
// backend server uses, so a stuck or idle client can never wedge a serving
// goroutine forever. The Request field is ignored; use SetQueryTimeout,
// which also classifies the failure for /metrics. Call before Listen; it is
// not synchronized with connections in flight.
func (s *Server) SetTimeouts(t wire.Timeouts) { s.tmo = t }

// SetMaxPayload bounds request frame payloads (0 means
// wire.DefaultMaxPayload). Call before Listen.
func (s *Server) SetMaxPayload(n int) { s.maxPay = n }

// SetMaxInFlight caps concurrently executing handlers per connection (0
// means wire.DefaultMaxInFlight). It bounds one connection's pipelining;
// SetAdmission bounds the whole server. Call before Listen.
func (s *Server) SetMaxInFlight(n int) { s.maxInFlight = n }

// SetAdmission installs the server-wide admission controller: every client
// query passes its bounded queue, deadline check and tenant quotas before
// touching the engine, and shed queries are answered with an in-band Busy
// frame (transient, retry-after hint) instead of queueing without bound.
// A config with MaxConcurrent <= 0 removes the controller. Call before
// Listen; it is not synchronized with requests in flight.
func (s *Server) SetAdmission(cfg AdmissionConfig) {
	if cfg.MaxConcurrent <= 0 {
		s.adm = nil
		return
	}
	s.adm = newAdmission(cfg)
	if s.reg != nil {
		s.adm.met = obs.NewAdmissionMetrics(s.reg)
	}
}

// SetQueryTimeout bounds each query's execution time: the engine runs it
// under a context with this deadline, so a hung or slow backend fails the
// query with a timeout error instead of hanging the client. Zero (the
// default) means unbounded. Call before Listen; it is not synchronized with
// requests in flight.
func (s *Server) SetQueryTimeout(d time.Duration) { s.queryTimeout = d }

// SetObs attaches a metrics registry and query-trace ring. Call it before
// Listen; it is not synchronized with requests in flight. Either argument
// may be nil to disable that half.
func (s *Server) SetObs(reg *obs.Registry, ring *obs.TraceRing) {
	s.reg = reg
	s.ring = ring
	if reg != nil {
		s.met = obs.NewServerMetrics(reg)
		if s.adm != nil {
			// SetAdmission ran first; attach its metrics now.
			s.adm.met = obs.NewAdmissionMetrics(reg)
		}
	}
}

// Healthy reports whether the server is accepting queries; it is the
// /healthz signal and flips to false on Close.
func (s *Server) Healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed
}

// Traces returns the server's trace ring (nil when tracing is off).
func (s *Server) Traces() *obs.TraceRing { return s.ring }

// OpsHandler returns the ops HTTP handler (/metrics, /healthz, /traces,
// /debug/pprof/) over this server's observability state, wiring a default
// registry and trace ring first if SetObs was never called.
func (s *Server) OpsHandler() http.Handler {
	if s.reg == nil {
		s.SetObs(obs.NewRegistry(), obs.NewTraceRing(0))
	}
	return obs.NewStatusHandler(s.reg, s.ring, func() (bool, string) {
		if !s.Healthy() {
			return false, "closed"
		}
		detail := ""
		if s.engine.Degraded() {
			detail = "(degraded: cache-only, backend unavailable)"
		}
		// Shedding is healthy behavior — the server is protecting itself —
		// but operators need to see it next to the degraded-mode field.
		if r, d := s.adm.ShedsPerSec(), s.adm.Depth(); r > 0 || d > 0 {
			if detail != "" {
				detail += " "
			}
			detail += fmt.Sprintf("(shedding: %.1f sheds/s, queue depth %d)", r, d)
		}
		return true, detail
	})
}

// ServeOps starts the ops HTTP listener on addr and returns the bound
// address. The listener is shut down by Close. Like Listen, a server serves
// ops at most once.
func (s *Server) ServeOps(addr string) (string, error) {
	h := s.OpsHandler()
	s.mu.Lock()
	if s.closed || s.ops != nil {
		s.mu.Unlock()
		return "", errors.New("mtier: ops listener already started or server closed")
	}
	s.mu.Unlock()
	ops, err := obs.Serve(addr, h)
	if err != nil {
		return "", fmt.Errorf("mtier: ops: %w", err)
	}
	s.mu.Lock()
	if s.closed || s.ops != nil {
		s.mu.Unlock()
		ops.Close()
		return "", errors.New("mtier: ops listener already started or server closed")
	}
	s.ops = ops
	s.mu.Unlock()
	return ops.Addr(), nil
}

// Listen starts accepting connections on addr and returns the bound
// address. A server listens at most once: a second call — or a call after
// Close — is rejected so the first listener is never silently leaked.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("mtier: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed || s.ln != nil {
		closed := s.closed
		s.mu.Unlock()
		ln.Close()
		if closed {
			return "", errors.New("mtier: listen: server is closed")
		}
		return "", errors.New("mtier: listen: server is already listening")
	}
	s.ln = ln
	s.wg.Add(1)
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Re-check closed under mu before tracking: Close may have swept
		// conns between Accept returning and this point, and a connection
		// registered after the sweep would never be closed. The wg.Add must
		// also happen before unlocking so Close's wg.Wait cannot miss the
		// serving goroutine.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.met.ConnectionsOpen.Add(1)
	defer func() {
		s.met.ConnectionsOpen.Add(-1)
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// The shared serve loop brings the deadline policy and error accounting
	// the backend server has had since the Timeouts work: decode/encode
	// failures count on /metrics instead of silently dropping the
	// connection, idle reaping is counted separately, and pipelined
	// requests execute concurrently.
	wire.ServeConn(conn, wire.ConnOptions{
		Timeouts:    s.tmo,
		MaxPayload:  s.maxPay,
		MaxInFlight: s.maxInFlight,
		Metrics: wire.Metrics{
			BytesIn:   s.met.WireBytesIn,
			BytesOut:  s.met.WireBytesOut,
			FramesIn:  s.met.FramesIn,
			FramesOut: s.met.FramesOut,
			InFlight:  s.met.InFlight,
		},
		WireErrors: s.met.WireErrors,
		IdleCloses: s.met.IdleCloses,
	}, s.handleFrame)
}

// handleFrame serves one frame — a client query or a peer cache request
// (both kinds share the listener, so a cluster member is just another
// pipelined client). All failures — including an unrecognized frame type —
// are answered in-band, so the connection survives a bad request under its
// pipelined neighbors.
//
// Client queries pass the admission controller when one is installed; peer
// cache frames bypass it deliberately — they are cheap memory operations,
// and shedding them would push a neighbor's misses to the backend, the
// opposite of protecting the cluster under load.
func (s *Server) handleFrame(fr *wire.Frame) wire.Frame {
	switch fr.Type {
	case framePeerGet:
		return s.handlePeerGet(fr)
	case framePeerPut:
		return s.handlePeerPut(fr)
	}
	if fr.Type != frameQuery {
		resp := &Response{Err: fmt.Sprintf("unknown frame type 0x%02x", fr.Type)}
		return wire.Frame{Type: frameAnswer, Payload: encodeResponse(nil, resp)}
	}
	query, tenant, budget, err := decodeQuery(fr.Payload)
	if err != nil {
		return wire.Frame{Type: frameAnswer, Payload: encodeResponse(nil, &Response{Err: err.Error()})}
	}
	req := Request{Query: query, Tenant: tenant, Budget: budget}
	if s.adm == nil {
		return wire.Frame{Type: frameAnswer, Payload: encodeResponse(nil, s.answer(req))}
	}
	// Pin the absolute deadline before queueing so the budget the engine
	// runs under is what remains after the queue wait, not the original.
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	release, busy := s.adm.Admit(tenant, budget)
	if busy != nil {
		return wire.BusyFrame(busy.RetryAfter, busy.Reason)
	}
	if !deadline.IsZero() {
		req.Budget = time.Until(deadline)
	}
	payload := encodeResponse(nil, s.answer(req))
	release(len(payload))
	return wire.Frame{Type: frameAnswer, Payload: payload}
}

// answer executes one query, recording metrics and a trace-ring entry for
// every outcome. Failures are counted server-side by kind — not just folded
// into the wire Err string — so a misbehaving client or a failing backend
// is visible on /metrics and /traces.
func (s *Server) answer(req Request) *Response {
	start := time.Now()
	s.met.Requests.Inc()
	q, agg, err := mdq.Compile(req.Query, s.grid)
	if err != nil {
		s.met.CompileErrors.Inc()
		s.met.Latency.Observe(time.Since(start))
		s.ring.Add(obs.QueryTrace{
			Start: start, Query: req.Query,
			TotalNS: int64(time.Since(start)),
			Outcome: "compile_error", Err: err.Error(),
		})
		return &Response{Err: err.Error()}
	}
	lat := s.grid.Lattice()
	ctx := context.Background()
	timeout := s.queryTimeout
	if req.Budget > 0 && (timeout <= 0 || req.Budget < timeout) {
		// The client's deadline budget is tighter than the server policy:
		// honoring it means no work continues past the point the client has
		// given up.
		timeout = req.Budget
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := s.engine.Execute(ctx, q)
	if err != nil {
		// Count failures by kind so an open breaker or a hung backend is
		// distinguishable from a bad query on /metrics and /traces.
		outcome := "execute_error"
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			outcome = "timeout"
			s.met.TimeoutErrors.Inc()
		case errors.Is(err, core.ErrBackendUnavailable):
			outcome = "unavailable"
			s.met.UnavailableErrors.Inc()
		default:
			s.met.ExecuteErrors.Inc()
		}
		s.met.Latency.Observe(time.Since(start))
		s.ring.Add(obs.QueryTrace{
			Start: start, Query: req.Query,
			GroupBy: lat.LevelTupleString(q.GB),
			TotalNS: int64(time.Since(start)),
			Outcome: outcome, Err: err.Error(),
		})
		return &Response{Err: err.Error()}
	}
	lv := lat.Level(q.GB)
	sch := s.grid.Schema()
	resp := &Response{
		Agg:         agg.String(),
		CompleteHit: res.CompleteHit,
		Aggregated:  res.AggregatedTuples > 0,
		Degraded:    res.Degraded,
		Lookup:      int64(res.Breakdown.Lookup),
		Aggregate:   int64(res.Breakdown.Aggregate),
		Update:      int64(res.Breakdown.Update),
		Backend:     int64(res.Breakdown.Backend),
	}
	for d, l := range lv {
		resp.Levels = append(resp.Levels, sch.Dim(d).Name()+":"+sch.Dim(d).LevelName(l))
	}
	for _, c := range res.Chunks {
		for i, key := range c.Keys {
			members := s.grid.CellMembers(c.GB, int(c.Num), key, nil)
			count := int64(1)
			if c.Counts != nil {
				count = c.Counts[i]
			}
			resp.Cells = append(resp.Cells, Cell{
				Members: members,
				Value:   agg.Apply(c.Vals[i], count),
				Sum:     c.Vals[i],
				Count:   count,
			})
		}
	}
	s.met.Latency.Observe(time.Since(start))
	s.ring.Add(obs.QueryTrace{
		Start:            start,
		Query:            req.Query,
		GroupBy:          lat.LevelTupleString(q.GB),
		Chunks:           len(res.Chunks),
		Hit:              res.HitChunks - res.AggChunks,
		Aggregated:       res.AggChunks,
		Fetched:          res.MissChunks,
		AggregatedTuples: res.AggregatedTuples,
		BackendTuples:    res.BackendTuples,
		LookupNS:         int64(res.Breakdown.Lookup),
		AggregateNS:      int64(res.Breakdown.Aggregate),
		UpdateNS:         int64(res.Breakdown.Update),
		BackendNS:        int64(res.Breakdown.Backend),
		TotalNS:          int64(time.Since(start)),
		CompleteHit:      res.CompleteHit,
		Outcome:          "ok",
	})
	return resp
}

// Close stops the listener, closes active connections, and finally shuts
// the ops HTTP listener down. The closed flag flips first, so /healthz
// reports unhealthy for the remainder of the shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	ops := s.ops
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	if cerr := ops.Close(); err == nil {
		err = cerr
	}
	return err
}

// Client is a middle-tier client. It is safe for concurrent use: queries
// are pipelined over one multiplexed connection, so N goroutines calling
// Query share the connection without serializing on each other's round
// trips.
type Client struct {
	mu     sync.Mutex
	mux    *wire.Mux
	closed bool
	tenant string
}

// Dial connects to a middle-tier server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mtier: dial %s: %w", addr, err)
	}
	return &Client{mux: wire.NewMux(conn, 0, wire.Metrics{})}, nil
}

// SetTenant attaches a tenant id to every subsequent query, keying the
// server's per-tenant admission quotas. Empty (the default) is anonymous.
func (c *Client) SetTenant(id string) {
	c.mu.Lock()
	c.tenant = id
	c.mu.Unlock()
}

// Query runs one mdq query on the middle tier.
func (c *Client) Query(src string) (*Response, error) {
	return c.QueryContext(context.Background(), src)
}

// QueryContext runs one mdq query under a caller-supplied context; the
// query is abandoned (the connection stays healthy) when the context ends.
// A context deadline also propagates to the server as the query's budget,
// so an overloaded server can shed the query up front — replied as a
// *wire.BusyError, transient per the backend taxonomy — instead of doing
// work the caller will have abandoned.
func (c *Client) QueryContext(ctx context.Context, src string) (*Response, error) {
	c.mu.Lock()
	m := c.mux
	closed := c.closed
	tenant := c.tenant
	c.mu.Unlock()
	if closed || m == nil {
		return nil, errors.New("mtier: client is closed")
	}
	var budget time.Duration
	if d, ok := ctx.Deadline(); ok {
		if budget = time.Until(d); budget <= 0 {
			return nil, context.DeadlineExceeded
		}
	}
	fr, err := m.RoundTrip(ctx, frameQuery, 0, encodeQuery(nil, src, tenant, budget), time.Time{})
	if err != nil {
		if errors.Is(err, io.EOF) {
			err = errors.New("server closed the connection")
		}
		return nil, fmt.Errorf("mtier: %w", err)
	}
	if fr.Type == wire.FrameBusy {
		// Load shedding: transient by the PR-3 taxonomy (backend.IsTransient
		// is true for BusyError), so retry loops back off per the hint.
		return nil, fmt.Errorf("mtier: %w", wire.DecodeBusy(fr.Payload))
	}
	if fr.Type != frameAnswer {
		return nil, fmt.Errorf("mtier: unexpected frame type 0x%02x", fr.Type)
	}
	resp, err := decodeResponse(fr.Payload)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("mtier: remote: %s", resp.Err)
	}
	return resp, nil
}

// Close releases the connection; queries in flight fail promptly.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.mux != nil {
		c.mux.Close()
	}
	return nil
}
