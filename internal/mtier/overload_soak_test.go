package mtier

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aggcache/internal/backend"
	"aggcache/internal/obs"
	"aggcache/internal/wire"
	"aggcache/internal/workload"
)

// TestOverloadSoak drives a deliberately under-provisioned server (few
// execution slots, a really-sleeping backend) with hostile traffic — a
// Zipf hot-key stream, a flash crowd under tight deadlines, and a
// quota-capped scan flood — all at once, under the race detector via
// `make soak-overload`. The overload contract:
//
//   - the server never collapses: every failure is an in-band Busy shed
//     (classified transient by the backend taxonomy) or a deadline expiry,
//     never a torn connection or an unclassified error;
//   - no query executes past its deadline: a budgeted query either sheds,
//     times out, or completes with its engine time inside the budget;
//   - the quota-capped flood tenant is shed with reason "quota" while the
//     polite tenants keep being served;
//   - once the storm passes, the very same server serves again.
func TestOverloadSoak(t *testing.T) {
	srv := newSlowServer(t, 10*time.Millisecond)
	reg := obs.NewRegistry()
	srv.SetObs(reg, obs.NewTraceRing(64))
	// Two slots against twelve unpaced workers: the queue must fill (60
	// burst tokens arrive at t=0 against 6 spots of capacity), deadlines
	// must expire in it, and the quota must bind each tenant's sustained
	// rate — all three shed paths exercised in one storm.
	srv.SetAdmission(AdmissionConfig{
		MaxConcurrent: 2,
		MaxQueue:      4,
		MaxWait:       15 * time.Millisecond,
		TenantQPS:     150,
		TenantBurst:   20,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	g := srv.grid
	zipf, err := workload.NewZipf(g, 32, 1.4, 1)
	if err != nil {
		t.Fatalf("NewZipf: %v", err)
	}
	crowd, err := workload.NewFlashCrowd(g, 40, 2)
	if err != nil {
		t.Fatalf("NewFlashCrowd: %v", err)
	}
	flood, err := workload.NewScanFlood(g, 2, 3)
	if err != nil {
		t.Fatalf("NewScanFlood: %v", err)
	}

	type tenantRun struct {
		name   string
		src    workload.Source
		budget time.Duration // 0 = no deadline
		// counters
		ok, busy, quota, expired, timeout atomic.Int64
	}
	// The crowd's budget is meetable (5× the service time) but real: under
	// contention it can still expire in the queue, and a success must show
	// engine time inside it. The deterministic "deadline"/"expired" paths
	// are pinned by the unit tests above; the soak checks the storm mix.
	runs := []*tenantRun{
		{name: "zipf", src: zipf},
		{name: "crowd", src: crowd, budget: 50 * time.Millisecond},
		{name: "flood", src: flood},
	}

	const (
		workersPerTenant = 4
		queriesPerWorker = 80
	)
	var wg sync.WaitGroup
	for _, run := range runs {
		run := run
		cl, err := Dial(addr)
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		defer cl.Close()
		cl.SetTenant(run.name)
		var srcMu sync.Mutex
		for w := 0; w < workersPerTenant; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < queriesPerWorker; i++ {
					// Light pacing stretches the storm past the initial
					// burst-token window, so quota refills race real queue
					// pressure instead of one t=0 stampede deciding it all.
					time.Sleep(time.Millisecond)
					srcMu.Lock()
					q := run.src.Next()
					srcMu.Unlock()
					src := workload.FormatQuery(g, q)
					ctx := context.Background()
					cancel := context.CancelFunc(func() {})
					if run.budget > 0 {
						ctx, cancel = context.WithTimeout(ctx, run.budget)
					}
					resp, err := cl.QueryContext(ctx, src)
					cancel()
					switch {
					case err == nil:
						run.ok.Add(1)
						if run.budget > 0 {
							// "Zero queries execute past their deadline":
							// the engine ran under the remaining budget, so
							// its own time must fit the budget (plus the
							// slack of one phase that cannot observe the
							// context between checks).
							if resp.Total() > run.budget+30*time.Millisecond {
								t.Errorf("%s: success with engine time %v over budget %v", run.name, resp.Total(), run.budget)
							}
						}
					case errors.Is(err, context.DeadlineExceeded):
						run.timeout.Add(1)
					default:
						be, isBusy := wire.AsBusy(err)
						if !isBusy {
							t.Errorf("%s: unclassified overload error: %v", run.name, err)
							return
						}
						if !backend.IsTransient(err) {
							t.Errorf("%s: busy shed not transient: %v", run.name, err)
							return
						}
						run.busy.Add(1)
						switch be.Reason {
						case "quota":
							run.quota.Add(1)
						case "expired":
							run.expired.Add(1)
						}
					}
				}
			}()
		}
	}
	wg.Wait()

	for _, run := range runs {
		t.Logf("%s: ok=%d busy=%d (quota=%d expired=%d) timeout=%d",
			run.name, run.ok.Load(), run.busy.Load(), run.quota.Load(), run.expired.Load(), run.timeout.Load())
	}
	var totalOK, totalBusy int64
	for _, run := range runs {
		totalOK += run.ok.Load()
		totalBusy += run.busy.Load()
	}
	if totalOK == 0 {
		t.Fatalf("overloaded server served nothing at all — shedding everything is collapse too")
	}
	if totalBusy == 0 {
		t.Fatalf("12 workers against 2 slots produced zero sheds — admission control inert")
	}
	var totalQuota int64
	for _, run := range runs {
		totalQuota += run.quota.Load()
	}
	if totalQuota == 0 {
		t.Fatalf("unpaced tenants well past %v qps saw no quota sheds", 150)
	}
	if totalBusy == totalQuota {
		t.Fatalf("every shed was a quota shed — the admission queue never filled")
	}
	// The polite tenants must keep being served through the flood. The
	// flood itself is the aggressor — ending the storm fully shed is a
	// legitimate outcome for it, so it is logged, not asserted.
	for _, run := range runs {
		if run.name != "flood" && run.ok.Load() == 0 {
			t.Errorf("tenant %s was starved outright", run.name)
		}
	}
	// The storm is over: the same server answers a plain query promptly.
	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial after storm: %v", err)
	}
	defer cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err = cl.Query("SUM(UnitSales) BY Time:Year"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not recover after the storm: %v", err)
		}
		if be, ok := wire.AsBusy(err); ok {
			time.Sleep(be.RetryAfter)
			continue
		}
		t.Fatalf("post-storm query failed hard: %v", err)
	}
	if !srv.Healthy() {
		t.Fatalf("server reports unhealthy after the storm")
	}
}
