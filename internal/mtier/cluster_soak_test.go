package mtier

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/core"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
	"aggcache/internal/workload"
)

// flakyPeer wraps a live peer connection and fails every third exchange with
// a transient error, the failure mode the breaker taxonomy is built for: the
// peer is reachable but unreliable, so the breaker must keep cycling between
// open (degrade to local+backend) and closed (peer fills resume).
type flakyPeer struct {
	inner cache.Peer
	n     atomic.Int64
}

var errInjected = errors.New("mtier: injected peer fault")

func (f *flakyPeer) Get(ctx context.Context, k cache.Key) (*chunk.Chunk, cache.Class, float64, bool, error) {
	if f.n.Add(1)%3 == 0 {
		return nil, 0, 0, false, backend.MarkTransient(errInjected)
	}
	return f.inner.Get(ctx, k)
}

func (f *flakyPeer) Put(ctx context.Context, k cache.Key, data *chunk.Chunk, cl cache.Class, benefit float64) error {
	if f.n.Add(1)%3 == 0 {
		return backend.MarkTransient(errInjected)
	}
	return f.inner.Put(ctx, k, data, cl, benefit)
}

func (f *flakyPeer) Close() error { return f.inner.Close() }

// soakNode is one in-process cluster member with a live TCP peer listener.
type soakNode struct {
	peered *cache.Peered
	engine *core.Engine
	server *Server
}

// TestClusterSoak drives a 3-node cluster in which every connection to one
// member is fault-injected. The contract under soak: every query succeeds
// (peer faults degrade to local+backend, never surface to clients), the
// group exchanges real peer traffic, and the run is race-clean.
func TestClusterSoak(t *testing.T) {
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(44)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	be, err := backend.NewEngine(g, tab, backend.LatencyModel{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	sz := sizer.NewEstimate(g, int64(tab.Len()))

	const n = 3
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i)
	}
	addrOf := make(map[string]string, n)
	var mu sync.Mutex
	dial := func(name string) cache.Peer {
		mu.Lock()
		addr := addrOf[name]
		mu.Unlock()
		var p cache.Peer = NewPeerClient(addr, 0)
		// Every connection to node2 is unreliable.
		if name == names[n-1] {
			p = &flakyPeer{inner: p}
		}
		return p
	}

	nodes := make([]*soakNode, 0, n)
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.server.Close()
			nd.peered.Close()
		}
	})
	for i := 0; i < n; i++ {
		store, err := cache.New(1<<18, cache.NewTwoLevelPromote())
		if err != nil {
			t.Fatalf("cache.New: %v", err)
		}
		pc, err := cache.NewPeered(store, cache.PeeredConfig{
			Self:    names[i],
			Members: []string{names[i]},
			Dial:    dial,
			// A low threshold and short cooldown so the soak exercises the
			// full breaker cycle many times: open on the injected faults,
			// half-open probe, close on the next success.
			BreakerThreshold: 3,
			BreakerCooldown:  20 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("NewPeered: %v", err)
		}
		// Recycling, the semantic result cache and promote-on-reuse all run
		// under the soak's fault injection and the race detector.
		eng, err := core.New(g, pc, strategy.NewVCMC(g, sz), be, sz,
			core.WithRecycling(true), core.WithResultCache(64))
		if err != nil {
			t.Fatalf("core.New: %v", err)
		}
		srv := NewServer(eng)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		mu.Lock()
		addrOf[names[i]] = addr
		mu.Unlock()
		nodes = append(nodes, &soakNode{peered: pc, engine: eng, server: srv})
	}
	for _, nd := range nodes {
		if err := nd.peered.Rebuild(names); err != nil {
			t.Fatalf("Rebuild: %v", err)
		}
	}

	// A proximity-heavy stream, the workload the peer tier exists for.
	gen, err := workload.NewGenerator(g, workload.Mix{DrillDown: 0.1, RollUp: 0.1, Proximity: 0.7, Random: 0.1}, 2, 99)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	queries, _ := gen.Stream(150)

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			eng := nodes[w%n].engine
			off := w * len(queries) / workers
			for i := range queries {
				if _, err := eng.Execute(context.Background(), queries[(off+i)%len(queries)]); err != nil {
					errs <- fmt.Errorf("worker %d query %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var ps cache.PeerStats
	for _, nd := range nodes {
		s := nd.peered.PeerStats()
		ps.Fills += s.Fills
		ps.FillMisses += s.FillMisses
		ps.FillErrors += s.FillErrors
		ps.FillSkips += s.FillSkips
		ps.Puts += s.Puts
	}
	if ps.Fills == 0 {
		t.Errorf("soak produced no peer fills: %+v", ps)
	}
	if ps.FillErrors == 0 {
		t.Errorf("fault injection never fired: %+v", ps)
	}
	t.Logf("soak peer stats: %+v", ps)
}
