package mtier

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/core"
	"aggcache/internal/obs"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
	"aggcache/internal/wire"
)

// newTestServer builds a tiny three-tier stack — in-process backend, cached
// middle tier — without listening, so callers can attach observability
// first.
func newTestServer(t *testing.T) (*Server, *core.Engine, float64) {
	t.Helper()
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(44)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	be, err := backend.NewEngine(g, tab, backend.LatencyModel{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	sz := sizer.NewEstimate(g, int64(tab.Len()))
	c, _ := cache.New(1<<20, cache.NewTwoLevel())
	eng, err := core.New(g, c, strategy.NewVCMC(g, sz), be, sz)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	var total float64
	for i := 0; i < tab.Len(); i++ {
		total += tab.Value(i)
	}
	return NewServer(eng), eng, total
}

// startServer is newTestServer plus a live TCP listener.
func startServer(t *testing.T) (*Server, string, *core.Engine, float64) {
	t.Helper()
	srv, eng, total := newTestServer(t)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, eng, total
}

func TestClientServerRoundTrip(t *testing.T) {
	_, addr, _, total := startServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	// Cold query goes to the backend.
	resp, err := cl.Query("SUM(UnitSales) BY Time:Year")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if resp.Agg != "SUM" || len(resp.Levels) != 3 {
		t.Fatalf("metadata: %+v", resp)
	}
	if resp.CompleteHit {
		t.Fatalf("cold query reported a complete hit")
	}
	var sum float64
	for _, cell := range resp.Cells {
		sum += cell.Value
	}
	if math.Abs(sum-total) > 1e-6 {
		t.Fatalf("sum = %v, want %v", sum, total)
	}
	// Repeat is a cache hit with the same cells.
	resp2, err := cl.Query("SUM(UnitSales) BY Time:Year")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !resp2.CompleteHit {
		t.Fatalf("repeat query missed")
	}
	if len(resp2.Cells) != len(resp.Cells) {
		t.Fatalf("cells differ: %d vs %d", len(resp2.Cells), len(resp.Cells))
	}
	// AVG/COUNT served from the same cache.
	cnt, err := cl.Query("COUNT(UnitSales) BY Time:Year")
	if err != nil {
		t.Fatalf("COUNT: %v", err)
	}
	if !cnt.CompleteHit || cnt.Agg != "COUNT" {
		t.Fatalf("COUNT response: %+v", cnt)
	}
	var rows float64
	for _, cell := range cnt.Cells {
		rows += cell.Value
	}
	if rows <= 0 {
		t.Fatalf("COUNT rows = %v", rows)
	}
	avg, err := cl.Query("AVG(UnitSales) BY Time:Year")
	if err != nil {
		t.Fatalf("AVG: %v", err)
	}
	if math.Abs(avg.Cells[0].Value-avg.Cells[0].Sum/float64(avg.Cells[0].Count)) > 1e-9 {
		t.Fatalf("AVG cell inconsistent: %+v", avg.Cells[0])
	}
	if avg.Total() < 0 {
		t.Fatalf("negative total time")
	}
}

func TestServerBadQuery(t *testing.T) {
	_, addr, _, _ := startServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Query("GARBAGE"); err == nil {
		t.Fatalf("expected parse error")
	}
	// Connection survives application errors.
	if _, err := cl.Query("SUM(UnitSales) BY Time:Year"); err != nil {
		t.Fatalf("connection did not survive: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr, _, _ := startServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 5; i++ {
				if _, err := cl.Query("SUM(UnitSales) BY Product:Group"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent client: %v", err)
	}
}

// TestServerCountsWireErrorsAndIdleCloses: a garbage connection increments
// the wire-error counter, a silent one is reaped by the idle deadline and
// counted separately, and healthy clients keep working through both.
func TestServerCountsWireErrorsAndIdleCloses(t *testing.T) {
	srv, _, _ := newTestServer(t)
	srv.SetObs(obs.NewRegistry(), nil)
	srv.SetTimeouts(wire.Timeouts{Read: 100 * time.Millisecond, Write: time.Minute})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	// Garbage that fails the magic check: the server must drop the
	// connection and count a wire error.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	raw.Write([]byte("\x00garbage-not-a-frame"))
	buf := make([]byte, 16)
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Fatalf("server answered a garbage frame instead of closing")
	}
	raw.Close()

	// A connection that never speaks: reaped by the idle deadline, counted
	// as an idle close, not a wire error.
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("idle dial: %v", err)
	}
	idle.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := idle.Read(buf); err == nil {
		t.Fatalf("idle connection was not reaped")
	}
	idle.Close()

	if got := srv.met.WireErrors.Value(); got != 1 {
		t.Fatalf("WireErrors = %d, want 1", got)
	}
	if got := srv.met.IdleCloses.Value(); got != 1 {
		t.Fatalf("IdleCloses = %d, want 1", got)
	}

	// Healthy clients are unaffected — and can pipeline queries over one
	// connection concurrently.
	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cl.Query("SUM(UnitSales) BY Time:Year"); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("pipelined query: %v", err)
	}
}

// Regression: a second Listen must be rejected instead of silently
// replacing (and leaking) the first listener.
func TestServerDoubleListenRejected(t *testing.T) {
	srv, addr, _, _ := startServer(t)
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Fatalf("second Listen succeeded; first listener leaked")
	}
	// The original listener must still be serving.
	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial after rejected double Listen: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Query("SUM(UnitSales) BY Time:Year"); err != nil {
		t.Fatalf("original listener broken: %v", err)
	}
}

// Regression: Listen after Close must fail rather than resurrect a closed
// server (its Close already ran the conns sweep).
func TestServerListenAfterCloseRejected(t *testing.T) {
	srv, _, _, _ := startServer(t)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Fatalf("Listen after Close succeeded")
	}
}

func TestClientClosed(t *testing.T) {
	_, addr, _, _ := startServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if _, err := cl.Query("SUM(UnitSales) BY Time:Year"); err == nil {
		t.Fatalf("expected error after Close")
	}
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatalf("expected dial error")
	}
}
