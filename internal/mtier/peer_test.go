package mtier

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/core"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
	"aggcache/internal/wire"
)

func peerChunk(num, n int) *chunk.Chunk {
	c := &chunk.Chunk{GB: 0, Num: int32(num)}
	for i := 0; i < n; i++ {
		c.Keys = append(c.Keys, uint64(i))
		c.Vals = append(c.Vals, float64(i))
	}
	return c
}

func TestPeerCodecRoundTrips(t *testing.T) {
	k := cache.Key{GB: 3, Num: 17}

	gk, err := decodePeerGet(encodePeerGet(nil, k))
	if err != nil || gk != k {
		t.Fatalf("peer get round trip = %v, %v", gk, err)
	}

	data := peerChunk(17, 9)
	for _, found := range []bool{true, false} {
		got, cl, benefit, f, err := decodePeerChunk(encodePeerChunk(nil, data, cache.ClassComputed, 12.5, found))
		if err != nil || f != found {
			t.Fatalf("peer chunk(found=%v) round trip: found=%v err=%v", found, f, err)
		}
		if found && (got == nil || got.Cells() != 9 || cl != cache.ClassComputed || benefit != 12.5) {
			t.Fatalf("peer chunk fields: %v %v %v", got, cl, benefit)
		}
	}

	pk, pdata, cl, benefit, err := decodePeerPut(encodePeerPut(nil, k, data, cache.ClassBackend, 7.25))
	if err != nil || pk != k || pdata.Cells() != 9 || cl != cache.ClassBackend || benefit != 7.25 {
		t.Fatalf("peer put round trip: %v %v %v %v %v", pk, pdata, cl, benefit, err)
	}

	for _, stored := range []bool{true, false} {
		got, err := decodePeerAck(encodePeerAck(nil, stored))
		if err != nil || got != stored {
			t.Fatalf("peer ack(%v) round trip = %v, %v", stored, got, err)
		}
	}
}

func TestPeerCodecRejectsMalformed(t *testing.T) {
	k := cache.Key{GB: 1, Num: 2}
	data := peerChunk(2, 3)
	valid := map[string][]byte{
		"get":   encodePeerGet(nil, k),
		"chunk": encodePeerChunk(nil, data, cache.ClassBackend, 1, true),
		"put":   encodePeerPut(nil, k, data, cache.ClassBackend, 1),
		"ack":   encodePeerAck(nil, true),
	}
	decode := map[string]func([]byte) error{
		"get":   func(p []byte) error { _, err := decodePeerGet(p); return err },
		"chunk": func(p []byte) error { _, _, _, _, err := decodePeerChunk(p); return err },
		"put":   func(p []byte) error { _, _, _, _, err := decodePeerPut(p); return err },
		"ack":   func(p []byte) error { _, err := decodePeerAck(p); return err },
	}
	for name, payload := range valid {
		if err := decode[name](payload); err != nil {
			t.Fatalf("%s: valid payload rejected: %v", name, err)
		}
		// Truncations at every boundary must fail cleanly, never panic.
		for cut := 0; cut < len(payload); cut++ {
			if err := decode[name](payload[:cut]); err == nil {
				t.Errorf("%s: truncation at %d accepted", name, cut)
			}
		}
		// Trailing garbage must fail too (Remaining() != 0).
		if err := decode[name](append(append([]byte{}, payload...), 0xFF)); err == nil {
			t.Errorf("%s: trailing byte accepted", name)
		}
	}
	// Class out of range.
	bad := encodePeerChunk(nil, data, cache.Class(9), 1, true)
	if _, _, _, _, err := decodePeerChunk(bad); err == nil {
		t.Errorf("chunk: out-of-range class accepted")
	}
	if _, _, _, _, err := decodePeerPut(encodePeerPut(nil, k, data, cache.Class(9), 1)); err == nil {
		t.Errorf("put: out-of-range class accepted")
	}
	// Ack with a non-boolean value.
	if _, err := decodePeerAck([]byte{2}); err == nil {
		t.Errorf("ack: value 2 accepted")
	}
}

// startPeeredServer is startServer with the engine's store wrapped in a
// Peered, the way a cluster member actually runs: peer requests must be
// served from the local tier behind the Peered, never the peer tier itself.
func startPeeredServer(t *testing.T) (string, *cache.Peered) {
	t.Helper()
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(44)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	be, err := backend.NewEngine(g, tab, backend.LatencyModel{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	sz := sizer.NewEstimate(g, int64(tab.Len()))
	c, _ := cache.New(1<<20, cache.NewTwoLevel())
	pc, err := cache.NewPeered(c, cache.PeeredConfig{Self: "self", Members: []string{"self"}})
	if err != nil {
		t.Fatalf("NewPeered: %v", err)
	}
	eng, err := core.New(g, pc, strategy.NewVCMC(g, sz), be, sz)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	srv := NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close(); pc.Close() })
	return addr, pc
}

func TestPeerClientGetPut(t *testing.T) {
	addr, pc := startPeeredServer(t)
	cl := NewPeerClient(addr, 0)
	defer cl.Close()
	ctx := context.Background()
	k := cache.Key{GB: 0, Num: 0}

	// Miss is authoritative: found=false, no error.
	if _, _, _, found, err := cl.Get(ctx, k); err != nil || found {
		t.Fatalf("cold Get = found %v, err %v", found, err)
	}

	// Put installs at the owner; a replica takes computed-class residency.
	if err := cl.Put(ctx, k, peerChunk(0, 4), cache.ClassBackend, 33); err != nil {
		t.Fatalf("Put: %v", err)
	}
	data, cl2, benefit, found := pc.GetInfo(k)
	if !found || data.Cells() != 4 || cl2 != cache.ClassComputed || benefit != 33 {
		t.Fatalf("owner state after put: %v %v %v %v", data, cl2, benefit, found)
	}

	// Get now serves the chunk with the owner's stored attributes.
	got, gcl, gbenefit, found, err := cl.Get(ctx, k)
	if err != nil || !found || got.Cells() != 4 || gcl != cache.ClassComputed || gbenefit != 33 {
		t.Fatalf("warm Get = %v %v %v %v %v", got, gcl, gbenefit, found, err)
	}
}

func TestPeerServerRejectsInvalidKey(t *testing.T) {
	addr, _ := startPeeredServer(t)
	cl := NewPeerClient(addr, 0)
	defer cl.Close()
	ctx := context.Background()

	// Out-of-lattice group-by and out-of-grid chunk number.
	for _, k := range []cache.Key{{GB: 1 << 20, Num: 0}, {GB: 0, Num: 1 << 20}} {
		if _, _, _, _, err := cl.Get(ctx, k); err == nil {
			t.Errorf("Get(%v) accepted", k)
		}
		if err := cl.Put(ctx, k, peerChunk(0, 1), cache.ClassBackend, 1); err == nil {
			t.Errorf("Put(%v) accepted", k)
		}
	}
}

func TestPeerServerAnswersMalformedInBand(t *testing.T) {
	addr, _ := startPeeredServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	mux := wire.NewMux(conn, 0, wire.Metrics{})
	defer mux.Close()

	// A garbage PeerGet payload must produce an in-band PeerErr, and the
	// connection must survive to serve the next request.
	fr, err := mux.RoundTrip(context.Background(), framePeerGet, 0, []byte{1, 2, 3}, time.Now().Add(2*time.Second))
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	if fr.Type != framePeerErr {
		t.Fatalf("frame type = %#x, want PeerErr", fr.Type)
	}
	msg := wire.NewDec(fr.Payload).String()
	if !strings.Contains(msg, "malformed") {
		t.Fatalf("error message = %q", msg)
	}

	ok := encodePeerGet(nil, cache.Key{GB: 0, Num: 0})
	fr, err = mux.RoundTrip(context.Background(), framePeerGet, 0, ok, time.Now().Add(2*time.Second))
	if err != nil || fr.Type != framePeerChunk {
		t.Fatalf("follow-up on same connection: type %#x, err %v", fr.Type, err)
	}
}

func TestPeerClientErrorsAreTransient(t *testing.T) {
	// A connection-refused failure must be marked transient so the Peered
	// breaker taxonomy treats the peer as retryable.
	cl := NewPeerClient("127.0.0.1:1", 0)
	defer cl.Close()
	_, _, _, _, err := cl.Get(context.Background(), cache.Key{GB: 0, Num: 0})
	if err == nil {
		t.Fatalf("Get against dead address succeeded")
	}
	if !backend.IsTransient(err) {
		t.Fatalf("dial failure not transient: %v", err)
	}
	cl.Close()
	if _, _, _, _, err := cl.Get(context.Background(), cache.Key{GB: 0, Num: 0}); err == nil {
		t.Fatalf("Get after Close succeeded")
	}
}
