package mtier

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/core"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
	"aggcache/internal/wire"
)

// --- admission controller unit tests ---

func TestAdmissionAdmitReleaseCycle(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 2, MaxWait: 50 * time.Millisecond})
	r1, busy := a.Admit("", 0)
	if busy != nil {
		t.Fatalf("first admit shed: %v", busy)
	}
	r2, busy := a.Admit("", 0)
	if busy != nil {
		t.Fatalf("second admit shed: %v", busy)
	}
	r1(100)
	r3, busy := a.Admit("", 0)
	if busy != nil {
		t.Fatalf("admit after release shed: %v", busy)
	}
	r2(100)
	r3(100)
	if a.Depth() != 0 {
		t.Fatalf("queue depth %d after all released", a.Depth())
	}
}

func TestAdmissionQueueFullSheds(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1, MaxWait: 200 * time.Millisecond})
	release, busy := a.Admit("", 0)
	if busy != nil {
		t.Fatalf("first admit shed: %v", busy)
	}
	// Occupy the single queue spot with a waiter.
	queued := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(queued)
		r, busy := a.Admit("", 0)
		if busy != nil {
			t.Errorf("queued admit shed: %v", busy)
			return
		}
		r(0)
	}()
	<-queued
	// Wait until the waiter is actually counted in the queue.
	for i := 0; a.Depth() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	_, busy = a.Admit("", 0)
	if busy == nil {
		t.Fatalf("admit past a full queue was not shed")
	}
	if busy.Reason != "queue_full" {
		t.Fatalf("shed reason %q, want queue_full", busy.Reason)
	}
	if busy.RetryAfter <= 0 {
		t.Fatalf("queue_full shed carries no retry-after hint")
	}
	release(0) // hands the slot to the waiter
	wg.Wait()
}

func TestAdmissionDeadlineUnmeetableSheds(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 4})
	// Teach the service-time histogram that queries take ~40ms.
	for i := 0; i < 100; i++ {
		a.svc.Observe(40 * time.Millisecond)
	}
	if _, busy := a.Admit("", time.Second); busy != nil {
		t.Fatalf("roomy budget shed: %v", busy)
	}
	_, busy := a.Admit("", 2*time.Millisecond)
	if busy == nil {
		t.Fatalf("unmeetable budget was admitted")
	}
	if busy.Reason != "deadline" {
		t.Fatalf("shed reason %q, want deadline", busy.Reason)
	}
}

func TestAdmissionExpiresWhileQueued(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 4, MaxWait: time.Second})
	release, busy := a.Admit("", 0)
	if busy != nil {
		t.Fatalf("first admit shed: %v", busy)
	}
	defer release(0)
	start := time.Now()
	_, busy = a.Admit("", 20*time.Millisecond)
	if busy == nil {
		t.Fatalf("deadline survived an occupied server")
	}
	if busy.Reason != "expired" {
		t.Fatalf("shed reason %q, want expired", busy.Reason)
	}
	if waited := time.Since(start); waited < 15*time.Millisecond {
		t.Fatalf("shed after %v, before the budget could expire", waited)
	}
}

func TestTenantQPSQuota(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 8, TenantQPS: 0.001, TenantBurst: 2})
	for i := 0; i < 2; i++ {
		r, busy := a.Admit("noisy", 0)
		if busy != nil {
			t.Fatalf("admit %d within burst shed: %v", i, busy)
		}
		r(0)
	}
	_, busy := a.Admit("noisy", 0)
	if busy == nil {
		t.Fatalf("admit past the qps burst was not shed")
	}
	if busy.Reason != "quota" || busy.RetryAfter <= 0 {
		t.Fatalf("shed = %+v, want quota with a positive hint", busy)
	}
	// Another tenant — and the anonymous tenant — are unaffected.
	if r, busy := a.Admit("polite", 0); busy != nil {
		t.Fatalf("other tenant shed: %v", busy)
	} else {
		r(0)
	}
	if r, busy := a.Admit("", 0); busy != nil {
		t.Fatalf("anonymous query shed: %v", busy)
	} else {
		r(0)
	}
}

func TestTenantByteDebt(t *testing.T) {
	now := time.Now()
	ts := &tenantState{bytes: bucket{rate: 1000, burst: 1000, tokens: 1000, last: now}}
	if be := ts.admit(now); be != nil {
		t.Fatalf("fresh bucket shed: %v", be)
	}
	// Charge 3KB against a 1KB balance: 2KB of debt.
	ts.charge(now, 3000)
	be := ts.admit(now)
	if be == nil {
		t.Fatalf("tenant in byte debt was admitted")
	}
	if be.Reason != "quota" {
		t.Fatalf("shed reason %q, want quota", be.Reason)
	}
	// At 1000 B/s the 2KB debt needs ~2s to refill.
	if be.RetryAfter < time.Second || be.RetryAfter > 3*time.Second {
		t.Fatalf("debt retry-after %v, want ≈2s", be.RetryAfter)
	}
	// After the refill interval the tenant is served again.
	if be := ts.admit(now.Add(2100 * time.Millisecond)); be != nil {
		t.Fatalf("tenant still shed after debt refilled: %v", be)
	}
}

func TestShedWindowRate(t *testing.T) {
	var w shedWindow
	now := time.Unix(1000, 0)
	for i := 0; i < 30; i++ {
		w.note(now)
	}
	if r := w.rate(now); r != 3 {
		t.Fatalf("rate = %v, want 3 (30 sheds over a %ds window)", r, shedWindowSecs)
	}
	// The burst ages out of the window entirely.
	if r := w.rate(now.Add((shedWindowSecs + 1) * time.Second)); r != 0 {
		t.Fatalf("stale rate = %v, want 0", r)
	}
}

// --- end-to-end through server and client ---

// newSlowServer is newTestServer with a backend that really sleeps, so an
// execution slot stays held long enough for load to pile up behind it.
func newSlowServer(t *testing.T, connect time.Duration) *Server {
	t.Helper()
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(44)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	be, err := backend.NewEngine(g, tab, backend.LatencyModel{Connect: connect, Sleep: true})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	sz := sizer.NewEstimate(g, int64(tab.Len()))
	c, _ := cache.New(1<<20, cache.NewTwoLevel())
	eng, err := core.New(g, c, strategy.NewVCMC(g, sz), be, sz)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return NewServer(eng)
}

func TestServerShedsBusyAndClientClassifiesTransient(t *testing.T) {
	srv := newSlowServer(t, 30*time.Millisecond)
	srv.SetAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1, MaxWait: 5 * time.Millisecond})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	const n = 16
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cl.Query("SUM(UnitSales) BY Time:Year")
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	var ok, busy int
	for err := range errs {
		if err == nil {
			ok++
			continue
		}
		be, isBusy := wire.AsBusy(err)
		if !isBusy {
			t.Fatalf("non-busy error under overload: %v", err)
		}
		if !backend.IsTransient(err) {
			t.Fatalf("busy reply not classified transient: %v", err)
		}
		if be.Reason != "queue_full" && be.Reason != "expired" {
			t.Fatalf("unexpected shed reason %q", be.Reason)
		}
		busy++
	}
	if ok == 0 {
		t.Fatalf("no query got through at all")
	}
	if busy == 0 {
		t.Fatalf("16 concurrent queries against 1 slot + 1 queue spot produced no sheds")
	}
}

func TestServerQuotaShedsPerTenant(t *testing.T) {
	srv, _, _ := newTestServer(t)
	srv.SetAdmission(AdmissionConfig{MaxConcurrent: 8, TenantQPS: 0.001, TenantBurst: 2})
	qaddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	noisy, err := Dial(qaddr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer noisy.Close()
	noisy.SetTenant("noisy")
	polite, err := Dial(qaddr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer polite.Close()
	polite.SetTenant("polite")

	var quotaSheds int
	for i := 0; i < 10; i++ {
		if _, err := noisy.Query("SUM(UnitSales) BY Time:Year"); err != nil {
			be, isBusy := wire.AsBusy(err)
			if !isBusy || be.Reason != "quota" {
				t.Fatalf("noisy query %d: %v", i, err)
			}
			quotaSheds++
		}
	}
	if quotaSheds < 8 {
		t.Fatalf("noisy tenant shed %d of 10, want ≥ 8 past its burst of 2", quotaSheds)
	}
	// The capped tenant's hammering must not affect its neighbor.
	if _, err := polite.Query("SUM(UnitSales) BY Time:Year"); err != nil {
		t.Fatalf("polite tenant shed alongside noisy: %v", err)
	}
}

func TestClientDeadlinePropagatesAsBudget(t *testing.T) {
	srv, _, _ := newTestServer(t)
	srv.SetAdmission(AdmissionConfig{MaxConcurrent: 4})
	// Teach the admission controller that queries are slow; a client whose
	// deadline cannot fit the p95 is then shed up front as "deadline".
	for i := 0; i < 100; i++ {
		srv.adm.svc.Observe(200 * time.Millisecond)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = cl.QueryContext(ctx, "SUM(UnitSales) BY Time:Year")
	be, isBusy := wire.AsBusy(err)
	if !isBusy || be.Reason != "deadline" {
		t.Fatalf("tight deadline → %v, want a deadline shed", err)
	}
	// Without a deadline the same query sails through.
	if _, err := cl.Query("SUM(UnitSales) BY Time:Year"); err != nil {
		t.Fatalf("unbounded query: %v", err)
	}
}

func TestQueryPayloadCompat(t *testing.T) {
	// A v1 payload (bare query string, no tenant/budget tail) must decode.
	old := wire.AppendString(nil, "SUM(UnitSales) BY Time:Year")
	q, tenant, budget, err := decodeQuery(old)
	if err != nil {
		t.Fatalf("decode v1 payload: %v", err)
	}
	if q != "SUM(UnitSales) BY Time:Year" || tenant != "" || budget != 0 {
		t.Fatalf("v1 payload decoded to %q/%q/%v", q, tenant, budget)
	}
	// And the extended form round-trips.
	ext := encodeQuery(nil, "SUM(UnitSales) BY Time:Year", "acme", 1500*time.Millisecond)
	q, tenant, budget, err = decodeQuery(ext)
	if err != nil {
		t.Fatalf("decode extended payload: %v", err)
	}
	if q != "SUM(UnitSales) BY Time:Year" || tenant != "acme" || budget != 1500*time.Millisecond {
		t.Fatalf("extended payload decoded to %q/%q/%v", q, tenant, budget)
	}
}

func TestHealthzReportsShedding(t *testing.T) {
	srv, _, _ := newTestServer(t)
	srv.SetAdmission(AdmissionConfig{MaxConcurrent: 2})
	h := srv.OpsHandler()

	get := func() string {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("/healthz = %d", rec.Code)
		}
		return rec.Body.String()
	}
	if body := get(); strings.Contains(body, "shedding") {
		t.Fatalf("healthy idle server reports shedding: %q", body)
	}
	// Force sheds and watch the detail line appear.
	srv.adm.shed(srv.adm.met.ShedQueueFull, time.Now())
	if body := get(); !strings.Contains(body, "shedding") || !strings.Contains(body, "queue depth") {
		t.Fatalf("shedding server hides its state: %q", body)
	}
}
