package mtier

import (
	"fmt"
	"math"
	"time"

	"aggcache/internal/wire"
)

// Frame types of the middle-tier client protocol (see DESIGN.md §11). It
// rides the same framing layer as the backend protocol: a query ships as
// one frame carrying the mdq text, the answer comes back as one frame
// carrying the result cells, and request ids let a client pipeline queries
// over one connection. Query failures stay in-band in the answer payload
// (Response.Err), exactly as they did before the framing swap.
const (
	frameQuery  uint8 = 0x10
	frameAnswer uint8 = 0x90
)

// Response flag bits in the answer payload.
const (
	respCompleteHit uint8 = 1 << 0
	respAggregated  uint8 = 1 << 1
	respDegraded    uint8 = 1 << 2
)

// encodeQuery appends a frameQuery payload:
//
//	query str [| tenant str | budget_ms u32]
//
// The tenant/budget tail was added with admission control. Compatibility is
// tolerant in both directions: an old decoder reads only the query string
// and ignores trailing bytes, and a new decoder treats an absent tail as an
// anonymous query with no deadline budget.
func encodeQuery(b []byte, query, tenant string, budget time.Duration) []byte {
	b = wire.AppendString(b, query)
	ms := budget.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > math.MaxUint32 {
		ms = math.MaxUint32
	}
	b = wire.AppendString(b, tenant)
	return wire.AppendU32(b, uint32(ms))
}

// decodeQuery parses a frameQuery payload, with or without the
// tenant/budget tail.
func decodeQuery(p []byte) (query, tenant string, budget time.Duration, err error) {
	d := wire.NewDec(p)
	query = d.String()
	if d.Err() == nil && d.Remaining() > 0 {
		tenant = d.String()
		budget = time.Duration(d.U32()) * time.Millisecond
	}
	if d.Err() != nil {
		return "", "", 0, fmt.Errorf("mtier: malformed query payload")
	}
	return query, tenant, budget, nil
}

// encodeResponse appends a frameAnswer payload:
// flags u8 | agg str | err str | breakdown u64×4 | nlevels u32 | level strs |
// ncells u32 | cells (nmembers u32, members u32×n, value f64, sum f64,
// count u64).
func encodeResponse(b []byte, r *Response) []byte {
	var flags uint8
	if r.CompleteHit {
		flags |= respCompleteHit
	}
	if r.Aggregated {
		flags |= respAggregated
	}
	if r.Degraded {
		flags |= respDegraded
	}
	b = wire.AppendU8(b, flags)
	b = wire.AppendString(b, r.Agg)
	b = wire.AppendString(b, r.Err)
	b = wire.AppendU64(b, uint64(r.Lookup))
	b = wire.AppendU64(b, uint64(r.Aggregate))
	b = wire.AppendU64(b, uint64(r.Update))
	b = wire.AppendU64(b, uint64(r.Backend))
	b = wire.AppendU32(b, uint32(len(r.Levels)))
	for _, l := range r.Levels {
		b = wire.AppendString(b, l)
	}
	b = wire.AppendU32(b, uint32(len(r.Cells)))
	for i := range r.Cells {
		c := &r.Cells[i]
		b = wire.AppendU32(b, uint32(len(c.Members)))
		for _, m := range c.Members {
			b = wire.AppendU32(b, uint32(m))
		}
		b = wire.AppendF64(b, c.Value)
		b = wire.AppendF64(b, c.Sum)
		b = wire.AppendU64(b, uint64(c.Count))
	}
	return b
}

// decodeResponse parses a frameAnswer payload.
func decodeResponse(p []byte) (*Response, error) {
	d := wire.NewDec(p)
	flags := d.U8()
	r := &Response{
		Agg:         d.String(),
		Err:         d.String(),
		CompleteHit: flags&respCompleteHit != 0,
		Aggregated:  flags&respAggregated != 0,
		Degraded:    flags&respDegraded != 0,
	}
	r.Lookup = int64(d.U64())
	r.Aggregate = int64(d.U64())
	r.Update = int64(d.U64())
	r.Backend = int64(d.U64())
	nlv := int(d.U32())
	if d.Err() != nil || nlv > d.Remaining()/4 {
		return nil, fmt.Errorf("mtier: malformed answer payload")
	}
	for i := 0; i < nlv; i++ {
		r.Levels = append(r.Levels, d.String())
	}
	nc := int(d.U32())
	if d.Err() != nil || nc > d.Remaining()/28 {
		return nil, fmt.Errorf("mtier: malformed answer payload")
	}
	if nc > 0 {
		r.Cells = make([]Cell, 0, nc)
	}
	for i := 0; i < nc; i++ {
		nm := int(d.U32())
		if d.Err() != nil || nm > d.Remaining()/4 {
			return nil, fmt.Errorf("mtier: malformed answer payload")
		}
		c := Cell{Members: make([]int32, nm)}
		for j := range c.Members {
			c.Members[j] = int32(d.U32())
		}
		c.Value = d.F64()
		c.Sum = d.F64()
		c.Count = int64(d.U64())
		r.Cells = append(r.Cells, c)
	}
	if d.Err() != nil {
		return nil, fmt.Errorf("mtier: malformed answer payload")
	}
	return r, nil
}
