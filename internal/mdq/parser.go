package mdq

import (
	"fmt"
	"strconv"

	"aggcache/internal/schema"
)

// Agg selects the aggregate function of a query. Cached chunks carry both
// per-cell sums and fact-row counts, so every Agg is served from the same
// cache contents.
type Agg int

const (
	// AggSum returns Σ measure.
	AggSum Agg = iota
	// AggCount returns the number of contributing fact rows.
	AggCount
	// AggAvg returns Σ measure / row count.
	AggAvg
)

// String implements fmt.Stringer.
func (a Agg) String() string {
	switch a {
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggAvg:
		return "AVG"
	}
	return fmt.Sprintf("Agg(%d)", int(a))
}

// Apply computes the aggregate from a cell's (sum, count) pair.
func (a Agg) Apply(sum float64, count int64) float64 {
	switch a {
	case AggCount:
		return float64(count)
	case AggAvg:
		if count == 0 {
			return 0
		}
		return sum / float64(count)
	}
	return sum
}

// Statement is a parsed query before binding to a chunk grid.
type Statement struct {
	// Agg is the aggregate function (SUM, COUNT or AVG).
	Agg Agg
	// Measure is the aggregated measure name inside SUM(...).
	Measure string
	// By lists the requested levels per dimension name.
	By []LevelRef
	// Where lists member-range predicates.
	Where []Predicate
}

// LevelRef names a dimension level, e.g. Product:Group.
type LevelRef struct {
	Dim   string
	Level string
}

// Predicate restricts a dimension's members at a level to [Lo, Hi]
// (inclusive, as written in the query).
type Predicate struct {
	LevelRef
	Lo, Hi int32
}

// Parse parses a query string.
//
//	query := [SELECT] agg '(' ident ')' BY byList [WHERE predList]
//	agg := SUM | COUNT | AVG
//	byList := dim ':' level { ',' dim ':' level }
//	predList := pred { AND pred }
//	pred := dim ':' level IN number '..' number
func Parse(src string) (*Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parse()
	if err != nil {
		return nil, err
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("mdq: expected %s, got %s at position %d", what, t, t.pos)
	}
	return t, nil
}

func (p *parser) parse() (*Statement, error) {
	if isKeyword(p.peek(), "SELECT") {
		p.next()
	}
	var agg Agg
	switch {
	case isKeyword(p.peek(), "SUM"):
		agg = AggSum
	case isKeyword(p.peek(), "COUNT"):
		agg = AggCount
	case isKeyword(p.peek(), "AVG"):
		agg = AggAvg
	default:
		return nil, fmt.Errorf("mdq: expected SUM, COUNT or AVG, got %s", p.peek())
	}
	p.next()
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	m, err := p.expect(tokIdent, "measure name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	st := &Statement{Agg: agg, Measure: m.text}
	if !isKeyword(p.peek(), "BY") {
		return nil, fmt.Errorf("mdq: expected BY, got %s", p.peek())
	}
	p.next()
	for {
		ref, err := p.levelRef()
		if err != nil {
			return nil, err
		}
		st.By = append(st.By, ref)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if isKeyword(p.peek(), "WHERE") {
		p.next()
		for {
			pred, err := p.predicate()
			if err != nil {
				return nil, err
			}
			st.Where = append(st.Where, pred)
			if !isKeyword(p.peek(), "AND") {
				break
			}
			p.next()
		}
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("mdq: trailing input at %s", p.peek())
	}
	return st, nil
}

func (p *parser) levelRef() (LevelRef, error) {
	dim, err := p.expect(tokIdent, "dimension name")
	if err != nil {
		return LevelRef{}, err
	}
	if _, err := p.expect(tokColon, "':'"); err != nil {
		return LevelRef{}, err
	}
	lvl, err := p.expect(tokIdent, "level name")
	if err != nil {
		return LevelRef{}, err
	}
	return LevelRef{Dim: dim.text, Level: lvl.text}, nil
}

func (p *parser) predicate() (Predicate, error) {
	ref, err := p.levelRef()
	if err != nil {
		return Predicate{}, err
	}
	if !isKeyword(p.peek(), "IN") {
		return Predicate{}, fmt.Errorf("mdq: expected IN, got %s", p.peek())
	}
	p.next()
	lo, err := p.number()
	if err != nil {
		return Predicate{}, err
	}
	if _, err := p.expect(tokDotDot, "'..'"); err != nil {
		return Predicate{}, err
	}
	hi, err := p.number()
	if err != nil {
		return Predicate{}, err
	}
	if hi < lo {
		return Predicate{}, fmt.Errorf("mdq: empty range %d..%d", lo, hi)
	}
	return Predicate{LevelRef: ref, Lo: lo, Hi: hi}, nil
}

func (p *parser) number() (int32, error) {
	t, err := p.expect(tokNumber, "number")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(t.text, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("mdq: bad number %q: %v", t.text, err)
	}
	return int32(v), nil
}

// bindLevels resolves the BY list against a schema into a level vector.
func (st *Statement) bindLevels(sch *schema.Schema) ([]int, error) {
	if st.Measure != sch.Measure() {
		return nil, fmt.Errorf("mdq: unknown measure %q (schema has %q)", st.Measure, sch.Measure())
	}
	level := make([]int, sch.NumDims())
	seen := make(map[int]bool)
	for _, ref := range st.By {
		d, ok := sch.DimByName(ref.Dim)
		if !ok {
			return nil, fmt.Errorf("mdq: unknown dimension %q", ref.Dim)
		}
		if seen[d] {
			return nil, fmt.Errorf("mdq: dimension %q listed twice in BY", ref.Dim)
		}
		seen[d] = true
		l, ok := sch.Dim(d).LevelByName(ref.Level)
		if !ok {
			return nil, fmt.Errorf("mdq: dimension %q has no level %q", ref.Dim, ref.Level)
		}
		level[d] = l
	}
	return level, nil
}
