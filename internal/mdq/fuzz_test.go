package mdq

import (
	"testing"

	"aggcache/internal/apb"
	"aggcache/internal/chunk"
)

// FuzzParseCompile throws arbitrary strings at the parser and, when they
// parse, at the compiler. Neither may panic; errors are fine.
func FuzzParseCompile(f *testing.F) {
	seeds := []string{
		"SUM(UnitSales) BY Product:Group",
		"select sum(UnitSales) by Product:Code, Time:Month where Time:Month in 0..3",
		"COUNT(UnitSales) BY Time:Year WHERE Time:Year IN 1..1",
		"AVG(UnitSales) BY Channel:Base",
		"SUM(UnitSales) BY Product:Group WHERE Product:Group IN 0..0 AND Time:Month IN 2..5",
		"SUM(",
		"BY WHERE IN",
		"SUM(x) BY a:b WHERE c:d IN 9..1",
		"SUM(UnitSales) BY Product:Group ..",
		"💥 SUM(UnitSales) BY Product:Group",
		"SUM(UnitSales) BY Product:Group WHERE Product:Group IN 99999999999999999999..0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cfg := apb.New(apb.ScaleTiny)
	g, err := chunk.NewGrid(cfg.Schema, cfg.ChunkCounts)
	if err != nil {
		f.Fatalf("NewGrid: %v", err)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return
		}
		// Valid parse: compilation must not panic, and a successful compile
		// must produce a well-formed query.
		q, cerr := st.Compile(g)
		if cerr != nil {
			return
		}
		if _, nerr := q.NumChunks(g); nerr != nil {
			t.Fatalf("compiled query invalid: %v (from %q)", nerr, src)
		}
	})
}
