package mdq

import (
	"fmt"
	"sort"
	"strings"

	"aggcache/internal/chunk"
	"aggcache/internal/core"
)

// Compile parses src and binds it to a grid, producing a chunk-aligned
// core.Query with exact member trimming plus the query's aggregate
// function (the engine always caches sum+count cells; the aggregate is
// applied at presentation time).
func Compile(src string, g *chunk.Grid) (core.Query, Agg, error) {
	st, err := Parse(src)
	if err != nil {
		return core.Query{}, AggSum, err
	}
	q, err := st.Compile(g)
	return q, st.Agg, err
}

// Compile binds the statement to a grid.
func (st *Statement) Compile(g *chunk.Grid) (core.Query, error) {
	sch := g.Schema()
	level, err := st.bindLevels(sch)
	if err != nil {
		return core.Query{}, err
	}
	gb, err := g.Lattice().IDOf(level)
	if err != nil {
		return core.Query{}, err
	}
	nd := sch.NumDims()
	ranges := make([]chunk.Range, nd)
	for d := 0; d < nd; d++ {
		ranges[d] = chunk.Range{Lo: 0, Hi: int32(sch.Dim(d).Card(level[d]))}
	}
	for _, pred := range st.Where {
		d, ok := sch.DimByName(pred.Dim)
		if !ok {
			return core.Query{}, fmt.Errorf("mdq: unknown dimension %q in WHERE", pred.Dim)
		}
		l, ok := sch.Dim(d).LevelByName(pred.Level)
		if !ok {
			return core.Query{}, fmt.Errorf("mdq: dimension %q has no level %q", pred.Dim, pred.Level)
		}
		if l != level[d] {
			return core.Query{}, fmt.Errorf("mdq: WHERE on %s:%s but query groups %s at %s; predicates must use the queried level",
				pred.Dim, pred.Level, pred.Dim, sch.Dim(d).LevelName(level[d]))
		}
		if pred.Lo < 0 || int(pred.Hi) >= sch.Dim(d).Card(l) {
			return core.Query{}, fmt.Errorf("mdq: %s:%s range %d..%d outside [0,%d)",
				pred.Dim, pred.Level, pred.Lo, pred.Hi, sch.Dim(d).Card(l))
		}
		ranges[d] = chunk.Range{Lo: pred.Lo, Hi: pred.Hi + 1}
	}
	// Round member ranges out to chunk bounds; keep exact ranges for
	// trimming.
	lo := make([]int32, nd)
	hi := make([]int32, nd)
	for d := 0; d < nd; d++ {
		lo[d] = g.ChunkOfMember(d, level[d], ranges[d].Lo)
		hi[d] = g.ChunkOfMember(d, level[d], ranges[d].Hi-1) + 1
	}
	return core.Query{GB: gb, Lo: lo, Hi: hi, MemberRanges: ranges}, nil
}

// FormatResult renders a result as an aligned table of member names and
// aggregate values, up to limit rows (0 = all), for the CLI and examples.
func FormatResult(g *chunk.Grid, r *core.Result, agg Agg, limit int) string {
	sch := g.Schema()
	lat := g.Lattice()
	lv := lat.Level(r.Query.GB)
	type row struct {
		names []string
		val   float64
	}
	var rows []row
	for _, c := range r.Chunks {
		var mbuf [16]int32
		for i, key := range c.Keys {
			members := g.CellMembers(c.GB, int(c.Num), key, mbuf[:0])
			names := make([]string, len(members))
			for d, m := range members {
				names[d] = sch.Dim(d).MemberName(lv[d], m)
			}
			count := int64(1)
			if c.Counts != nil {
				count = c.Counts[i]
			}
			rows = append(rows, row{names: names, val: agg.Apply(c.Vals[i], count)})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		for d := range rows[i].names {
			if rows[i].names[d] != rows[j].names[d] {
				return rows[i].names[d] < rows[j].names[d]
			}
		}
		return false
	})
	var b strings.Builder
	switch agg {
	case AggCount:
		fmt.Fprintf(&b, "%d cells, total rows %d\n", len(rows), totalRows(r))
	case AggAvg:
		fmt.Fprintf(&b, "%d cells, overall avg %.2f\n", len(rows), AggAvg.Apply(r.Total(), totalRows(r)))
	default:
		fmt.Fprintf(&b, "%d cells, total %.2f\n", len(rows), r.Total())
	}
	n := len(rows)
	truncated := false
	if limit > 0 && n > limit {
		n, truncated = limit, true
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  %s = %.2f\n", strings.Join(rows[i].names, ", "), rows[i].val)
	}
	if truncated {
		fmt.Fprintf(&b, "  … %d more rows\n", len(rows)-n)
	}
	return b.String()
}

// totalRows sums the fact-row counts across the result's chunks.
func totalRows(r *core.Result) int64 {
	var n int64
	for _, c := range r.Chunks {
		n += c.Rows()
	}
	return n
}
