// Package mdq implements a small multidimensional query language over an
// aggregate aware cache, used by the CLI and the examples:
//
//	SUM(UnitSales) BY Product:Group, Time:Month WHERE Time:Month IN 0..11
//
// Dimensions absent from the BY list are aggregated to ALL. WHERE predicates
// restrict member-id ranges at the queried level of a dimension. Queries
// compile to chunk-aligned core.Query values with exact member trimming.
package mdq

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokColon
	tokDotDot
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits a query string into tokens.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == ':':
			toks = append(toks, token{tokColon, ":", i})
			i++
		case c == '.':
			if i+1 < len(src) && src[i+1] == '.' {
				toks = append(toks, token{tokDotDot, "..", i})
				i += 2
			} else {
				return nil, fmt.Errorf("mdq: stray '.' at position %d", i)
			}
		case unicode.IsDigit(c):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("mdq: unexpected character %q at position %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

// isKeyword compares an identifier case-insensitively.
func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
