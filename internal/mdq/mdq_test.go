package mdq

import (
	"context"
	"strings"
	"testing"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/core"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
)

func tinyGrid(t testing.TB) *chunk.Grid {
	t.Helper()
	cfg := apb.New(apb.ScaleTiny)
	g, err := chunk.NewGrid(cfg.Schema, cfg.ChunkCounts)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	return g
}

func TestParseBasic(t *testing.T) {
	st, err := Parse("SUM(UnitSales) BY Product:Group, Time:Month WHERE Time:Month IN 0..3")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if st.Measure != "UnitSales" {
		t.Fatalf("Measure = %q", st.Measure)
	}
	if len(st.By) != 2 || st.By[0] != (LevelRef{Dim: "Product", Level: "Group"}) {
		t.Fatalf("By = %+v", st.By)
	}
	if len(st.Where) != 1 || st.Where[0].Lo != 0 || st.Where[0].Hi != 3 {
		t.Fatalf("Where = %+v", st.Where)
	}
}

func TestParseVariants(t *testing.T) {
	ok := []string{
		"select sum(UnitSales) by Product:Code",
		"SUM(UnitSales) BY Time:Year WHERE Time:Year IN 1..1",
		"SUM(UnitSales) BY Product:Group, Time:Month, Channel:Base WHERE Product:Group IN 0..0 AND Time:Month IN 2..5",
	}
	for _, src := range ok {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
	bad := []string{
		"",
		"SUM UnitSales BY Product:Group",
		"SUM(UnitSales)",
		"SUM(UnitSales) BY Product",
		"SUM(UnitSales) BY Product:Group WHERE",
		"SUM(UnitSales) BY Product:Group WHERE Product:Group IN 3..1",
		"SUM(UnitSales) BY Product:Group IN 0..1",
		"SUM(UnitSales) BY Product:Group extra",
		"SUM(UnitSales) BY Product:Group WHERE Product:Group IN a..b",
		"MAX(UnitSales) BY Product:Group",
		"SUM(UnitSales) BY Product:Group WHERE Product:Group IN 0.5",
		"SUM(#) BY Product:Group",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestCompile(t *testing.T) {
	g := tinyGrid(t)
	q, agg, err := Compile("SUM(UnitSales) BY Product:Group, Time:Month WHERE Time:Month IN 0..3", g)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if agg != AggSum {
		t.Fatalf("agg = %v, want SUM", agg)
	}
	lat := g.Lattice()
	if q.GB != lat.MustID(1, 2, 0) {
		t.Fatalf("GB = %s", lat.LevelTupleString(q.GB))
	}
	// Months 0..3 fall in the first of 2 month-chunks.
	if q.Lo[1] != 0 || q.Hi[1] != 1 {
		t.Fatalf("time chunk bounds [%d,%d), want [0,1)", q.Lo[1], q.Hi[1])
	}
	if q.MemberRanges[1].Lo != 0 || q.MemberRanges[1].Hi != 4 {
		t.Fatalf("time member range %+v", q.MemberRanges[1])
	}
	// Unmentioned dimensions aggregate to ALL.
	if lat.LevelAt(q.GB, 2) != 0 {
		t.Fatalf("channel not aggregated to ALL")
	}
}

func TestCompileErrors(t *testing.T) {
	g := tinyGrid(t)
	bad := []string{
		"SUM(Wrong) BY Product:Group",
		"SUM(UnitSales) BY Nope:Group",
		"SUM(UnitSales) BY Product:Nope",
		"SUM(UnitSales) BY Product:Group, Product:Code",
		"SUM(UnitSales) BY Product:Group WHERE Nope:Group IN 0..0",
		"SUM(UnitSales) BY Product:Group WHERE Product:Nope IN 0..0",
		"SUM(UnitSales) BY Product:Group WHERE Product:Code IN 0..0", // wrong level
		"SUM(UnitSales) BY Product:Group WHERE Product:Group IN 0..99",
	}
	for _, src := range bad {
		if _, _, err := Compile(src, g); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}

// TestEndToEnd runs a compiled query through a real engine and checks the
// trimmed result against a direct backend computation.
func TestEndToEnd(t *testing.T) {
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(33)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	be, err := backend.NewEngine(g, tab, backend.LatencyModel{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	sz := sizer.NewEstimate(g, int64(tab.Len()))
	c, _ := cache.New(1<<20, cache.NewTwoLevel())
	eng, err := core.New(g, c, strategy.NewVCMC(g, sz), be, sz)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	q, _, err := Compile("SUM(UnitSales) BY Time:Year WHERE Time:Year IN 0..0", g)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	res, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// Direct oracle: sum of all rows in months 0..3 (year 0).
	want := 0.0
	for i := 0; i < tab.Len(); i++ {
		if tab.Row(i)[1] < 4 {
			want += tab.Value(i)
		}
	}
	if diff := res.Total() - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("Total = %v, want %v", res.Total(), want)
	}
	out := FormatResult(g, res, AggSum, 10)
	if !strings.Contains(out, "Time:Year#0") {
		t.Fatalf("FormatResult output missing member name:\n%s", out)
	}
	// Limited output mentions truncation only when needed.
	if strings.Contains(out, "more rows") {
		t.Fatalf("single-cell result claims truncation:\n%s", out)
	}
}

// TestCountAvgFromSameCache checks that COUNT and AVG queries are served
// from the same cached sum+count cells and agree with direct computation.
func TestCountAvgFromSameCache(t *testing.T) {
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(35)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	be, _ := backend.NewEngine(g, tab, backend.LatencyModel{})
	sz := sizer.NewEstimate(g, int64(tab.Len()))
	c, _ := cache.New(1<<20, cache.NewTwoLevel())
	eng, _ := core.New(g, c, strategy.NewVCMC(g, sz), be, sz)

	// Warm with the base level.
	warm, _, err := Compile("SUM(UnitSales) BY Product:Code, Time:Month, Channel:Base", g)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if _, err := eng.Execute(context.Background(), warm); err != nil {
		t.Fatalf("warm: %v", err)
	}

	run := func(src string) (*core.Result, Agg) {
		q, agg, err := Compile(src, g)
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		res, err := eng.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("Execute(%q): %v", src, err)
		}
		if !res.CompleteHit {
			t.Fatalf("%q not served from cache", src)
		}
		return res, agg
	}

	// COUNT of everything == number of fact rows; AVG == total/rows.
	cnt, cagg := run("COUNT(UnitSales) BY Time:Year WHERE Time:Year IN 0..1")
	var rows int64
	var total float64
	for _, ch := range cnt.Chunks {
		rows += ch.Rows()
		total += ch.Total()
	}
	if rows != int64(tab.Len()) {
		t.Fatalf("COUNT rows %d, want %d", rows, tab.Len())
	}
	if cagg != AggCount {
		t.Fatalf("agg = %v", cagg)
	}
	avgRes, aagg := run("AVG(UnitSales) BY Time:Year WHERE Time:Year IN 0..1")
	if aagg != AggAvg {
		t.Fatalf("agg = %v", aagg)
	}
	// Check one cell's AVG against SUM/COUNT from the same chunk.
	ch := avgRes.Chunks[0]
	if ch.Cells() == 0 {
		t.Fatalf("no cells")
	}
	sum, n, _ := ch.Cell(ch.Keys[0])
	want := sum / float64(n)
	if got := AggAvg.Apply(sum, n); got != want {
		t.Fatalf("AVG apply = %v, want %v", got, want)
	}
	out := FormatResult(g, avgRes, AggAvg, 4)
	if !strings.Contains(out, "overall avg") {
		t.Fatalf("AVG header missing:\n%s", out)
	}
	out = FormatResult(g, cnt, AggCount, 4)
	if !strings.Contains(out, "total rows") {
		t.Fatalf("COUNT header missing:\n%s", out)
	}
}

func TestAggApply(t *testing.T) {
	if AggSum.Apply(10, 4) != 10 {
		t.Fatalf("SUM apply")
	}
	if AggCount.Apply(10, 4) != 4 {
		t.Fatalf("COUNT apply")
	}
	if AggAvg.Apply(10, 4) != 2.5 {
		t.Fatalf("AVG apply")
	}
	if AggAvg.Apply(10, 0) != 0 {
		t.Fatalf("AVG of empty cell")
	}
	if AggSum.String() != "SUM" || AggCount.String() != "COUNT" || AggAvg.String() != "AVG" {
		t.Fatalf("Agg strings")
	}
	if Agg(9).String() != "Agg(9)" {
		t.Fatalf("unknown agg string")
	}
}

func TestFormatResultTruncation(t *testing.T) {
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(34)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	be, _ := backend.NewEngine(g, tab, backend.LatencyModel{})
	sz := sizer.NewEstimate(g, int64(tab.Len()))
	c, _ := cache.New(1<<20, cache.NewTwoLevel())
	eng, _ := core.New(g, c, strategy.NewVCMC(g, sz), be, sz)
	q, _, err := Compile("SUM(UnitSales) BY Product:Code, Time:Month", g)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	res, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	out := FormatResult(g, res, AggSum, 5)
	if !strings.Contains(out, "more rows") {
		t.Fatalf("expected truncation marker:\n%s", out)
	}
	if got := strings.Count(out, "="); got != 5 {
		t.Fatalf("expected 5 rows, got %d", got)
	}
}
