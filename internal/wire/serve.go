package wire

import (
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"aggcache/internal/obs"
)

// DefaultMaxInFlight is the per-connection cap on concurrently executing
// handlers when ConnOptions.MaxInFlight is zero. Both servers expose the
// knob (-wire-max-inflight); this is only the fallback.
const DefaultMaxInFlight = 32

// Timeouts bounds one side of a wire conversation so a stuck peer or a
// runaway request can never wedge a serving goroutine forever. It is shared
// by the backend and middle-tier servers.
type Timeouts struct {
	// Read bounds the wait for the next request frame on an idle
	// connection; connections idle longer are closed (counted as an idle
	// close, not a wire error). 0 means no limit — middle tiers
	// legitimately keep idle persistent connections.
	Read time.Duration
	// Write bounds writing one response to a slow or stuck client.
	Write time.Duration
	// Request bounds the computation for one request; the reply is a
	// transient in-band error rather than a torn-down connection. 0 means
	// no limit.
	Request time.Duration
}

// ConnOptions configures ServeConn.
type ConnOptions struct {
	// Timeouts is the deadline policy (Request is applied by the handler,
	// not by ServeConn itself).
	Timeouts Timeouts
	// MaxPayload bounds request frames; 0 means DefaultMaxPayload.
	MaxPayload int
	// MaxInFlight caps concurrently executing handlers per connection;
	// 0 means DefaultMaxInFlight. Excess pipelined requests queue on the
	// read loop.
	MaxInFlight int
	// Metrics receives the frame/byte counters and the in-flight gauge.
	Metrics Metrics
	// WireErrors counts connections lost to malformed frames, resets, or
	// write failures. IdleCloses counts connections reaped by Timeouts.Read.
	// Both may be nil.
	WireErrors *obs.Counter
	IdleCloses *obs.Counter
}

// Handler serves one request frame and returns the response frame. The
// response's ID is overwritten with the request's id before writing, so
// handlers only set Type, Flags and Payload. Handlers run concurrently —
// one goroutine per in-flight request — and must be safe for that.
type Handler func(fr *Frame) Frame

// ServeConn runs a connection's serve loop until the peer hangs up, the
// idle deadline passes, or the stream fails: frames are read sequentially,
// dispatched to concurrently running handlers (bounded by MaxInFlight), and
// responses are written back under a write lock in completion order — the
// server half of the pipelining protocol. It returns after all in-flight
// handlers have finished; the caller owns closing conn.
func ServeConn(conn net.Conn, opt ConnOptions, h Handler) {
	if opt.MaxInFlight <= 0 {
		opt.MaxInFlight = DefaultMaxInFlight
	}
	r := NewReader(conn, opt.MaxPayload, opt.Metrics)
	w := NewWriter(conn, opt.Metrics)
	var (
		wmu      sync.Mutex
		wg       sync.WaitGroup
		inflight atomic.Int64
		dead     atomic.Bool // a handler write failed and closed conn
	)
	sem := make(chan struct{}, opt.MaxInFlight)
	defer wg.Wait()
	for {
		// The idle deadline applies only when nothing is being served: a
		// client waiting on slow pipelined responses is not idle. Handlers
		// re-arm the deadline when the last in-flight request completes.
		if opt.Timeouts.Read > 0 {
			if inflight.Load() == 0 {
				conn.SetReadDeadline(time.Now().Add(opt.Timeouts.Read))
			} else {
				conn.SetReadDeadline(time.Time{})
			}
		}
		fr, err := r.ReadFrame()
		if err != nil {
			switch {
			case errors.Is(err, io.EOF):
				// The client's clean goodbye.
			case dead.Load() || errors.Is(err, net.ErrClosed):
				// We tore the connection down ourselves; already counted.
			case errors.Is(err, os.ErrDeadlineExceeded):
				opt.IdleCloses.Inc()
			default:
				opt.WireErrors.Inc()
			}
			return
		}
		sem <- struct{}{}
		inflight.Add(1)
		opt.Metrics.InFlight.Add(1)
		wg.Add(1)
		go func(fr Frame) {
			defer func() {
				opt.Metrics.InFlight.Add(-1)
				if inflight.Add(-1) == 0 && opt.Timeouts.Read > 0 {
					conn.SetReadDeadline(time.Now().Add(opt.Timeouts.Read))
				}
				<-sem
				wg.Done()
			}()
			resp := h(&fr)
			resp.ID = fr.ID
			wmu.Lock()
			if opt.Timeouts.Write > 0 {
				conn.SetWriteDeadline(time.Now().Add(opt.Timeouts.Write))
			}
			werr := w.WriteFrame(resp)
			wmu.Unlock()
			if werr != nil && !dead.Swap(true) {
				// The stream position is unknown after a failed write; drop
				// the connection under the read loop.
				opt.WireErrors.Inc()
				conn.Close()
			}
		}(fr)
	}
}
