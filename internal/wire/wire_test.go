package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/obs"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Metrics{})
	frames := []Frame{
		{Type: 1, Flags: FlagTransient, ID: 42, Payload: []byte("hello")},
		{Type: 0xE0, ID: 0},
		{Type: 7, ID: math.MaxUint64, Payload: bytes.Repeat([]byte{0xAB}, 200_000)},
	}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	r := NewReader(&buf, 0, Metrics{})
	for i, want := range frames {
		got, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Flags != want.Flags || got.ID != want.ID {
			t.Fatalf("frame %d header = %+v, want %+v", i, got, want)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d payload mismatch (%d vs %d bytes)", i, len(got.Payload), len(want.Payload))
		}
	}
	if _, err := r.ReadFrame(); !errors.Is(err, io.EOF) {
		t.Fatalf("trailing read = %v, want io.EOF", err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader(bytes.Repeat([]byte{0xFF}, HeaderSize)), 0, Metrics{})
	if _, err := r.ReadFrame(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReaderRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Metrics{})
	w.WriteFrame(Frame{Type: 1, ID: 1})
	b := buf.Bytes()
	b[3] = 99 // version byte
	r := NewReader(bytes.NewReader(b), 0, Metrics{})
	if _, err := r.ReadFrame(); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestReaderRejectsOversizedLength(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Metrics{})
	w.WriteFrame(Frame{Type: 1, ID: 1})
	b := buf.Bytes()
	binary.LittleEndian.PutUint32(b[16:20], 0xFFFF_FFF0)
	r := NewReader(bytes.NewReader(b), 1<<20, Metrics{})
	if _, err := r.ReadFrame(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// TestReaderTruncatedBigClaimDoesNotOverAllocate: a frame claiming a large
// (but within-limit) payload, with almost no bytes behind it, must fail
// without allocating the claimed size.
func TestReaderTruncatedBigClaimDoesNotOverAllocate(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(Version)
	buf.Write([]byte{1, 0, 0, 0})
	var id [8]byte
	buf.Write(id[:])
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], 32<<20) // claims 32 MiB
	buf.Write(n[:])
	buf.Write([]byte("only a few bytes follow"))

	r := NewReader(bytes.NewReader(buf.Bytes()), 64<<20, Metrics{})
	before := allocatedBytes()
	if _, err := r.ReadFrame(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	// TotalAlloc is monotonic, so this bounds every byte allocated while the
	// reader handled the hostile claim — a naive make(32MiB) would trip it.
	if grew := allocatedBytes() - before; grew > 4<<20 {
		t.Fatalf("truncated 32MiB claim committed %d bytes", grew)
	}
}

func allocatedBytes() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.TotalAlloc)
}

func TestDecChunkRoundTrip(t *testing.T) {
	c := &chunk.Chunk{
		GB:     lattice.ID(5),
		Num:    9,
		Keys:   []uint64{1, 7, 42},
		Vals:   []float64{1.5, -2.25, 1e12},
		Counts: []int64{1, 2, 3},
	}
	b := AppendChunk(nil, c)
	if len(b) != ChunkWireSize(c) {
		t.Fatalf("encoded %d bytes, ChunkWireSize says %d", len(b), ChunkWireSize(c))
	}
	d := NewDec(b)
	got := d.Chunk()
	if got == nil || d.Err() != nil {
		t.Fatalf("decode failed: %v", d.Err())
	}
	if got.GB != c.GB || got.Num != c.Num {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range c.Keys {
		if got.Keys[i] != c.Keys[i] || got.Vals[i] != c.Vals[i] || got.Counts[i] != c.Counts[i] {
			t.Fatalf("cell %d mismatch", i)
		}
	}
	// No counts → nil Counts back.
	c2 := &chunk.Chunk{GB: 1, Num: 0, Keys: []uint64{3}, Vals: []float64{4}}
	got2 := NewDec(AppendChunk(nil, c2)).Chunk()
	if got2 == nil || got2.Counts != nil {
		t.Fatalf("countless chunk decoded wrong: %+v", got2)
	}
}

func TestDecChunkRejectsInflatedCellCount(t *testing.T) {
	c := &chunk.Chunk{GB: 1, Num: 0, Keys: []uint64{3}, Vals: []float64{4}}
	b := AppendChunk(nil, c)
	binary.LittleEndian.PutUint32(b[8:12], 1<<30) // cells field
	d := NewDec(b)
	if got := d.Chunk(); got != nil || d.Err() == nil {
		t.Fatalf("inflated cell count decoded: %+v", got)
	}
}

// TestMuxPipelinesOutOfOrder drives the mux against a hand-rolled server
// that answers requests in reverse arrival order, proving responses are
// matched by id, not position.
func TestMuxPipelinesOutOfOrder(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	const k = 8
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := NewReader(conn, 0, Metrics{})
		w := NewWriter(conn, Metrics{})
		frames := make([]Frame, 0, k)
		for i := 0; i < k; i++ {
			fr, err := r.ReadFrame()
			if err != nil {
				return
			}
			frames = append(frames, fr)
		}
		for i := len(frames) - 1; i >= 0; i-- {
			fr := frames[i]
			w.WriteFrame(Frame{Type: fr.Type + 1, ID: fr.ID, Payload: fr.Payload})
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	m := NewMux(conn, 0, Metrics{})
	defer m.Close()
	var wg sync.WaitGroup
	errs := make(chan error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte{byte(i)}
			fr, err := m.RoundTrip(context.Background(), 1, 0, payload, time.Now().Add(5*time.Second))
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(fr.Payload, payload) {
				errs <- errors.New("response payload does not match request")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("round trip: %v", err)
	}
}

// TestMuxCloseFailsInFlight: Close must fail a stuck exchange promptly with
// ErrClosed instead of waiting out its deadline.
func TestMuxCloseFailsInFlight(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		conn, _ := ln.Accept()
		if conn != nil {
			defer conn.Close()
			time.Sleep(2 * time.Second) // never answers
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	m := NewMux(conn, 0, Metrics{})
	done := make(chan error, 1)
	go func() {
		_, err := m.RoundTrip(context.Background(), 1, 0, nil, time.Now().Add(time.Minute))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	m.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("in-flight err = %v, want ErrClosed", err)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("in-flight exchange took %v to fail after Close", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("in-flight exchange still stuck after Close")
	}
}

// TestServeConnCountsIdleClose: a connection reaped by the idle deadline
// counts as an idle close, not a wire error.
func TestServeConnCountsIdleClose(t *testing.T) {
	reg := obs.NewRegistry()
	wireErrs := reg.Counter("test_wire_errors_total", "")
	idles := reg.Counter("test_idle_closes_total", "")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	served := make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		ServeConn(conn, ConnOptions{
			Timeouts:   Timeouts{Read: 50 * time.Millisecond},
			WireErrors: wireErrs,
			IdleCloses: idles,
		}, func(fr *Frame) Frame { return Frame{Type: fr.Type} })
		close(served)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	select {
	case <-served:
	case <-time.After(5 * time.Second):
		t.Fatalf("idle connection was not reaped")
	}
	if idles.Value() != 1 || wireErrs.Value() != 0 {
		t.Fatalf("idle close counted wrong: idles=%d wireErrs=%d", idles.Value(), wireErrs.Value())
	}
}
