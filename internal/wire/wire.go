// Package wire is the binary framing layer shared by the backend and
// middle-tier TCP protocols: length-prefixed frames with a fixed
// magic+version header, little-endian payloads encoded without reflection,
// request-id multiplexing for pipelined clients (Mux), and a concurrent
// per-connection serve loop with idle/write deadlines (ServeConn).
//
// It replaces the original encoding/gob protocol. gob serialized every chunk
// through reflection and forced a strictly serial request/response
// conversation per connection; a frame here is a flat byte slab the peer can
// decode straight into chunk arrays, and the request id in the header lets
// any number of exchanges share one connection out of order.
//
// Frame layout (all integers little-endian):
//
//	offset  size  field
//	0       3     magic "AGW"
//	3       1     version (currently 1)
//	4       1     frame type (protocol-specific)
//	5       1     flags (bit 0: transient error)
//	6       2     reserved, must be zero
//	8       8     request id
//	16      4     payload length
//	20      n     payload
//
// The reader validates magic, version and the payload length bound before
// believing anything else in the header, and reads oversized-claim payloads
// incrementally so a hostile length prefix can never force a large
// allocation ahead of the bytes actually arriving.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"aggcache/internal/obs"
)

const (
	// Version is the protocol version byte carried by every frame.
	Version = 1

	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 20

	// DefaultMaxPayload bounds a single frame's payload (64 MiB) unless the
	// endpoint configures its own limit.
	DefaultMaxPayload = 64 << 20

	// readStep is the incremental payload read granularity: memory committed
	// to a frame grows at most this far ahead of bytes actually received.
	readStep = 64 << 10
)

// FlagTransient marks an error frame as retryable (the peer did not answer
// deterministically — a timeout, a recovered panic), as opposed to a
// permanent per-request rejection.
const FlagTransient uint8 = 1 << 0

var magic = [3]byte{'A', 'G', 'W'}

// Framing errors, matchable with errors.Is. Any of them means the stream
// can no longer be trusted and the connection must be dropped.
var (
	ErrBadMagic      = errors.New("wire: bad frame magic")
	ErrBadVersion    = errors.New("wire: unsupported protocol version")
	ErrFrameTooLarge = errors.New("wire: frame payload exceeds limit")
	ErrTruncated     = errors.New("wire: truncated frame")
	// ErrClosed is delivered to in-flight exchanges when their Mux is torn
	// down by Close; it is deliberately not transient so callers fail
	// promptly instead of retrying into a connection the owner gave up on.
	ErrClosed = errors.New("wire: connection closed")
)

// Frame is one decoded frame. Payload is owned by the receiver.
type Frame struct {
	Type    uint8
	Flags   uint8
	ID      uint64
	Payload []byte
}

// Metrics is the wire-level observability bundle an endpoint records into.
// All handles are nil-safe, so the zero value disables instrumentation.
type Metrics struct {
	BytesIn   *obs.Counter
	BytesOut  *obs.Counter
	FramesIn  *obs.Counter
	FramesOut *obs.Counter
	InFlight  *obs.Gauge
}

// Reader decodes frames from a stream. Not safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	max int
	met Metrics
	hdr [HeaderSize]byte
}

// NewReader wraps r with a frame decoder enforcing maxPayload (0 means
// DefaultMaxPayload).
func NewReader(r io.Reader, maxPayload int, met Metrics) *Reader {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	return &Reader{r: bufio.NewReaderSize(r, 32<<10), max: maxPayload, met: met}
}

// ReadFrame reads and validates one frame. io.EOF is returned untouched when
// the stream ends cleanly between frames, so callers can distinguish a
// goodbye from a mid-frame truncation (ErrTruncated).
func (r *Reader) ReadFrame() (Frame, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, fmt.Errorf("%w: partial header", ErrTruncated)
		}
		return Frame{}, err
	}
	if r.hdr[0] != magic[0] || r.hdr[1] != magic[1] || r.hdr[2] != magic[2] {
		return Frame{}, ErrBadMagic
	}
	if r.hdr[3] != Version {
		return Frame{}, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, r.hdr[3], Version)
	}
	n := binary.LittleEndian.Uint32(r.hdr[16:20])
	if int64(n) > int64(r.max) {
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, r.max)
	}
	fr := Frame{
		Type:  r.hdr[4],
		Flags: r.hdr[5],
		ID:    binary.LittleEndian.Uint64(r.hdr[8:16]),
	}
	if n > 0 {
		// Incremental read: commit at most readStep bytes beyond what has
		// actually arrived, so a hostile length prefix cannot make us
		// allocate the claimed size up front.
		remaining := int(n)
		buf := make([]byte, 0, min(remaining, readStep))
		for remaining > 0 {
			k := min(remaining, readStep)
			off := len(buf)
			buf = append(buf, make([]byte, k)...)
			if _, err := io.ReadFull(r.r, buf[off:]); err != nil {
				return Frame{}, fmt.Errorf("%w: partial payload", ErrTruncated)
			}
			remaining -= k
		}
		fr.Payload = buf
	}
	r.met.FramesIn.Inc()
	r.met.BytesIn.Add(int64(HeaderSize) + int64(n))
	return fr, nil
}

// Writer encodes frames to a stream. Not safe for concurrent use; callers
// multiplexing a connection serialize writes externally (Mux, ServeConn).
// The header and payload are assembled into one reused buffer and written
// with a single Write, so frames never interleave even on a raw net.Conn.
type Writer struct {
	w   io.Writer
	met Metrics
	buf []byte
}

// NewWriter wraps w with a frame encoder.
func NewWriter(w io.Writer, met Metrics) *Writer {
	return &Writer{w: w, met: met, buf: make([]byte, 0, 4096)}
}

// WriteFrame encodes and writes one frame.
func (w *Writer) WriteFrame(f Frame) error {
	w.buf = w.buf[:0]
	w.buf = append(w.buf, magic[0], magic[1], magic[2], Version, f.Type, f.Flags, 0, 0)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, f.ID)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(f.Payload)))
	w.buf = append(w.buf, f.Payload...)
	n, err := w.w.Write(w.buf)
	if err != nil {
		return err
	}
	w.met.FramesOut.Inc()
	w.met.BytesOut.Add(int64(n))
	return nil
}
