package wire

import (
	"errors"
	"fmt"
	"time"
)

// FrameBusy is the 429-equivalent in-band reply shared by every protocol on
// this framing layer: the server is refusing the request *before* doing any
// work on it — admission queue full, deadline unmeetable, quota exhausted —
// as opposed to failing while serving it (an error frame). The payload
// carries a retry-after hint and a shed reason:
//
//	retry_after_ms u32 | reason str
//
// Busy frames always carry FlagTransient: the request itself is fine and a
// retry after the hint may succeed, so clients route it through the PR-3
// taxonomy (IsTransient=true) and back off instead of hammering a server
// that is already drowning. The type value is reserved across the backend
// and middle-tier protocols, like the frame header itself.
const FrameBusy uint8 = 0xB9

// BusyError is the client-side form of a FrameBusy reply. It is transient by
// construction — backend.IsTransient reports true for it — and carries the
// server's retry-after hint so backoff loops can wait at least that long.
type BusyError struct {
	// RetryAfter is the server's hint: how long to wait before retrying.
	RetryAfter time.Duration
	// Reason is the shed cause ("queue_full", "deadline", "expired",
	// "quota"), for logs and metrics.
	Reason string
}

// Error implements error.
func (e *BusyError) Error() string {
	return fmt.Sprintf("server busy (%s), retry after %v", e.Reason, e.RetryAfter)
}

// AsBusy extracts a BusyError from an error chain.
func AsBusy(err error) (*BusyError, bool) {
	var be *BusyError
	if errors.As(err, &be) {
		return be, true
	}
	return nil, false
}

// BusyFrame builds a FrameBusy reply with the transient flag set.
func BusyFrame(retryAfter time.Duration, reason string) Frame {
	p := AppendU32(nil, uint32(retryAfter.Milliseconds()))
	p = AppendString(p, reason)
	return Frame{Type: FrameBusy, Flags: FlagTransient, Payload: p}
}

// DecodeBusy parses a FrameBusy payload into the error it represents. A
// malformed payload still yields a usable BusyError (zero hint), because a
// busy server's reply must never be escalated into a connection teardown.
func DecodeBusy(p []byte) *BusyError {
	d := NewDec(p)
	ms := d.U32()
	reason := d.String()
	if d.Err() != nil {
		return &BusyError{}
	}
	return &BusyError{RetryAfter: time.Duration(ms) * time.Millisecond, Reason: reason}
}
