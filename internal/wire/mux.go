package wire

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Mux multiplexes request/response exchanges over one connection: callers
// issue RoundTrip concurrently, writes are serialized under a short mutex,
// and a single reader goroutine dispatches response frames to waiters by
// request id — so N in-flight requests cost one connection and responses
// may complete in any order.
//
// A Mux fails as a unit: the first wire-level error (or Close) tears the
// connection down and delivers the error to every in-flight exchange
// immediately, so no caller is ever left waiting on a dead stream.
type Mux struct {
	conn net.Conn
	met  Metrics

	wmu sync.Mutex
	w   *Writer

	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan muxResult
	err     error // first terminal error; nil while healthy
}

type muxResult struct {
	fr  Frame
	err error
}

// NewMux starts multiplexing conn. maxPayload bounds response frames
// (0 means DefaultMaxPayload).
func NewMux(conn net.Conn, maxPayload int, met Metrics) *Mux {
	m := &Mux{
		conn:    conn,
		met:     met,
		w:       NewWriter(conn, met),
		pending: make(map[uint64]chan muxResult),
	}
	r := NewReader(conn, maxPayload, met)
	go m.readLoop(r)
	return m
}

// readLoop is the single reader: it owns the receive side of the connection
// and hands each response to the caller registered under its id. Responses
// for ids nobody waits on (a caller that gave up on its context) are
// dropped on the floor — the exchange is over either way.
func (m *Mux) readLoop(r *Reader) {
	for {
		fr, err := r.ReadFrame()
		if err != nil {
			m.fail(fmt.Errorf("wire: receive: %w", err))
			return
		}
		m.mu.Lock()
		ch, ok := m.pending[fr.ID]
		if ok {
			delete(m.pending, fr.ID)
		}
		m.mu.Unlock()
		if ok {
			ch <- muxResult{fr: fr}
			m.met.InFlight.Add(-1)
		}
	}
}

// fail latches the first terminal error, closes the connection (unblocking
// the reader and any stuck write), and delivers the error to every pending
// exchange.
func (m *Mux) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	} else {
		err = m.err
	}
	pend := m.pending
	m.pending = make(map[uint64]chan muxResult)
	m.mu.Unlock()
	m.conn.Close()
	for _, ch := range pend {
		ch <- muxResult{err: err}
		m.met.InFlight.Add(-1)
	}
}

// Close tears the connection down promptly: in-flight exchanges fail with
// ErrClosed instead of waiting out their I/O deadlines.
func (m *Mux) Close() error {
	m.fail(ErrClosed)
	return nil
}

// Healthy reports whether the connection is still usable.
func (m *Mux) Healthy() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err == nil
}

// forget abandons a pending exchange (the caller's context ended). It
// reports whether the entry was still pending; if not, a result was already
// delivered to the caller's channel.
func (m *Mux) forget(id uint64) bool {
	m.mu.Lock()
	_, ok := m.pending[id]
	if ok {
		delete(m.pending, id)
	}
	m.mu.Unlock()
	if ok {
		m.met.InFlight.Add(-1)
	}
	return ok
}

// RoundTrip performs one exchange: assign an id, write the request frame,
// and wait for the matching response. deadline (zero means none) bounds the
// whole exchange; when it expires the connection is torn down — a peer that
// stopped answering cannot be trusted with the stream's framing — and the
// timeout is delivered to every other in-flight exchange as well. Context
// cancellation, by contrast, abandons only this exchange and leaves the
// connection healthy for the others.
func (m *Mux) RoundTrip(ctx context.Context, typ, flags uint8, payload []byte, deadline time.Time) (Frame, error) {
	id := m.nextID.Add(1)
	ch := make(chan muxResult, 1)
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		return Frame{}, err
	}
	m.pending[id] = ch
	m.mu.Unlock()
	m.met.InFlight.Add(1)

	m.wmu.Lock()
	m.conn.SetWriteDeadline(deadline)
	err := m.w.WriteFrame(Frame{Type: typ, Flags: flags, ID: id, Payload: payload})
	m.wmu.Unlock()
	if err != nil {
		// A failed write leaves the stream position unknown; the connection
		// is done for everyone.
		m.forget(id)
		m.fail(fmt.Errorf("wire: send: %w", err))
		return Frame{}, fmt.Errorf("wire: send: %w", err)
	}

	var timeC <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timeC = t.C
	}
	select {
	case res := <-ch:
		return res.fr, res.err
	case <-ctx.Done():
		if m.forget(id) {
			return Frame{}, ctx.Err()
		}
		// The response raced the cancellation; it is buffered, take it.
		res := <-ch
		return res.fr, res.err
	case <-timeC:
		m.fail(fmt.Errorf("wire: exchange timed out: %w", os.ErrDeadlineExceeded))
		// fail delivered to our channel unless the response raced in; either
		// way exactly one result is buffered.
		res := <-ch
		return res.fr, res.err
	}
}
