package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"aggcache/internal/chunk"
)

// FuzzFrame feeds arbitrary bytes to the frame reader and then to the chunk
// payload decoder. The invariants under fuzzing: no panic, no runaway
// allocation (the 1 MiB payload cap plus the incremental read make a hostile
// length prefix harmless), and anything the reader does accept round-trips
// byte-identically through the writer.
func FuzzFrame(f *testing.F) {
	// Seed corpus: valid frames of each interesting shape, plus targeted
	// corruptions the unit tests also cover.
	add := func(fr Frame) {
		var buf bytes.Buffer
		w := NewWriter(&buf, Metrics{})
		if err := w.WriteFrame(fr); err != nil {
			f.Fatalf("seed frame: %v", err)
		}
		f.Add(buf.Bytes())
	}
	add(Frame{Type: 1, ID: 1})
	add(Frame{Type: 0x81, Flags: FlagTransient, ID: 7, Payload: []byte("payload")})
	add(Frame{Type: 0xE0, ID: 1<<63 + 5, Payload: bytes.Repeat([]byte{9}, 3000)})
	f.Add([]byte("AGW"))                                  // truncated header
	f.Add(bytes.Repeat([]byte{0xFF}, 64))                 // bad magic
	f.Add(append([]byte("AGW\x02"), make([]byte, 16)...)) // bad version
	huge := append([]byte("AGW\x01\x01\x00\x00\x00"), make([]byte, 8)...)
	huge = binary.LittleEndian.AppendUint32(huge, 0xFFFFFFF0) // oversized claim
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data), 1<<20, Metrics{})
		for {
			fr, err := r.ReadFrame()
			if err != nil {
				return
			}
			if len(fr.Payload) > len(data) {
				t.Fatalf("decoded payload of %d bytes from %d input bytes", len(fr.Payload), len(data))
			}
			// An accepted frame must survive a write/read round trip intact.
			var buf bytes.Buffer
			if err := NewWriter(&buf, Metrics{}).WriteFrame(fr); err != nil {
				t.Fatalf("re-encode accepted frame: %v", err)
			}
			got, err := NewReader(&buf, 1<<20, Metrics{}).ReadFrame()
			if err != nil {
				t.Fatalf("re-decode accepted frame: %v", err)
			}
			if got.Type != fr.Type || got.Flags != fr.Flags || got.ID != fr.ID || !bytes.Equal(got.Payload, fr.Payload) {
				t.Fatalf("frame did not round-trip: %+v vs %+v", got, fr)
			}
		}
	})
}

// FuzzChunkDecode throws arbitrary bytes at the chunk slab decoder: it must
// either return a chunk whose arrays are consistent with the bytes consumed,
// or cleanly latch an error — never panic, never allocate arrays larger than
// the payload could possibly back.
func FuzzChunkDecode(f *testing.F) {
	f.Add(AppendChunk(nil, testChunk(3, true)))
	f.Add(AppendChunk(nil, testChunk(1, false)))
	f.Add([]byte{})
	bad := AppendChunk(nil, testChunk(2, true))
	binary.LittleEndian.PutUint32(bad[8:12], 1<<31-1) // inflated cell count
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDec(data)
		c := d.Chunk()
		if c == nil {
			if d.Err() == nil {
				t.Fatalf("nil chunk without a latched error")
			}
			return
		}
		if len(c.Keys) != len(c.Vals) {
			t.Fatalf("inconsistent arrays: %d keys, %d vals", len(c.Keys), len(c.Vals))
		}
		if c.Counts != nil && len(c.Counts) != len(c.Keys) {
			t.Fatalf("inconsistent counts: %d vs %d", len(c.Counts), len(c.Keys))
		}
		if 16*len(c.Keys) > len(data) {
			t.Fatalf("decoded %d cells from %d payload bytes", len(c.Keys), len(data))
		}
	})
}

func testChunk(cells int, counts bool) *chunk.Chunk {
	c := &chunk.Chunk{GB: 2, Num: 4}
	for i := 0; i < cells; i++ {
		c.Keys = append(c.Keys, uint64(i*i+1))
		c.Vals = append(c.Vals, float64(i)*1.5)
		if counts {
			c.Counts = append(c.Counts, int64(i+1))
		}
	}
	return c
}
