package wire

import (
	"encoding/binary"
	"math"

	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
)

// This file is the payload codec: append-style encoders building onto a
// caller-owned byte slice, and a bounds-checked decoding cursor. Everything
// is little-endian and reflection-free, and every decoder validates claimed
// element counts against the bytes actually present before allocating, so a
// malformed payload yields an error, never a panic or an outsized make().

// AppendU8 appends one byte.
func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

// AppendU32 appends a little-endian uint32.
func AppendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// AppendU64 appends a little-endian uint64.
func AppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendF64 appends a float64 as its IEEE-754 bits.
func AppendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendString appends a uint32 length prefix and the string bytes.
func AppendString(b []byte, s string) []byte {
	b = AppendU32(b, uint32(len(s)))
	return append(b, s...)
}

// AppendChunk appends one chunk as a flat slab: group-by, chunk number, cell
// count, a counts-present flag, then the key/value/count arrays back to
// back. The arrays are copied with bulk appends — no per-cell boxing.
func AppendChunk(b []byte, c *chunk.Chunk) []byte {
	b = AppendU32(b, uint32(c.GB))
	b = AppendU32(b, uint32(c.Num))
	b = AppendU32(b, uint32(len(c.Keys)))
	if c.Counts != nil {
		b = AppendU8(b, 1)
	} else {
		b = AppendU8(b, 0)
	}
	for _, k := range c.Keys {
		b = binary.LittleEndian.AppendUint64(b, k)
	}
	for _, v := range c.Vals {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	for _, n := range c.Counts {
		b = binary.LittleEndian.AppendUint64(b, uint64(n))
	}
	return b
}

// ChunkWireSize returns the encoded size of a chunk, for pre-sizing buffers.
func ChunkWireSize(c *chunk.Chunk) int {
	n := 13 + 16*len(c.Keys)
	if c.Counts != nil {
		n += 8 * len(c.Keys)
	}
	return n
}

// Dec is a decoding cursor over one payload. The first bounds violation
// latches the error; every later read returns the zero value, so decoders
// can run straight-line and check Err once at the end.
type Dec struct {
	b   []byte
	off int
	bad bool
}

// NewDec returns a cursor over b.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err reports whether the payload was malformed (truncated or
// inconsistent).
func (d *Dec) Err() error {
	if d.bad {
		return ErrTruncated
	}
	return nil
}

// Remaining returns the number of unread bytes.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

func (d *Dec) fail() { d.bad = true }

// take returns the next n bytes, or nil after latching the error.
func (d *Dec) take(n int) []byte {
	if d.bad || n < 0 || n > len(d.b)-d.off {
		d.fail()
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

// F64 reads a float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// String reads a length-prefixed string. The length is validated against
// the remaining payload before the bytes are copied.
func (d *Dec) String() string {
	n := d.U32()
	s := d.take(int(n))
	if s == nil {
		return ""
	}
	return string(s)
}

// Chunk decodes one chunk slab into freshly allocated arrays (the caller —
// a cache — may retain them indefinitely, so they are never pooled; see
// DESIGN.md §9 on chunk ownership). Returns nil on malformed input.
func (d *Dec) Chunk() *chunk.Chunk {
	gb := d.U32()
	num := d.U32()
	cells := int(d.U32())
	hasCounts := d.U8()
	if d.bad || hasCounts > 1 {
		d.fail()
		return nil
	}
	need := 16 * cells
	if hasCounts == 1 {
		need += 8 * cells
	}
	if cells < 0 || need > d.Remaining() {
		d.fail()
		return nil
	}
	c := &chunk.Chunk{
		GB:   lattice.ID(gb),
		Num:  int32(num),
		Keys: make([]uint64, cells),
		Vals: make([]float64, cells),
	}
	kb := d.take(8 * cells)
	for i := range c.Keys {
		c.Keys[i] = binary.LittleEndian.Uint64(kb[8*i:])
	}
	vb := d.take(8 * cells)
	for i := range c.Vals {
		c.Vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(vb[8*i:]))
	}
	if hasCounts == 1 {
		cb := d.take(8 * cells)
		c.Counts = make([]int64, cells)
		for i := range c.Counts {
			c.Counts[i] = int64(binary.LittleEndian.Uint64(cb[8*i:]))
		}
	}
	return c
}
