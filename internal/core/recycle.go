package core

import (
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
)

// recycleScore prices one interior plan node for admission: would keeping
// this just-computed intermediate save more recompute cost per byte than the
// threshold? The saved cost is the strategy's O(1) CostEstimate — exactly
// what the cache would pay to re-derive the node from what stays resident
// after this query (its inputs are pinned leaves, so they survive it).
// Strategies without the benefit API fall back to the node's measured
// subtree scan count, which over-counts only by the sub-aggregations that
// would themselves be skipped — a conservative-enough proxy.
//
// A zero estimate means the chunk is already resident (a concurrent query
// inserted it between planning and now): re-admitting buys nothing, so the
// node is rejected and stays on the pooled scratch path.
//
// Speculation is one-shot: recycleTry remembers every key the recycler has
// ever admitted, and a key that was admitted, evicted unpromoted and comes
// around again is refused — it had its residency window and nothing reused
// it. Without this, a steady-state workload re-materializes, re-admits and
// re-evicts the same unprofitable intermediates every pass, and the churn
// costs strategy maintenance and invalidates result-cache entries wholesale.
// Intermediates that DO get reused are promoted to the protected ring by the
// reinforcement path and never come back through here. The ghost set is
// bounded by reset: losing it merely re-opens one admission window per key.
func (e *Engine) recycleTry(k cache.Key) bool {
	e.recycleMu.Lock()
	defer e.recycleMu.Unlock()
	if _, tried := e.recycleSeen[k]; tried {
		return false
	}
	if len(e.recycleSeen) >= recycleGhostMax {
		e.recycleSeen = make(map[cache.Key]struct{}, recycleGhostMax/4)
	}
	e.recycleSeen[k] = struct{}{}
	return true
}

// recycleGhostMax bounds the one-shot admission ghost set (~3 MB of map at
// worst) — far above any realistic distinct-intermediate count.
const recycleGhostMax = 1 << 17

func (e *Engine) recycleScore(gb lattice.ID, num int, tuples int64, cells int) (admit bool, benefit float64) {
	if !e.opts.recycle {
		return false, 0
	}
	bytes := int64(cells)*chunk.CellBytes + chunk.OverheadBytes
	cost := tuples
	if e.est != nil {
		if c, ok := e.est.CostEstimate(gb, num); ok {
			cost = c
		}
	}
	if float64(cost) < e.opts.recycleMinBenefit*float64(bytes) {
		return false, 0
	}
	if !e.recycleTry(cache.Key{GB: gb, Num: int32(num)}) {
		return false, 0
	}
	return true, float64(cost)
}

// listenerTee fans the store's single listener slot out to the strategy and
// the result cache. Callbacks fire synchronously under a store shard lock;
// both receivers do in-memory bookkeeping only and never call back into the
// store, preserving the one-way shard-lock order.
type listenerTee struct {
	strat  cache.Listener
	rcache *resultCache
}

func (t listenerTee) OnInsert(e *cache.Entry) { t.strat.OnInsert(e) }

// OnEvent forwards every event to the strategy (it distinguishes tier moves
// itself) but invalidates result-cache entries only on true departures: a
// demoted chunk still answers through the store's cold tier and a promoted
// one never left, so cached answers built on them remain valid.
func (t listenerTee) OnEvent(ev cache.Event) {
	t.strat.OnEvent(ev)
	if !ev.Answerable() {
		t.rcache.onEvict(ev.Key)
	}
}

// recycleFills extends the recycler to backend fills: a batch of chunks
// arriving at group-by gb is an admission candidate for each one-step
// lattice roll-up it fully covers. For every child (more aggregated)
// group-by, each distinct child chunk the batch touches is checked for full
// input coverage within the batch, priced with the same saved-cost-per-byte
// heuristic — the roll-up's cost is the batch cells scanned, its size the
// sizer's cell estimate — and, when profitable and not already resident,
// materialized and inserted as a computed-class chunk. One lattice step
// only: deeper roll-ups derive more cheaply from the admitted copy if a
// later query wants them, and chains would multiply work on the miss path.
func (e *Engine) recycleFills(gb lattice.ID, nums []int, data []*chunk.Chunk, res *Result) {
	byNum := make(map[int]*chunk.Chunk, len(nums))
	for i, num := range nums {
		byNum[num] = data[i]
	}
	var inputs []int
	for _, ch := range e.lat.Children(gb) {
		seen := make(map[int]struct{})
		for _, num := range nums {
			cc := e.grid.ChildChunk(gb, num, ch)
			if _, dup := seen[cc]; dup {
				continue
			}
			seen[cc] = struct{}{}
			inputs = e.grid.ParentChunks(ch, cc, gb, inputs[:0])
			covered := true
			var cost int64
			for _, in := range inputs {
				src, ok := byNum[in]
				if !ok {
					covered = false
					break
				}
				cost += int64(src.Cells())
			}
			if !covered {
				continue
			}
			k := cache.Key{GB: ch, Num: int32(cc)}
			if e.cache.Contains(k) {
				continue
			}
			bytes := e.sizes.ChunkCells(ch, cc)*chunk.CellBytes + chunk.OverheadBytes
			if float64(cost) < e.opts.recycleMinBenefit*float64(bytes) {
				e.stats.recycleRejects.Add(1)
				e.met.RecycleRejected.Inc()
				continue
			}
			if !e.recycleTry(k) {
				continue
			}
			cm := e.grid.GetCellMap(ch, cc)
			rollErr := false
			for _, in := range inputs {
				if _, err := e.grid.RollUpInto(cm, ch, cc, byNum[in]); err != nil {
					rollErr = true
					break
				}
			}
			if !rollErr && e.cache.Insert(k, cm.Build(ch, cc), cache.AsRecycled(float64(cost))) {
				res.RecycledChunks++
				e.stats.recycled.Add(1)
				e.met.RecycledChunks.Inc()
			}
			chunk.PutCellMap(cm)
		}
	}
}
