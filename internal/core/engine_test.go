package core

import (
	"context"
	"math/rand"
	"testing"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
)

type fixture struct {
	grid   *chunk.Grid
	engine *Engine
	oracle *backend.Engine
}

// build wires an engine over the tiny APB preset.
func build(t testing.TB, stratName string, policy cache.Policy, capacity int64, opts ...Option) *fixture {
	t.Helper()
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(21)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	be, err := backend.NewEngine(g, tab, backend.LatencyModel{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	sz := sizer.NewEstimate(g, int64(tab.Len()))
	var s strategy.Strategy
	switch stratName {
	case "ESM":
		s = strategy.NewESM(g, 0)
	case "ESM-tiny-budget":
		s = strategy.NewESM(g, 1)
	case "ESMC":
		s = strategy.NewESMC(g, sz, 0)
	case "VCM":
		s = strategy.NewVCM(g)
	case "VCMC":
		s = strategy.NewVCMC(g, sz)
	case "NoAgg":
		s = strategy.NewNoAgg(g)
	default:
		t.Fatalf("unknown strategy %q", stratName)
	}
	c, err := cache.New(capacity, policy)
	if err != nil {
		t.Fatalf("cache.New: %v", err)
	}
	e, err := New(g, c, s, be, sz, opts...)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return &fixture{grid: g, engine: e, oracle: be}
}

// randomQuery picks a random group-by and chunk rectangle.
func randomQuery(rng *rand.Rand, g *chunk.Grid) Query {
	lat := g.Lattice()
	gb := lattice.ID(rng.Intn(lat.NumNodes()))
	lv := lat.Level(gb)
	nd := g.Schema().NumDims()
	lo := make([]int32, nd)
	hi := make([]int32, nd)
	for d := 0; d < nd; d++ {
		n := g.ChunkCount(d, lv[d])
		a := rng.Intn(n)
		b := a + 1 + rng.Intn(n-a)
		lo[d], hi[d] = int32(a), int32(b)
	}
	return Query{GB: gb, Lo: lo, Hi: hi}
}

// assertMatchesOracle compares a result against direct backend computation.
func assertMatchesOracle(t *testing.T, f *fixture, q Query, res *Result) {
	t.Helper()
	nq, err := q.normalize(f.grid)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	nums := nq.chunkNumbers(f.grid)
	want, _, err := f.oracle.ComputeChunks(context.Background(), nq.GB, nums)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if len(res.Chunks) != len(want) {
		t.Fatalf("result has %d chunks, want %d", len(res.Chunks), len(want))
	}
	for i, wc := range want {
		gc := res.Chunks[i]
		if gc == nil {
			t.Fatalf("nil chunk %d", i)
		}
		if gc.Cells() != wc.Cells() {
			t.Fatalf("chunk %d: %d cells, want %d", i, gc.Cells(), wc.Cells())
		}
		for j, key := range wc.Keys {
			v, ok := gc.Value(key)
			if !ok {
				t.Fatalf("chunk %d missing cell %d", i, key)
			}
			if diff := v - wc.Vals[j]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("chunk %d cell %d: %v, want %v", i, key, v, wc.Vals[j])
			}
		}
	}
}

// TestEngineMatchesOracleAllStrategies is the engine's main correctness
// property: whatever the strategy, policy or cache size, every answer equals
// direct backend computation.
func TestEngineMatchesOracleAllStrategies(t *testing.T) {
	for _, name := range []string{"ESM", "ESMC", "VCM", "VCMC", "NoAgg"} {
		for _, cap := range []int64{2_000, 20_000, 1 << 20} {
			t.Run(name, func(t *testing.T) {
				var p cache.Policy
				if name == "NoAgg" {
					p = cache.NewBenefitClock()
				} else {
					p = cache.NewTwoLevel()
				}
				f := build(t, name, p, cap)
				rng := rand.New(rand.NewSource(99))
				for i := 0; i < 40; i++ {
					q := randomQuery(rng, f.grid)
					res, err := f.engine.Execute(context.Background(), q)
					if err != nil {
						t.Fatalf("Execute: %v", err)
					}
					assertMatchesOracle(t, f, q, res)
				}
			})
		}
	}
}

func TestRepeatQueryIsCompleteHit(t *testing.T) {
	f := build(t, "VCMC", cache.NewTwoLevel(), 1<<20)
	q := WholeGroupBy(f.grid.Lattice().MustID(1, 1, 0))
	res1, err := f.engine.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res1.CompleteHit {
		t.Fatalf("first query should miss (cold cache)")
	}
	res2, err := f.engine.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res2.CompleteHit || res2.MissChunks != 0 {
		t.Fatalf("repeat query not a complete hit: %+v", res2)
	}
	if res2.Breakdown.Backend != 0 {
		t.Fatalf("repeat query touched the backend")
	}
	st := f.engine.Stats()
	if st.Queries != 2 || st.CompleteHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRollUpIsCompleteHit is the paper's headline behaviour: after the base
// data is cached, an aggregated query is answered by aggregating the cache
// with no backend access.
func TestRollUpIsCompleteHit(t *testing.T) {
	f := build(t, "VCMC", cache.NewTwoLevel(), 1<<20)
	lat := f.grid.Lattice()
	if _, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Base())); err != nil {
		t.Fatalf("warm base: %v", err)
	}
	res, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Top()))
	if err != nil {
		t.Fatalf("Execute(top): %v", err)
	}
	if !res.CompleteHit {
		t.Fatalf("aggregate query should be a complete hit")
	}
	if res.AggregatedTuples == 0 {
		t.Fatalf("no aggregation happened")
	}
	assertMatchesOracle(t, f, WholeGroupBy(lat.Top()), res)
	// NoAgg in the same situation must go to the backend.
	f2 := build(t, "NoAgg", cache.NewBenefitClock(), 1<<20)
	if _, err := f2.engine.Execute(context.Background(), WholeGroupBy(f2.grid.Lattice().Base())); err != nil {
		t.Fatalf("warm base: %v", err)
	}
	res2, err := f2.engine.Execute(context.Background(), WholeGroupBy(f2.grid.Lattice().Top()))
	if err != nil {
		t.Fatalf("Execute(top): %v", err)
	}
	if res2.CompleteHit {
		t.Fatalf("NoAgg must miss on aggregate queries")
	}
}

func TestComputedChunkGetsCached(t *testing.T) {
	f := build(t, "VCMC", cache.NewTwoLevel(), 1<<20)
	lat := f.grid.Lattice()
	if _, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Base())); err != nil {
		t.Fatalf("warm: %v", err)
	}
	if _, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Top())); err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	// The aggregated chunk must now be resident: a third query answers it
	// without aggregation work.
	res, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Top()))
	if err != nil {
		t.Fatalf("repeat: %v", err)
	}
	if !res.CompleteHit || res.AggregatedTuples != 0 {
		t.Fatalf("computed chunk was not cached: %+v", res)
	}
}

func TestBudgetExceededFallsBackToBackend(t *testing.T) {
	f := build(t, "ESM-tiny-budget", cache.NewTwoLevel(), 1<<20)
	lat := f.grid.Lattice()
	if _, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Base())); err != nil {
		t.Fatalf("warm: %v", err)
	}
	// With budget 1, an aggregate lookup trips the budget and the chunk is
	// fetched from the backend instead.
	res, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Top()))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res.BudgetExceeded {
		t.Fatalf("expected BudgetExceeded")
	}
	if res.CompleteHit {
		t.Fatalf("budget miss should not be a complete hit")
	}
	assertMatchesOracle(t, f, WholeGroupBy(lat.Top()), res)
	if f.engine.Stats().BudgetMisses == 0 {
		t.Fatalf("BudgetMisses not counted")
	}
}

func TestQueryValidation(t *testing.T) {
	f := build(t, "VCM", cache.NewTwoLevel(), 1<<20)
	cases := []Query{
		{GB: 9999},
		{GB: 0, Lo: []int32{0}, Hi: []int32{1}}, // wrong arity
		{GB: 0, Lo: []int32{0, 0, 0}, Hi: []int32{2, 1, 1}},                                              // out of range
		{GB: 0, Lo: []int32{0, 0, 0}, Hi: []int32{0, 1, 1}},                                              // empty
		{GB: 0, MemberRanges: []chunk.Range{{Lo: 0, Hi: 1}}, Lo: []int32{0, 0, 0}, Hi: []int32{1, 1, 1}}, // ranges arity
	}
	for i, q := range cases {
		if _, err := f.engine.Execute(context.Background(), q); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := New(nil, nil, nil, nil, nil); err == nil {
		t.Errorf("New with nils: expected error")
	}
}

func TestMemberRangeTrim(t *testing.T) {
	f := build(t, "VCMC", cache.NewTwoLevel(), 1<<20)
	lat := f.grid.Lattice()
	base := lat.Base()
	full, err := f.engine.Execute(context.Background(), WholeGroupBy(base))
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	// Trim to the first product member only.
	sch := f.grid.Schema()
	ranges := make([]chunk.Range, sch.NumDims())
	lv := lat.Level(base)
	for d := range ranges {
		ranges[d] = chunk.Range{Lo: 0, Hi: int32(sch.Dim(d).Card(lv[d]))}
	}
	ranges[0] = chunk.Range{Lo: 0, Hi: 1}
	q := WholeGroupBy(base)
	q.MemberRanges = ranges
	trimmed, err := f.engine.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("trimmed: %v", err)
	}
	if trimmed.Cells() >= full.Cells() {
		t.Fatalf("trim did not reduce cells: %d vs %d", trimmed.Cells(), full.Cells())
	}
	if trimmed.Total() >= full.Total() {
		t.Fatalf("trim did not reduce total")
	}
}

func TestPreload(t *testing.T) {
	f := build(t, "VCMC", cache.NewTwoLevel(), 1<<20)
	gb, ok, err := f.engine.Preload(context.Background())
	if err != nil || !ok {
		t.Fatalf("Preload: %v %v", ok, err)
	}
	lat := f.grid.Lattice()
	// A huge cache fits the base table, which has the maximal descendant
	// count.
	if gb != lat.Base() {
		t.Fatalf("preloaded %s, want base", lat.LevelTupleString(gb))
	}
	// Everything is now a complete hit.
	res, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Top()))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res.CompleteHit {
		t.Fatalf("query after full preload missed")
	}
}

func TestPreloadSmallCachePicksAggregate(t *testing.T) {
	f := build(t, "VCMC", cache.NewTwoLevel(), 3_000)
	gb, ok, err := f.engine.Preload(context.Background())
	if err != nil {
		t.Fatalf("Preload: %v", err)
	}
	if !ok {
		t.Skipf("nothing fits in 3000 bytes for this dataset")
	}
	lat := f.grid.Lattice()
	if gb == lat.Base() {
		t.Fatalf("base table cannot fit a 3000-byte cache")
	}
	if f.engine.Cache().Used() > f.engine.Cache().Capacity() {
		t.Fatalf("preload overfilled the cache")
	}
}

func TestChoosePreloadNothingFits(t *testing.T) {
	f := build(t, "VCM", cache.NewTwoLevel(), 1<<20)
	if _, ok := ChoosePreloadGroupBy(f.grid, sizer.NewEstimate(f.grid, 1_000_000_000), 10); ok {
		t.Fatalf("nothing should fit in 10 bytes")
	}
}

func TestWholeGroupByNumChunks(t *testing.T) {
	f := build(t, "VCM", cache.NewTwoLevel(), 1<<20)
	lat := f.grid.Lattice()
	n, err := WholeGroupBy(lat.Base()).NumChunks(f.grid)
	if err != nil {
		t.Fatalf("NumChunks: %v", err)
	}
	if n != f.grid.NumChunks(lat.Base()) {
		t.Fatalf("NumChunks = %d, want %d", n, f.grid.NumChunks(lat.Base()))
	}
	if _, err := (Query{GB: 9999}).NumChunks(f.grid); err == nil {
		t.Fatalf("expected error")
	}
}

// TestSmallCacheThrashingStillCorrect stresses pinning/eviction interplay: a
// cache that can hold almost nothing must still answer correctly.
func TestSmallCacheThrashingStillCorrect(t *testing.T) {
	f := build(t, "VCMC", cache.NewTwoLevel(), 1_500)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		q := randomQuery(rng, f.grid)
		res, err := f.engine.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		assertMatchesOracle(t, f, q, res)
	}
}
