package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
)

// Regression: a plan leaf the strategy believes resident but the cache no
// longer holds must demote the chunk to a miss, not fail the query. The
// desync is provoked by feeding the strategy an OnInsert for a chunk the
// cache never admitted.
func TestPinFallbackTreatsChunkAsMiss(t *testing.T) {
	f := build(t, "VCMC", cache.NewTwoLevel(), 1<<20)
	lat := f.grid.Lattice()
	top := lat.Top()
	payload, _, err := f.oracle.ComputeChunks(context.Background(), top, []int{0})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	f.engine.Strategy().OnInsert(&cache.Entry{
		Key: cache.Key{GB: top, Num: 0}, Data: payload[0], Class: cache.ClassBackend,
	})
	res, err := f.engine.Execute(context.Background(), WholeGroupBy(top))
	if err != nil {
		t.Fatalf("query failed on a desynced plan leaf: %v", err)
	}
	if res.CompleteHit || res.MissChunks != 1 {
		t.Fatalf("desynced chunk not treated as a miss: %+v", res)
	}
	assertMatchesOracle(t, f, WholeGroupBy(top), res)
}

// gatedBackend blocks every ComputeChunks until released, so a burst of
// identical queries piles up behind the first fetch.
type gatedBackend struct {
	backend.Backend
	calls   atomic.Int64
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gatedBackend) ComputeChunks(ctx context.Context, gb lattice.ID, nums []int) ([]*chunk.Chunk, backend.Stats, error) {
	g.calls.Add(1)
	g.once.Do(func() { close(g.started) })
	<-g.release
	return g.Backend.ComputeChunks(ctx, gb, nums)
}

// TestSingleflightDedupesIdenticalFetches checks that a burst of identical
// cold queries does not issue one backend request each: followers join the
// leader's in-flight fetch.
func TestSingleflightDedupesIdenticalFetches(t *testing.T) {
	base := build(t, "VCMC", cache.NewTwoLevel(), 1<<20)
	gb := &gatedBackend{Backend: base.oracle, started: make(chan struct{}), release: make(chan struct{})}
	sz := sizer.NewEstimate(base.grid, 1000)
	c, _ := cache.New(1<<20, cache.NewTwoLevel())
	eng, err := New(base.grid, c, strategy.NewVCMC(base.grid, sz), gb, sz)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	lat := base.grid.Lattice()
	q := WholeGroupBy(lat.Top()) // a single chunk, missed by everyone

	const n = 8
	totals := make([]float64, n)
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := eng.Execute(context.Background(), q)
			if err != nil {
				errs <- err
				return
			}
			totals[i] = res.Total()
		}(i)
	}
	<-gb.started
	time.Sleep(50 * time.Millisecond) // let the rest of the burst join the flight
	close(gb.release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent query: %v", err)
	}
	if calls := gb.calls.Load(); calls >= n {
		t.Fatalf("backend saw %d calls for %d identical queries; in-flight dedup broken", calls, n)
	}
	for i := 1; i < n; i++ {
		if math.Abs(totals[i]-totals[0]) > 1e-6 {
			t.Fatalf("totals diverge: %v vs %v", totals[i], totals[0])
		}
	}
}

// TestCostBypassUnderConcurrency runs a burst of queries whose plans the
// §5.2 optimizer routes to the materialized backend; the demotion path
// (unpin + refetch) must stay correct when interleaved with concurrent
// hits on the freshly inserted chunk.
func TestCostBypassUnderConcurrency(t *testing.T) {
	f, _ := buildBypass(t, true)
	lat := f.grid.Lattice()
	if _, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Base())); err != nil {
		t.Fatalf("warm: %v", err)
	}
	const n = 8
	results := make([]*Result, n)
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Top()))
			if err != nil {
				errs <- err
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent bypass query: %v", err)
	}
	for i := 0; i < n; i++ {
		assertMatchesOracle(t, f, WholeGroupBy(lat.Top()), results[i])
	}
	// At least the first arrival had a computable-but-expensive plan and
	// took the bypass; later ones may simply hit the inserted chunk.
	if f.engine.Stats().Bypassed == 0 {
		t.Fatalf("no query took the cost bypass")
	}
}
