package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
)

// storePeer serves cache.Peer exchanges straight from a sibling node's local
// store — the in-process equivalent of the mtier peer protocol, so the
// engine's peer-fill path can be exercised without TCP. Replicas take
// computed-class residency exactly as the wire handler stores them.
type storePeer struct{ st cache.Store }

func (p *storePeer) Get(ctx context.Context, k cache.Key) (*chunk.Chunk, cache.Class, float64, bool, error) {
	if is, ok := p.st.(interface {
		GetInfo(cache.Key) (*chunk.Chunk, cache.Class, float64, bool)
	}); ok {
		d, cl, b, f := is.GetInfo(k)
		return d, cl, b, f, nil
	}
	d, f := p.st.Get(k)
	return d, cache.ClassBackend, 0, f, nil
}

func (p *storePeer) Put(ctx context.Context, k cache.Key, data *chunk.Chunk, cl cache.Class, benefit float64) error {
	p.st.Insert(k, data, cache.AsComputed(benefit))
	return nil
}

func (p *storePeer) Close() error { return nil }

// recordingPeer wraps storePeer and records every replication Put with its
// class, so tests can assert what the Peered store ships to ring owners.
type recordingPeer struct {
	storePeer
	mu   sync.Mutex
	puts map[cache.Key]cache.Class
}

func (p *recordingPeer) Put(ctx context.Context, k cache.Key, data *chunk.Chunk, cl cache.Class, benefit float64) error {
	p.mu.Lock()
	p.puts[k] = cl
	p.mu.Unlock()
	return p.storePeer.Put(ctx, k, data, cl, benefit)
}

// TestRecycledIntermediatesPeered: intermediates the recycler admits on a
// clustered node take computed-class residency in the local tier and are
// never enqueued for owner replication — only backend-class fills ship.
func TestRecycledIntermediatesPeered(t *testing.T) {
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(21)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	be, err := backend.NewEngine(g, tab, backend.LatencyModel{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	sz := sizer.NewEstimate(g, int64(tab.Len()))
	lat := g.Lattice()

	local, err := cache.New(1<<20, cache.NewTwoLevelPromote())
	if err != nil {
		t.Fatalf("cache.New: %v", err)
	}
	remote, _ := cache.New(1<<20, cache.NewTwoLevelPromote())
	peer := &recordingPeer{storePeer: storePeer{st: remote}, puts: make(map[cache.Key]cache.Class)}
	pc, err := cache.NewPeered(local, cache.PeeredConfig{
		Self:    "a",
		Members: []string{"a", "b"},
		Dial:    func(string) cache.Peer { return peer },
	})
	if err != nil {
		t.Fatalf("NewPeered: %v", err)
	}
	t.Cleanup(func() { pc.Close() })

	eng, err := New(g, pc, strategy.NewVCMC(g, sz), be, sz,
		WithRecycling(true), WithRecycleMinBenefit(1e-9), WithResultCache(32))
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}

	if _, err := eng.Execute(context.Background(), WholeGroupBy(lat.Base())); err != nil {
		t.Fatalf("warm: %v", err)
	}
	res, err := eng.Execute(context.Background(), WholeGroupBy(lat.Top()))
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	if res.RecycledChunks == 0 {
		t.Fatalf("no intermediates recycled")
	}
	time.Sleep(100 * time.Millisecond) // drain the async replication queue

	// Every recycled (non-base, non-top) resident carries computed class.
	recycled := map[cache.Key]bool{}
	local.Range(func(k cache.Key, _ *chunk.Chunk, cl cache.Class, _ float64, _ bool) {
		if k.GB == lat.Base() || k.GB == lat.Top() {
			return
		}
		recycled[k] = true
		if cl != cache.ClassComputed {
			t.Errorf("recycled chunk %v has class %v, want ClassComputed", k, cl)
		}
	})
	if len(recycled) == 0 {
		t.Fatalf("no recycled intermediates resident")
	}

	// Replication shipped backend-class fills only; no recycled key ever
	// reached the peer.
	peer.mu.Lock()
	defer peer.mu.Unlock()
	if len(peer.puts) == 0 {
		t.Fatalf("no backend-class replication observed; the check below proves nothing")
	}
	for k, cl := range peer.puts {
		if cl != cache.ClassBackend {
			t.Errorf("peer received a %v-class put for %v", cl, k)
		}
		if recycled[k] {
			t.Errorf("recycled intermediate %v was replicated to its ring owner", k)
		}
	}
}

// TestEnginePeerFillServesRemoteChunks is the engine-level cluster property:
// a node whose neighbor already holds the working set answers part of its
// misses by peer fill instead of the backend, and every answer still equals
// direct backend computation.
func TestEnginePeerFillServesRemoteChunks(t *testing.T) {
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(21)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	be, err := backend.NewEngine(g, tab, backend.LatencyModel{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	sz := sizer.NewEstimate(g, int64(tab.Len()))
	const capacity = 1 << 19

	names := []string{"a", "b"}
	locals := make([]cache.Store, 2)
	for i := range locals {
		if locals[i], err = cache.New(capacity, cache.NewTwoLevel()); err != nil {
			t.Fatalf("cache.New: %v", err)
		}
	}
	engines := make([]*Engine, 2)
	for i := range engines {
		other := locals[1-i]
		pc, err := cache.NewPeered(locals[i], cache.PeeredConfig{
			Self:    names[i],
			Members: names,
			Dial:    func(string) cache.Peer { return &storePeer{st: other} },
		})
		if err != nil {
			t.Fatalf("NewPeered: %v", err)
		}
		t.Cleanup(func() { pc.Close() })
		if engines[i], err = New(g, pc, strategy.NewVCMC(g, sz), be, sz); err != nil {
			t.Fatalf("core.New: %v", err)
		}
	}

	rng := rand.New(rand.NewSource(17))
	queries := make([]Query, 60)
	for i := range queries {
		queries[i] = randomQuery(rng, g)
	}

	// Warm node A with the whole stream, then let its asynchronous
	// replication install B-owned chunks at B.
	for _, q := range queries {
		if _, err := engines[0].Execute(context.Background(), q); err != nil {
			t.Fatalf("warm: %v", err)
		}
	}
	time.Sleep(100 * time.Millisecond)

	// A cold standalone engine replaying the same stream is the baseline for
	// how much backend traffic the peer tier saves.
	solo := build(t, "VCMC", cache.NewTwoLevel(), capacity)
	var soloBackend int64
	for _, q := range queries {
		res, err := solo.engine.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("solo: %v", err)
		}
		soloBackend += int64(res.MissChunks - res.PeerChunks)
	}

	oracle := &fixture{grid: g, engine: engines[1], oracle: be}
	var peerChunks, backendChunks int64
	for _, q := range queries {
		res, err := engines[1].Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		peerChunks += int64(res.PeerChunks)
		backendChunks += int64(res.MissChunks - res.PeerChunks)
		assertMatchesOracle(t, oracle, q, res)
	}
	if peerChunks == 0 {
		t.Fatalf("no chunks were peer-filled from the warmed neighbor")
	}
	if backendChunks >= soloBackend {
		t.Fatalf("peer tier saved nothing: %d backend chunks with a warm neighbor, %d standalone",
			backendChunks, soloBackend)
	}
	t.Logf("peer fills: %d chunks; backend chunks %d (standalone %d)", peerChunks, backendChunks, soloBackend)
}
