package core

import (
	"context"
	"fmt"

	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/sizer"
)

// ChoosePreloadGroupBy implements the two-level policy's preloading rule
// (§6.3): among the group-bys whose estimated materialized size fits in
// capacity bytes, pick the one with the most lattice descendants Π(l_i+1) —
// the group-by able to answer queries on the largest set of levels. Ties go
// to the larger (more detailed) group-by. ok is false when nothing fits.
func ChoosePreloadGroupBy(g *chunk.Grid, sizes sizer.Sizer, capacity int64) (lattice.ID, bool) {
	lat := g.Lattice()
	best := lattice.ID(-1)
	bestDesc := -1
	var bestCells int64
	for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
		cells := sizes.GroupByCells(id)
		bytes := estimateBytes(g, id, cells)
		if bytes > capacity {
			continue
		}
		desc := lat.Descendants(id)
		if desc > bestDesc || (desc == bestDesc && cells > bestCells) {
			best, bestDesc, bestCells = id, desc, cells
		}
	}
	return best, bestDesc >= 0
}

// estimateBytes converts a cell count into the cache footprint of a whole
// group-by.
func estimateBytes(g *chunk.Grid, gb lattice.ID, cells int64) int64 {
	return cells*chunk.CellBytes + int64(g.NumChunks(gb))*chunk.OverheadBytes
}

// Preload fills the cache with the chosen group-by's chunks fetched from the
// backend, marked as backend-class chunks; ctx bounds the backend fetch. It
// returns the group-by loaded. With no group-by fitting the cache it returns
// ok=false without error.
func (e *Engine) Preload(ctx context.Context) (lattice.ID, bool, error) {
	gb, ok := ChoosePreloadGroupBy(e.grid, e.sizes, e.cache.Capacity())
	if !ok {
		return 0, false, nil
	}
	nums := make([]int, e.grid.NumChunks(gb))
	for i := range nums {
		nums[i] = i
	}
	chunks, bstats, err := e.back.ComputeChunks(ctx, gb, nums)
	if err != nil {
		return 0, false, fmt.Errorf("core: preload: %w", err)
	}
	benefit := (float64(bstats.TuplesScanned)*e.opts.backendPenalty + e.opts.connectCostUnits) / float64(len(nums))
	for i, c := range chunks {
		e.cache.Insert(cache.Key{GB: gb, Num: int32(nums[i])}, c, cache.AsBackend(benefit))
	}
	e.stats.backendQueries.Add(1)
	e.stats.backendTuples.Add(bstats.TuplesScanned)
	return gb, true, nil
}
