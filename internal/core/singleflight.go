package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
)

// flightKey identifies one in-flight backend chunk fetch.
type flightKey struct {
	gb  lattice.ID
	num int
}

// flightCall is one chunk's pending fetch. The leader query fills the
// result fields and closes done; follower queries block on done and read
// them. tuples and cost are the chunk's even share of the leader's batch
// statistics — the backend reports per-batch, not per-chunk, numbers.
type flightCall struct {
	done   chan struct{}
	data   *chunk.Chunk
	tuples int64
	cost   time.Duration
	peer   bool // filled from a cluster peer, not the backend
	err    error
}

// flightGroup deduplicates identical concurrent backend chunk fetches: a
// burst of queries missing the same (group-by, chunk) issues one backend
// request. Leaders always publish and retire their own flights before
// waiting on anyone else's, so flights cannot deadlock. A leader that fails
// — backend error, cancelled context — publishes the error and retires the
// flight all the same, so followers never strand; a follower whose leader
// died of its own context (not the follower's) retries the fetch itself,
// bounded by maxFollowerRetries.
type flightGroup struct {
	mu sync.Mutex
	m  map[flightKey]*flightCall
}

// maxFollowerRetries bounds how many times a follower re-attempts chunks
// whose flight leader failed with a context error that was the leader's own.
const maxFollowerRetries = 2

// finish publishes the leader's outcome to each flight and retires it. On
// success chunks[i] pairs with calls[i]; on error chunks is nil. fromPeer
// records whether the chunks came from a cluster peer rather than the
// backend, so followers account them as peer chunks too.
func (g *flightGroup) finish(gb lattice.ID, nums []int, calls []*flightCall, chunks []*chunk.Chunk, tuples int64, cost time.Duration, fromPeer bool, err error) {
	g.mu.Lock()
	for i, c := range calls {
		if err == nil {
			c.data = chunks[i]
			c.tuples = tuples
			c.cost = cost
			c.peer = fromPeer
		}
		c.err = err
		close(c.done)
		delete(g.m, flightKey{gb: gb, num: nums[i]})
	}
	g.mu.Unlock()
}

// fetchMissing obtains every missing chunk from the backend, deduplicating
// against identical fetches already in flight. Chunks nobody is fetching are
// batched into one ComputeChunks call led by this query; chunks with an
// existing flight are awaited after this query's own batch completes.
func (e *Engine) fetchMissing(ctx context.Context, gb lattice.ID, missing, missingIdx []int, res *Result, retry int) error {
	own := make([]int, 0, len(missing))
	ownIdx := make([]int, 0, len(missing))
	var ownCalls []*flightCall
	var waits []*flightCall
	var waitIdx []int
	var waitNum []int
	e.flights.mu.Lock()
	for i, num := range missing {
		k := flightKey{gb: gb, num: num}
		if c, ok := e.flights.m[k]; ok {
			waits = append(waits, c)
			waitIdx = append(waitIdx, missingIdx[i])
			waitNum = append(waitNum, num)
			continue
		}
		c := &flightCall{done: make(chan struct{})}
		e.flights.m[k] = c
		ownCalls = append(ownCalls, c)
		own = append(own, num)
		ownIdx = append(ownIdx, missingIdx[i])
	}
	e.flights.mu.Unlock()
	e.met.FlightLeaderChunks.Add(int64(len(own)))
	e.met.FlightFollowerChunks.Add(int64(len(waits)))

	// Cluster tier: before paying for a backend trip, offer each chunk this
	// query leads to the key's ring owner, all exchanges in flight at once
	// (they pipeline on the per-peer mux). A peer hit publishes to the
	// flight exactly like a backend fetch would (followers never strand)
	// and the chunk drops out of the backend batch; a miss, error or open
	// breaker leaves it in. PeerFill has already installed the chunk in the
	// local store, so the strategy saw the arrival through the listener.
	if e.peers != nil && len(own) > 0 {
		peerStart := time.Now()
		filled := make([]*chunk.Chunk, len(own))
		var wg sync.WaitGroup
		for i, num := range own {
			wg.Add(1)
			go func(i, num int) {
				defer wg.Done()
				if data, ok := e.peers.PeerFill(ctx, cache.Key{GB: gb, Num: int32(num)}); ok {
					filled[i] = data
				}
			}(i, num)
		}
		wg.Wait()
		kept := 0
		for i, num := range own {
			if filled[i] == nil {
				own[kept] = own[i]
				ownIdx[kept] = ownIdx[i]
				ownCalls[kept] = ownCalls[i]
				kept++
				continue
			}
			res.Chunks[ownIdx[i]] = filled[i]
			res.PeerChunks++
			e.flights.finish(gb, []int{num}, []*flightCall{ownCalls[i]}, []*chunk.Chunk{filled[i]}, 0, 0, true, nil)
		}
		own = own[:kept]
		ownIdx = ownIdx[:kept]
		ownCalls = ownCalls[:kept]
		res.Breakdown.Backend += time.Since(peerStart)
	}

	if len(own) > 0 {
		chunks, bstats, err := e.back.ComputeChunks(ctx, gb, own)
		if err == nil && len(chunks) != len(own) {
			// A short (or long) reply would index out of bounds below and —
			// worse — publish bogus chunks to followers. Treat it as a failed
			// fetch instead.
			err = fmt.Errorf("core: backend returned %d chunks, want %d", len(chunks), len(own))
		}
		if err != nil {
			err = fmt.Errorf("core: backend: %w", err)
			// Publish the failure so followers never strand on the flight.
			e.flights.finish(gb, own, ownCalls, nil, 0, 0, false, err)
			return err
		}
		res.Breakdown.Backend += bstats.Cost()
		res.BackendTuples += bstats.TuplesScanned
		e.stats.backendQueries.Add(1)
		e.stats.backendTuples.Add(bstats.TuplesScanned)
		e.met.BackendRequests.Inc()
		e.met.BackendTuples.Add(bstats.TuplesScanned)
		benefit := (float64(bstats.TuplesScanned)*e.opts.backendPenalty + e.opts.connectCostUnits) / float64(len(own))

		// Insert before publishing the flights so followers that re-probe
		// find the chunks resident. The maintenance delta is approximate
		// under concurrency (see the insert phase in execute).
		m0 := e.strat.Maintenance()
		for i, c := range chunks {
			res.Chunks[ownIdx[i]] = c
			e.cache.Insert(cache.Key{GB: gb, Num: int32(own[i])}, c, cache.AsBackend(benefit))
		}
		m1 := e.strat.Maintenance()
		res.Breakdown.Update += m1.Sub(m0).Time

		n := int64(len(own))
		e.flights.finish(gb, own, ownCalls, chunks, bstats.TuplesScanned/n, bstats.Cost()/time.Duration(n), false, nil)

		// The recycler also prices the roll-ups this arrival fully covers:
		// a coarse batch often lands exactly the inputs a drill-down session
		// will next aggregate. Runs after the flights are published so
		// followers never wait on speculative work.
		if e.opts.recycle {
			e.recycleFills(gb, own, chunks, res)
		}
	}

	// Chunks whose leader failed with a context error that was not ours:
	// the fetch itself may be perfectly healthy, so retry it under our own
	// context rather than inheriting the leader's cancellation.
	var again []int
	var againIdx []int
	for i, c := range waits {
		select {
		case <-c.done:
		case <-ctx.Done():
			return ctx.Err()
		}
		if c.err != nil {
			leaderCtxDied := errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded)
			if leaderCtxDied && ctx.Err() == nil && retry < maxFollowerRetries {
				again = append(again, waitNum[i])
				againIdx = append(againIdx, waitIdx[i])
				continue
			}
			return c.err
		}
		res.Chunks[waitIdx[i]] = c.data
		res.BackendTuples += c.tuples
		res.Breakdown.Backend += c.cost
		if c.peer {
			res.PeerChunks++
		}
	}
	if len(again) > 0 {
		return e.fetchMissing(ctx, gb, again, againIdx, res, retry+1)
	}
	return nil
}
