package core

import (
	"sync"

	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
)

// resultCache is a small bounded semantic cache of whole query answers,
// sitting above the chunk cache. A canonicalized query rectangle — the
// group-by plus the normalized half-open chunk-coordinate bounds — maps to
// the assembled, untrimmed chunk set of a previous answer. A lookup is
// answered by exact match, or by containment subsumption: any cached
// same-group-by rectangle that contains the probe yields the probe's
// sub-rectangle by pure index arithmetic. Both paths skip planning,
// aggregation and the backend entirely.
//
// Entries only reference chunk payloads that were resident in the chunk
// cache when the entry was created, and every entry is invalidated the
// moment any contributing chunk is evicted (the engine tees the store's
// listener into onEvict). Chunk payloads are immutable, so this contract is
// about retention, not correctness: it keeps the result cache from holding
// byte volumes the store believes it has freed. MemberRanges do not
// participate in the key — entries store the chunk-aligned answer and the
// engine re-applies member trimming per query.
//
// Locking: mu guards everything. onEvict runs under a store shard lock, so
// no resultCache method may call into the store while holding mu (the
// engine's put-time residency re-check runs unlocked and reconciles races
// by dropping the entry).
type resultCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	exact      map[resultKey]*resultEntry
	byGB       map[lattice.ID]map[*resultEntry]struct{}
	deps       map[cache.Key]map[*resultEntry]struct{}
	// Intrusive LRU: newest at the head, eviction from the tail.
	newest, oldest *resultEntry

	hits        int64 // exact-match answers
	subsumed    int64 // containment answers
	misses      int64
	puts        int64
	invalidated int64 // entries dropped by contributing-chunk eviction
	evicted     int64 // entries dropped by the LRU bound
}

// resultKey canonicalizes a normalized query rectangle.
type resultKey struct {
	gb   lattice.ID
	rect string
}

func packRect(lo, hi []int32) string {
	b := make([]byte, 0, len(lo)*8)
	for i := range lo {
		b = append(b,
			byte(lo[i]), byte(lo[i]>>8), byte(lo[i]>>16), byte(lo[i]>>24),
			byte(hi[i]), byte(hi[i]>>8), byte(hi[i]>>16), byte(hi[i]>>24))
	}
	return string(b)
}

// resultEntry is one cached answer: the rectangle, its chunks in the
// engine's enumeration order (row-major, last dimension fastest), and the
// chunk keys the entry depends on.
type resultEntry struct {
	key     resultKey
	lo, hi  []int32
	chunks  []*chunk.Chunk
	keys    []cache.Key
	benefit float64
	bytes   int64

	newer, older *resultEntry
}

// resultCacheStats is a snapshot of the result cache counters.
type resultCacheStats struct {
	Entries     int
	Bytes       int64
	Hits        int64
	Subsumed    int64
	Misses      int64
	Puts        int64
	Invalidated int64
	Evicted     int64
}

func newResultCache(maxEntries int, maxBytes int64) *resultCache {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	return &resultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		exact:      make(map[resultKey]*resultEntry),
		byGB:       make(map[lattice.ID]map[*resultEntry]struct{}),
		deps:       make(map[cache.Key]map[*resultEntry]struct{}),
	}
}

// get answers the normalized query rectangle from the cache, trying the
// exact key first and containment subsumption second. It returns copies of
// the chunk and key slices (the entry may be invalidated concurrently after
// mu is released) plus the entry's reinforcement benefit.
func (rc *resultCache) get(nq Query) (chunks []*chunk.Chunk, keys []cache.Key, benefit float64, ok bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if e, found := rc.exact[resultKey{gb: nq.GB, rect: packRect(nq.Lo, nq.Hi)}]; found {
		rc.touch(e)
		rc.hits++
		return append([]*chunk.Chunk(nil), e.chunks...), append([]cache.Key(nil), e.keys...), e.benefit, true
	}
	for e := range rc.byGB[nq.GB] {
		if !contains(e.lo, e.hi, nq.Lo, nq.Hi) {
			continue
		}
		chunks, keys = e.slice(nq.Lo, nq.Hi)
		rc.touch(e)
		rc.subsumed++
		return chunks, keys, e.benefit, true
	}
	rc.misses++
	return nil, nil, 0, false
}

// contains reports that the [elo,ehi) rectangle contains [qlo,qhi).
func contains(elo, ehi, qlo, qhi []int32) bool {
	for d := range elo {
		if qlo[d] < elo[d] || qhi[d] > ehi[d] {
			return false
		}
	}
	return true
}

// slice extracts the sub-rectangle [qlo,qhi) from the entry's row-major
// chunk array.
func (e *resultEntry) slice(qlo, qhi []int32) ([]*chunk.Chunk, []cache.Key) {
	nd := len(e.lo)
	strides := make([]int, nd)
	s := 1
	for d := nd - 1; d >= 0; d-- {
		strides[d] = s
		s *= int(e.hi[d] - e.lo[d])
	}
	n := 1
	for d := 0; d < nd; d++ {
		n *= int(qhi[d] - qlo[d])
	}
	chunks := make([]*chunk.Chunk, 0, n)
	keys := make([]cache.Key, 0, n)
	cur := make([]int32, nd)
	copy(cur, qlo)
	for {
		off := 0
		for d := 0; d < nd; d++ {
			off += int(cur[d]-e.lo[d]) * strides[d]
		}
		chunks = append(chunks, e.chunks[off])
		keys = append(keys, e.keys[off])
		d := nd - 1
		for d >= 0 {
			cur[d]++
			if cur[d] < qhi[d] {
				break
			}
			cur[d] = qlo[d]
			d--
		}
		if d < 0 {
			return chunks, keys
		}
	}
}

// put registers one answered rectangle. chunks and keys must be in
// enumeration order and are retained; callers pass freshly built slices.
// The caller must re-verify, after put returns, that every key is still
// resident in the chunk store and call drop on failure — put itself cannot
// consult the store (lock order: shard lock before rc.mu).
func (rc *resultCache) put(nq Query, chunks []*chunk.Chunk, keys []cache.Key, benefit float64) *resultEntry {
	var bytes int64
	for _, c := range chunks {
		bytes += c.Bytes()
	}
	if bytes > rc.maxBytes {
		return nil
	}
	e := &resultEntry{
		key:     resultKey{gb: nq.GB, rect: packRect(nq.Lo, nq.Hi)},
		lo:      append([]int32(nil), nq.Lo...),
		hi:      append([]int32(nil), nq.Hi...),
		chunks:  chunks,
		keys:    keys,
		benefit: benefit,
		bytes:   bytes,
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if old, ok := rc.exact[e.key]; ok {
		rc.remove(old)
	}
	rc.exact[e.key] = e
	gbSet := rc.byGB[nq.GB]
	if gbSet == nil {
		gbSet = make(map[*resultEntry]struct{})
		rc.byGB[nq.GB] = gbSet
	}
	gbSet[e] = struct{}{}
	for _, k := range e.keys {
		depSet := rc.deps[k]
		if depSet == nil {
			depSet = make(map[*resultEntry]struct{})
			rc.deps[k] = depSet
		}
		depSet[e] = struct{}{}
	}
	e.newer = nil
	e.older = rc.newest
	if rc.newest != nil {
		rc.newest.newer = e
	}
	rc.newest = e
	if rc.oldest == nil {
		rc.oldest = e
	}
	rc.bytes += bytes
	rc.puts++
	for (len(rc.exact) > rc.maxEntries || rc.bytes > rc.maxBytes) && rc.oldest != nil && rc.oldest != e {
		rc.evicted++
		rc.remove(rc.oldest)
	}
	return e
}

// drop removes an entry registered by put (used when the put-time residency
// re-check finds a contributing chunk already gone).
func (rc *resultCache) drop(e *resultEntry) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.exact[e.key] == e {
		rc.invalidated++
		rc.remove(e)
	}
}

// onEvict invalidates every entry depending on the evicted chunk key. It is
// called from the store's listener tee, under a shard lock — map and list
// surgery only, never back into the store.
func (rc *resultCache) onEvict(k cache.Key) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for e := range rc.deps[k] {
		rc.invalidated++
		rc.remove(e)
	}
}

// touch moves e to the LRU head. Caller holds mu.
func (rc *resultCache) touch(e *resultEntry) {
	if rc.newest == e {
		return
	}
	if e.older != nil {
		e.older.newer = e.newer
	}
	if e.newer != nil {
		e.newer.older = e.older
	}
	if rc.oldest == e {
		rc.oldest = e.newer
	}
	e.newer = nil
	e.older = rc.newest
	if rc.newest != nil {
		rc.newest.newer = e
	}
	rc.newest = e
}

// remove unlinks e from every index. Caller holds mu.
func (rc *resultCache) remove(e *resultEntry) {
	delete(rc.exact, e.key)
	if gbSet := rc.byGB[e.key.gb]; gbSet != nil {
		delete(gbSet, e)
		if len(gbSet) == 0 {
			delete(rc.byGB, e.key.gb)
		}
	}
	for _, k := range e.keys {
		if depSet := rc.deps[k]; depSet != nil {
			delete(depSet, e)
			if len(depSet) == 0 {
				delete(rc.deps, k)
			}
		}
	}
	if e.older != nil {
		e.older.newer = e.newer
	}
	if e.newer != nil {
		e.newer.older = e.older
	}
	if rc.newest == e {
		rc.newest = e.older
	}
	if rc.oldest == e {
		rc.oldest = e.newer
	}
	e.newer, e.older = nil, nil
	rc.bytes -= e.bytes
}

// snapshot returns the counters for stats reporting and tests.
func (rc *resultCache) snapshot() resultCacheStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return resultCacheStats{
		Entries:     len(rc.exact),
		Bytes:       rc.bytes,
		Hits:        rc.hits,
		Subsumed:    rc.subsumed,
		Misses:      rc.misses,
		Puts:        rc.puts,
		Invalidated: rc.invalidated,
		Evicted:     rc.evicted,
	}
}
