package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
)

// flakyBackend fails every request once armed; used for failure injection.
type flakyBackend struct {
	backend.Backend
	fail bool
}

var errInjected = errors.New("injected backend failure")

func (f *flakyBackend) ComputeChunks(ctx context.Context, gb lattice.ID, nums []int) ([]*chunk.Chunk, backend.Stats, error) {
	if f.fail {
		return nil, backend.Stats{}, errInjected
	}
	return f.Backend.ComputeChunks(ctx, gb, nums)
}

func (f *flakyBackend) EstimateScan(ctx context.Context, gb lattice.ID, nums []int) (int64, error) {
	if f.fail {
		return 0, errInjected
	}
	return f.Backend.EstimateScan(ctx, gb, nums)
}

func (f *flakyBackend) EstimateScans(ctx context.Context, gb lattice.ID, nums []int) ([]int64, error) {
	if f.fail {
		return nil, errInjected
	}
	return f.Backend.EstimateScans(ctx, gb, nums)
}

// TestBackendFailureSurfacesAndRecovers injects a backend failure mid-run
// and checks that the engine reports it, stays consistent, and recovers once
// the backend heals.
func TestBackendFailureSurfacesAndRecovers(t *testing.T) {
	base := build(t, "VCMC", cache.NewTwoLevel(), 1<<20)
	fb := &flakyBackend{Backend: base.oracle}
	sz := sizer.NewEstimate(base.grid, 1000)
	c, _ := cache.New(1<<20, cache.NewTwoLevel())
	eng, err := New(base.grid, c, strategy.NewVCMC(base.grid, sz), fb, sz)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	lat := base.grid.Lattice()

	fb.fail = true
	if _, err := eng.Execute(context.Background(), WholeGroupBy(lat.Base())); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	st := eng.Stats()
	if st.Queries != 0 {
		t.Fatalf("failed query was counted: %+v", st)
	}

	fb.fail = false
	res, err := eng.Execute(context.Background(), WholeGroupBy(lat.Base()))
	if err != nil {
		t.Fatalf("Execute after recovery: %v", err)
	}
	if res.Cells() == 0 {
		t.Fatalf("no cells after recovery")
	}
	// Aggregates still work on the recovered cache.
	res, err = eng.Execute(context.Background(), WholeGroupBy(lat.Top()))
	if err != nil || !res.CompleteHit {
		t.Fatalf("aggregate after recovery: %v %+v", err, res)
	}
}

// TestEngineConcurrentExecute hammers one engine from many goroutines;
// queries genuinely overlap and every answer must match the oracle.
func TestEngineConcurrentExecute(t *testing.T) {
	f := build(t, "VCMC", cache.NewTwoLevel(), 64<<10)
	lat := f.grid.Lattice()
	queries := []Query{
		WholeGroupBy(lat.Base()),
		WholeGroupBy(lat.Top()),
		WholeGroupBy(lattice.ID(3)),
		WholeGroupBy(lattice.ID(7)),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				q := queries[(w+i)%len(queries)]
				res, err := f.engine.Execute(context.Background(), q)
				if err != nil {
					errs <- err
					return
				}
				if res.Cells() == 0 {
					errs <- errors.New("empty result")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent execute: %v", err)
	}
	// Post-run correctness spot check.
	res, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Top()))
	if err != nil {
		t.Fatalf("final: %v", err)
	}
	assertMatchesOracle(t, f, WholeGroupBy(lat.Top()), res)
}

// TestInsertIntermediates checks that the option caches a plan's interior
// chunks, making a follow-up mid-level query a direct hit.
func TestInsertIntermediates(t *testing.T) {
	cfgFix := build(t, "VCMC", cache.NewTwoLevel(), 1<<20)
	sz := sizer.NewEstimate(cfgFix.grid, 1000)
	c, _ := cache.New(1<<20, cache.NewTwoLevel())
	eng, err := New(cfgFix.grid, c, strategy.NewVCMC(cfgFix.grid, sz), cfgFix.oracle, sz, WithInsertIntermediates(true))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	lat := cfgFix.grid.Lattice()
	if _, err := eng.Execute(context.Background(), WholeGroupBy(lat.Base())); err != nil {
		t.Fatalf("warm: %v", err)
	}
	if _, err := eng.Execute(context.Background(), WholeGroupBy(lat.Top())); err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	// The top plan passed through some mid-level chunk; with intermediates
	// cached, at least one mid-level group-by must now have resident chunks.
	found := false
	for _, k := range c.Keys(nil) {
		if k.GB != lat.Base() && k.GB != lat.Top() {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no intermediate chunks were cached")
	}
}
