package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
)

// flakyBackend fails every request once armed; used for failure injection.
type flakyBackend struct {
	backend.Backend
	fail bool
}

var errInjected = errors.New("injected backend failure")

func (f *flakyBackend) ComputeChunks(ctx context.Context, gb lattice.ID, nums []int) ([]*chunk.Chunk, backend.Stats, error) {
	if f.fail {
		return nil, backend.Stats{}, errInjected
	}
	return f.Backend.ComputeChunks(ctx, gb, nums)
}

func (f *flakyBackend) EstimateScan(ctx context.Context, gb lattice.ID, nums []int) (int64, error) {
	if f.fail {
		return 0, errInjected
	}
	return f.Backend.EstimateScan(ctx, gb, nums)
}

func (f *flakyBackend) EstimateScans(ctx context.Context, gb lattice.ID, nums []int) ([]int64, error) {
	if f.fail {
		return nil, errInjected
	}
	return f.Backend.EstimateScans(ctx, gb, nums)
}

// TestBackendFailureSurfacesAndRecovers injects a backend failure mid-run
// and checks that the engine reports it, stays consistent, and recovers once
// the backend heals.
func TestBackendFailureSurfacesAndRecovers(t *testing.T) {
	base := build(t, "VCMC", cache.NewTwoLevel(), 1<<20)
	fb := &flakyBackend{Backend: base.oracle}
	sz := sizer.NewEstimate(base.grid, 1000)
	c, _ := cache.New(1<<20, cache.NewTwoLevel())
	eng, err := New(base.grid, c, strategy.NewVCMC(base.grid, sz), fb, sz)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	lat := base.grid.Lattice()

	fb.fail = true
	if _, err := eng.Execute(context.Background(), WholeGroupBy(lat.Base())); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	st := eng.Stats()
	if st.Queries != 0 {
		t.Fatalf("failed query was counted: %+v", st)
	}

	fb.fail = false
	res, err := eng.Execute(context.Background(), WholeGroupBy(lat.Base()))
	if err != nil {
		t.Fatalf("Execute after recovery: %v", err)
	}
	if res.Cells() == 0 {
		t.Fatalf("no cells after recovery")
	}
	// Aggregates still work on the recovered cache.
	res, err = eng.Execute(context.Background(), WholeGroupBy(lat.Top()))
	if err != nil || !res.CompleteHit {
		t.Fatalf("aggregate after recovery: %v %+v", err, res)
	}
}

// TestEngineConcurrentExecute hammers one engine from many goroutines;
// queries genuinely overlap and every answer must match the oracle.
func TestEngineConcurrentExecute(t *testing.T) {
	f := build(t, "VCMC", cache.NewTwoLevel(), 64<<10)
	lat := f.grid.Lattice()
	queries := []Query{
		WholeGroupBy(lat.Base()),
		WholeGroupBy(lat.Top()),
		WholeGroupBy(lattice.ID(3)),
		WholeGroupBy(lattice.ID(7)),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				q := queries[(w+i)%len(queries)]
				res, err := f.engine.Execute(context.Background(), q)
				if err != nil {
					errs <- err
					return
				}
				if res.Cells() == 0 {
					errs <- errors.New("empty result")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent execute: %v", err)
	}
	// Post-run correctness spot check.
	res, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Top()))
	if err != nil {
		t.Fatalf("final: %v", err)
	}
	assertMatchesOracle(t, f, WholeGroupBy(lat.Top()), res)
}

// TestRecycleBackendFills: a cold whole-extent fetch at the base group-by
// fully covers every one-step roll-up, so the recycler materializes and
// admits them from the arriving batch — follow-up queries one level up are
// complete hits with correct contents.
func TestRecycleBackendFills(t *testing.T) {
	f := build(t, "VCMC", cache.NewTwoLevelPromote(), 1<<20,
		WithRecycling(true), WithRecycleMinBenefit(1e-9))
	lat := f.grid.Lattice()
	base := lat.Base()

	res, err := f.engine.Execute(context.Background(), WholeGroupBy(base))
	if err != nil {
		t.Fatalf("cold base: %v", err)
	}
	if res.RecycledChunks == 0 {
		t.Fatalf("whole-extent backend fill recycled no roll-ups")
	}

	for _, ch := range lat.Children(base) {
		q := WholeGroupBy(ch)
		cres, err := f.engine.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("child %v: %v", ch, err)
		}
		if !cres.CompleteHit {
			t.Fatalf("child %v not a complete hit after covered backend fill", ch)
		}
		assertMatchesOracle(t, f, q, cres)
	}

	// Without recycling, the same cold fetch admits nothing beyond the base.
	f2 := build(t, "VCMC", cache.NewTwoLevel(), 1<<20)
	res2, err := f2.engine.Execute(context.Background(), WholeGroupBy(base))
	if err != nil {
		t.Fatalf("cold base (off): %v", err)
	}
	if res2.RecycledChunks != 0 {
		t.Fatalf("recycling off but RecycledChunks = %d", res2.RecycledChunks)
	}
}

// TestRecycleIntermediates checks that the recycler caches a plan's
// profitable interior chunks, making a follow-up mid-level query a direct
// hit — and that a prohibitive threshold recycles nothing.
func TestRecycleIntermediates(t *testing.T) {
	cfgFix := build(t, "VCMC", cache.NewTwoLevel(), 1<<20)
	sz := sizer.NewEstimate(cfgFix.grid, 1000)
	lat := cfgFix.grid.Lattice()

	run := func(t *testing.T, opts ...Option) (*Engine, cache.Store) {
		t.Helper()
		c, _ := cache.New(1<<20, cache.NewTwoLevelPromote())
		eng, err := New(cfgFix.grid, c, strategy.NewVCMC(cfgFix.grid, sz), cfgFix.oracle, sz, opts...)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, err := eng.Execute(context.Background(), WholeGroupBy(lat.Base())); err != nil {
			t.Fatalf("warm: %v", err)
		}
		if _, err := eng.Execute(context.Background(), WholeGroupBy(lat.Top())); err != nil {
			t.Fatalf("aggregate: %v", err)
		}
		return eng, c
	}

	midResident := func(c cache.Store) bool {
		for _, k := range c.Keys(nil) {
			if k.GB != lat.Base() && k.GB != lat.Top() {
				return true
			}
		}
		return false
	}

	// A tiny threshold admits every interior node of the top-level roll-up.
	eng, c := run(t, WithRecycling(true), WithRecycleMinBenefit(1e-9))
	if !midResident(c) {
		t.Fatalf("no intermediate chunks were recycled")
	}
	if got := eng.Stats().Recycled; got == 0 {
		t.Fatalf("Stats.Recycled = 0, want > 0")
	}

	// A prohibitive threshold rejects them all and counts the rejections.
	eng, c = run(t, WithRecycling(true), WithRecycleMinBenefit(1e12))
	if midResident(c) {
		t.Fatalf("intermediate chunks cached despite prohibitive threshold")
	}
	st := eng.Stats()
	if st.Recycled != 0 {
		t.Fatalf("Stats.Recycled = %d, want 0", st.Recycled)
	}
	if st.RecycleRejected == 0 {
		t.Fatalf("Stats.RecycleRejected = 0, want > 0")
	}

	// Recycling off (the default): no intermediates, no reject accounting.
	eng, c = run(t)
	if midResident(c) {
		t.Fatalf("intermediate chunks cached with recycling off")
	}
	if st := eng.Stats(); st.Recycled != 0 || st.RecycleRejected != 0 {
		t.Fatalf("recycle stats nonzero with recycling off: %+v", st)
	}
}
