// Chaos and degraded-mode tests: the fault-tolerant backend path under
// injected errors, disconnects, hangs and a full outage. Lives in the
// external test package for the same reason as the concurrent soak.
package core_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/core"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
	"aggcache/internal/workload"
)

// buildChaosEngines wires a subject engine whose backend path is
// Breaker(Faulty(engine)) and a serialized reference engine over the plain
// backend, sharing one grid and dataset.
func buildChaosEngines(t *testing.T, plan backend.FaultPlan, bcfg backend.BreakerConfig, capacity int64) (subject, reference *core.Engine, faulty *backend.Faulty, breaker *backend.Breaker, g *chunk.Grid) {
	t.Helper()
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(33)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	be, err := backend.NewEngine(g, tab, backend.LatencyModel{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	sz := sizer.NewEstimate(g, int64(tab.Len()))
	mk := func(b backend.Backend) *core.Engine {
		c, err := cache.New(capacity, cache.NewTwoLevel())
		if err != nil {
			t.Fatalf("cache.New: %v", err)
		}
		eng, err := core.New(g, c, strategy.NewVCMC(g, sz), b, sz)
		if err != nil {
			t.Fatalf("core.New: %v", err)
		}
		return eng
	}
	faulty = backend.NewFaulty(be, plan)
	breaker = backend.NewBreaker(faulty, bcfg)
	return mk(breaker), mk(be), faulty, breaker, g
}

// TestChaosSoak replays a workload stream concurrently against an engine
// whose backend randomly errors, disconnects and hangs — with a hard outage
// pulsed in the middle — and requires every answered query to match the
// serialized fault-free reference and every failure to be a typed,
// classifiable error. Run under -race this is the robustness soak: wrong
// answers and deadlocks are the two forbidden outcomes.
func TestChaosSoak(t *testing.T) {
	plan := backend.FaultPlan{
		Seed:           99,
		ErrorRate:      0.15,
		DisconnectRate: 0.1,
		HangRate:       0.08,
		HangFor:        30 * time.Millisecond,
		SpikeRate:      0.05,
		SpikeFor:       2 * time.Millisecond,
	}
	bcfg := backend.BreakerConfig{FailureThreshold: 5, Cooldown: 40 * time.Millisecond}
	// A small cache keeps the backend in play: chaos is pointless if every
	// query is a complete hit.
	subject, reference, faulty, _, g := buildChaosEngines(t, plan, bcfg, 8<<10)

	gen, err := workload.NewGenerator(g, workload.DefaultMix, 4, 7)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	queries, _ := gen.Stream(300)

	type answer struct {
		total float64
		cells int
	}
	want := make([]answer, len(queries))
	for i, q := range queries {
		res, err := reference.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("reference query %d: %v", i, err)
		}
		want[i] = answer{total: res.Total(), cells: res.Cells()}
	}

	// Pulse a hard outage over the middle third of the stream, keyed off a
	// shared progress counter so the phase shifts are workload-driven, not
	// timing-driven.
	var progress atomic.Int64
	third := int64(len(queries) / 3)

	const workers = 8
	var ok, failed atomic.Int64
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(queries); i += workers {
				done := progress.Add(1)
				if done == third {
					faulty.SetDown(true)
				}
				if done == 2*third {
					faulty.SetDown(false)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				res, err := subject.Execute(ctx, queries[i])
				cancel()
				if err != nil {
					// Failure is acceptable under chaos, but only as a
					// classified error: an availability fast-fail, a deadline,
					// or a transient wire-shaped fault.
					if !errors.Is(err, core.ErrBackendUnavailable) &&
						!errors.Is(err, context.DeadlineExceeded) &&
						!backend.IsTransient(err) {
						errs <- fmt.Errorf("query %d: unclassified error %v", i, err)
						return
					}
					failed.Add(1)
					continue
				}
				if res.Cells() != want[i].cells {
					errs <- fmt.Errorf("query %d: %d cells, want %d", i, res.Cells(), want[i].cells)
					return
				}
				tol := 1e-6 * math.Max(1, math.Abs(want[i].total))
				if math.Abs(res.Total()-want[i].total) > tol {
					errs <- fmt.Errorf("query %d: total %v, want %v", i, res.Total(), want[i].total)
					return
				}
				ok.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("chaos soak: %v", err)
	}

	if ok.Load() == 0 {
		t.Fatalf("no query succeeded under chaos")
	}
	counts := faulty.Counts()
	if counts.Errors+counts.Disconnects+counts.Hangs+counts.Outages == 0 {
		t.Fatalf("chaos plan injected nothing: %+v", counts)
	}
	t.Logf("chaos soak: %d ok, %d failed, faults %+v, subject stats %+v",
		ok.Load(), failed.Load(), counts, subject.Stats())
}

// TestDegradedModeCacheOnly pins down the availability contract: with the
// backend hard-down and the breaker open, every cache-computable query still
// answers (marked Degraded), every backend-requiring query fails fast with
// ErrBackendUnavailable, and recovery closes the breaker via a half-open
// probe.
func TestDegradedModeCacheOnly(t *testing.T) {
	bcfg := backend.BreakerConfig{FailureThreshold: 3, Cooldown: 30 * time.Millisecond}
	subject, reference, faulty, breaker, g := buildChaosEngines(t, backend.FaultPlan{Seed: 1}, bcfg, 1<<20)
	lat := g.Lattice()

	// Warm the cache with the top group-by, answerable thereafter without
	// the backend.
	warm := core.WholeGroupBy(lat.Top())
	if _, err := subject.Execute(context.Background(), warm); err != nil {
		t.Fatalf("warm query: %v", err)
	}
	if subject.Degraded() {
		t.Fatalf("engine degraded while backend healthy")
	}

	// Hard outage: trip the breaker with backend-requiring queries.
	faulty.SetDown(true)
	miss := core.WholeGroupBy(lat.Base())
	for i := 0; i < bcfg.FailureThreshold; i++ {
		if _, err := subject.Execute(context.Background(), miss); err == nil {
			t.Fatalf("query against down backend succeeded")
		}
	}
	if breaker.State() != backend.BreakerOpen {
		t.Fatalf("breaker state %v after %d failures, want open", breaker.State(), bcfg.FailureThreshold)
	}
	if !subject.Degraded() {
		t.Fatalf("engine not degraded with breaker open")
	}

	// Cache-computable queries all still succeed, marked degraded, correct.
	wantRes, err := reference.Execute(context.Background(), warm)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	for i := 0; i < 10; i++ {
		res, err := subject.Execute(context.Background(), warm)
		if err != nil {
			t.Fatalf("degraded cached query %d: %v", i, err)
		}
		if !res.CompleteHit || !res.Degraded {
			t.Fatalf("degraded cached query %d: CompleteHit=%v Degraded=%v", i, res.CompleteHit, res.Degraded)
		}
		if res.Cells() != wantRes.Cells() || math.Abs(res.Total()-wantRes.Total()) > 1e-6*math.Max(1, math.Abs(wantRes.Total())) {
			t.Fatalf("degraded answer diverged from reference")
		}
	}
	if subject.Stats().DegradedHits < 10 {
		t.Fatalf("DegradedHits = %d, want >= 10", subject.Stats().DegradedHits)
	}

	// Backend-requiring queries fail fast with the typed error — well under
	// the acceptance bound of 2× a 1s query timeout.
	const timeout = time.Second
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	_, err = subject.Execute(ctx, miss)
	cancel()
	if !errors.Is(err, core.ErrBackendUnavailable) {
		t.Fatalf("backend-requiring query error = %v, want ErrBackendUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > 2*timeout {
		t.Fatalf("fail-fast took %v, want < %v", elapsed, 2*timeout)
	}
	if subject.Stats().Unavailable == 0 {
		t.Fatalf("Unavailable stat not counted")
	}

	// Recovery: backend comes back, cooldown elapses, the next request is
	// the half-open probe and closes the breaker.
	faulty.SetDown(false)
	time.Sleep(bcfg.Cooldown + 10*time.Millisecond)
	res, err := subject.Execute(context.Background(), miss)
	if err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
	if res.Degraded {
		t.Fatalf("recovered answer still marked degraded")
	}
	if breaker.State() != backend.BreakerClosed {
		t.Fatalf("breaker state %v after successful probe, want closed", breaker.State())
	}
	if subject.Degraded() {
		t.Fatalf("engine still degraded after recovery")
	}
}
