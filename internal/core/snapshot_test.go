package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"aggcache/internal/cache"
)

func TestSaveLoadCacheWarmRestart(t *testing.T) {
	f := build(t, "VCMC", cache.NewTwoLevel(), 1<<20)
	lat := f.grid.Lattice()
	if _, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Base())); err != nil {
		t.Fatalf("warm: %v", err)
	}
	if _, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Top())); err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	var buf bytes.Buffer
	if err := f.engine.SaveCache(&buf); err != nil {
		t.Fatalf("SaveCache: %v", err)
	}
	saved := f.engine.Cache().Len()

	// A fresh engine over the same dataset restarts warm.
	f2 := build(t, "VCMC", cache.NewTwoLevel(), 1<<20)
	admitted, err := f2.engine.LoadCache(&buf)
	if err != nil {
		t.Fatalf("LoadCache: %v", err)
	}
	if admitted != saved {
		t.Fatalf("admitted %d, want %d", admitted, saved)
	}
	// Queries that were complete hits before are complete hits again, with
	// the strategy's counts maintained through the reload.
	res, err := f2.engine.Execute(context.Background(), WholeGroupBy(lat.Top()))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res.CompleteHit {
		t.Fatalf("warm restart lost the cache")
	}
	assertMatchesOracle(t, f2, WholeGroupBy(lat.Top()), res)
	// A roll-up not previously materialized is still computable (counts
	// were rebuilt by the listener during reload).
	res, err = f2.engine.Execute(context.Background(), WholeGroupBy(lat.MustID(1, 1, 0)))
	if err != nil || !res.CompleteHit {
		t.Fatalf("derived roll-up missed after restart: %v %+v", err, res)
	}
}

func TestLoadCacheSmallerCache(t *testing.T) {
	f := build(t, "VCMC", cache.NewTwoLevel(), 1<<20)
	lat := f.grid.Lattice()
	if _, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Base())); err != nil {
		t.Fatalf("warm: %v", err)
	}
	var buf bytes.Buffer
	if err := f.engine.SaveCache(&buf); err != nil {
		t.Fatalf("SaveCache: %v", err)
	}
	// A much smaller cache admits only part of the snapshot, without error.
	f2 := build(t, "VCMC", cache.NewTwoLevel(), 2_000)
	if _, err := f2.engine.LoadCache(&buf); err != nil {
		t.Fatalf("LoadCache: %v", err)
	}
	// Admissions may churn (later inserts evicting earlier ones), but the
	// cache must end up holding fewer chunks than the snapshot and stay
	// within capacity.
	if f2.engine.Cache().Len() >= f.engine.Cache().Len() {
		t.Fatalf("small cache retained everything (%d)", f2.engine.Cache().Len())
	}
	if f2.engine.Cache().Used() > f2.engine.Cache().Capacity() {
		t.Fatalf("over capacity after load")
	}
}

func TestLoadCacheRejectsGarbage(t *testing.T) {
	f := build(t, "VCM", cache.NewTwoLevel(), 1<<20)
	if _, err := f.engine.LoadCache(strings.NewReader("junk")); err == nil {
		t.Fatalf("junk: expected error")
	}
	var buf bytes.Buffer
	if err := f.engine.SaveCache(&buf); err != nil {
		t.Fatalf("SaveCache: %v", err)
	}
	// Valid stream, wrong magic: flip some bytes in the magic region.
	data := buf.Bytes()
	idx := bytes.Index(data, []byte("aggcache-snapshot"))
	if idx < 0 {
		t.Skip("magic not found in gob stream")
	}
	data[idx] = 'x'
	if _, err := f.engine.LoadCache(bytes.NewReader(data)); err == nil {
		t.Fatalf("bad magic: expected error")
	}
}
