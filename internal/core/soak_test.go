package core

import (
	"context"
	"math/rand"
	"testing"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
)

// TestSoakSmallScale drives a long random workload through the full stack
// at the small APB scale (336 group-bys) with a thrashing cache, checking
// every answer against the backend oracle. Skipped with -short.
func TestSoakSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	cfg := apb.New(apb.ScaleSmall)
	g, tab, err := cfg.Build(8)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	be, err := backend.NewEngine(g, tab, backend.LatencyModel{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	sz := sizer.NewEstimate(g, int64(tab.Len()))
	for _, sn := range []string{"VCM", "VCMC"} {
		t.Run(sn, func(t *testing.T) {
			var s strategy.Strategy
			if sn == "VCM" {
				s = strategy.NewVCM(g)
			} else {
				s = strategy.NewVCMC(g, sz)
			}
			c, _ := cache.New(64<<10, cache.NewTwoLevel()) // ~1/8 of the base table
			eng, err := New(g, c, s, be, sz)
			if err != nil {
				t.Fatalf("core.New: %v", err)
			}
			if _, _, err := eng.Preload(context.Background()); err != nil {
				t.Fatalf("Preload: %v", err)
			}
			f := &fixture{grid: g, engine: eng, oracle: be}
			rng := rand.New(rand.NewSource(123))
			for i := 0; i < 300; i++ {
				q := randomQuery(rng, g)
				res, err := eng.Execute(context.Background(), q)
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				// Verify a sample (full verification of every query at this
				// scale would dominate the suite's runtime).
				if i%10 == 0 {
					assertMatchesOracle(t, f, q, res)
				}
				if c.Used() > c.Capacity() {
					t.Fatalf("query %d: cache over capacity", i)
				}
			}
			st := eng.Stats()
			if st.Queries != 300 {
				t.Fatalf("stats.Queries = %d", st.Queries)
			}
			if st.CompleteHits == 0 {
				t.Fatalf("no complete hits in 300 queries with a preloaded cache")
			}
		})
	}
}
