// The concurrent soak lives in an external test package so it can replay a
// workload stream (package workload imports core, which bars the internal
// test package from importing it back).
package core_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/core"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
	"aggcache/internal/workload"
)

// buildSoakEngines wires two engines — concurrent subject (whose cache is
// built with copts) and serialized single-lock reference — over one grid and
// one shared backend.
func buildSoakEngines(t *testing.T, capacity int64, copts ...cache.Option) (subject, reference *core.Engine, g *chunk.Grid) {
	t.Helper()
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(33)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	be, err := backend.NewEngine(g, tab, backend.LatencyModel{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	sz := sizer.NewEstimate(g, int64(tab.Len()))
	mk := func(copts ...cache.Option) *core.Engine {
		c, err := cache.New(capacity, cache.NewTwoLevel(), copts...)
		if err != nil {
			t.Fatalf("cache.New: %v", err)
		}
		eng, err := core.New(g, c, strategy.NewVCMC(g, sz), be, sz)
		if err != nil {
			t.Fatalf("core.New: %v", err)
		}
		return eng
	}
	return mk(copts...), mk(), g
}

// TestConcurrentSoakMatchesSerializedEngine replays one mixed workload
// stream twice: serially through a single-lock reference engine, then
// interleaved across 8 goroutines through the subject engine — once backed
// by the single-lock store and once by a 4-shard store. Every concurrent
// answer must match the serialized one (which itself is oracle-checked by
// the other engine tests). Run under -race this is the tentpole's
// correctness soak.
func TestConcurrentSoakMatchesSerializedEngine(t *testing.T) {
	t.Run("single", func(t *testing.T) { runConcurrentSoak(t) })
	t.Run("sharded-4", func(t *testing.T) { runConcurrentSoak(t, cache.WithShards(4)) })
}

func runConcurrentSoak(t *testing.T, copts ...cache.Option) {
	subject, reference, g := buildSoakEngines(t, 64<<10, copts...)
	gen, err := workload.NewGenerator(g, workload.DefaultMix, 4, 7)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	queries, _ := gen.Stream(240)

	type answer struct {
		total float64
		cells int
	}
	want := make([]answer, len(queries))
	for i, q := range queries {
		res, err := reference.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("reference query %d: %v", i, err)
		}
		want[i] = answer{total: res.Total(), cells: res.Cells()}
	}

	const workers = 8
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(queries); i += workers {
				res, err := subject.Execute(context.Background(), queries[i])
				if err != nil {
					errs <- fmt.Errorf("query %d: %w", i, err)
					return
				}
				if res.Cells() != want[i].cells {
					errs <- fmt.Errorf("query %d: %d cells, want %d", i, res.Cells(), want[i].cells)
					return
				}
				tol := 1e-6 * math.Max(1, math.Abs(want[i].total))
				if math.Abs(res.Total()-want[i].total) > tol {
					errs <- fmt.Errorf("query %d: total %v, want %v", i, res.Total(), want[i].total)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent soak: %v", err)
	}

	st := subject.Stats()
	if st.Queries != int64(len(queries)) {
		t.Fatalf("Queries = %d, want %d", st.Queries, len(queries))
	}
	if used, cap := subject.Cache().Used(), subject.Cache().Capacity(); used > cap {
		t.Fatalf("cache over capacity: %d > %d", used, cap)
	}
}
