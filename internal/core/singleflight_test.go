// Regression tests for singleflight failure handling: a failed leader must
// clean up its flights and propagate a typed error, a malformed backend
// reply must not panic or poison followers, and a follower whose leader was
// cancelled must retry under its own healthy context.
package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
)

// scriptedBackend wraps a real backend with per-call failure scripting.
type scriptedBackend struct {
	backend.Backend

	mu       sync.Mutex
	failWith error // non-nil: ComputeChunks returns it
	truncate bool  // true: drop the last chunk from the reply
	// blockCtx, when set, makes the NEXT ComputeChunks call signal started
	// and then block until its context ends, returning ctx.Err(). One-shot.
	blockCtx bool
	started  chan struct{}
}

func (s *scriptedBackend) ComputeChunks(ctx context.Context, gb lattice.ID, nums []int) ([]*chunk.Chunk, backend.Stats, error) {
	s.mu.Lock()
	failWith, truncate, blockCtx := s.failWith, s.truncate, s.blockCtx
	if blockCtx {
		s.blockCtx = false
	}
	started := s.started
	s.mu.Unlock()
	if blockCtx {
		close(started)
		<-ctx.Done()
		return nil, backend.Stats{}, ctx.Err()
	}
	if failWith != nil {
		return nil, backend.Stats{}, failWith
	}
	chunks, stats, err := s.Backend.ComputeChunks(ctx, gb, nums)
	if err == nil && truncate && len(chunks) > 0 {
		chunks = chunks[:len(chunks)-1]
	}
	return chunks, stats, err
}

func buildScripted(t *testing.T) (*Engine, *scriptedBackend, *chunk.Grid) {
	t.Helper()
	base := build(t, "VCMC", cache.NewTwoLevel(), 1<<20)
	sb := &scriptedBackend{Backend: base.oracle}
	sz := sizer.NewEstimate(base.grid, 1000)
	c, err := cache.New(1<<20, cache.NewTwoLevel())
	if err != nil {
		t.Fatalf("cache.New: %v", err)
	}
	eng, err := New(base.grid, c, strategy.NewVCMC(base.grid, sz), sb, sz)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return eng, sb, base.grid
}

// TestFlightLeaderFailureCleansUp: a leader whose backend fetch fails must
// report the error AND retire the flight, so the next identical query
// retries from scratch instead of waiting on a dead flight or inheriting a
// stale error forever.
func TestFlightLeaderFailureCleansUp(t *testing.T) {
	eng, sb, g := buildScripted(t)
	q := WholeGroupBy(g.Lattice().Top())

	injected := errors.New("injected backend failure")
	sb.mu.Lock()
	sb.failWith = injected
	sb.mu.Unlock()
	if _, err := eng.Execute(context.Background(), q); !errors.Is(err, injected) {
		t.Fatalf("leader error = %v, want wrap of injected failure", err)
	}

	// The flight map must be empty again.
	eng.flights.mu.Lock()
	inFlight := len(eng.flights.m)
	eng.flights.mu.Unlock()
	if inFlight != 0 {
		t.Fatalf("%d flights leaked after leader failure", inFlight)
	}

	// Backend healed: the same query must succeed on a fresh fetch.
	sb.mu.Lock()
	sb.failWith = nil
	sb.mu.Unlock()
	res, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("retry after leader failure: %v", err)
	}
	if res.Cells() == 0 {
		t.Fatalf("empty result after recovery")
	}
}

// TestFlightLeaderFailureReachesFollowers: followers piled up behind a
// failing leader get the error promptly (no strand, no deadlock).
func TestFlightLeaderFailureReachesFollowers(t *testing.T) {
	eng, sb, g := buildScripted(t)
	q := WholeGroupBy(g.Lattice().Top())

	// Leader blocks in the backend until its context is cancelled.
	started := make(chan struct{})
	sb.mu.Lock()
	sb.blockCtx = true
	sb.started = started
	sb.mu.Unlock()

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := eng.Execute(leaderCtx, q)
		leaderErr <- err
	}()
	<-started

	// Follower with a bounded context joins the flight. When the leader is
	// cancelled, the follower must not hang: it retries the fetch itself
	// (its own context is healthy) and succeeds.
	followerErr := make(chan error, 1)
	var followerRes *Result
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		res, err := eng.Execute(ctx, q)
		followerRes = res
		followerErr <- err
	}()

	// Give the follower a moment to register on the flight, then kill the
	// leader.
	time.Sleep(20 * time.Millisecond)
	cancelLeader()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}
	if err := <-followerErr; err != nil {
		t.Fatalf("follower after leader cancel: %v", err)
	}
	if followerRes == nil || followerRes.Cells() == 0 {
		t.Fatalf("follower got no data after retrying")
	}
}

// TestTruncatedBackendReply: a backend replying fewer chunks than requested
// must produce a clean error, not an index panic, and must not publish
// bogus chunks.
func TestTruncatedBackendReply(t *testing.T) {
	eng, sb, g := buildScripted(t)
	sb.mu.Lock()
	sb.truncate = true
	sb.mu.Unlock()

	_, err := eng.Execute(context.Background(), WholeGroupBy(g.Lattice().Top()))
	if err == nil {
		t.Fatalf("truncated reply accepted")
	}
	if !strings.Contains(err.Error(), "chunks") {
		t.Fatalf("truncation error unhelpful: %v", err)
	}

	// And the engine stays usable.
	sb.mu.Lock()
	sb.truncate = false
	sb.mu.Unlock()
	if _, err := eng.Execute(context.Background(), WholeGroupBy(g.Lattice().Top())); err != nil {
		t.Fatalf("engine wedged after truncated reply: %v", err)
	}
}
