package core

import (
	"context"
	"testing"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
)

// buildBypass wires an engine whose backend has a materialized aggregate, so
// the §5.2 cost-based bypass has something cheaper to route to.
func buildBypass(t *testing.T, enabled bool) (*fixture, *backend.Engine) {
	t.Helper()
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(77)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	be, err := backend.NewEngine(g, tab, backend.LatencyModel{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	lat := g.Lattice()
	// Materialize the fully aggregated cube top's parent level: answering
	// top-level queries at the backend becomes nearly free.
	if err := be.Materialize(lat.MustID(0, 1, 0)); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	sz := sizer.NewEstimate(g, int64(tab.Len()))
	c, _ := cache.New(1<<20, cache.NewTwoLevel())
	eng, err := New(g, c, strategy.NewVCMC(g, sz), be, sz,
		WithCostBypass(enabled),
		// A tiny connect surcharge so long in-cache aggregations lose to the
		// materialized backend.
		WithConnectCost(1),
		WithBackendPenalty(8),
	)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return &fixture{grid: g, engine: eng, oracle: be}, be
}

func TestCostBypassRoutesToMaterializedBackend(t *testing.T) {
	f, _ := buildBypass(t, true)
	lat := f.grid.Lattice()
	// Warm the cache with the base table: the top chunk becomes computable
	// in-cache, but only by aggregating every base tuple.
	if _, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Base())); err != nil {
		t.Fatalf("warm: %v", err)
	}
	res, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Top()))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Bypassed == 0 {
		t.Fatalf("expected the optimizer to bypass the cache (plan cost ≫ materialized backend)")
	}
	if res.CompleteHit {
		t.Fatalf("bypassed chunk should count as a backend access")
	}
	// The answer is still correct.
	assertMatchesOracle(t, f, WholeGroupBy(lat.Top()), res)
	if f.engine.Stats().Bypassed == 0 {
		t.Fatalf("Stats.Bypassed not counted")
	}
}

func TestCostBypassOffStaysInCache(t *testing.T) {
	f, _ := buildBypass(t, false)
	lat := f.grid.Lattice()
	if _, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Base())); err != nil {
		t.Fatalf("warm: %v", err)
	}
	res, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Top()))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Bypassed != 0 || !res.CompleteHit {
		t.Fatalf("bypass disabled but chunk went to the backend: %+v", res)
	}
}

func TestCostBypassKeepsCheapPlansInCache(t *testing.T) {
	f, _ := buildBypass(t, true)
	lat := f.grid.Lattice()
	// Cache a small aggregate level directly; queries one step up have
	// cheap in-cache plans that must NOT be bypassed.
	mid := lat.MustID(1, 1, 0)
	if _, err := f.engine.Execute(context.Background(), WholeGroupBy(mid)); err != nil {
		t.Fatalf("warm: %v", err)
	}
	res, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.MustID(0, 1, 0)))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res.CompleteHit {
		t.Fatalf("cheap in-cache plan was bypassed: %+v", res)
	}
}
