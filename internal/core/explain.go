package core

import (
	"fmt"
	"strings"

	"aggcache/internal/strategy"
)

// Explain describes, without executing anything, how the engine would
// answer q against the current cache contents: per chunk, whether it is
// resident, aggregated along a lattice path (showing the plan tree and its
// cost), or fetched from the backend. Intended for the CLI and debugging.
func (e *Engine) Explain(q Query) (string, error) {
	nq, err := q.normalize(e.grid)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	nums := nq.chunkNumbers(e.grid)
	fmt.Fprintf(&b, "query: group-by %s %s, %d chunk(s)\n",
		e.lat.LevelTupleString(nq.GB), e.lat.String(nq.GB), len(nums))
	backendChunks := 0
	for _, num := range nums {
		plan, found, ferr := e.strat.Find(nq.GB, num)
		switch {
		case ferr != nil:
			fmt.Fprintf(&b, "chunk %d: lookup aborted (%v) -> backend\n", num, ferr)
			backendChunks++
		case !found:
			fmt.Fprintf(&b, "chunk %d: not computable -> backend\n", num)
			backendChunks++
		case plan.Present:
			fmt.Fprintf(&b, "chunk %d: resident in cache\n", num)
		default:
			fmt.Fprintf(&b, "chunk %d: aggregate in cache (cost %d tuples, %d plan nodes)\n",
				num, planCost(plan), plan.Nodes())
			e.writePlan(&b, plan, 1)
		}
	}
	if backendChunks > 0 {
		fmt.Fprintf(&b, "backend: one batched request for %d chunk(s)\n", backendChunks)
	} else {
		fmt.Fprintf(&b, "complete hit: no backend access needed\n")
	}
	return b.String(), nil
}

// planCost returns the plan's cost, computing a structural estimate when
// the strategy (ESM/VCM) does not track costs.
func planCost(p *strategy.Plan) int64 {
	if p.Cost > 0 {
		return p.Cost
	}
	var leaves int64
	var walk func(*strategy.Plan)
	walk = func(n *strategy.Plan) {
		if n.Present {
			leaves++
			return
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(p)
	return leaves // lower bound: at least one tuple per present leaf
}

func (e *Engine) writePlan(b *strings.Builder, p *strategy.Plan, depth int) {
	indent := strings.Repeat("  ", depth)
	if p.Present {
		fmt.Fprintf(b, "%s- chunk %d of %s [cached]\n", indent, p.Num, e.lat.LevelTupleString(p.GB))
		return
	}
	fmt.Fprintf(b, "%s- chunk %d of %s <- aggregate %d chunk(s) of %s\n",
		indent, p.Num, e.lat.LevelTupleString(p.GB), len(p.Inputs), e.lat.LevelTupleString(p.Via))
	for _, in := range p.Inputs {
		e.writePlan(b, in, depth+1)
	}
}
