package core

import (
	"fmt"
	"strings"

	"aggcache/internal/chunk"
	"aggcache/internal/strategy"
)

// Explain describes, without executing anything, how the engine would
// answer q against the current cache contents: per chunk, whether it is
// resident, aggregated along a lattice path (showing the plan tree and its
// cost), or fetched from the backend. Intended for the CLI and debugging.
func (e *Engine) Explain(q Query) (string, error) {
	nq, err := q.normalize(e.grid)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	nums := nq.chunkNumbers(e.grid)
	fmt.Fprintf(&b, "query: group-by %s %s, %d chunk(s)\n",
		e.lat.LevelTupleString(nq.GB), e.lat.String(nq.GB), len(nums))
	backendChunks := 0
	for _, num := range nums {
		plan, found, ferr := e.strat.Find(nq.GB, num)
		switch {
		case ferr != nil:
			fmt.Fprintf(&b, "chunk %d: lookup aborted (%v) -> backend\n", num, ferr)
			backendChunks++
		case !found:
			fmt.Fprintf(&b, "chunk %d: not computable -> backend\n", num)
			backendChunks++
		case plan.Present:
			fmt.Fprintf(&b, "chunk %d: resident in cache\n", num)
		default:
			fmt.Fprintf(&b, "chunk %d: aggregate in cache (cost %d tuples, %d plan nodes)\n",
				num, planCost(plan), plan.Nodes())
			e.writePlan(&b, plan, 1)
		}
	}
	if backendChunks > 0 {
		fmt.Fprintf(&b, "backend: one batched request for %d chunk(s)\n", backendChunks)
	} else {
		fmt.Fprintf(&b, "complete hit: no backend access needed\n")
	}
	return b.String(), nil
}

// planCost returns the plan's cost, computing a structural estimate when
// the strategy (ESM/VCM) does not track costs.
func planCost(p *strategy.Plan) int64 {
	if p.Cost > 0 {
		return p.Cost
	}
	var leaves int64
	var walk func(*strategy.Plan)
	walk = func(n *strategy.Plan) {
		if n.Present {
			leaves++
			return
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(p)
	return leaves // lower bound: at least one tuple per present leaf
}

func (e *Engine) writePlan(b *strings.Builder, p *strategy.Plan, depth int) {
	indent := strings.Repeat("  ", depth)
	if p.Present {
		fmt.Fprintf(b, "%s- chunk %d of %s [cached]\n", indent, p.Num, e.lat.LevelTupleString(p.GB))
		return
	}
	// Interior nodes (depth > 1: below the plan root, which is always
	// cached as the query's answer) carry the recycler's verdict.
	note := ""
	if depth > 1 {
		note = e.recycleAnnotation(p)
	}
	fmt.Fprintf(b, "%s- chunk %d of %s <- aggregate %d chunk(s) of %s%s\n",
		indent, p.Num, e.lat.LevelTupleString(p.GB), len(p.Inputs), e.lat.LevelTupleString(p.Via), note)
	for _, in := range p.Inputs {
		e.writePlan(b, in, depth+1)
	}
}

// recycleAnnotation renders the admission decision the recycler would make
// for one interior plan node: the recompute cost saved per byte retained
// (CostEstimate when the strategy offers it, the plan's structural cost
// otherwise, over the sizer's estimated chunk footprint) against the
// configured threshold.
func (e *Engine) recycleAnnotation(p *strategy.Plan) string {
	if !e.opts.recycle {
		return " [recycle: off]"
	}
	cost := planCost(p)
	if e.est != nil {
		if c, ok := e.est.CostEstimate(p.GB, p.Num); ok {
			cost = c
		}
	}
	bytes := e.sizes.ChunkCells(p.GB, p.Num)*chunk.CellBytes + chunk.OverheadBytes
	perByte := float64(cost) / float64(bytes)
	verdict := "admit"
	if perByte < e.opts.recycleMinBenefit {
		verdict = "reject"
	}
	return fmt.Sprintf(" [recycle: %s, benefit %.3f/B]", verdict, perByte)
}
