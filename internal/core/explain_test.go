package core

import (
	"context"
	"strings"
	"testing"

	"aggcache/internal/cache"
)

func TestExplainColdAndWarm(t *testing.T) {
	f := build(t, "VCMC", cache.NewTwoLevel(), 1<<20)
	lat := f.grid.Lattice()
	top := WholeGroupBy(lat.Top())

	out, err := f.engine.Explain(top)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(out, "not computable -> backend") {
		t.Fatalf("cold explain missing backend route:\n%s", out)
	}
	if !strings.Contains(out, "one batched request") {
		t.Fatalf("cold explain missing batch line:\n%s", out)
	}

	if _, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Base())); err != nil {
		t.Fatalf("warm: %v", err)
	}
	out, err = f.engine.Explain(top)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(out, "aggregate in cache") {
		t.Fatalf("warm explain missing aggregation plan:\n%s", out)
	}
	if !strings.Contains(out, "[cached]") {
		t.Fatalf("warm explain missing cached leaves:\n%s", out)
	}
	if !strings.Contains(out, "complete hit") {
		t.Fatalf("warm explain missing complete-hit line:\n%s", out)
	}
	// Explain must not execute: the top chunk is still not resident.
	if f.engine.Cache().Contains(cache.Key{GB: lat.Top(), Num: 0}) {
		t.Fatalf("Explain materialized the chunk")
	}

	// A resident chunk explains as resident.
	if _, err := f.engine.Execute(context.Background(), top); err != nil {
		t.Fatalf("execute top: %v", err)
	}
	out, _ = f.engine.Explain(top)
	if !strings.Contains(out, "resident in cache") {
		t.Fatalf("resident explain wrong:\n%s", out)
	}

	// Invalid queries error.
	if _, err := f.engine.Explain(Query{GB: 9999}); err == nil {
		t.Fatalf("expected error")
	}
}

// TestExplainRecycleAnnotation: with recycling on, every interior plan node
// Explain prints carries the recycler's verdict and its benefit score; with
// recycling off, the node says so.
func TestExplainRecycleAnnotation(t *testing.T) {
	probe := func(t *testing.T, f *fixture) string {
		t.Helper()
		lat := f.grid.Lattice()
		if _, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Base())); err != nil {
			t.Fatalf("warm: %v", err)
		}
		out, err := f.engine.Explain(WholeGroupBy(lat.Top()))
		if err != nil {
			t.Fatalf("Explain: %v", err)
		}
		if !strings.Contains(out, "aggregate in cache") {
			t.Fatalf("explain has no aggregation plan:\n%s", out)
		}
		return out
	}

	// Admit-everything threshold: every interior node annotated as admitted,
	// with a benefit score.
	f := build(t, "VCMC", cache.NewTwoLevelPromote(), 1<<20,
		WithRecycling(true), WithRecycleMinBenefit(1e-9))
	out := probe(t, f)
	if !strings.Contains(out, "[recycle: admit, benefit ") {
		t.Fatalf("no admit annotation on interior nodes:\n%s", out)
	}
	if strings.Contains(out, "[recycle: reject") {
		t.Fatalf("unexpected reject at admit-everything threshold:\n%s", out)
	}

	// Prohibitive threshold: same plan, all interior nodes rejected.
	f = build(t, "VCMC", cache.NewTwoLevelPromote(), 1<<20,
		WithRecycling(true), WithRecycleMinBenefit(1e12))
	out = probe(t, f)
	if !strings.Contains(out, "[recycle: reject, benefit ") {
		t.Fatalf("no reject annotation at prohibitive threshold:\n%s", out)
	}

	// Recycling off: interior nodes say so instead of carrying a verdict.
	f = build(t, "VCMC", cache.NewTwoLevel(), 1<<20)
	out = probe(t, f)
	if !strings.Contains(out, "[recycle: off]") {
		t.Fatalf("no recycle-off annotation:\n%s", out)
	}
	if strings.Contains(out, "[recycle: admit") || strings.Contains(out, "[recycle: reject") {
		t.Fatalf("verdict printed with recycling off:\n%s", out)
	}
}

// TestExplainPlanCostFallback: ESM plans carry no cost; Explain derives a
// leaf-count lower bound.
func TestExplainPlanCostFallback(t *testing.T) {
	f := build(t, "ESM", cache.NewTwoLevel(), 1<<20)
	lat := f.grid.Lattice()
	if _, err := f.engine.Execute(context.Background(), WholeGroupBy(lat.Base())); err != nil {
		t.Fatalf("warm: %v", err)
	}
	out, err := f.engine.Explain(WholeGroupBy(lat.Top()))
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(out, "aggregate in cache (cost") {
		t.Fatalf("ESM explain missing cost:\n%s", out)
	}
}
