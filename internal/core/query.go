// Package core is the middle tier of the paper's three-tier system: an
// aggregate aware ("active") chunk cache. A query is analyzed into the
// chunks it needs; each chunk is answered from the cache — directly, or by
// aggregating other cached chunks along a lattice path chosen by the lookup
// strategy — and only the remaining misses are computed at the backend with
// a single batched request (§1, §2).
package core

import (
	"fmt"

	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/metrics"
)

// Query asks for the measure aggregated to group-by GB over a rectangular
// chunk region. Lo/Hi are half-open per-dimension chunk coordinate bounds;
// nil means the full extent on every dimension. MemberRanges optionally
// trims the chunk-aligned answer to exact member bounds (used by the query
// language front end).
type Query struct {
	GB           lattice.ID
	Lo, Hi       []int32
	MemberRanges []chunk.Range
}

// WholeGroupBy returns a query covering every chunk of gb.
func WholeGroupBy(gb lattice.ID) Query { return Query{GB: gb} }

// normalize validates q against the grid and fills in full-extent bounds.
func (q Query) normalize(g *chunk.Grid) (Query, error) {
	lat := g.Lattice()
	if int(q.GB) < 0 || int(q.GB) >= lat.NumNodes() {
		return q, fmt.Errorf("core: group-by %d out of range", q.GB)
	}
	nd := g.Schema().NumDims()
	lv := lat.Level(q.GB)
	if q.Lo == nil && q.Hi == nil {
		q.Lo = make([]int32, nd)
		q.Hi = make([]int32, nd)
		for d := 0; d < nd; d++ {
			q.Hi[d] = int32(g.ChunkCount(d, lv[d]))
		}
		return q, nil
	}
	if len(q.Lo) != nd || len(q.Hi) != nd {
		return q, fmt.Errorf("core: query bounds have %d/%d dims, want %d", len(q.Lo), len(q.Hi), nd)
	}
	for d := 0; d < nd; d++ {
		max := int32(g.ChunkCount(d, lv[d]))
		if q.Lo[d] < 0 || q.Hi[d] > max || q.Lo[d] >= q.Hi[d] {
			return q, fmt.Errorf("core: dimension %d bounds [%d,%d) outside [0,%d)", d, q.Lo[d], q.Hi[d], max)
		}
	}
	if q.MemberRanges != nil && len(q.MemberRanges) != nd {
		return q, fmt.Errorf("core: MemberRanges has %d dims, want %d", len(q.MemberRanges), nd)
	}
	return q, nil
}

// chunkNumbers enumerates the chunk numbers covered by the (normalized)
// query rectangle.
func (q Query) chunkNumbers(g *chunk.Grid) []int {
	nd := len(q.Lo)
	total := 1
	for d := 0; d < nd; d++ {
		total *= int(q.Hi[d] - q.Lo[d])
	}
	nums := make([]int, 0, total)
	cur := make([]int32, nd)
	copy(cur, q.Lo)
	for {
		nums = append(nums, g.Number(q.GB, cur))
		d := nd - 1
		for d >= 0 {
			cur[d]++
			if cur[d] < q.Hi[d] {
				break
			}
			cur[d] = q.Lo[d]
			d--
		}
		if d < 0 {
			return nums
		}
	}
}

// NumChunks returns how many chunks the query touches once normalized
// against grid g.
func (q Query) NumChunks(g *chunk.Grid) (int, error) {
	n, err := q.normalize(g)
	if err != nil {
		return 0, err
	}
	return len(n.chunkNumbers(g)), nil
}

// Result is one answered query.
type Result struct {
	Query Query
	// Chunks holds one payload per requested chunk, in enumeration order,
	// trimmed to MemberRanges when set.
	Chunks []*chunk.Chunk
	// Breakdown splits the response time (Figure 10): cache lookup,
	// aggregation, strategy maintenance, backend.
	Breakdown metrics.Breakdown
	// CompleteHit reports that no backend access was needed — the metric of
	// Figure 7 and Table 4.
	CompleteHit bool
	// HitChunks counts chunks answered from the cache (present or
	// aggregated); MissChunks counts chunks computed at the backend.
	HitChunks, MissChunks int
	// PeerChunks counts the subset of MissChunks served by a cluster peer
	// instead of the backend (the store is a cache.Peered and the key's ring
	// owner held the chunk). A peer-filled query is still not a CompleteHit:
	// the chunk left this node, just not the cache group.
	PeerChunks int
	// AggChunks counts the subset of HitChunks that required in-cache
	// aggregation (the rest were resident verbatim).
	AggChunks int
	// AggregatedTuples counts tuples scanned by in-cache aggregation.
	AggregatedTuples int64
	// BackendTuples counts tuples scanned at the backend.
	BackendTuples int64
	// BudgetExceeded reports that the strategy gave up on at least one
	// lookup (budget-limited ESM/ESMC) and the chunk went to the backend.
	BudgetExceeded bool
	// Bypassed counts chunks that were computable from the cache but were
	// sent to the backend anyway because the cost-based optimizer (§5.2,
	// Options.CostBypass) estimated the backend to be cheaper.
	Bypassed int
	// Degraded reports that the answer was produced from the cache alone
	// while the backend circuit breaker was open or half-open — correct and
	// complete, but served in cache-only degraded mode.
	Degraded bool
	// RecycledChunks counts intermediate aggregates this query's plans (or
	// backend-fill roll-ups) computed that the benefit heuristic admitted to
	// the cache for reuse by later queries.
	RecycledChunks int
	// FromResultCache reports that the whole answer came from the semantic
	// result cache — no planning, aggregation or backend work ran. Such an
	// answer is always a CompleteHit.
	FromResultCache bool
}

// Cells returns the total number of cells across the result's chunks.
func (r *Result) Cells() int {
	n := 0
	for _, c := range r.Chunks {
		n += c.Cells()
	}
	return n
}

// Total returns the sum of the measure over the result.
func (r *Result) Total() float64 {
	t := 0.0
	for _, c := range r.Chunks {
		t += c.Total()
	}
	return t
}
