package core

import (
	"context"
	"testing"

	"aggcache/internal/cache"
	"aggcache/internal/chunk"
)

// TestResultCacheExactAndSubsumed: a repeated rectangle is answered from the
// result cache, and a contained rectangle is answered by subsumption — both
// byte-for-byte identical to the oracle.
func TestResultCacheExactAndSubsumed(t *testing.T) {
	f := build(t, "VCMC", cache.NewTwoLevelPromote(), 1<<20, WithResultCache(32))
	lat := f.grid.Lattice()
	base := lat.Base()
	lv := lat.Level(base)
	nd := f.grid.Schema().NumDims()

	lo := make([]int32, nd)
	hi := make([]int32, nd)
	for d := 0; d < nd; d++ {
		hi[d] = int32(f.grid.ChunkCount(d, lv[d]))
	}
	big := Query{GB: base, Lo: lo, Hi: hi}

	res, err := f.engine.Execute(context.Background(), big)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if res.FromResultCache {
		t.Fatalf("cold query claims a result-cache hit")
	}

	// Exact repeat.
	res, err = f.engine.Execute(context.Background(), big)
	if err != nil {
		t.Fatalf("repeat: %v", err)
	}
	if !res.FromResultCache || !res.CompleteHit {
		t.Fatalf("repeat not served from result cache: %+v", res)
	}
	assertMatchesOracle(t, f, big, res)

	// Contained sub-rectangle: trim the first dimension if it has more than
	// one chunk, otherwise the query equals big and still must hit.
	slo := append([]int32(nil), lo...)
	shi := append([]int32(nil), hi...)
	for d := 0; d < nd; d++ {
		if shi[d]-slo[d] > 1 {
			slo[d]++
			break
		}
	}
	small := Query{GB: base, Lo: slo, Hi: shi}
	res, err = f.engine.Execute(context.Background(), small)
	if err != nil {
		t.Fatalf("subsumed: %v", err)
	}
	if !res.FromResultCache {
		t.Fatalf("contained query not served from result cache")
	}
	assertMatchesOracle(t, f, small, res)

	if got := f.engine.Stats().ResultCacheHits; got != 2 {
		t.Fatalf("Stats.ResultCacheHits = %d, want 2", got)
	}
}

// TestResultCacheMemberRangeTrim: the result cache stores the chunk-aligned
// answer; member trimming is re-applied per query, so a trimmed repeat
// matches its own first run.
func TestResultCacheMemberRangeTrim(t *testing.T) {
	f := build(t, "VCMC", cache.NewTwoLevelPromote(), 1<<20, WithResultCache(32))
	lat := f.grid.Lattice()
	base := lat.Base()
	lv := lat.Level(base)
	nd := f.grid.Schema().NumDims()

	ranges := make([]chunk.Range, nd)
	for d := 0; d < nd; d++ {
		n := f.grid.Schema().Dim(d).Card(lv[d])
		ranges[d] = chunk.Range{Lo: 0, Hi: int32((n + 1) / 2)}
	}
	q := Query{GB: base, MemberRanges: ranges}

	first, err := f.engine.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	second, err := f.engine.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("repeat: %v", err)
	}
	if !second.FromResultCache {
		t.Fatalf("trimmed repeat not served from result cache")
	}
	if first.Cells() != second.Cells() || first.Total() != second.Total() {
		t.Fatalf("trimmed repeat differs: %d cells %.3f vs %d cells %.3f",
			first.Cells(), first.Total(), second.Cells(), second.Total())
	}
}

// TestResultCacheInvalidation: evicting any contributing chunk drops the
// entry; the query is re-executed, not served stale.
func TestResultCacheInvalidation(t *testing.T) {
	f := build(t, "VCMC", cache.NewTwoLevelPromote(), 1<<20, WithResultCache(32))
	lat := f.grid.Lattice()
	q := WholeGroupBy(lat.Base())

	if _, err := f.engine.Execute(context.Background(), q); err != nil {
		t.Fatalf("cold: %v", err)
	}
	if f.engine.rcache.snapshot().Entries != 1 {
		t.Fatalf("entry not registered")
	}

	// Evict one contributing chunk through the store's admin path.
	if !f.engine.Cache().Evict(cache.Key{GB: lat.Base(), Num: 0}) {
		t.Fatalf("admin evict failed")
	}
	st := f.engine.rcache.snapshot()
	if st.Entries != 0 || st.Invalidated != 1 {
		t.Fatalf("entry not invalidated on chunk eviction: %+v", st)
	}

	res, err := f.engine.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("re-run: %v", err)
	}
	if res.FromResultCache {
		t.Fatalf("stale entry served after contributing-chunk eviction")
	}
	assertMatchesOracle(t, f, q, res)
}

// TestResultCacheBounds: the entry bound holds under many distinct
// rectangles, evicting oldest-first.
func TestResultCacheBounds(t *testing.T) {
	const maxEntries = 4
	f := build(t, "VCMC", cache.NewTwoLevelPromote(), 1<<20, WithResultCache(maxEntries))
	lat := f.grid.Lattice()
	base := lat.Base()
	lv := lat.Level(base)
	n0 := int32(f.grid.ChunkCount(0, lv[0]))
	nd := f.grid.Schema().NumDims()

	for i := int32(0); i < n0; i++ {
		lo := make([]int32, nd)
		hi := make([]int32, nd)
		lo[0], hi[0] = i, i+1
		for d := 1; d < nd; d++ {
			hi[d] = int32(f.grid.ChunkCount(d, lv[d]))
		}
		if _, err := f.engine.Execute(context.Background(), Query{GB: base, Lo: lo, Hi: hi}); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	st := f.engine.rcache.snapshot()
	if st.Entries > maxEntries {
		t.Fatalf("result cache holds %d entries, bound is %d", st.Entries, maxEntries)
	}
	if n0 > maxEntries && st.Evicted == 0 {
		t.Fatalf("no LRU evictions despite %d distinct rectangles", n0)
	}
}
