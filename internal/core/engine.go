package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/metrics"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
)

// Options tunes the engine.
type Options struct {
	// BackendPenalty scales backend tuples into benefit cost units relative
	// to in-cache aggregation — the paper measured backend computation to be
	// about 8× slower (§7.1). Defaults to 8.
	BackendPenalty float64
	// ConnectCostUnits is the per-backend-request fixed benefit surcharge in
	// cost units (tuples-equivalent). Defaults to 4000.
	ConnectCostUnits float64
	// InsertIntermediates also caches the interior chunks a plan
	// materializes, not just the final one. Off by default (the paper caches
	// the newly computed chunk).
	InsertIntermediates bool
	// DisableReinforce turns off group reinforcement (§6.3 second bullet);
	// used by the ablation experiments.
	DisableReinforce bool
	// CostBypass enables the cost-based optimizer hook of §5.2: when a plan
	// carries an in-cache aggregation cost (VCMC and ESMC plans do) that
	// exceeds the backend's estimated cost in the same units, the chunk is
	// fetched from the backend instead. Useful when the backend holds
	// materialized aggregates (backend.Engine.Materialize) that make it
	// cheaper than a long in-cache aggregation.
	CostBypass bool
}

func (o Options) withDefaults() Options {
	if o.BackendPenalty <= 0 {
		o.BackendPenalty = 8
	}
	if o.ConnectCostUnits <= 0 {
		o.ConnectCostUnits = 4000
	}
	return o
}

// Stats accumulates engine activity across queries.
type Stats struct {
	Queries        int64
	CompleteHits   int64
	BackendQueries int64
	BackendTuples  int64
	AggTuples      int64
	BudgetMisses   int64
	Bypassed       int64
	Breakdown      metrics.Breakdown
}

// Engine is the aggregate aware cache manager. It is safe for concurrent
// use; queries are serialized.
type Engine struct {
	mu    sync.Mutex
	grid  *chunk.Grid
	lat   *lattice.Lattice
	cache *cache.Cache
	strat strategy.Strategy
	back  backend.Backend
	sizes sizer.Sizer
	opts  Options
	stats Stats
}

// New wires a cache, a lookup strategy and a backend into an engine. The
// strategy is registered as the cache's listener; the cache must be empty
// (or have been populated through the same strategy).
func New(g *chunk.Grid, c *cache.Cache, s strategy.Strategy, b backend.Backend, sizes sizer.Sizer, opts Options) (*Engine, error) {
	if g == nil || c == nil || s == nil || b == nil || sizes == nil {
		return nil, errors.New("core: all of grid, cache, strategy, backend and sizer are required")
	}
	c.SetListener(s)
	return &Engine{
		grid:  g,
		lat:   g.Lattice(),
		cache: c,
		strat: s,
		back:  b,
		sizes: sizes,
		opts:  opts.withDefaults(),
	}, nil
}

// Grid returns the engine's chunk grid.
func (e *Engine) Grid() *chunk.Grid { return e.grid }

// Cache returns the underlying cache (for inspection; treat as read-only).
func (e *Engine) Cache() *cache.Cache { return e.cache }

// Strategy returns the lookup strategy.
func (e *Engine) Strategy() strategy.Strategy { return e.strat }

// Stats returns a copy of the cumulative counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Execute answers one query: probe the cache per chunk, batch the misses to
// the backend, aggregate the computable chunks in the cache, and assemble
// the answer.
func (e *Engine) Execute(q Query) (*Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	nq, err := q.normalize(e.grid)
	if err != nil {
		return nil, err
	}
	nums := nq.chunkNumbers(e.grid)
	res := &Result{Query: nq, Chunks: make([]*chunk.Chunk, len(nums))}

	// Phase 1 — lookup: one strategy probe per chunk (the paper's cache
	// lookup problem).
	type planned struct {
		idx  int
		plan *strategy.Plan
	}
	var plans []planned
	var missing []int
	var missingIdx []int
	lookupStart := time.Now()
	for i, num := range nums {
		plan, found, err := e.strat.Find(nq.GB, num)
		switch {
		case errors.Is(err, strategy.ErrBudget):
			res.BudgetExceeded = true
			e.stats.BudgetMisses++
			found = false
		case err != nil:
			return nil, fmt.Errorf("core: lookup: %w", err)
		}
		if found && e.opts.CostBypass && plan.Cost > int64(e.opts.ConnectCostUnits) {
			// §5.2 optimizer: only worth a backend estimate when the plan is
			// at least as expensive as a backend round trip.
			est, eerr := e.back.EstimateScan(nq.GB, []int{num})
			if eerr == nil && float64(plan.Cost) > float64(est)*e.opts.BackendPenalty+e.opts.ConnectCostUnits {
				found = false
				res.Bypassed++
				e.stats.Bypassed++
			}
		}
		if found {
			plans = append(plans, planned{idx: i, plan: plan})
		} else {
			missing = append(missing, num)
			missingIdx = append(missingIdx, i)
		}
	}
	res.Breakdown.Lookup = time.Since(lookupStart)
	res.HitChunks = len(plans)
	res.MissChunks = len(missing)
	res.CompleteHit = len(missing) == 0

	// Pin every plan leaf so backend insertions and intermediate results
	// cannot evict an input before we aggregate it.
	var pinned []cache.Key
	for _, p := range plans {
		pinned = p.plan.Leaves(pinned)
	}
	for _, k := range pinned {
		e.cache.Pin(k)
	}
	defer func() {
		for _, k := range pinned {
			e.cache.Unpin(k)
		}
	}()

	// Phase 2 — backend: a single batched request for all missing chunks
	// (the paper issues one SQL statement for the missing chunk numbers).
	maintBefore := e.strat.Maintenance()
	if len(missing) > 0 {
		chunks, bstats, err := e.back.ComputeChunks(nq.GB, missing)
		if err != nil {
			return nil, fmt.Errorf("core: backend: %w", err)
		}
		res.Breakdown.Backend = bstats.Cost()
		res.BackendTuples = bstats.TuplesScanned
		e.stats.BackendQueries++
		e.stats.BackendTuples += bstats.TuplesScanned
		benefit := (float64(bstats.TuplesScanned)*e.opts.BackendPenalty + e.opts.ConnectCostUnits) / float64(len(missing))
		for i, c := range chunks {
			res.Chunks[missingIdx[i]] = c
			e.cache.Insert(cache.Key{GB: nq.GB, Num: int32(missing[i])}, c, cache.ClassBackend, benefit)
		}
	}

	// Phase 3 — aggregate computable chunks in the cache.
	maintMid := e.strat.Maintenance()
	aggStart := time.Now()
	for _, p := range plans {
		data, tuples, err := e.materialize(p.plan)
		if err != nil {
			return nil, err
		}
		res.Chunks[p.idx] = data
		res.AggregatedTuples += tuples
		if !p.plan.Present {
			benefit := float64(tuples)
			e.cache.Insert(cache.Key{GB: nq.GB, Num: int32(p.plan.Num)}, data, cache.ClassComputed, benefit)
			if !e.opts.DisableReinforce {
				e.cache.Reinforce(p.plan.Leaves(nil), benefit)
			}
		}
	}
	agg := time.Since(aggStart)

	// Maintenance time was spent inside cache.Insert listener callbacks
	// during phases 2–3; attribute all of it to the update component and
	// keep the aggregation timer clean of the share incurred in phase 3.
	maintEnd := e.strat.Maintenance()
	res.Breakdown.Update = maintEnd.Sub(maintBefore).Time
	if phase3 := maintEnd.Sub(maintMid).Time; agg > phase3 {
		agg -= phase3
	} else {
		agg = 0
	}
	res.Breakdown.Aggregate = agg

	// Trim to exact member bounds if the front end asked for them.
	if nq.MemberRanges != nil {
		for i, c := range res.Chunks {
			res.Chunks[i] = e.grid.Slice(c, nq.MemberRanges)
		}
	}

	e.stats.Queries++
	if res.CompleteHit {
		e.stats.CompleteHits++
	}
	e.stats.AggTuples += res.AggregatedTuples
	e.stats.Breakdown.Add(res.Breakdown)
	return res, nil
}

// materialize executes a plan bottom-up, returning the chunk payload and
// the number of tuples scanned by aggregation.
func (e *Engine) materialize(p *strategy.Plan) (*chunk.Chunk, int64, error) {
	k := cache.Key{GB: p.GB, Num: int32(p.Num)}
	if p.Present {
		data, ok := e.cache.Get(k)
		if !ok {
			// Pinning makes this unreachable; fail loudly if it ever breaks.
			return nil, 0, fmt.Errorf("core: plan leaf %v vanished from the cache", k)
		}
		return data, 0, nil
	}
	cm := e.grid.NewCellMap(p.GB, p.Num)
	var tuples int64
	for _, in := range p.Inputs {
		sub, subTuples, err := e.materialize(in)
		if err != nil {
			return nil, 0, err
		}
		tuples += subTuples
		scanned, err := e.grid.RollUpInto(cm, p.GB, p.Num, sub)
		if err != nil {
			return nil, 0, fmt.Errorf("core: aggregation: %w", err)
		}
		tuples += int64(scanned)
	}
	data := cm.Build(p.GB, p.Num)
	if e.opts.InsertIntermediates {
		e.cache.Insert(k, data, cache.ClassComputed, float64(tuples))
	}
	return data, tuples, nil
}
