package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/metrics"
	"aggcache/internal/obs"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
)

// options collects the engine tunables; construct through the With…
// functional options on New.
type options struct {
	backendPenalty    float64
	connectCostUnits  float64
	recycle           bool
	recycleMinBenefit float64
	resultEntries     int
	disableReinforce  bool
	costBypass        bool
	metrics           *obs.EngineMetrics
}

// Option tunes the engine at construction time. Options are applied in
// order; later options win.
type Option func(*options)

// WithBackendPenalty scales backend tuples into benefit cost units relative
// to in-cache aggregation — the paper measured backend computation to be
// about 8× slower (§7.1). The default is 8; non-positive values keep it.
func WithBackendPenalty(p float64) Option {
	return func(o *options) {
		if p > 0 {
			o.backendPenalty = p
		}
	}
}

// WithConnectCost sets the per-backend-request fixed benefit surcharge in
// cost units (tuples-equivalent). The default is 4000; non-positive values
// keep it.
func WithConnectCost(units float64) Option {
	return func(o *options) {
		if units > 0 {
			o.connectCostUnits = units
		}
	}
}

// DefaultRecycleMinBenefit is the admission threshold for recycled
// intermediates, in recompute-cost units (tuples scanned) saved per byte
// retained. A chunk's footprint is ≈24 bytes per cell, so the default admits
// interior nodes that fold ≥24 input cells into each output cell. That bar is
// deliberately high: a recycled chunk displaces its own size in resident
// chunks, and a typical non-speculative computed resident is worth on the
// order of one cost unit per byte (it was derived by scanning a few times its
// own cells), so only intermediates at least that valuable should speculate.
// Sweeping the threshold on ad-hoc multi-level streams (bench "recycle")
// shows response time improving monotonically from 0.125 up to ≈1.0 and
// plateauing there — permissive thresholds admit copy-through nodes whose
// displacement of proven residents costs more than their reuse saves.
const DefaultRecycleMinBenefit = 1.0

// WithRecycling(true) enables benefit-driven recycling of intermediate
// aggregates: every interior plan node materialized during in-cache
// aggregation — and every lattice roll-up fully covered by an arriving
// backend batch — is scored in O(1) via the strategy's CostEstimate and
// admitted to the cache as a computed-class chunk when the recompute cost it
// saves per byte clears the threshold (WithRecycleMinBenefit). Off by
// default: the paper's engine caches only the newly computed result chunk.
func WithRecycling(on bool) Option {
	return func(o *options) { o.recycle = on }
}

// WithRecycleMinBenefit sets the recycler's admission threshold in saved
// recompute cost (tuples) per byte. Non-positive values keep the default.
func WithRecycleMinBenefit(perByte float64) Option {
	return func(o *options) {
		if perByte > 0 {
			o.recycleMinBenefit = perByte
		}
	}
}

// WithResultCache bounds the semantic result cache above the chunk cache at
// the given number of entries (0, the default, disables it). Canonicalized
// (group-by, chunk-range) rectangles map to their assembled chunk sets;
// repeated or contained queries are answered without planning, aggregation
// or backend work. Entries are dropped as soon as any contributing chunk is
// evicted from the store.
func WithResultCache(entries int) Option {
	return func(o *options) {
		if entries >= 0 {
			o.resultEntries = entries
		}
	}
}

// WithReinforce(false) turns off group reinforcement (§6.3 second bullet);
// used by the ablation experiments. On by default.
func WithReinforce(on bool) Option {
	return func(o *options) { o.disableReinforce = !on }
}

// WithCostBypass enables the cost-based optimizer hook of §5.2: when a plan
// carries an in-cache aggregation cost (VCMC and ESMC plans do) that exceeds
// the backend's estimated cost in the same units, the chunk is fetched from
// the backend instead. Useful when the backend holds materialized aggregates
// (backend.Engine.Materialize) that make it cheaper than a long in-cache
// aggregation.
func WithCostBypass(on bool) Option {
	return func(o *options) { o.costBypass = on }
}

// WithMetrics attaches the live-metrics bundle at construction time,
// replacing a later SetMetrics call.
func WithMetrics(m obs.EngineMetrics) Option {
	return func(o *options) { o.metrics = &m }
}

// ErrBackendUnavailable is the typed error a query fails fast with when it
// needs the backend but the backend is unreachable — the circuit breaker is
// open, or the remote client exhausted its redial/retry budget. Queries
// answerable from the cache alone (complete hits and in-cache aggregation)
// still succeed in that state: the engine's cache-only degraded mode.
// Match with errors.Is.
var ErrBackendUnavailable = backend.ErrUnavailable

// Stats accumulates engine activity across queries.
type Stats struct {
	Queries        int64
	CompleteHits   int64
	BackendQueries int64
	BackendTuples  int64
	AggTuples      int64
	BudgetMisses   int64
	Bypassed       int64
	// PeerChunks counts missing chunks served by a cluster peer instead of
	// the backend.
	PeerChunks int64
	// DegradedHits counts queries answered from the cache alone while the
	// backend circuit breaker was not closed.
	DegradedHits int64
	// Unavailable counts queries that failed with ErrBackendUnavailable.
	Unavailable int64
	// Recycled counts intermediate aggregates the benefit heuristic admitted
	// to the cache; RecycleRejected counts the interior nodes it declined.
	Recycled        int64
	RecycleRejected int64
	// ResultCacheHits counts queries answered entirely from the semantic
	// result cache (exact or by containment subsumption).
	ResultCacheHits int64
	Breakdown       metrics.Breakdown
}

// engineStats is the engine's internal, atomically updated counterpart of
// Stats, so concurrent queries can account without contending on a lock.
type engineStats struct {
	queries        atomic.Int64
	completeHits   atomic.Int64
	backendQueries atomic.Int64
	backendTuples  atomic.Int64
	aggTuples      atomic.Int64
	budgetMisses   atomic.Int64
	bypassed       atomic.Int64
	peerChunks     atomic.Int64
	degradedHits   atomic.Int64
	unavailable    atomic.Int64
	recycled       atomic.Int64
	recycleRejects atomic.Int64
	resultHits     atomic.Int64

	lookupNS  atomic.Int64
	aggNS     atomic.Int64
	updateNS  atomic.Int64
	backendNS atomic.Int64
}

func (s *engineStats) snapshot() Stats {
	return Stats{
		Queries:         s.queries.Load(),
		CompleteHits:    s.completeHits.Load(),
		BackendQueries:  s.backendQueries.Load(),
		BackendTuples:   s.backendTuples.Load(),
		AggTuples:       s.aggTuples.Load(),
		BudgetMisses:    s.budgetMisses.Load(),
		Bypassed:        s.bypassed.Load(),
		PeerChunks:      s.peerChunks.Load(),
		DegradedHits:    s.degradedHits.Load(),
		Unavailable:     s.unavailable.Load(),
		Recycled:        s.recycled.Load(),
		RecycleRejected: s.recycleRejects.Load(),
		ResultCacheHits: s.resultHits.Load(),
		Breakdown: metrics.Breakdown{
			Lookup:    time.Duration(s.lookupNS.Load()),
			Aggregate: time.Duration(s.aggNS.Load()),
			Update:    time.Duration(s.updateNS.Load()),
			Backend:   time.Duration(s.backendNS.Load()),
		},
	}
}

// Engine is the aggregate aware cache manager. It is safe for concurrent
// use, and queries genuinely overlap: the engine itself holds no lock — the
// cache store and the lookup strategy each synchronize internally (a sharded
// store stripes its locking per shard, so concurrent queries touching
// different shards never contend). The backend round trip and the in-cache
// aggregation run with the plan's leaves pinned so the replacement policy
// cannot evict an input mid-flight. Identical concurrent backend chunk
// fetches are deduplicated through flights, and independent planned chunks
// of one query aggregate in parallel across a GOMAXPROCS-bounded worker
// pool.
type Engine struct {
	grid  *chunk.Grid
	lat   *lattice.Lattice
	back  backend.Backend
	sizes sizer.Sizer
	opts  options

	cache cache.Store
	strat strategy.Strategy

	flights flightGroup
	stats   engineStats
	// met is the optional live-metrics bundle; its zero value records
	// nothing. All handles are atomics, so recording needs no lock and an
	// ops scraper can read concurrently with queries in flight.
	met obs.EngineMetrics
	// avail reports the backend circuit breaker's state when the backend
	// (or a wrapper in its chain) carries one; nil otherwise. Used for
	// degraded-mode accounting and health reporting.
	avail interface{ State() backend.BreakerState }
	// peers is the cache store's cluster tier when the store provides one
	// (cache.Peered); nil otherwise. Missing chunks are offered to the
	// key's ring owner before the backend fetch.
	peers PeerFiller
	// est is the strategy's O(1) benefit API when it offers one (VCMC, also
	// through decorators); nil otherwise. The recycler falls back to the
	// node's exact subtree scan count without it.
	est strategy.CostEstimator
	// rcache is the semantic result cache; nil when disabled.
	rcache *resultCache
	// recycleSeen is the recycler's one-shot admission ghost set (see
	// recycleTry); guarded by recycleMu, nil unless recycling is on.
	recycleMu   sync.Mutex
	recycleSeen map[cache.Key]struct{}
}

// PeerFiller is the optional cluster tier a cache store can expose:
// PeerFill asks the chunk key's ring owner for the payload, installing it in
// the local tier on success. false means fall through to the backend.
// cache.Peered implements it; the engine detects it on the store at New.
type PeerFiller interface {
	PeerFill(ctx context.Context, k cache.Key) (*chunk.Chunk, bool)
}

// New wires a cache store, a lookup strategy and a backend into an engine,
// tuned by functional options (WithCostBypass, WithReinforce, …). The
// strategy is registered as the store's listener; the store must be empty
// (or have been populated through the same strategy).
func New(g *chunk.Grid, c cache.Store, s strategy.Strategy, b backend.Backend, sizes sizer.Sizer, opts ...Option) (*Engine, error) {
	if g == nil || c == nil || s == nil || b == nil || sizes == nil {
		return nil, errors.New("core: all of grid, cache, strategy, backend and sizer are required")
	}
	o := options{backendPenalty: 8, connectCostUnits: 4000, recycleMinBenefit: DefaultRecycleMinBenefit}
	for _, opt := range opts {
		opt(&o)
	}
	e := &Engine{
		grid:    g,
		lat:     g.Lattice(),
		cache:   c,
		strat:   s,
		back:    b,
		sizes:   sizes,
		opts:    o,
		flights: flightGroup{m: make(map[flightKey]*flightCall)},
	}
	if o.resultEntries > 0 {
		// Budget the result cache's retained bytes at a quarter of the chunk
		// cache so subsumption entries never rival the store itself.
		e.rcache = newResultCache(o.resultEntries, c.Capacity()/4)
		// Both the strategy and the result cache need eviction callbacks; the
		// store takes a single listener, so tee them. Callbacks run under the
		// shard lock — the tee fans out, it never calls back into the store.
		c.SetListener(listenerTee{s, e.rcache})
	} else {
		c.SetListener(s)
	}
	if o.metrics != nil {
		e.met = *o.metrics
	}
	if a, ok := b.(interface{ State() backend.BreakerState }); ok {
		e.avail = a
	}
	if p, ok := c.(PeerFiller); ok {
		e.peers = p
	}
	if est, ok := strategy.AsCostEstimator(s); ok {
		e.est = est
	}
	if o.recycle {
		e.recycleSeen = make(map[cache.Key]struct{})
	}
	return e, nil
}

// Grid returns the engine's chunk grid.
func (e *Engine) Grid() *chunk.Grid { return e.grid }

// Cache returns the underlying cache store (for inspection; treat as
// read-only).
func (e *Engine) Cache() cache.Store { return e.cache }

// Strategy returns the lookup strategy.
func (e *Engine) Strategy() strategy.Strategy { return e.strat }

// Stats returns a copy of the cumulative counters.
func (e *Engine) Stats() Stats { return e.stats.snapshot() }

// TierStats returns the cache store's tier counters (cold-tier hits,
// promotions, demotions, compression footprint) when the store — directly or
// behind a Peered wrapper — is tiered; ok=false for a flat store. Promote
// cost shows up in plans as cache hits whose bytes were paid once at
// promotion time, so these counters are what attributes that cost.
func (e *Engine) TierStats() (cache.TierStats, bool) {
	st := e.cache
	for {
		if ts, ok := st.(cache.TierStatser); ok {
			return ts.TierStats(), true
		}
		u, ok := st.(interface{ Local() cache.Store })
		if !ok {
			return cache.TierStats{}, false
		}
		st = u.Local()
	}
}

// Degraded reports whether the engine is in cache-only degraded mode: its
// backend carries a circuit breaker and the breaker is not closed. In that
// state cache-computable queries still succeed and backend-requiring
// queries fail fast with ErrBackendUnavailable.
func (e *Engine) Degraded() bool {
	return e.avail != nil && e.avail.State() != backend.BreakerClosed
}

// planned is one chunk of the query answerable from the cache, with the
// pinned cache keys of its plan's leaves.
type planned struct {
	idx    int
	plan   *strategy.Plan
	leaves []cache.Key
}

// computed is an interior plan result the recycler admitted, destined for
// the cache. benefit is the recompute cost the copy saves (tuples scanned),
// which the replacement policy turns into a clock weight.
type computed struct {
	key     cache.Key
	data    *chunk.Chunk
	tuples  int64
	benefit float64
}

// aggOut is the result of materializing one plan outside the cache lock.
type aggOut struct {
	data     *chunk.Chunk
	tuples   int64
	inter    []computed
	rejected int64 // interior nodes the recycler declined
	err      error
}

// Execute answers one query: probe the cache per chunk, batch the misses to
// the backend, aggregate the computable chunks in the cache, and assemble
// the answer. Concurrent calls overlap; see the Engine doc for the locking
// structure.
//
// The backend phase (and follower waits on shared flights) aborts promptly
// when ctx is cancelled or its deadline passes, so a hung backend hangs no
// query past its budget. Cache-only work is not interrupted — it completes
// in microseconds and an answer already paid for is worth returning.
func (e *Engine) Execute(ctx context.Context, q Query) (*Result, error) {
	res, err := e.execute(ctx, q)
	if err != nil {
		e.met.QueryErrors.Inc()
		switch {
		case errors.Is(err, ErrBackendUnavailable):
			e.stats.unavailable.Add(1)
			e.met.BackendUnavailable.Inc()
		case errors.Is(err, context.DeadlineExceeded):
			e.met.DeadlineExceeded.Inc()
		}
	}
	return res, err
}

// execute is Execute without the error accounting wrapper.
func (e *Engine) execute(ctx context.Context, q Query) (*Result, error) {
	nq, err := q.normalize(e.grid)
	if err != nil {
		return nil, err
	}
	nums := nq.chunkNumbers(e.grid)

	// Phase 0 — semantic result cache: an identical or containing rectangle
	// answered before skips planning, aggregation and the backend outright.
	if e.rcache != nil {
		if chunks, keys, benefit, ok := e.rcache.get(nq); ok {
			res := &Result{Query: nq, Chunks: chunks, CompleteHit: true, HitChunks: len(chunks), FromResultCache: true}
			if !e.opts.disableReinforce {
				// The contributing chunks just proved useful again; the
				// promote-on-reuse policy moves recycled ones to the
				// protected ring here.
				e.cache.Reinforce(keys, benefit)
			}
			e.stats.resultHits.Add(1)
			e.met.ResultCacheHits.Inc()
			return e.finishQuery(nq, res), nil
		}
	}

	res := &Result{Query: nq, Chunks: make([]*chunk.Chunk, len(nums))}

	var plans []*planned  // answerable from cache; leaves pinned
	var bypass []*planned // pinned, pending a §5.2 backend cost estimate
	var missing []int
	var missingIdx []int

	// Whatever happens below, release every pin still held on exit.
	defer func() {
		for _, p := range plans {
			e.unpinAll(p.leaves)
		}
		for _, p := range bypass {
			e.unpinAll(p.leaves)
		}
	}()

	// Phase 1 — lookup: one strategy probe per chunk (the paper's cache
	// lookup problem), pinning each plan's leaves so later insertions —
	// ours or a concurrent query's — cannot evict an input.
	lookupStart := time.Now()
	var lookupErr error
	for i, num := range nums {
		plan, found, err := e.strat.Find(nq.GB, num)
		switch {
		case errors.Is(err, strategy.ErrBudget):
			res.BudgetExceeded = true
			e.stats.budgetMisses.Add(1)
			e.met.BudgetMisses.Inc()
			found = false
		case err != nil:
			lookupErr = fmt.Errorf("core: lookup: %w", err)
		}
		if lookupErr != nil {
			break
		}
		if !found {
			missing = append(missing, num)
			missingIdx = append(missingIdx, i)
			continue
		}
		p := &planned{idx: i, plan: plan, leaves: plan.Leaves(nil)}
		if !e.pinAll(p.leaves) {
			// A leaf the strategy believed resident was evicted between the
			// lookup and the pin (the strategy's summary state and the cache
			// are updated under different locks, so a brief window exists).
			// Fall back to fetching the chunk, not failing the query.
			missing = append(missing, num)
			missingIdx = append(missingIdx, i)
			continue
		}
		if e.opts.costBypass && plan.Cost > int64(e.opts.connectCostUnits) {
			// §5.2 optimizer: only worth a backend estimate when the plan
			// is at least as expensive as a backend round trip. The
			// estimate itself is a backend call, so it runs after the
			// lookup loop.
			bypass = append(bypass, p)
		} else {
			plans = append(plans, p)
		}
	}
	if lookupErr != nil {
		return nil, lookupErr
	}

	// Phase 1b — resolve bypass candidates against the backend's estimated
	// cost; demoted chunks join the miss list. All candidates ship as one
	// batched EstimateScans round trip — the per-chunk estimates come back
	// in request order — so the probe costs one exchange however many
	// chunks the optimizer wants priced. An estimate failure keeps every
	// candidate on its cache plan: the bypass is an optimization, never a
	// correctness dependency.
	if len(bypass) > 0 {
		var demoted []*planned
		bnums := make([]int, len(bypass))
		for i, p := range bypass {
			bnums[i] = nums[p.idx]
		}
		ests, eerr := e.back.EstimateScans(ctx, nq.GB, bnums)
		if eerr != nil || len(ests) != len(bypass) {
			ests = nil
		}
		for i, p := range bypass {
			if ests != nil && float64(p.plan.Cost) > float64(ests[i])*e.opts.backendPenalty+e.opts.connectCostUnits {
				demoted = append(demoted, p)
			} else {
				plans = append(plans, p)
			}
		}
		bypass = nil
		if len(demoted) > 0 {
			for _, p := range demoted {
				e.unpinAll(p.leaves)
				p.leaves = nil
				missing = append(missing, nums[p.idx])
				missingIdx = append(missingIdx, p.idx)
			}
			res.Bypassed += len(demoted)
			e.stats.bypassed.Add(int64(len(demoted)))
			e.met.Bypassed.Add(int64(len(demoted)))
		}
	}
	res.Breakdown.Lookup = time.Since(lookupStart)
	res.HitChunks = len(plans)
	res.MissChunks = len(missing)
	res.CompleteHit = len(missing) == 0
	for _, p := range plans {
		if !p.plan.Present {
			res.AggChunks++
		}
	}

	// Phase 2 — backend: one batched request for all missing chunks (the
	// paper issues one SQL statement for the missing chunk numbers),
	// deduplicated against identical in-flight fetches.
	if len(missing) > 0 {
		if err := e.fetchMissing(ctx, nq.GB, missing, missingIdx, res, 0); err != nil {
			return nil, err
		}
	}

	// Phase 3 — aggregate computable chunks. 3a snapshots the pinned leaf
	// payloads (chunk payloads are immutable, so the pointers stay valid
	// after each Get returns); 3b aggregates across a bounded worker pool;
	// 3c installs the computed chunks and reinforces their input groups.
	if len(plans) > 0 {
		leafData := make(map[cache.Key]*chunk.Chunk)
		var snapErr error
		for _, p := range plans {
			if snapErr = e.snapshotLeaves(p.plan, leafData); snapErr != nil {
				break
			}
		}
		if snapErr != nil {
			return nil, snapErr
		}

		aggStart := time.Now()
		outs := make([]aggOut, len(plans))
		if workers := min(len(plans), runtime.GOMAXPROCS(0)); workers > 1 {
			var cursor atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(cursor.Add(1)) - 1
						if i >= len(plans) {
							return
						}
						outs[i] = e.runPlan(plans[i].plan, leafData)
					}
				}()
			}
			wg.Wait()
		} else {
			for i, p := range plans {
				outs[i] = e.runPlan(p.plan, leafData)
			}
		}
		res.Breakdown.Aggregate = time.Since(aggStart)
		for _, out := range outs {
			if out.err != nil {
				return nil, out.err
			}
		}

		m0 := e.strat.Maintenance()
		var rejected int64
		for i, out := range outs {
			p := plans[i]
			res.Chunks[p.idx] = out.data
			res.AggregatedTuples += out.tuples
			if p.plan.Present {
				continue
			}
			rejected += out.rejected
			for _, ic := range out.inter {
				// Recycled intermediates enter as computed-class residents
				// with the Recycled mark: they can never displace the
				// backend-class hot set, a Peered store never replicates
				// them to ring owners, and strategies maintain them with
				// presence-only (O(1)) bookkeeping.
				if e.cache.Insert(ic.key, ic.data, cache.AsRecycled(ic.benefit)) {
					res.RecycledChunks++
					e.stats.recycled.Add(1)
					e.met.RecycledChunks.Inc()
				}
			}
			benefit := float64(out.tuples)
			rootKey := cache.Key{GB: nq.GB, Num: int32(p.plan.Num)}
			e.cache.Insert(rootKey, out.data, cache.AsComputed(benefit))
			if !e.opts.disableReinforce {
				// The root served the query that created it, so it counts as
				// reused on arrival: reinforcing it alongside the leaves lifts
				// it out of the promote policy's probationary tier, leaving
				// only speculative recycled intermediates probationary.
				e.cache.Reinforce(append(p.leaves, rootKey), benefit)
			}
		}
		if rejected > 0 {
			e.stats.recycleRejects.Add(rejected)
			e.met.RecycleRejected.Add(rejected)
		}
		m1 := e.strat.Maintenance()
		// The delta attributes this query's insert maintenance (Figure 10's
		// "update" component). With other queries inserting concurrently the
		// window can include some of their work, so under concurrency the
		// attribution is approximate; the cumulative engine totals stay
		// exact.
		res.Breakdown.Update += m1.Sub(m0).Time
	}

	// Remember the untrimmed, chunk-aligned answer for repeated or contained
	// rectangles — but only answers that did real work (aggregation or a
	// backend trip); pure present-chunk hits are already as cheap as the
	// result cache would make them.
	if e.rcache != nil && len(nums) > 0 && (res.AggChunks > 0 || res.MissChunks > 0) && !res.BudgetExceeded {
		e.rememberResult(nq, nums, res)
	}

	return e.finishQuery(nq, res), nil
}

// rememberResult registers a finished answer with the semantic result cache
// and re-verifies, after registration, that every contributing chunk is
// still resident — an eviction racing the put would otherwise leave a
// registered entry the listener never saw. The order matters: register
// first, then check, so a concurrent eviction either fires the listener on
// the registered entry or is caught by the re-check.
func (e *Engine) rememberResult(nq Query, nums []int, res *Result) {
	keys := make([]cache.Key, len(nums))
	for i, num := range nums {
		keys[i] = cache.Key{GB: nq.GB, Num: int32(num)}
	}
	benefit := float64(res.AggregatedTuples)
	if benefit == 0 {
		benefit = float64(res.BackendTuples) * e.opts.backendPenalty
	}
	entry := e.rcache.put(nq, append([]*chunk.Chunk(nil), res.Chunks...), keys, benefit)
	if entry == nil {
		return
	}
	for _, k := range keys {
		if !e.cache.Contains(k) {
			e.rcache.drop(entry)
			return
		}
	}
}

// finishQuery applies member trimming and the per-query accounting shared by
// the regular path and the result-cache fast path.
func (e *Engine) finishQuery(nq Query, res *Result) *Result {
	if nq.MemberRanges != nil {
		for i, c := range res.Chunks {
			res.Chunks[i] = e.grid.Slice(c, nq.MemberRanges)
		}
	}

	e.stats.queries.Add(1)
	if res.CompleteHit {
		e.stats.completeHits.Add(1)
		if e.Degraded() {
			// The backend is unreachable but the cache answered anyway —
			// the availability win degraded mode exists for.
			res.Degraded = true
			e.stats.degradedHits.Add(1)
			e.met.DegradedAnswers.Inc()
		}
	}
	e.stats.aggTuples.Add(res.AggregatedTuples)
	e.stats.peerChunks.Add(int64(res.PeerChunks))
	e.stats.lookupNS.Add(int64(res.Breakdown.Lookup))
	e.stats.aggNS.Add(int64(res.Breakdown.Aggregate))
	e.stats.updateNS.Add(int64(res.Breakdown.Update))
	e.stats.backendNS.Add(int64(res.Breakdown.Backend))
	e.observe(res)
	return res
}

// observe publishes one answered query to the live metrics. Every handle is
// a preallocated atomic, so the whole call is branch-and-add when metrics
// are attached and pure nil checks when they are not; phase histograms only
// record phases the query actually ran, so quantiles are not diluted by
// zeros.
func (e *Engine) observe(res *Result) {
	e.met.Queries.Inc()
	if res.CompleteHit {
		e.met.CompleteHits.Inc()
	}
	e.met.ChunksHit.Add(int64(res.HitChunks - res.AggChunks))
	e.met.ChunksAggregated.Add(int64(res.AggChunks))
	e.met.ChunksFetched.Add(int64(res.MissChunks - res.PeerChunks))
	e.met.ChunksPeerFilled.Add(int64(res.PeerChunks))
	e.met.AggregatedTuples.Add(res.AggregatedTuples)
	e.met.Lookup.Observe(res.Breakdown.Lookup)
	if res.HitChunks > 0 {
		e.met.Aggregate.Observe(res.Breakdown.Aggregate)
	}
	if res.Breakdown.Update > 0 {
		e.met.Update.Observe(res.Breakdown.Update)
	}
	if res.MissChunks > 0 {
		e.met.Backend.Observe(res.Breakdown.Backend)
	}
	e.met.Query.Observe(res.Breakdown.Total())
}

// pinAll pins every key, rolling back already-taken pins on the first
// failure.
func (e *Engine) pinAll(keys []cache.Key) bool {
	for i, k := range keys {
		if !e.cache.Pin(k) {
			for _, u := range keys[:i] {
				e.cache.Unpin(u)
			}
			return false
		}
	}
	return true
}

// unpinAll releases one pin per key.
func (e *Engine) unpinAll(keys []cache.Key) {
	for _, k := range keys {
		e.cache.Unpin(k)
	}
}

// snapshotLeaves records the payload of every present leaf of the plan,
// counting one cache hit per leaf occurrence as the serial engine did. The
// leaves are pinned, so a missing one is a bug.
func (e *Engine) snapshotLeaves(p *strategy.Plan, m map[cache.Key]*chunk.Chunk) error {
	if p.Present {
		k := cache.Key{GB: p.GB, Num: int32(p.Num)}
		data, ok := e.cache.Get(k)
		if !ok {
			return fmt.Errorf("core: plan leaf %v vanished from the cache", k)
		}
		m[k] = data
		return nil
	}
	for _, in := range p.Inputs {
		if err := e.snapshotLeaves(in, m); err != nil {
			return err
		}
	}
	return nil
}

// runPlan materializes one plan from snapshotted leaf payloads.
func (e *Engine) runPlan(p *strategy.Plan, leafData map[cache.Key]*chunk.Chunk) aggOut {
	var out aggOut
	out.data, out.tuples, _, out.err = e.aggregate(p, leafData, &out, true)
	return out
}

// aggregate executes a plan bottom-up from the snapshotted leaf payloads —
// pure computation over immutable chunks, touching no shared state.
// Interior results the recycler admits are collected (bottom-up) into
// out.inter for insertion under the lock.
//
// Accumulators come from the chunk package's pool, and interior results that
// nothing retains (root==false, recycler declined) are built into pooled
// scratch chunks released as soon as the parent roll-up consumes them; the
// returned pooled flag tells the caller it owns such a release. Chunks that
// outlive the plan run — the root result, which lands in the Result and the
// cache, and admitted intermediates — are always built fresh.
func (e *Engine) aggregate(p *strategy.Plan, leafData map[cache.Key]*chunk.Chunk, out *aggOut, root bool) (data *chunk.Chunk, tuples int64, pooled bool, err error) {
	k := cache.Key{GB: p.GB, Num: int32(p.Num)}
	if p.Present {
		data, ok := leafData[k]
		if !ok {
			return nil, 0, false, fmt.Errorf("core: plan leaf %v vanished from the cache", k)
		}
		return data, 0, false, nil
	}
	cm := e.grid.GetCellMap(p.GB, p.Num)
	defer chunk.PutCellMap(cm)
	for _, in := range p.Inputs {
		sub, subTuples, subPooled, err := e.aggregate(in, leafData, out, false)
		if err != nil {
			return nil, 0, false, err
		}
		tuples += subTuples
		scanned, err := e.grid.RollUpInto(cm, p.GB, p.Num, sub)
		if subPooled {
			chunk.PutScratchChunk(sub)
		}
		if err != nil {
			return nil, 0, false, fmt.Errorf("core: aggregation: %w", err)
		}
		tuples += int64(scanned)
	}
	if root {
		return cm.Build(p.GB, p.Num), tuples, false, nil
	}
	if admit, benefit := e.recycleScore(p.GB, p.Num, tuples, cm.Len()); admit {
		data = cm.Build(p.GB, p.Num)
		out.inter = append(out.inter, computed{key: k, data: data, tuples: tuples, benefit: benefit})
		return data, tuples, false, nil
	}
	if e.opts.recycle {
		out.rejected++
	}
	return cm.BuildInto(p.GB, p.Num, chunk.GetScratchChunk()), tuples, true, nil
}
