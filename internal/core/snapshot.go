package core

import (
	"fmt"
	"io"
	"sort"

	"aggcache/internal/cache"
)

// SaveCache writes the cache contents (chunk payloads, classes, benefits,
// recycled marks) to w in the cache package's snapshot-log format, so a
// middle tier can restart warm. Replacement state (clock weights, ring
// membership) is not preserved; reloaded chunks start fresh.
func (e *Engine) SaveCache(w io.Writer) error {
	if _, err := cache.WriteSnapshot(w, e.cache); err != nil {
		return fmt.Errorf("core: save cache: %w", err)
	}
	return nil
}

// LoadCache restores a snapshot written by SaveCache into the engine's
// cache, re-inserting every chunk through the normal admission path so the
// lookup strategy's counts and costs are maintained. Entries are admitted in
// descending benefit order: the most valuable chunks land in the hot tier
// first, and whatever overflows a smaller-than-at-save-time cache demotes or
// is denied in benefit order rather than file order. It returns the number
// of chunks admitted.
//
// A corrupt record (torn tail from a crash mid-write, flipped bit) stops the
// scan: the valid prefix is admitted and the cache.ErrSnapshot-wrapped error
// is returned alongside the count, so the caller can choose a partially warm
// cache over a cold one.
func (e *Engine) LoadCache(r io.Reader) (int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, fmt.Errorf("core: load cache: %w", err)
	}
	return e.loadSnapshot(data)
}

// LoadCacheFile is LoadCache over a snapshot file, memory-mapping it where
// the platform allows so a multi-gigabyte log is not double-buffered through
// the heap. A missing file is reported as os.ErrNotExist.
func (e *Engine) LoadCacheFile(path string) (int, error) {
	var entries []cache.SnapshotEntry
	var verr error
	err := cache.LoadSnapshotFile(path, func(se cache.SnapshotEntry) error {
		if verr = e.validateSnapshotEntry(se); verr != nil {
			return verr
		}
		entries = append(entries, se)
		return nil
	})
	if verr != nil {
		return 0, verr
	}
	n := e.admitSnapshotEntries(entries)
	if err != nil {
		return n, fmt.Errorf("core: load cache: %w", err)
	}
	return n, nil
}

// loadSnapshot parses and admits a whole in-memory snapshot log; see
// LoadCache for the partial-load contract.
func (e *Engine) loadSnapshot(data []byte) (int, error) {
	var entries []cache.SnapshotEntry
	var verr error
	err := cache.ReadSnapshot(data, func(se cache.SnapshotEntry) error {
		if verr = e.validateSnapshotEntry(se); verr != nil {
			return verr
		}
		entries = append(entries, se)
		return nil
	})
	if verr != nil {
		return 0, verr
	}
	n := e.admitSnapshotEntries(entries)
	if err != nil {
		return n, fmt.Errorf("core: load cache: %w", err)
	}
	return n, nil
}

// validateSnapshotEntry rejects records that do not fit this engine's grid —
// a snapshot from a different schema or scale must not be admitted.
func (e *Engine) validateSnapshotEntry(se cache.SnapshotEntry) error {
	lat := e.grid.Lattice()
	if int(se.Key.GB) < 0 || int(se.Key.GB) >= lat.NumNodes() {
		return fmt.Errorf("core: snapshot entry %v outside the lattice", se.Key)
	}
	if se.Data == nil || int(se.Key.Num) < 0 || int(se.Key.Num) >= e.grid.NumChunks(se.Key.GB) {
		return fmt.Errorf("core: snapshot entry %v is corrupt", se.Key)
	}
	return nil
}

// admitSnapshotEntries reinserts entries in descending benefit order and
// returns how many the store admitted.
func (e *Engine) admitSnapshotEntries(entries []cache.SnapshotEntry) int {
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Benefit > entries[j].Benefit })
	admitted := 0
	for _, se := range entries {
		var opt cache.InsertOption
		switch {
		case se.Recycled:
			opt = cache.AsRecycled(se.Benefit)
		case se.Class == cache.ClassComputed:
			opt = cache.AsComputed(se.Benefit)
		default:
			opt = cache.AsBackend(se.Benefit)
		}
		if e.cache.Insert(se.Key, se.Data, opt) {
			admitted++
		}
	}
	return admitted
}

// SaveCacheFile writes a snapshot of the cache to path atomically (temp file
// + rename), returning the number of records written. A crash mid-save
// leaves any previous snapshot at path intact.
func (e *Engine) SaveCacheFile(path string) (int, error) {
	n, err := cache.SaveSnapshotFile(path, e.cache)
	if err != nil {
		return n, fmt.Errorf("core: save cache: %w", err)
	}
	return n, nil
}
