package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"aggcache/internal/cache"
	"aggcache/internal/chunk"
)

// snapEntry is one cached chunk in a snapshot.
type snapEntry struct {
	Key     cache.Key
	Class   cache.Class
	Benefit float64
	Data    *chunk.Chunk
}

// snapshot is the on-disk cache image written by SaveCache.
type snapshot struct {
	Magic   string
	Entries []snapEntry
}

const snapshotMagic = "aggcache-snapshot-v1"

// SaveCache writes the cache contents (chunk payloads, classes, benefits)
// to w, so a middle tier can restart warm. Replacement state (clock
// weights) is not preserved; reloaded chunks start fresh.
func (e *Engine) SaveCache(w io.Writer) error {
	snap := snapshot{Magic: snapshotMagic}
	e.cache.Range(func(k cache.Key, data *chunk.Chunk, cl cache.Class, benefit float64) {
		snap.Entries = append(snap.Entries, snapEntry{Key: k, Class: cl, Benefit: benefit, Data: data})
	})
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("core: save cache: %w", err)
	}
	return nil
}

// LoadCache restores a snapshot written by SaveCache into the engine's
// cache, re-inserting every chunk through the normal admission path so the
// lookup strategy's counts and costs are maintained. It returns the number
// of chunks admitted (the policy may deny some if the cache is smaller than
// it was at save time).
func (e *Engine) LoadCache(r io.Reader) (int, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return 0, fmt.Errorf("core: load cache: %w", err)
	}
	if snap.Magic != snapshotMagic {
		return 0, fmt.Errorf("core: not a cache snapshot (magic %q)", snap.Magic)
	}
	lat := e.grid.Lattice()
	admitted := 0
	for _, se := range snap.Entries {
		if int(se.Key.GB) < 0 || int(se.Key.GB) >= lat.NumNodes() {
			return admitted, fmt.Errorf("core: snapshot entry %v outside the lattice", se.Key)
		}
		if se.Data == nil || int(se.Key.Num) >= e.grid.NumChunks(se.Key.GB) {
			return admitted, fmt.Errorf("core: snapshot entry %v is corrupt", se.Key)
		}
		if e.cache.Insert(se.Key, se.Data, se.Class, se.Benefit) {
			admitted++
		}
	}
	return admitted, nil
}
