// Package workload generates the paper's OLAP query streams (§7.2): a mix
// of random, drill-down, roll-up and proximity queries. Roll-ups are the
// queries an active cache answers by aggregation; proximity queries exercise
// plain chunk locality; drill-downs move toward detail and usually need the
// backend.
package workload

import (
	"fmt"
	"math/rand"

	"aggcache/internal/chunk"
	"aggcache/internal/core"
	"aggcache/internal/lattice"
)

// Kind labels a generated query.
type Kind int

const (
	// KindRandom is a fresh query at a random group-by and region.
	KindRandom Kind = iota
	// KindDrillDown refines the previous query one level on one dimension.
	KindDrillDown
	// KindRollUp aggregates the previous query one level on one dimension.
	KindRollUp
	// KindProximity shifts the previous query's region by one chunk.
	KindProximity
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRandom:
		return "random"
	case KindDrillDown:
		return "drill-down"
	case KindRollUp:
		return "roll-up"
	case KindProximity:
		return "proximity"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Mix sets the fraction of each query kind. The paper uses 30% drill-down,
// 30% roll-up, 30% proximity and 10% random.
type Mix struct {
	DrillDown, RollUp, Proximity, Random float64
}

// DefaultMix is the paper's stream composition.
var DefaultMix = Mix{DrillDown: 0.3, RollUp: 0.3, Proximity: 0.3, Random: 0.1}

func (m Mix) total() float64 { return m.DrillDown + m.RollUp + m.Proximity + m.Random }

// Generator produces a deterministic query stream.
type Generator struct {
	grid *chunk.Grid
	lat  *lattice.Lattice
	rng  *rand.Rand
	mix  Mix
	// maxWidth bounds the per-dimension chunk extent of generated regions.
	maxWidth int32
	cur      core.Query
	hasCur   bool
}

// NewGenerator creates a generator with the given mix; maxWidth bounds the
// region extent per dimension in chunks (≥1).
func NewGenerator(g *chunk.Grid, mix Mix, maxWidth int, seed int64) (*Generator, error) {
	if mix.total() <= 0 {
		return nil, fmt.Errorf("workload: mix weights must be positive")
	}
	if mix.DrillDown < 0 || mix.RollUp < 0 || mix.Proximity < 0 || mix.Random < 0 {
		return nil, fmt.Errorf("workload: negative mix weight")
	}
	if maxWidth < 1 {
		return nil, fmt.Errorf("workload: maxWidth must be ≥ 1, got %d", maxWidth)
	}
	return &Generator{
		grid:     g,
		lat:      g.Lattice(),
		rng:      rand.New(rand.NewSource(seed)),
		mix:      mix,
		maxWidth: int32(maxWidth),
	}, nil
}

// Next generates the next query and reports its kind. The first query is
// always random; locality kinds that are impossible at the current position
// (e.g. rolling up from the top) degrade to random.
func (g *Generator) Next() (core.Query, Kind) {
	kind := g.pick()
	if !g.hasCur {
		kind = KindRandom
	}
	var q core.Query
	var ok bool
	switch kind {
	case KindDrillDown:
		q, ok = g.drillDown()
	case KindRollUp:
		q, ok = g.rollUp()
	case KindProximity:
		q, ok = g.proximity()
	default:
		ok = false
	}
	if !ok {
		q = g.random()
		kind = KindRandom
	}
	g.cur = q
	g.hasCur = true
	return q, kind
}

// Stream generates n queries with their kinds.
func (g *Generator) Stream(n int) ([]core.Query, []Kind) {
	qs := make([]core.Query, n)
	ks := make([]Kind, n)
	for i := 0; i < n; i++ {
		qs[i], ks[i] = g.Next()
	}
	return qs, ks
}

func (g *Generator) pick() Kind {
	r := g.rng.Float64() * g.mix.total()
	switch {
	case r < g.mix.DrillDown:
		return KindDrillDown
	case r < g.mix.DrillDown+g.mix.RollUp:
		return KindRollUp
	case r < g.mix.DrillDown+g.mix.RollUp+g.mix.Proximity:
		return KindProximity
	}
	return KindRandom
}

func (g *Generator) random() core.Query {
	gb := lattice.ID(g.rng.Intn(g.lat.NumNodes()))
	lv := g.lat.Level(gb)
	nd := g.grid.Schema().NumDims()
	lo := make([]int32, nd)
	hi := make([]int32, nd)
	for d := 0; d < nd; d++ {
		n := int32(g.grid.ChunkCount(d, lv[d]))
		w := 1 + g.rng.Int31n(min32(g.maxWidth, n))
		a := g.rng.Int31n(n - w + 1)
		lo[d], hi[d] = a, a+w
	}
	return core.Query{GB: gb, Lo: lo, Hi: hi}
}

// drillDown moves one level more detailed on a random dimension, mapping the
// region down and trimming it back to maxWidth.
func (g *Generator) drillDown() (core.Query, bool) {
	lv := g.lat.Level(g.cur.GB)
	dims := g.candidateDims(func(d int) bool { return lv[d] < g.grid.Schema().Dim(d).Hierarchy() })
	if len(dims) == 0 {
		return core.Query{}, false
	}
	d := dims[g.rng.Intn(len(dims))]
	parent := g.lat.MustID(levelWith(lv, d, lv[d]+1)...)
	lo := append([]int32(nil), g.cur.Lo...)
	hi := append([]int32(nil), g.cur.Hi...)
	rLo := g.grid.DimParentRange(d, lv[d], lo[d])
	rHi := g.grid.DimParentRange(d, lv[d], hi[d]-1)
	lo[d], hi[d] = rLo.Lo, rHi.Hi
	// Keep the drilled region bounded, anchored at a random offset.
	if hi[d]-lo[d] > g.maxWidth {
		off := g.rng.Int31n(hi[d] - lo[d] - g.maxWidth + 1)
		lo[d] += off
		hi[d] = lo[d] + g.maxWidth
	}
	return core.Query{GB: parent, Lo: lo, Hi: hi}, true
}

// rollUp moves one level more aggregated on a random dimension, mapping the
// region up.
func (g *Generator) rollUp() (core.Query, bool) {
	lv := g.lat.Level(g.cur.GB)
	dims := g.candidateDims(func(d int) bool { return lv[d] > 0 })
	if len(dims) == 0 {
		return core.Query{}, false
	}
	d := dims[g.rng.Intn(len(dims))]
	child := g.lat.MustID(levelWith(lv, d, lv[d]-1)...)
	lo := append([]int32(nil), g.cur.Lo...)
	hi := append([]int32(nil), g.cur.Hi...)
	lo[d] = g.grid.DimChildChunk(d, lv[d], lo[d])
	hi[d] = g.grid.DimChildChunk(d, lv[d], hi[d]-1) + 1
	return core.Query{GB: child, Lo: lo, Hi: hi}, true
}

// proximity shifts the region by one chunk along a random dimension.
func (g *Generator) proximity() (core.Query, bool) {
	lv := g.lat.Level(g.cur.GB)
	lo := append([]int32(nil), g.cur.Lo...)
	hi := append([]int32(nil), g.cur.Hi...)
	dims := g.candidateDims(func(d int) bool { return g.grid.ChunkCount(d, lv[d]) > 1 })
	if len(dims) == 0 {
		return core.Query{}, false
	}
	d := dims[g.rng.Intn(len(dims))]
	n := int32(g.grid.ChunkCount(d, lv[d]))
	delta := int32(1)
	if g.rng.Intn(2) == 0 {
		delta = -1
	}
	if lo[d]+delta < 0 || hi[d]+delta > n {
		delta = -delta
		if lo[d]+delta < 0 || hi[d]+delta > n {
			return core.Query{}, false
		}
	}
	lo[d] += delta
	hi[d] += delta
	return core.Query{GB: g.cur.GB, Lo: lo, Hi: hi}, true
}

func (g *Generator) candidateDims(pred func(d int) bool) []int {
	var dims []int
	for d := 0; d < g.grid.Schema().NumDims(); d++ {
		if pred(d) {
			dims = append(dims, d)
		}
	}
	return dims
}

func levelWith(lv []int, d, v int) []int {
	out := append([]int(nil), lv...)
	out[d] = v
	return out
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
