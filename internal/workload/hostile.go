package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"aggcache/internal/chunk"
	"aggcache/internal/core"
)

// This file holds the hostile traffic sources the overload harness drives:
// streams deliberately shaped to hurt a cache — extreme hot-key skew that
// turns one region into a convoy, flash crowds that stampede a fresh
// hotspot before it is cached, scan floods that maximize backend work per
// query, and multi-tenant mixes where one tenant tries to starve the
// others. They share the Source interface so the soak and bench harnesses
// can swap attack shapes without caring which one they got.

// Source produces an endless query stream. The paper-mix Generator and
// every hostile source implement it.
type Source interface {
	Next() core.Query
}

// sourceFunc adapts a closure to Source.
type sourceFunc func() core.Query

func (f sourceFunc) Next() core.Query { return f() }

// AsSource adapts the paper-mix Generator to the Source interface,
// discarding the kind label.
func AsSource(g *Generator) Source {
	return sourceFunc(func() core.Query { q, _ := g.Next(); return q })
}

// FormatQuery renders a core.Query back into mdq text — the form the
// middle-tier wire protocol carries — listing every dimension in BY and
// emitting WHERE predicates only for dimensions the query restricts.
// Compiling the result reproduces the query's group-by and chunk region,
// so generated streams can drive the server exactly as a real client
// would.
func FormatQuery(g *chunk.Grid, q core.Query) string {
	sch := g.Schema()
	lv := g.Lattice().Level(q.GB)
	var b strings.Builder
	fmt.Fprintf(&b, "SUM(%s) BY ", sch.Measure())
	for d := 0; d < sch.NumDims(); d++ {
		if d > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", sch.Dim(d).Name(), sch.Dim(d).LevelName(lv[d]))
	}
	wrote := false
	for d := 0; d < sch.NumDims(); d++ {
		if q.Lo[d] == 0 && int(q.Hi[d]) == g.ChunkCount(d, lv[d]) {
			continue // whole dimension; no predicate needed
		}
		// Chunk ranges are half-open; mdq member ranges are inclusive.
		mlo := g.MemberRange(d, lv[d], q.Lo[d]).Lo
		mhi := g.MemberRange(d, lv[d], q.Hi[d]-1).Hi - 1
		if wrote {
			b.WriteString(" AND ")
		} else {
			b.WriteString(" WHERE ")
			wrote = true
		}
		fmt.Fprintf(&b, "%s:%s IN %d..%d", sch.Dim(d).Name(), sch.Dim(d).LevelName(lv[d]), mlo, mhi)
	}
	return b.String()
}

// NewZipf builds a hot-key source: a fixed pool of random queries drawn
// once, then replayed under a Zipf(s) popularity law, so a handful of pool
// entries dominate the stream the way a viral dashboard dominates real
// traffic. s must be > 1 (rand.Zipf's constraint); larger s means sharper
// skew. poolSize must be ≥ 1.
func NewZipf(g *chunk.Grid, poolSize int, s float64, seed int64) (Source, error) {
	if poolSize < 1 {
		return nil, fmt.Errorf("workload: zipf pool size must be ≥ 1, got %d", poolSize)
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf s must be > 1, got %v", s)
	}
	gen, err := NewGenerator(g, Mix{Random: 1}, 2, seed)
	if err != nil {
		return nil, err
	}
	pool, _ := gen.Stream(poolSize)
	rng := rand.New(rand.NewSource(seed + 1))
	z := rand.NewZipf(rng, s, 1, uint64(poolSize-1))
	return sourceFunc(func() core.Query { return pool[z.Uint64()] }), nil
}

// NewFlashCrowd builds a stampede source: every call returns the current
// hotspot query, and the hotspot moves to a fresh random query every
// period calls — so each rotation, the full crowd lands on a query nothing
// has cached yet. period must be ≥ 1.
func NewFlashCrowd(g *chunk.Grid, period int, seed int64) (Source, error) {
	if period < 1 {
		return nil, fmt.Errorf("workload: flash crowd period must be ≥ 1, got %d", period)
	}
	gen, err := NewGenerator(g, Mix{Random: 1}, 2, seed)
	if err != nil {
		return nil, err
	}
	var (
		n   int
		cur core.Query
	)
	return sourceFunc(func() core.Query {
		if n%period == 0 {
			cur, _ = gen.Next()
		}
		n++
		return cur
	}), nil
}

// NewScanFlood builds a worst-case-cost source: every query groups at the
// most detailed level of every dimension and sweeps a wide random window,
// maximizing backend tuples scanned per query while the shifting windows
// defeat chunk reuse. width is the region extent per dimension in chunks
// (≥ 1); windows are clamped to the grid.
func NewScanFlood(g *chunk.Grid, width int, seed int64) (Source, error) {
	if width < 1 {
		return nil, fmt.Errorf("workload: scan flood width must be ≥ 1, got %d", width)
	}
	sch := g.Schema()
	nd := sch.NumDims()
	detail := make([]int, nd)
	for d := 0; d < nd; d++ {
		detail[d] = sch.Dim(d).Hierarchy()
	}
	gb, err := g.Lattice().IDOf(detail)
	if err != nil {
		return nil, fmt.Errorf("workload: scan flood group-by: %w", err)
	}
	rng := rand.New(rand.NewSource(seed))
	return sourceFunc(func() core.Query {
		lo := make([]int32, nd)
		hi := make([]int32, nd)
		for d := 0; d < nd; d++ {
			n := int32(g.ChunkCount(d, detail[d]))
			w := min32(int32(width), n)
			a := rng.Int31n(n - w + 1)
			lo[d], hi[d] = a, a+w
		}
		return core.Query{GB: gb, Lo: lo, Hi: hi}
	}), nil
}

// Tenant is one participant in a multi-tenant mix: a named source with a
// share of the combined stream.
type Tenant struct {
	// Name keys the server's per-tenant quotas.
	Name string
	// Weight is the tenant's share of the stream (relative, > 0).
	Weight float64
	// Source produces the tenant's queries.
	Source Source
}

// TenantMix interleaves several tenants' streams by weight, modeling the
// noisy-neighbor scenario: an aggressive tenant (say a scan flood at high
// weight) sharing the server with well-behaved ones.
type TenantMix struct {
	rng     *rand.Rand
	tenants []Tenant
	total   float64
}

// NewTenantMix builds a weighted multi-tenant source.
func NewTenantMix(tenants []Tenant, seed int64) (*TenantMix, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("workload: tenant mix needs at least one tenant")
	}
	var total float64
	for _, t := range tenants {
		if t.Weight <= 0 {
			return nil, fmt.Errorf("workload: tenant %q weight must be > 0, got %v", t.Name, t.Weight)
		}
		if t.Source == nil {
			return nil, fmt.Errorf("workload: tenant %q has no source", t.Name)
		}
		total += t.Weight
	}
	return &TenantMix{rng: rand.New(rand.NewSource(seed)), tenants: tenants, total: total}, nil
}

// Next returns the next query and the tenant it belongs to.
func (m *TenantMix) Next() (string, core.Query) {
	r := m.rng.Float64() * m.total
	for _, t := range m.tenants {
		if r < t.Weight {
			return t.Name, t.Source.Next()
		}
		r -= t.Weight
	}
	t := m.tenants[len(m.tenants)-1]
	return t.Name, t.Source.Next()
}
