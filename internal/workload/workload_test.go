package workload

import (
	"testing"

	"aggcache/internal/apb"
	"aggcache/internal/chunk"
	"aggcache/internal/core"
)

func tinyGrid(t testing.TB) *chunk.Grid {
	t.Helper()
	cfg := apb.New(apb.ScaleTiny)
	g, err := chunk.NewGrid(cfg.Schema, cfg.ChunkCounts)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	return g
}

func TestGeneratorProducesValidQueries(t *testing.T) {
	g := tinyGrid(t)
	gen, err := NewGenerator(g, DefaultMix, 2, 7)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	qs, ks := gen.Stream(500)
	if len(qs) != 500 || len(ks) != 500 {
		t.Fatalf("stream sizes %d/%d", len(qs), len(ks))
	}
	for i, q := range qs {
		if _, err := q.NumChunks(g); err != nil {
			t.Fatalf("query %d invalid: %v (%+v)", i, err, q)
		}
	}
	if ks[0] != KindRandom {
		t.Fatalf("first query kind = %v, want random", ks[0])
	}
}

func TestGeneratorMixRoughlyHonored(t *testing.T) {
	g := tinyGrid(t)
	gen, _ := NewGenerator(g, DefaultMix, 2, 11)
	_, ks := gen.Stream(4000)
	counts := map[Kind]int{}
	for _, k := range ks {
		counts[k]++
	}
	// Drill-down/roll-up/proximity degrade to random when impossible, so
	// random can exceed its 10% share; the locality kinds must still be
	// well represented.
	for _, k := range []Kind{KindDrillDown, KindRollUp, KindProximity} {
		frac := float64(counts[k]) / 4000
		if frac < 0.15 || frac > 0.45 {
			t.Fatalf("kind %v fraction %.2f outside [0.15,0.45] (counts %v)", k, frac, counts)
		}
	}
	if counts[KindRandom] == 0 {
		t.Fatalf("no random queries at all")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g := tinyGrid(t)
	a, _ := NewGenerator(g, DefaultMix, 2, 5)
	b, _ := NewGenerator(g, DefaultMix, 2, 5)
	qa, ka := a.Stream(100)
	qb, kb := b.Stream(100)
	for i := range qa {
		if ka[i] != kb[i] || qa[i].GB != qb[i].GB {
			t.Fatalf("stream diverged at %d", i)
		}
		for d := range qa[i].Lo {
			if qa[i].Lo[d] != qb[i].Lo[d] || qa[i].Hi[d] != qb[i].Hi[d] {
				t.Fatalf("bounds diverged at %d", i)
			}
		}
	}
}

func TestGeneratorLocalityTransitions(t *testing.T) {
	g := tinyGrid(t)
	lat := g.Lattice()
	gen, _ := NewGenerator(g, DefaultMix, 2, 13)
	var prev core.Query
	qs, ks := gen.Stream(800)
	for i, q := range qs {
		if i == 0 {
			prev = q
			continue
		}
		lvPrev := lat.Level(prev.GB)
		lv := lat.Level(q.GB)
		switch ks[i] {
		case KindDrillDown:
			if sum(lv) != sum(lvPrev)+1 {
				t.Fatalf("query %d: drill-down level sum %d -> %d", i, sum(lvPrev), sum(lv))
			}
		case KindRollUp:
			if sum(lv) != sum(lvPrev)-1 {
				t.Fatalf("query %d: roll-up level sum %d -> %d", i, sum(lvPrev), sum(lv))
			}
		case KindProximity:
			if q.GB != prev.GB {
				t.Fatalf("query %d: proximity changed group-by", i)
			}
			// Exactly one dimension shifted by one chunk.
			shifts := 0
			for d := range q.Lo {
				if q.Lo[d] != prev.Lo[d] {
					diff := q.Lo[d] - prev.Lo[d]
					if diff != 1 && diff != -1 {
						t.Fatalf("query %d: proximity shift %d", i, diff)
					}
					shifts++
				}
			}
			if shifts != 1 {
				t.Fatalf("query %d: proximity shifted %d dims", i, shifts)
			}
		}
		prev = q
	}
}

func TestGeneratorErrors(t *testing.T) {
	g := tinyGrid(t)
	if _, err := NewGenerator(g, Mix{}, 2, 1); err == nil {
		t.Errorf("zero mix: expected error")
	}
	if _, err := NewGenerator(g, Mix{Random: -1, DrillDown: 2}, 2, 1); err == nil {
		t.Errorf("negative weight: expected error")
	}
	if _, err := NewGenerator(g, DefaultMix, 0, 1); err == nil {
		t.Errorf("maxWidth 0: expected error")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindRandom: "random", KindDrillDown: "drill-down",
		KindRollUp: "roll-up", KindProximity: "proximity",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatalf("unknown kind string")
	}
}

func sum(lv []int) int {
	s := 0
	for _, v := range lv {
		s += v
	}
	return s
}
