package workload

import (
	"testing"

	"aggcache/internal/mdq"
)

// FormatQuery must round-trip through the mdq compiler: the text form of a
// generated query compiles back to the same group-by and chunk region.
func TestFormatQueryRoundTrips(t *testing.T) {
	g := tinyGrid(t)
	gen, err := NewGenerator(g, DefaultMix, 2, 3)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	qs, _ := gen.Stream(300)
	for i, q := range qs {
		src := FormatQuery(g, q)
		got, _, err := mdq.Compile(src, g)
		if err != nil {
			t.Fatalf("query %d: Compile(%q): %v", i, src, err)
		}
		if got.GB != q.GB {
			t.Fatalf("query %d: %q compiled to GB %v, want %v", i, src, got.GB, q.GB)
		}
		for d := range q.Lo {
			if got.Lo[d] != q.Lo[d] || got.Hi[d] != q.Hi[d] {
				t.Fatalf("query %d: %q region dim %d = [%d,%d), want [%d,%d)",
					i, src, d, got.Lo[d], got.Hi[d], q.Lo[d], q.Hi[d])
			}
		}
	}
}

func TestZipfSkewsTowardFewQueries(t *testing.T) {
	g := tinyGrid(t)
	src, err := NewZipf(g, 64, 1.5, 5)
	if err != nil {
		t.Fatalf("NewZipf: %v", err)
	}
	counts := map[string]int{}
	const n = 2000
	for i := 0; i < n; i++ {
		counts[FormatQuery(g, src.Next())]++
	}
	if len(counts) < 2 {
		t.Fatalf("zipf stream produced %d distinct queries, want several", len(counts))
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Zipf(1.5) over 64 keys puts well over a quarter of the mass on the
	// hottest key; a uniform stream would put ~1.6% there.
	if frac := float64(max) / n; frac < 0.25 {
		t.Fatalf("hottest query fraction %.2f, want ≥ 0.25 (skew missing)", frac)
	}
}

func TestFlashCrowdRotatesHotspot(t *testing.T) {
	g := tinyGrid(t)
	src, err := NewFlashCrowd(g, 10, 9)
	if err != nil {
		t.Fatalf("NewFlashCrowd: %v", err)
	}
	var texts []string
	for i := 0; i < 30; i++ {
		texts = append(texts, FormatQuery(g, src.Next()))
	}
	for period := 0; period < 3; period++ {
		for i := 1; i < 10; i++ {
			if texts[period*10+i] != texts[period*10] {
				t.Fatalf("query %d differs within its crowd period", period*10+i)
			}
		}
	}
	if texts[0] == texts[10] && texts[10] == texts[20] {
		t.Fatalf("hotspot never rotated across periods")
	}
}

func TestScanFloodIsDetailedAndValid(t *testing.T) {
	g := tinyGrid(t)
	src, err := NewScanFlood(g, 4, 13)
	if err != nil {
		t.Fatalf("NewScanFlood: %v", err)
	}
	sch := g.Schema()
	for i := 0; i < 200; i++ {
		q := src.Next()
		if _, err := q.NumChunks(g); err != nil {
			t.Fatalf("query %d invalid: %v (%+v)", i, err, q)
		}
		lv := g.Lattice().Level(q.GB)
		for d := 0; d < sch.NumDims(); d++ {
			if lv[d] != sch.Dim(d).Hierarchy() {
				t.Fatalf("query %d groups dim %d at level %d, want most detailed %d",
					i, d, lv[d], sch.Dim(d).Hierarchy())
			}
		}
	}
}

func TestTenantMixHonorsWeights(t *testing.T) {
	g := tinyGrid(t)
	zipf, err := NewZipf(g, 16, 1.5, 1)
	if err != nil {
		t.Fatalf("NewZipf: %v", err)
	}
	flood, err := NewScanFlood(g, 2, 2)
	if err != nil {
		t.Fatalf("NewScanFlood: %v", err)
	}
	mix, err := NewTenantMix([]Tenant{
		{Name: "polite", Weight: 1, Source: zipf},
		{Name: "greedy", Weight: 3, Source: flood},
	}, 17)
	if err != nil {
		t.Fatalf("NewTenantMix: %v", err)
	}
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		name, q := mix.Next()
		if _, err := q.NumChunks(g); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
		counts[name]++
	}
	if frac := float64(counts["greedy"]) / n; frac < 0.65 || frac > 0.85 {
		t.Fatalf("greedy tenant fraction %.2f, want ≈ 0.75 (counts %v)", frac, counts)
	}
}

func TestHostileConstructorValidation(t *testing.T) {
	g := tinyGrid(t)
	if _, err := NewZipf(g, 0, 1.5, 1); err == nil {
		t.Fatalf("NewZipf accepted empty pool")
	}
	if _, err := NewZipf(g, 8, 1.0, 1); err == nil {
		t.Fatalf("NewZipf accepted s=1")
	}
	if _, err := NewFlashCrowd(g, 0, 1); err == nil {
		t.Fatalf("NewFlashCrowd accepted period 0")
	}
	if _, err := NewScanFlood(g, 0, 1); err == nil {
		t.Fatalf("NewScanFlood accepted width 0")
	}
	if _, err := NewTenantMix(nil, 1); err == nil {
		t.Fatalf("NewTenantMix accepted empty tenant list")
	}
	if _, err := NewTenantMix([]Tenant{{Name: "x", Weight: 0}}, 1); err == nil {
		t.Fatalf("NewTenantMix accepted zero weight")
	}
}
