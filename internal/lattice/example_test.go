package lattice_test

import (
	"fmt"

	"aggcache/internal/lattice"
	"aggcache/internal/schema"
)

// ExampleLattice_PathCount reproduces the paper's Lemma 1 on the APB-1
// hierarchy sizes (6,2,3,1,1): the most aggregated group-by has
// 13!/(6!·2!·3!·1!·1!) computation paths to the base level.
func ExampleLattice_PathCount() {
	mk := func(name string, cards ...int) *schema.Dimension {
		specs := make([]schema.HierarchySpec, len(cards))
		for i, c := range cards {
			specs[i] = schema.HierarchySpec{Name: fmt.Sprintf("L%d", i+1), Card: c}
		}
		return schema.MustNewDimension(name, specs)
	}
	s := schema.MustNew("UnitSales",
		mk("Product", 2, 4, 8, 16, 32, 64),
		mk("Customer", 3, 9),
		mk("Time", 2, 8, 24),
		mk("Channel", 10),
		mk("Scenario", 2),
	)
	l := lattice.New(s)
	fmt.Println("group-bys:", l.NumNodes())
	fmt.Println("paths from top:", l.PathCount(l.Top()))
	fmt.Println("paths from base:", l.PathCount(l.Base()))
	// Output:
	// group-bys: 336
	// paths from top: 720720
	// paths from base: 1
}

// ExampleLattice_Parents shows the "can be computed by" neighborhood of the
// paper's Example 2 group-by (0,2,0).
func ExampleLattice_Parents() {
	a := schema.MustNewDimension("A", []schema.HierarchySpec{{Name: "A1", Card: 4}})
	b := schema.MustNewDimension("B", []schema.HierarchySpec{{Name: "B1", Card: 2}, {Name: "B2", Card: 4}})
	c := schema.MustNewDimension("C", []schema.HierarchySpec{{Name: "C1", Card: 4}})
	l := lattice.New(schema.MustNew("M", a, b, c))
	n := l.MustID(0, 2, 0)
	for _, p := range l.Parents(n) {
		fmt.Println(l.LevelTupleString(p))
	}
	// Output:
	// (1,2,0)
	// (0,2,1)
}
