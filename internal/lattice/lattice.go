// Package lattice models the lattice of group-bys over a multidimensional
// schema, ordered by the "can be computed by" relationship (§3 of the paper).
//
// A group-by is identified by its level vector (l_1, …, l_n) with
// 0 ≤ l_d ≤ h_d. A group-by A is computable from B when B is componentwise ≥
// A. The *parents* of a node are the group-bys exactly one level more
// detailed on a single dimension; *children* are one level more aggregated.
// Every computation path from a node to the base group-by is a chain of
// parent steps.
package lattice

import (
	"fmt"
	"math/big"

	"aggcache/internal/schema"
)

// ID identifies a group-by node. IDs are dense in [0, NumNodes) and are the
// mixed-radix encoding of the level vector, so they are stable for a given
// schema.
type ID int32

// Lattice is the precomputed group-by lattice for a schema.
type Lattice struct {
	sch     *schema.Schema
	hier    []int // hierarchy sizes h_d
	strides []int // mixed-radix strides for level-vector <-> ID
	n       int   // number of nodes
	// flat per-node adjacency. parents[po[id]:po[id+1]] etc.
	parents  []ID
	po       []int32
	pdim     []int8 // dimension stepped for each parents[] entry
	children []ID
	co       []int32
	cdim     []int8
	levels   [][]int // levels[id] = level vector (shared, do not mutate)
}

// New builds the lattice for a schema.
func New(sch *schema.Schema) *Lattice {
	hier := sch.HierarchySizes()
	nd := len(hier)
	strides := make([]int, nd)
	n := 1
	for d := nd - 1; d >= 0; d-- {
		strides[d] = n
		n *= hier[d] + 1
	}
	l := &Lattice{sch: sch, hier: hier, strides: strides, n: n}
	l.levels = make([][]int, n)
	l.po = make([]int32, n+1)
	l.co = make([]int32, n+1)
	// First pass: decode levels and count edges.
	np, nc := 0, 0
	for id := 0; id < n; id++ {
		lv := l.decode(ID(id))
		l.levels[id] = lv
		for d := 0; d < nd; d++ {
			if lv[d] < hier[d] {
				np++
			}
			if lv[d] > 0 {
				nc++
			}
		}
	}
	l.parents = make([]ID, 0, np)
	l.pdim = make([]int8, 0, np)
	l.children = make([]ID, 0, nc)
	l.cdim = make([]int8, 0, nc)
	for id := 0; id < n; id++ {
		lv := l.levels[id]
		l.po[id] = int32(len(l.parents))
		l.co[id] = int32(len(l.children))
		for d := 0; d < nd; d++ {
			if lv[d] < hier[d] {
				l.parents = append(l.parents, ID(id+strides[d]))
				l.pdim = append(l.pdim, int8(d))
			}
			if lv[d] > 0 {
				l.children = append(l.children, ID(id-strides[d]))
				l.cdim = append(l.cdim, int8(d))
			}
		}
	}
	l.po[n] = int32(len(l.parents))
	l.co[n] = int32(len(l.children))
	return l
}

// Schema returns the schema the lattice was built over.
func (l *Lattice) Schema() *schema.Schema { return l.sch }

// NumNodes returns the number of group-bys: Π(h_d + 1).
func (l *Lattice) NumNodes() int { return l.n }

// NumDims returns the number of dimensions.
func (l *Lattice) NumDims() int { return len(l.hier) }

func (l *Lattice) decode(id ID) []int {
	lv := make([]int, len(l.hier))
	rem := int(id)
	for d := range l.hier {
		lv[d] = rem / l.strides[d]
		rem %= l.strides[d]
	}
	return lv
}

// IDOf returns the node id for a level vector.
func (l *Lattice) IDOf(level []int) (ID, error) {
	if err := l.sch.CheckLevel(level); err != nil {
		return 0, err
	}
	id := 0
	for d, lv := range level {
		id += lv * l.strides[d]
	}
	return ID(id), nil
}

// MustID is IDOf but panics on error; for statically known levels.
func (l *Lattice) MustID(level ...int) ID {
	id, err := l.IDOf(level)
	if err != nil {
		panic(err)
	}
	return id
}

// Level returns the level vector of id. The returned slice is shared and
// must not be modified.
func (l *Lattice) Level(id ID) []int { return l.levels[id] }

// LevelAt returns the level of dimension d at node id.
func (l *Lattice) LevelAt(id ID, d int) int { return l.levels[id][d] }

// Base returns the id of the base (most detailed) group-by.
func (l *Lattice) Base() ID { return ID(l.n - 1) }

// Top returns the id of the fully aggregated group-by (0, …, 0).
func (l *Lattice) Top() ID { return 0 }

// Parents returns the ids of the direct parents (one level more detailed on
// one dimension). The slice is shared; do not modify.
func (l *Lattice) Parents(id ID) []ID { return l.parents[l.po[id]:l.po[id+1]] }

// ParentDims returns, aligned with Parents, the dimension along which each
// parent differs.
func (l *Lattice) ParentDims(id ID) []int8 { return l.pdim[l.po[id]:l.po[id+1]] }

// Children returns the ids of the direct children (one level more aggregated
// on one dimension). The slice is shared; do not modify.
func (l *Lattice) Children(id ID) []ID { return l.children[l.co[id]:l.co[id+1]] }

// ChildDims returns, aligned with Children, the dimension along which each
// child differs.
func (l *Lattice) ChildDims(id ID) []int8 { return l.cdim[l.co[id]:l.co[id+1]] }

// StepDim returns the single dimension on which from and to differ by one
// level, and whether to is one step more detailed than from.
func (l *Lattice) StepDim(from, to ID) (dim int, ok bool) {
	diff := int(to) - int(from)
	for d, s := range l.strides {
		if diff == s && l.levels[from][d] < l.hier[d] {
			return d, true
		}
	}
	return -1, false
}

// ComputableFrom reports whether group-by a can be computed from group-by b,
// i.e. b is componentwise ≥ a.
func (l *Lattice) ComputableFrom(a, b ID) bool {
	la, lb := l.levels[a], l.levels[b]
	for d := range la {
		if lb[d] < la[d] {
			return false
		}
	}
	return true
}

// Descendants returns the number of group-bys computable from id (including
// itself): Π(l_d + 1).
func (l *Lattice) Descendants(id ID) int {
	n := 1
	for _, lv := range l.levels[id] {
		n *= lv + 1
	}
	return n
}

// PathCount returns the number of distinct paths in the lattice from id to
// the base group-by (Lemma 1): (Σ(h_d−l_d))! / Π(h_d−l_d)!.
func (l *Lattice) PathCount(id ID) *big.Int {
	lv := l.levels[id]
	total := 0
	for d, h := range l.hier {
		total += h - lv[d]
	}
	r := new(big.Int).MulRange(1, int64(total)) // total!
	if total == 0 {
		return big.NewInt(1)
	}
	for d, h := range l.hier {
		f := new(big.Int).MulRange(1, int64(h-lv[d]))
		if f.Sign() != 0 {
			r.Div(r, f)
		}
	}
	return r
}

// TopoDetailedFirst returns all node ids ordered from most detailed to most
// aggregated (descending level sum). Every node appears after all of its
// lattice parents.
func (l *Lattice) TopoDetailedFirst() []ID {
	sum := func(id ID) int {
		s := 0
		for _, lv := range l.levels[id] {
			s += lv
		}
		return s
	}
	maxSum := 0
	for _, h := range l.hier {
		maxSum += h
	}
	buckets := make([][]ID, maxSum+1)
	for id := 0; id < l.n; id++ {
		s := sum(ID(id))
		buckets[s] = append(buckets[s], ID(id))
	}
	out := make([]ID, 0, l.n)
	for s := maxSum; s >= 0; s-- {
		out = append(out, buckets[s]...)
	}
	return out
}

// String formats a node id using the schema's level names.
func (l *Lattice) String(id ID) string {
	return l.sch.LevelString(l.levels[id])
}

// LevelTupleString formats a node id as its numeric level vector, e.g.
// "(6,2,3,1,0)" — the notation used throughout the paper.
func (l *Lattice) LevelTupleString(id ID) string {
	lv := l.levels[id]
	s := "("
	for d, v := range lv {
		if d > 0 {
			s += ","
		}
		s += fmt.Sprint(v)
	}
	return s + ")"
}
