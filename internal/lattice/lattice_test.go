package lattice

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"aggcache/internal/schema"
)

// paperSchema builds the 3-dimension schema of the paper's Example 2:
// dimensions A and C with single-level hierarchies, B with a two-level one.
func paperSchema(t *testing.T) *schema.Schema {
	t.Helper()
	a := schema.MustNewDimension("A", []schema.HierarchySpec{{Name: "A1", Card: 4}})
	b := schema.MustNewDimension("B", []schema.HierarchySpec{{Name: "B1", Card: 2}, {Name: "B2", Card: 4}})
	c := schema.MustNewDimension("C", []schema.HierarchySpec{{Name: "C1", Card: 4}})
	return schema.MustNew("M", a, b, c)
}

func TestLatticeExample2(t *testing.T) {
	l := New(paperSchema(t))
	// (1+1)*(2+1)*(1+1) = 12 nodes.
	if got := l.NumNodes(); got != 12 {
		t.Fatalf("NumNodes = %d, want 12", got)
	}
	base := l.Base()
	if got := l.Level(base); got[0] != 1 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("base level = %v, want (1,2,1)", got)
	}
	if len(l.Parents(base)) != 0 {
		t.Fatalf("base has parents: %v", l.Parents(base))
	}
	top := l.Top()
	if got := l.Level(top); got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("top level = %v, want (0,0,0)", got)
	}
	if len(l.Children(top)) != 0 {
		t.Fatalf("top has children: %v", l.Children(top))
	}
	// From the paper's Figure 3 discussion: (0,2,0) can be computed from
	// (0,2,1) or (1,2,0).
	n020 := l.MustID(0, 2, 0)
	ps := l.Parents(n020)
	if len(ps) != 2 {
		t.Fatalf("parents of (0,2,0): got %d, want 2", len(ps))
	}
	want := map[ID]bool{l.MustID(1, 2, 0): true, l.MustID(0, 2, 1): true}
	for _, p := range ps {
		if !want[p] {
			t.Fatalf("unexpected parent %s of (0,2,0)", l.LevelTupleString(p))
		}
	}
	// Group-by (0,2,0) is computable from (0,2,1) and (1,2,1) but not (1,1,1).
	if !l.ComputableFrom(n020, l.MustID(0, 2, 1)) {
		t.Errorf("(0,2,0) should be computable from (0,2,1)")
	}
	if !l.ComputableFrom(n020, l.Base()) {
		t.Errorf("(0,2,0) should be computable from base")
	}
	if l.ComputableFrom(n020, l.MustID(1, 1, 1)) {
		t.Errorf("(0,2,0) should not be computable from (1,1,1)")
	}
}

func TestIDLevelRoundTrip(t *testing.T) {
	l := New(paperSchema(t))
	for id := ID(0); int(id) < l.NumNodes(); id++ {
		got, err := l.IDOf(l.Level(id))
		if err != nil {
			t.Fatalf("IDOf(%v): %v", l.Level(id), err)
		}
		if got != id {
			t.Fatalf("round trip %d -> %v -> %d", id, l.Level(id), got)
		}
	}
	if _, err := l.IDOf([]int{9, 9, 9}); err == nil {
		t.Fatalf("IDOf out of range: expected error")
	}
}

func TestParentChildSymmetry(t *testing.T) {
	l := New(paperSchema(t))
	for id := ID(0); int(id) < l.NumNodes(); id++ {
		for i, p := range l.Parents(id) {
			found := false
			for _, c := range l.Children(p) {
				if c == id {
					found = true
				}
			}
			if !found {
				t.Fatalf("node %d parent %d missing reverse child edge", id, p)
			}
			d := l.ParentDims(id)[i]
			if l.LevelAt(p, int(d)) != l.LevelAt(id, int(d))+1 {
				t.Fatalf("parent dim mismatch for %d->%d", id, p)
			}
			if sd, ok := l.StepDim(id, p); !ok || sd != int(d) {
				t.Fatalf("StepDim(%d,%d) = %d,%v, want %d,true", id, p, sd, ok, d)
			}
		}
		for i, c := range l.Children(id) {
			d := l.ChildDims(id)[i]
			if l.LevelAt(c, int(d)) != l.LevelAt(id, int(d))-1 {
				t.Fatalf("child dim mismatch for %d->%d", id, c)
			}
		}
	}
}

func TestDescendants(t *testing.T) {
	l := New(paperSchema(t))
	if got := l.Descendants(l.Base()); got != 12 {
		t.Fatalf("Descendants(base) = %d, want 12", got)
	}
	if got := l.Descendants(l.Top()); got != 1 {
		t.Fatalf("Descendants(top) = %d, want 1", got)
	}
	if got := l.Descendants(l.MustID(1, 1, 0)); got != 4 {
		t.Fatalf("Descendants((1,1,0)) = %d, want 4", got)
	}
}

// pathCountDP counts base-reaching paths by dynamic programming over parent
// edges — the oracle for Lemma 1.
func pathCountDP(l *Lattice, id ID) *big.Int {
	memo := make(map[ID]*big.Int)
	var rec func(ID) *big.Int
	rec = func(n ID) *big.Int {
		if v, ok := memo[n]; ok {
			return v
		}
		ps := l.Parents(n)
		if len(ps) == 0 {
			return big.NewInt(1)
		}
		sum := new(big.Int)
		for _, p := range ps {
			sum.Add(sum, rec(p))
		}
		memo[n] = sum
		return sum
	}
	return rec(id)
}

// TestLemma1 verifies the closed-form path count against the DP oracle on
// the paper's example schema and on random lattices.
func TestLemma1(t *testing.T) {
	l := New(paperSchema(t))
	for id := ID(0); int(id) < l.NumNodes(); id++ {
		want := pathCountDP(l, id)
		got := l.PathCount(id)
		if got.Cmp(want) != 0 {
			t.Fatalf("PathCount(%s) = %v, want %v", l.LevelTupleString(id), got, want)
		}
	}
}

func TestLemma1Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 1 + rng.Intn(3)
		dims := make([]*schema.Dimension, nd)
		for d := range dims {
			nl := 1 + rng.Intn(3)
			specs := make([]schema.HierarchySpec, nl)
			card := 1
			for i := range specs {
				card *= 2
				specs[i] = schema.HierarchySpec{Name: string(rune('A' + i)), Card: card}
			}
			dims[d] = schema.MustNewDimension(string(rune('X'+d)), specs)
		}
		l := New(schema.MustNew("M", dims...))
		for id := ID(0); int(id) < l.NumNodes(); id++ {
			if l.PathCount(id).Cmp(pathCountDP(l, id)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAPBLatticeSize checks the paper's claim that the APB-1 lattice has
// (6+1)(2+1)(3+1)(1+1)(1+1) = 336 nodes and that the most aggregated node has
// 13!/(6!·2!·3!·1!·1!) paths to the base.
func TestAPBLatticeSize(t *testing.T) {
	mk := func(name string, cards ...int) *schema.Dimension {
		specs := make([]schema.HierarchySpec, len(cards))
		for i, c := range cards {
			specs[i] = schema.HierarchySpec{Name: string(rune('a' + i)), Card: c}
		}
		return schema.MustNewDimension(name, specs)
	}
	s := schema.MustNew("UnitSales",
		mk("Product", 2, 4, 8, 16, 32, 64),
		mk("Customer", 3, 9),
		mk("Time", 2, 8, 24),
		mk("Channel", 10),
		mk("Scenario", 2),
	)
	l := New(s)
	if got := l.NumNodes(); got != 336 {
		t.Fatalf("NumNodes = %d, want 336", got)
	}
	// 13! / (6! 2! 3!) = 5765760/ ... compute explicitly.
	want := new(big.Int).MulRange(1, 13)
	want.Div(want, new(big.Int).MulRange(1, 6))
	want.Div(want, new(big.Int).MulRange(1, 2))
	want.Div(want, new(big.Int).MulRange(1, 3))
	if got := l.PathCount(l.Top()); got.Cmp(want) != 0 {
		t.Fatalf("PathCount(top) = %v, want %v", got, want)
	}
	if got := l.PathCount(l.Base()); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("PathCount(base) = %v, want 1", got)
	}
}

func TestTopoDetailedFirst(t *testing.T) {
	l := New(paperSchema(t))
	order := l.TopoDetailedFirst()
	if len(order) != l.NumNodes() {
		t.Fatalf("order has %d nodes, want %d", len(order), l.NumNodes())
	}
	pos := make(map[ID]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	if order[0] != l.Base() {
		t.Fatalf("order[0] = %d, want base %d", order[0], l.Base())
	}
	for _, id := range order {
		for _, p := range l.Parents(id) {
			if pos[p] >= pos[id] {
				t.Fatalf("parent %d not before child %d", p, id)
			}
		}
	}
}

func TestStrings(t *testing.T) {
	l := New(paperSchema(t))
	if got := l.LevelTupleString(l.MustID(0, 2, 0)); got != "(0,2,0)" {
		t.Fatalf("LevelTupleString = %q", got)
	}
	if got := l.String(l.MustID(0, 2, 0)); got != "(A:ALL, B:B2, C:ALL)" {
		t.Fatalf("String = %q", got)
	}
}
