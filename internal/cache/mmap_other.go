//go:build !unix

package cache

// mapFile reads path into memory on platforms without mmap support.
func mapFile(path string) ([]byte, func(), error) {
	return readFileFallback(path)
}
