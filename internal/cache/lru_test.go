package cache

import "testing"

func TestLRUEvictsLeastRecent(t *testing.T) {
	c, _ := New(700, NewLRU()) // room for two 10-cell chunks
	c.Insert(key(1), mkChunk(0, 1, 10), AsBackend(1))
	c.Insert(key(2), mkChunk(0, 2, 10), AsBackend(1))
	// Touch 1 so 2 becomes the LRU victim.
	if _, ok := c.Get(key(1)); !ok {
		t.Fatalf("Get(1) missed")
	}
	if !c.Insert(key(3), mkChunk(0, 3, 10), AsBackend(1)) {
		t.Fatalf("insert denied")
	}
	if !c.Contains(key(1)) || c.Contains(key(2)) {
		t.Fatalf("LRU evicted the wrong entry")
	}
}

func TestLRURespectsPins(t *testing.T) {
	c, _ := New(700, NewLRU())
	c.Insert(key(1), mkChunk(0, 1, 10), AsBackend(1))
	c.Insert(key(2), mkChunk(0, 2, 10), AsBackend(1))
	c.Pin(key(1)) // 1 is the LRU entry but pinned
	if !c.Insert(key(3), mkChunk(0, 3, 10), AsBackend(1)) {
		t.Fatalf("insert denied")
	}
	if !c.Contains(key(1)) || c.Contains(key(2)) {
		t.Fatalf("pinned LRU entry was evicted")
	}
	c.Pin(key(1))
	c.Pin(key(3))
	if c.Insert(key(4), mkChunk(0, 4, 10), AsBackend(1)) {
		t.Fatalf("insert admitted with everything pinned")
	}
}

func TestLRUReinforceCountsAsAccess(t *testing.T) {
	c, _ := New(700, NewLRU())
	c.Insert(key(1), mkChunk(0, 1, 10), AsComputed(1))
	c.Insert(key(2), mkChunk(0, 2, 10), AsComputed(1))
	c.Reinforce([]Key{key(1)}, 100)
	if !c.Insert(key(3), mkChunk(0, 3, 10), AsComputed(1)) {
		t.Fatalf("insert denied")
	}
	if !c.Contains(key(1)) || c.Contains(key(2)) {
		t.Fatalf("reinforced entry was evicted")
	}
	if c.Policy().Name() != "lru" {
		t.Fatalf("Name = %q", c.Policy().Name())
	}
}
