package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aggcache/internal/chunk"
)

// fakePeer is an in-process Peer with a scriptable store and failure switch.
type fakePeer struct {
	name string

	mu     sync.Mutex
	chunks map[Key]*chunk.Chunk
	puts   []Key
	fail   bool
	gets   atomic.Int64
	closed atomic.Bool

	block chan struct{} // when set, Get parks until it closes
}

func newFakePeer(name string) *fakePeer {
	return &fakePeer{name: name, chunks: make(map[Key]*chunk.Chunk)}
}

func (f *fakePeer) seed(k Key, c *chunk.Chunk) {
	f.mu.Lock()
	f.chunks[k] = c
	f.mu.Unlock()
}

func (f *fakePeer) setFail(v bool) {
	f.mu.Lock()
	f.fail = v
	f.mu.Unlock()
}

func (f *fakePeer) Get(ctx context.Context, k Key) (*chunk.Chunk, Class, float64, bool, error) {
	f.gets.Add(1)
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
			return nil, 0, 0, false, ctx.Err()
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return nil, 0, 0, false, errors.New("fake peer down")
	}
	if c, ok := f.chunks[k]; ok {
		return c, ClassBackend, 42, true, nil
	}
	return nil, 0, 0, false, nil
}

func (f *fakePeer) Put(ctx context.Context, k Key, data *chunk.Chunk, cl Class, benefit float64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return errors.New("fake peer down")
	}
	f.chunks[k] = data
	f.puts = append(f.puts, k)
	return nil
}

func (f *fakePeer) Close() error { f.closed.Store(true); return nil }

// newPeeredPair returns a Peered whose every remote key is owned by one fake
// peer ("self" plus one remote on the ring would split ownership, so for
// deterministic tests Self is empty: all owners are remote).
func newPeeredPair(t *testing.T, cfg PeeredConfig) (*Peered, *fakePeer) {
	t.Helper()
	local, err := New(1<<20, NewTwoLevel())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	peer := newFakePeer("remote")
	cfg.Members = []string{"remote"}
	cfg.Dial = func(addr string) Peer {
		if addr != "remote" {
			t.Errorf("dialed unexpected member %q", addr)
		}
		return peer
	}
	p, err := NewPeered(local, cfg)
	if err != nil {
		t.Fatalf("NewPeered: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p, peer
}

func TestPeeredFillInstallsLocally(t *testing.T) {
	p, peer := newPeeredPair(t, PeeredConfig{})
	k := key(7)
	peer.seed(k, mkChunk(0, 7, 5))

	data, ok := p.PeerFill(context.Background(), k)
	if !ok || data == nil {
		t.Fatalf("PeerFill = %v, %v", data, ok)
	}
	// The fill is resident locally now, under computed-class residency.
	if _, cl, _, ok := p.GetInfo(k); !ok || cl != ClassComputed {
		t.Fatalf("local GetInfo after fill = class %v, found %v; want computed-class hit", cl, ok)
	}
	st := p.PeerStats()
	if st.Fills != 1 || st.FillMisses != 0 || st.FillErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// A second Get is a pure local hit: no new peer exchange.
	if _, ok := p.Get(k); !ok {
		t.Fatalf("Get after fill missed")
	}
	if got := peer.gets.Load(); got != 1 {
		t.Fatalf("peer gets = %d, want 1", got)
	}
}

func TestPeeredFillMissFallsThrough(t *testing.T) {
	p, _ := newPeeredPair(t, PeeredConfig{})
	if _, ok := p.PeerFill(context.Background(), key(3)); ok {
		t.Fatalf("fill of unseeded key succeeded")
	}
	if st := p.PeerStats(); st.FillMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPeeredSelfOwnedKeysSkipPeers(t *testing.T) {
	local, err := New(1<<20, NewTwoLevel())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p, err := NewPeered(local, PeeredConfig{Self: "solo", Members: []string{"solo"}})
	if err != nil {
		t.Fatalf("NewPeered: %v", err)
	}
	defer p.Close()
	if _, ok := p.PeerFill(context.Background(), key(1)); ok {
		t.Fatalf("self-owned fill should report false")
	}
	// Inserts of self-owned chunks must not replicate anywhere.
	p.Insert(key(1), mkChunk(0, 1, 3), AsBackend(10))
	if st := p.PeerStats(); st.Puts != 0 && st.PutDrops != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPeeredReplicatesBackendClassOnly(t *testing.T) {
	p, peer := newPeeredPair(t, PeeredConfig{})
	p.Insert(key(1), mkChunk(0, 1, 3), AsBackend(10))
	p.Insert(key(2), mkChunk(0, 2, 3), AsComputed(10))

	deadline := time.Now().Add(2 * time.Second)
	for {
		peer.mu.Lock()
		n := len(peer.puts)
		peer.mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	peer.mu.Lock()
	defer peer.mu.Unlock()
	if len(peer.puts) != 1 || peer.puts[0] != key(1) {
		t.Fatalf("replicated keys = %v, want [key(1)] only", peer.puts)
	}
}

func TestPeeredBreakerOpensAndRecovers(t *testing.T) {
	p, peer := newPeeredPair(t, PeeredConfig{
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	})
	peer.setFail(true)
	k := key(9)
	peer.seed(k, mkChunk(0, 9, 4))

	for i := 0; i < 2; i++ {
		if _, ok := p.PeerFill(context.Background(), k); ok {
			t.Fatalf("fill %d succeeded against failing peer", i)
		}
	}
	// Breaker is open: the next fill is skipped without touching the peer.
	before := peer.gets.Load()
	if _, ok := p.PeerFill(context.Background(), k); ok {
		t.Fatalf("fill succeeded while breaker open")
	}
	if got := peer.gets.Load(); got != before {
		t.Fatalf("breaker-open fill reached the peer (%d → %d gets)", before, got)
	}
	st := p.PeerStats()
	if st.FillErrors != 2 || st.FillSkips != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// After the cooldown the peer heals; one probe closes the breaker.
	peer.setFail(false)
	time.Sleep(60 * time.Millisecond)
	if _, ok := p.PeerFill(context.Background(), k); !ok {
		t.Fatalf("probe fill failed after peer recovered")
	}
	if st := p.PeerStats(); st.Fills != 1 {
		t.Fatalf("stats after recovery = %+v", st)
	}
}

func TestPeeredBreakerHalfOpenSingleProbe(t *testing.T) {
	st := &peerState{}
	now := time.Now()
	for i := 0; i < 3; i++ {
		st.report(false, 3, time.Minute, now)
	}
	if st.allow(3, now) {
		t.Fatalf("breaker should be open inside cooldown")
	}
	later := now.Add(2 * time.Minute)
	if !st.allow(3, later) {
		t.Fatalf("first post-cooldown call should claim the probe")
	}
	if st.allow(3, later) {
		t.Fatalf("second caller must not probe concurrently")
	}
	st.report(true, 3, time.Minute, later)
	if !st.allow(3, later) {
		t.Fatalf("breaker should close after successful probe")
	}
}

func TestPeeredFillSingleflight(t *testing.T) {
	p, peer := newPeeredPair(t, PeeredConfig{})
	k := key(11)
	peer.seed(k, mkChunk(0, 11, 4))
	peer.block = make(chan struct{})

	const callers = 8
	var wg sync.WaitGroup
	var hits atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := p.PeerFill(context.Background(), k); ok {
				hits.Add(1)
			}
		}()
	}
	// Let every caller either start the exchange or park on the flight,
	// then release the peer.
	time.Sleep(20 * time.Millisecond)
	close(peer.block)
	wg.Wait()

	if hits.Load() != callers {
		t.Fatalf("hits = %d, want %d", hits.Load(), callers)
	}
	if got := peer.gets.Load(); got != 1 {
		t.Fatalf("peer exchanges = %d, want 1 (singleflight)", got)
	}
}

func TestPeeredRebuildSwapsMembership(t *testing.T) {
	local, err := New(1<<20, NewTwoLevel())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	peers := map[string]*fakePeer{}
	var mu sync.Mutex
	dial := func(addr string) Peer {
		mu.Lock()
		defer mu.Unlock()
		f := newFakePeer(addr)
		peers[addr] = f
		return f
	}
	p, err := NewPeered(local, PeeredConfig{Self: "a", Members: []string{"a", "b"}, Dial: dial})
	if err != nil {
		t.Fatalf("NewPeered: %v", err)
	}
	defer p.Close()
	if got := p.Ring().Size(); got != 2 {
		t.Fatalf("ring size = %d", got)
	}

	if err := p.Rebuild([]string{"a", "c", "d"}); err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if got := p.Ring().Size(); got != 3 {
		t.Fatalf("ring size after rebuild = %d", got)
	}
	mu.Lock()
	b, hasC, hasD := peers["b"], peers["c"] != nil, peers["d"] != nil
	mu.Unlock()
	if b == nil || !b.closed.Load() {
		t.Fatalf("removed member b was not closed")
	}
	if !hasC || !hasD {
		t.Fatalf("new members not dialed: c=%v d=%v", hasC, hasD)
	}
	// Self never gets a peer handle.
	if p.peer("a") != nil {
		t.Fatalf("self has a peer handle")
	}
}

func TestPeeredCloseIsIdempotentAndStopsFills(t *testing.T) {
	p, peer := newPeeredPair(t, PeeredConfig{})
	peer.seed(key(5), mkChunk(0, 5, 3))
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if !peer.closed.Load() {
		t.Fatalf("peer connection not closed")
	}
	if _, ok := p.PeerFill(context.Background(), key(5)); ok {
		t.Fatalf("fill succeeded after Close")
	}
}

func TestPeeredGetFallsBackToPeer(t *testing.T) {
	p, peer := newPeeredPair(t, PeeredConfig{})
	k := key(21)
	peer.seed(k, mkChunk(0, 21, 6))
	if data, ok := p.Get(k); !ok || data.Cells() != 6 {
		t.Fatalf("Get through peer = %v, %v", data, ok)
	}
}
