package cache

import (
	"fmt"
	"sync/atomic"

	"aggcache/internal/chunk"
	"aggcache/internal/obs"
)

// TierStats is the cold-tier activity and occupancy snapshot a Tiered store
// reports: the promote/demote traffic between tiers, cold-tier hit/miss
// counts, and the compressed vs raw byte footprint (their ratio is the
// effective compression).
type TierStats struct {
	ColdHits     int64 // hot-tier misses answered by decompressing a cold resident
	ColdMisses   int64 // misses in both tiers
	Promotes     int64 // chunks decompressed back into the hot tier
	Demotes      int64 // hot-tier victims re-admitted compressed
	DemoteDenied int64 // victims the cold tier refused (oversized or disabled)
	ColdEvicts   int64 // cold residents dropped for cold-tier space

	ColdCapacity int64 // cold-tier byte bound
	ColdUsed     int64 // compressed bytes charged
	ColdRawBytes int64 // uncompressed footprint of the same residents
	ColdChunks   int64 // cold residents
}

// TierStatser is implemented by stores that maintain a compressed cold tier;
// the daemons and the engine's stats surface it without knowing the concrete
// store composition.
type TierStatser interface {
	TierStats() TierStats
}

// tierHook is the package-internal seam between a hot store (Cache, Sharded)
// and the Tiered wrapper. Every per-key tier transition must be decided
// under the lock that serializes that key's hot-store mutations (the shard
// lock), or two racing goroutines can leave a chunk resident in both tiers —
// and a later cold eviction would then fire a spurious Evicted while the
// chunk still answers, corrupting strategy counts. All three methods are
// invoked with that lock held; implementations may take the cold tier's
// lock (lock order is always hot shard → cold, never the reverse) and must
// not call back into the hot store.
type tierHook interface {
	// peekCold reports whether k is cold-resident and, if so, its preserved
	// residency attributes; the fresh-insert path calls it to turn the
	// insert into a promotion. The cold copy is not removed yet.
	peekCold(k Key) (spec insertSpec, wasCold bool)
	// claimCold drops k's cold copy after the hot insert was admitted; the
	// key has just moved cold → hot.
	claimCold(k Key)
	// demote offers a policy-evicted hot entry to the cold tier and reports
	// whether it was admitted (in which case the eviction becomes a
	// Demoted event).
	demote(e *Entry) bool
}

// hookable is implemented by hot stores that can host a Tiered wrapper.
type hookable interface {
	setTierHook(h tierHook)
}

// Tiered composes a hot Store with a compressed in-RAM cold tier. Hot-tier
// victims are delta/varint-encoded and demoted to the cold tier instead of
// dropped; a miss that finds its chunk cold decompresses it back into the
// hot tier, where the two-level policy admits it straight into the
// protected ring (protect on promote). Listeners registered on the Tiered
// store observe the full event taxonomy: Demoted when a victim stays
// answerable compressed, Promoted when it returns to the hot tier, Evicted
// only when a chunk truly leaves the store.
//
// Residency invariant: a key is resident in at most one tier. Transitions
// are decided under the hot store's per-key lock (see tierHook), so the
// invariant holds under arbitrary concurrency.
type Tiered struct {
	hot  Store
	cold *coldTier
	// outer is the listener registered via SetListener; hot-store events are
	// forwarded to it, with cold-pressure evictions synthesized here. Set
	// before the store serves traffic, read-only afterwards.
	outer    Listener
	promotes atomic.Int64
	tmet     obs.TierMetrics
}

// NewTiered wraps hot with a compressed cold tier of coldBytes capacity.
// The hot store must be one of this package's hot implementations (Cache or
// Sharded — not Peered or another Tiered, which own their composition).
// Register listeners on the returned store, not on hot.
func NewTiered(hot Store, coldBytes int64) (*Tiered, error) {
	if coldBytes <= 0 {
		return nil, fmt.Errorf("cache: cold tier capacity must be positive, got %d", coldBytes)
	}
	h, ok := hot.(hookable)
	if !ok {
		return nil, fmt.Errorf("cache: %T cannot host a cold tier", hot)
	}
	t := &Tiered{hot: hot, cold: newColdTier(coldBytes)}
	h.setTierHook(t)
	hot.SetListener(forwardListener{t})
	return t, nil
}

// forwardListener relays hot-store events to the Tiered store's outer
// listener. It is a separate type (not Tiered itself) so SetListener on the
// wrapper cannot be confused with the hot store's listener slot.
type forwardListener struct{ t *Tiered }

func (f forwardListener) OnInsert(e *Entry) {
	if f.t.outer != nil {
		f.t.outer.OnInsert(e)
	}
}

func (f forwardListener) OnEvent(ev Event) {
	if ev.Reason == Promoted {
		f.t.promotes.Add(1)
		f.t.tmet.Promotes.Inc()
	}
	if f.t.outer != nil {
		f.t.outer.OnEvent(ev)
	}
}

// peekCold implements tierHook.
func (t *Tiered) peekCold(k Key) (insertSpec, bool) {
	t.cold.mu.Lock()
	defer t.cold.mu.Unlock()
	e, ok := t.cold.entries[k]
	if !ok {
		return insertSpec{}, false
	}
	return insertSpec{class: e.class, benefit: e.benefit, recycled: e.recycled, promoted: true}, true
}

// claimCold implements tierHook.
func (t *Tiered) claimCold(k Key) {
	t.cold.remove(k)
}

// demote implements tierHook: encode the victim and admit it to the cold
// tier; chunks the cold tier displaces in turn are gone for good, so their
// Evicted events fire here (the displaced keys are cold-resident and
// therefore — by the residency invariant — not hot-resident).
func (t *Tiered) demote(e *Entry) bool {
	victims, ok := t.cold.add(e.Key, e.Data, e.Class, e.Benefit, e.Recycled)
	if ok {
		t.tmet.Demotes.Inc()
	} else {
		t.tmet.DemoteDenied.Inc()
	}
	for _, v := range victims {
		t.tmet.ColdEvictions.Inc()
		if t.outer != nil {
			t.outer.OnEvent(Event{
				Key:    v.key,
				Reason: Evicted,
				Entry:  &Entry{Key: v.key, Class: v.class, Benefit: v.benefit, Recycled: v.recycled},
			})
		}
	}
	t.syncTierGauges()
	return ok
}

// promote decompresses k's cold copy into the hot tier and returns the
// payload with its preserved attributes. The hot insert re-consults the
// cold tier under the shard lock (peekCold), so the promotion spec
// (preserved class/benefit/recycled, protected-ring admission) and the
// Promoted event are applied atomically with the insert — the AsPromoted
// flag is never trusted from out here, where it could race a concurrent
// claim. The promotion charges the hot budget exactly once, through the
// ordinary insert path.
func (t *Tiered) promote(k Key) (*chunk.Chunk, Class, float64, bool) {
	ce, ok := t.cold.peek(k)
	if !ok {
		return nil, 0, 0, false
	}
	data, err := chunk.DecodePayload(k.GB, k.Num, ce.enc)
	if err != nil {
		// An undecodable cold resident is unusable; drop it so it stops
		// occupying cold bytes. This cannot happen short of memory
		// corruption — the tier only stores its own encodings.
		t.cold.remove(k)
		return nil, 0, 0, false
	}
	opt := AsBackend(ce.benefit)
	if ce.recycled {
		opt = AsRecycled(ce.benefit)
	} else if ce.class == ClassComputed {
		opt = AsComputed(ce.benefit)
	}
	t.hot.Insert(k, data, opt)
	t.syncTierGauges()
	// Serve the decoded payload even if the hot tier refused admission (all
	// entries pinned, say): the cold copy is still resident in that case, so
	// the chunk remains answerable.
	return data, ce.class, ce.benefit, true
}

// syncTierGauges publishes cold-tier occupancy.
func (t *Tiered) syncTierGauges() {
	t.cold.mu.Lock()
	used, raw, n := t.cold.used, t.cold.raw, int64(len(t.cold.entries))
	t.cold.mu.Unlock()
	t.tmet.ColdOccupancyBytes.Set(used)
	t.tmet.ColdRawBytes.Set(raw)
	t.tmet.ColdChunks.Set(n)
}

// Get implements Store: a hot hit is served as usual; a hot miss consults
// the cold tier and, on a cold hit, promotes the chunk back into the hot
// tier before returning it.
func (t *Tiered) Get(k Key) (*chunk.Chunk, bool) {
	if data, ok := t.hot.Get(k); ok {
		return data, true
	}
	if data, _, _, ok := t.promote(k); ok {
		t.cold.hit()
		t.tmet.ColdHits.Inc()
		return data, true
	}
	t.cold.miss()
	t.tmet.ColdMisses.Inc()
	return nil, false
}

// GetInfo is Get plus replacement attributes, for the peer tier.
func (t *Tiered) GetInfo(k Key) (*chunk.Chunk, Class, float64, bool) {
	if gi, ok := t.hot.(interface {
		GetInfo(Key) (*chunk.Chunk, Class, float64, bool)
	}); ok {
		if data, cl, benefit, found := gi.GetInfo(k); found {
			return data, cl, benefit, true
		}
	} else if data, ok := t.hot.Get(k); ok {
		return data, ClassBackend, 0, true
	}
	if data, cl, benefit, ok := t.promote(k); ok {
		t.cold.hit()
		t.tmet.ColdHits.Inc()
		return data, cl, benefit, true
	}
	t.cold.miss()
	t.tmet.ColdMisses.Inc()
	return nil, 0, 0, false
}

// Peek implements Store: hot first, then a cold decode — without promoting,
// touching recency, or counting hits/misses.
func (t *Tiered) Peek(k Key) (*chunk.Chunk, bool) {
	if data, ok := t.hot.Peek(k); ok {
		return data, true
	}
	ce, ok := t.cold.peek(k)
	if !ok {
		return nil, false
	}
	data, err := chunk.DecodePayload(k.GB, k.Num, ce.enc)
	if err != nil {
		return nil, false
	}
	return data, true
}

// Insert implements Store, delegating to the hot tier. If the key is
// cold-resident the insert is turned into a promotion under the shard lock
// (the cold copy is superseded; no OnInsert fires because the chunk never
// stopped being answerable).
func (t *Tiered) Insert(k Key, data *chunk.Chunk, opts ...InsertOption) bool {
	ok := t.hot.Insert(k, data, opts...)
	t.syncTierGauges()
	return ok
}

// Evict implements Store: an administrative removal drops the key from
// whichever tier holds it. A cold-side removal fires Removed here (the hot
// store cannot — it never saw the key).
func (t *Tiered) Evict(k Key) bool {
	if t.hot.Evict(k) {
		return true
	}
	e, ok := t.cold.remove(k)
	if !ok {
		return false
	}
	t.syncTierGauges()
	if t.outer != nil {
		t.outer.OnEvent(Event{
			Key:    k,
			Reason: Removed,
			Entry:  &Entry{Key: k, Class: e.class, Benefit: e.benefit, Recycled: e.recycled},
		})
	}
	return true
}

// Pin implements Store. Pinning a cold-resident key promotes it first — a
// pin means an aggregation is about to read the payload, which requires it
// decoded and protected from eviction.
func (t *Tiered) Pin(k Key) bool {
	if t.hot.Pin(k) {
		return true
	}
	if _, _, _, ok := t.promote(k); !ok {
		return false
	}
	t.cold.hit()
	t.tmet.ColdHits.Inc()
	return t.hot.Pin(k)
}

// Unpin implements Store.
func (t *Tiered) Unpin(k Key) { t.hot.Unpin(k) }

// Reinforce implements Store. Only hot residents carry replacement clocks;
// a promoted-from-cold chunk is reinforced exactly like any other hot
// entry — its bytes were charged once, at promotion, through the ordinary
// insert path, so reinforcement never touches byte accounting.
func (t *Tiered) Reinforce(keys []Key, benefit float64) { t.hot.Reinforce(keys, benefit) }

// Contains implements Store: resident in either tier.
func (t *Tiered) Contains(k Key) bool {
	return t.hot.Contains(k) || t.cold.contains(k)
}

// Keys implements Store over both tiers.
func (t *Tiered) Keys(dst []Key) []Key {
	dst = t.hot.Keys(dst)
	for _, e := range t.cold.snapshot() {
		dst = append(dst, e.key)
	}
	return dst
}

// Range implements Store over both tiers; cold residents are decoded per
// call (Range is a snapshot/diagnostic path, not a hot path). fn runs
// outside the cold tier's lock for cold entries.
func (t *Tiered) Range(fn func(k Key, data *chunk.Chunk, cl Class, benefit float64, recycled bool)) {
	t.hot.Range(fn)
	for _, e := range t.cold.snapshot() {
		data, err := chunk.DecodePayload(e.key.GB, e.key.Num, e.enc)
		if err != nil {
			continue
		}
		fn(e.key, data, e.class, e.benefit, e.recycled)
	}
}

// Stats implements Store: the hot tier's counters with cold hits folded in
// (a cold hit was counted as a hot miss on the way through).
func (t *Tiered) Stats() Stats {
	s := t.hot.Stats()
	ts := t.TierStats()
	s.Hits += ts.ColdHits
	s.Misses -= ts.ColdHits
	return s
}

// TierStats implements TierStatser.
func (t *Tiered) TierStats() TierStats {
	ts := t.cold.tierStats()
	ts.Promotes = t.promotes.Load()
	return ts
}

// Capacity implements Store: the combined byte bound of both tiers.
func (t *Tiered) Capacity() int64 { return t.hot.Capacity() + t.cold.capacity }

// HotCapacity returns the hot tier's byte bound alone.
func (t *Tiered) HotCapacity() int64 { return t.hot.Capacity() }

// Used implements Store: hot bytes plus compressed cold bytes.
func (t *Tiered) Used() int64 { return t.hot.Used() + t.cold.usedBytes() }

// Len implements Store: residents across both tiers.
func (t *Tiered) Len() int { return t.hot.Len() + t.cold.len() }

// SetListener implements Store; the listener observes both tiers' events.
func (t *Tiered) SetListener(l Listener) { t.outer = l }

// SetMetrics implements Store, forwarding the hot-tier bundle.
func (t *Tiered) SetMetrics(m obs.CacheMetrics) { t.hot.SetMetrics(m) }

// SetTierMetrics attaches the cold-tier bundle; call before serving traffic.
func (t *Tiered) SetTierMetrics(m obs.TierMetrics) {
	t.tmet = m
	t.tmet.ColdCapacityBytes.Set(t.cold.capacity)
	t.syncTierGauges()
}

// Policy implements Store, reporting the hot tier's policy.
func (t *Tiered) Policy() Policy { return t.hot.Policy() }

// Hot returns the wrapped hot store (tests and diagnostics).
func (t *Tiered) Hot() Store { return t.hot }

// Shards reports the hot tier's stripe count when it is sharded.
func (t *Tiered) Shards() int {
	if s, ok := t.hot.(interface{ Shards() int }); ok {
		return s.Shards()
	}
	return 1
}
