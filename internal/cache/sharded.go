package cache

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"aggcache/internal/chunk"
	"aggcache/internal/obs"
)

// Sharded is the lock-striped Store: keys are spread across a power-of-two
// number of shards by a cheap hash of (GB, Num), and each shard is an
// independent map + policy instance guarded by its own mutex. Concurrent
// queries touching different shards never contend, which removes the last
// global serialization point on the middle tier's hot path.
//
// Capacity is partitioned per shard with a borrow margin: each shard may
// charge up to capacity/N plus half again (so a hot shard can steal headroom
// from idle ones), while a global atomic reservation keeps the sum of all
// shards within the configured capacity. When the global bound binds, the
// inserting shard evicts locally until its reservation fits — so a saturated
// store converges to roughly capacity/N per active shard without any
// cross-shard locking.
//
// Stats, Keys, Range and Len aggregate by visiting shards one at a time —
// there is no stop-the-world lock, so the result is a consistent-per-shard
// (not globally atomic) snapshot, which is all the callers (reports,
// snapshots, gauges) need. The obs occupancy gauges are fed from the global
// atomics and are therefore exact.
type Sharded struct {
	capacity int64
	limit    int64  // per-shard byte cap: capacity/N + borrow margin
	mask     uint64 // len(shards) - 1
	used     atomic.Int64
	resident atomic.Int64
	shards   []shard
	// listener, hook and met are set before the store serves traffic (see
	// the Store contract) and are read-only afterwards.
	listener Listener
	hook     tierHook
	met      obs.CacheMetrics
}

// shard is one stripe: an independent map + policy under its own lock. The
// padding keeps neighbouring shards' mutexes off the same cache line.
type shard struct {
	mu      sync.Mutex
	entries map[Key]*Entry
	policy  Policy
	used    int64
	stats   Stats
	_       [40]byte
}

// newSharded builds an n-shard store; n must be a power of two in
// [2, MaxShards]. The seed policy serves shard 0, the factory builds the
// rest. Callers go through New.
func newSharded(capacity int64, n int, seed Policy, factory func() Policy) (*Sharded, error) {
	if n < 2 || n > MaxShards || n&(n-1) != 0 {
		return nil, fmt.Errorf("cache: shard count must be a power of two in [2, %d], got %d", MaxShards, n)
	}
	base := capacity / int64(n)
	limit := base + base/2
	if limit <= 0 || limit > capacity {
		// Degenerate capacities (fewer bytes than shards) fall back to the
		// global bound only.
		limit = capacity
	}
	c := &Sharded{capacity: capacity, limit: limit, mask: uint64(n - 1), shards: make([]shard, n)}
	for i := range c.shards {
		p := seed
		if i > 0 {
			p = factory()
			if p == nil {
				return nil, fmt.Errorf("cache: policy factory returned nil for shard %d", i)
			}
		}
		c.shards[i].entries = make(map[Key]*Entry)
		c.shards[i].policy = p
	}
	return c, nil
}

// shardIndex hashes k onto a stripe. The splitmix64 finalizer spreads the
// low-entropy (GB, Num) pairs APB workloads produce evenly over the mask.
func (c *Sharded) shardIndex(k Key) uint64 {
	h := uint64(uint32(k.GB))<<32 | uint64(uint32(k.Num))
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h & c.mask
}

func (c *Sharded) shard(k Key) *shard { return &c.shards[c.shardIndex(k)] }

// reserve charges delta bytes against the global capacity, failing without
// side effects when it would overflow.
func (c *Sharded) reserve(delta int64) bool {
	for {
		u := c.used.Load()
		if u+delta > c.capacity {
			return false
		}
		if c.used.CompareAndSwap(u, u+delta) {
			return true
		}
	}
}

// syncGauges publishes occupancy from the global atomics; callers may hold a
// shard lock but never more than one.
func (c *Sharded) syncGauges() {
	c.met.OccupancyBytes.Set(c.used.Load())
	c.met.ResidentChunks.Set(c.resident.Load())
}

// Shards reports the stripe count.
func (c *Sharded) Shards() int { return len(c.shards) }

// SetListener implements Store.
func (c *Sharded) SetListener(l Listener) { c.listener = l }

// setTierHook implements hookable.
func (c *Sharded) setTierHook(h tierHook) { c.hook = h }

// SetMetrics implements Store.
func (c *Sharded) SetMetrics(m obs.CacheMetrics) {
	c.met = m
	c.met.CapacityBytes.Set(c.capacity)
	c.syncGauges()
}

// Capacity implements Store.
func (c *Sharded) Capacity() int64 { return c.capacity }

// Used implements Store.
func (c *Sharded) Used() int64 { return c.used.Load() }

// Len implements Store.
func (c *Sharded) Len() int { return int(c.resident.Load()) }

// Policy implements Store; the sharded store reports shard 0's instance (all
// shards run the same kind).
func (c *Sharded) Policy() Policy { return c.shards[0].policy }

// Stats implements Store: the sum over all shards, each read consistently
// under its own lock.
func (c *Sharded) Stats() Stats {
	var t Stats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		t.Hits += s.stats.Hits
		t.Misses += s.stats.Misses
		t.Inserts += s.stats.Inserts
		t.Evictions += s.stats.Evictions
		t.Removals += s.stats.Removals
		t.Denied += s.stats.Denied
		s.mu.Unlock()
	}
	return t
}

// Contains implements Store.
func (c *Sharded) Contains(k Key) bool {
	s := c.shard(k)
	s.mu.Lock()
	_, ok := s.entries[k]
	s.mu.Unlock()
	return ok
}

// Get implements Store.
func (c *Sharded) Get(k Key) (*chunk.Chunk, bool) {
	s := c.shard(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		s.stats.Misses++
		s.mu.Unlock()
		c.met.Misses.Inc()
		return nil, false
	}
	s.stats.Hits++
	s.policy.Accessed(e)
	data := e.Data
	s.mu.Unlock()
	c.met.Hits.Inc()
	return data, true
}

// GetInfo is Get plus the entry's replacement attributes, for the peer tier
// (see Cache.GetInfo).
func (c *Sharded) GetInfo(k Key) (*chunk.Chunk, Class, float64, bool) {
	s := c.shard(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		s.stats.Misses++
		s.mu.Unlock()
		c.met.Misses.Inc()
		return nil, 0, 0, false
	}
	s.stats.Hits++
	s.policy.Accessed(e)
	data, cl, benefit := e.Data, e.Class, e.Benefit
	s.mu.Unlock()
	c.met.Hits.Inc()
	return data, cl, benefit, true
}

// Peek implements Store.
func (c *Sharded) Peek(k Key) (*chunk.Chunk, bool) {
	s := c.shard(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	var data *chunk.Chunk
	if ok {
		data = e.Data
	}
	s.mu.Unlock()
	return data, ok
}

// Insert implements Store with the same replacement semantics as
// Cache.Insert, bounded by both the shard limit (local evictions make room)
// and the global capacity (reserved atomically, evicting locally until the
// reservation fits).
func (c *Sharded) Insert(k Key, data *chunk.Chunk, opts ...InsertOption) bool {
	return c.insert(k, data, applyInsertOptions(opts))
}

func (c *Sharded) insert(k Key, data *chunk.Chunk, spec insertSpec) bool {
	need := data.Bytes()
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if need > c.capacity || need > c.limit {
		s.stats.Denied++
		c.met.Denied.Inc()
		return false
	}
	if e, ok := s.entries[k]; ok {
		delta := need - e.Bytes()
		if delta > 0 {
			// Shield the entry being replaced from the victim scan.
			e.pins++
			if !c.makeRoomLocked(s, delta, spec.class) {
				e.pins--
				s.stats.Denied++
				c.met.Denied.Inc()
				return false
			}
			e.pins--
		} else {
			c.used.Add(delta)
		}
		s.used += delta
		e.Data = data
		if e.Class != spec.class {
			// Migrate to the ring matching the new class.
			s.policy.Removed(e)
			e.Class = spec.class
			s.policy.Added(e)
		}
		e.Benefit = spec.benefit
		// e.Recycled keeps its insert-time value: replacement fires no
		// listener events, and the strategy's eviction dual must match
		// whatever maintenance OnInsert performed for this residency.
		s.policy.Accessed(e)
		c.met.Replacements.Inc()
		c.syncGauges()
		return true
	}
	if c.hook != nil {
		// A cold-resident key makes this insert a promotion (see
		// Cache.insert); decided under the shard lock that serializes this
		// key's tier transitions.
		if ps, wasCold := c.hook.peekCold(k); wasCold {
			spec = ps
		}
	}
	if !c.makeRoomLocked(s, need, spec.class) {
		s.stats.Denied++
		c.met.Denied.Inc()
		return false
	}
	if spec.promoted && c.hook != nil {
		c.hook.claimCold(k)
	}
	e := &Entry{Key: k, Data: data, Class: spec.class, Benefit: spec.benefit, Recycled: spec.recycled, Promoted: spec.promoted}
	s.entries[k] = e
	s.used += need
	c.resident.Add(1)
	s.stats.Inserts++
	c.met.Inserts.Inc()
	s.policy.Added(e)
	c.syncGauges()
	if c.listener != nil {
		if spec.promoted {
			c.listener.OnEvent(Event{Key: k, Reason: Promoted, Entry: e})
		} else {
			c.listener.OnInsert(e)
		}
	}
	return true
}

// makeRoomLocked evicts from s (whose lock the caller holds) until delta more
// bytes fit under both the shard limit and the global capacity, reserving the
// global bytes on success. It reports false — with the reservation released —
// when the policy refuses to yield a victim.
func (c *Sharded) makeRoomLocked(s *shard, delta int64, cl Class) bool {
	for s.used+delta > c.limit {
		v := s.policy.NextVictim(cl)
		if v == nil {
			return false
		}
		c.removeLocked(s, v, true)
	}
	for !c.reserve(delta) {
		v := s.policy.NextVictim(cl)
		if v == nil {
			return false
		}
		c.removeLocked(s, v, true)
	}
	return true
}

// Evict implements Store.
func (c *Sharded) Evict(k Key) bool {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		return false
	}
	c.removeLocked(s, e, false)
	return true
}

// removeLocked drops e from s (whose lock the caller holds), releasing its
// global reservation; see Cache.remove for the Evictions/Removals split.
func (c *Sharded) removeLocked(s *shard, e *Entry, policyEvict bool) {
	delete(s.entries, e.Key)
	s.used -= e.Bytes()
	c.used.Add(-e.Bytes())
	c.resident.Add(-1)
	if policyEvict {
		s.stats.Evictions++
		c.met.EvictionsPolicy.Inc()
	} else {
		s.stats.Removals++
		c.met.EvictionsAdmin.Inc()
	}
	c.syncGauges()
	s.policy.Removed(e)
	reason := Removed
	if policyEvict {
		reason = Evicted
		if c.hook != nil && c.hook.demote(e) {
			reason = Demoted
		}
	}
	if c.listener != nil {
		c.listener.OnEvent(Event{Key: e.Key, Reason: reason, Entry: e})
	}
}

// Pin implements Store.
func (c *Sharded) Pin(k Key) bool {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		c.met.PinFailures.Inc()
		return false
	}
	e.pins++
	return true
}

// Unpin implements Store.
func (c *Sharded) Unpin(k Key) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok && e.pins > 0 {
		e.pins--
	}
}

// Reinforce implements Store. Keys are grouped by shard via a bitmask
// (MaxShards ≤ 64 keeps it one word) so each involved shard's lock is taken
// exactly once regardless of group size.
func (c *Sharded) Reinforce(keys []Key, benefit float64) {
	var mask uint64
	for _, k := range keys {
		mask |= 1 << c.shardIndex(k)
	}
	for mask != 0 {
		i := uint64(bits.TrailingZeros64(mask))
		mask &^= 1 << i
		s := &c.shards[i]
		s.mu.Lock()
		for _, k := range keys {
			if c.shardIndex(k) != i {
				continue
			}
			if e, ok := s.entries[k]; ok {
				s.policy.Reinforced(e, benefit)
			}
		}
		s.mu.Unlock()
	}
}

// Keys implements Store, visiting shards one at a time.
func (c *Sharded) Keys(dst []Key) []Key {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k := range s.entries {
			dst = append(dst, k)
		}
		s.mu.Unlock()
	}
	return dst
}

// Range implements Store, visiting shards one at a time; fn runs under the
// owning shard's lock and must not call back into the store.
func (c *Sharded) Range(fn func(k Key, data *chunk.Chunk, cl Class, benefit float64, recycled bool)) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, e := range s.entries {
			fn(k, e.Data, e.Class, e.Benefit, e.Recycled)
		}
		s.mu.Unlock()
	}
}
