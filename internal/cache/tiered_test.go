package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"aggcache/internal/chunk"
)

// tieredFixture builds a Tiered store whose hot tier fits exactly one
// 10-cell chunk and whose cold tier holds coldBytes of compressed payloads,
// with a recording listener attached.
func tieredFixture(t *testing.T, coldBytes int64) (*Tiered, *recordingListener) {
	t.Helper()
	hot, err := New(mkChunk(0, 0, 10).Bytes()+8, NewLRU())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tc, err := NewTiered(hot, coldBytes)
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	lis := &recordingListener{}
	tc.SetListener(lis)
	return tc, lis
}

// reasons projects the recorded events to "Reason key" strings for compact
// order assertions.
func reasons(events []Event) []string {
	out := make([]string, len(events))
	for i, ev := range events {
		out[i] = fmt.Sprintf("%s %d", ev.Reason, ev.Key.Num)
	}
	return out
}

// TestTieredEventOrdering walks a chunk through the full taxonomy — demote on
// hot-tier eviction, promote on cold hit (demoting the displaced resident),
// evict under cold pressure, remove administratively — and pins the exact
// listener event sequence.
func TestTieredEventOrdering(t *testing.T) {
	// Cold tier sized for two encoded 10-cell chunks (~156 charged bytes
	// each): a third demotion forces a cold eviction.
	tc, lis := tieredFixture(t, 2*160)

	tc.Insert(key(1), mkChunk(0, 1, 10), AsBackend(1))
	tc.Insert(key(2), mkChunk(0, 2, 10), AsBackend(2)) // hot evicts 1 -> demote
	if _, ok := tc.Get(key(1)); !ok {                  // cold hit -> promote 1, demote 2
		t.Fatalf("cold-resident key 1 not served")
	}
	tc.Insert(key(3), mkChunk(0, 3, 10), AsBackend(3)) // demote 1; cold {2,1} full
	tc.Insert(key(4), mkChunk(0, 4, 10), AsBackend(4)) // demote 3; cold evicts LRU 2
	if !tc.Evict(key(1)) {                             // administrative removal from cold
		t.Fatalf("Evict(1) found nothing")
	}

	want := []string{
		"demoted 1",
		"demoted 2", "promoted 1",
		"demoted 1",
		"evicted 2", "demoted 3",
		"removed 1",
	}
	got := reasons(lis.events)
	if len(got) != len(want) {
		t.Fatalf("events %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event[%d] = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
	// Demoted and Promoted keep the chunk answerable; the listener's
	// unanswerable-eviction view must contain exactly the cold eviction and
	// nothing else (Removed is administrative, also not an eviction signal
	// for strategies — but recordingListener folds any !Answerable there).
	if len(lis.evicted) != 2 || lis.evicted[0] != key(2) || lis.evicted[1] != key(1) {
		t.Fatalf("unanswerable events = %v, want [2 1]", lis.evicted)
	}
}

// TestTieredPromotePreservesAttributes checks that demotion and promotion
// carry class, benefit and the recycled bit through the cold tier verbatim.
func TestTieredPromotePreservesAttributes(t *testing.T) {
	tc, _ := tieredFixture(t, 4096)

	tc.Insert(key(1), mkChunk(0, 1, 10), AsRecycled(42.5))
	tc.Insert(key(2), mkChunk(0, 2, 10), AsBackend(0)) // demotes 1
	if tc.Hot().Contains(key(1)) {
		t.Fatalf("key 1 still hot after demotion")
	}
	if _, ok := tc.Get(key(1)); !ok { // promotes 1
		t.Fatalf("cold-resident key 1 not served")
	}
	found := false
	tc.Hot().Range(func(k Key, data *chunk.Chunk, cl Class, benefit float64, recycled bool) {
		if k != key(1) {
			return
		}
		found = true
		if cl != ClassComputed || benefit != 42.5 || !recycled {
			t.Fatalf("promoted attrs = (%v, %v, %v), want (computed, 42.5, true)", cl, benefit, recycled)
		}
	})
	if !found {
		t.Fatalf("key 1 not hot after promotion")
	}
}

// TestTieredReinforceAfterPromoteNoDoubleCharge pins the byte-accounting fix:
// a promoted chunk's bytes are charged once, by the promotion insert, and
// Reinforce on it must not change Used on either tier.
func TestTieredReinforceAfterPromoteNoDoubleCharge(t *testing.T) {
	tc, _ := tieredFixture(t, 4096)
	data := mkChunk(0, 1, 10)

	tc.Insert(key(1), data, AsComputed(5))
	tc.Insert(key(2), mkChunk(0, 2, 10), AsBackend(0)) // demotes 1
	if _, ok := tc.Get(key(1)); !ok {                  // promotes 1, demotes 2
		t.Fatalf("cold-resident key 1 not served")
	}
	if got := tc.Hot().Used(); got != data.Bytes() {
		t.Fatalf("hot used %d after promote, want one chunk = %d", got, data.Bytes())
	}
	before := tc.Used()
	tc.Reinforce([]Key{key(1)}, 9)
	tc.Reinforce([]Key{key(1)}, 9)
	if got := tc.Used(); got != before {
		t.Fatalf("Reinforce changed Used: %d -> %d", before, got)
	}
	if got := tc.Hot().Used(); got != data.Bytes() {
		t.Fatalf("hot used %d after Reinforce, want %d", got, data.Bytes())
	}
}

// TestTieredGetServesAndCounts covers the Stats fold: a cold hit was counted
// as a hot miss on the way through, so the combined view reports it as a hit.
func TestTieredGetServesAndCounts(t *testing.T) {
	tc, _ := tieredFixture(t, 4096)
	orig := mkChunk(0, 1, 10)
	tc.Insert(key(1), orig, AsBackend(0))
	tc.Insert(key(2), mkChunk(0, 2, 10), AsBackend(0)) // demotes 1

	got, ok := tc.Get(key(1))
	if !ok {
		t.Fatalf("cold-resident key 1 not served")
	}
	if len(got.Keys) != len(orig.Keys) {
		t.Fatalf("promoted chunk has %d cells, want %d", len(got.Keys), len(orig.Keys))
	}
	for i := range orig.Keys {
		if got.Keys[i] != orig.Keys[i] || got.Vals[i] != orig.Vals[i] {
			t.Fatalf("cell %d corrupted through demote/promote", i)
		}
	}
	st := tc.Stats()
	if st.Misses != 0 {
		t.Fatalf("cold hit counted as miss: %+v", st)
	}
	ts := tc.TierStats()
	if ts.ColdHits != 1 || ts.Promotes != 1 || ts.Demotes != 2 {
		t.Fatalf("tier stats = %+v, want 1 cold hit, 1 promote, 2 demotes", ts)
	}
	if _, ok := tc.Get(key(9)); ok {
		t.Fatalf("absent key served")
	}
	if tc.TierStats().ColdMisses != 1 {
		t.Fatalf("double miss not counted")
	}
}

// TestTieredResidencyInvariant checks a key is never resident in both tiers:
// Keys over both tiers has no duplicates at every step of a random walk.
func TestTieredResidencyInvariant(t *testing.T) {
	tc, _ := tieredFixture(t, 3*160)
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 500; step++ {
		k := key(rng.Intn(8))
		switch rng.Intn(4) {
		case 0, 1:
			tc.Insert(k, mkChunk(0, int(k.Num), 10), AsBackend(float64(rng.Intn(5))))
		case 2:
			tc.Get(k)
		case 3:
			tc.Evict(k)
		}
		seen := map[Key]bool{}
		for _, rk := range tc.Keys(nil) {
			if seen[rk] {
				t.Fatalf("step %d: key %v resident in both tiers", step, rk)
			}
			seen[rk] = true
		}
		if got := tc.Len(); got != len(seen) {
			t.Fatalf("step %d: Len %d != %d unique keys", step, got, len(seen))
		}
	}
}

// TestTieredConcurrentSoak hammers a sharded hot tier plus cold tier from
// many goroutines (run under -race in CI) and then verifies the shard
// invariants: byte accounting matches a recount, occupancy respects both
// capacities, and no key is dual-resident.
func TestTieredConcurrentSoak(t *testing.T) {
	hotCap := int64(16) * mkChunk(0, 0, 10).Bytes()
	hot, err := New(hotCap, NewTwoLevelPromote(), WithShards(4))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tc, err := NewTiered(hot, 4*160)
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}

	const workers, steps, keys = 8, 2_000, 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < steps; i++ {
				k := key(rng.Intn(keys))
				switch rng.Intn(8) {
				case 0, 1, 2:
					opt := AsBackend(float64(rng.Intn(9)))
					if rng.Intn(2) == 1 {
						opt = AsComputed(float64(rng.Intn(9)))
					}
					tc.Insert(k, mkChunk(0, int(k.Num), 1+rng.Intn(12)), opt)
				case 3, 4, 5:
					tc.Get(k)
				case 6:
					tc.Reinforce([]Key{k}, float64(rng.Intn(9)))
				case 7:
					tc.Evict(k)
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()

	seen := map[Key]bool{}
	for _, k := range tc.Keys(nil) {
		if seen[k] {
			t.Fatalf("key %v resident in both tiers after soak", k)
		}
		seen[k] = true
	}
	var recount int64
	tc.Hot().Range(func(_ Key, data *chunk.Chunk, _ Class, _ float64, _ bool) {
		recount += data.Bytes()
	})
	if got := tc.Hot().Used(); got != recount {
		t.Fatalf("hot Used %d != recounted %d", got, recount)
	}
	if got := tc.Hot().Used(); got > hotCap {
		t.Fatalf("hot tier over capacity: %d > %d", got, hotCap)
	}
	ts := tc.TierStats()
	if ts.ColdUsed > ts.ColdCapacity {
		t.Fatalf("cold tier over capacity: %d > %d", ts.ColdUsed, ts.ColdCapacity)
	}
	if ts.ColdUsed < 0 || ts.ColdRawBytes < 0 || ts.ColdChunks < 0 {
		t.Fatalf("negative cold occupancy: %+v", ts)
	}
}

// TestTieredRejectsBadComposition pins the constructor contract.
func TestTieredRejectsBadComposition(t *testing.T) {
	hot, err := New(1024, NewLRU())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := NewTiered(hot, 0); err == nil {
		t.Fatalf("zero cold capacity accepted")
	}
	tc, err := NewTiered(hot, 1024)
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	if _, err := NewTiered(tc, 1024); err == nil {
		t.Fatalf("tiered-over-tiered accepted")
	}
}

// TestTieredOversizedDemotionDenied: a victim whose encoding exceeds the
// whole cold tier truly evicts (Evicted, not Demoted).
func TestTieredOversizedDemotionDenied(t *testing.T) {
	hot, err := New(mkChunk(0, 0, 10).Bytes()+8, NewLRU())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tc, err := NewTiered(hot, 70) // below the per-entry overhead + payload
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	lis := &recordingListener{}
	tc.SetListener(lis)
	tc.Insert(key(1), mkChunk(0, 1, 10), AsBackend(0))
	tc.Insert(key(2), mkChunk(0, 2, 10), AsBackend(0))
	if got := reasons(lis.events); len(got) != 1 || got[0] != "evicted 1" {
		t.Fatalf("events = %v, want [evicted 1]", got)
	}
	if tc.TierStats().DemoteDenied != 1 {
		t.Fatalf("DemoteDenied = %d, want 1", tc.TierStats().DemoteDenied)
	}
}
