package cache

import (
	"math/rand"
	"sync"
	"testing"

	"aggcache/internal/apb"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
)

// stubPolicy is a minimal Policy that deliberately does not implement Forker.
type stubPolicy struct{}

func (stubPolicy) Name() string               { return "stub" }
func (stubPolicy) Added(*Entry)               {}
func (stubPolicy) Removed(*Entry)             {}
func (stubPolicy) Accessed(*Entry)            {}
func (stubPolicy) Reinforced(*Entry, float64) {}
func (stubPolicy) NextVictim(cl Class) *Entry { return nil }

func newSharded4(t *testing.T, capacity int64) *Sharded {
	t.Helper()
	s, err := New(capacity, NewTwoLevel(), WithShards(4))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s.(*Sharded)
}

// shardKey returns the i-th key num (starting the probe at from) that hashes
// onto the given shard, so tests can aim inserts at one stripe.
func shardKey(c *Sharded, want uint64, from int) Key {
	for num := from; ; num++ {
		if k := key(num); c.shardIndex(k) == want {
			return k
		}
	}
}

func TestNewShardSelection(t *testing.T) {
	// Default and n=1 build the single-lock reference store.
	for _, opts := range [][]Option{nil, {WithShards(1)}} {
		s, err := New(1000, NewLRU(), opts...)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, ok := s.(*Cache); !ok {
			t.Fatalf("expected *Cache, got %T", s)
		}
	}
	// Requested counts round up to a power of two and cap at MaxShards.
	for _, tc := range []struct{ ask, want int }{{2, 2}, {3, 4}, {16, 16}, {33, 64}, {1000, MaxShards}} {
		s, err := New(1_000_000, NewLRU(), WithShards(tc.ask))
		if err != nil {
			t.Fatalf("WithShards(%d): %v", tc.ask, err)
		}
		sh, ok := s.(*Sharded)
		if !ok {
			t.Fatalf("WithShards(%d): got %T", tc.ask, s)
		}
		if sh.Shards() != tc.want {
			t.Fatalf("WithShards(%d) = %d shards, want %d", tc.ask, sh.Shards(), tc.want)
		}
	}
	// Auto (n = 0) must build a valid store whatever GOMAXPROCS is.
	s, err := New(1000, NewLRU(), WithShards(0))
	if err != nil {
		t.Fatalf("WithShards(0): %v", err)
	}
	if n, ok := s.(interface{ Shards() int }); !ok || n.Shards() < 1 {
		t.Fatalf("auto store has no shard count: %T", s)
	}
	// A policy without Fork cannot back a sharded store …
	if _, err := New(1000, stubPolicy{}, WithShards(2)); err == nil {
		t.Fatalf("non-Forker policy accepted for a sharded store")
	}
	// … unless a factory supplies the extra instances.
	if _, err := New(1000, stubPolicy{}, WithShards(2), WithPolicyFactory(func() Policy { return stubPolicy{} })); err != nil {
		t.Fatalf("WithPolicyFactory: %v", err)
	}
	// Invalid direct constructions are rejected.
	if _, err := newSharded(1000, 3, NewLRU(), func() Policy { return NewLRU() }); err == nil {
		t.Fatalf("newSharded accepted a non-power-of-two count")
	}
}

// TestShardDistributionUniformity hashes every (group-by, chunk) key an APB-1
// grid can produce and checks the spread over 16 shards: no stripe may be
// pathologically hot or cold, or the striped lock would degrade back to a
// global one.
func TestShardDistributionUniformity(t *testing.T) {
	for _, scale := range []apb.Scale{apb.ScaleTiny, apb.ScaleSmall} {
		cfg := apb.New(scale)
		g, err := chunk.NewGrid(cfg.Schema, cfg.ChunkCounts)
		if err != nil {
			t.Fatalf("NewGrid: %v", err)
		}
		s, err := New(1<<30, NewTwoLevel(), WithShards(16))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		c := s.(*Sharded)
		counts := make([]int, c.Shards())
		total := 0
		lat := g.Lattice()
		for gb := 0; gb < lat.NumNodes(); gb++ {
			for num := 0; num < g.NumChunks(lattice.ID(gb)); num++ {
				counts[c.shardIndex(Key{GB: lattice.ID(gb), Num: int32(num)})]++
				total++
			}
		}
		mean := float64(total) / float64(len(counts))
		for i, n := range counts {
			if float64(n) > 2*mean || float64(n) < mean/4 {
				t.Errorf("%v: shard %d holds %d of %d keys (mean %.1f)", scale, i, n, total, mean)
			}
		}
	}
}

// TestShardedBasics mirrors TestCacheBasics on a 4-shard store: the Store
// surface must behave identically whichever implementation backs it.
func TestShardedBasics(t *testing.T) {
	c := newSharded4(t, 100_000)
	for num := 0; num < 8; num++ {
		if !c.Insert(key(num), mkChunk(0, num, 10), AsBackend(100)) {
			t.Fatalf("insert %d denied", num)
		}
	}
	if c.Len() != 8 {
		t.Fatalf("Len = %d", c.Len())
	}
	if want := 8 * mkChunk(0, 0, 10).Bytes(); c.Used() != want {
		t.Fatalf("Used = %d, want %d", c.Used(), want)
	}
	if d, ok := c.Get(key(3)); !ok || d.Cells() != 10 {
		t.Fatalf("Get(3) = %v,%v", d, ok)
	}
	if _, ok := c.Get(key(99)); ok {
		t.Fatalf("Get(99) should miss")
	}
	if d, ok := c.Peek(key(5)); !ok || d.Cells() != 10 {
		t.Fatalf("Peek(5) = %v,%v", d, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 8 {
		t.Fatalf("stats = %+v", st)
	}
	if ks := c.Keys(nil); len(ks) != 8 {
		t.Fatalf("Keys = %v", ks)
	}
	var sum int64
	c.Range(func(_ Key, data *chunk.Chunk, _ Class, _ float64, _ bool) { sum += data.Bytes() })
	if sum != c.Used() {
		t.Fatalf("Range bytes %d != Used %d", sum, c.Used())
	}
	if !c.Evict(key(3)) || c.Evict(key(3)) {
		t.Fatalf("Evict misbehaved")
	}
	if st := c.Stats(); st.Removals != 1 || st.Evictions != 0 {
		t.Fatalf("admin evict stats = %+v", st)
	}
	if c.Len() != 7 {
		t.Fatalf("Len after evict = %d", c.Len())
	}
}

// TestShardedPinInterleavings exercises pin/evict/insert orderings on a
// 2-shard store, aiming keys at specific stripes.
func TestShardedPinInterleavings(t *testing.T) {
	// Capacity for 4 chunks of 304 bytes; per-shard limit is 912 (3 chunks).
	s, err := New(4*304, NewBenefitClock(), WithShards(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c := s.(*Sharded)
	a1 := shardKey(c, 0, 0)
	a2 := shardKey(c, 0, int(a1.Num)+1)
	a3 := shardKey(c, 0, int(a2.Num)+1)
	a4 := shardKey(c, 0, int(a3.Num)+1)
	b1 := shardKey(c, 1, 0)

	mk := func(k Key) *chunk.Chunk { return mkChunk(int(k.GB), int(k.Num), 10) }
	c.Insert(a1, mk(a1), AsBackend(1))
	c.Insert(a2, mk(a2), AsBackend(1))
	c.Insert(a3, mk(a3), AsBackend(1))
	c.Insert(b1, mk(b1), AsBackend(1))
	if !c.Pin(a1) || !c.Pin(a2) || !c.Pin(a3) {
		t.Fatalf("Pin failed")
	}
	// Shard 0 is at its limit with every entry pinned: the insert must be
	// denied rather than evict a pinned chunk or touch shard 1.
	if c.Insert(a4, mk(a4), AsBackend(1)) {
		t.Fatalf("insert admitted with the whole shard pinned")
	}
	if !c.Contains(b1) {
		t.Fatalf("other shard's chunk was evicted")
	}
	c.Unpin(a2)
	if !c.Insert(a4, mk(a4), AsBackend(1)) {
		t.Fatalf("insert denied after unpin")
	}
	if c.Contains(a2) {
		t.Fatalf("unpinned chunk should have been the victim")
	}
	if !c.Contains(a1) || !c.Contains(a3) {
		t.Fatalf("pinned chunk evicted")
	}
	// Pinning a missing key fails; unpinning one is a no-op.
	if c.Pin(a2) {
		t.Fatalf("pinned a missing key")
	}
	c.Unpin(a2)
	// Administrative Evict overrides pins, exactly like the reference store.
	if !c.Evict(a1) {
		t.Fatalf("admin evict of a pinned key failed")
	}
	c.Unpin(a3)
	if c.Used() > c.Capacity() {
		t.Fatalf("Used %d > Capacity %d", c.Used(), c.Capacity())
	}
}

// TestShardedCapacityBorrowing checks the borrow margin: one hot shard may
// charge up to 1.5× its even share, the global bound still holds, and when it
// binds the inserting shard evicts locally.
func TestShardedCapacityBorrowing(t *testing.T) {
	const chunkBytes = 304 // 10 cells
	s, err := New(4*chunkBytes, NewBenefitClock(), WithShards(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c := s.(*Sharded)
	// Even share is 2 chunks; the margin lets a hot shard hold 3.
	hot := make([]Key, 4)
	hot[0] = shardKey(c, 0, 0)
	for i := 1; i < 4; i++ {
		hot[i] = shardKey(c, 0, int(hot[i-1].Num)+1)
	}
	for i := 0; i < 3; i++ {
		if !c.Insert(hot[i], mkChunk(0, int(hot[i].Num), 10), AsBackend(1)) {
			t.Fatalf("borrowing insert %d denied", i)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("hot shard could not borrow: Len = %d", c.Len())
	}
	if c.Used() <= c.Capacity()/2 {
		t.Fatalf("borrowing did not exceed the even share: Used = %d", c.Used())
	}
	// A fourth chunk exceeds the shard limit: evict locally, stay at 3.
	if !c.Insert(hot[3], mkChunk(0, int(hot[3].Num), 10), AsBackend(1)) {
		t.Fatalf("insert at the shard limit denied")
	}
	if c.Len() != 3 || !c.Contains(hot[3]) {
		t.Fatalf("local eviction failed: Len = %d", c.Len())
	}

	// Now make the global bound bind: the cold shard takes one chunk fine,
	// but a second forces it to evict locally (3 + 2 chunks > capacity 4).
	cold1 := shardKey(c, 1, 0)
	cold2 := shardKey(c, 1, int(cold1.Num)+1)
	if !c.Insert(cold1, mkChunk(0, int(cold1.Num), 10), AsBackend(1)) {
		t.Fatalf("cold insert denied")
	}
	if c.Used() != c.Capacity() {
		t.Fatalf("Used = %d, want full capacity %d", c.Used(), c.Capacity())
	}
	if !c.Insert(cold2, mkChunk(0, int(cold2.Num), 10), AsBackend(1)) {
		t.Fatalf("insert under a binding global bound denied")
	}
	if !c.Contains(cold2) || c.Contains(cold1) {
		t.Fatalf("global-bound eviction chose a remote victim")
	}
	if c.Used() > c.Capacity() {
		t.Fatalf("Used %d > Capacity %d", c.Used(), c.Capacity())
	}

	// Edge: a chunk larger than the per-shard limit is denied even when the
	// global capacity could hold it — the stripe bound is the admission unit.
	s2, _ := New(1000, NewBenefitClock(), WithShards(2))
	c2 := s2.(*Sharded)
	big := mkChunk(0, 0, 30) // 784 bytes > 750 shard limit
	if c2.Insert(key(0), big, AsBackend(1)) {
		t.Fatalf("chunk above the shard limit admitted")
	}
	if c2.Stats().Denied != 1 {
		t.Fatalf("Denied = %d", c2.Stats().Denied)
	}

	// Degenerate: capacity below the shard count would give a zero per-shard
	// limit; the store falls back to the global bound only.
	s3, _ := New(50, NewBenefitClock(), WithShards(64))
	c3 := s3.(*Sharded)
	if c3.limit != c3.capacity {
		t.Fatalf("degenerate limit = %d, want the full capacity %d", c3.limit, c3.capacity)
	}
}

// TestShardedReinforceKeepsGroup is TestTwoLevelReinforceKeepsGroup aimed at
// one stripe of a sharded store: Reinforce's shard grouping must reach the
// policy instance that owns the keys, and missing keys are ignored.
func TestShardedReinforceKeepsGroup(t *testing.T) {
	s, err := New(4*304, NewTwoLevel(), WithShards(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c := s.(*Sharded)
	k1 := shardKey(c, 0, 0)
	k2 := shardKey(c, 0, int(k1.Num)+1)
	k3 := shardKey(c, 0, int(k2.Num)+1)
	other := shardKey(c, 1, 0)
	c.Insert(k1, mkChunk(0, int(k1.Num), 10), AsComputed(1))
	c.Insert(k2, mkChunk(0, int(k2.Num), 10), AsComputed(1))
	c.Insert(k3, mkChunk(0, int(k3.Num), 10), AsComputed(1)) // shard full
	c.Reinforce([]Key{k1, k3, other, {GB: 9, Num: 9}}, 1e9)
	if !c.Insert(shardKey(c, 0, int(k3.Num)+1), mkChunk(0, 99, 10), AsComputed(1)) {
		t.Fatalf("insert denied")
	}
	if !c.Contains(k1) || !c.Contains(k3) {
		t.Fatalf("reinforced chunks were evicted")
	}
	if c.Contains(k2) {
		t.Fatalf("non-reinforced chunk should have been the victim")
	}
}

// TestShardedEquivalence runs one deterministic operation sequence against
// the single-lock store and a 4-shard store with headroom (no evictions) and
// requires identical observable state: the implementations may only diverge
// in victim choice, never in residence semantics.
func TestShardedEquivalence(t *testing.T) {
	single, err := New(1<<20, NewTwoLevel())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sharded, err := New(1<<20, NewTwoLevel(), WithShards(4))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(42))
	for op := 0; op < 2000; op++ {
		num := rng.Intn(200)
		switch rng.Intn(6) {
		case 0, 1, 2:
			n := 1 + rng.Intn(20)
			opt := AsBackend
			if rng.Intn(2) == 1 {
				opt = AsComputed
			}
			b := float64(rng.Intn(1000))
			if single.Insert(key(num), mkChunk(0, num, n), opt(b)) != sharded.Insert(key(num), mkChunk(0, num, n), opt(b)) {
				t.Fatalf("op %d: Insert verdicts differ", op)
			}
		case 3:
			d1, ok1 := single.Get(key(num))
			d2, ok2 := sharded.Get(key(num))
			if ok1 != ok2 || (ok1 && d1.Cells() != d2.Cells()) {
				t.Fatalf("op %d: Get(%d) differs", op, num)
			}
		case 4:
			if single.Evict(key(num)) != sharded.Evict(key(num)) {
				t.Fatalf("op %d: Evict verdicts differ", op)
			}
		case 5:
			ks := []Key{key(num), key(rng.Intn(200))}
			single.Reinforce(ks, float64(rng.Intn(100)))
			sharded.Reinforce(ks, float64(rng.Intn(100)))
		}
	}
	if single.Len() != sharded.Len() || single.Used() != sharded.Used() {
		t.Fatalf("state diverged: len %d/%d used %d/%d",
			single.Len(), sharded.Len(), single.Used(), sharded.Used())
	}
	st1, st2 := single.Stats(), sharded.Stats()
	if st1 != st2 {
		t.Fatalf("stats diverged: %+v vs %+v", st1, st2)
	}
	for _, k := range single.Keys(nil) {
		if !sharded.Contains(k) {
			t.Fatalf("key %v resident in single but not sharded", k)
		}
	}
}

// TestShardedConcurrentSoak hammers a small sharded store from 8 goroutines
// with every Store operation and checks the byte-accounting invariants at the
// end. Run under -race this is the tentpole's core validation.
func TestShardedConcurrentSoak(t *testing.T) {
	for _, shards := range []int{2, 8} {
		s, err := New(8_000, NewTwoLevel(), WithShards(shards))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				var pinned []Key
				for op := 0; op < 400; op++ {
					num := rng.Intn(40)
					switch rng.Intn(8) {
					case 0, 1, 2:
						opt := AsBackend
						if rng.Intn(2) == 1 {
							opt = AsComputed
						}
						s.Insert(key(num), mkChunk(0, num, 1+rng.Intn(12)), opt(float64(rng.Intn(1000))))
					case 3:
						s.Get(key(num))
					case 4:
						if s.Pin(key(num)) {
							pinned = append(pinned, key(num))
						}
					case 5:
						if len(pinned) > 0 {
							s.Unpin(pinned[len(pinned)-1])
							pinned = pinned[:len(pinned)-1]
						}
					case 6:
						s.Reinforce([]Key{key(num), key(rng.Intn(40))}, float64(rng.Intn(100)))
					case 7:
						s.Stats()
						s.Len()
						s.Used()
					}
					if u := s.Used(); u > s.Capacity() {
						t.Errorf("Used %d > Capacity %d", u, s.Capacity())
						return
					}
				}
				for _, k := range pinned {
					s.Unpin(k)
				}
			}(w)
		}
		wg.Wait()
		var sum int64
		n := 0
		s.Range(func(_ Key, data *chunk.Chunk, _ Class, _ float64, _ bool) {
			sum += data.Bytes()
			n++
		})
		if sum != s.Used() {
			t.Fatalf("shards=%d: Range bytes %d != Used %d", shards, sum, s.Used())
		}
		if n != s.Len() {
			t.Fatalf("shards=%d: Range count %d != Len %d", shards, n, s.Len())
		}
		if len(s.Keys(nil)) != n {
			t.Fatalf("shards=%d: Keys/Range disagree", shards)
		}
	}
}

// TestStoreStatsConcurrent reads Stats/Len while writers mutate the store, on
// both implementations. Regression for the unsynchronized Stats()/Len() reads
// the single-lock cache used to allow.
func TestStoreStatsConcurrent(t *testing.T) {
	stores := map[string]Store{}
	s1, _ := New(8_000, NewTwoLevel())
	s2, _ := New(8_000, NewTwoLevel(), WithShards(4))
	stores["single"], stores["sharded"] = s1, s2
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < 500; i++ {
						num := rng.Intn(30)
						s.Insert(key(num), mkChunk(0, num, 1+rng.Intn(10)), AsBackend(1))
						s.Get(key(rng.Intn(30)))
					}
				}(w)
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			// Read the counters from this goroutine while the writers run.
			for alive := true; alive; {
				select {
				case <-done:
					alive = false
				default:
				}
				st := s.Stats()
				if st.Hits < 0 || st.Inserts < 0 || s.Len() < 0 {
					t.Fatalf("impossible counters: %+v", st)
				}
			}
			if st := s.Stats(); st.Inserts == 0 {
				t.Fatalf("no inserts recorded: %+v", st)
			}
		})
	}
}
