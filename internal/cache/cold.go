package cache

import (
	"sync"

	"aggcache/internal/chunk"
)

// coldEntryOverhead is the fixed footprint charged per cold-tier entry on
// top of its encoded payload: map slot, struct, list links.
const coldEntryOverhead = 64

// coldEntry is one compressed resident of the cold tier. The residency
// attributes (class, benefit, recycled) are preserved verbatim so a later
// promotion restores the chunk's exact pre-demotion standing.
type coldEntry struct {
	key      Key
	enc      []byte // codec-encoded cells (chunk.AppendPayload)
	rawBytes int64  // uncompressed footprint, for the compression-ratio gauge
	class    Class
	benefit  float64
	recycled bool

	newer, older *coldEntry // intrusive LRU list
}

// bytes returns the entry's charged cold-tier footprint.
func (e *coldEntry) bytes() int64 { return int64(len(e.enc)) + coldEntryOverhead }

// coldTier is the compressed in-RAM second tier: a byte-bounded map of
// codec-encoded payloads in LRU order (recency = demotion or cold-hit time).
// It is deliberately not a Store — it holds opaque compressed residents with
// no pins, no policy and no listener; the Tiered wrapper owns all event
// plumbing. All methods synchronize on mu; none call out while holding it,
// so a caller may hold a hot-shard lock (the demotion path does).
type coldTier struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	raw      int64 // sum of rawBytes over residents
	entries  map[Key]*coldEntry
	newest   *coldEntry
	oldest   *coldEntry
	stats    TierStats
}

func newColdTier(capacity int64) *coldTier {
	return &coldTier{capacity: capacity, entries: make(map[Key]*coldEntry)}
}

// unlink removes e from the LRU list; caller holds mu.
func (t *coldTier) unlink(e *coldEntry) {
	if e.newer != nil {
		e.newer.older = e.older
	} else {
		t.newest = e.older
	}
	if e.older != nil {
		e.older.newer = e.newer
	} else {
		t.oldest = e.newer
	}
	e.newer, e.older = nil, nil
}

// pushNewest links e at the head of the LRU list; caller holds mu.
func (t *coldTier) pushNewest(e *coldEntry) {
	e.older = t.newest
	e.newer = nil
	if t.newest != nil {
		t.newest.newer = e
	}
	t.newest = e
	if t.oldest == nil {
		t.oldest = e
	}
}

// dropLocked removes e entirely; caller holds mu.
func (t *coldTier) dropLocked(e *coldEntry) {
	t.unlink(e)
	delete(t.entries, e.key)
	t.used -= e.bytes()
	t.raw -= e.rawBytes
}

// add admits a demoted chunk, evicting LRU residents until it fits. It
// returns the entries evicted to make room and whether the chunk was
// admitted (false when it cannot fit even in an empty tier, or the tier is
// disabled). A key already resident is replaced in place.
func (t *coldTier) add(k Key, data *chunk.Chunk, cl Class, benefit float64, recycled bool) (evicted []*coldEntry, ok bool) {
	if t == nil || t.capacity <= 0 {
		return nil, false
	}
	enc := chunk.AppendPayload(make([]byte, 0, chunk.EncodedSize(data)), data)
	e := &coldEntry{key: k, enc: enc, rawBytes: data.Bytes(), class: cl, benefit: benefit, recycled: recycled}
	need := e.bytes()
	t.mu.Lock()
	defer t.mu.Unlock()
	if need > t.capacity {
		t.stats.DemoteDenied++
		return nil, false
	}
	if old, exists := t.entries[k]; exists {
		t.dropLocked(old)
	}
	for t.used+need > t.capacity {
		v := t.oldest
		t.dropLocked(v)
		t.stats.ColdEvicts++
		evicted = append(evicted, v)
	}
	t.entries[k] = e
	t.pushNewest(e)
	t.used += need
	t.raw += e.rawBytes
	t.stats.Demotes++
	return evicted, true
}

// peek returns the entry for k without removing it or touching recency. The
// returned entry's payload and attributes are immutable after add, so the
// caller may read them outside the lock; only the Tiered hook (under the hot
// shard lock) removes entries, so a promotion's peek-then-claim is not a
// lost-update hazard.
func (t *coldTier) peek(k Key) (*coldEntry, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[k]
	return e, ok
}

// hit and miss record cold-tier lookup outcomes.
func (t *coldTier) hit() {
	t.mu.Lock()
	t.stats.ColdHits++
	t.mu.Unlock()
}

func (t *coldTier) miss() {
	t.mu.Lock()
	t.stats.ColdMisses++
	t.mu.Unlock()
}

// remove drops k without eviction accounting (administrative removal or a
// hot re-insert superseding a stale cold copy).
func (t *coldTier) remove(k Key) (*coldEntry, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[k]
	if !ok {
		return nil, false
	}
	t.dropLocked(e)
	return e, true
}

// contains reports cold residence without touching recency.
func (t *coldTier) contains(k Key) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.entries[k]
	return ok
}

// snapshot returns a copy of every resident entry (order unspecified); the
// encoded payloads are shared, not copied — they are immutable once added.
func (t *coldTier) snapshot() []*coldEntry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*coldEntry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e)
	}
	return out
}

func (t *coldTier) len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

func (t *coldTier) usedBytes() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.used
}

// tierStats snapshots the activity counters plus occupancy gauges.
func (t *coldTier) tierStats() TierStats {
	if t == nil {
		return TierStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	s.ColdCapacity = t.capacity
	s.ColdUsed = t.used
	s.ColdRawBytes = t.raw
	s.ColdChunks = int64(len(t.entries))
	return s
}
