package cache

import "math"

// maxClock caps clock weights so reinforcement cannot make an entry
// permanently unevictable.
const maxClock = 64

// clockWeight maps a benefit (recomputation cost in cost units) to an
// initial CLOCK weight. The log keeps sweep counts bounded while preserving
// the paper's ordering: expensive-to-recompute chunks survive longer.
func clockWeight(benefit float64) float64 {
	if benefit < 0 {
		benefit = 0
	}
	w := math.Log2(1 + benefit)
	if w > maxClock {
		w = maxClock
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ring is an intrusive circular list of entries with a CLOCK hand.
type ring struct {
	hand *Entry
	n    int
	id   int8
}

func (r *ring) push(e *Entry) {
	e.ringID = r.id
	if r.hand == nil {
		e.next, e.prev = e, e
		r.hand = e
	} else {
		// Insert just behind the hand (the position last swept).
		tail := r.hand.prev
		tail.next = e
		e.prev = tail
		e.next = r.hand
		r.hand.prev = e
	}
	r.n++
}

func (r *ring) drop(e *Entry) {
	if r.n == 1 {
		r.hand = nil
	} else {
		e.prev.next = e.next
		e.next.prev = e.prev
		if r.hand == e {
			r.hand = e.next
		}
	}
	e.next, e.prev = nil, nil
	r.n--
}

// sweep runs the CLOCK algorithm: decrement weights until an unpinned entry
// with weight ≤ 0 is found. If every entry stays positive after bounded
// passes (or is pinned), it falls back to the minimum-weight unpinned entry.
// Returns nil when nothing is evictable.
func (r *ring) sweep() *Entry {
	if r.n == 0 {
		return nil
	}
	limit := r.n * int(maxClock+1)
	for i := 0; i < limit; i++ {
		e := r.hand
		r.hand = e.next
		if e.Pinned() {
			continue
		}
		if e.clock <= 0 {
			return e
		}
		e.clock--
	}
	// All pinned, or pathological weights: pick the minimum unpinned.
	var min *Entry
	e := r.hand
	for i := 0; i < r.n; i++ {
		if !e.Pinned() && (min == nil || e.clock < min.clock) {
			min = e
		}
		e = e.next
	}
	return min
}

// sweepClass runs the CLOCK pass over r but considers — and ages — only
// unpinned entries of class cl; entries of other classes are passed over
// untouched, so a computed-class scan cannot erode backend weights.
func (r *ring) sweepClass(cl Class) *Entry {
	if r.n == 0 {
		return nil
	}
	limit := r.n * int(maxClock+1)
	for i := 0; i < limit; i++ {
		e := r.hand
		r.hand = e.next
		if e.Pinned() || e.Class != cl {
			continue
		}
		if e.clock <= 0 {
			return e
		}
		e.clock--
	}
	var min *Entry
	e := r.hand
	for i := 0; i < r.n; i++ {
		if !e.Pinned() && e.Class == cl && (min == nil || e.clock < min.clock) {
			min = e
		}
		e = e.next
	}
	return min
}

// BenefitClock is the [DRSN98] baseline replacement policy: a CLOCK
// approximation of LRU where each chunk's weight is its benefit (cost to
// recompute), so highly aggregated, expensive chunks survive longer.
type BenefitClock struct {
	r ring
}

// NewBenefitClock returns the baseline policy.
func NewBenefitClock() *BenefitClock { return &BenefitClock{} }

// Name implements Policy.
func (p *BenefitClock) Name() string { return "benefit" }

// Added implements Policy.
func (p *BenefitClock) Added(e *Entry) {
	e.clock = clockWeight(e.Benefit)
	p.r.push(e)
}

// Removed implements Policy.
func (p *BenefitClock) Removed(e *Entry) { p.r.drop(e) }

// Accessed implements Policy.
func (p *BenefitClock) Accessed(e *Entry) { e.clock = clockWeight(e.Benefit) }

// Reinforced implements Policy. The baseline treats reinforcement as a plain
// access (it has no group notion).
func (p *BenefitClock) Reinforced(e *Entry, benefit float64) { p.Accessed(e) }

// NextVictim implements Policy; class is ignored by the baseline.
func (p *BenefitClock) NextVictim(Class) *Entry { return p.r.sweep() }

// Fork implements Forker.
func (p *BenefitClock) Fork() Policy { return NewBenefitClock() }

// TwoLevel is the paper's replacement policy (§6.3):
//
//   - backend chunks have priority: they may replace cache-computed chunks
//     but cache-computed chunks may never evict backend chunks;
//   - within each class, replacement follows the benefit CLOCK;
//   - chunks used together to compute an aggregate are reinforced by the
//     aggregate's benefit, keeping useful groups resident.
type TwoLevel struct {
	backend  ring
	computed ring
	promote  bool
	// promoted counts computed-class entries living in the backend ring
	// (promote-on-reuse migrations), so the computed victim scan knows
	// whether a filtered sweep of the protected ring can find anything.
	promoted int
}

// NewTwoLevel returns the paper's two-level policy.
func NewTwoLevel() *TwoLevel {
	p := &TwoLevel{}
	p.backend.id = 0
	p.computed.id = 1
	return p
}

// NewTwoLevelPromote returns the two-level policy with promote-on-reuse:
// a computed-class entry that gets reinforced (i.e. it actually served as an
// aggregation input after being admitted) migrates to the protected ring, so
// proven-useful recycled intermediates stop competing with speculative ones.
// Entry.Class still records provenance (a promoted entry remains
// ClassComputed and is never replicated to peers); only its replacement ring
// changes. The plain NewTwoLevel keeps the paper's exact §6.3 semantics for
// the replication experiments.
func NewTwoLevelPromote() *TwoLevel {
	p := NewTwoLevel()
	p.promote = true
	return p
}

// Name implements Policy.
func (p *TwoLevel) Name() string {
	if p.promote {
		return "two-level-promote"
	}
	return "two-level"
}

func (p *TwoLevel) ringOf(e *Entry) *ring {
	if e.ringID == 0 {
		return &p.backend
	}
	return &p.computed
}

// Added implements Policy. Under promote-on-reuse, computed-class arrivals
// are probationary: they enter at the minimum clock weight so unproven
// chunks are the first reclaimed, and earn their benefit-derived weight with
// the first reinforcement (which also promotes them to the protected ring).
// Tier promotions (Entry.Promoted) skip probation entirely and land in the
// protected ring whatever their class: a chunk that survived demotion and
// was asked for again has proven reuse ("protect on promote").
func (p *TwoLevel) Added(e *Entry) {
	e.clock = clockWeight(e.Benefit)
	if e.Class == ClassBackend {
		p.backend.push(e)
		return
	}
	if e.Promoted {
		p.backend.push(e)
		p.promoted++
		return
	}
	if p.promote {
		e.clock = 1
	}
	p.computed.push(e)
}

// Removed implements Policy.
func (p *TwoLevel) Removed(e *Entry) {
	if e.ringID == p.backend.id && e.Class != ClassBackend {
		p.promoted--
	}
	p.ringOf(e).drop(e)
}

// Accessed implements Policy.
func (p *TwoLevel) Accessed(e *Entry) { e.clock = clockWeight(e.Benefit) }

// Reinforced implements Policy: add the aggregate's (log-scaled) benefit to
// the member's clock, capped so entries stay evictable eventually. Under
// promote-on-reuse, the first reinforcement of a computed-ring entry also
// moves it to the protected ring.
func (p *TwoLevel) Reinforced(e *Entry, benefit float64) {
	e.clock += clockWeight(benefit)
	if e.clock > maxClock {
		e.clock = maxClock
	}
	if p.promote && e.ringID == p.computed.id {
		p.computed.drop(e)
		p.backend.push(e)
		p.promoted++
	}
}

// NextVictim implements Policy. Computed chunks can only displace computed
// chunks; backend chunks displace computed chunks first, then other backend
// chunks. Under promote-on-reuse, a computed-class scan that finds the
// computed ring empty falls back to a class-filtered sweep of the protected
// ring: promoted intermediates are reclaimable as a last resort, true
// backend fills never are — otherwise promotions would slowly lock the whole
// cache against fresh computed inserts.
func (p *TwoLevel) NextVictim(cl Class) *Entry {
	if cl == ClassComputed {
		if v := p.computed.sweep(); v != nil {
			return v
		}
		if p.promoted > 0 {
			return p.backend.sweepClass(ClassComputed)
		}
		return nil
	}
	if v := p.computed.sweep(); v != nil {
		return v
	}
	return p.backend.sweep()
}

// Fork implements Forker, preserving the promote-on-reuse setting.
func (p *TwoLevel) Fork() Policy {
	if p.promote {
		return NewTwoLevelPromote()
	}
	return NewTwoLevel()
}
