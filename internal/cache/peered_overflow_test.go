package cache

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"aggcache/internal/chunk"
)

// blockingPeer is a Peer whose Put parks until released, wedging the
// replication worker so the bounded put queue can be filled deterministically.
type blockingPeer struct {
	started chan struct{} // receives one signal when the first Put begins
	release chan struct{} // closed to let every parked/future Put proceed
	puts    atomic.Int64
}

func newBlockingPeer() *blockingPeer {
	return &blockingPeer{started: make(chan struct{}, 1), release: make(chan struct{})}
}

func (b *blockingPeer) Get(ctx context.Context, k Key) (*chunk.Chunk, Class, float64, bool, error) {
	return nil, 0, 0, false, nil
}

func (b *blockingPeer) Put(ctx context.Context, k Key, data *chunk.Chunk, cl Class, benefit float64) error {
	select {
	case b.started <- struct{}{}:
	default:
	}
	<-b.release
	b.puts.Add(1)
	return nil
}

func (b *blockingPeer) Close() error { return nil }

// TestPeeredPutQueueOverflow pins the replication backpressure contract:
// with the single worker wedged and the bounded queue full, every further
// backend-class insert (a) still lands in the local store, (b) returns
// without blocking, and (c) increments PutDrops exactly once — and once the
// worker drains, replication resumes with no residue.
func TestPeeredPutQueueOverflow(t *testing.T) {
	const queue = 4
	local, err := New(1<<20, NewTwoLevel())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	peer := newBlockingPeer()
	p, err := NewPeered(local, PeeredConfig{
		Members:    []string{"remote"},
		Dial:       func(string) Peer { return peer },
		PutQueue:   queue,
		PutWorkers: 1,
	})
	if err != nil {
		t.Fatalf("NewPeered: %v", err)
	}
	t.Cleanup(func() { p.Close() })

	insert := func(i int) {
		t.Helper()
		start := time.Now()
		if !p.Insert(key(i), mkChunk(0, i, 5), AsBackend(1)) {
			t.Fatalf("insert %d denied", i)
		}
		// The replication path is select/default: a full queue must never
		// block the inserting query thread.
		if d := time.Since(start); d > time.Second {
			t.Fatalf("insert %d took %v with the queue full", i, d)
		}
	}

	// First insert: the worker dequeues it and parks inside Put.
	insert(0)
	select {
	case <-peer.started:
	case <-time.After(5 * time.Second):
		t.Fatalf("replication worker never picked up the first put")
	}
	// With the worker wedged, exactly PutQueue more fit in the channel.
	for i := 1; i <= queue; i++ {
		insert(i)
	}
	if drops := p.PeerStats().PutDrops; drops != 0 {
		t.Fatalf("PutDrops = %d while the queue still had room", drops)
	}
	// Sustained puts against the full queue: each increments PutDrops
	// exactly once, and nothing blocks.
	const overflow = 5
	for i := queue + 1; i <= queue+overflow; i++ {
		insert(i)
	}
	if drops := p.PeerStats().PutDrops; drops != overflow {
		t.Fatalf("PutDrops = %d after %d overflow inserts, want exactly %d", drops, overflow, overflow)
	}
	// Every insert — dropped or not — is resident locally regardless.
	for i := 0; i <= queue+overflow; i++ {
		if !local.Contains(key(i)) {
			t.Fatalf("chunk %d missing from the local store", i)
		}
	}

	// Drain: the wedged put and the queued ones all deliver.
	close(peer.release)
	deadline := time.Now().Add(5 * time.Second)
	for p.PeerStats().Puts != queue+1 {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d puts after drain, want %d", p.PeerStats().Puts, queue+1)
		}
		time.Sleep(time.Millisecond)
	}
	// Recovery: a fresh insert replicates normally and drops stay put.
	insert(queue + overflow + 1)
	deadline = time.Now().Add(5 * time.Second)
	for p.PeerStats().Puts != queue+2 {
		if time.Now().After(deadline) {
			t.Fatalf("post-drain replication never delivered (puts=%d)", p.PeerStats().Puts)
		}
		time.Sleep(time.Millisecond)
	}
	if drops := p.PeerStats().PutDrops; drops != overflow {
		t.Fatalf("PutDrops moved to %d after recovery, want still %d", drops, overflow)
	}
}
