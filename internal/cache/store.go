package cache

import (
	"fmt"
	"math/bits"
	"runtime"

	"aggcache/internal/chunk"
	"aggcache/internal/obs"
)

// Store is the chunk-cache contract the rest of the system programs against.
// It captures the full surface the engine, the lookup strategies, snapshots
// and the daemons need, so any implementation — the single-lock reference
// [Cache] or the lock-striped [Sharded] — can sit behind the middle tier.
//
// Locking contract: implementations synchronize internally; callers never
// wrap Store calls in an external lock. Listener and Policy callbacks fire
// synchronously while the store holds the internal lock covering the affected
// key, so they must be fast and must not call back into the same Store (that
// would self-deadlock). Chunk payloads (*chunk.Chunk) are immutable, so a
// payload pointer returned by Get/Peek/Range may be read after the call
// returns; pin the key first if the payload must stay resident while you use
// it.
type Store interface {
	// Get returns the chunk payload for k, updating replacement state and
	// hit/miss counters.
	Get(k Key) (*chunk.Chunk, bool)
	// Peek returns the chunk payload without touching replacement state or
	// hit/miss counters.
	Peek(k Key) (*chunk.Chunk, bool)
	// Insert makes data resident under k, evicting per the policy as needed,
	// and reports whether the chunk was admitted. The options select the
	// residency variant (backend-class with zero benefit by default); see
	// InsertOption. See Cache.Insert for the replacement semantics every
	// implementation follows.
	Insert(k Key, data *chunk.Chunk, opts ...InsertOption) bool
	// Evict removes k if resident (administrative removal, not a policy
	// eviction).
	Evict(k Key) bool
	// Pin marks k in use so the policy will not evict it; it must be
	// balanced by Unpin. Pinning a non-resident key returns false.
	Pin(k Key) bool
	// Unpin releases one pin on k.
	Unpin(k Key)
	// Reinforce bumps the replacement weight of every listed resident chunk
	// by benefit (two-level policy group maintenance, §6.3).
	Reinforce(keys []Key, benefit float64)
	// Contains reports residence without touching replacement state.
	Contains(k Key) bool
	// Keys appends all resident keys to dst; order is unspecified.
	Keys(dst []Key) []Key
	// Range calls fn for every resident entry (order unspecified) with its
	// residency attributes. fn runs under the store's internal lock(s) and
	// must not call back into the store.
	Range(fn func(k Key, data *chunk.Chunk, cl Class, benefit float64, recycled bool))
	// Stats returns a consistent copy of the activity counters.
	Stats() Stats
	// Capacity returns the byte bound.
	Capacity() int64
	// Used returns the bytes currently charged.
	Used() int64
	// Len returns the number of resident chunks.
	Len() int
	// SetListener registers the strategy callback; pass nil to clear. Call
	// it before the store serves traffic.
	SetListener(l Listener)
	// SetMetrics attaches live observability metrics; call it before the
	// store serves traffic.
	SetMetrics(m obs.CacheMetrics)
	// Policy exposes a replacement policy for reporting (Name). On a
	// sharded store this is one representative shard's instance.
	Policy() Policy
}

// insertSpec is the resolved residency of one Insert call.
type insertSpec struct {
	class    Class
	benefit  float64
	recycled bool
	promoted bool
}

// InsertOption selects the residency variant of one Insert. The store used
// to expose three entry points (Insert with a class, InsertRecycled, and an
// implicit promote path) whose semantics differed subtly; the options fold
// them into one method so a composed store (Peered over Tiered over Sharded)
// can inspect a single spec instead of mirroring three signatures.
type InsertOption func(*insertSpec)

// applyInsertOptions resolves opts over the default spec: a backend-class
// resident with zero benefit.
func applyInsertOptions(opts []InsertOption) insertSpec {
	var s insertSpec
	for _, o := range opts {
		o(&s)
	}
	return s
}

// AsBackend marks the chunk as fetched from the backend database with the
// given recomputation benefit. This is the default class; the option exists
// to carry the benefit.
func AsBackend(benefit float64) InsertOption {
	return func(s *insertSpec) { s.class, s.benefit, s.recycled = ClassBackend, benefit, false }
}

// AsComputed marks the chunk as aggregated from cached chunks; the two-level
// policy keeps such entries replaceable ahead of backend ones (§6.3).
func AsComputed(benefit float64) InsertOption {
	return func(s *insertSpec) { s.class, s.benefit, s.recycled = ClassComputed, benefit, false }
}

// AsRecycled admits a speculative intermediate aggregate as a computed-class
// resident whose Entry carries the Recycled mark, so listener strategies
// apply presence-only (O(1)) maintenance instead of full count/cost
// propagation. Peered stores never replicate such chunks.
func AsRecycled(benefit float64) InsertOption {
	return func(s *insertSpec) { s.class, s.benefit, s.recycled = ClassComputed, benefit, true }
}

// AsPromoted marks the insert as a tier promotion: the chunk is re-entering
// the hot tier from a colder one, so it was never gone. The policy admits it
// straight into the protected ring, and the listener receives an OnEvent
// with Reason Promoted instead of OnInsert — insert-side strategy
// bookkeeping (counts, costs) survived the demotion and must not run twice.
// Compose it after a class option (AsBackend/AsComputed/AsRecycled) to
// restore the entry's pre-demotion residency.
func AsPromoted() InsertOption {
	return func(s *insertSpec) { s.promoted = true }
}

// Forker is implemented by replacement policies that can produce fresh,
// state-free instances of themselves. A sharded store needs one policy
// instance per shard (policies are stateful and synchronized by their shard's
// lock), so New requires the seed policy to implement Forker — or an explicit
// WithPolicyFactory — whenever more than one shard is requested. TwoLevel,
// BenefitClock and LRU all implement it.
type Forker interface {
	// Fork returns a new empty policy of the same kind and configuration.
	Fork() Policy
}

// MaxShards bounds the shard count; 64 keeps Reinforce's shard grouping a
// single uint64 bitmask and is far beyond the core counts this tier runs on.
const MaxShards = 64

// config collects the options shared by New's implementations.
type config struct {
	shards   int // 0 = single-lock store; -1 = auto (GOMAXPROCS rounded up)
	factory  func() Policy
	listener Listener
	metrics  *obs.CacheMetrics
}

// Option configures New. Options are applied in order; later options win.
type Option func(*config)

// WithShards selects the lock-striped implementation with n shards, rounded
// up to a power of two and capped at MaxShards. n = 1 selects the single-lock
// reference store (the default). n = 0 means "auto": GOMAXPROCS rounded up to
// a power of two.
func WithShards(n int) Option {
	return func(c *config) {
		if n == 0 {
			c.shards = -1
			return
		}
		c.shards = n
	}
}

// WithPolicyFactory supplies fresh policy instances for the extra shards of a
// sharded store, for policies that do not implement Forker. The seed policy
// passed to New serves shard 0; the factory builds the rest.
func WithPolicyFactory(f func() Policy) Option {
	return func(c *config) { c.factory = f }
}

// WithListener registers the insert/evict listener at construction time,
// replacing a later SetListener call.
func WithListener(l Listener) Option {
	return func(c *config) { c.listener = l }
}

// WithMetrics attaches the live-metrics bundle at construction time,
// replacing a later SetMetrics call.
func WithMetrics(m obs.CacheMetrics) Option {
	return func(c *config) { c.metrics = &m }
}

// New creates a chunk store bounded to capacity bytes using the given
// replacement policy. By default it returns the single-lock reference
// implementation; WithShards selects the lock-striped one. The policy must
// implement Forker (or a WithPolicyFactory must be given) when more than one
// shard is requested.
func New(capacity int64, policy Policy, opts ...Option) (Store, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity must be positive, got %d", capacity)
	}
	if policy == nil {
		return nil, fmt.Errorf("cache: policy must not be nil")
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	n := cfg.shards
	if n < 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n <= 1 {
		c := &Cache{capacity: capacity, entries: make(map[Key]*Entry), policy: policy}
		if cfg.listener != nil {
			c.SetListener(cfg.listener)
		}
		if cfg.metrics != nil {
			c.SetMetrics(*cfg.metrics)
		}
		return c, nil
	}
	n = nextPow2(n)
	if n > MaxShards {
		n = MaxShards
	}
	factory := cfg.factory
	if factory == nil {
		f, ok := policy.(Forker)
		if !ok {
			return nil, fmt.Errorf("cache: policy %s cannot be forked across %d shards (implement Forker or pass WithPolicyFactory)", policy.Name(), n)
		}
		factory = f.Fork
	}
	s, err := newSharded(capacity, n, policy, factory)
	if err != nil {
		return nil, err
	}
	if cfg.listener != nil {
		s.SetListener(cfg.listener)
	}
	if cfg.metrics != nil {
		s.SetMetrics(*cfg.metrics)
	}
	return s, nil
}

// nextPow2 rounds n up to the next power of two.
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
