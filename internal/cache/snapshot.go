package cache

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
)

// Snapshot log: the disk tier's on-disk format, used for warm restarts. The
// file is a header followed by self-delimiting records, one per resident
// chunk, each carrying its residency attributes and a codec-compressed
// payload guarded by a CRC. Records are framed so the file can be produced
// by appending and consumed record-at-a-time from an mmap'd byte slice; a
// torn tail (the process died mid-write) or a flipped bit fails that
// record's CRC and loading stops there with an error — the caller decides
// whether the prefix read so far is worth keeping (the daemon keeps it: a
// partially warm cache beats a cold one).
//
// Layout, all little-endian:
//
//	[8]byte  magic "AGCSNAP\x02"   (the trailing byte is the format version)
//	repeated records:
//	  u32 length   (of body)
//	  u32 crc32    (IEEE, of body)
//	  body:
//	    i32 gb, i32 num
//	    u8  class, u8 flags (bit0: recycled)
//	    f64 benefit
//	    payload (chunk codec, length-implied)

// snapMagic identifies a snapshot log; the last byte is the format version,
// so a format change is a magic mismatch, not a silent misparse.
var snapMagic = [8]byte{'A', 'G', 'C', 'S', 'N', 'A', 'P', 0x02}

// snapRecycled marks a recycled resident in a record's flag byte.
const snapRecycled = 0x01

// snapMaxRecord bounds a record body so a corrupt length cannot drive a
// giant allocation: 16 MiB is ~700k cells, far beyond any real chunk.
const snapMaxRecord = 16 << 20

// ErrSnapshot is wrapped by snapshot load failures (bad magic, torn or
// corrupt records), distinguishable from I/O errors with errors.Is.
var ErrSnapshot = errors.New("cache: corrupt snapshot")

// snapErr builds an error that errors.Is-matches ErrSnapshot.
func snapErr(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrSnapshot)...)
}

// SnapshotEntry is one record of a snapshot log: a chunk with the residency
// attributes a load needs to reinsert it faithfully.
type SnapshotEntry struct {
	Key      Key
	Data     *chunk.Chunk
	Class    Class
	Benefit  float64
	Recycled bool
}

// WriteSnapshot writes a snapshot log of every resident entry of s — across
// all tiers — to w, and returns the number of records written. The store
// keeps serving while the snapshot is taken (Range visits shards one at a
// time), so the result is a consistent-per-shard, not globally atomic,
// picture; exactly what a warm restart needs.
func WriteSnapshot(w io.Writer, s Store) (int, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(snapMagic[:]); err != nil {
		return 0, err
	}
	var (
		n    int
		werr error
		buf  []byte
	)
	s.Range(func(k Key, data *chunk.Chunk, cl Class, benefit float64, recycled bool) {
		if werr != nil {
			return
		}
		buf = appendSnapshotRecord(buf[:0], SnapshotEntry{
			Key: k, Data: data, Class: cl, Benefit: benefit, Recycled: recycled,
		})
		if _, err := bw.Write(buf); err != nil {
			werr = err
			return
		}
		n++
	})
	if werr != nil {
		return n, werr
	}
	return n, bw.Flush()
}

// appendSnapshotRecord appends one framed record to dst.
func appendSnapshotRecord(dst []byte, e SnapshotEntry) []byte {
	body := make([]byte, 0, 18+chunk.EncodedSize(e.Data))
	body = binary.LittleEndian.AppendUint32(body, uint32(int32(e.Key.GB)))
	body = binary.LittleEndian.AppendUint32(body, uint32(e.Key.Num))
	var flags byte
	if e.Recycled {
		flags |= snapRecycled
	}
	body = append(body, byte(e.Class), flags)
	body = binary.LittleEndian.AppendUint64(body, math.Float64bits(e.Benefit))
	body = chunk.AppendPayload(body, e.Data)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(body))
	return append(dst, body...)
}

// ReadSnapshot parses the snapshot log in src (a whole file, typically
// mmap'd) and calls fn for each record in file order. It stops at the first
// corruption with an error wrapping ErrSnapshot — records already delivered
// stand. fn may return an error to abort the scan; that error is returned
// verbatim.
func ReadSnapshot(src []byte, fn func(e SnapshotEntry) error) error {
	if len(src) < len(snapMagic) || !bytes.Equal(src[:8], snapMagic[:]) {
		return snapErr("cache: snapshot magic/version mismatch")
	}
	rest := src[8:]
	for len(rest) > 0 {
		if len(rest) < 8 {
			return snapErr("cache: snapshot record header truncated")
		}
		length := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		rest = rest[8:]
		if length > snapMaxRecord {
			return snapErr("cache: snapshot record length %d exceeds limit", length)
		}
		if uint32(len(rest)) < length {
			return snapErr("cache: snapshot record body truncated (want %d bytes, have %d)", length, len(rest))
		}
		body := rest[:length]
		rest = rest[length:]
		if crc32.ChecksumIEEE(body) != sum {
			return snapErr("cache: snapshot record checksum mismatch")
		}
		e, err := decodeSnapshotBody(body)
		if err != nil {
			return err
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// decodeSnapshotBody parses one CRC-validated record body.
func decodeSnapshotBody(body []byte) (SnapshotEntry, error) {
	if len(body) < 18 {
		return SnapshotEntry{}, snapErr("cache: snapshot record body too short")
	}
	var e SnapshotEntry
	e.Key.GB = lattice.ID(int32(binary.LittleEndian.Uint32(body)))
	e.Key.Num = int32(binary.LittleEndian.Uint32(body[4:]))
	e.Class = Class(body[8])
	if e.Class != ClassBackend && e.Class != ClassComputed {
		return SnapshotEntry{}, snapErr("cache: snapshot record has unknown class %d", body[8])
	}
	flags := body[9]
	if flags&^snapRecycled != 0 {
		return SnapshotEntry{}, snapErr("cache: snapshot record has unknown flags %#x", flags)
	}
	e.Recycled = flags&snapRecycled != 0
	e.Benefit = math.Float64frombits(binary.LittleEndian.Uint64(body[10:]))
	data, err := chunk.DecodePayload(e.Key.GB, e.Key.Num, body[18:])
	if err != nil {
		return SnapshotEntry{}, snapErr("cache: snapshot record payload: %v", err)
	}
	e.Data = data
	return e, nil
}

// SaveSnapshotFile writes a snapshot of s to path atomically: the log is
// written to a temp file in the same directory and renamed over path, so a
// crash mid-save leaves the previous snapshot intact and a reader never
// observes a torn file through the final name.
func SaveSnapshotFile(path string, s Store) (int, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	n, err := WriteSnapshot(f, s)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return n, nil
}

// readFileFallback is the portable mapFile path.
func readFileFallback(path string) ([]byte, func(), error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}

// LoadSnapshotFile memory-maps (or, where mmap is unavailable, reads) the
// snapshot at path and streams its records to fn; see ReadSnapshot for the
// corruption contract. A missing file is reported as os.ErrNotExist.
func LoadSnapshotFile(path string, fn func(e SnapshotEntry) error) error {
	data, closeMap, err := mapFile(path)
	if err != nil {
		return err
	}
	defer closeMap()
	return ReadSnapshot(data, fn)
}
