//go:build unix

package cache

import (
	"os"
	"syscall"
)

// mapFile memory-maps path read-only and returns the mapping plus a release
// func. Snapshot loads read the whole file once front-to-back; mmap lets the
// kernel page it in on demand instead of double-buffering a potentially
// multi-gigabyte log through the Go heap. Empty files (a snapshot of an
// empty store is just the magic header, never zero bytes, but be safe) and
// mmap failures fall back to a plain read.
func mapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	if size != int64(int(size)) {
		return readFileFallback(path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return readFileFallback(path)
	}
	return data, func() { _ = syscall.Munmap(data) }, nil
}
