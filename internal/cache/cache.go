// Package cache implements the middle tier's chunk cache (§2, §6 of the
// paper): bounded-size storage of chunk payloads keyed by (group-by, chunk
// number), with pluggable replacement policies — a benefit-weighted CLOCK
// (the [DRSN98] baseline) and the paper's "two-level" policy that protects
// backend-fetched chunks and reinforces groups of aggregatable chunks.
package cache

import (
	"fmt"
	"sync"

	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/obs"
)

// Key identifies a chunk of a group-by.
type Key struct {
	GB  lattice.ID
	Num int32
}

// String formats the key for diagnostics.
func (k Key) String() string { return fmt.Sprintf("%d/%d", k.GB, k.Num) }

// Class distinguishes how a cached chunk was obtained; the two-level policy
// gives backend chunks priority (§6.3).
type Class uint8

const (
	// ClassBackend marks chunks computed at the backend database.
	ClassBackend Class = iota
	// ClassComputed marks chunks computed by aggregating cached chunks.
	ClassComputed
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == ClassBackend {
		return "backend"
	}
	return "computed"
}

// Entry is one resident chunk. Entries are owned by the cache; callers must
// not retain them across cache operations (retain Entry.Data instead).
type Entry struct {
	Key     Key
	Data    *chunk.Chunk
	Class   Class
	Benefit float64 // recomputation cost in cost units; drives replacement
	// Recycled marks a speculatively admitted intermediate aggregate
	// (AsRecycled). Strategies give such entries lightweight,
	// presence-only maintenance: they serve lookups as resident chunks but
	// stay out of the count/cost bookkeeping, so admitting and evicting
	// them is O(1) instead of a lattice propagation.
	Recycled bool
	// Promoted marks an entry re-entering the hot tier from a colder one
	// (AsPromoted). The two-level policy admits such entries straight into
	// its protected ring — a chunk that earned demotion over a drop and was
	// then asked for again has proven reuse, so it must not re-enter on
	// probation ("protect on promote").
	Promoted bool

	clock      float64
	pins       int
	next, prev *Entry // intrusive ring, owned by the policy
	ringID     int8   // which policy ring holds the entry
}

// Bytes returns the entry's charged footprint.
func (e *Entry) Bytes() int64 { return e.Data.Bytes() }

// Pinned reports whether the entry is pinned (in use by an in-flight
// aggregation) and therefore not evictable.
func (e *Entry) Pinned() bool { return e.pins > 0 }

// EventReason classifies a residency transition reported to the Listener.
// The distinction the reasons exist for: after Demoted and Promoted the
// chunk is STILL ANSWERABLE from the store (it moved between tiers), so
// derived state — strategy presence bits, virtual counts, result-cache
// dependencies — must be kept; after Evicted and Removed it is gone and
// that state must be torn down.
type EventReason uint8

const (
	// Evicted: a policy-driven victim removal; the chunk left the store
	// entirely (from a tiered store: it fell out of the last tier, or the
	// cold tier refused the demotion).
	Evicted EventReason = iota
	// Demoted: the hot tier's victim was re-admitted to a colder tier in
	// compressed form. The chunk remains answerable through the store.
	Demoted
	// Removed: an administrative removal via Evict; the chunk is gone.
	Removed
	// Promoted: a cold-resident chunk was decompressed back into the hot
	// tier (on access or pin). No OnInsert fires for a promotion — the
	// chunk never stopped being resident, so insert-side bookkeeping
	// (counts, costs) must not run again.
	Promoted
)

// String implements fmt.Stringer.
func (r EventReason) String() string {
	switch r {
	case Evicted:
		return "evicted"
	case Demoted:
		return "demoted"
	case Removed:
		return "removed"
	case Promoted:
		return "promoted"
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// Event is one residency transition. Entry is valid only for the duration of
// the callback (the store owns it); Key is always usable afterwards.
type Event struct {
	Key    Key
	Reason EventReason
	Entry  *Entry
}

// Answerable reports whether the chunk can still be served by the store
// after this event — the predicate result caches and strategies branch on.
func (ev Event) Answerable() bool { return ev.Reason == Demoted || ev.Reason == Promoted }

// Listener observes insertions and residency events; the lookup strategies
// register one to maintain virtual counts and costs, and the engine's result
// cache to invalidate dependent results.
type Listener interface {
	// OnInsert is called after a chunk with no prior residency becomes
	// resident. Tier moves do not fire it — they arrive as OnEvent with
	// Reason Demoted/Promoted.
	OnInsert(e *Entry)
	// OnEvent is called after a residency transition; see EventReason for
	// which reasons leave the chunk answerable.
	OnEvent(ev Event)
}

// Policy decides replacement order. Implementations own the entries'
// intrusive list fields.
type Policy interface {
	// Name identifies the policy in experiment reports.
	Name() string
	// Added is called when an entry becomes resident.
	Added(e *Entry)
	// Removed is called when an entry leaves the cache.
	Removed(e *Entry)
	// Accessed is called on a cache hit.
	Accessed(e *Entry)
	// Reinforced is called when the entry participated in computing an
	// aggregate with the given benefit (two-level policy, §6.3).
	Reinforced(e *Entry, benefit float64)
	// NextVictim returns the next unpinned entry to evict to make room for
	// an incoming entry of class cl, or nil to deny admission.
	NextVictim(cl Class) *Entry
}

// Stats counts cache activity. Evictions counts only policy-driven victim
// removals (the replacement traffic Figures 7/8 report); explicit removals
// via Evict are counted separately as Removals.
type Stats struct {
	Hits, Misses       int64
	Inserts, Evictions int64
	Removals           int64 // explicit removals via Evict
	Denied             int64 // admissions denied by the policy
}

// Cache is the single-lock reference Store: a bounded chunk cache guarded by
// one internal mutex.
//
// Locking contract: every method acquires c.mu, so concurrent callers are
// safe without external locking. Listener and Policy callbacks fire
// synchronously under c.mu — they must not call back into the cache. Chunk
// payloads (*chunk.Chunk) are immutable, so a payload pointer obtained from
// Get/Peek may be read after the call returns, provided the entry stays
// pinned so the policy cannot evict it while readers hold the pointer.
//
// Construct instances through New (which returns the Store interface); the
// concrete type is exported so tests and the sharded store can reference the
// single-shard semantics.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[Key]*Entry
	policy   Policy
	listener Listener
	// hook is the tier seam a Tiered wrapper installs; nil for a bare store.
	// Set before the store serves traffic.
	hook  tierHook
	stats Stats
	// met is the optional live-metrics bundle; its zero value records
	// nothing. The handles are atomics, so an ops scraper can read them
	// while writers mutate the cache under c.mu.
	met obs.CacheMetrics
}

// SetListener registers the strategy callback; pass nil to clear.
func (c *Cache) SetListener(l Listener) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.listener = l
}

// setTierHook implements hookable.
func (c *Cache) setTierHook(h tierHook) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hook = h
}

// SetMetrics attaches live observability metrics; call it before the cache
// serves traffic (it is synchronized like every other cache method). The
// occupancy gauges are initialized from the current state.
func (c *Cache) SetMetrics(m obs.CacheMetrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.met = m
	c.met.CapacityBytes.Set(c.capacity)
	c.syncGauges()
}

// syncGauges publishes occupancy after a mutation; caller holds c.mu.
func (c *Cache) syncGauges() {
	c.met.OccupancyBytes.Set(c.used)
	c.met.ResidentChunks.Set(int64(len(c.entries)))
}

// Shards reports the stripe count (always 1 for the reference store).
func (c *Cache) Shards() int { return 1 }

// Capacity returns the byte bound.
func (c *Cache) Capacity() int64 { return c.capacity }

// Used returns the bytes currently charged.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len returns the number of resident chunks.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a consistent copy of the activity counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Policy returns the replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// Contains reports residence without touching replacement state; lookup
// strategies probe with it.
func (c *Cache) Contains(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[k]
	return ok
}

// Get returns the chunk payload for k, updating replacement state on a hit.
func (c *Cache) Get(k Key) (*chunk.Chunk, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.stats.Misses++
		c.met.Misses.Inc()
		return nil, false
	}
	c.stats.Hits++
	c.met.Hits.Inc()
	c.policy.Accessed(e)
	return e.Data, true
}

// GetInfo is Get plus the entry's replacement attributes: the peer tier
// serves PeerGet from it so a fill carries the owner's class and benefit
// across the wire. Serving a peer counts as an access — a chunk the group
// keeps asking for should stay resident on its owner.
func (c *Cache) GetInfo(k Key) (*chunk.Chunk, Class, float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.stats.Misses++
		c.met.Misses.Inc()
		return nil, 0, 0, false
	}
	c.stats.Hits++
	c.met.Hits.Inc()
	c.policy.Accessed(e)
	return e.Data, e.Class, e.Benefit, true
}

// Peek returns the chunk payload without touching replacement state or
// hit/miss counters.
func (c *Cache) Peek(k Key) (*chunk.Chunk, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	return e.Data, true
}

// Insert makes data resident under k, evicting per the policy as needed, and
// reports whether the chunk was admitted. With no options the chunk enters as
// a backend-class resident with zero benefit; see InsertOption for the
// residency variants. Re-inserting a resident key replaces the payload,
// re-charges the byte delta (evicting if the cache overflows), refreshes
// class/benefit and counts as an access; presence is unchanged, so no
// listener event fires. A chunk larger than the whole cache is not admitted,
// and an oversized replacement leaves the old entry resident.
func (c *Cache) Insert(k Key, data *chunk.Chunk, opts ...InsertOption) bool {
	return c.insert(k, data, applyInsertOptions(opts))
}

func (c *Cache) insert(k Key, data *chunk.Chunk, spec insertSpec) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	need := data.Bytes()
	if need > c.capacity {
		c.stats.Denied++
		c.met.Denied.Inc()
		return false
	}
	if e, ok := c.entries[k]; ok {
		if delta := need - e.Bytes(); delta > 0 {
			// Shield the entry being replaced from the victim scan.
			e.pins++
			for c.used+delta > c.capacity {
				v := c.policy.NextVictim(spec.class)
				if v == nil {
					e.pins--
					c.stats.Denied++
					c.met.Denied.Inc()
					return false
				}
				c.remove(v, true)
			}
			e.pins--
		}
		c.used += need - e.Bytes()
		e.Data = data
		if e.Class != spec.class {
			// Migrate to the ring matching the new class.
			c.policy.Removed(e)
			e.Class = spec.class
			c.policy.Added(e)
		}
		e.Benefit = spec.benefit
		// e.Recycled keeps its insert-time value: replacement fires no
		// listener events, and the strategy's eviction dual must match
		// whatever maintenance OnInsert performed for this residency.
		c.policy.Accessed(e)
		c.met.Replacements.Inc()
		c.syncGauges()
		return true
	}
	if c.hook != nil {
		// A cold-resident key makes this insert a promotion: the chunk never
		// stopped being answerable, so its preserved residency attributes
		// override the caller's and no OnInsert fires. Decided here, under
		// the lock that serializes this key's transitions.
		if ps, wasCold := c.hook.peekCold(k); wasCold {
			spec = ps
		}
	}
	for c.used+need > c.capacity {
		v := c.policy.NextVictim(spec.class)
		if v == nil {
			c.stats.Denied++
			c.met.Denied.Inc()
			return false
		}
		c.remove(v, true)
	}
	if spec.promoted && c.hook != nil {
		c.hook.claimCold(k)
	}
	e := &Entry{Key: k, Data: data, Class: spec.class, Benefit: spec.benefit, Recycled: spec.recycled, Promoted: spec.promoted}
	c.entries[k] = e
	c.used += need
	c.stats.Inserts++
	c.met.Inserts.Inc()
	c.policy.Added(e)
	c.syncGauges()
	if c.listener != nil {
		if spec.promoted {
			c.listener.OnEvent(Event{Key: k, Reason: Promoted, Entry: e})
		} else {
			c.listener.OnInsert(e)
		}
	}
	return true
}

// Evict removes k if resident; used by tests and administrative tooling.
// Explicit removals count as Stats.Removals, not Stats.Evictions.
func (c *Cache) Evict(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		return false
	}
	c.remove(e, false)
	return true
}

// remove drops e from the cache. policyEvict distinguishes policy-driven
// victim eviction (counted as Evictions) from administrative removal
// (counted as Removals); the listener is notified either way so strategies
// stay consistent with residence.
func (c *Cache) remove(e *Entry, policyEvict bool) {
	delete(c.entries, e.Key)
	c.used -= e.Bytes()
	if policyEvict {
		c.stats.Evictions++
		c.met.EvictionsPolicy.Inc()
	} else {
		c.stats.Removals++
		c.met.EvictionsAdmin.Inc()
	}
	c.syncGauges()
	c.policy.Removed(e)
	reason := Removed
	if policyEvict {
		reason = Evicted
		if c.hook != nil && c.hook.demote(e) {
			reason = Demoted
		}
	}
	if c.listener != nil {
		c.listener.OnEvent(Event{Key: e.Key, Reason: reason, Entry: e})
	}
}

// Pin marks k in use so the policy will not evict it; it must be balanced by
// Unpin. Pinning a non-resident key returns false.
func (c *Cache) Pin(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.met.PinFailures.Inc()
		return false
	}
	e.pins++
	return true
}

// Unpin releases one pin on k.
func (c *Cache) Unpin(k Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok && e.pins > 0 {
		e.pins--
	}
}

// Reinforce bumps the replacement weight of every listed resident chunk by
// benefit — the two-level policy's group maintenance (§6.3: "whenever a
// group of chunks is used to compute another chunk, the clock value of all
// the chunks in the group is incremented by ... the benefit of the
// aggregated chunk").
func (c *Cache) Reinforce(keys []Key, benefit float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, k := range keys {
		if e, ok := c.entries[k]; ok {
			c.policy.Reinforced(e, benefit)
		}
	}
}

// Keys appends all resident keys to dst; order is unspecified.
func (c *Cache) Keys(dst []Key) []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.entries {
		dst = append(dst, k)
	}
	return dst
}

// Range calls fn for every resident entry (order unspecified) with the
// entry's payload, class, benefit and recycled mark; used for snapshots and
// diagnostics. fn runs under the cache lock and must not call back into the
// cache.
func (c *Cache) Range(fn func(k Key, data *chunk.Chunk, cl Class, benefit float64, recycled bool)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		fn(k, e.Data, e.Class, e.Benefit, e.Recycled)
	}
}
