package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aggcache/internal/chunk"
	"aggcache/internal/obs"
)

// Peer is one remote cache node the Peered store can consult: a thin
// chunk-granularity get/put surface over the peer wire protocol (the mtier
// package provides the TCP implementation; tests substitute in-process
// ones). Implementations must be safe for concurrent use and must honor the
// context's deadline — a Peered store never waits on a peer longer than its
// configured timeouts.
type Peer interface {
	// Get asks the peer for k. found=false with a nil error is an
	// authoritative miss (the peer answered; it does not hold the chunk).
	Get(ctx context.Context, k Key) (data *chunk.Chunk, cl Class, benefit float64, found bool, err error)
	// Put hands the peer a chunk it owns on the ring, with the replacement
	// attributes the local tier stored it under.
	Put(ctx context.Context, k Key, data *chunk.Chunk, cl Class, benefit float64) error
	// Close releases the peer's connection.
	Close() error
}

// PeerDialer produces the Peer handle for a member address. Dialing must be
// lazy or non-blocking: the Peered store calls it at construction and on
// membership rebuild, before peers are necessarily reachable.
type PeerDialer func(addr string) Peer

// PeeredConfig configures NewPeered.
type PeeredConfig struct {
	// Self is this node's own address as it appears in Members. Keys the
	// ring assigns to Self are served locally (miss → backend). Empty means
	// this process is not a cluster member (e.g. olapcli routing into an
	// aggcached group): every owner is remote.
	Self string
	// Members is the full static cluster membership, including Self when
	// this node serves peers. Order does not matter — ring ownership is
	// name-determined, so every member (and every client) agrees.
	Members []string
	// Vnodes is the virtual nodes per member (DefaultVnodes when <= 0).
	Vnodes int
	// Dial produces peer handles; required when Members names anyone but
	// Self.
	Dial PeerDialer
	// GetTimeout bounds one peer-fill exchange (default 250ms): past it the
	// fill degrades to the backend path rather than stalling the query.
	GetTimeout time.Duration
	// PutTimeout bounds one asynchronous replication put (default 2s).
	PutTimeout time.Duration
	// BreakerThreshold is the consecutive per-peer failure count that opens
	// that peer's breaker (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open peer breaker rejects traffic
	// before the next probe (default 2s).
	BreakerCooldown time.Duration
	// PutQueue bounds the asynchronous replication queue (default 256);
	// puts beyond it are dropped and counted, never blocking an insert.
	PutQueue int
	// PutWorkers is the number of replication workers (default 2).
	PutWorkers int
	// Metrics, when set, supplies the per-peer observability bundle for
	// each member address.
	Metrics func(peer string) obs.PeerMetrics
}

func (c PeeredConfig) withDefaults() PeeredConfig {
	if c.Vnodes <= 0 {
		c.Vnodes = DefaultVnodes
	}
	if c.GetTimeout <= 0 {
		c.GetTimeout = 250 * time.Millisecond
	}
	if c.PutTimeout <= 0 {
		c.PutTimeout = 2 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.PutQueue <= 0 {
		c.PutQueue = 256
	}
	if c.PutWorkers <= 0 {
		c.PutWorkers = 2
	}
	return c
}

// PeerStats counts the cluster tier's activity, aggregated over all peers.
type PeerStats struct {
	// Fills counts chunks obtained from a peer (peer-fill hits).
	Fills int64
	// FillMisses counts peer exchanges that answered authoritatively
	// without the chunk.
	FillMisses int64
	// FillErrors counts failed peer exchanges (timeout, connection, or
	// protocol failure).
	FillErrors int64
	// FillSkips counts fills suppressed by an open per-peer breaker.
	FillSkips int64
	// Puts counts successful replication puts to owner peers.
	Puts int64
	// PutDrops counts puts dropped because the replication queue was full
	// or the owner's breaker was open.
	PutDrops int64
	// PutErrors counts failed replication puts.
	PutErrors int64
}

// peerBreakerState mirrors the backend breaker's gauge encoding
// (0 closed, 1 half-open/probing, 2 open).
const (
	peerClosed int64 = 0
	peerProbe  int64 = 1
	peerOpen   int64 = 2
)

// peerState is one remote member: its connection handle plus the per-peer
// circuit breaker. The breaker follows the PR-3 taxonomy at the granularity
// a cache tier needs: consecutive failures open it, an open breaker rejects
// both fills and puts until the cooldown passes, then a single probe
// exchange decides whether it closes again. A dead peer therefore costs the
// steady state nothing — keys it owns degrade to local+backend.
type peerState struct {
	name string
	peer Peer
	met  obs.PeerMetrics

	mu        sync.Mutex
	fails     int
	openUntil time.Time
	probing   bool
}

// allow reports whether an exchange may proceed, claiming the half-open
// probe slot when the cooldown has passed.
func (p *peerState) allow(threshold int, now time.Time) bool {
	if threshold < 0 {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fails < threshold {
		return true
	}
	if now.Before(p.openUntil) {
		return false
	}
	if p.probing {
		// Someone else holds the probe; stay degraded until it reports.
		return false
	}
	p.probing = true
	p.met.BreakerState.Set(peerProbe)
	return true
}

// report feeds an exchange outcome into the breaker.
func (p *peerState) report(ok bool, threshold int, cooldown time.Duration, now time.Time) {
	if threshold < 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.probing = false
	if ok {
		p.fails = 0
		p.met.BreakerState.Set(peerClosed)
		return
	}
	p.fails++
	if p.fails >= threshold {
		p.openUntil = now.Add(cooldown)
		p.met.BreakerState.Set(peerOpen)
	}
}

// peerFlight is one in-flight peer fill; concurrent fills of the same key
// collapse onto it.
type peerFlight struct {
	done    chan struct{}
	data    *chunk.Chunk
	cl      Class
	benefit float64
	ok      bool
}

// peerPut is one queued replication put.
type peerPut struct {
	owner   string
	key     Key
	data    *chunk.Chunk
	cl      Class
	benefit float64
}

// Peered is a Store composing a local store (the hot tier — typically a
// Sharded) with a consistent-hash ring of remote peers (the cluster tier):
//
//   - Get serves from the local tier; on a local miss the key's ring owner
//     is asked before the caller falls through to the backend (PeerFill —
//     the engine calls it explicitly for strategy-declared misses too).
//     Concurrent fills of one key collapse into a single exchange.
//   - Insert stores locally and, for backend-class chunks whose ring owner
//     is a remote peer, replicates asynchronously (best-effort, bounded
//     queue) so the whole group can reuse this node's backend fills.
//   - A per-peer circuit breaker (threshold/cooldown, the PR-3 taxonomy)
//     degrades a dead peer to local+backend service without blocking.
//
// Everything else delegates to the local store, so snapshots, strategies
// and reports see exactly the local tier.
type Peered struct {
	local Store
	cfg   PeeredConfig

	ring atomic.Pointer[Ring]

	mu    sync.Mutex // guards peers (membership rebuilds)
	peers map[string]*peerState

	fmu     sync.Mutex
	flights map[Key]*peerFlight

	puts   chan peerPut
	closed atomic.Bool
	wg     sync.WaitGroup

	fills      atomic.Int64
	fillMisses atomic.Int64
	fillErrors atomic.Int64
	fillSkips  atomic.Int64
	putOKs     atomic.Int64
	putDrops   atomic.Int64
	putErrors  atomic.Int64
}

// NewPeered wraps local with the cluster tier described by cfg.
func NewPeered(local Store, cfg PeeredConfig) (*Peered, error) {
	if local == nil {
		return nil, errors.New("cache: peered: local store is required")
	}
	cfg = cfg.withDefaults()
	p := &Peered{
		local:   local,
		cfg:     cfg,
		peers:   make(map[string]*peerState),
		flights: make(map[Key]*peerFlight),
		puts:    make(chan peerPut, cfg.PutQueue),
	}
	if err := p.Rebuild(cfg.Members); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.PutWorkers; i++ {
		p.wg.Add(1)
		go p.putLoop()
	}
	return p, nil
}

// Local returns the hot tier. Peer-serving endpoints answer PeerGet from it
// so a chunk resident nowhere can never bounce between peers.
func (p *Peered) Local() Store { return p.local }

// Ring returns the current ring (for diagnostics and tests).
func (p *Peered) Ring() *Ring { return p.ring.Load() }

// Self returns the configured own-address.
func (p *Peered) Self() string { return p.cfg.Self }

// PeerStats returns the cluster tier's aggregate activity counters.
func (p *Peered) PeerStats() PeerStats {
	return PeerStats{
		Fills:      p.fills.Load(),
		FillMisses: p.fillMisses.Load(),
		FillErrors: p.fillErrors.Load(),
		FillSkips:  p.fillSkips.Load(),
		Puts:       p.putOKs.Load(),
		PutDrops:   p.putDrops.Load(),
		PutErrors:  p.putErrors.Load(),
	}
}

// Rebuild replaces the ring membership: the new ring is swapped in
// atomically, peers leaving the membership are closed, and new members get
// lazily-dialed handles. Safe to call while traffic is in flight — fills
// route by whichever ring they load first, which is exactly the transient a
// static-membership reload (SIGHUP) implies.
func (p *Peered) Rebuild(members []string) error {
	ring := NewRing(members, p.cfg.Vnodes)
	remote := make([]string, 0, ring.Size())
	for _, m := range ring.Members() {
		if m != p.cfg.Self {
			remote = append(remote, m)
		}
	}
	if len(remote) > 0 && p.cfg.Dial == nil {
		return fmt.Errorf("cache: peered: %d remote member(s) but no dialer", len(remote))
	}
	keep := make(map[string]bool, len(remote))
	for _, m := range remote {
		keep[m] = true
	}
	p.mu.Lock()
	var stale []*peerState
	for name, st := range p.peers {
		if !keep[name] {
			stale = append(stale, st)
			delete(p.peers, name)
		}
	}
	for _, m := range remote {
		if _, ok := p.peers[m]; ok {
			continue
		}
		st := &peerState{name: m, peer: p.cfg.Dial(m)}
		if p.cfg.Metrics != nil {
			st.met = p.cfg.Metrics(m)
		}
		p.peers[m] = st
	}
	p.mu.Unlock()
	p.ring.Store(ring)
	for _, st := range stale {
		st.peer.Close()
	}
	return nil
}

// peer returns the state for a member name, nil for self/unknown members.
func (p *Peered) peer(name string) *peerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peers[name]
}

// Close stops the replication workers and closes every peer connection. The
// local store is left untouched (the caller owns it).
func (p *Peered) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	close(p.puts)
	p.wg.Wait()
	p.mu.Lock()
	peers := make([]*peerState, 0, len(p.peers))
	for _, st := range p.peers {
		peers = append(peers, st)
	}
	p.peers = make(map[string]*peerState)
	p.mu.Unlock()
	for _, st := range peers {
		st.peer.Close()
	}
	return nil
}

// PeerFill asks the key's ring owner for a chunk the local tier does not
// hold, inserting it locally on success. It is the engine's pre-backend
// hook: false means the caller should fall through to the backend. Fills of
// the same key collapse into one exchange; a dead or breaker-open owner
// returns false immediately.
func (p *Peered) PeerFill(ctx context.Context, k Key) (*chunk.Chunk, bool) {
	data, _, _, ok := p.fill(ctx, k)
	return data, ok
}

// fill implements PeerFill, returning the replacement attributes too (the
// transparent Get path reuses them).
func (p *Peered) fill(ctx context.Context, k Key) (*chunk.Chunk, Class, float64, bool) {
	if p.closed.Load() {
		return nil, 0, 0, false
	}
	owner := p.ring.Load().Owner(k)
	if owner == "" || owner == p.cfg.Self {
		return nil, 0, 0, false
	}
	st := p.peer(owner)
	if st == nil {
		return nil, 0, 0, false
	}

	p.fmu.Lock()
	if fl, ok := p.flights[k]; ok {
		p.fmu.Unlock()
		select {
		case <-fl.done:
			return fl.data, fl.cl, fl.benefit, fl.ok
		case <-ctx.Done():
			return nil, 0, 0, false
		}
	}
	fl := &peerFlight{done: make(chan struct{})}
	p.flights[k] = fl
	p.fmu.Unlock()

	fl.data, fl.cl, fl.benefit, fl.ok = p.exchange(ctx, st, k)
	p.fmu.Lock()
	delete(p.flights, k)
	p.fmu.Unlock()
	close(fl.done)
	return fl.data, fl.cl, fl.benefit, fl.ok
}

// exchange performs one breaker-guarded peer get and installs a successful
// fill in the local tier.
func (p *Peered) exchange(ctx context.Context, st *peerState, k Key) (*chunk.Chunk, Class, float64, bool) {
	if !st.allow(p.cfg.BreakerThreshold, time.Now()) {
		p.fillSkips.Add(1)
		st.met.Skips.Inc()
		return nil, 0, 0, false
	}
	ctx, cancel := context.WithTimeout(ctx, p.cfg.GetTimeout)
	defer cancel()
	start := time.Now()
	data, cl, benefit, found, err := st.peer.Get(ctx, k)
	st.met.Latency.Observe(time.Since(start))
	if err != nil {
		st.report(false, p.cfg.BreakerThreshold, p.cfg.BreakerCooldown, time.Now())
		p.fillErrors.Add(1)
		st.met.Errors.Inc()
		return nil, 0, 0, false
	}
	st.report(true, p.cfg.BreakerThreshold, p.cfg.BreakerCooldown, time.Now())
	if !found {
		p.fillMisses.Add(1)
		st.met.Misses.Inc()
		return nil, 0, 0, false
	}
	p.fills.Add(1)
	st.met.Hits.Inc()
	// Install in the hot tier as a computed-class entry regardless of how
	// the owner classes it: a peer-filled chunk is cheap to re-obtain (one
	// wire exchange, not a backend scan), so it gets the weak residency of
	// a recomputable chunk. Without this, every node's hot tier converges
	// on duplicates of the same hot set and the group's distinct capacity
	// stops growing with membership. The insert goes straight to the local
	// store — a fill must never re-enter the replication path it came from.
	p.local.Insert(k, data, AsComputed(benefit))
	return data, cl, benefit, true
}

// replicate queues a best-effort put of a freshly backend-fetched chunk to
// its ring owner.
func (p *Peered) replicate(k Key, data *chunk.Chunk, cl Class, benefit float64) {
	owner := p.ring.Load().Owner(k)
	if owner == "" || owner == p.cfg.Self || p.closed.Load() {
		return
	}
	select {
	case p.puts <- peerPut{owner: owner, key: k, data: data, cl: cl, benefit: benefit}:
	default:
		p.putDrops.Add(1)
		if st := p.peer(owner); st != nil {
			st.met.PutDrops.Inc()
		}
	}
}

// putLoop drains the replication queue.
func (p *Peered) putLoop() {
	defer p.wg.Done()
	for req := range p.puts {
		st := p.peer(req.owner)
		if st == nil {
			continue
		}
		if !st.allow(p.cfg.BreakerThreshold, time.Now()) {
			p.putDrops.Add(1)
			st.met.PutDrops.Inc()
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), p.cfg.PutTimeout)
		err := st.peer.Put(ctx, req.key, req.data, req.cl, req.benefit)
		cancel()
		st.report(err == nil, p.cfg.BreakerThreshold, p.cfg.BreakerCooldown, time.Now())
		if err != nil {
			p.putErrors.Add(1)
			st.met.PutErrors.Inc()
			continue
		}
		p.putOKs.Add(1)
		st.met.Puts.Inc()
	}
}

// --- Store delegation -----------------------------------------------------

// Get implements Store: the local tier first, then — on a local miss — the
// key's ring owner, installing a successful peer fill locally.
func (p *Peered) Get(k Key) (*chunk.Chunk, bool) {
	if data, ok := p.local.Get(k); ok {
		return data, true
	}
	data, _, _, ok := p.fill(context.Background(), k)
	return data, ok
}

// Peek implements Store (local tier only).
func (p *Peered) Peek(k Key) (*chunk.Chunk, bool) { return p.local.Peek(k) }

// GetInfo serves from the local tier only: it is the PeerGet answer path, and
// answering one peer's lookup from another peer would let a chunk resident
// nowhere bounce around the ring.
func (p *Peered) GetInfo(k Key) (*chunk.Chunk, Class, float64, bool) {
	type infoStore interface {
		GetInfo(Key) (*chunk.Chunk, Class, float64, bool)
	}
	if is, ok := p.local.(infoStore); ok {
		return is.GetInfo(k)
	}
	data, ok := p.local.Get(k)
	return data, ClassBackend, 0, ok
}

// Insert implements Store: the chunk becomes resident locally, and backend
// fills whose ring owner is a remote peer replicate asynchronously so the
// group can reuse them. Computed, recycled and promoted chunks stay local —
// they are cheap to rebuild (or already replicated when first fetched), so
// shipping them would turn in-cache work into wire traffic.
func (p *Peered) Insert(k Key, data *chunk.Chunk, opts ...InsertOption) bool {
	spec := applyInsertOptions(opts)
	ok := p.local.Insert(k, data, opts...)
	if ok && spec.class == ClassBackend && !spec.recycled && !spec.promoted {
		p.replicate(k, data, spec.class, spec.benefit)
	}
	return ok
}

// Evict implements Store (local tier only).
func (p *Peered) Evict(k Key) bool { return p.local.Evict(k) }

// Pin implements Store.
func (p *Peered) Pin(k Key) bool { return p.local.Pin(k) }

// Unpin implements Store.
func (p *Peered) Unpin(k Key) { p.local.Unpin(k) }

// Reinforce implements Store.
func (p *Peered) Reinforce(keys []Key, benefit float64) { p.local.Reinforce(keys, benefit) }

// Contains implements Store.
func (p *Peered) Contains(k Key) bool { return p.local.Contains(k) }

// Keys implements Store.
func (p *Peered) Keys(dst []Key) []Key { return p.local.Keys(dst) }

// Range implements Store.
func (p *Peered) Range(fn func(k Key, data *chunk.Chunk, cl Class, benefit float64, recycled bool)) {
	p.local.Range(fn)
}

// Stats implements Store.
func (p *Peered) Stats() Stats { return p.local.Stats() }

// Capacity implements Store.
func (p *Peered) Capacity() int64 { return p.local.Capacity() }

// Used implements Store.
func (p *Peered) Used() int64 { return p.local.Used() }

// Len implements Store.
func (p *Peered) Len() int { return p.local.Len() }

// SetListener implements Store.
func (p *Peered) SetListener(l Listener) { p.local.SetListener(l) }

// SetMetrics implements Store.
func (p *Peered) SetMetrics(m obs.CacheMetrics) { p.local.SetMetrics(m) }

// Policy implements Store.
func (p *Peered) Policy() Policy { return p.local.Policy() }

// Shards reports the local tier's shard count (1 when it is not striped),
// so ops banners see through the cluster wrapper.
func (p *Peered) Shards() int {
	if sh, ok := p.local.(interface{ Shards() int }); ok {
		return sh.Shards()
	}
	return 1
}
