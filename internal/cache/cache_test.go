package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aggcache/internal/chunk"
)

// mkChunk builds a payload with n cells for key identity (gb, num).
func mkChunk(gb, num, n int) *chunk.Chunk {
	c := &chunk.Chunk{GB: 0, Num: int32(num)}
	for i := 0; i < n; i++ {
		c.Keys = append(c.Keys, uint64(i))
		c.Vals = append(c.Vals, 1)
	}
	return c
}

func key(num int) Key { return Key{GB: 0, Num: int32(num)} }

type recordingListener struct {
	inserted, evicted []Key
	events            []Event
}

func (r *recordingListener) OnInsert(e *Entry) { r.inserted = append(r.inserted, e.Key) }

func (r *recordingListener) OnEvent(ev Event) {
	r.events = append(r.events, ev)
	if !ev.Answerable() {
		r.evicted = append(r.evicted, ev.Key)
	}
}

func TestCacheBasics(t *testing.T) {
	c, err := New(10_000, NewBenefitClock())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !c.Insert(key(1), mkChunk(0, 1, 10), AsBackend(100)) {
		t.Fatalf("insert denied")
	}
	if !c.Contains(key(1)) {
		t.Fatalf("Contains(1) = false")
	}
	if d, ok := c.Get(key(1)); !ok || d.Cells() != 10 {
		t.Fatalf("Get(1) = %v,%v", d, ok)
	}
	if _, ok := c.Get(key(2)); ok {
		t.Fatalf("Get(2) should miss")
	}
	if d, ok := c.Peek(key(1)); !ok || d.Cells() != 10 {
		t.Fatalf("Peek(1) = %v,%v", d, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	wantUsed := mkChunk(0, 1, 10).Bytes()
	if c.Used() != wantUsed {
		t.Fatalf("Used = %d, want %d", c.Used(), wantUsed)
	}
	if !c.Evict(key(1)) || c.Len() != 0 || c.Used() != 0 {
		t.Fatalf("Evict failed: len=%d used=%d", c.Len(), c.Used())
	}
	if c.Evict(key(1)) {
		t.Fatalf("double Evict should return false")
	}
}

func TestCacheErrors(t *testing.T) {
	if _, err := New(0, NewBenefitClock()); err == nil {
		t.Errorf("capacity 0: expected error")
	}
	if _, err := New(100, nil); err == nil {
		t.Errorf("nil policy: expected error")
	}
}

func TestCacheEvictsWhenFull(t *testing.T) {
	// Each 10-cell chunk is 10*24+64 = 304 bytes; room for 2.
	c, _ := New(700, NewBenefitClock())
	l := &recordingListener{}
	c.SetListener(l)
	c.Insert(key(1), mkChunk(0, 1, 10), AsBackend(1))
	c.Insert(key(2), mkChunk(0, 2, 10), AsBackend(1))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if !c.Insert(key(3), mkChunk(0, 3, 10), AsBackend(1)) {
		t.Fatalf("third insert denied")
	}
	if c.Len() != 2 {
		t.Fatalf("after eviction Len = %d, want 2", c.Len())
	}
	if len(l.inserted) != 3 || len(l.evicted) != 1 {
		t.Fatalf("listener saw %d inserts, %d evicts", len(l.inserted), len(l.evicted))
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestCacheOversizedChunkDenied(t *testing.T) {
	c, _ := New(100, NewBenefitClock())
	if c.Insert(key(1), mkChunk(0, 1, 100), AsBackend(1)) {
		t.Fatalf("oversized chunk admitted")
	}
	if c.Stats().Denied != 1 {
		t.Fatalf("Denied = %d", c.Stats().Denied)
	}
}

func TestCacheReinsertRefreshes(t *testing.T) {
	c, _ := New(10_000, NewBenefitClock())
	c.Insert(key(1), mkChunk(0, 1, 10), AsComputed(1))
	if !c.Insert(key(1), mkChunk(0, 1, 10), AsBackend(50)) {
		t.Fatalf("reinsert denied")
	}
	if c.Len() != 1 || c.Stats().Inserts != 1 {
		t.Fatalf("reinsert duplicated entry: len=%d inserts=%d", c.Len(), c.Stats().Inserts)
	}
}

func TestCachePinPreventsEviction(t *testing.T) {
	c, _ := New(700, NewBenefitClock())
	c.Insert(key(1), mkChunk(0, 1, 10), AsBackend(1))
	c.Insert(key(2), mkChunk(0, 2, 10), AsBackend(1))
	if !c.Pin(key(1)) || !c.Pin(key(2)) {
		t.Fatalf("Pin failed")
	}
	if c.Insert(key(3), mkChunk(0, 3, 10), AsBackend(1)) {
		t.Fatalf("insert admitted with everything pinned")
	}
	c.Unpin(key(1))
	if !c.Insert(key(3), mkChunk(0, 3, 10), AsBackend(1)) {
		t.Fatalf("insert denied after unpin")
	}
	if !c.Contains(key(2)) {
		t.Fatalf("pinned chunk was evicted")
	}
	if c.Contains(key(1)) {
		t.Fatalf("unpinned chunk should have been the victim")
	}
	if c.Pin(key(99)) {
		t.Fatalf("pinning a missing key should fail")
	}
	c.Unpin(key(99)) // no-op, must not panic
}

func TestBenefitClockPrefersLowBenefit(t *testing.T) {
	c, _ := New(700, NewBenefitClock())
	c.Insert(key(1), mkChunk(0, 1, 10), AsBackend(1e6)) // expensive
	c.Insert(key(2), mkChunk(0, 2, 10), AsBackend(1))   // cheap
	c.Insert(key(3), mkChunk(0, 3, 10), AsBackend(1e6))
	if !c.Contains(key(1)) || !c.Contains(key(3)) {
		t.Fatalf("high-benefit chunks evicted before low-benefit one")
	}
	if c.Contains(key(2)) {
		t.Fatalf("low-benefit chunk survived over high-benefit ones")
	}
}

func TestTwoLevelAdmission(t *testing.T) {
	// Room for 2 chunks.
	c, _ := New(700, NewTwoLevel())
	c.Insert(key(1), mkChunk(0, 1, 10), AsBackend(10))
	c.Insert(key(2), mkChunk(0, 2, 10), AsBackend(10))
	// A computed chunk may not displace backend chunks.
	if c.Insert(key(3), mkChunk(0, 3, 10), AsComputed(1e9)) {
		t.Fatalf("computed chunk displaced backend chunks")
	}
	if c.Stats().Denied != 1 {
		t.Fatalf("Denied = %d", c.Stats().Denied)
	}
	// A backend chunk can displace a computed chunk.
	c2, _ := New(700, NewTwoLevel())
	c2.Insert(key(1), mkChunk(0, 1, 10), AsComputed(1e9))
	c2.Insert(key(2), mkChunk(0, 2, 10), AsBackend(1))
	if !c2.Insert(key(3), mkChunk(0, 3, 10), AsBackend(1)) {
		t.Fatalf("backend insert denied")
	}
	if c2.Contains(key(1)) {
		t.Fatalf("computed chunk should be displaced before backend chunks")
	}
	if !c2.Contains(key(2)) {
		t.Fatalf("backend chunk was displaced while a computed chunk existed")
	}
}

func TestTwoLevelBackendEvictsBackendWhenNoComputed(t *testing.T) {
	c, _ := New(700, NewTwoLevel())
	c.Insert(key(1), mkChunk(0, 1, 10), AsBackend(1))
	c.Insert(key(2), mkChunk(0, 2, 10), AsBackend(1))
	if !c.Insert(key(3), mkChunk(0, 3, 10), AsBackend(1)) {
		t.Fatalf("backend insert denied with only backend chunks resident")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestTwoLevelReinforceKeepsGroup(t *testing.T) {
	c, _ := New(700, NewTwoLevel())
	c.Insert(key(1), mkChunk(0, 1, 10), AsComputed(1))
	c.Insert(key(2), mkChunk(0, 2, 10), AsComputed(1))
	// Reinforce chunk 1 heavily: it was used to compute an aggregate.
	c.Reinforce([]Key{key(1), key(99)}, 1e9) // missing keys are ignored
	if !c.Insert(key(3), mkChunk(0, 3, 10), AsComputed(1)) {
		t.Fatalf("insert denied")
	}
	if !c.Contains(key(1)) {
		t.Fatalf("reinforced chunk was evicted")
	}
	if c.Contains(key(2)) {
		t.Fatalf("non-reinforced chunk should have been the victim")
	}
}

// TestTwoLevelPromoteOnReuse: under the promote variant, a computed-class
// entry that gets reinforced (it served as an aggregation input) moves to
// the protected ring — computed-class pressure can no longer displace it —
// while its Class keeps reporting computed provenance.
func TestTwoLevelPromoteOnReuse(t *testing.T) {
	c, _ := New(700, NewTwoLevelPromote())
	c.Insert(key(1), mkChunk(0, 1, 10), AsComputed(1))
	c.Insert(key(2), mkChunk(0, 2, 10), AsComputed(1))
	c.Reinforce([]Key{key(1)}, 1) // first reuse: promoted

	// Sustained computed-class pressure. Without promotion key 1's clock is
	// capped at maxClock, so this many evicting inserts would sweep it out;
	// promoted, it is invisible to computed-class victim scans.
	for i := 0; i < 3*maxClock; i++ {
		c.Insert(key(10+i), mkChunk(0, 10+i, 10), AsComputed(1e9))
	}
	if !c.Contains(key(1)) {
		t.Fatalf("promoted entry displaced by computed-class pressure")
	}

	// Provenance survives the ring change: the entry still reports
	// ClassComputed (so a Peered store would still never replicate it).
	cl := ClassBackend
	c.Range(func(k Key, _ *chunk.Chunk, class Class, _ float64, _ bool) {
		if k == key(1) {
			cl = class
		}
	})
	if cl != ClassComputed {
		t.Fatalf("promoted entry class = %v, want ClassComputed", cl)
	}

	// The plain policy must sweep key 1 under the same pressure — promotion
	// is what protected it above.
	p, _ := New(700, NewTwoLevel())
	p.Insert(key(1), mkChunk(0, 1, 10), AsComputed(1))
	p.Insert(key(2), mkChunk(0, 2, 10), AsComputed(1))
	p.Reinforce([]Key{key(1)}, 1)
	for i := 0; i < 3*maxClock; i++ {
		p.Insert(key(10+i), mkChunk(0, 10+i, 10), AsComputed(1e9))
	}
	if p.Contains(key(1)) {
		t.Fatalf("plain two-level kept the entry; promote test proves nothing")
	}

	// Fork preserves the variant.
	if NewTwoLevelPromote().Fork().Name() != "two-level-promote" {
		t.Fatalf("Fork dropped the promote setting")
	}
	if NewTwoLevel().Fork().Name() != "two-level" {
		t.Fatalf("plain Fork gained the promote setting")
	}
}

func TestClockWeight(t *testing.T) {
	if w := clockWeight(-5); w != 1 {
		t.Fatalf("clockWeight(-5) = %v", w)
	}
	if w := clockWeight(0); w != 1 {
		t.Fatalf("clockWeight(0) = %v", w)
	}
	if w := clockWeight(1e30); w != maxClock {
		t.Fatalf("clockWeight(1e30) = %v", w)
	}
	if clockWeight(100) <= clockWeight(10) {
		t.Fatalf("clockWeight not monotone")
	}
}

// TestCacheInvariantsProperty runs random operation sequences and checks the
// byte accounting and capacity invariants throughout.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(seed int64, twoLevel bool) bool {
		rng := rand.New(rand.NewSource(seed))
		var p Policy
		if twoLevel {
			p = NewTwoLevel()
		} else {
			p = NewBenefitClock()
		}
		c, _ := New(2_000, p)
		resident := make(map[Key]int64)
		l := &trackListener{resident: resident}
		c.SetListener(l)
		pinned := []Key{}
		for op := 0; op < 300; op++ {
			switch rng.Intn(5) {
			case 0, 1, 2:
				num := rng.Intn(30)
				n := 1 + rng.Intn(20)
				opt := AsBackend
				if rng.Intn(2) == 1 {
					opt = AsComputed
				}
				c.Insert(key(num), mkChunk(0, num, n), opt(float64(rng.Intn(1000))))
			case 3:
				num := rng.Intn(30)
				if c.Pin(key(num)) {
					pinned = append(pinned, key(num))
				}
			case 4:
				if len(pinned) > 0 {
					k := pinned[len(pinned)-1]
					pinned = pinned[:len(pinned)-1]
					c.Unpin(k)
				}
			}
			// Invariants. Byte accounting is checked against the live
			// entries (payload replacement changes bytes without a
			// listener event); the listener map checks insert/evict
			// key-set symmetry.
			if c.Used() > c.Capacity() {
				return false
			}
			var sum int64
			c.Range(func(_ Key, data *chunk.Chunk, _ Class, _ float64, _ bool) {
				sum += data.Bytes()
			})
			if sum != c.Used() || len(resident) != c.Len() {
				return false
			}
			for k := range resident {
				if !c.Contains(k) {
					return false
				}
			}
		}
		// Pinned entries must all still be resident.
		for _, k := range pinned {
			if !c.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

type trackListener struct{ resident map[Key]int64 }

func (l *trackListener) OnInsert(e *Entry) { l.resident[e.Key] = e.Bytes() }

func (l *trackListener) OnEvent(ev Event) {
	if !ev.Answerable() {
		delete(l.resident, ev.Key)
	}
}

// Regression: re-inserting a resident key must replace the stale payload and
// re-charge the byte accounting for the delta.
func TestCacheReplacePayload(t *testing.T) {
	c, _ := New(10_000, NewBenefitClock())
	c.Insert(key(1), mkChunk(0, 1, 10), AsBackend(1))
	if !c.Insert(key(1), mkChunk(0, 1, 20), AsBackend(2)) {
		t.Fatalf("replacement insert denied")
	}
	if d, ok := c.Peek(key(1)); !ok || d.Cells() != 20 {
		t.Fatalf("stale payload survived reinsert: %v", d)
	}
	if want := mkChunk(0, 1, 20).Bytes(); c.Used() != want {
		t.Fatalf("Used = %d after growth, want %d", c.Used(), want)
	}
	// Shrinking releases bytes.
	if !c.Insert(key(1), mkChunk(0, 1, 5), AsBackend(2)) {
		t.Fatalf("shrinking insert denied")
	}
	if want := mkChunk(0, 1, 5).Bytes(); c.Used() != want {
		t.Fatalf("Used = %d after shrink, want %d", c.Used(), want)
	}
	if st := c.Stats(); st.Inserts != 1 {
		t.Fatalf("Inserts = %d, want 1 (replacement is not a new insert)", st.Inserts)
	}
}

// Regression: a growing replacement that overflows the cache evicts victims,
// never the entry being replaced.
func TestCacheReplaceEvictsOnGrowth(t *testing.T) {
	c, _ := New(700, NewBenefitClock())
	c.Insert(key(1), mkChunk(0, 1, 10), AsBackend(1))
	c.Insert(key(2), mkChunk(0, 2, 10), AsBackend(1))
	if !c.Insert(key(1), mkChunk(0, 1, 20), AsBackend(1)) {
		t.Fatalf("growing replacement denied")
	}
	if !c.Contains(key(1)) || c.Contains(key(2)) {
		t.Fatalf("wrong victim: has1=%v has2=%v", c.Contains(key(1)), c.Contains(key(2)))
	}
	if d, _ := c.Peek(key(1)); d.Cells() != 20 {
		t.Fatalf("payload not replaced")
	}
	if want := mkChunk(0, 1, 20).Bytes(); c.Used() != want {
		t.Fatalf("Used = %d, want %d", c.Used(), want)
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
}

// Regression: an oversized replacement is denied and the old entry survives.
func TestCacheReplaceOversizedKeepsOld(t *testing.T) {
	c, _ := New(700, NewBenefitClock())
	c.Insert(key(1), mkChunk(0, 1, 10), AsBackend(1))
	if c.Insert(key(1), mkChunk(0, 1, 30), AsBackend(1)) {
		t.Fatalf("oversized replacement admitted")
	}
	if d, ok := c.Peek(key(1)); !ok || d.Cells() != 10 {
		t.Fatalf("old entry lost on denied replacement: %v ok=%v", d, ok)
	}
	if want := mkChunk(0, 1, 10).Bytes(); c.Used() != want {
		t.Fatalf("Used = %d, want %d", c.Used(), want)
	}
	if c.Stats().Denied != 1 {
		t.Fatalf("Denied = %d", c.Stats().Denied)
	}
}

// Regression: a reinsert that changes the class must migrate the entry to the
// matching two-level ring; a stale ring assignment lets a computed insert
// displace what is now a backend chunk.
func TestCacheReplaceClassMigratesRing(t *testing.T) {
	c, _ := New(700, NewTwoLevel())
	c.Insert(key(1), mkChunk(0, 1, 10), AsComputed(1))
	c.Insert(key(2), mkChunk(0, 2, 10), AsBackend(1))
	// Promote key(1) to backend class via reinsert.
	if !c.Insert(key(1), mkChunk(0, 1, 10), AsBackend(1)) {
		t.Fatalf("promoting reinsert denied")
	}
	// Both residents are now backend chunks, so a computed insert that needs
	// a victim must be denied outright.
	if c.Insert(key(3), mkChunk(0, 3, 10), AsComputed(1e9)) {
		t.Fatalf("computed chunk displaced a promoted backend chunk")
	}
	if !c.Contains(key(1)) || !c.Contains(key(2)) {
		t.Fatalf("backend chunk lost: has1=%v has2=%v", c.Contains(key(1)), c.Contains(key(2)))
	}
}

// Regression: administrative Evict must not inflate the policy-eviction
// counter used for replacement accounting.
func TestEvictCountsRemovalNotEviction(t *testing.T) {
	c, _ := New(10_000, NewBenefitClock())
	l := &recordingListener{}
	c.SetListener(l)
	c.Insert(key(1), mkChunk(0, 1, 10), AsBackend(1))
	if !c.Evict(key(1)) {
		t.Fatalf("Evict failed")
	}
	st := c.Stats()
	if st.Evictions != 0 || st.Removals != 1 {
		t.Fatalf("stats = %+v, want Evictions=0 Removals=1", st)
	}
	// The listener must still observe the removal so strategies stay in sync.
	if len(l.evicted) != 1 {
		t.Fatalf("listener missed administrative removal")
	}
}

func TestKeysAndClassString(t *testing.T) {
	c, _ := New(10_000, NewBenefitClock())
	c.Insert(key(1), mkChunk(0, 1, 1), AsBackend(1))
	c.Insert(key(2), mkChunk(0, 2, 1), AsComputed(1))
	ks := c.Keys(nil)
	if len(ks) != 2 {
		t.Fatalf("Keys = %v", ks)
	}
	if ClassBackend.String() != "backend" || ClassComputed.String() != "computed" {
		t.Fatalf("Class.String broken")
	}
	if key(1).String() != "0/1" {
		t.Fatalf("Key.String = %q", key(1).String())
	}
}
