package cache

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"aggcache/internal/chunk"
)

// snapAttrs is the per-key view the equivalence tests compare.
type snapAttrs struct {
	cells    int
	class    Class
	benefit  float64
	recycled bool
}

// storeContents collects a store's full residency picture via Range.
func storeContents(s Store) map[Key]snapAttrs {
	out := map[Key]snapAttrs{}
	s.Range(func(k Key, data *chunk.Chunk, cl Class, benefit float64, recycled bool) {
		out[k] = snapAttrs{cells: len(data.Keys), class: cl, benefit: benefit, recycled: recycled}
	})
	return out
}

// populatedTiered builds a tiered store with a mixed population: backend,
// computed and recycled chunks across both tiers.
func populatedTiered(t *testing.T) Store {
	t.Helper()
	hot, err := New(4*mkChunk(0, 0, 10).Bytes(), NewTwoLevelPromote())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tc, err := NewTiered(hot, 8192)
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	opts := []InsertOption{
		AsBackend(0), AsBackend(3), AsComputed(5), AsRecycled(7),
		AsComputed(2), AsBackend(1), AsRecycled(4), AsComputed(9),
	}
	for i, opt := range opts { // over hot capacity: half demote to cold
		tc.Insert(key(i), mkChunk(0, i, 5+i), opt)
	}
	return tc
}

// TestSnapshotWriteLoadEquivalence pins the warm-restart contract: a
// snapshot written from a live tiered store reads back record-for-record
// equal to the store's contents — keys, cell counts and residency
// attributes — across both tiers.
func TestSnapshotWriteLoadEquivalence(t *testing.T) {
	src := populatedTiered(t)
	want := storeContents(src)

	var buf bytes.Buffer
	n, err := WriteSnapshot(&buf, src)
	if err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if n != len(want) || n != src.Len() {
		t.Fatalf("wrote %d records, store holds %d", n, src.Len())
	}

	got := map[Key]snapAttrs{}
	if err := ReadSnapshot(buf.Bytes(), func(e SnapshotEntry) error {
		if e.Data.GB != e.Key.GB || e.Data.Num != e.Key.Num {
			t.Fatalf("record %v: chunk stamped (%d,%d)", e.Key, e.Data.GB, e.Data.Num)
		}
		got[e.Key] = snapAttrs{cells: len(e.Data.Keys), class: e.Class, benefit: e.Benefit, recycled: e.Recycled}
		return nil
	}); err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("key %v: loaded %+v, want %+v", k, got[k], w)
		}
	}
}

// TestSnapshotFileKillLoad simulates the daemon's kill/restart: save to disk,
// discard the process state, load into a fresh identically-configured store
// and check the restarted store answers every key with the saved payload.
func TestSnapshotFileKillLoad(t *testing.T) {
	src := populatedTiered(t)
	want := storeContents(src)
	path := filepath.Join(t.TempDir(), "cache.snap")

	n, err := SaveSnapshotFile(path, src)
	if err != nil {
		t.Fatalf("SaveSnapshotFile: %v", err)
	}
	if n != len(want) {
		t.Fatalf("saved %d records, want %d", n, len(want))
	}

	hot, err := New(4*mkChunk(0, 0, 10).Bytes(), NewTwoLevelPromote())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	restarted, err := NewTiered(hot, 8192)
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	if err := LoadSnapshotFile(path, func(e SnapshotEntry) error {
		opt := AsBackend(e.Benefit)
		if e.Recycled {
			opt = AsRecycled(e.Benefit)
		} else if e.Class == ClassComputed {
			opt = AsComputed(e.Benefit)
		}
		restarted.Insert(e.Key, e.Data, opt)
		return nil
	}); err != nil {
		t.Fatalf("LoadSnapshotFile: %v", err)
	}
	for k, w := range want {
		data, ok := restarted.Peek(k)
		if !ok {
			t.Fatalf("key %v lost across restart", k)
		}
		if len(data.Keys) != w.cells {
			t.Fatalf("key %v: %d cells after restart, want %d", k, len(data.Keys), w.cells)
		}
	}

	if err := LoadSnapshotFile(filepath.Join(t.TempDir(), "absent.snap"), func(SnapshotEntry) error { return nil }); !os.IsNotExist(err) {
		t.Fatalf("missing file: err = %v, want not-exist", err)
	}
}

// TestSnapshotTornTail: a process killed mid-write leaves a truncated final
// record; loading must deliver every complete record, then fail with
// ErrSnapshot — the partial-warm-restart contract.
func TestSnapshotTornTail(t *testing.T) {
	src := populatedTiered(t)
	var buf bytes.Buffer
	n, err := WriteSnapshot(&buf, src)
	if err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	torn := buf.Bytes()[:buf.Len()-5]

	delivered := 0
	err = ReadSnapshot(torn, func(SnapshotEntry) error { delivered++; return nil })
	if !errors.Is(err, ErrSnapshot) {
		t.Fatalf("torn tail: err = %v, want ErrSnapshot", err)
	}
	if delivered != n-1 {
		t.Fatalf("torn tail delivered %d records, want the %d complete ones", delivered, n-1)
	}
}

// TestSnapshotCorruption: flipped bits fail the record CRC; bad magic and
// oversized lengths are rejected before any allocation.
func TestSnapshotCorruption(t *testing.T) {
	src := populatedTiered(t)
	var buf bytes.Buffer
	if _, err := WriteSnapshot(&buf, src); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}

	// Flip one payload byte in the middle of the file.
	bad := bytes.Clone(buf.Bytes())
	bad[len(bad)/2] ^= 0x40
	err := ReadSnapshot(bad, func(SnapshotEntry) error { return nil })
	if !errors.Is(err, ErrSnapshot) {
		t.Fatalf("bit flip: err = %v, want ErrSnapshot", err)
	}

	if err := ReadSnapshot([]byte("not a snapshot"), func(SnapshotEntry) error { return nil }); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("bad magic: err = %v, want ErrSnapshot", err)
	}
	if err := ReadSnapshot(nil, func(SnapshotEntry) error { return nil }); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("empty input: err = %v, want ErrSnapshot", err)
	}

	// A huge declared record length is rejected by the bound, not malloc'd.
	huge := append(bytes.Clone(snapMagic[:]), 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0)
	if err := ReadSnapshot(huge, func(SnapshotEntry) error { return nil }); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("oversized record: err = %v, want ErrSnapshot", err)
	}
}

// TestSnapshotCallbackAbort: fn's error aborts the scan and surfaces
// verbatim, not wrapped as corruption.
func TestSnapshotCallbackAbort(t *testing.T) {
	src := populatedTiered(t)
	var buf bytes.Buffer
	if _, err := WriteSnapshot(&buf, src); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	sentinel := errors.New("stop here")
	err := ReadSnapshot(buf.Bytes(), func(SnapshotEntry) error { return sentinel })
	if !errors.Is(err, sentinel) || errors.Is(err, ErrSnapshot) {
		t.Fatalf("callback abort: err = %v, want the sentinel verbatim", err)
	}
}
