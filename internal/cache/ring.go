package cache

import (
	"fmt"
	"sort"
)

// DefaultVnodes is the number of virtual nodes each ring member contributes.
// 128 points per member keeps the worst member's share within roughly ±15%
// of fair on the low-entropy (GB, Num) key population APB workloads produce,
// while a full 4-node ring is still only 512 points — one cache line's worth
// of binary search per route.
const DefaultVnodes = 128

// Ring is a consistent-hash ring over a static peer membership: every member
// contributes Vnodes points derived only from its name, and a chunk key is
// owned by the member whose point follows the key's hash clockwise. Because
// point placement depends on nothing but the member names, two processes
// given the same membership — in any order, on any machine — build rings
// with identical ownership, which is what lets olapcli route a key to the
// same aggcached node the cluster itself would. Adding or removing one
// member moves only the keys adjacent to that member's points (≈1/N of the
// keyspace) and no key ever moves between two surviving members.
//
// A Ring is immutable after construction; membership changes build a new
// Ring (see Peered.Rebuild).
type Ring struct {
	points  []ringPoint
	members []string // canonical (sorted, deduplicated) membership
}

// ringPoint is one virtual node: a position on the ring and the member that
// owns it.
type ringPoint struct {
	hash   uint64
	member string
}

// splitmix64 is the splitmix64 finalizer — the same mix the sharded store
// stripes with, promoted here to full 64-bit ring positions.
func splitmix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// KeyHash maps a chunk key onto the ring's 64-bit keyspace. Exported so
// tests and diagnostics can reproduce routing decisions.
func KeyHash(k Key) uint64 {
	return splitmix64(uint64(uint32(k.GB))<<32 | uint64(uint32(k.Num)))
}

// fnv64a is FNV-1a over the member name; it seeds the member's vnode
// sequence so point placement depends only on the name.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// NewRing builds a ring over members with vnodes points per member
// (DefaultVnodes when vnodes <= 0). Duplicate and empty member names are
// dropped; an empty membership yields a ring that owns nothing.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(members))
	canon := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		canon = append(canon, m)
	}
	sort.Strings(canon)
	r := &Ring{members: canon, points: make([]ringPoint, 0, len(canon)*vnodes)}
	for _, m := range canon {
		seed := fnv64a(m)
		for i := 0; i < vnodes; i++ {
			// Golden-ratio stride decorrelates consecutive vnode indices
			// before the finalizer spreads them over the ring.
			h := splitmix64(seed + uint64(i)*0x9e3779b97f4a7c15)
			r.points = append(r.points, ringPoint{hash: h, member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by name so ownership stays
		// order-independent.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the canonical membership (sorted, deduplicated).
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Size returns the number of members.
func (r *Ring) Size() int { return len(r.members) }

// Owner returns the member owning key k, or "" on an empty ring.
func (r *Ring) Owner(k Key) string { return r.OwnerHash(KeyHash(k)) }

// OwnerHash returns the member owning ring position h: the first point at
// or after h, wrapping at the top of the keyspace.
func (r *Ring) OwnerHash(h uint64) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// String summarizes the ring for diagnostics.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d members, %d points)", len(r.members), len(r.points))
}
