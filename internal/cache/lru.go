package cache

// LRU is an exact least-recently-used replacement policy, provided as a
// baseline against the paper's benefit-weighted CLOCK (which approximates
// LRU) and the two-level policy. It ignores benefits and classes.
type LRU struct {
	head, tail *Entry // head = most recent
	n          int
}

// NewLRU returns the baseline policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements Policy.
func (p *LRU) Name() string { return "lru" }

// Added implements Policy.
func (p *LRU) Added(e *Entry) { p.pushFront(e) }

// Removed implements Policy.
func (p *LRU) Removed(e *Entry) { p.unlink(e) }

// Accessed implements Policy.
func (p *LRU) Accessed(e *Entry) {
	p.unlink(e)
	p.pushFront(e)
}

// Reinforced implements Policy: treated as an access.
func (p *LRU) Reinforced(e *Entry, benefit float64) { p.Accessed(e) }

// NextVictim implements Policy: the least recently used unpinned entry.
func (p *LRU) NextVictim(Class) *Entry {
	for e := p.tail; e != nil; e = e.prev {
		if !e.Pinned() {
			return e
		}
	}
	return nil
}

// Fork implements Forker.
func (p *LRU) Fork() Policy { return NewLRU() }

func (p *LRU) pushFront(e *Entry) {
	e.prev = nil
	e.next = p.head
	if p.head != nil {
		p.head.prev = e
	}
	p.head = e
	if p.tail == nil {
		p.tail = e
	}
	p.n++
}

func (p *LRU) unlink(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		p.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		p.tail = e.prev
	}
	e.prev, e.next = nil, nil
	p.n--
}
