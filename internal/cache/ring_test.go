package cache

import (
	"fmt"
	"math/rand"
	"testing"

	"aggcache/internal/lattice"
)

// ringKeys returns a deterministic key population shaped like a real grid:
// many group-bys, modest chunk counts per group-by.
func ringKeys(n int) []Key {
	rng := rand.New(rand.NewSource(42))
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key{GB: lattice.ID(rng.Intn(300)), Num: int32(rng.Intn(64))}
	}
	return keys
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:7070", i+1)
	}
	return out
}

func TestRingDistributionUniformity(t *testing.T) {
	keys := ringKeys(20000)
	for _, n := range []int{2, 3, 4} {
		r := NewRing(members(n), DefaultVnodes)
		counts := make(map[string]int, n)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d members own keys", n, len(counts))
		}
		fair := float64(len(keys)) / float64(n)
		for m, c := range counts {
			dev := (float64(c) - fair) / fair
			if dev < -0.30 || dev > 0.30 {
				t.Errorf("n=%d: member %s owns %d keys, %.0f%% off fair share %.0f",
					n, m, c, dev*100, fair)
			}
		}
	}
}

// TestRingChurn verifies the consistent-hashing contract: growing or
// shrinking the membership by one moves only the keys adjacent to the
// changed member's points (about 1/N of the keyspace, with slack for vnode
// variance), and no key ever moves between two surviving members.
func TestRingChurn(t *testing.T) {
	keys := ringKeys(20000)
	for _, n := range []int{2, 3, 4} {
		small := NewRing(members(n), DefaultVnodes)
		big := NewRing(members(n+1), DefaultVnodes)
		added := members(n + 1)[n]
		moved := 0
		for _, k := range keys {
			before, after := small.Owner(k), big.Owner(k)
			if before == after {
				continue
			}
			moved++
			if after != added {
				t.Fatalf("n=%d→%d: key %v moved between survivors %s → %s",
					n, n+1, k, before, after)
			}
		}
		frac := float64(moved) / float64(len(keys))
		// Ideal churn is 1/(n+1); allow 1.5× for vnode placement variance.
		if limit := 1.5 / float64(n+1); frac > limit {
			t.Errorf("n=%d→%d: %.1f%% of keys moved, want ≤ %.1f%%",
				n, n+1, frac*100, limit*100)
		}
		if moved == 0 {
			t.Errorf("n=%d→%d: no keys moved to the new member", n, n+1)
		}
	}
}

// TestRingDeterministicOwnership is the olapcli↔aggcached contract: rings
// built from the same membership in any order agree on every key.
func TestRingDeterministicOwnership(t *testing.T) {
	keys := ringKeys(5000)
	ms := members(4)
	shuffled := []string{ms[2], ms[0], ms[3], ms[1]}
	withDups := append(append([]string{}, ms...), ms[1], "", ms[3])
	a := NewRing(ms, DefaultVnodes)
	b := NewRing(shuffled, DefaultVnodes)
	c := NewRing(withDups, DefaultVnodes)
	if a.Size() != 4 || b.Size() != 4 || c.Size() != 4 {
		t.Fatalf("sizes = %d/%d/%d, want 4", a.Size(), b.Size(), c.Size())
	}
	for _, k := range keys {
		if a.Owner(k) != b.Owner(k) || a.Owner(k) != c.Owner(k) {
			t.Fatalf("key %v: owners disagree: %q/%q/%q",
				k, a.Owner(k), b.Owner(k), c.Owner(k))
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	var nilRing *Ring
	if got := nilRing.OwnerHash(1); got != "" {
		t.Fatalf("nil ring owner = %q", got)
	}
	empty := NewRing(nil, 0)
	if got := empty.Owner(Key{}); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	if empty.Size() != 0 {
		t.Fatalf("empty ring size = %d", empty.Size())
	}
	solo := NewRing([]string{"a"}, 8)
	for _, k := range ringKeys(100) {
		if got := solo.Owner(k); got != "a" {
			t.Fatalf("singleton ring owner = %q", got)
		}
	}
	// Wrap: a hash above the highest point lands on the first point.
	r := NewRing(members(3), 16)
	if got := r.OwnerHash(^uint64(0)); got == "" {
		t.Fatalf("wrap owner is empty")
	}
}
