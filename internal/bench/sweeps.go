package bench

import (
	"fmt"

	"aggcache/internal/backend"
	"aggcache/internal/chunk"
	"aggcache/internal/sizer"
	"aggcache/internal/workload"
)

// MixSweep varies the roll-up share of the query stream and compares the
// conventional cache against the active cache — quantifying the paper's
// motivating claim that "we need active caches with aggregation to improve
// performance of roll-up queries" (§7.2). Drill-down and random shares are
// held at the paper's values; proximity absorbs the difference.
func MixSweep(e *Env) (*Report, error) {
	sizes := e.CacheSizes()
	bytes := sizes[len(sizes)/2]
	r := &Report{ID: "mix-sweep", Title: fmt.Sprintf("Hit ratio vs roll-up share of the stream (cache %s)", SizeLabel(bytes)),
		Header: []string{"roll-up share", "NoAgg %hits", "VCMC %hits", "NoAgg avg ms", "VCMC avg ms"}}
	for _, roll := range []float64{0, 0.15, 0.30, 0.45, 0.60} {
		mix := workload.Mix{DrillDown: 0.3, RollUp: roll, Proximity: 0.6 - roll, Random: 0.1}
		noagg, _, err := e.runStreamMix(SystemSpec{Strategy: StratNoAgg, Policy: PolicyBenefit, Bytes: bytes}, mix)
		if err != nil {
			return nil, err
		}
		vcmc, _, err := e.runStreamMix(SystemSpec{Strategy: StratVCMC, Policy: PolicyTwoLevel, Bytes: bytes, Preload: true}, mix)
		if err != nil {
			return nil, err
		}
		r.AddRow(fmt.Sprintf("%.0f%%", roll*100),
			fmt.Sprintf("%.0f", noagg.HitRatio()), fmt.Sprintf("%.0f", vcmc.HitRatio()),
			msString(noagg.AvgAll()), msString(vcmc.AvgAll()))
	}
	r.Addf("the active cache's advantage grows with the roll-up share; a conventional cache cannot exploit roll-up locality")
	return r, nil
}

// scaleCounts derives coarser or finer chunk counts from the preset:
// factor 0.5 halves every per-level chunk count, factor 2 doubles it, both
// clamped to [1, cardinality] and kept non-decreasing with level.
func (e *Env) scaleCounts(factor float64) [][]int {
	sch := e.Grid.Schema()
	out := make([][]int, sch.NumDims())
	for d := range out {
		dim := sch.Dim(d)
		h := dim.Hierarchy()
		counts := make([]int, h+1)
		counts[0] = 1
		prev := 1
		for l := 1; l <= h; l++ {
			c := int(float64(e.Grid.ChunkCount(d, l)) * factor)
			if c < prev {
				c = prev
			}
			if c > dim.Card(l) {
				c = dim.Card(l)
			}
			counts[l] = c
			prev = c
		}
		out[d] = counts
	}
	return out
}

// ChunkSizeSweep rebuilds the grid at coarser and finer chunk granularities
// and reruns the headline stream — the chunk-size sensitivity [DRSN98]
// discusses and the paper inherits. Infeasible granularities (closure
// alignment fails) are reported as such.
func ChunkSizeSweep(e *Env) (*Report, error) {
	r := &Report{ID: "chunk-sweep", Title: "Sensitivity to chunk granularity (VCMC, two-level, mid cache size)",
		Header: []string{"granularity", "chunks (all levels)", "%hits", "avg ms", "VCM bytes"}}
	for _, v := range []struct {
		name   string
		factor float64
	}{
		{"coarse (×0.5)", 0.5},
		{"preset (×1)", 1},
		{"fine (×2)", 2},
	} {
		counts := e.scaleCounts(v.factor)
		grid, err := chunk.NewGrid(e.Grid.Schema(), counts)
		if err != nil {
			r.AddRow(v.name, "infeasible: "+err.Error(), "", "", "")
			continue
		}
		be, err := backend.NewEngine(grid, e.Table, e.Cfg.Latency)
		if err != nil {
			return nil, err
		}
		sub := &Env{
			Cfg:     e.Cfg,
			APB:     e.APB,
			Grid:    grid,
			Table:   e.Table,
			Backend: be,
			Sizer:   sizer.NewEstimate(grid, int64(e.Table.Len())),
		}
		sizes := sub.CacheSizes()
		bytes := sizes[len(sizes)/2]
		res, err := sub.RunStream(SystemSpec{Strategy: StratVCMC, Policy: PolicyTwoLevel, Bytes: bytes, Preload: true})
		if err != nil {
			return nil, err
		}
		r.AddRow(v.name,
			fmt.Sprintf("%d", grid.TotalChunks()),
			fmt.Sprintf("%.0f", res.HitRatio()),
			msString(res.AvgAll()),
			fmt.Sprintf("%d", grid.TotalChunks()))
	}
	r.Addf("finer chunks raise both reuse precision and summary-state overhead; coarser chunks fetch more than queries need")
	return r, nil
}
