package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"aggcache/internal/cache"
	"aggcache/internal/lattice"
)

// Lemma2 measures VCM maintenance against the paper's bound: inserting a
// chunk at level (l_1..l_n) updates at most n·Π(l_i+1) counts.
func Lemma2(e *Env) (*Report, error) {
	s, err := e.NewStrategy(StratVCM, 0)
	if err != nil {
		return nil, err
	}
	lat := e.Grid.Lattice()
	rng := rand.New(rand.NewSource(e.Cfg.Seed + 2))
	n := int64(lat.NumDims())
	worstRatio := 0.0
	var worstAt string
	inserts := 400
	resident := map[cache.Key]bool{}
	for i := 0; i < inserts; i++ {
		gb := lattice.ID(rng.Intn(lat.NumNodes()))
		num := rng.Intn(e.Grid.NumChunks(gb))
		k := cache.Key{GB: gb, Num: int32(num)}
		if resident[k] {
			continue
		}
		resident[k] = true
		before := s.Maintenance().Updates
		start := time.Now()
		s.OnInsert(&cache.Entry{Key: k})
		_ = time.Since(start)
		updates := s.Maintenance().Updates - before
		bound := n * int64(lat.Descendants(gb))
		if updates > bound {
			return nil, fmt.Errorf("bench: Lemma 2 violated at %s: %d updates > bound %d",
				lat.LevelTupleString(gb), updates, bound)
		}
		if ratio := float64(updates) / float64(bound); ratio > worstRatio {
			worstRatio = ratio
			worstAt = lat.LevelTupleString(gb)
		}
	}
	r := &Report{ID: "lemma2", Title: "VCM insert maintenance vs Lemma 2 bound"}
	r.Addf("%d random inserts: every insert within the n·Π(l_i+1) bound", len(resident))
	r.Addf("tightest case: %.0f%% of the bound at %s", worstRatio*100, worstAt)
	return r, nil
}

// experiments maps experiment ids to their runners, in presentation order.
var experiments = []struct {
	id  string
	run func(e *Env) ([]*Report, error)
}{
	{"unit-aggbenefit", one(UnitAggBenefit)},
	{"unit-costvar", one(UnitCostVar)},
	{"table1", one(Table1)},
	{"table2", one(Table2)},
	{"table3", one(Table3)},
	{"fig7", func(e *Env) ([]*Report, error) { a, b, err := Fig7And8(e); return []*Report{a, b}, err }},
	{"fig9", one(Fig9)},
	{"fig10", func(e *Env) ([]*Report, error) { a, b, err := Fig10AndTable4(e); return []*Report{a, b}, err }},
	{"ablate", one(Ablations)},
	{"bypass", one(CostBypass)},
	{"mix-sweep", one(MixSweep)},
	{"chunk-sweep", one(ChunkSizeSweep)},
	{"lemma1", one(Lemma1)},
	{"lemma2", one(Lemma2)},
	{"concurrency", one(ConcurrencySweep)},
	{"shards", one(ShardSweep)},
	{"kernel", one(Kernel)},
	{"wire", one(Wire)},
	{"observability", one(Observability)},
	{"chaos", one(Chaos)},
	{"cluster", one(Cluster)},
	{"overload", one(Overload)},
	{"recycle", one(Recycle)},
	{"tiered", one(Tiered)},
}

// aliases maps alternative ids (artifacts that share a runner) to canonical
// ids.
var aliases = map[string]string{
	"fig8":   "fig7",
	"table4": "fig10",
}

func one(f func(e *Env) (*Report, error)) func(e *Env) ([]*Report, error) {
	return func(e *Env) ([]*Report, error) {
		r, err := f(e)
		if err != nil {
			return nil, err
		}
		return []*Report{r}, nil
	}
}

// IDs returns all experiment ids in order, including aliases.
func IDs() []string {
	out := make([]string, 0, len(experiments)+len(aliases))
	for _, ex := range experiments {
		out = append(out, ex.id)
	}
	for a := range aliases {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given id ("all" runs everything in
// order).
func Run(e *Env, id string) ([]*Report, error) {
	if id == "all" {
		var all []*Report
		for _, ex := range experiments {
			rs, err := ex.run(e)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", ex.id, err)
			}
			all = append(all, rs...)
		}
		return all, nil
	}
	if canon, ok := aliases[id]; ok {
		id = canon
	}
	for _, ex := range experiments {
		if ex.id == id {
			rs, err := ex.run(e)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", ex.id, err)
			}
			return rs, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (want one of %v or all)", id, IDs())
}
