package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/core"
	"aggcache/internal/mtier"
	"aggcache/internal/workload"
)

// clusterJSONFile is the machine-readable artifact Cluster writes next to
// its report. CI uploads it so the scale-out trajectory can be compared
// across commits without parsing report text.
const clusterJSONFile = "BENCH_7.json"

// Axes of the cluster sweep: node counts with a fixed number of clients per
// node, the standard scale-out methodology — per-node resources (capacity,
// client load) are pinned and the offered load grows with the group, so the
// curve answers "does adding a node increase the queries/sec the group
// sustains", which is aggregate capacity plus peer-fill reuse.
var clusterNodeCounts = []int{1, 2, 3, 4}

const clusterClientsPerNode = 4

// clusterMeasurePasses is how many concurrent replays the timed window
// spans; one untimed replay converges the group first, so the measurement
// is steady state, and a multi-pass window damps scheduler noise.
const clusterMeasurePasses = 2

// clusterMix is the APB-1 proximity-heavy stream: neighbors of recently
// asked regions dominate, so a chunk fetched by any node is soon wanted
// again somewhere in the group — the access pattern the peer tier targets.
var clusterMix = workload.Mix{DrillDown: 0.1, RollUp: 0.1, Proximity: 0.7, Random: 0.1}

// clusterMetrics is the BENCH_7.json schema.
type clusterMetrics struct {
	Bench     string `json:"bench"`
	Scale     string `json:"scale"`
	GoVersion string `json:"go_version"`
	Procs     int    `json:"gomaxprocs"`
	// ClientsPerNode is the offered load per member: total clients for a row
	// are nodes × this, so the sweep measures sustained group throughput.
	ClientsPerNode int `json:"clients_per_node"`
	// PerNodeBytes is each node's local capacity — fixed across the sweep,
	// so aggregate capacity grows linearly with the node count.
	PerNodeBytes int64        `json:"per_node_bytes"`
	Rows         []clusterRow `json:"rows"`
	Speedup4v1   float64      `json:"speedup_4v1"`
	MonotonicQPS bool         `json:"monotonic_qps"`
	MonotonicHit bool         `json:"monotonic_hit_rate"`
}

type clusterRow struct {
	Nodes   int     `json:"nodes"`
	Queries int64   `json:"queries"`
	WallMs  float64 `json:"wall_ms"`
	QPS     float64 `json:"qps"`
	// GroupHitRate is the fraction of chunks the cluster answered without
	// the backend: local hits, in-cache aggregation and peer fills.
	GroupHitRate float64 `json:"group_hit_rate"`
	// LocalHitRate excludes peer fills — the single-node baseline metric.
	LocalHitRate  float64 `json:"local_hit_rate"`
	PeerFills     int64   `json:"peer_fills"`
	PeerFillMiss  int64   `json:"peer_fill_misses"`
	PeerFillErrs  int64   `json:"peer_fill_errors"`
	PeerPuts      int64   `json:"peer_puts"`
	BackendChunks int64   `json:"backend_chunks"`
}

// clusterNode is one in-process cluster member: a local store wrapped in the
// peer tier, its engine, and the mtier server carrying peer traffic.
type clusterNode struct {
	name   string
	peered *cache.Peered
	engine *core.Engine
	server *mtier.Server
}

// buildCluster assembles n nodes over a shared slept backend. Ring members
// are logical names resolved to TCP addresses by the dialer, so the ring can
// be constructed before any listener is bound: each node starts as a
// singleton ring and is rebuilt to full membership once every server has a
// port — the same two-step a SIGHUP membership reload performs.
func buildCluster(e *Env, n int, be backend.Backend, perNode int64) ([]*clusterNode, error) {
	addrOf := make(map[string]string, n)
	var mu sync.Mutex
	dial := func(name string) cache.Peer {
		mu.Lock()
		addr := addrOf[name]
		mu.Unlock()
		return mtier.NewPeerClient(addr, 0)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i)
	}
	nodes := make([]*clusterNode, 0, n)
	fail := func(err error) ([]*clusterNode, error) {
		closeCluster(nodes)
		return nil, err
	}
	for i := 0; i < n; i++ {
		store, err := cache.New(perNode, cache.NewTwoLevel())
		if err != nil {
			return fail(err)
		}
		pc, err := cache.NewPeered(store, cache.PeeredConfig{
			Self:    names[i],
			Members: []string{names[i]},
			Dial:    dial,
		})
		if err != nil {
			return fail(err)
		}
		strat, err := e.NewStrategy(StratVCMC, 0)
		if err != nil {
			pc.Close()
			return fail(err)
		}
		eng, err := core.New(e.Grid, pc, strat, be, e.Sizer)
		if err != nil {
			pc.Close()
			return fail(err)
		}
		srv := mtier.NewServer(eng)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			pc.Close()
			return fail(err)
		}
		mu.Lock()
		addrOf[names[i]] = addr
		mu.Unlock()
		nodes = append(nodes, &clusterNode{name: names[i], peered: pc, engine: eng, server: srv})
	}
	for _, nd := range nodes {
		if err := nd.peered.Rebuild(names); err != nil {
			return fail(err)
		}
	}
	return nodes, nil
}

func closeCluster(nodes []*clusterNode) {
	for _, nd := range nodes {
		nd.server.Close()
		nd.peered.Close()
	}
}

// Cluster measures the distributed cache tier's scaling curve: aggregate
// hit rate and sustained throughput for 1–4 cooperating nodes on the
// proximity-heavy APB-1 mix, with a fixed number of clients per node so the
// offered load grows with the group. Per-node capacity is pinned, so adding
// a node adds both service parallelism and a slice of aggregate capacity the
// group shares via peer fills. The backend sleeps its simulated latency, so
// a peer fill (a sub-millisecond wire exchange) beats a backend trip by an
// order of magnitude and the hit-rate gain shows up as throughput.
func Cluster(e *Env) (*Report, error) {
	gen, err := workload.NewGenerator(e.Grid, clusterMix, e.Cfg.MaxQueryWidth, e.Cfg.Seed+7000)
	if err != nil {
		return nil, err
	}
	queries, _ := gen.Stream(e.Cfg.Queries)
	// A sixth of the base table each: the 1-node baseline is genuinely
	// capacity-starved, and even the 4-node group (two thirds of the base
	// table in aggregate, minus duplication and computed-chunk overhead)
	// still has backend traffic left to convert, so every added node moves
	// both the hit rate and the throughput.
	perNode := e.BaseBytes() / 6

	// A dedicated backend whose simulated latency is genuinely slept: the
	// wall-clock cost of a miss is real, so hit-rate improvements translate
	// into measured throughput exactly as they would in the three-tier
	// deployment.
	be, err := backend.NewEngine(e.Grid, e.Table, backend.LatencyModel{
		Connect: 10 * time.Millisecond, PerTuple: 200 * time.Nanosecond, Sleep: true,
	})
	if err != nil {
		return nil, err
	}
	defer be.Close()

	var m clusterMetrics
	m.Bench = "cluster"
	m.Scale = e.Cfg.Scale.String()
	m.GoVersion = runtime.Version()
	m.Procs = runtime.GOMAXPROCS(0)
	m.ClientsPerNode = clusterClientsPerNode
	m.PerNodeBytes = perNode

	r := &Report{
		ID: "cluster",
		Title: fmt.Sprintf("Distributed cache tier scaling, proximity mix (VCMC/two-level, %s per node, %d clients/node)",
			SizeLabel(perNode), clusterClientsPerNode),
		Header: []string{"nodes", "queries", "wall ms", "queries/sec", "group hit", "local hit", "peer fills", "backend chunks"},
	}

	for _, n := range clusterNodeCounts {
		nodes, err := buildCluster(e, n, be, perNode)
		if err != nil {
			return nil, err
		}
		// Warm pass: one sequential round-robin replay populates the group
		// and lets replication spread each backend fill to its ring owner.
		for i, q := range queries {
			if _, err := nodes[i%n].engine.Execute(context.Background(), q); err != nil {
				closeCluster(nodes)
				return nil, err
			}
		}
		// Let the asynchronous replication queues drain before measuring.
		time.Sleep(200 * time.Millisecond)

		// Two concurrent passes: the first converges the group — every node
		// pulls the chunks its pinned clients will keep asking for — and the
		// second is the measured steady state, the regime a long-lived tier
		// actually serves.
		clients := clusterClientsPerNode * n
		var hit, miss, peer atomic.Int64
		var elapsed time.Duration
		replay := func(measure bool) error {
			errs := make(chan error, clients)
			var wg sync.WaitGroup
			start := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					eng := nodes[c%n].engine
					off := c * len(queries) / clients
					for i := range queries {
						res, err := eng.Execute(context.Background(), queries[(off+i)%len(queries)])
						if err != nil {
							errs <- fmt.Errorf("bench: cluster client %d: %w", c, err)
							return
						}
						if measure {
							hit.Add(int64(res.HitChunks))
							miss.Add(int64(res.MissChunks))
							peer.Add(int64(res.PeerChunks))
						}
					}
				}(c)
			}
			wg.Wait()
			if measure {
				elapsed += time.Since(start)
			}
			close(errs)
			for err := range errs {
				return err
			}
			return nil
		}
		if err := replay(false); err != nil {
			closeCluster(nodes)
			return nil, err
		}
		sum := func() cache.PeerStats {
			var ps cache.PeerStats
			for _, nd := range nodes {
				s := nd.peered.PeerStats()
				ps.Fills += s.Fills
				ps.FillMisses += s.FillMisses
				ps.FillErrors += s.FillErrors
				ps.Puts += s.Puts
			}
			return ps
		}
		before := sum()
		for pass := 0; pass < clusterMeasurePasses; pass++ {
			if err := replay(true); err != nil {
				closeCluster(nodes)
				return nil, err
			}
		}
		after := sum()
		// Peer counters for the row are the measured pass only.
		ps := cache.PeerStats{
			Fills:      after.Fills - before.Fills,
			FillMisses: after.FillMisses - before.FillMisses,
			FillErrors: after.FillErrors - before.FillErrors,
			Puts:       after.Puts - before.Puts,
		}
		closeCluster(nodes)

		total := hit.Load() + miss.Load()
		row := clusterRow{
			Nodes:         n,
			Queries:       int64(clusterMeasurePasses * clients * len(queries)),
			WallMs:        float64(elapsed) / float64(time.Millisecond),
			QPS:           float64(clusterMeasurePasses*clients*len(queries)) / elapsed.Seconds(),
			GroupHitRate:  float64(hit.Load()+peer.Load()) / float64(total),
			LocalHitRate:  float64(hit.Load()) / float64(total),
			PeerFills:     ps.Fills,
			PeerFillMiss:  ps.FillMisses,
			PeerFillErrs:  ps.FillErrors,
			PeerPuts:      ps.Puts,
			BackendChunks: miss.Load() - peer.Load(),
		}
		m.Rows = append(m.Rows, row)
		r.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", row.Queries), msString(elapsed),
			fmt.Sprintf("%.0f", row.QPS),
			fmt.Sprintf("%.1f%%", row.GroupHitRate*100), fmt.Sprintf("%.1f%%", row.LocalHitRate*100),
			fmt.Sprintf("%d", row.PeerFills), fmt.Sprintf("%d", row.BackendChunks))
	}

	m.Speedup4v1 = m.Rows[len(m.Rows)-1].QPS / m.Rows[0].QPS
	m.MonotonicQPS, m.MonotonicHit = true, true
	for i := 1; i < len(m.Rows); i++ {
		if m.Rows[i].QPS < m.Rows[i-1].QPS {
			m.MonotonicQPS = false
		}
		if m.Rows[i].GroupHitRate < m.Rows[i-1].GroupHitRate {
			m.MonotonicHit = false
		}
	}

	buf, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(clusterJSONFile, append(buf, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("bench: cluster: %w", err)
	}

	r.Addf("each row rebuilds an n-node cluster (%s local tier each), warms with one round-robin replay of the %d-query stream, converges with one untimed concurrent pass, then measures %d clients per node replaying it",
		SizeLabel(perNode), len(queries), clusterClientsPerNode)
	r.Addf("4-node vs 1-node throughput: %.2f× (qps monotonic: %v, group hit rate monotonic: %v)",
		m.Speedup4v1, m.MonotonicQPS, m.MonotonicHit)
	r.Addf("machine-readable copy written to %s", clusterJSONFile)
	return r, nil
}
