package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"aggcache/internal/workload"
)

// shardsJSONFile is the machine-readable artifact ShardSweep writes next to
// its report. CI uploads it so the cache's lock-scaling trajectory can be
// compared across commits without parsing report text.
const shardsJSONFile = "BENCH_5.json"

// Axes of the shard sweep.
var (
	shardCounts  = []int{1, 4, 16}
	shardClients = []int{1, 4, 8}
)

// shardsMetrics is the BENCH_5.json schema.
type shardsMetrics struct {
	Bench     string `json:"bench"`
	Scale     string `json:"scale"`
	GoVersion string `json:"go_version"`
	Procs     int    `json:"gomaxprocs"`
	Rows      []struct {
		Shards  int     `json:"shards"`
		Clients int     `json:"clients"`
		Queries int64   `json:"queries"`
		WallMs  float64 `json:"wall_ms"`
		QPS     float64 `json:"qps"`
	} `json:"rows"`
	// Speedup16v1 is qps(16 shards)/qps(1 shard) at the largest client count
	// — the headline number for the striped lock.
	Speedup16v1 float64 `json:"speedup_16v1_at_max_clients"`
}

// ShardSweep measures how cache throughput scales with the stripe count:
// queries/sec for 1, 4 and 16 shards under 1, 4 and 8 concurrent clients.
// The system is preloaded and warmed so nearly every query is answered inside
// the cache — no slept backend latency — which makes the store's locking the
// dominant shared resource, exactly the regime the sharded Store targets.
// Single-client rows bound the striping overhead; multi-client rows show the
// contention relief. The sweep is meaningful only with GOMAXPROCS > 1
// (goroutines must genuinely run in parallel to contend); the report and
// BENCH_5.json record the proc count so readers can judge.
func ShardSweep(e *Env) (*Report, error) {
	gen, err := workload.NewGenerator(e.Grid, workload.DefaultMix, e.Cfg.MaxQueryWidth, e.Cfg.Seed+5000)
	if err != nil {
		return nil, err
	}
	queries, _ := gen.Stream(e.Cfg.Queries)
	bytes := e.BaseBytes() * 2 / 3

	var m shardsMetrics
	m.Bench = "shards"
	m.Scale = e.Cfg.Scale.String()
	m.GoVersion = runtime.Version()
	m.Procs = runtime.GOMAXPROCS(0)

	r := &Report{
		ID: "shards",
		Title: fmt.Sprintf("Sharded store throughput, warm cache (VCMC/two-level, cache %s, GOMAXPROCS=%d)",
			SizeLabel(bytes), m.Procs),
		Header: []string{"shards", "clients", "queries", "wall ms", "queries/sec", "vs 1 shard"},
	}
	// qps indexed by [shard axis][client axis] for the cross-shard ratios.
	qps := make([][]float64, len(shardCounts))
	for si, shards := range shardCounts {
		qps[si] = make([]float64, len(shardClients))
		for ci, clients := range shardClients {
			sys, err := e.NewSystem(SystemSpec{
				Strategy: StratVCMC, Policy: PolicyTwoLevel, Bytes: bytes,
				Preload: true, Shards: shards,
			})
			if err != nil {
				return nil, err
			}
			// Warm pass: after one sequential replay the stream is hit-heavy,
			// so the measured pass stresses the store, not the backend.
			for _, q := range queries {
				if _, err := sys.Engine.Execute(context.Background(), q); err != nil {
					return nil, err
				}
			}
			warm := sys.Engine.Stats().Queries
			elapsed, err := runClients(sys, queries, clients)
			if err != nil {
				return nil, err
			}
			n := sys.Engine.Stats().Queries - warm
			rate := float64(n) / elapsed.Seconds()
			qps[si][ci] = rate
			m.Rows = append(m.Rows, struct {
				Shards  int     `json:"shards"`
				Clients int     `json:"clients"`
				Queries int64   `json:"queries"`
				WallMs  float64 `json:"wall_ms"`
				QPS     float64 `json:"qps"`
			}{shards, clients, n, float64(elapsed) / float64(time.Millisecond), rate})
			r.AddRow(fmt.Sprintf("%d", shards), fmt.Sprintf("%d", clients),
				fmt.Sprintf("%d", n), msString(elapsed), fmt.Sprintf("%.0f", rate),
				fmt.Sprintf("%.2f", rate/qps[0][ci]))
		}
	}
	m.Speedup16v1 = qps[len(shardCounts)-1][len(shardClients)-1] / qps[0][len(shardClients)-1]

	buf, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(shardsJSONFile, append(buf, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("bench: shards: %w", err)
	}

	r.Addf("each cell rebuilds the system, preloads, replays the %d-query stream once to warm, then measures the clients' replays", len(queries))
	r.Addf("16-shard vs 1-shard speedup at %d clients: %.2f×", shardClients[len(shardClients)-1], m.Speedup16v1)
	r.Addf("machine-readable copy written to %s", shardsJSONFile)
	return r, nil
}
