package bench

import (
	"context"
	"fmt"
	"math/big"

	"aggcache/internal/core"
	"aggcache/internal/lattice"
)

// UnitAggBenefit measures the paper's "Benefit of Aggregation" unit
// experiment (§7.1): with the base table cached, answering one chunk per
// group-by by in-cache aggregation versus computing it at the backend. The
// paper found cache aggregation ≈8× faster on average.
func UnitAggBenefit(e *Env) (*Report, error) {
	sys, err := e.NewSystem(SystemSpec{
		Strategy: StratVCMC,
		Policy:   PolicyTwoLevel,
		Bytes:    e.BaseBytes() * 4,
		Preload:  true,
	})
	if err != nil {
		return nil, err
	}
	lat := e.Grid.Lattice()
	r := &Report{ID: "unit-aggbenefit", Title: "Benefit of aggregation: backend vs in-cache, one chunk per group-by",
		Header: []string{"metric", "value"}}
	var sum, min, max float64
	n := 0
	for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
		if id == lat.Base() {
			continue // the base chunk cannot be aggregated from anything
		}
		_, bstats, err := e.Backend.ComputeChunks(context.Background(), id, []int{0})
		if err != nil {
			return nil, err
		}
		res, err := sys.Engine.Execute(context.Background(), singleChunkQuery(e, id))
		if err != nil {
			return nil, err
		}
		if !res.CompleteHit {
			return nil, fmt.Errorf("bench: chunk of %s not computable after preload", lat.LevelTupleString(id))
		}
		cacheTime := res.Breakdown.Total()
		if cacheTime <= 0 {
			continue
		}
		ratio := float64(bstats.Cost()) / float64(cacheTime)
		if n == 0 || ratio < min {
			min = ratio
		}
		if ratio > max {
			max = ratio
		}
		sum += ratio
		n++
	}
	r.AddRow("group-bys measured", fmt.Sprintf("%d", n))
	r.AddRow("avg backend/cache factor", fmt.Sprintf("%.1f", sum/float64(n)))
	r.AddRow("min factor", fmt.Sprintf("%.1f", min))
	r.AddRow("max factor", fmt.Sprintf("%.1f", max))
	r.Addf("paper: aggregating in cache ≈8× faster than the backend on average (factor depends on network/DBMS)")
	return r, nil
}

// singleChunkQuery builds a query covering exactly chunk 0 of gb.
func singleChunkQuery(e *Env, gb lattice.ID) core.Query {
	nd := e.Grid.Schema().NumDims()
	lo := make([]int32, nd)
	hi := make([]int32, nd)
	for d := 0; d < nd; d++ {
		hi[d] = 1
	}
	return core.Query{GB: gb, Lo: lo, Hi: hi}
}

// UnitCostVar measures the paper's "Aggregation Cost Optimization" unit
// experiment (§7.1): the spread between the cheapest and the most expensive
// aggregation path, per group-by, with the base table cached. The paper
// found an average factor of ≈10.
func UnitCostVar(e *Env) (*Report, error) {
	lat := e.Grid.Lattice()
	base := lat.Base()
	type key struct {
		gb  lattice.ID
		num int
	}
	minMemo := map[key]int64{}
	maxMemo := map[key]int64{}
	var minCost, maxCost func(gb lattice.ID, num int) int64
	minCost = func(gb lattice.ID, num int) int64 {
		if gb == base {
			return 0
		}
		k := key{gb, num}
		if v, ok := minMemo[k]; ok {
			return v
		}
		best := int64(-1)
		for _, parent := range lat.Parents(gb) {
			total := int64(0)
			for _, cn := range e.Grid.ParentChunks(gb, num, parent, nil) {
				total += minCost(parent, cn) + e.Sizer.ChunkCells(parent, cn)
			}
			if best < 0 || total < best {
				best = total
			}
		}
		minMemo[k] = best
		return best
	}
	maxCost = func(gb lattice.ID, num int) int64 {
		if gb == base {
			return 0
		}
		k := key{gb, num}
		if v, ok := maxMemo[k]; ok {
			return v
		}
		worst := int64(-1)
		for _, parent := range lat.Parents(gb) {
			total := int64(0)
			for _, cn := range e.Grid.ParentChunks(gb, num, parent, nil) {
				total += maxCost(parent, cn) + e.Sizer.ChunkCells(parent, cn)
			}
			if total > worst {
				worst = total
			}
		}
		maxMemo[k] = worst
		return worst
	}

	r := &Report{ID: "unit-costvar", Title: "Aggregation cost spread across lattice paths (base table cached)",
		Header: []string{"levels aggregated", "avg max/min factor", "group-bys"}}
	bySum := map[int][]float64{}
	var all float64
	n := 0
	maxSum := 0
	for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
		if id == base || len(lat.Parents(id)) < 2 {
			continue // a single path has no spread
		}
		mn, mx := minCost(id, 0), maxCost(id, 0)
		if mn <= 0 {
			continue
		}
		f := float64(mx) / float64(mn)
		dist := 0
		for d, l := range lat.Level(id) {
			dist += e.Grid.Schema().Dim(d).Hierarchy() - l
		}
		bySum[dist] = append(bySum[dist], f)
		if dist > maxSum {
			maxSum = dist
		}
		all += f
		n++
	}
	for dist := 2; dist <= maxSum; dist++ {
		fs := bySum[dist]
		if len(fs) == 0 {
			continue
		}
		sum := 0.0
		for _, f := range fs {
			sum += f
		}
		r.AddRow(fmt.Sprintf("%d", dist), fmt.Sprintf("%.2f", sum/float64(len(fs))), fmt.Sprintf("%d", len(fs)))
	}
	r.Addf("overall average factor: %.2f over %d group-bys (paper: ≈10, larger for more aggregated group-bys)", all/float64(n), n)
	return r, nil
}

// Lemma1 prints closed-form lattice path counts (Lemma 1) for the schema,
// cross-checked against dynamic programming.
func Lemma1(e *Env) (*Report, error) {
	lat := e.Grid.Lattice()
	r := &Report{ID: "lemma1", Title: "Lattice path counts (Lemma 1)",
		Header: []string{"group-by", "paths to base"}}
	// DP oracle over parent edges.
	memo := make([]*big.Int, lat.NumNodes())
	var dp func(id lattice.ID) *big.Int
	dp = func(id lattice.ID) *big.Int {
		if memo[id] != nil {
			return memo[id]
		}
		ps := lat.Parents(id)
		if len(ps) == 0 {
			memo[id] = big.NewInt(1)
			return memo[id]
		}
		sum := new(big.Int)
		for _, p := range ps {
			sum.Add(sum, dp(p))
		}
		memo[id] = sum
		return sum
	}
	for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
		want := dp(id)
		got := lat.PathCount(id)
		if got.Cmp(want) != 0 {
			return nil, fmt.Errorf("bench: Lemma 1 mismatch at %s: formula %v, DP %v",
				lat.LevelTupleString(id), got, want)
		}
	}
	r.AddRow("base "+lat.LevelTupleString(lat.Base()), "1")
	r.AddRow("top "+lat.LevelTupleString(lat.Top()), lat.PathCount(lat.Top()).String())
	r.Addf("formula (Σ(h−l))!/Π(h−l)! verified against DP for all %d group-bys", lat.NumNodes())
	return r, nil
}
