// Package bench implements the paper's evaluation (§7): one runnable
// experiment per table and figure, plus the unit experiments, Lemma checks
// and ablations listed in DESIGN.md. cmd/aggbench is the CLI front end and
// the repository-level benchmarks wrap the same functions.
package bench

import (
	"context"
	"fmt"
	"time"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/core"
	"aggcache/internal/data"
	"aggcache/internal/obs"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
)

// Config tunes an experiment run.
type Config struct {
	// Scale selects the APB preset.
	Scale apb.Scale
	// Seed drives data generation and query streams.
	Seed int64
	// Queries is the stream length for the query-stream experiments; the
	// paper uses 100.
	Queries int
	// CacheFractions lists cache sizes as fractions of the base table bytes.
	// The paper's 10–25 MB against a 22 MB base table correspond to
	// {0.45, 0.68, 0.91, 1.14}.
	CacheFractions []float64
	// LookupBudget bounds nodes per exhaustive (ESM/ESMC) lookup; 0 means
	// faithful unbounded search. Budget misses fall back to the backend and
	// are reported.
	LookupBudget int64
	// Latency is the backend latency model.
	Latency backend.LatencyModel
	// MaxQueryWidth bounds generated query regions (chunks per dimension).
	MaxQueryWidth int
}

// DefaultConfig returns the configuration used by cmd/aggbench unless
// overridden by flags.
func DefaultConfig(scale apb.Scale) Config {
	return Config{
		Scale:          scale,
		Seed:           1,
		Queries:        100,
		CacheFractions: []float64{0.45, 0.68, 0.91, 1.14},
		LookupBudget:   4_000_000,
		Latency:        backend.DefaultLatency,
		MaxQueryWidth:  2,
	}
}

// Env is the shared experimental fixture: schema, grid, dataset, backend and
// size oracle.
type Env struct {
	Cfg     Config
	APB     apb.Config
	Grid    *chunk.Grid
	Table   *data.Table
	Backend *backend.Engine
	Sizer   sizer.Sizer
}

// NewEnv builds the fixture for a configuration.
func NewEnv(cfg Config) (*Env, error) {
	if cfg.Queries <= 0 {
		cfg.Queries = 100
	}
	if cfg.MaxQueryWidth <= 0 {
		cfg.MaxQueryWidth = 2
	}
	if len(cfg.CacheFractions) == 0 {
		cfg.CacheFractions = []float64{0.45, 0.68, 0.91, 1.14}
	}
	ac := apb.New(cfg.Scale)
	grid, tab, err := ac.Build(cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	be, err := backend.NewEngine(grid, tab, cfg.Latency)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return &Env{
		Cfg:     cfg,
		APB:     ac,
		Grid:    grid,
		Table:   tab,
		Backend: be,
		Sizer:   sizer.NewEstimate(grid, int64(tab.Len())),
	}, nil
}

// BaseBytes returns the footprint of the base table in cache terms (one
// cell per fact row).
func (e *Env) BaseBytes() int64 {
	return int64(e.Table.Len())*chunk.CellBytes +
		int64(e.Grid.NumChunks(e.Grid.Lattice().Base()))*chunk.OverheadBytes
}

// CacheSizes resolves the configured fractions into byte capacities.
func (e *Env) CacheSizes() []int64 {
	base := e.BaseBytes()
	out := make([]int64, len(e.Cfg.CacheFractions))
	for i, f := range e.Cfg.CacheFractions {
		out[i] = int64(f * float64(base))
	}
	return out
}

// SizeLabel renders a cache size the way the paper labels its x axes.
func SizeLabel(bytes int64) string {
	switch {
	case bytes >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(bytes)/(1<<20))
	case bytes >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(bytes)/(1<<10))
	}
	return fmt.Sprintf("%dB", bytes)
}

// StrategyName selects a lookup strategy for builders.
type StrategyName string

// Strategy names accepted by NewStrategy.
const (
	StratESM   StrategyName = "ESM"
	StratESMC  StrategyName = "ESMC"
	StratVCM   StrategyName = "VCM"
	StratVCMC  StrategyName = "VCMC"
	StratNoAgg StrategyName = "NoAgg"
)

// NewStrategy instantiates a fresh strategy. budget applies to the
// exhaustive methods only.
func (e *Env) NewStrategy(name StrategyName, budget int64) (strategy.Strategy, error) {
	switch name {
	case StratESM:
		return strategy.NewESM(e.Grid, budget), nil
	case StratESMC:
		return strategy.NewESMC(e.Grid, e.Sizer, budget), nil
	case StratVCM:
		return strategy.NewVCM(e.Grid), nil
	case StratVCMC:
		return strategy.NewVCMC(e.Grid, e.Sizer), nil
	case StratNoAgg:
		return strategy.NewNoAgg(e.Grid), nil
	}
	return nil, fmt.Errorf("bench: unknown strategy %q", name)
}

// PolicyName selects a replacement policy.
type PolicyName string

// Policy names accepted by NewPolicy.
const (
	PolicyBenefit         PolicyName = "benefit"
	PolicyTwoLevel        PolicyName = "two-level"
	PolicyTwoLevelPromote PolicyName = "two-level-promote"
	PolicyLRU             PolicyName = "lru"
)

// NewPolicy instantiates a fresh replacement policy.
func NewPolicy(name PolicyName) (cache.Policy, error) {
	switch name {
	case PolicyBenefit:
		return cache.NewBenefitClock(), nil
	case PolicyTwoLevel:
		return cache.NewTwoLevel(), nil
	case PolicyTwoLevelPromote:
		return cache.NewTwoLevelPromote(), nil
	case PolicyLRU:
		return cache.NewLRU(), nil
	}
	return nil, fmt.Errorf("bench: unknown policy %q", name)
}

// System bundles one cache/strategy/engine instance under test.
type System struct {
	Engine   *core.Engine
	Cache    cache.Store
	Strategy strategy.Strategy
	// Preloaded is the group-by preloading chose, if preloading ran.
	Preloaded string
}

// SystemSpec describes how to build a System.
type SystemSpec struct {
	Strategy StrategyName
	Policy   PolicyName
	Bytes    int64
	// ColdBytes, when positive, wraps the hot store in a Tiered store with a
	// compressed in-RAM cold tier of that capacity.
	ColdBytes int64
	Preload   bool
	Budget    int64
	// Shards selects the cache's stripe count: 0 builds the single-lock
	// reference store, anything else is passed to cache.WithShards.
	Shards int
	// EngineOpts tune the engine (core.WithCostBypass, core.WithReinforce,
	// …).
	EngineOpts []core.Option
	// Backend overrides the environment's shared backend (e.g. one with
	// materialized aggregates for the cost-bypass experiment).
	Backend backend.Backend
	// Obs, when non-nil, wires live observability (cache, strategy and
	// engine metrics) into the built system — the production aggcached
	// instrumentation, used by the observability overhead experiment.
	Obs *obs.Registry
}

// NewSystem builds an engine with its own cache and strategy over the shared
// backend.
func (e *Env) NewSystem(spec SystemSpec) (*System, error) {
	strat, err := e.NewStrategy(spec.Strategy, spec.Budget)
	if err != nil {
		return nil, err
	}
	if spec.Obs != nil {
		strat = strategy.Instrument(strat, obs.NewStrategyMetrics(spec.Obs, strat.Name()))
	}
	pol, err := NewPolicy(spec.Policy)
	if err != nil {
		return nil, err
	}
	var copts []cache.Option
	if spec.Shards != 0 {
		copts = append(copts, cache.WithShards(spec.Shards))
	}
	if spec.Obs != nil {
		copts = append(copts, cache.WithMetrics(obs.NewCacheMetrics(spec.Obs)))
	}
	c, err := cache.New(spec.Bytes, pol, copts...)
	if err != nil {
		return nil, err
	}
	if spec.ColdBytes > 0 {
		tc, err := cache.NewTiered(c, spec.ColdBytes)
		if err != nil {
			return nil, err
		}
		if spec.Obs != nil {
			tc.SetTierMetrics(obs.NewTierMetrics(spec.Obs))
		}
		c = tc
	}
	be := backend.Backend(e.Backend)
	if spec.Backend != nil {
		be = spec.Backend
	}
	eopts := spec.EngineOpts
	if spec.Obs != nil {
		eopts = append(eopts[:len(eopts):len(eopts)], core.WithMetrics(obs.NewEngineMetrics(spec.Obs)))
	}
	eng, err := core.New(e.Grid, c, strat, be, e.Sizer, eopts...)
	if err != nil {
		return nil, err
	}
	sys := &System{Engine: eng, Cache: c, Strategy: strat}
	if spec.Preload {
		gb, ok, err := eng.Preload(context.Background())
		if err != nil {
			return nil, err
		}
		if ok {
			sys.Preloaded = e.Grid.Lattice().LevelTupleString(gb)
		}
	}
	return sys, nil
}

// msString renders a duration in fractional milliseconds like the paper's
// tables.
func msString(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}
