package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Report is one experiment's output: a headline, free-form notes, and an
// aligned table mirroring the paper's artifact.
type Report struct {
	ID    string
	Title string
	Lines []string
	// Header and Rows render as an aligned table when non-empty.
	Header []string
	Rows   [][]string
}

// Addf appends a formatted note line.
func (r *Report) Addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// AddRow appends a table row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		fmt.Fprintf(&b, "%s\n", l)
	}
	if len(r.Header) > 0 {
		widths := make([]int, len(r.Header))
		for i, h := range r.Header {
			widths[i] = len(h)
		}
		for _, row := range r.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		writeRow := func(cells []string) {
			for i, c := range cells {
				if i > 0 {
					b.WriteString("  ")
				}
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
			b.WriteByte('\n')
		}
		writeRow(r.Header)
		sep := make([]string, len(r.Header))
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
		for _, row := range r.Rows {
			writeRow(row)
		}
	}
	return b.String()
}

// WriteCSV emits the report's table as CSV (header row first) for external
// plotting; reports without a table write nothing.
func (r *Report) WriteCSV(w io.Writer) error {
	if len(r.Header) == 0 {
		return nil
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Header); err != nil {
		return fmt.Errorf("bench: csv: %w", err)
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("bench: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
