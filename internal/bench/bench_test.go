package bench

import (
	"strings"
	"testing"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
)

// tinyConfig keeps experiment tests fast.
func tinyConfig() Config {
	cfg := DefaultConfig(apb.ScaleTiny)
	cfg.Queries = 40
	cfg.LookupBudget = 200_000
	cfg.Latency = backend.LatencyModel{Connect: 100_000, PerTuple: 100} // ns values
	return cfg
}

func tinyEnv(t testing.TB) *Env {
	t.Helper()
	e, err := NewEnv(tinyConfig())
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	return e
}

func TestRunAllExperiments(t *testing.T) {
	e := tinyEnv(t)
	reports, err := Run(e, "all")
	if err != nil {
		t.Fatalf("Run(all): %v", err)
	}
	if len(reports) < 12 {
		t.Fatalf("got %d reports, want ≥ 12", len(reports))
	}
	seen := map[string]bool{}
	for _, r := range reports {
		if r.ID == "" || r.Title == "" {
			t.Fatalf("report missing metadata: %+v", r)
		}
		seen[r.ID] = true
		out := r.String()
		if !strings.Contains(out, r.ID) {
			t.Fatalf("String() does not include the id:\n%s", out)
		}
	}
	for _, id := range []string{"table1", "table2", "table3", "fig7", "fig8", "fig9", "fig10", "table4", "unit-aggbenefit", "unit-costvar", "lemma1", "lemma2", "ablate"} {
		if !seen[id] {
			t.Fatalf("missing report %s (have %v)", id, seen)
		}
	}
}

func TestRunSingleAndAliases(t *testing.T) {
	e := tinyEnv(t)
	rs, err := Run(e, "table3")
	if err != nil || len(rs) != 1 || rs[0].ID != "table3" {
		t.Fatalf("Run(table3) = %v, %v", rs, err)
	}
	rs, err = Run(e, "fig8")
	if err != nil || len(rs) != 2 {
		t.Fatalf("Run(fig8 alias) = %v, %v", rs, err)
	}
	if _, err := Run(e, "nope"); err == nil {
		t.Fatalf("unknown experiment: expected error")
	}
	ids := IDs()
	if len(ids) < 11 {
		t.Fatalf("IDs = %v", ids)
	}
}

// TestFig9ShapeHolds checks the paper's headline comparison on the tiny
// scale: the aggregate aware schemes achieve strictly more complete hits
// than the no-aggregation baseline.
func TestFig9ShapeHolds(t *testing.T) {
	e := tinyEnv(t)
	sizes := e.CacheSizes()
	bytes := sizes[len(sizes)-1]
	noagg, err := e.RunStream(SystemSpec{Strategy: StratNoAgg, Policy: PolicyBenefit, Bytes: bytes})
	if err != nil {
		t.Fatalf("noagg: %v", err)
	}
	vcmc, err := e.RunStream(SystemSpec{Strategy: StratVCMC, Policy: PolicyTwoLevel, Bytes: bytes, Preload: true})
	if err != nil {
		t.Fatalf("vcmc: %v", err)
	}
	if vcmc.CompleteHits <= noagg.CompleteHits {
		t.Fatalf("VCMC hits %d not above NoAgg hits %d", vcmc.CompleteHits, noagg.CompleteHits)
	}
	// With the largest cache the base table fits, so after preloading the
	// two-level VCMC system answers everything from the cache.
	if vcmc.HitRatio() != 100 {
		t.Fatalf("VCMC hit ratio %.0f%%, want 100%% with the base table cached", vcmc.HitRatio())
	}
}

// TestStreamDeterminism: identical specs produce identical hit counts.
func TestStreamDeterminism(t *testing.T) {
	e := tinyEnv(t)
	spec := SystemSpec{Strategy: StratVCM, Policy: PolicyTwoLevel, Bytes: e.CacheSizes()[0], Preload: true}
	a, err := e.RunStream(spec)
	if err != nil {
		t.Fatalf("a: %v", err)
	}
	b, err := e.RunStream(spec)
	if err != nil {
		t.Fatalf("b: %v", err)
	}
	if a.CompleteHits != b.CompleteHits || a.BudgetMisses != b.BudgetMisses {
		t.Fatalf("stream runs diverged: %+v vs %+v", a, b)
	}
}

func TestTable2LevelsAPBNotation(t *testing.T) {
	cfg := DefaultConfig(apb.ScaleSmall)
	cfg.Latency = backend.LatencyModel{}
	e, err := NewEnv(cfg)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	a, b, err := e.table2Levels()
	if err != nil {
		t.Fatalf("table2Levels: %v", err)
	}
	lat := e.Grid.Lattice()
	if got := lat.LevelTupleString(a); got != "(6,2,3,1,0)" {
		t.Fatalf("level A = %s, want (6,2,3,1,0)", got)
	}
	if got := lat.LevelTupleString(b); got != "(6,2,3,0,0)" {
		t.Fatalf("level B = %s, want (6,2,3,0,0)", got)
	}
}

func TestWriteCSV(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Header: []string{"a", "b"}}
	r.AddRow("1", "2")
	r.AddRow("3", "4")
	var buf strings.Builder
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if got := buf.String(); got != "a,b\n1,2\n3,4\n" {
		t.Fatalf("csv = %q", got)
	}
	// Tableless reports write nothing.
	empty := &Report{ID: "y", Title: "t"}
	buf.Reset()
	if err := empty.WriteCSV(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("tableless csv = %q, %v", buf.String(), err)
	}
}

func TestSizeLabel(t *testing.T) {
	if got := SizeLabel(25 << 20); got != "25.0MB" {
		t.Fatalf("SizeLabel = %q", got)
	}
	if got := SizeLabel(2048); got != "2KB" {
		t.Fatalf("SizeLabel = %q", got)
	}
	if got := SizeLabel(100); got != "100B" {
		t.Fatalf("SizeLabel = %q", got)
	}
}

func TestNewSystemErrors(t *testing.T) {
	e := tinyEnv(t)
	if _, err := e.NewSystem(SystemSpec{Strategy: "bogus", Policy: PolicyBenefit, Bytes: 1000}); err == nil {
		t.Fatalf("bogus strategy: expected error")
	}
	if _, err := e.NewSystem(SystemSpec{Strategy: StratVCM, Policy: "bogus", Bytes: 1000}); err == nil {
		t.Fatalf("bogus policy: expected error")
	}
	if _, err := e.NewSystem(SystemSpec{Strategy: StratVCM, Policy: PolicyBenefit, Bytes: 0}); err == nil {
		t.Fatalf("zero capacity: expected error")
	}
}
