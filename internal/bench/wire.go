package bench

import (
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aggcache/internal/backend"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/obs"
)

// wireJSONFile is the machine-readable artifact Wire writes next to its
// report. CI uploads it so the framing layer's latency trajectory can be
// compared across commits without parsing report text.
const wireJSONFile = "BENCH_6.json"

const (
	wireClients  = 8
	wireRequests = 600
)

// wireMetrics is the BENCH_6.json schema.
type wireMetrics struct {
	Bench     string `json:"bench"`
	Scale     string `json:"scale"`
	GoVersion string `json:"go_version"`
	Procs     int    `json:"gomaxprocs"`
	Clients   int    `json:"clients"`
	Requests  int    `json:"requests"`

	Gob  wireTransportRow `json:"gob"`
	Wire wireTransportRow `json:"wire"`

	// P99Speedup is gob p99 / wire p99 — the headline pipelining win.
	P99Speedup float64 `json:"p99_speedup"`
}

type wireTransportRow struct {
	P50us       float64 `json:"p50_us"`
	P95us       float64 `json:"p95_us"`
	P99us       float64 `json:"p99_us"`
	WallMs      float64 `json:"wall_ms"`
	BytesPerReq float64 `json:"wire_bytes_per_request"`
}

// Wire compares the retired gob transport against the length-prefixed
// binary framing layer under BenchmarkConcurrentStream-style load: many
// workers issuing ComputeChunks round trips over ONE client connection.
//
// The gob baseline reproduces the old protocol faithfully: a strictly
// serial request/response conversation per connection, callers serialized
// under a client-side mutex — so concurrent requests queue head-of-line
// behind each other. The wire transport multiplexes the same connection by
// request id, so all workers' requests are in flight at once and the
// server computes them concurrently. A small slept per-request backend
// latency stands in for real compute, making the head-of-line cost visible
// in p99 rather than lost in scheduler noise. Bytes per request compare
// gob's reflective stream encoding against the flat chunk slabs.
func Wire(e *Env) (*Report, error) {
	// A dedicated engine with a slept connect cost: each request holds the
	// backend for ~1ms of genuine wall time.
	eng, err := backend.NewEngine(e.Grid, e.Table, backend.LatencyModel{
		Connect: time.Millisecond, Sleep: true,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	gb := e.Grid.Lattice().Top()
	nchunks := e.Grid.NumChunks(gb)

	var m wireMetrics
	m.Bench = "wire"
	m.Scale = e.Cfg.Scale.String()
	m.GoVersion = runtime.Version()
	m.Procs = runtime.GOMAXPROCS(0)
	m.Clients = wireClients
	m.Requests = wireRequests

	// --- gob baseline ---
	gsrv, err := newGobServer(eng)
	if err != nil {
		return nil, err
	}
	gcl, err := dialGob(gsrv.addr)
	if err != nil {
		gsrv.Close()
		return nil, err
	}
	gobLat, gobWall, err := replayWire(func(ctx context.Context, gb lattice.ID, nums []int) error {
		_, err := gcl.ComputeChunks(gb, nums)
		return err
	}, gb, nchunks)
	gobBytes := float64(gcl.bytesIn.Load()+gcl.bytesOut.Load()) / wireRequests
	gcl.Close()
	gsrv.Close()
	if err != nil {
		return nil, err
	}
	m.Gob = wireTransportRow{
		P50us: percentileUS(gobLat, 0.50), P95us: percentileUS(gobLat, 0.95),
		P99us: percentileUS(gobLat, 0.99), WallMs: float64(gobWall) / float64(time.Millisecond),
		BytesPerReq: gobBytes,
	}

	// --- wire framing ---
	wsrv := backend.NewServer(eng)
	waddr, err := wsrv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer wsrv.Close()
	remote, err := backend.Dial(waddr)
	if err != nil {
		return nil, err
	}
	defer remote.Close()
	rmet := obs.NewRemoteMetrics(obs.NewRegistry())
	remote.SetMetrics(rmet)
	wireLat, wireWall, err := replayWire(func(ctx context.Context, gb lattice.ID, nums []int) error {
		_, _, err := remote.ComputeChunks(ctx, gb, nums)
		return err
	}, gb, nchunks)
	if err != nil {
		return nil, err
	}
	wireBytes := float64(rmet.WireBytesIn.Value()+rmet.WireBytesOut.Value()) / wireRequests
	m.Wire = wireTransportRow{
		P50us: percentileUS(wireLat, 0.50), P95us: percentileUS(wireLat, 0.95),
		P99us: percentileUS(wireLat, 0.99), WallMs: float64(wireWall) / float64(time.Millisecond),
		BytesPerReq: wireBytes,
	}
	m.P99Speedup = m.Gob.P99us / m.Wire.P99us

	buf, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(wireJSONFile, append(buf, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("bench: wire: %w", err)
	}

	r := &Report{
		ID: "wire",
		Title: fmt.Sprintf("Wire transport: gob (serial) vs binary framing (pipelined), %d clients × one connection, %d requests",
			wireClients, wireRequests),
		Header: []string{"transport", "p50 µs", "p95 µs", "p99 µs", "wall ms", "bytes/req"},
	}
	row := func(name string, t wireTransportRow) {
		r.AddRow(name, fmt.Sprintf("%.0f", t.P50us), fmt.Sprintf("%.0f", t.P95us),
			fmt.Sprintf("%.0f", t.P99us), fmt.Sprintf("%.1f", t.WallMs),
			fmt.Sprintf("%.0f", t.BytesPerReq))
	}
	row("gob", m.Gob)
	row("wire", m.Wire)
	r.Addf("both transports answer the same ComputeChunks workload from one engine with a slept 1ms per-request cost")
	r.Addf("p99 speedup from request-id pipelining: %.1f×", m.P99Speedup)
	r.Addf("machine-readable copy written to %s", wireJSONFile)
	return r, nil
}

// replayWire drives wireRequests single-chunk requests through call from
// wireClients workers and returns each request's latency plus total wall
// time.
func replayWire(call func(context.Context, lattice.ID, []int) error, gb lattice.ID, nchunks int) ([]time.Duration, time.Duration, error) {
	lat := make([]time.Duration, wireRequests)
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, wireClients)
	start := time.Now()
	for w := 0; w < wireClients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= wireRequests {
					return
				}
				t0 := time.Now()
				if err := call(context.Background(), gb, []int{i % nchunks}); err != nil {
					errs <- err
					return
				}
				lat[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return nil, 0, err
	}
	return lat, wall, nil
}

func percentileUS(lat []time.Duration, p float64) float64 {
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return float64(s[i]) / float64(time.Microsecond)
}

// --- self-contained gob baseline transport ---
//
// This is the protocol the repo shipped before the wire package: one gob
// encoder/decoder pair per connection, strictly one request in flight at a
// time. It lives here (not in internal/backend) purely as the bench
// baseline.

type gobWireRequest struct {
	GB   lattice.ID
	Nums []int
}

type gobWireResponse struct {
	Chunks []*chunk.Chunk
	Err    string
}

type gobServer struct {
	ln   net.Listener
	addr string
	wg   sync.WaitGroup
}

func newGobServer(eng *backend.Engine) (*gobServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &gobServer{ln: ln, addr: ln.Addr().String()}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				enc := gob.NewEncoder(conn)
				for {
					var req gobWireRequest
					if err := dec.Decode(&req); err != nil {
						return
					}
					var resp gobWireResponse
					chunks, _, err := eng.ComputeChunks(context.Background(), req.GB, req.Nums)
					if err != nil {
						resp.Err = err.Error()
					} else {
						resp.Chunks = chunks
					}
					if err := enc.Encode(&resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	return s, nil
}

func (s *gobServer) Close() {
	s.ln.Close()
	s.wg.Wait()
}

// countedConn tallies bytes moved over the baseline connection.
type countedConn struct {
	net.Conn
	in, out *atomic.Int64
}

func (c countedConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c countedConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

type gobClient struct {
	mu       sync.Mutex
	conn     net.Conn
	enc      *gob.Encoder
	dec      *gob.Decoder
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
}

func dialGob(addr string) (*gobClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &gobClient{conn: conn}
	cc := countedConn{Conn: conn, in: &c.bytesIn, out: &c.bytesOut}
	c.enc = gob.NewEncoder(cc)
	c.dec = gob.NewDecoder(cc)
	return c, nil
}

// ComputeChunks performs one serial exchange; concurrent callers queue on
// the mutex exactly as they did on the retired protocol.
func (c *gobClient) ComputeChunks(gb lattice.ID, nums []int) ([]*chunk.Chunk, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(&gobWireRequest{GB: gb, Nums: nums}); err != nil {
		return nil, err
	}
	var resp gobWireResponse
	if err := c.dec.Decode(&resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("gob remote: %s", resp.Err)
	}
	return resp.Chunks, nil
}

func (c *gobClient) Close() { c.conn.Close() }
