package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"aggcache/internal/chunk"
)

// kernelJSONFile is the machine-readable artifact Kernel writes next to its
// report. CI uploads it so the aggregation kernel's perf trajectory can be
// compared across commits without parsing report text.
const kernelJSONFile = "BENCH_4.json"

// kernelMetrics is the BENCH_4.json schema. Durations are nanoseconds per
// unit of work so numbers stay comparable across scales and iteration counts.
type kernelMetrics struct {
	Bench     string `json:"bench"`
	Scale     string `json:"scale"`
	GoVersion string `json:"go_version"`
	Procs     int    `json:"gomaxprocs"`
	RollUp    struct {
		Chunks      int     `json:"chunks"`
		Cells       int64   `json:"cells"`
		NsPerPass   float64 `json:"ns_per_pass"`
		NsPerCell   float64 `json:"ns_per_cell"`
		CellsPerSec float64 `json:"cells_per_sec"`
	} `json:"rollup"`
	Slice struct {
		NsPerChunkHalf float64 `json:"ns_per_chunk_half"`
		NsPerChunkFull float64 `json:"ns_per_chunk_full"`
	} `json:"slice"`
	Stream struct {
		Queries   int     `json:"queries"`
		HitPct    float64 `json:"hit_pct"`
		AvgMs     float64 `json:"avg_ms"`
		AggMsHits float64 `json:"agg_ms_hits"`
		WallMs    float64 `json:"wall_ms"`
	} `json:"stream"`
}

// kernelBest runs f in timed passes of reps iterations and returns the best
// per-iteration duration — the minimum is the standard noise-robust estimator
// since scheduler jitter and GC only ever add time.
func kernelBest(passes, reps int, f func() error) (time.Duration, error) {
	var best time.Duration
	for p := 0; p < passes; p++ {
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		if el := time.Since(start); best == 0 || el < best {
			best = el
		}
	}
	return best / time.Duration(reps), nil
}

// Kernel measures the aggregation kernel both in isolation (the roll-up and
// slice hot paths over every base chunk) and end to end (an aggregation-heavy
// preloaded VCMC stream where nearly every answer is computed by rolling up
// cached chunks). It writes kernelJSONFile to the working directory.
func Kernel(e *Env) (*Report, error) {
	lat := e.Grid.Lattice()
	base := lat.Base()
	top := lat.Top()
	chunks, _, err := e.Backend.ComputeGroupBy(base)
	if err != nil {
		return nil, err
	}
	var cells int64
	for _, c := range chunks {
		cells += int64(c.Cells())
	}
	if cells == 0 {
		return nil, fmt.Errorf("bench: kernel: empty base group-by")
	}

	// Roll-up: every base chunk into the top chunk through the pooled
	// accumulator cycle — exactly what the engine runs per intermediate node.
	const passes = 5
	reps := int(200_000/cells) + 1
	rollPer, err := kernelBest(passes, reps, func() error {
		cm := e.Grid.GetCellMap(top, 0)
		for _, c := range chunks {
			if _, err := e.Grid.RollUpInto(cm, top, 0, c); err != nil {
				return err
			}
		}
		out := cm.BuildInto(top, 0, chunk.GetScratchChunk())
		chunk.PutScratchChunk(out)
		chunk.PutCellMap(cm)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Slice: trim every base chunk to the lower half of each dimension
	// (copy path) and to its full member range (zero-copy fast path).
	baseLv := lat.Level(base)
	nd := lat.NumDims()
	half := make([][]chunk.Range, len(chunks))
	full := make([][]chunk.Range, len(chunks))
	coords := make([]int32, nd)
	for num := range chunks {
		e.Grid.Coords(base, num, coords)
		h := make([]chunk.Range, nd)
		f := make([]chunk.Range, nd)
		for d := 0; d < nd; d++ {
			mr := e.Grid.MemberRange(d, baseLv[d], coords[d])
			f[d] = mr
			h[d] = chunk.Range{Lo: mr.Lo, Hi: mr.Lo + int32(mr.Len()+1)/2}
		}
		half[num], full[num] = h, f
	}
	sliceBench := func(ranges [][]chunk.Range) (time.Duration, error) {
		per, err := kernelBest(passes, reps, func() error {
			for num, c := range chunks {
				e.Grid.Slice(c, ranges[num])
			}
			return nil
		})
		return per / time.Duration(len(chunks)), err
	}
	halfPer, err := sliceBench(half)
	if err != nil {
		return nil, err
	}
	fullPer, err := sliceBench(full)
	if err != nil {
		return nil, err
	}

	// End to end: a preloaded VCMC stream with the cache sized to hold the
	// base table, so queries are answered by aggregating cached chunks — the
	// workload the kernel optimizations target.
	sizes := e.CacheSizes()
	bytes := sizes[len(sizes)-1]
	res, err := e.RunStream(SystemSpec{Strategy: StratVCMC, Policy: PolicyTwoLevel, Bytes: bytes, Preload: true})
	if err != nil {
		return nil, err
	}

	var m kernelMetrics
	m.Bench = "kernel"
	m.Scale = e.Cfg.Scale.String()
	m.GoVersion = runtime.Version()
	m.Procs = runtime.GOMAXPROCS(0)
	m.RollUp.Chunks = len(chunks)
	m.RollUp.Cells = cells
	m.RollUp.NsPerPass = float64(rollPer)
	m.RollUp.NsPerCell = float64(rollPer) / float64(cells)
	m.RollUp.CellsPerSec = float64(cells) / rollPer.Seconds()
	m.Slice.NsPerChunkHalf = float64(halfPer)
	m.Slice.NsPerChunkFull = float64(fullPer)
	m.Stream.Queries = res.Queries
	m.Stream.HitPct = res.HitRatio()
	m.Stream.AvgMs = float64(res.AvgAll()) / float64(time.Millisecond)
	m.Stream.AggMsHits = float64(res.AvgHits().Aggregate) / float64(time.Millisecond)
	m.Stream.WallMs = float64(res.Elapsed) / float64(time.Millisecond)
	buf, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(kernelJSONFile, append(buf, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("bench: kernel: %w", err)
	}

	r := &Report{ID: "kernel", Title: "Aggregation kernel: roll-up and slice hot paths, plus an aggregation-heavy stream",
		Header: []string{"metric", "value"}}
	r.AddRow("roll-up pass (all base chunks -> top)", fmt.Sprintf("%.3f ms", float64(rollPer)/float64(time.Millisecond)))
	r.AddRow("roll-up throughput", fmt.Sprintf("%.1f Mcells/s", m.RollUp.CellsPerSec/1e6))
	r.AddRow("slice per chunk (half region)", fmt.Sprintf("%d ns", halfPer.Nanoseconds()))
	r.AddRow("slice per chunk (full region)", fmt.Sprintf("%d ns", fullPer.Nanoseconds()))
	r.AddRow("stream hit ratio", fmt.Sprintf("%.0f%%", m.Stream.HitPct))
	r.AddRow("stream avg / wall", fmt.Sprintf("%.3f ms / %.1f ms", m.Stream.AvgMs, m.Stream.WallMs))
	r.Addf("%d base chunks, %d cells; VCMC/two-level preloaded, cache %s, %d queries", len(chunks), cells, SizeLabel(bytes), res.Queries)
	r.Addf("machine-readable copy written to %s", kernelJSONFile)
	return r, nil
}
