package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"aggcache/internal/backend"
	"aggcache/internal/core"
	"aggcache/internal/workload"
)

// concurrencyClients is the client-count axis of the throughput sweep.
var concurrencyClients = []int{1, 2, 4, 8}

// ConcurrencySweep measures middle-tier throughput scaling: queries/sec vs
// concurrent client count. The backend actually sleeps its simulated latency
// (the paper's testbed issued SQL over a network), so misses spend real wall
// time off-CPU. Each row rebuilds the system cold, so every client count
// faces the same workload; throughput rises with clients because backend
// round trips now run outside the engine's cache lock and overlap, where the
// old globally-serialized engine was flat.
func ConcurrencySweep(e *Env) (*Report, error) {
	m := e.Cfg.Latency
	m.Sleep = true
	be, err := backend.NewEngine(e.Grid, e.Table, m)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(e.Grid, workload.DefaultMix, e.Cfg.MaxQueryWidth, e.Cfg.Seed+2000)
	if err != nil {
		return nil, err
	}
	queries, _ := gen.Stream(e.Cfg.Queries)
	bytes := e.BaseBytes() * 2 / 3

	r := &Report{
		ID: "concurrency",
		Title: fmt.Sprintf("Concurrent throughput, cold cache, slept backend latency (VCMC/two-level, cache %s, GOMAXPROCS=%d)",
			SizeLabel(bytes), runtime.GOMAXPROCS(0)),
		Header: []string{"clients", "queries", "wall ms", "queries/sec", "speedup", "backend misses"},
	}
	var base float64
	for _, clients := range concurrencyClients {
		sys, err := e.NewSystem(SystemSpec{
			Strategy: StratVCMC, Policy: PolicyTwoLevel, Bytes: bytes, Backend: be,
		})
		if err != nil {
			return nil, err
		}
		elapsed, err := runClients(sys, queries, clients)
		if err != nil {
			return nil, err
		}
		st := sys.Engine.Stats()
		qps := float64(st.Queries) / elapsed.Seconds()
		if base == 0 {
			base = qps
		}
		r.AddRow(fmt.Sprintf("%d", clients), fmt.Sprintf("%d", st.Queries),
			msString(elapsed), fmt.Sprintf("%.0f", qps),
			fmt.Sprintf("%.2f", qps/base), fmt.Sprintf("%d", st.BackendQueries))
	}
	r.Addf("each client replays the %d-query stream from its own offset; identical in-flight fetches are deduplicated, so the backend-miss count can drop as clients grow", len(queries))
	return r, nil
}

// runClients replays the stream from n concurrent clients, each starting at
// a different offset so they do not march in lockstep, and returns the wall
// time for all n·len(queries) queries.
func runClients(sys *System, queries []core.Query, n int) (time.Duration, error) {
	errs := make(chan error, n)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			off := c * len(queries) / n
			for i := range queries {
				q := queries[(off+i)%len(queries)]
				if _, err := sys.Engine.Execute(context.Background(), q); err != nil {
					errs <- fmt.Errorf("bench: concurrency client %d: %w", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, err
	}
	return elapsed, nil
}
