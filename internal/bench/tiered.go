package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"aggcache/internal/core"
	"aggcache/internal/workload"
)

// tieredJSONFile is the machine-readable artifact Tiered writes next to its
// report. CI uploads it and gates the tiered hit rate, the qps penalty and
// the warm-restart recovery on it.
const tieredJSONFile = "BENCH_10.json"

// tieredRow is one mode of BENCH_10.json.
type tieredRow struct {
	Mode          string  `json:"mode"`
	Queries       int64   `json:"queries"`
	SimMs         float64 `json:"sim_ms"`
	QPS           float64 `json:"qps"`
	HitRate       float64 `json:"complete_hit_rate"`
	BackendTuples int64   `json:"backend_tuples"`
	ColdHits      int64   `json:"cold_hits"`
	Promotes      int64   `json:"promotes"`
	Demotes       int64   `json:"demotes"`
}

// tieredMetrics is the BENCH_10.json schema.
type tieredMetrics struct {
	Bench     string      `json:"bench"`
	Scale     string      `json:"scale"`
	GoVersion string      `json:"go_version"`
	Procs     int         `json:"gomaxprocs"`
	Rows      []tieredRow `json:"rows"`
	// RAMHit and TieredHit are the steady-state complete-hit rates at equal
	// hot-tier RAM; the cold tier must not lose to the flat store.
	RAMHit    float64 `json:"ram_hit"`
	TieredHit float64 `json:"tiered_hit"`
	// QPSRatio is qps(tiered)/qps(ram) — the cost of codec work and promote
	// traffic on the same stream. QPS is queries over simulated response
	// time, so the ratio is deterministic for a given seed.
	QPSRatio float64 `json:"qps_ratio"`
	// CompressionRatio is raw bytes over encoded bytes across the cold
	// tier's final contents.
	CompressionRatio float64 `json:"compression_ratio"`
	// PreKillHit is the measured replay's hit rate right before the
	// simulated kill; RestartHit is the same replay on a fresh process
	// warm-restarted from the snapshot; Recovery is their ratio.
	PreKillHit float64 `json:"prekill_hit"`
	RestartHit float64 `json:"restart_hit"`
	Recovery   float64 `json:"warm_restart_recovery"`
	// SnapshotChunks is the record count of the kill/restart snapshot.
	SnapshotChunks int `json:"snapshot_chunks"`
}

// tieredDelta measures one stream segment as a stats diff.
type tieredDelta struct {
	queries, hits, backendTuples int64
	sim                          time.Duration
}

func (d tieredDelta) hitRate() float64 {
	if d.queries == 0 {
		return 0
	}
	return float64(d.hits) / float64(d.queries)
}

func (d tieredDelta) qps() float64 {
	if d.sim <= 0 {
		return 0
	}
	return float64(d.queries) / d.sim.Seconds()
}

// runSegment executes queries and returns the segment's stats delta.
func runSegment(sys *System, queries []core.Query) (tieredDelta, error) {
	before := sys.Engine.Stats()
	for _, q := range queries {
		if _, err := sys.Engine.Execute(context.Background(), q); err != nil {
			return tieredDelta{}, err
		}
	}
	after := sys.Engine.Stats()
	return tieredDelta{
		queries:       after.Queries - before.Queries,
		hits:          after.CompleteHits - before.CompleteHits,
		backendTuples: after.BackendTuples - before.BackendTuples,
		sim:           after.Breakdown.Total() - before.Breakdown.Total(),
	}, nil
}

// Tiered measures the tiered store against the flat store at equal hot-tier
// RAM: the hot tier gets well under the working set, and the tiered mode
// adds a compressed cold tier at 4× the hot bytes. Both modes run the
// identical seeded stream twice — the first pass fills the cache past its
// capacity, the measured second pass revisits everything (a rerun dashboard)
// — so the measured delta is exactly what demote-instead-of-drop plus
// promote-on-hit buys over dropping victims. The run then simulates a kill:
// the tiered cache is snapshotted, the process state discarded, and a fresh
// system warm-restarts from the snapshot file; the same replay on both sides
// yields the warm-restart recovery ratio. Writes BENCH_10.json for the CI
// gate.
func Tiered(e *Env) (*Report, error) {
	hot := int64(0.35 * float64(e.BaseBytes()))
	cold := 4 * hot

	var m tieredMetrics
	m.Bench = "tiered"
	m.Scale = e.Cfg.Scale.String()
	m.GoVersion = runtime.Version()
	m.Procs = runtime.GOMAXPROCS(0)

	r := &Report{
		ID: "tiered",
		Title: fmt.Sprintf("Tiered storage: hot %s vs hot %s + cold %s compressed (%d queries x2)",
			SizeLabel(hot), SizeLabel(hot), SizeLabel(cold), e.Cfg.Queries),
		Header: []string{"mode", "queries", "sim ms", "queries/s (sim)", "hit rate", "backend tuples", "cold hits", "promotes", "demotes"},
	}

	gen, err := workload.NewGenerator(e.Grid, workload.Mix{Proximity: 0.6, Random: 0.4}, e.Cfg.MaxQueryWidth, e.Cfg.Seed+10_000)
	if err != nil {
		return nil, err
	}
	stream, _ := gen.Stream(e.Cfg.Queries)

	modes := []struct {
		name string
		spec SystemSpec
	}{
		{"ram", SystemSpec{Strategy: StratVCMC, Policy: PolicyTwoLevelPromote, Bytes: hot}},
		{"tiered", SystemSpec{Strategy: StratVCMC, Policy: PolicyTwoLevelPromote, Bytes: hot, ColdBytes: cold}},
	}

	// Throwaway replay so no measured mode pays the process-wide chunk-pool
	// warmup.
	warmSys, err := e.NewSystem(modes[0].spec)
	if err != nil {
		return nil, err
	}
	if _, err := runSegment(warmSys, stream[:min(len(stream), 50)]); err != nil {
		return nil, err
	}

	var tieredSys *System
	var rates [2]float64
	for i, mode := range modes {
		sys, err := e.NewSystem(mode.spec)
		if err != nil {
			return nil, err
		}
		if _, err := runSegment(sys, stream); err != nil { // fill pass
			return nil, err
		}
		replay, err := runSegment(sys, stream) // measured pass
		if err != nil {
			return nil, err
		}
		ts, _ := sys.Engine.TierStats()
		rates[i] = replay.qps()
		row := tieredRow{
			Mode: mode.name, Queries: replay.queries,
			SimMs: float64(replay.sim) / float64(time.Millisecond), QPS: replay.qps(),
			HitRate: replay.hitRate(), BackendTuples: replay.backendTuples,
			ColdHits: ts.ColdHits, Promotes: ts.Promotes, Demotes: ts.Demotes,
		}
		m.Rows = append(m.Rows, row)
		r.AddRow(mode.name, fmt.Sprintf("%d", replay.queries), msString(replay.sim),
			fmt.Sprintf("%.0f", replay.qps()), fmt.Sprintf("%.2f", replay.hitRate()),
			fmt.Sprintf("%d", replay.backendTuples), fmt.Sprintf("%d", ts.ColdHits),
			fmt.Sprintf("%d", ts.Promotes), fmt.Sprintf("%d", ts.Demotes))
		switch mode.name {
		case "ram":
			m.RAMHit = replay.hitRate()
		case "tiered":
			m.TieredHit = replay.hitRate()
			m.PreKillHit = replay.hitRate()
			tieredSys = sys
			if ts.ColdUsed > 0 {
				m.CompressionRatio = float64(ts.ColdRawBytes) / float64(ts.ColdUsed)
			}
		}
	}
	m.QPSRatio = rates[1] / rates[0]

	// Kill/restart: snapshot the tiered cache, throw the system away, and
	// warm-restart a fresh one from the file. The snapshot spans both tiers,
	// so the restarted hot tier refills benefit-first and the overflow
	// demotes back to cold through the normal admission path.
	dir, err := os.MkdirTemp("", "aggcache-tiered-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "cache.snap")
	n, err := tieredSys.Engine.SaveCacheFile(snapPath)
	if err != nil {
		return nil, err
	}
	m.SnapshotChunks = n
	restart, err := e.NewSystem(modes[1].spec)
	if err != nil {
		return nil, err
	}
	if _, err := restart.Engine.LoadCacheFile(snapPath); err != nil {
		return nil, err
	}
	restartDelta, err := runSegment(restart, stream)
	if err != nil {
		return nil, err
	}
	m.RestartHit = restartDelta.hitRate()
	if m.PreKillHit > 0 {
		m.Recovery = m.RestartHit / m.PreKillHit
	}

	buf, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(tieredJSONFile, append(buf, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("bench: tiered: %w", err)
	}

	r.Addf("both modes replay the identical seeded stream; tiered adds a %s compressed cold tier (%.1fx compression at end of run)",
		SizeLabel(cold), m.CompressionRatio)
	r.Addf("hit rate %.2f (ram) vs %.2f (tiered), qps ratio %.2f", m.RAMHit, m.TieredHit, m.QPSRatio)
	r.Addf("kill/restart: %d chunks snapshotted; replay hit rate %.2f pre-kill vs %.2f after warm restart (recovery %.2f)",
		m.SnapshotChunks, m.PreKillHit, m.RestartHit, m.Recovery)
	r.Addf("machine-readable copy written to %s", tieredJSONFile)
	return r, nil
}
