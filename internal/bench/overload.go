package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aggcache/internal/backend"
	"aggcache/internal/mtier"
	"aggcache/internal/wire"
	"aggcache/internal/workload"
)

// overloadJSONFile is the machine-readable artifact Overload writes next to
// its report. CI uploads it and gates on the goodput ratio, so a regression
// that makes the server collapse under overload fails the build instead of
// shipping.
const overloadJSONFile = "BENCH_8.json"

// Admission configuration for the sweep server: few slots over a backend
// that really sleeps, so capacity is small, predictable, and cheap to
// exceed from a single process.
const (
	overloadSlots          = 4
	overloadQueue          = 4
	overloadMaxWait        = 20 * time.Millisecond
	overloadConnect        = 10 * time.Millisecond
	overloadWorkers        = 96
	overloadWorkersPerConn = 8
	overloadWarm           = 200 * time.Millisecond
	overloadMeasure        = 1200 * time.Millisecond
)

// overloadMultiples is the offered-load sweep, as multiples of the measured
// closed-loop capacity. The interesting rows are past 1×: a server without
// admission control sees goodput collapse there; a shedding server holds it
// near capacity.
var overloadMultiples = []float64{0.5, 1, 2, 4}

// Fairness stage: the polite tenant is paced inside the quota, the flood
// is not, and the quota is what keeps the flood from dragging the polite
// tenant's hit rate down.
const (
	overloadTenantQPS   = 50
	overloadPoliteRate  = 40 // paced offered qps, inside the quota
	overloadFairMeasure = 1500 * time.Millisecond
)

// overloadMetrics is the BENCH_8.json schema.
type overloadMetrics struct {
	Bench     string `json:"bench"`
	Scale     string `json:"scale"`
	GoVersion string `json:"go_version"`
	Procs     int    `json:"gomaxprocs"`
	// Admission configuration of the server under test.
	MaxConcurrent int     `json:"max_concurrent"`
	MaxQueue      int     `json:"max_queue"`
	MaxWaitMs     float64 `json:"max_wait_ms"`
	// CapacityQPS is the closed-loop completion rate with exactly
	// MaxConcurrent clients — the denominator for the sweep's multiples.
	CapacityQPS float64       `json:"capacity_qps"`
	Rows        []overloadRow `json:"rows"`
	// GoodputRatio2x is goodput at 2× offered load over goodput at 1× — the
	// collapse detector CI gates on (≥ 0.8 means shedding works).
	GoodputRatio2x float64 `json:"goodput_ratio_2x"`
	// P99BoundMs is 3× the uncontended (0.5× offered load) p99 — the
	// acceptance bound; P99Bounded reports the 4× row stayed inside it:
	// shedding keeps the tail of what IS admitted near its uncontended
	// shape instead of letting the queue stretch it without limit.
	P99BoundMs float64          `json:"p99_bound_ms"`
	P99Bounded bool             `json:"p99_bounded"`
	Fairness   overloadFairness `json:"fairness"`
}

type overloadRow struct {
	Multiple   float64 `json:"multiple"`
	TargetQPS  float64 `json:"target_qps"`
	OfferedQPS float64 `json:"offered_qps"`
	Offered    int64   `json:"offered"`
	Admitted   int64   `json:"admitted"`
	GoodputQPS float64 `json:"goodput_qps"`
	Sheds      int64   `json:"sheds"`
	// P50/P99 are client-observed latencies of admitted queries only; sheds
	// answer in microseconds and would flatter the numbers.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// overloadFairness records the noisy-neighbor demonstration: the polite
// tenant's hit rate alone vs with an unpaced scan flood sharing the server
// under per-tenant quotas.
type overloadFairness struct {
	TenantQPS          float64 `json:"tenant_qps"`
	PoliteHitAlone     float64 `json:"polite_hit_alone"`
	PoliteHitWithFlood float64 `json:"polite_hit_with_flood"`
	HitDropPoints      float64 `json:"hit_drop_points"`
	FloodOffered       int64   `json:"flood_offered"`
	FloodAdmitted      int64   `json:"flood_admitted"`
	FloodQuotaSheds    int64   `json:"flood_quota_sheds"`
}

// overloadServer builds a fresh system (own cache) over a really-sleeping
// backend and serves it with the given admission config.
func overloadServer(e *Env, be backend.Backend, bytes int64, cfg mtier.AdmissionConfig) (*mtier.Server, string, error) {
	sys, err := e.NewSystem(SystemSpec{
		Strategy: StratVCMC, Policy: PolicyTwoLevel,
		Bytes: bytes, Backend: be,
	})
	if err != nil {
		return nil, "", err
	}
	srv := mtier.NewServer(sys.Engine)
	srv.SetAdmission(cfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return srv, addr, nil
}

// overloadClients opens one connection per overloadWorkersPerConn workers so
// no connection's in-flight count brushes the per-connection wire cap — the
// experiment measures the admission queue, not wire backpressure.
func overloadClients(addr, tenant string, workers int) ([]*mtier.Client, error) {
	n := (workers + overloadWorkersPerConn - 1) / overloadWorkersPerConn
	clients := make([]*mtier.Client, 0, n)
	for i := 0; i < n; i++ {
		cl, err := mtier.Dial(addr)
		if err != nil {
			for _, c := range clients {
				c.Close()
			}
			return nil, err
		}
		if tenant != "" {
			cl.SetTenant(tenant)
		}
		clients = append(clients, cl)
	}
	return clients, nil
}

func closeClients(clients []*mtier.Client) {
	for _, c := range clients {
		c.Close()
	}
}

// overloadCounts is one worker pool's tally over a measured window.
type overloadCounts struct {
	offered, ok, sheds, hits atomic.Int64
	quota, other             atomic.Int64

	mu   sync.Mutex
	lats []time.Duration
}

func (c *overloadCounts) observe(d time.Duration) {
	c.mu.Lock()
	c.lats = append(c.lats, d)
	c.mu.Unlock()
}

func (c *overloadCounts) quantile(q float64) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.lats) == 0 {
		return 0
	}
	sort.Slice(c.lats, func(i, j int) bool { return c.lats[i] < c.lats[j] })
	i := int(q * float64(len(c.lats)-1))
	return c.lats[i]
}

// overloadIssue sends one query and classifies the outcome. It returns an
// error only for failures that are neither success nor an in-band shed —
// under overload those are collapse, and the experiment aborts on them.
func overloadIssue(cl *mtier.Client, src string, measure bool, c *overloadCounts) error {
	start := time.Now()
	resp, err := cl.Query(src)
	if !measure {
		if err != nil {
			if _, ok := wire.AsBusy(err); ok {
				return nil
			}
			return err
		}
		return nil
	}
	c.offered.Add(1)
	if err == nil {
		c.ok.Add(1)
		c.observe(time.Since(start))
		if resp.CompleteHit {
			c.hits.Add(1)
		}
		return nil
	}
	be, isBusy := wire.AsBusy(err)
	if !isBusy {
		c.other.Add(1)
		return fmt.Errorf("bench: overload: unclassified error under load: %w", err)
	}
	if !backend.IsTransient(err) {
		return fmt.Errorf("bench: overload: busy shed not transient: %w", err)
	}
	c.sheds.Add(1)
	if be.Reason == "quota" {
		c.quota.Add(1)
	}
	return nil
}

// Overload measures graceful load shedding: a small-capacity server (few
// execution slots over a backend whose latency is genuinely slept) is swept
// with offered load from half to four times its measured closed-loop
// capacity, using the scan-flood stream so every admitted query really
// costs a backend trip. The contract under test: goodput stays near
// capacity past saturation instead of collapsing (the excess is shed with
// in-band Busy replies), the p99 of admitted queries stays bounded by the
// queue-wait cap, and — in a second stage — per-tenant quotas keep an
// unpaced scan flood from dragging a polite tenant's hit rate down.
func Overload(e *Env) (*Report, error) {
	be, err := backend.NewEngine(e.Grid, e.Table, backend.LatencyModel{
		Connect: overloadConnect, PerTuple: 200 * time.Nanosecond, Sleep: true,
	})
	if err != nil {
		return nil, err
	}
	defer be.Close()

	var m overloadMetrics
	m.Bench = "overload"
	m.Scale = e.Cfg.Scale.String()
	m.GoVersion = runtime.Version()
	m.Procs = runtime.GOMAXPROCS(0)
	m.MaxConcurrent = overloadSlots
	m.MaxQueue = overloadQueue
	m.MaxWaitMs = float64(overloadMaxWait) / float64(time.Millisecond)

	r := &Report{
		ID: "overload",
		Title: fmt.Sprintf("Admission control under overload (%d slots, queue %d, max wait %v, backend connect %v slept)",
			overloadSlots, overloadQueue, overloadMaxWait, overloadConnect),
		Header: []string{"offered ×cap", "offered qps", "goodput qps", "admitted", "sheds", "p50 ms", "p99 ms"},
	}

	srv, addr, err := overloadServer(e, be, e.BaseBytes()/4, mtier.AdmissionConfig{
		MaxConcurrent: overloadSlots, MaxQueue: overloadQueue, MaxWait: overloadMaxWait,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	// Stage 1: capacity. Exactly MaxConcurrent closed-loop clients keep
	// every slot busy with zero queueing — the completion rate is the
	// service capacity the sweep's multiples are relative to.
	capQPS, err := overloadCapacity(e, addr)
	if err != nil {
		return nil, err
	}
	m.CapacityQPS = capQPS
	r.Addf("closed-loop capacity with %d clients: %.0f queries/sec", overloadSlots, capQPS)

	// Stage 2: the offered-load sweep.
	for _, mult := range overloadMultiples {
		row, err := overloadSweepPoint(e, addr, mult, capQPS)
		if err != nil {
			return nil, err
		}
		m.Rows = append(m.Rows, row)
		r.AddRow(fmt.Sprintf("%.1f×", mult), fmt.Sprintf("%.0f", row.OfferedQPS),
			fmt.Sprintf("%.0f", row.GoodputQPS), fmt.Sprintf("%d", row.Admitted),
			fmt.Sprintf("%d", row.Sheds), fmt.Sprintf("%.1f", row.P50Ms), fmt.Sprintf("%.1f", row.P99Ms))
	}

	var at1x, at2x float64
	for _, row := range m.Rows {
		if row.Multiple == 1 {
			at1x = row.GoodputQPS
		}
		if row.Multiple == 2 {
			at2x = row.GoodputQPS
		}
	}
	if at1x > 0 {
		m.GoodputRatio2x = at2x / at1x
	}
	var p99Base, p99Peak float64
	for _, row := range m.Rows {
		if row.Multiple == overloadMultiples[0] {
			p99Base = row.P99Ms
		}
		if row.Multiple == overloadMultiples[len(overloadMultiples)-1] {
			p99Peak = row.P99Ms
		}
	}
	m.P99BoundMs = 3 * p99Base
	m.P99Bounded = p99Peak <= m.P99BoundMs

	// Stage 3: tenant fairness under quotas, on a fresh server and cache.
	fair, err := overloadFairnessStage(e, be)
	if err != nil {
		return nil, err
	}
	m.Fairness = fair

	buf, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(overloadJSONFile, append(buf, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("bench: overload: %w", err)
	}

	r.Addf("goodput at 2× offered load is %.0f%% of goodput at 1× (collapse gate: ≥ 80%%)", m.GoodputRatio2x*100)
	r.Addf("p99 of admitted queries at 4× load within 3× the uncontended p99 (%.1fms bound): %v", m.P99BoundMs, m.P99Bounded)
	r.Addf("fairness: polite tenant hit rate %.1f%% alone, %.1f%% beside an unpaced scan flood (%d quota sheds) — drop %.1f points",
		fair.PoliteHitAlone*100, fair.PoliteHitWithFlood*100, fair.FloodQuotaSheds, fair.HitDropPoints)
	r.Addf("machine-readable copy written to %s", overloadJSONFile)
	return r, nil
}

// overloadCapacity measures the closed-loop completion rate with exactly
// one client per execution slot.
func overloadCapacity(e *Env, addr string) (float64, error) {
	clients, err := overloadClients(addr, "", overloadSlots)
	if err != nil {
		return 0, err
	}
	defer closeClients(clients)

	var c overloadCounts
	var firstErr atomic.Value
	run := func(measure bool, dur time.Duration) {
		end := time.Now().Add(dur)
		var wg sync.WaitGroup
		for w := 0; w < overloadSlots; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				src, err := workload.NewScanFlood(e.Grid, 2, e.Cfg.Seed+int64(8000+w))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				cl := clients[w/overloadWorkersPerConn]
				for time.Now().Before(end) {
					q := workload.FormatQuery(e.Grid, src.Next())
					if err := overloadIssue(cl, q, measure, &c); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}
	run(false, overloadWarm)
	start := time.Now()
	run(true, overloadMeasure)
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, err
	}
	if c.ok.Load() == 0 {
		return 0, fmt.Errorf("bench: overload: capacity stage completed nothing")
	}
	return float64(c.ok.Load()) / elapsed.Seconds(), nil
}

// overloadSweepPoint offers mult × capacity for the measurement window and
// tallies what came back. Workers pace on a fixed schedule and catch up
// without sleeping when a slow reply puts them behind, so the offered rate
// tracks the target even while the server sheds.
func overloadSweepPoint(e *Env, addr string, mult, capQPS float64) (overloadRow, error) {
	target := mult * capQPS
	clients, err := overloadClients(addr, "", overloadWorkers)
	if err != nil {
		return overloadRow{}, err
	}
	defer closeClients(clients)

	interval := time.Duration(float64(overloadWorkers) / target * float64(time.Second))
	var c overloadCounts
	var firstErr atomic.Value
	start := time.Now()
	end := start.Add(overloadMeasure)
	var wg sync.WaitGroup
	for w := 0; w < overloadWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src, err := workload.NewScanFlood(e.Grid, 2, e.Cfg.Seed+int64(9000+w))
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			cl := clients[w/overloadWorkersPerConn]
			// Stagger the first issue across the interval so the sweep
			// offers a stream, not one synchronized stampede per tick.
			next := start.Add(time.Duration(float64(w) / float64(overloadWorkers) * float64(interval)))
			for {
				// Scheduling stops at the window edge, not after one more
				// sleep past it — otherwise the stragglers' idle tails
				// inflate the elapsed time and deflate every rate.
				if next.After(end) {
					return
				}
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				next = next.Add(interval)
				q := workload.FormatQuery(e.Grid, src.Next())
				if err := overloadIssue(cl, q, true, &c); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return overloadRow{}, err
	}
	return overloadRow{
		Multiple:   mult,
		TargetQPS:  target,
		OfferedQPS: float64(c.offered.Load()) / elapsed.Seconds(),
		Offered:    c.offered.Load(),
		Admitted:   c.ok.Load(),
		GoodputQPS: float64(c.ok.Load()) / elapsed.Seconds(),
		Sheds:      c.sheds.Load(),
		P50Ms:      float64(c.quantile(0.50)) / float64(time.Millisecond),
		P99Ms:      float64(c.quantile(0.99)) / float64(time.Millisecond),
	}, nil
}

// overloadFairnessStage measures the polite tenant's hit rate alone and
// then beside an unpaced scan flood, on a quota-enforcing server.
func overloadFairnessStage(e *Env, be backend.Backend) (overloadFairness, error) {
	fail := func(err error) (overloadFairness, error) { return overloadFairness{}, err }
	// A full-size cache: the quota bounds how fast the flood may churn it,
	// and the polite hot set has to survive that churn — the interference
	// contract under test. A capacity-starved cache would conflate quota
	// fairness with pure eviction pressure.
	srv, addr, err := overloadServer(e, be, e.BaseBytes(), mtier.AdmissionConfig{
		MaxConcurrent: overloadSlots, MaxQueue: overloadQueue, MaxWait: overloadMaxWait,
		TenantQPS: overloadTenantQPS,
	})
	if err != nil {
		return fail(err)
	}
	defer srv.Close()

	const politeWorkers = 2
	politeClients, err := overloadClients(addr, "polite", politeWorkers)
	if err != nil {
		return fail(err)
	}
	defer closeClients(politeClients)

	var firstErr atomic.Value
	politePass := func(measure bool, dur time.Duration, c *overloadCounts) {
		interval := time.Duration(float64(politeWorkers) / overloadPoliteRate * float64(time.Second))
		end := time.Now().Add(dur)
		var wg sync.WaitGroup
		for w := 0; w < politeWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// A fixed seed per worker replays the same Zipf hot set in
				// both passes, so the two hit rates compare like for like.
				src, err := workload.NewZipf(e.Grid, 48, 1.4, e.Cfg.Seed+int64(100+w))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				cl := politeClients[w/overloadWorkersPerConn]
				for time.Now().Before(end) {
					time.Sleep(interval)
					q := workload.FormatQuery(e.Grid, src.Next())
					if err := overloadIssue(cl, q, measure, c); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}

	// Pass A: the polite tenant alone — warm its hot set, then measure.
	var alone overloadCounts
	politePass(false, overloadFairMeasure, nil)
	politePass(true, overloadFairMeasure, &alone)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return fail(err)
	}
	if alone.ok.Load() == 0 {
		return fail(fmt.Errorf("bench: overload: polite tenant alone completed nothing"))
	}

	// Pass B: the same stream beside an unpaced scan flood. The flood's
	// admitted rate is quota-capped; everything above it is shed with
	// reason "quota" before touching a slot or the cache.
	const floodWorkers = 8
	floodClients, err := overloadClients(addr, "flood", floodWorkers)
	if err != nil {
		return fail(err)
	}
	defer closeClients(floodClients)

	var together, flood overloadCounts
	stop := make(chan struct{})
	var fwg sync.WaitGroup
	for w := 0; w < floodWorkers; w++ {
		fwg.Add(1)
		go func(w int) {
			defer fwg.Done()
			src, err := workload.NewScanFlood(e.Grid, 2, e.Cfg.Seed+int64(200+w))
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			cl := floodClients[w/overloadWorkersPerConn]
			for {
				select {
				case <-stop:
					return
				default:
				}
				// A breath per iteration: the flood stays far over quota
				// without spinning a core per worker on shed replies.
				time.Sleep(time.Millisecond)
				q := workload.FormatQuery(e.Grid, src.Next())
				if err := overloadIssue(cl, q, true, &flood); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(w)
	}
	politePass(true, overloadFairMeasure, &together)
	close(stop)
	fwg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return fail(err)
	}
	if together.ok.Load() == 0 {
		return fail(fmt.Errorf("bench: overload: polite tenant starved beside the flood"))
	}

	hitAlone := float64(alone.hits.Load()) / float64(alone.ok.Load())
	hitTogether := float64(together.hits.Load()) / float64(together.ok.Load())
	return overloadFairness{
		TenantQPS:          overloadTenantQPS,
		PoliteHitAlone:     hitAlone,
		PoliteHitWithFlood: hitTogether,
		HitDropPoints:      (hitAlone - hitTogether) * 100,
		FloodOffered:       flood.offered.Load(),
		FloodAdmitted:      flood.ok.Load(),
		FloodQuotaSheds:    flood.quota.Load(),
	}, nil
}
