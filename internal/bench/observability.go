package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"aggcache/internal/obs"
	"aggcache/internal/workload"
)

// Observability quantifies the cost of the live instrumentation layer: the
// same hot-cache workload is replayed by concurrent clients with metrics
// disabled and with the full production bundle (engine + cache + strategy)
// attached, and the throughput delta is the overhead. The cache is warmed
// first and the backend latency is accounted rather than slept, so the
// run is CPU-bound through exactly the code paths the instrumentation
// touches — the worst case for its overhead.
func Observability(e *Env) (*Report, error) {
	gen, err := workload.NewGenerator(e.Grid, workload.DefaultMix, e.Cfg.MaxQueryWidth, e.Cfg.Seed+3000)
	if err != nil {
		return nil, err
	}
	queries, _ := gen.Stream(e.Cfg.Queries)
	bytes := e.BaseBytes() * 2 / 3
	const clients = 4
	const passes = 3
	const rounds = 4

	r := &Report{
		ID: "observability",
		Title: fmt.Sprintf("Instrumentation overhead, warm cache, %d clients, best pass of %d (VCMC/two-level, cache %s)",
			clients, passes*rounds, SizeLabel(bytes)),
		Header: []string{"instrumentation", "queries", "wall ms", "queries/sec", "overhead"},
	}

	// Each round builds a fresh system per mode, warms its cache with one
	// serial replay, then times the concurrent passes. The estimator is the
	// MINIMUM per-pass wall time over all rounds — the standard noise-robust
	// best-case figure, since scheduler jitter and GC only ever add time.
	// Rounds alternate which mode goes first so process-level warm-up (heap
	// growth, page faults) does not bias either mode.
	measure := func(reg *obs.Registry, best time.Duration) (time.Duration, error) {
		sys, err := e.NewSystem(SystemSpec{
			Strategy: StratVCMC, Policy: PolicyTwoLevel, Bytes: bytes, Obs: reg,
		})
		if err != nil {
			return 0, err
		}
		for _, q := range queries {
			if _, err := sys.Engine.Execute(context.Background(), q); err != nil {
				return 0, err
			}
		}
		for p := 0; p < passes; p++ {
			el, err := runClients(sys, queries, clients)
			if err != nil {
				return 0, err
			}
			if best == 0 || el < best {
				best = el
			}
		}
		return best, nil
	}

	best := map[bool]time.Duration{}
	var lastReg *obs.Registry
	for round := 0; round < rounds; round++ {
		order := []bool{false, true}
		if round%2 == 1 {
			order = []bool{true, false}
		}
		for _, instrumented := range order {
			var reg *obs.Registry
			if instrumented {
				reg = obs.NewRegistry()
				lastReg = reg
			}
			el, err := measure(reg, best[instrumented])
			if err != nil {
				return nil, err
			}
			best[instrumented] = el
		}
	}

	ran := clients * len(queries)
	qpsOff := float64(ran) / best[false].Seconds()
	for _, instrumented := range []bool{false, true} {
		elapsed := best[instrumented]
		qps := float64(ran) / elapsed.Seconds()
		mode, overhead := "off", "-"
		if instrumented {
			mode = "on"
			overhead = fmt.Sprintf("%+.1f%%", (1-qps/qpsOff)*100)
		}
		r.AddRow(mode, fmt.Sprintf("%d", ran), msString(elapsed), fmt.Sprintf("%.0f", qps), overhead)
	}

	if lastReg != nil {
		var b strings.Builder
		if err := lastReg.WritePrometheus(&b); err != nil {
			return nil, err
		}
		samples := 0
		for _, line := range strings.Split(b.String(), "\n") {
			if line != "" && !strings.HasPrefix(line, "#") {
				samples++
			}
		}
		r.Addf("instrumented registry: %d families, %d samples on /metrics", len(lastReg.Families()), samples)
	}
	r.Addf("overhead is atomic counters plus preallocated log-scale histogram buckets on every query; positive = instrumentation slower")
	return r, nil
}
