package bench

import (
	"errors"
	"fmt"
	"time"

	"aggcache/internal/cache"
	"aggcache/internal/lattice"
	"aggcache/internal/metrics"
	"aggcache/internal/strategy"
)

// insertAll feeds every chunk of a group-by into a strategy's maintenance
// path (presence only — no payloads are needed for lookup-time and
// update-time measurements).
func (e *Env) insertAll(s strategy.Strategy, gb lattice.ID, acc *metrics.Accumulator) {
	for num := 0; num < e.Grid.NumChunks(gb); num++ {
		entry := &cache.Entry{Key: cache.Key{GB: gb, Num: int32(num)}}
		start := time.Now()
		s.OnInsert(entry)
		if acc != nil {
			acc.Observe(time.Since(start))
		}
	}
}

// Table1 measures cache lookup times for ESM, ESMC, VCM and VCMC: one chunk
// per group-by, once with an empty cache and once with every base-table
// chunk cached (the paper's Table 1). Exhaustive lookups honor the
// configured budget; budget hits are reported as truncations (the paper's
// ESMC number, 19,826,592 ms, is why).
func Table1(e *Env) (*Report, error) {
	r := &Report{ID: "table1", Title: "Lookup times (ms)",
		Header: []string{"strategy", "empty min", "empty max", "empty avg", "preloaded min", "preloaded max", "preloaded avg", "truncated"}}
	lat := e.Grid.Lattice()
	for _, name := range []StrategyName{StratESM, StratESMC, StratVCM, StratVCMC} {
		var cells []string
		truncTotal := 0
		for _, preloaded := range []bool{false, true} {
			s, err := e.NewStrategy(name, e.Cfg.LookupBudget)
			if err != nil {
				return nil, err
			}
			if preloaded {
				e.insertAll(s, lat.Base(), nil)
			}
			var acc metrics.Accumulator
			trunc := 0
			for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
				start := time.Now()
				_, _, err := s.Find(id, 0)
				acc.Observe(time.Since(start))
				if errors.Is(err, strategy.ErrBudget) {
					trunc++
				} else if err != nil {
					return nil, err
				}
			}
			cells = append(cells, msString(acc.Min), msString(acc.Max), msString(acc.Avg()))
			truncTotal += trunc
		}
		row := append([]string{string(name)}, cells...)
		row = append(row, fmt.Sprintf("%d", truncTotal))
		r.AddRow(row...)
	}
	r.Addf("one lookup per group-by (%d group-bys); 'truncated' counts budget-capped exhaustive lookups (budget %d nodes)",
		lat.NumNodes(), e.Cfg.LookupBudget)
	r.Addf("paper shape: VCM/VCMC ≈ 0 in both scenarios; ESM explodes on an empty cache; ESMC explodes when preloaded")
	return r, nil
}

// table2Levels picks the two load levels of the paper's Table 2: the base
// level with the last dimension aggregated, then additionally the
// second-to-last — (6,2,3,1,0) and (6,2,3,0,0) on the APB schema.
func (e *Env) table2Levels() (lattice.ID, lattice.ID, error) {
	lat := e.Grid.Lattice()
	lvA := append([]int(nil), e.Grid.Schema().BaseLevel()...)
	lvA[len(lvA)-1] = 0
	lvB := append([]int(nil), lvA...)
	lvB[len(lvB)-2] = 0
	a, err := lat.IDOf(lvA)
	if err != nil {
		return 0, 0, err
	}
	b, err := lat.IDOf(lvB)
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

// Table2 measures per-insert count/cost maintenance times for VCM and VCMC
// while bulk-loading two adjacent levels (the paper's Table 2).
func Table2(e *Env) (*Report, error) {
	gbA, gbB, err := e.table2Levels()
	if err != nil {
		return nil, err
	}
	lat := e.Grid.Lattice()
	r := &Report{ID: "table2", Title: fmt.Sprintf("Update times (ms) while loading %s then %s",
		lat.LevelTupleString(gbA), lat.LevelTupleString(gbB)),
		Header: []string{"strategy", "A min", "A max", "A avg", "B min", "B max", "B avg", "B updates"}}
	for _, name := range []StrategyName{StratVCM, StratVCMC} {
		s, err := e.NewStrategy(name, 0)
		if err != nil {
			return nil, err
		}
		var accA, accB metrics.Accumulator
		e.insertAll(s, gbA, &accA)
		before := s.Maintenance().Updates
		e.insertAll(s, gbB, &accB)
		updatesB := s.Maintenance().Updates - before
		r.AddRow(string(name),
			msString(accA.Min), msString(accA.Max), msString(accA.Avg()),
			msString(accB.Min), msString(accB.Max), msString(accB.Avg()),
			fmt.Sprintf("%d", updatesB))
	}
	r.Addf("paper shape: VCM does no work in phase B (everything already computable); VCMC still propagates cost changes")
	return r, nil
}

// Table3 reports the summary-state space overhead of each strategy with the
// paper's byte accounting (Table 3).
func Table3(e *Env) (*Report, error) {
	r := &Report{ID: "table3", Title: "Maximum space overhead",
		Header: []string{"strategy", "bytes", "vs base table"}}
	base := e.BaseBytes()
	for _, name := range []StrategyName{StratESM, StratESMC, StratVCM, StratVCMC} {
		s, err := e.NewStrategy(name, 0)
		if err != nil {
			return nil, err
		}
		ov := s.Overhead()
		r.AddRow(string(name), fmt.Sprintf("%d", ov), fmt.Sprintf("%.2f%%", 100*float64(ov)/float64(base)))
	}
	r.Addf("total chunks over all %d group-bys: %d; base table ≈ %s",
		e.Grid.Lattice().NumNodes(), e.Grid.TotalChunks(), SizeLabel(base))
	r.Addf("paper: 32,256 chunks; VCM 32KB, VCMC 194KB (≈0.97%% of the base table)")
	return r, nil
}
