package bench

import (
	"context"
	"fmt"
	"time"

	"aggcache/internal/backend"
	"aggcache/internal/core"
	"aggcache/internal/metrics"
	"aggcache/internal/views"
	"aggcache/internal/workload"
)

// StreamResult aggregates one system's run over a query stream.
type StreamResult struct {
	Spec         SystemSpec
	Queries      int
	CompleteHits int
	BudgetMisses int
	// Sum of per-query breakdowns over all queries and over the complete-hit
	// subset.
	All     metrics.Breakdown
	Hits    metrics.Breakdown
	Elapsed time.Duration
}

// HitRatio returns the complete-hit percentage (Figure 7, Table 4).
func (r *StreamResult) HitRatio() float64 {
	return 100 * float64(r.CompleteHits) / float64(r.Queries)
}

// AvgAll returns the mean response time over all queries (Figures 8, 9).
func (r *StreamResult) AvgAll() time.Duration {
	return r.All.Total() / time.Duration(r.Queries)
}

// AvgHits returns the mean breakdown over complete-hit queries (Figure 10).
func (r *StreamResult) AvgHits() metrics.Breakdown {
	if r.CompleteHits == 0 {
		return metrics.Breakdown{}
	}
	return r.Hits.Scale(r.CompleteHits)
}

// RunStream executes the paper's query stream (30% drill-down, 30% roll-up,
// 30% proximity, 10% random) against a fresh system built from spec. The
// stream is a deterministic function of the environment seed, so every
// system under comparison answers exactly the same queries.
func (e *Env) RunStream(spec SystemSpec) (*StreamResult, error) {
	res, _, err := e.runStreamMix(spec, workload.DefaultMix)
	return res, err
}

// runStreamSys runs the default mix and also returns the system for
// post-run inspection.
func (e *Env) runStreamSys(spec SystemSpec) (*StreamResult, *System, error) {
	return e.runStreamMix(spec, workload.DefaultMix)
}

// runStreamMix is the generic stream runner with an explicit query mix.
func (e *Env) runStreamMix(spec SystemSpec, mix workload.Mix) (*StreamResult, *System, error) {
	sys, err := e.NewSystem(spec)
	if err != nil {
		return nil, nil, err
	}
	gen, err := workload.NewGenerator(e.Grid, mix, e.Cfg.MaxQueryWidth, e.Cfg.Seed+1000)
	if err != nil {
		return nil, nil, err
	}
	res := &StreamResult{Spec: spec, Queries: e.Cfg.Queries}
	start := time.Now()
	for i := 0; i < e.Cfg.Queries; i++ {
		q, _ := gen.Next()
		out, err := sys.Engine.Execute(context.Background(), q)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: query %d: %w", i, err)
		}
		res.All.Add(out.Breakdown)
		if out.CompleteHit {
			res.CompleteHits++
			res.Hits.Add(out.Breakdown)
		}
		if out.BudgetExceeded {
			res.BudgetMisses++
		}
	}
	res.Elapsed = time.Since(start)
	return res, sys, nil
}

// Fig7And8 runs the replacement-policy comparison: the two-level policy
// (with preloading) against the plain benefit policy, both under VCMC, over
// the configured cache sizes. It regenerates Figure 7 (complete-hit ratios)
// and Figure 8 (average execution times).
func Fig7And8(e *Env) (*Report, *Report, error) {
	f7 := &Report{ID: "fig7", Title: "Complete hit ratios vs cache size (two-level vs benefit policy)",
		Header: []string{"cache", "two-level %hits", "benefit %hits"}}
	f8 := &Report{ID: "fig8", Title: "Average execution times vs cache size (two-level vs benefit policy)",
		Header: []string{"cache", "two-level avg ms", "benefit avg ms"}}
	for _, bytes := range e.CacheSizes() {
		two, err := e.RunStream(SystemSpec{Strategy: StratVCMC, Policy: PolicyTwoLevel, Bytes: bytes, Preload: true})
		if err != nil {
			return nil, nil, err
		}
		ben, err := e.RunStream(SystemSpec{Strategy: StratVCMC, Policy: PolicyBenefit, Bytes: bytes})
		if err != nil {
			return nil, nil, err
		}
		label := SizeLabel(bytes)
		f7.AddRow(label, fmt.Sprintf("%.0f", two.HitRatio()), fmt.Sprintf("%.0f", ben.HitRatio()))
		f8.AddRow(label, msString(two.AvgAll()), msString(ben.AvgAll()))
	}
	f7.Addf("paper shape: the two-level policy dominates, reaching 100%% once the base table fits")
	return f7, f8, nil
}

// Fig9 compares caching schemes: no aggregation (benefit policy), ESM and
// VCMC (both with the two-level policy) over the cache sizes — the paper's
// Figure 9.
func Fig9(e *Env) (*Report, error) {
	r := &Report{ID: "fig9", Title: "Average execution times: NoAgg vs ESM vs VCMC",
		Header: []string{"cache", "NoAgg avg ms", "ESM avg ms", "VCMC avg ms", "NoAgg %hits", "ESM %hits", "VCMC %hits", "ESM budget misses"}}
	for _, bytes := range e.CacheSizes() {
		noagg, err := e.RunStream(SystemSpec{Strategy: StratNoAgg, Policy: PolicyBenefit, Bytes: bytes})
		if err != nil {
			return nil, err
		}
		esm, err := e.RunStream(SystemSpec{Strategy: StratESM, Policy: PolicyTwoLevel, Bytes: bytes, Preload: true, Budget: e.Cfg.LookupBudget})
		if err != nil {
			return nil, err
		}
		vcmc, err := e.RunStream(SystemSpec{Strategy: StratVCMC, Policy: PolicyTwoLevel, Bytes: bytes, Preload: true})
		if err != nil {
			return nil, err
		}
		r.AddRow(SizeLabel(bytes),
			msString(noagg.AvgAll()), msString(esm.AvgAll()), msString(vcmc.AvgAll()),
			fmt.Sprintf("%.0f", noagg.HitRatio()), fmt.Sprintf("%.0f", esm.HitRatio()), fmt.Sprintf("%.0f", vcmc.HitRatio()),
			fmt.Sprintf("%d", esm.BudgetMisses))
	}
	r.Addf("paper shape: both aggregation schemes beat NoAgg by a wide margin; VCMC ≤ ESM")
	return r, nil
}

// Fig10AndTable4 regenerates Figure 10 (time breakup of complete-hit
// queries, ESM vs VCMC) and Table 4 (complete-hit percentage and the VCMC
// over ESM speedup on complete hits).
func Fig10AndTable4(e *Env) (*Report, *Report, error) {
	f10 := &Report{ID: "fig10", Title: "Time breakup for complete-hit queries (ESM | VCMC), ms",
		Header: []string{"cache", "ESM lookup", "ESM agg", "ESM update", "VCMC lookup", "VCMC agg", "VCMC update"}}
	t4 := &Report{ID: "table4", Title: "Speedup of VCMC over ESM on complete hits",
		Header: []string{"metric"}}
	type row struct {
		hits    float64
		speedup float64
	}
	var rows []row
	var labels []string
	for _, bytes := range e.CacheSizes() {
		esm, err := e.RunStream(SystemSpec{Strategy: StratESM, Policy: PolicyTwoLevel, Bytes: bytes, Preload: true, Budget: e.Cfg.LookupBudget})
		if err != nil {
			return nil, nil, err
		}
		vcmc, err := e.RunStream(SystemSpec{Strategy: StratVCMC, Policy: PolicyTwoLevel, Bytes: bytes, Preload: true})
		if err != nil {
			return nil, nil, err
		}
		eh, vh := esm.AvgHits(), vcmc.AvgHits()
		f10.AddRow(SizeLabel(bytes),
			msString(eh.Lookup), msString(eh.Aggregate), msString(eh.Update),
			msString(vh.Lookup), msString(vh.Aggregate), msString(vh.Update))
		speedup := 0.0
		if vt := vh.Total(); vt > 0 {
			speedup = float64(eh.Total()) / float64(vt)
		}
		rows = append(rows, row{hits: vcmc.HitRatio(), speedup: speedup})
		labels = append(labels, SizeLabel(bytes))
	}
	t4.Header = append(t4.Header, labels...)
	hitsRow := []string{"% of complete hits"}
	spRow := []string{"speedup (VCMC/ESM)"}
	for _, r := range rows {
		hitsRow = append(hitsRow, fmt.Sprintf("%.0f", r.hits))
		spRow = append(spRow, fmt.Sprintf("%.2f", r.speedup))
	}
	t4.Rows = append(t4.Rows, hitsRow, spRow)
	f10.Addf("paper shape: ESM lookup dominates at small caches and vanishes once the base table fits")
	t4.Addf("paper: speedups 5.8 / 4.11 / 3.17 / 1.11 for 10–25MB")
	return f10, t4, nil
}

// CostBypass exercises the §5.2 optimizer hook: against a backend holding
// materialized aggregates, compare VCMC with and without the cost-based
// cache/backend routing decision. Also tracks the StreamResult.Bypassed
// counter through engine stats.
func CostBypass(e *Env) (*Report, error) {
	// A warehouse-style backend: materialize the greedy [HRU96] view
	// selection (up to 16 views within a quarter of the base table's size).
	be, err := backend.NewEngine(e.Grid, e.Table, e.Cfg.Latency)
	if err != nil {
		return nil, err
	}
	lat := e.Grid.Lattice()
	sel, err := views.Greedy(e.Grid, e.Sizer, 16, e.BaseBytes()/4)
	if err != nil {
		return nil, err
	}
	if err := be.Materialize(sel.Views...); err != nil {
		return nil, err
	}
	sizes := e.CacheSizes()
	bytes := sizes[len(sizes)-1]
	r := &Report{ID: "bypass", Title: fmt.Sprintf("Cost-based cache/backend routing (§5.2) — %d greedy [HRU96] views at the backend, cache %s",
		len(sel.Views), SizeLabel(bytes)),
		Header: []string{"variant", "%hits", "avg ms", "bypassed chunks"}}
	r.Addf("materialized: %s", sel.Describe(lat))
	for _, enabled := range []bool{false, true} {
		spec := SystemSpec{
			Strategy: StratVCMC, Policy: PolicyTwoLevel, Bytes: bytes, Preload: true,
			Backend:    be,
			EngineOpts: []core.Option{core.WithCostBypass(enabled)},
		}
		res, sys, err := e.runStreamSys(spec)
		if err != nil {
			return nil, err
		}
		name := "VCMC (always aggregate in cache)"
		if enabled {
			name = "VCMC + cost bypass"
		}
		r.AddRow(name, fmt.Sprintf("%.0f", res.HitRatio()), msString(res.AvgAll()),
			fmt.Sprintf("%d", sys.Engine.Stats().Bypassed))
	}
	r.Addf("the optimizer sends a chunk to the backend when the plan cost exceeds the backend's estimated scan (materialized views make that common)")
	return r, nil
}

// Ablations quantifies the two-level policy's design choices (§6.3): group
// reinforcement, preloading, and backend-priority admission, using VCMC at
// the middle cache size.
func Ablations(e *Env) (*Report, error) {
	sizes := e.CacheSizes()
	bytes := sizes[len(sizes)/2]
	r := &Report{ID: "ablate", Title: fmt.Sprintf("Two-level policy ablations (VCMC, cache %s)", SizeLabel(bytes)),
		Header: []string{"variant", "%hits", "avg ms"}}
	variants := []struct {
		name string
		spec SystemSpec
	}{
		{"two-level (full)", SystemSpec{Strategy: StratVCMC, Policy: PolicyTwoLevel, Bytes: bytes, Preload: true}},
		{"- reinforcement", SystemSpec{Strategy: StratVCMC, Policy: PolicyTwoLevel, Bytes: bytes, Preload: true, EngineOpts: []core.Option{core.WithReinforce(false)}}},
		{"- preload", SystemSpec{Strategy: StratVCMC, Policy: PolicyTwoLevel, Bytes: bytes}},
		{"- admission (benefit rings)", SystemSpec{Strategy: StratVCMC, Policy: PolicyBenefit, Bytes: bytes, Preload: true}},
		{"plain LRU baseline", SystemSpec{Strategy: StratVCMC, Policy: PolicyLRU, Bytes: bytes, Preload: true}},
	}
	for _, v := range variants {
		res, err := e.RunStream(v.spec)
		if err != nil {
			return nil, err
		}
		r.AddRow(v.name, fmt.Sprintf("%.0f", res.HitRatio()), msString(res.AvgAll()))
	}
	return r, nil
}
