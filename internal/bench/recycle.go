package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"aggcache/internal/core"
	"aggcache/internal/workload"
)

// recycleJSONFile is the machine-readable artifact Recycle writes next to its
// report. CI uploads it and gates the drill-mix gain on it.
const recycleJSONFile = "BENCH_9.json"

// recycleRow is one (mix, mode) cell of BENCH_9.json.
type recycleRow struct {
	Mix           string  `json:"mix"`
	Mode          string  `json:"mode"`
	Queries       int64   `json:"queries"`
	SimMs         float64 `json:"sim_ms"`
	QPS           float64 `json:"qps"`
	HitRate       float64 `json:"complete_hit_rate"`
	BackendTuples int64   `json:"backend_tuples"`
	AggTuples     int64   `json:"agg_tuples"`
	Recycled      int64   `json:"recycled"`
	ResultHits    int64   `json:"result_cache_hits"`
}

// recycleMetrics is the BENCH_9.json schema.
type recycleMetrics struct {
	Bench     string       `json:"bench"`
	Scale     string       `json:"scale"`
	GoVersion string       `json:"go_version"`
	Procs     int          `json:"gomaxprocs"`
	Rows      []recycleRow `json:"rows"`
	// DrillQPSRatio is qps(on)/qps(off) on the drill mix — the headline
	// number for the recycler. QPS here is queries over simulated response
	// time (the repo's standard cost metric), so the ratio is deterministic
	// for a given seed and does not wobble with CI machine load.
	DrillQPSRatio float64 `json:"drill_qps_ratio"`
	// DrillAggRatio is agg_tuples(off)/agg_tuples(on) on the drill mix: the
	// detailed cost-savings view of the same gain (aggregation work avoided
	// by reusing recycled intermediates).
	DrillAggRatio float64 `json:"drill_agg_ratio"`
	// DrillHitGain is hit_rate(on) − hit_rate(off) on the drill mix.
	DrillHitGain float64 `json:"drill_hit_gain"`
	// ProximityQPSRatio is the no-regression check on the proximity mix.
	ProximityQPSRatio float64 `json:"proximity_qps_ratio"`
}

// recycleMixes are the two streams. Recycled intermediates pay off when a
// query jumps into a lattice level no earlier query paved: stepwise
// drill-down walks cache each step's root, so every level a walk passes
// through is already paved for its successors, and only multi-level jumps
// (the Random component — ad-hoc navigation in the paper's sense) reach for
// interiors. The drill mix therefore blends explicit drill/roll steps with a
// majority of ad-hoc jumps; the proximity mix is the regression guard —
// recycling admits little there, and what it admits must not cost
// throughput.
var recycleMixes = []struct {
	name string
	mix  workload.Mix
}{
	{"drill", workload.Mix{DrillDown: 0.25, RollUp: 0.15, Random: 0.60}},
	{"proximity", workload.Mix{Proximity: 0.75, Random: 0.25}},
}

// Recycle compares benefit-driven recycling + the semantic result cache
// against the plain engine on a drill/jump stream and on a proximity-heavy
// control stream, plus an "all" mode that recycles indiscriminately
// (threshold ≈0) to show what the benefit gate is worth. The cache gets
// 2.5× the base table: recycling is a speculation for spare capacity, and
// headroom is what keeps recycled chunks from displacing the proven working
// set. All modes replay the identical seeded stream on a preloaded cache, so
// the gain measures recycling's ability to turn one query's interior work
// into later queries' one-step roll-ups. Writes BENCH_9.json for the CI
// gate.
func Recycle(e *Env) (*Report, error) {
	bytes := int64(2.5 * float64(e.BaseBytes()))

	var m recycleMetrics
	m.Bench = "recycle"
	m.Scale = e.Cfg.Scale.String()
	m.GoVersion = runtime.Version()
	m.Procs = runtime.GOMAXPROCS(0)

	r := &Report{
		ID: "recycle",
		Title: fmt.Sprintf("Benefit-driven recycling + result cache (VCMC, cache %s, %d queries)",
			SizeLabel(bytes), e.Cfg.Queries),
		Header: []string{"mix", "mode", "queries", "sim ms", "queries/s (sim)", "hit rate", "backend tuples", "agg tuples", "recycled", "result hits"},
	}

	modes := []struct {
		name string
		spec SystemSpec
	}{
		{"off", SystemSpec{Strategy: StratVCMC, Policy: PolicyTwoLevel, Bytes: bytes, Preload: true}},
		{"on", SystemSpec{Strategy: StratVCMC, Policy: PolicyTwoLevelPromote, Bytes: bytes, Preload: true,
			EngineOpts: []core.Option{core.WithRecycling(true), core.WithResultCache(256)}}},
		{"all", SystemSpec{Strategy: StratVCMC, Policy: PolicyTwoLevelPromote, Bytes: bytes, Preload: true,
			EngineOpts: []core.Option{core.WithRecycling(true), core.WithRecycleMinBenefit(1e-9), core.WithResultCache(256)}}},
	}

	// The first system built in a process pays the chunk-pool warmup; run a
	// throwaway replay so no measured mode carries that bias.
	warm, err := workload.NewGenerator(e.Grid, recycleMixes[0].mix, e.Cfg.MaxQueryWidth, e.Cfg.Seed+9000)
	if err != nil {
		return nil, err
	}
	warmQ, _ := warm.Stream(min(e.Cfg.Queries, 50))
	sys, err := e.NewSystem(modes[0].spec)
	if err != nil {
		return nil, err
	}
	for _, q := range warmQ {
		if _, err := sys.Engine.Execute(context.Background(), q); err != nil {
			return nil, err
		}
	}

	// qps[mix][mode], hit[mix][mode], agg[mix][mode] for the headline ratios.
	qps := make([][]float64, len(recycleMixes))
	hit := make([][]float64, len(recycleMixes))
	agg := make([][]int64, len(recycleMixes))
	for mi, mx := range recycleMixes {
		qps[mi] = make([]float64, len(modes))
		hit[mi] = make([]float64, len(modes))
		agg[mi] = make([]int64, len(modes))
		gen, err := workload.NewGenerator(e.Grid, mx.mix, e.Cfg.MaxQueryWidth, e.Cfg.Seed+9000+int64(mi))
		if err != nil {
			return nil, err
		}
		queries, _ := gen.Stream(e.Cfg.Queries)
		for di, mode := range modes {
			sys, err := e.NewSystem(mode.spec)
			if err != nil {
				return nil, err
			}
			for _, q := range queries {
				if _, err := sys.Engine.Execute(context.Background(), q); err != nil {
					return nil, err
				}
			}
			st := sys.Engine.Stats()
			sim := st.Breakdown.Total()
			rate := float64(st.Queries) / sim.Seconds()
			hr := float64(st.CompleteHits) / float64(st.Queries)
			qps[mi][di] = rate
			hit[mi][di] = hr
			agg[mi][di] = st.AggTuples
			m.Rows = append(m.Rows, recycleRow{
				Mix: mx.name, Mode: mode.name, Queries: st.Queries,
				SimMs: float64(sim) / float64(time.Millisecond), QPS: rate,
				HitRate: hr, BackendTuples: st.BackendTuples, AggTuples: st.AggTuples,
				Recycled: st.Recycled, ResultHits: st.ResultCacheHits,
			})
			r.AddRow(mx.name, mode.name, fmt.Sprintf("%d", st.Queries), msString(sim),
				fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.2f", hr),
				fmt.Sprintf("%d", st.BackendTuples), fmt.Sprintf("%d", st.AggTuples),
				fmt.Sprintf("%d", st.Recycled), fmt.Sprintf("%d", st.ResultCacheHits))
		}
	}
	m.DrillQPSRatio = qps[0][1] / qps[0][0]
	m.DrillAggRatio = float64(agg[0][0]) / float64(agg[0][1])
	m.DrillHitGain = hit[0][1] - hit[0][0]
	m.ProximityQPSRatio = qps[1][1] / qps[1][0]

	buf, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(recycleJSONFile, append(buf, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("bench: recycle: %w", err)
	}

	r.Addf("all modes replay the identical seeded stream preloaded; \"on\" adds recycling (threshold %.3g/B), promote-on-reuse and a 256-entry result cache; \"all\" drops the benefit gate", core.DefaultRecycleMinBenefit)
	r.Addf("drill mix: %.2f× qps (sim), %.2f× less aggregation work, hit rate %+.2f; proximity mix: %.2f× qps", m.DrillQPSRatio, m.DrillAggRatio, m.DrillHitGain, m.ProximityQPSRatio)
	r.Addf("machine-readable copy written to %s", recycleJSONFile)
	return r, nil
}
