package bench

import (
	"context"
	"errors"
	"fmt"
	"time"

	"aggcache/internal/backend"
	"aggcache/internal/core"
	"aggcache/internal/workload"
)

// Chaos measures the fault-tolerant backend path's availability: the same
// query stream replayed through three phases — a flaky backend (injected
// transient errors and disconnects), a hard outage (cache-only degraded
// mode behind an open circuit breaker), and recovery — reporting the
// fraction of queries answered, the degraded-mode hit rate, and the
// fail-fast latency while the breaker is open.
func Chaos(e *Env) (*Report, error) {
	plan := backend.FaultPlan{
		Seed:           e.Cfg.Seed + 4000,
		ErrorRate:      0.10,
		DisconnectRate: 0.05,
	}
	bcfg := backend.BreakerConfig{FailureThreshold: 5, Cooldown: 50 * time.Millisecond}
	faulty := backend.NewFaulty(e.Backend, plan)
	breaker := backend.NewBreaker(faulty, bcfg)

	// Half the base table: preloading fills the cache with a high aggregate
	// whose descendants stay cache-computable, while detail queries must
	// reach the (faulty) backend — so the outage phase splits into degraded
	// answers and fast-fails instead of being trivially all-hit.
	sys, err := e.NewSystem(SystemSpec{
		Strategy: StratVCMC,
		Policy:   PolicyTwoLevel,
		Bytes:    e.BaseBytes() / 2,
		Preload:  true,
		Backend:  breaker,
	})
	if err != nil {
		return nil, err
	}

	gen, err := workload.NewGenerator(e.Grid, workload.DefaultMix, e.Cfg.MaxQueryWidth, e.Cfg.Seed+4000)
	if err != nil {
		return nil, err
	}
	queries, _ := gen.Stream(e.Cfg.Queries * 3)
	third := len(queries) / 3

	type phaseStats struct {
		ok, failed, degraded, unavailable int
		maxFailFast                       time.Duration
	}
	runPhase := func(qs []core.Query) phaseStats {
		var ps phaseStats
		for _, q := range qs {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			start := time.Now()
			res, err := sys.Engine.Execute(ctx, q)
			elapsed := time.Since(start)
			cancel()
			if err != nil {
				ps.failed++
				if errors.Is(err, core.ErrBackendUnavailable) {
					ps.unavailable++
					if elapsed > ps.maxFailFast {
						ps.maxFailFast = elapsed
					}
				}
				continue
			}
			ps.ok++
			if res.Degraded {
				ps.degraded++
			}
		}
		return ps
	}

	flaky := runPhase(queries[:third])

	faulty.SetDown(true)
	outage := runPhase(queries[third : 2*third])

	faulty.SetDown(false)
	time.Sleep(bcfg.Cooldown + 20*time.Millisecond)
	recovered := runPhase(queries[2*third:])

	avail := func(ps phaseStats) string {
		n := ps.ok + ps.failed
		if n == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.0f%%", 100*float64(ps.ok)/float64(n))
	}

	r := &Report{ID: "chaos", Title: "Availability under backend faults: flaky, hard outage, recovery",
		Header: []string{"phase", "answered", "degraded answers", "fail-fast errors", "max fail-fast latency"}}
	r.AddRow("flaky backend", avail(flaky), fmt.Sprintf("%d", flaky.degraded),
		fmt.Sprintf("%d", flaky.unavailable), msString(flaky.maxFailFast)+"ms")
	r.AddRow("hard outage", avail(outage), fmt.Sprintf("%d", outage.degraded),
		fmt.Sprintf("%d", outage.unavailable), msString(outage.maxFailFast)+"ms")
	r.AddRow("recovered", avail(recovered), fmt.Sprintf("%d", recovered.degraded),
		fmt.Sprintf("%d", recovered.unavailable), msString(recovered.maxFailFast)+"ms")

	counts := faulty.Counts()
	r.Addf("injected faults: %d errors, %d disconnects, %d outage rejections",
		counts.Errors, counts.Disconnects, counts.Outages)
	r.Addf("breaker after recovery: %v; engine degraded: %v", breaker.State(), sys.Engine.Degraded())
	st := sys.Engine.Stats()
	r.Addf("engine: %d degraded hits, %d unavailable fast-fails across the run", st.DegradedHits, st.Unavailable)
	if recovered.ok == 0 {
		return nil, fmt.Errorf("bench: chaos: no query succeeded after recovery")
	}
	return r, nil
}
