// Package data holds fact tables and the synthetic data generator used by
// the experiments. The generator follows the shape of the APB-1 benchmark
// generator (OLAP Council): a set of active dimension-member combinations,
// each of which produces measure rows for a density-controlled subset of the
// time members.
package data

import (
	"fmt"
	"math/rand"

	"aggcache/internal/schema"
)

// Table is a column-oriented fact table at the base level of a schema: one
// member id per dimension per row plus one measure value.
type Table struct {
	sch     *schema.Schema
	nd      int
	members []int32 // row-major: row i occupies members[i*nd : (i+1)*nd]
	values  []float64
}

// NewTable returns an empty fact table for the schema.
func NewTable(sch *schema.Schema) *Table {
	return &Table{sch: sch, nd: sch.NumDims()}
}

// Schema returns the table's schema.
func (t *Table) Schema() *schema.Schema { return t.sch }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.values) }

// Row returns the member ids of row i. The slice aliases the table; do not
// modify.
func (t *Table) Row(i int) []int32 { return t.members[i*t.nd : (i+1)*t.nd] }

// Value returns the measure of row i.
func (t *Table) Value(i int) float64 { return t.values[i] }

// Append adds a row. members must have one entry per dimension; it is
// copied.
func (t *Table) Append(members []int32, value float64) {
	if len(members) != t.nd {
		panic(fmt.Sprintf("data: row has %d members, want %d", len(members), t.nd))
	}
	t.members = append(t.members, members...)
	t.values = append(t.values, value)
}

// Bytes returns the approximate in-memory footprint of the table, charging
// 4 bytes per member id and 8 per value — comparable to the paper's 20-byte
// tuples for the 5-dimension APB schema.
func (t *Table) Bytes() int64 {
	return int64(len(t.members))*4 + int64(len(t.values))*8
}

// Params configures the synthetic generator.
type Params struct {
	// Rows is the target number of fact rows; the generated count is close
	// to but not exactly Rows (density sampling is stochastic).
	Rows int
	// Density is the probability that an active combination has data for a
	// given time member (APB-1's "data density"; the paper uses 0.7).
	Density float64
	// TimeDim is the index of the time dimension; -1 samples full cells
	// uniformly instead of using the combination/density model.
	TimeDim int
	// Seed seeds the deterministic generator.
	Seed int64
	// MaxValue bounds the generated measure values (exclusive); defaults to
	// 100.
	MaxValue float64
}

// Generate builds a synthetic fact table over the base level of sch.
func Generate(sch *schema.Schema, p Params) (*Table, error) {
	if p.Rows <= 0 {
		return nil, fmt.Errorf("data: Rows must be positive, got %d", p.Rows)
	}
	if p.TimeDim >= sch.NumDims() {
		return nil, fmt.Errorf("data: TimeDim %d outside schema with %d dimensions", p.TimeDim, sch.NumDims())
	}
	if p.TimeDim >= 0 && (p.Density <= 0 || p.Density > 1) {
		return nil, fmt.Errorf("data: Density must be in (0,1], got %v", p.Density)
	}
	maxV := p.MaxValue
	if maxV <= 0 {
		maxV = 100
	}
	rng := rand.New(rand.NewSource(p.Seed))
	t := NewTable(sch)
	nd := sch.NumDims()
	baseCard := make([]int, nd)
	for d := 0; d < nd; d++ {
		dim := sch.Dim(d)
		baseCard[d] = dim.Card(dim.Hierarchy())
	}
	row := make([]int32, nd)

	if p.TimeDim < 0 {
		// Uniform cell sampling with deduplication.
		if total := crossProduct(baseCard, nil); total >= 0 && int64(p.Rows) > total {
			return nil, fmt.Errorf("data: Rows %d exceeds the %d distinct base cells", p.Rows, total)
		}
		seen := make(map[string]bool, p.Rows)
		buf := make([]byte, nd*4)
		for t.Len() < p.Rows {
			for d := 0; d < nd; d++ {
				row[d] = int32(rng.Intn(baseCard[d]))
			}
			k := cellKeyString(buf, row)
			if seen[k] {
				continue
			}
			seen[k] = true
			t.Append(row, 1+rng.Float64()*(maxV-1))
		}
		return t, nil
	}

	// Combination/density model: pick distinct non-time combinations, each
	// emitting one row per time member with probability Density.
	months := baseCard[p.TimeDim]
	perCombo := float64(months) * p.Density
	combos := int(float64(p.Rows)/perCombo + 0.5)
	if combos < 1 {
		combos = 1
	}
	// Never ask for more distinct combinations than the non-time dimensions
	// can provide, or the dedup loop would never finish.
	if max := crossProduct(baseCard, &p.TimeDim); max >= 0 && int64(combos) > max {
		combos = int(max)
	}
	seen := make(map[string]bool, combos)
	buf := make([]byte, nd*4)
	for c := 0; c < combos; {
		for d := 0; d < nd; d++ {
			if d == p.TimeDim {
				row[d] = 0
			} else {
				row[d] = int32(rng.Intn(baseCard[d]))
			}
		}
		k := cellKeyString(buf, row)
		if seen[k] {
			continue
		}
		seen[k] = true
		c++
		emitted := false
		for m := 0; m < months; m++ {
			if rng.Float64() < p.Density {
				row[p.TimeDim] = int32(m)
				t.Append(row, 1+rng.Float64()*(maxV-1))
				emitted = true
			}
		}
		if !emitted {
			// Guarantee every active combination contributes at least one
			// row so the row count tracks the target.
			row[p.TimeDim] = int32(rng.Intn(months))
			t.Append(row, 1+rng.Float64()*(maxV-1))
		}
	}
	return t, nil
}

// crossProduct returns the product of base cardinalities, skipping *skip if
// non-nil. It returns -1 on overflow (effectively unbounded).
func crossProduct(cards []int, skip *int) int64 {
	total := int64(1)
	for d, c := range cards {
		if skip != nil && d == *skip {
			continue
		}
		total *= int64(c)
		if total < 0 || total > 1<<50 {
			return -1
		}
	}
	return total
}

func cellKeyString(buf []byte, row []int32) string {
	buf = buf[:0]
	for _, m := range row {
		buf = append(buf, byte(m), byte(m>>8), byte(m>>16), byte(m>>24))
	}
	return string(buf)
}
