package data

import (
	"encoding/gob"
	"fmt"
	"io"

	"aggcache/internal/schema"
)

// tableFile is the on-disk gob representation written by SaveTable.
type tableFile struct {
	Magic   string
	NumDims int
	Members []int32
	Values  []float64
}

const tableMagic = "aggcache-fact-v1"

// encodeFile writes a raw tableFile; exists so tests can craft invalid
// files.
func encodeFile(w io.Writer, f tableFile) error {
	return gob.NewEncoder(w).Encode(f)
}

// SaveTable writes the fact table to w (gob encoded). The schema itself is
// not serialized; readers must supply the matching schema to LoadTable.
func SaveTable(w io.Writer, t *Table) error {
	enc := gob.NewEncoder(w)
	return enc.Encode(tableFile{
		Magic:   tableMagic,
		NumDims: t.nd,
		Members: t.members,
		Values:  t.values,
	})
}

// LoadTable reads a fact table written by SaveTable and validates it against
// the schema (dimension count and member ranges).
func LoadTable(r io.Reader, sch *schema.Schema) (*Table, error) {
	var f tableFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("data: decode: %w", err)
	}
	if f.Magic != tableMagic {
		return nil, fmt.Errorf("data: not an aggcache fact file (magic %q)", f.Magic)
	}
	if f.NumDims != sch.NumDims() {
		return nil, fmt.Errorf("data: file has %d dimensions, schema has %d", f.NumDims, sch.NumDims())
	}
	if len(f.Members) != len(f.Values)*f.NumDims {
		return nil, fmt.Errorf("data: corrupt file: %d member ids for %d rows", len(f.Members), len(f.Values))
	}
	for i, m := range f.Members {
		d := i % f.NumDims
		dim := sch.Dim(d)
		if m < 0 || int(m) >= dim.Card(dim.Hierarchy()) {
			return nil, fmt.Errorf("data: row %d: member %d outside dimension %s", i/f.NumDims, m, dim.Name())
		}
	}
	return &Table{sch: sch, nd: f.NumDims, members: f.Members, values: f.Values}, nil
}
