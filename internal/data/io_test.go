package data

import (
	"bytes"
	"testing"

	"aggcache/internal/schema"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := testSchema(t)
	tab, err := Generate(s, Params{Rows: 200, Density: 0.6, TimeDim: 1, Seed: 8})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var buf bytes.Buffer
	if err := SaveTable(&buf, tab); err != nil {
		t.Fatalf("SaveTable: %v", err)
	}
	got, err := LoadTable(&buf, s)
	if err != nil {
		t.Fatalf("LoadTable: %v", err)
	}
	if got.Len() != tab.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), tab.Len())
	}
	for i := 0; i < tab.Len(); i++ {
		a, b := tab.Row(i), got.Row(i)
		for d := range a {
			if a[d] != b[d] {
				t.Fatalf("row %d differs", i)
			}
		}
		if tab.Value(i) != got.Value(i) {
			t.Fatalf("value %d differs", i)
		}
	}
}

func TestLoadTableValidation(t *testing.T) {
	s := testSchema(t)
	tab, _ := Generate(s, Params{Rows: 50, Density: 0.6, TimeDim: 1, Seed: 8})
	var buf bytes.Buffer
	if err := SaveTable(&buf, tab); err != nil {
		t.Fatalf("SaveTable: %v", err)
	}
	saved := buf.Bytes()

	// Wrong schema dimensionality.
	d := schema.MustNewDimension("D", []schema.HierarchySpec{{Name: "a", Card: 4}})
	s1 := schema.MustNew("M", d)
	if _, err := LoadTable(bytes.NewReader(saved), s1); err == nil {
		t.Errorf("wrong dims: expected error")
	}

	// Out-of-range members for a smaller schema with the same arity.
	small := schema.MustNew("M",
		schema.MustNewDimension("P", []schema.HierarchySpec{{Name: "a", Card: 2}}),
		schema.MustNewDimension("T", []schema.HierarchySpec{{Name: "a", Card: 2}}),
		schema.MustNewDimension("C", []schema.HierarchySpec{{Name: "a", Card: 2}}),
	)
	if _, err := LoadTable(bytes.NewReader(saved), small); err == nil {
		t.Errorf("out-of-range members: expected error")
	}

	// Corrupt stream.
	if _, err := LoadTable(bytes.NewReader([]byte("junk")), s); err == nil {
		t.Errorf("junk: expected error")
	}
	// Wrong magic.
	var buf2 bytes.Buffer
	bad := tableFile{Magic: "nope", NumDims: 3}
	if err := encodeFile(&buf2, bad); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := LoadTable(&buf2, s); err == nil {
		t.Errorf("bad magic: expected error")
	}
}
