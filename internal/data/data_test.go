package data

import (
	"testing"

	"aggcache/internal/schema"
)

func testSchema(t testing.TB) *schema.Schema {
	t.Helper()
	p := schema.MustNewDimension("Product", []schema.HierarchySpec{{Name: "Group", Card: 4}, {Name: "Code", Card: 16}})
	tm := schema.MustNewDimension("Time", []schema.HierarchySpec{{Name: "Year", Card: 2}, {Name: "Month", Card: 8}})
	c := schema.MustNewDimension("Channel", []schema.HierarchySpec{{Name: "Base", Card: 4}})
	return schema.MustNew("UnitSales", p, tm, c)
}

func TestTableAppendRow(t *testing.T) {
	tab := NewTable(testSchema(t))
	if tab.Len() != 0 {
		t.Fatalf("empty table Len = %d", tab.Len())
	}
	tab.Append([]int32{1, 2, 3}, 5.5)
	tab.Append([]int32{0, 0, 0}, 1.0)
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	r := tab.Row(0)
	if r[0] != 1 || r[1] != 2 || r[2] != 3 {
		t.Fatalf("Row(0) = %v", r)
	}
	if tab.Value(1) != 1.0 {
		t.Fatalf("Value(1) = %v", tab.Value(1))
	}
	if tab.Bytes() != 2*(3*4+8) {
		t.Fatalf("Bytes = %d", tab.Bytes())
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Append with wrong arity should panic")
		}
	}()
	tab.Append([]int32{1}, 0)
}

func TestGenerateDensityModel(t *testing.T) {
	s := testSchema(t)
	tab, err := Generate(s, Params{Rows: 300, Density: 0.7, TimeDim: 1, Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	n := tab.Len()
	if n < 210 || n > 420 {
		t.Fatalf("generated %d rows, want ~300", n)
	}
	// All members in range; all values positive.
	for i := 0; i < n; i++ {
		r := tab.Row(i)
		if r[0] < 0 || r[0] >= 16 || r[1] < 0 || r[1] >= 8 || r[2] < 0 || r[2] >= 4 {
			t.Fatalf("row %d out of range: %v", i, r)
		}
		if tab.Value(i) <= 0 {
			t.Fatalf("row %d non-positive value", i)
		}
	}
	// No duplicate cells.
	seen := make(map[[3]int32]bool, n)
	for i := 0; i < n; i++ {
		var k [3]int32
		copy(k[:], tab.Row(i))
		if seen[k] {
			t.Fatalf("duplicate cell %v", k)
		}
		seen[k] = true
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := testSchema(t)
	a, _ := Generate(s, Params{Rows: 200, Density: 0.5, TimeDim: 1, Seed: 9})
	b, _ := Generate(s, Params{Rows: 200, Density: 0.5, TimeDim: 1, Seed: 9})
	if a.Len() != b.Len() {
		t.Fatalf("non-deterministic row count: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for d := range ra {
			if ra[d] != rb[d] {
				t.Fatalf("row %d differs", i)
			}
		}
		if a.Value(i) != b.Value(i) {
			t.Fatalf("value %d differs", i)
		}
	}
	c, _ := Generate(s, Params{Rows: 200, Density: 0.5, TimeDim: 1, Seed: 10})
	same := c.Len() == a.Len()
	if same {
		for i := 0; i < a.Len(); i++ {
			if a.Value(i) != c.Value(i) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different seeds produced identical tables")
	}
}

func TestGenerateUniform(t *testing.T) {
	s := testSchema(t)
	tab, err := Generate(s, Params{Rows: 300, TimeDim: -1, Seed: 4})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if tab.Len() != 300 {
		t.Fatalf("uniform mode generated %d rows, want exactly 300", tab.Len())
	}
	seen := make(map[[3]int32]bool)
	for i := 0; i < tab.Len(); i++ {
		var k [3]int32
		copy(k[:], tab.Row(i))
		if seen[k] {
			t.Fatalf("duplicate cell %v", k)
		}
		seen[k] = true
	}
}

func TestGenerateClampsToCapacity(t *testing.T) {
	s := testSchema(t)
	// 16*4 = 64 distinct non-time combos, 8 months: at most 512 rows. A far
	// larger target must clamp rather than loop forever.
	tab, err := Generate(s, Params{Rows: 10_000, Density: 0.9, TimeDim: 1, Seed: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if tab.Len() > 512 {
		t.Fatalf("generated %d rows, capacity is 512", tab.Len())
	}
	if tab.Len() < 300 {
		t.Fatalf("generated %d rows, expected near capacity", tab.Len())
	}
	// Uniform mode errors out instead.
	if _, err := Generate(s, Params{Rows: 1_000_000, TimeDim: -1, Seed: 2}); err == nil {
		t.Fatalf("uniform overflow: expected error")
	}
}

func TestGenerateErrors(t *testing.T) {
	s := testSchema(t)
	if _, err := Generate(s, Params{Rows: 0, Density: 0.5, TimeDim: 1}); err == nil {
		t.Errorf("Rows=0: expected error")
	}
	if _, err := Generate(s, Params{Rows: 10, Density: 0, TimeDim: 1}); err == nil {
		t.Errorf("Density=0: expected error")
	}
	if _, err := Generate(s, Params{Rows: 10, Density: 1.5, TimeDim: 1}); err == nil {
		t.Errorf("Density>1: expected error")
	}
	if _, err := Generate(s, Params{Rows: 10, Density: 0.5, TimeDim: 7}); err == nil {
		t.Errorf("TimeDim out of range: expected error")
	}
}
