package schema

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func twoLevelDim(t *testing.T) *Dimension {
	t.Helper()
	d, err := NewDimension("Time", []HierarchySpec{
		{Name: "Year", Card: 2},
		{Name: "Quarter", Card: 8},
		{Name: "Month", Card: 24},
	})
	if err != nil {
		t.Fatalf("NewDimension: %v", err)
	}
	return d
}

func TestDimensionBasics(t *testing.T) {
	d := twoLevelDim(t)
	if got := d.Hierarchy(); got != 3 {
		t.Fatalf("Hierarchy = %d, want 3", got)
	}
	if got := d.Card(0); got != 1 {
		t.Fatalf("Card(0) = %d, want 1", got)
	}
	if got := d.Card(3); got != 24 {
		t.Fatalf("Card(3) = %d, want 24", got)
	}
	if got := d.LevelName(0); got != "ALL" {
		t.Fatalf("LevelName(0) = %q, want ALL", got)
	}
	if l, ok := d.LevelByName("Quarter"); !ok || l != 2 {
		t.Fatalf("LevelByName(Quarter) = %d,%v, want 2,true", l, ok)
	}
	if _, ok := d.LevelByName("Week"); ok {
		t.Fatalf("LevelByName(Week) should not resolve")
	}
}

func TestDimensionParentAncestor(t *testing.T) {
	d := twoLevelDim(t)
	// 24 months, fanout 3 into 8 quarters, fanout 4 into 2 years.
	cases := []struct {
		from, to int
		m, want  int32
	}{
		{3, 2, 0, 0},
		{3, 2, 5, 1},
		{3, 2, 23, 7},
		{3, 1, 11, 0},
		{3, 1, 12, 1},
		{2, 1, 3, 0},
		{2, 1, 4, 1},
		{3, 0, 17, 0},
		{1, 0, 1, 0},
		{3, 3, 9, 9},
	}
	for _, c := range cases {
		if got := d.Ancestor(c.from, c.to, c.m); got != c.want {
			t.Errorf("Ancestor(%d,%d,%d) = %d, want %d", c.from, c.to, c.m, got, c.want)
		}
	}
}

func TestDimensionChildren(t *testing.T) {
	d := twoLevelDim(t)
	lo, hi := d.Children(1, 1) // year 1 -> quarters 4..8
	if lo != 4 || hi != 8 {
		t.Fatalf("Children(1,1) = [%d,%d), want [4,8)", lo, hi)
	}
	lo, hi = d.Children(0, 0) // ALL -> both years
	if lo != 0 || hi != 2 {
		t.Fatalf("Children(0,0) = [%d,%d), want [0,2)", lo, hi)
	}
	lo, hi = d.DescendantRange(1, 3, 1) // year 1 -> months 12..24
	if lo != 12 || hi != 24 {
		t.Fatalf("DescendantRange(1,3,1) = [%d,%d), want [12,24)", lo, hi)
	}
	lo, hi = d.DescendantRange(2, 2, 5)
	if lo != 5 || hi != 6 {
		t.Fatalf("DescendantRange(2,2,5) = [%d,%d), want [5,6)", lo, hi)
	}
}

func TestDimensionExplicitParents(t *testing.T) {
	// Non-uniform hierarchy: 3 groups with 1, 2 and 3 members.
	d, err := NewDimension("Product", []HierarchySpec{
		{Name: "Group", Card: 3},
		{Name: "Code", Card: 6, ParentOf: []int32{0, 1, 1, 2, 2, 2}},
	})
	if err != nil {
		t.Fatalf("NewDimension: %v", err)
	}
	if got := d.Parent(2, 4); got != 2 {
		t.Fatalf("Parent(2,4) = %d, want 2", got)
	}
	lo, hi := d.Children(1, 2)
	if lo != 3 || hi != 6 {
		t.Fatalf("Children(1,2) = [%d,%d), want [3,6)", lo, hi)
	}
	lo, hi = d.Children(1, 0)
	if lo != 0 || hi != 1 {
		t.Fatalf("Children(1,0) = [%d,%d), want [0,1)", lo, hi)
	}
}

func TestDimensionErrors(t *testing.T) {
	cases := []struct {
		name   string
		levels []HierarchySpec
	}{
		{"empty levels", nil},
		{"zero card", []HierarchySpec{{Name: "L", Card: 0}}},
		{"unnamed level", []HierarchySpec{{Card: 4}}},
		{"shrinking card", []HierarchySpec{{Name: "A", Card: 4}, {Name: "B", Card: 2}}},
		{"non-divisible uniform", []HierarchySpec{{Name: "A", Card: 3}, {Name: "B", Card: 7}}},
		{"parent out of range", []HierarchySpec{{Name: "A", Card: 2}, {Name: "B", Card: 2, ParentOf: []int32{0, 5}}}},
		{"non-monotone parents", []HierarchySpec{{Name: "A", Card: 2}, {Name: "B", Card: 4, ParentOf: []int32{0, 1, 0, 1}}}},
		{"non-surjective parents", []HierarchySpec{{Name: "A", Card: 2}, {Name: "B", Card: 2, ParentOf: []int32{0, 0}}}},
		{"wrong parent len", []HierarchySpec{{Name: "A", Card: 2}, {Name: "B", Card: 4, ParentOf: []int32{0, 1}}}},
	}
	for _, c := range cases {
		if _, err := NewDimension("D", c.levels); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := NewDimension("", []HierarchySpec{{Name: "A", Card: 1}}); err == nil {
		t.Errorf("empty dimension name: expected error")
	}
}

func TestSchemaBasics(t *testing.T) {
	time := twoLevelDim(t)
	chn := MustNewDimension("Channel", []HierarchySpec{{Name: "Base", Card: 10}})
	s, err := New("UnitSales", time, chn)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.NumDims() != 2 {
		t.Fatalf("NumDims = %d, want 2", s.NumDims())
	}
	if got := s.Measure(); got != "UnitSales" {
		t.Fatalf("Measure = %q", got)
	}
	if i, ok := s.DimByName("Channel"); !ok || i != 1 {
		t.Fatalf("DimByName(Channel) = %d,%v", i, ok)
	}
	hs := s.HierarchySizes()
	if len(hs) != 2 || hs[0] != 3 || hs[1] != 1 {
		t.Fatalf("HierarchySizes = %v, want [3 1]", hs)
	}
	if err := s.CheckLevel([]int{3, 1}); err != nil {
		t.Fatalf("CheckLevel(base): %v", err)
	}
	if err := s.CheckLevel([]int{4, 0}); err == nil {
		t.Fatalf("CheckLevel out of range: expected error")
	}
	if err := s.CheckLevel([]int{0}); err == nil {
		t.Fatalf("CheckLevel short vector: expected error")
	}
	want := "(Time:Month, Channel:ALL)"
	if got := s.LevelString([]int{3, 0}); got != want {
		t.Fatalf("LevelString = %q, want %q", got, want)
	}
}

func TestSchemaErrors(t *testing.T) {
	d := twoLevelDim(t)
	if _, err := New("", d); err == nil {
		t.Errorf("empty measure: expected error")
	}
	if _, err := New("M"); err == nil {
		t.Errorf("no dimensions: expected error")
	}
	if _, err := New("M", d, d); err == nil {
		t.Errorf("duplicate dimension: expected error")
	}
	if _, err := New("M", nil); err == nil {
		t.Errorf("nil dimension: expected error")
	}
}

// randomDim builds a random valid dimension from a seed; shared with
// property tests in other packages through the same construction idea.
func randomDim(rng *rand.Rand, maxLevels, maxFanout int) *Dimension {
	nLevels := 1 + rng.Intn(maxLevels)
	specs := make([]HierarchySpec, nLevels)
	card := 1
	for i := range specs {
		// Random fanout per parent, explicit parent map.
		parents := make([]int32, 0, card*maxFanout)
		for p := 0; p < card; p++ {
			f := 1 + rng.Intn(maxFanout)
			for j := 0; j < f; j++ {
				parents = append(parents, int32(p))
			}
		}
		card = len(parents)
		specs[i] = HierarchySpec{Name: string(rune('A' + i)), Card: card, ParentOf: parents}
	}
	d, err := NewDimension("R", specs)
	if err != nil {
		panic(err)
	}
	return d
}

// TestAncestorDescendantRoundTrip checks on random hierarchies that every
// member's descendant range at a deeper level maps back to that member via
// Ancestor.
func TestAncestorDescendantRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDim(rng, 4, 4)
		h := d.Hierarchy()
		for from := 0; from <= h; from++ {
			for to := from; to <= h; to++ {
				for m := int32(0); int(m) < d.Card(from); m++ {
					lo, hi := d.DescendantRange(from, to, m)
					if lo >= hi {
						return false
					}
					for c := lo; c < hi; c++ {
						if d.Ancestor(to, from, c) != m {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDescendantRangesPartition checks that sibling descendant ranges tile
// the deeper level exactly.
func TestDescendantRangesPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDim(rng, 4, 4)
		h := d.Hierarchy()
		for from := 0; from < h; from++ {
			to := h
			next := int32(0)
			for m := int32(0); int(m) < d.Card(from); m++ {
				lo, hi := d.DescendantRange(from, to, m)
				if lo != next {
					return false
				}
				next = hi
			}
			if int(next) != d.Card(to) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMemberName(t *testing.T) {
	d := twoLevelDim(t)
	if got := d.MemberName(0, 0); got != "Time:ALL" {
		t.Fatalf("MemberName(0,0) = %q", got)
	}
	if got := d.MemberName(3, 7); got != "Time:Month#7" {
		t.Fatalf("MemberName(3,7) = %q", got)
	}
}
