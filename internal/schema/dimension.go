// Package schema models multidimensional OLAP schemas: dimensions with
// aggregation hierarchies and the member-level mappings between hierarchy
// levels.
//
// Level numbering follows the paper ("Aggregate Aware Caching for
// Multi-Dimensional Queries", Deshpande & Naughton, EDBT 2000): a dimension
// with hierarchy size h has levels 0..h, where level h is the most detailed
// (base) level and level 0 is ALL — the dimension aggregated away to a single
// member.
package schema

import "fmt"

// Dimension is one dimension of a multidimensional schema together with its
// aggregation hierarchy. Members at every level are identified by dense
// integer ids in [0, Card(level)). Members are hierarchically ordered: all
// children of one parent occupy a contiguous id range, and parent ids are
// non-decreasing in child id. This ordering is what makes range-based
// chunking closed under aggregation (see package chunk).
type Dimension struct {
	name string
	// levelNames[l] names level l; levelNames[0] == "ALL".
	levelNames []string
	// card[l] is the number of members at level l; card[0] == 1.
	card []int
	// parentOf[l][m] is the member id at level l-1 of member m at level l.
	// parentOf[0] is nil.
	parentOf [][]int32
	// firstChild[l][p] is the smallest member id at level l+1 whose parent is
	// p; has Card(l)+1 entries so firstChild[l][p+1] bounds p's child range.
	// firstChild[h] is nil.
	firstChild [][]int32
}

// HierarchySpec describes one hierarchy level of a dimension when building it
// with NewDimension. Levels are listed from most aggregated (just below ALL)
// to most detailed.
type HierarchySpec struct {
	Name string
	// Card is the number of members at this level.
	Card int
	// ParentOf optionally maps each member id to its parent id at the level
	// above. If nil, members are distributed uniformly over the parents
	// (Card must then be a multiple of the parent level's cardinality).
	ParentOf []int32
}

// NewDimension builds a dimension named name from hierarchy levels given from
// most aggregated to most detailed. The implicit ALL level (one member) is
// added at level 0. It returns an error if a level's cardinality is invalid,
// a parent mapping is out of range, not monotone non-decreasing, or not
// surjective, or if a nil mapping is requested with a non-divisible
// cardinality.
func NewDimension(name string, levels []HierarchySpec) (*Dimension, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: dimension name must not be empty")
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("schema: dimension %q needs at least one hierarchy level", name)
	}
	d := &Dimension{
		name:       name,
		levelNames: make([]string, 1, len(levels)+1),
		card:       make([]int, 1, len(levels)+1),
		parentOf:   make([][]int32, 1, len(levels)+1),
	}
	d.levelNames[0] = "ALL"
	d.card[0] = 1
	for i, spec := range levels {
		l := i + 1 // level number being added
		if spec.Name == "" {
			return nil, fmt.Errorf("schema: dimension %q level %d has no name", name, l)
		}
		if spec.Card <= 0 {
			return nil, fmt.Errorf("schema: dimension %q level %q has cardinality %d", name, spec.Name, spec.Card)
		}
		parentCard := d.card[l-1]
		if spec.Card < parentCard {
			return nil, fmt.Errorf("schema: dimension %q level %q cardinality %d is below its parent level's %d",
				name, spec.Name, spec.Card, parentCard)
		}
		parents := spec.ParentOf
		if parents == nil {
			if spec.Card%parentCard != 0 {
				return nil, fmt.Errorf("schema: dimension %q level %q cardinality %d is not a multiple of %d; supply an explicit ParentOf",
					name, spec.Name, spec.Card, parentCard)
			}
			fanout := spec.Card / parentCard
			parents = make([]int32, spec.Card)
			for m := range parents {
				parents[m] = int32(m / fanout)
			}
		} else {
			if len(parents) != spec.Card {
				return nil, fmt.Errorf("schema: dimension %q level %q: ParentOf has %d entries, want %d",
					name, spec.Name, len(parents), spec.Card)
			}
			parents = append([]int32(nil), parents...) // defensive copy
			if err := checkParentMap(parents, parentCard); err != nil {
				return nil, fmt.Errorf("schema: dimension %q level %q: %w", name, spec.Name, err)
			}
		}
		d.levelNames = append(d.levelNames, spec.Name)
		d.card = append(d.card, spec.Card)
		d.parentOf = append(d.parentOf, parents)
	}
	d.buildFirstChild()
	return d, nil
}

// MustNewDimension is NewDimension but panics on error. Intended for
// statically-known schemas such as the APB-1 presets.
func MustNewDimension(name string, levels []HierarchySpec) *Dimension {
	d, err := NewDimension(name, levels)
	if err != nil {
		panic(err)
	}
	return d
}

// checkParentMap validates that parents is a hierarchically ordered and
// surjective mapping onto [0, parentCard).
func checkParentMap(parents []int32, parentCard int) error {
	prev := int32(0)
	for m, p := range parents {
		if p < 0 || int(p) >= parentCard {
			return fmt.Errorf("member %d has parent %d outside [0,%d)", m, p, parentCard)
		}
		if p < prev {
			return fmt.Errorf("member %d has parent %d < previous parent %d; members must be hierarchically ordered", m, p, prev)
		}
		if p > prev+1 {
			return fmt.Errorf("parent %d is skipped; parents must be surjective", prev+1)
		}
		prev = p
	}
	if int(prev) != parentCard-1 {
		return fmt.Errorf("parent %d has no members", parentCard-1)
	}
	return nil
}

func (d *Dimension) buildFirstChild() {
	h := d.Hierarchy()
	d.firstChild = make([][]int32, h+1)
	for l := 0; l < h; l++ {
		pc := d.card[l]
		fc := make([]int32, pc+1)
		parents := d.parentOf[l+1]
		// parents is non-decreasing; record where each parent's run starts.
		next := int32(0)
		for m := 0; m < len(parents); m++ {
			for next <= parents[m] {
				fc[next] = int32(m)
				next++
			}
		}
		for int(next) <= pc {
			fc[next] = int32(len(parents))
			next++
		}
		d.firstChild[l] = fc
	}
}

// Name returns the dimension's name.
func (d *Dimension) Name() string { return d.name }

// Hierarchy returns the hierarchy size h: the number of levels below ALL.
// Valid levels are 0..h.
func (d *Dimension) Hierarchy() int { return len(d.card) - 1 }

// Card returns the number of members at level l.
func (d *Dimension) Card(l int) int { return d.card[l] }

// LevelName returns the name of level l ("ALL" for level 0).
func (d *Dimension) LevelName(l int) string { return d.levelNames[l] }

// LevelByName returns the level number with the given name.
func (d *Dimension) LevelByName(name string) (int, bool) {
	for l, n := range d.levelNames {
		if n == name {
			return l, true
		}
	}
	return 0, false
}

// Parent returns the parent member at level l-1 of member m at level l.
// l must be ≥ 1.
func (d *Dimension) Parent(l int, m int32) int32 {
	if l == 1 {
		return 0 // ALL
	}
	return d.parentOf[l][m]
}

// Ancestor returns the ancestor at level to of member m at level from.
// It requires to ≤ from.
func (d *Dimension) Ancestor(from, to int, m int32) int32 {
	for l := from; l > to; l-- {
		m = d.Parent(l, m)
	}
	return m
}

// Children returns the half-open child id range [lo, hi) at level l+1 of
// member p at level l. l must be < Hierarchy().
func (d *Dimension) Children(l int, p int32) (lo, hi int32) {
	fc := d.firstChild[l]
	return fc[p], fc[p+1]
}

// DescendantRange returns the half-open id range at level to covered by
// member m at level from. It requires from ≤ to.
func (d *Dimension) DescendantRange(from, to int, m int32) (lo, hi int32) {
	lo, hi = m, m+1
	for l := from; l < to; l++ {
		lo, _ = d.Children(l, lo)
		_, hi = d.Children(l, hi-1)
	}
	return lo, hi
}

// MemberName returns a synthetic display name for member m at level l, such
// as "Product:Class#17".
func (d *Dimension) MemberName(l int, m int32) string {
	if l == 0 {
		return d.name + ":ALL"
	}
	return fmt.Sprintf("%s:%s#%d", d.name, d.levelNames[l], m)
}
