package schema

import (
	"fmt"
	"strings"
)

// Schema is an ordered collection of dimensions plus a named measure. All
// group-by levels, chunk grids and fact tuples reference dimensions by their
// position in the schema.
type Schema struct {
	dims    []*Dimension
	measure string
	byName  map[string]int
}

// New builds a schema over the given dimensions. measure names the single
// additive measure (e.g. "UnitSales"). Dimension names must be unique.
func New(measure string, dims ...*Dimension) (*Schema, error) {
	if measure == "" {
		return nil, fmt.Errorf("schema: measure name must not be empty")
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("schema: at least one dimension is required")
	}
	s := &Schema{dims: dims, measure: measure, byName: make(map[string]int, len(dims))}
	for i, d := range dims {
		if d == nil {
			return nil, fmt.Errorf("schema: dimension %d is nil", i)
		}
		if _, dup := s.byName[d.Name()]; dup {
			return nil, fmt.Errorf("schema: duplicate dimension name %q", d.Name())
		}
		s.byName[d.Name()] = i
	}
	return s, nil
}

// MustNew is New but panics on error.
func MustNew(measure string, dims ...*Dimension) *Schema {
	s, err := New(measure, dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumDims returns the number of dimensions.
func (s *Schema) NumDims() int { return len(s.dims) }

// Dim returns dimension d.
func (s *Schema) Dim(d int) *Dimension { return s.dims[d] }

// DimByName returns the index of the dimension with the given name.
func (s *Schema) DimByName(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// Measure returns the measure name.
func (s *Schema) Measure() string { return s.measure }

// HierarchySizes returns the per-dimension hierarchy sizes h_d. The group-by
// lattice is the cross product of levels 0..h_d.
func (s *Schema) HierarchySizes() []int {
	hs := make([]int, len(s.dims))
	for i, d := range s.dims {
		hs[i] = d.Hierarchy()
	}
	return hs
}

// BaseLevel returns the most detailed level vector (h_1, …, h_n).
func (s *Schema) BaseLevel() []int { return s.HierarchySizes() }

// LevelString formats a level vector like "(Product:Class, Time:Month,
// Channel:ALL)" for diagnostics.
func (s *Schema) LevelString(level []int) string {
	parts := make([]string, len(level))
	for d, l := range level {
		parts[d] = s.dims[d].Name() + ":" + s.dims[d].LevelName(l)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// CheckLevel validates that level is a well-formed level vector for this
// schema.
func (s *Schema) CheckLevel(level []int) error {
	if len(level) != len(s.dims) {
		return fmt.Errorf("schema: level vector has %d entries, want %d", len(level), len(s.dims))
	}
	for d, l := range level {
		if l < 0 || l > s.dims[d].Hierarchy() {
			return fmt.Errorf("schema: dimension %s level %d outside [0,%d]", s.dims[d].Name(), l, s.dims[d].Hierarchy())
		}
	}
	return nil
}
