// Package sizer estimates (or computes exactly) the number of materialized
// cells of every chunk at every group-by. Sizes drive the linear aggregation
// cost model of §5 of the paper: the cost of computing a chunk is the number
// of tuples scanned, and the tuples scanned when aggregating a chunk is that
// chunk's cell count.
package sizer

import (
	"math"
	"sync"

	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
)

// Sizer reports the expected number of materialized cells of a chunk. The
// value is the size of the chunk's result when aggregated — the tuples that
// a consumer must scan.
type Sizer interface {
	// ChunkCells returns the (estimated or exact) cell count of chunk num of
	// group-by gb. It always returns at least 1 for a non-empty dataset so
	// path costs stay strictly positive.
	ChunkCells(gb lattice.ID, num int) int64
	// GroupByCells returns the cell count of the whole group-by.
	GroupByCells(gb lattice.ID) int64
}

// Estimate is a probabilistic Sizer. It assumes base tuples are spread
// uniformly over the base cross product and applies the standard
// distinct-count ("birthday") estimate: a chunk with dense capacity C
// receiving n tuples materializes C·(1−(1−1/C)^n) cells.
type Estimate struct {
	grid *chunk.Grid
	rows int64
	// baseCells = total dense capacity of the base cross product.
	baseCells float64
	// cache[gb][num]; built lazily per group-by. One Estimate may be shared
	// by every engine of an in-process cluster, so the memo is guarded.
	mu    sync.RWMutex
	cache map[lattice.ID][]int64
	gbTot map[lattice.ID]int64
}

// NewEstimate returns an Estimate for rows base tuples over grid.
func NewEstimate(grid *chunk.Grid, rows int64) *Estimate {
	sch := grid.Schema()
	bc := 1.0
	for d := 0; d < sch.NumDims(); d++ {
		bc *= float64(sch.Dim(d).Card(sch.Dim(d).Hierarchy()))
	}
	return &Estimate{
		grid:      grid,
		rows:      rows,
		baseCells: bc,
		cache:     make(map[lattice.ID][]int64),
		gbTot:     make(map[lattice.ID]int64),
	}
}

// ChunkCells implements Sizer.
func (e *Estimate) ChunkCells(gb lattice.ID, num int) int64 {
	e.mu.RLock()
	sizes, ok := e.cache[gb]
	e.mu.RUnlock()
	if !ok {
		sizes = e.buildGroupBy(gb)
	}
	return sizes[num]
}

// GroupByCells implements Sizer.
func (e *Estimate) GroupByCells(gb lattice.ID) int64 {
	e.mu.RLock()
	tot, ok := e.gbTot[gb]
	e.mu.RUnlock()
	if ok {
		return tot
	}
	e.buildGroupBy(gb)
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.gbTot[gb]
}

func (e *Estimate) buildGroupBy(gb lattice.ID) []int64 {
	n := e.grid.NumChunks(gb)
	sizes := make([]int64, n)
	var tot int64
	for num := 0; num < n; num++ {
		sizes[num] = e.estimateChunk(gb, num)
		tot += sizes[num]
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Two builders may race to the lock; the first stored result wins so
	// callers never observe the memo flapping between equal slices.
	if prev, ok := e.cache[gb]; ok {
		return prev
	}
	e.cache[gb] = sizes
	e.gbTot[gb] = tot
	return sizes
}

func (e *Estimate) estimateChunk(gb lattice.ID, num int) int64 {
	g := e.grid
	lat := g.Lattice()
	sch := g.Schema()
	lv := lat.Level(gb)
	var cbuf [16]int32
	coords := g.Coords(gb, num, cbuf[:0])
	// Dense capacity of the chunk and the fraction of base tuples that land
	// in its region.
	capacity := 1.0
	frac := 1.0
	for d, c := range coords {
		r := g.MemberRange(d, lv[d], c)
		capacity *= float64(r.Hi - r.Lo)
		dim := sch.Dim(d)
		blo, bhi := dim.DescendantRange(lv[d], dim.Hierarchy(), r.Lo)
		_, bhi = dim.DescendantRange(lv[d], dim.Hierarchy(), r.Hi-1)
		frac *= float64(bhi-blo) / float64(dim.Card(dim.Hierarchy()))
	}
	n := float64(e.rows) * frac
	cells := distinct(capacity, n)
	if cells < 1 {
		cells = 1
	}
	return int64(math.Round(cells))
}

// distinct returns the expected number of distinct cells when n tuples are
// thrown uniformly into c slots.
func distinct(c, n float64) float64 {
	if c <= 1 {
		return 1
	}
	if n <= 0 {
		return 0
	}
	// c * (1 - (1-1/c)^n), computed stably.
	return c * -math.Expm1(n*math.Log1p(-1/c))
}

// Exact is a Sizer holding exact per-chunk cell counts, computed from the
// actual dataset by package backend or by Compute. It is deterministic and
// intended for small/medium scales and for oracle checks in tests.
type Exact struct {
	sizes map[lattice.ID][]int64
	tot   map[lattice.ID]int64
}

// NewExact wraps precomputed per-chunk cell counts.
func NewExact(sizes map[lattice.ID][]int64) *Exact {
	t := make(map[lattice.ID]int64, len(sizes))
	for gb, s := range sizes {
		var sum int64
		for _, v := range s {
			sum += v
		}
		t[gb] = sum
	}
	return &Exact{sizes: sizes, tot: t}
}

// ChunkCells implements Sizer.
func (x *Exact) ChunkCells(gb lattice.ID, num int) int64 {
	v := x.sizes[gb][num]
	if v < 1 {
		return 1
	}
	return v
}

// GroupByCells implements Sizer.
func (x *Exact) GroupByCells(gb lattice.ID) int64 { return x.tot[gb] }
