package sizer

import (
	"math"
	"testing"

	"aggcache/internal/apb"
	"aggcache/internal/chunk"
	"aggcache/internal/data"
	"aggcache/internal/lattice"
	"aggcache/internal/schema"
)

func tinyGrid(t testing.TB) (*chunk.Grid, *data.Table) {
	t.Helper()
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(11)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g, tab
}

// bruteSizes computes exact per-chunk cell counts by direct aggregation of
// the fact table for every group-by.
func bruteSizes(g *chunk.Grid, tab *data.Table) map[lattice.ID][]int64 {
	lat := g.Lattice()
	sch := g.Schema()
	nd := sch.NumDims()
	out := make(map[lattice.ID][]int64)
	for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
		lv := lat.Level(id)
		cells := make(map[string]bool)
		cnt := make([]int64, g.NumChunks(id))
		members := make([]int32, nd)
		for i := 0; i < tab.Len(); i++ {
			row := tab.Row(i)
			for d := 0; d < nd; d++ {
				dim := sch.Dim(d)
				members[d] = dim.Ancestor(dim.Hierarchy(), lv[d], row[d])
			}
			k := string(encodeMembers(members))
			if cells[k] {
				continue
			}
			cells[k] = true
			num, _ := g.ChunkOfCell(id, members)
			cnt[num]++
		}
		out[id] = cnt
	}
	return out
}

func encodeMembers(m []int32) []byte {
	b := make([]byte, 0, len(m)*4)
	for _, v := range m {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return b
}

func TestComputeExactMatchesBruteForce(t *testing.T) {
	g, tab := tinyGrid(t)
	want := bruteSizes(g, tab)
	got := ComputeExact(g, tab)
	lat := g.Lattice()
	for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
		var wantTot int64
		for num, w := range want[id] {
			wantTot += w
			gv := got.sizes[id][num]
			if gv != w {
				t.Fatalf("gb %s chunk %d: exact %d, brute force %d", lat.LevelTupleString(id), num, gv, w)
			}
		}
		if got.GroupByCells(id) != wantTot {
			t.Fatalf("gb %s: GroupByCells %d, want %d", lat.LevelTupleString(id), got.GroupByCells(id), wantTot)
		}
	}
	// The base group-by must have exactly one cell per row (cells are
	// distinct by generation).
	if got.GroupByCells(lat.Base()) != int64(tab.Len()) {
		t.Fatalf("base cells %d, want %d", got.GroupByCells(lat.Base()), tab.Len())
	}
	// The fully aggregated group-by has exactly one cell.
	if got.GroupByCells(lat.Top()) != 1 {
		t.Fatalf("top cells %d, want 1", got.GroupByCells(lat.Top()))
	}
}

func TestExactClampsToOne(t *testing.T) {
	x := NewExact(map[lattice.ID][]int64{0: {0, 5}})
	if got := x.ChunkCells(0, 0); got != 1 {
		t.Fatalf("empty chunk clamp = %d, want 1", got)
	}
	if got := x.ChunkCells(0, 1); got != 5 {
		t.Fatalf("ChunkCells = %d, want 5", got)
	}
}

func TestEstimateReasonable(t *testing.T) {
	g, tab := tinyGrid(t)
	est := NewEstimate(g, int64(tab.Len()))
	exact := ComputeExact(g, tab)
	lat := g.Lattice()
	// The estimate should be within a factor of 3 of the truth at the
	// group-by granularity for this uniform-ish dataset.
	for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
		e := float64(est.GroupByCells(id))
		x := float64(exact.GroupByCells(id))
		if e < x/3 || e > x*3 {
			t.Fatalf("gb %s: estimate %v vs exact %v", lat.LevelTupleString(id), e, x)
		}
	}
	// Per-chunk sizes are positive and sum to the group-by size.
	for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
		var sum int64
		for num := 0; num < g.NumChunks(id); num++ {
			v := est.ChunkCells(id, num)
			if v < 1 {
				t.Fatalf("gb %s chunk %d: estimate %d < 1", lat.LevelTupleString(id), num, v)
			}
			sum += v
		}
		if sum != est.GroupByCells(id) {
			t.Fatalf("gb %s: chunk sizes sum %d != group-by %d", lat.LevelTupleString(id), sum, est.GroupByCells(id))
		}
	}
}

func TestEstimateMonotoneInLattice(t *testing.T) {
	g, tab := tinyGrid(t)
	est := NewEstimate(g, int64(tab.Len()))
	lat := g.Lattice()
	// A group-by can never have more cells than a parent (aggregation only
	// merges); the estimator should respect that.
	for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
		for _, p := range lat.Parents(id) {
			if est.GroupByCells(id) > est.GroupByCells(p) {
				t.Fatalf("estimate not monotone: %s (%d) > parent %s (%d)",
					lat.LevelTupleString(id), est.GroupByCells(id),
					lat.LevelTupleString(p), est.GroupByCells(p))
			}
		}
	}
}

func TestDistinct(t *testing.T) {
	if got := distinct(1, 100); got != 1 {
		t.Fatalf("distinct(1,100) = %v", got)
	}
	if got := distinct(100, 0); got != 0 {
		t.Fatalf("distinct(100,0) = %v", got)
	}
	// n >> c saturates at c.
	if got := distinct(10, 1e6); math.Abs(got-10) > 1e-6 {
		t.Fatalf("distinct(10,1e6) = %v", got)
	}
	// n << c approaches n.
	if got := distinct(1e12, 10); math.Abs(got-10) > 0.01 {
		t.Fatalf("distinct(1e12,10) = %v", got)
	}
}

func tinySchemaDim(t *testing.T) *schema.Schema {
	t.Helper()
	d := schema.MustNewDimension("D", []schema.HierarchySpec{{Name: "a", Card: 4}})
	return schema.MustNew("M", d)
}

func TestEstimateSingleDim(t *testing.T) {
	s := tinySchemaDim(t)
	g := chunk.MustNewGrid(s, [][]int{{1, 2}})
	est := NewEstimate(g, 100)
	lat := g.Lattice()
	base := lat.Base()
	// 100 rows into 4 slots: every slot occupied, so each 2-member chunk has
	// ~2 cells.
	if got := est.ChunkCells(base, 0); got != 2 {
		t.Fatalf("ChunkCells = %d, want 2", got)
	}
	if got := est.GroupByCells(lat.Top()); got != 1 {
		t.Fatalf("top estimate = %d, want 1", got)
	}
}
