package sizer

import (
	"aggcache/internal/chunk"
	"aggcache/internal/data"
	"aggcache/internal/lattice"
)

// ComputeExact computes the exact per-chunk cell counts of every group-by of
// the grid for the given fact table, by aggregating each group-by from its
// smallest already-computed lattice parent (the classic smallest-parent cube
// traversal of [AAD+96]). It is meant for small and medium scales and for
// oracle checks; use Estimate for large datasets.
func ComputeExact(g *chunk.Grid, tab *data.Table) *Exact {
	lat := g.Lattice()
	sch := g.Schema()
	nd := sch.NumDims()
	n := lat.NumNodes()

	// Per-group-by global cell encodings: mixed-radix over the member
	// cardinalities at the group-by's levels.
	strides := make([][]uint64, n)
	cards := make([][]uint64, n)
	for id := 0; id < n; id++ {
		lv := lat.Level(lattice.ID(id))
		st := make([]uint64, nd)
		cd := make([]uint64, nd)
		s := uint64(1)
		for d := nd - 1; d >= 0; d-- {
			st[d] = s
			cd[d] = uint64(sch.Dim(d).Card(lv[d]))
			s *= cd[d]
		}
		strides[id] = st
		cards[id] = cd
	}
	encode := func(id lattice.ID, members []int32) uint64 {
		k := uint64(0)
		for d, m := range members {
			k += uint64(m) * strides[id][d]
		}
		return k
	}
	decode := func(id lattice.ID, key uint64, dst []int32) {
		for d := 0; d < nd; d++ {
			dst[d] = int32(key / strides[id][d] % cards[id][d])
		}
	}

	sizes := make(map[lattice.ID][]int64, n)
	countChunks := func(id lattice.ID, set map[uint64]struct{}) {
		cnt := make([]int64, g.NumChunks(id))
		members := make([]int32, nd)
		for key := range set {
			decode(id, key, members)
			num, _ := g.ChunkOfCell(id, members)
			cnt[num]++
		}
		sizes[id] = cnt
	}

	cells := make(map[lattice.ID]map[uint64]struct{}, n)
	refs := make([]int, n)
	for id := 0; id < n; id++ {
		refs[id] = len(lat.Children(lattice.ID(id)))
	}

	// Base group-by from the fact table.
	base := lat.Base()
	bs := make(map[uint64]struct{}, tab.Len())
	for i := 0; i < tab.Len(); i++ {
		bs[encode(base, tab.Row(i))] = struct{}{}
	}
	cells[base] = bs
	countChunks(base, bs)

	members := make([]int32, nd)
	for _, id := range lat.TopoDetailedFirst() {
		if id == base {
			continue
		}
		// Smallest computed parent.
		var best lattice.ID = -1
		for _, p := range lat.Parents(id) {
			if best < 0 || len(cells[p]) < len(cells[best]) {
				best = p
			}
		}
		d, _ := lat.StepDim(id, best)
		pl := lat.LevelAt(best, d)
		dim := sch.Dim(d)
		set := make(map[uint64]struct{}, len(cells[best])/2+1)
		for key := range cells[best] {
			decode(best, key, members)
			members[d] = dim.Parent(pl, members[d])
			set[encode(id, members)] = struct{}{}
		}
		cells[id] = set
		countChunks(id, set)
		// Release parent sets no longer needed.
		for _, p := range lat.Parents(id) {
			refs[p]--
			if refs[p] == 0 {
				delete(cells, p)
			}
		}
	}
	return NewExact(sizes)
}
