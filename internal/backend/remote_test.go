package backend

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// quickPolicy keeps resilience tests fast: small backoffs, few attempts.
func quickPolicy(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
		DialTimeout: time.Second,
		IOTimeout:   2 * time.Second,
		Seed:        7,
	}
}

func TestRemoteRedialsAfterServerRestart(t *testing.T) {
	e, _ := tinyEngine(t, LatencyModel{})
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	remote, err := DialPolicy(addr, quickPolicy(8))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer remote.Close()

	lat := e.Grid().Lattice()
	if _, _, err := remote.ComputeChunks(context.Background(), lat.Top(), []int{0}); err != nil {
		t.Fatalf("first request: %v", err)
	}

	// Kill the server out from under the client, restart on the same
	// address, and require the next request to heal transparently.
	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	srv2 := NewServer(e)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	defer srv2.Close()

	got, _, err := remote.ComputeChunks(context.Background(), lat.Top(), []int{0})
	if err != nil {
		t.Fatalf("request across restart: %v", err)
	}
	if len(got) != 1 || got[0].Cells() == 0 {
		t.Fatalf("bad chunks across restart: %v", got)
	}
}

func TestRemoteExhaustsRetriesToUnavailable(t *testing.T) {
	e, _ := tinyEngine(t, LatencyModel{})
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	remote, err := DialPolicy(addr, quickPolicy(3))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer remote.Close()
	srv.Close() // nothing listening any more

	start := time.Now()
	_, _, err = remote.ComputeChunks(context.Background(), e.Grid().Lattice().Top(), []int{0})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("dead backend error = %v, want ErrUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("retry budget took %v, policy should bound it tightly", elapsed)
	}
}

func TestRemotePermanentErrorNotRetried(t *testing.T) {
	e, _ := tinyEngine(t, LatencyModel{})
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	remote, err := DialPolicy(addr, quickPolicy(5))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer remote.Close()

	_, _, err = remote.ComputeChunks(context.Background(), 9999, []int{0})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("bad-request error = %v, want RemoteError", err)
	}
	if errors.Is(err, ErrUnavailable) {
		t.Fatalf("deterministic rejection misclassified as unavailability")
	}
}

func TestRemoteHonorsContextDeadline(t *testing.T) {
	// A listener that accepts and then never replies: the client's exchange
	// must end when the caller's deadline passes, not after IOTimeout.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	remote, err := DialPolicy(ln.Addr().String(), quickPolicy(4))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer remote.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = remote.ComputeChunks(ctx, 0, []int{0})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung server error = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}

func TestServerSurvivesMalformedFrame(t *testing.T) {
	e, _ := tinyEngine(t, LatencyModel{})
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	// A raw connection spewing garbage: the server must close it cleanly…
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	// Garbage that fails the frame header's magic check immediately, so the
	// reader drops the connection instead of waiting for more bytes.
	raw.Write([]byte("\x03\xff\xfe\xfd"))
	buf := make([]byte, 64)
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Fatalf("server answered a garbage frame instead of closing")
	}
	raw.Close()

	// …while healthy clients keep working.
	remote, err := DialPolicy(addr, quickPolicy(3))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer remote.Close()
	if _, _, err := remote.ComputeChunks(context.Background(), e.Grid().Lattice().Top(), []int{0}); err != nil {
		t.Fatalf("healthy client after garbage frame: %v", err)
	}
}

func TestServerRequestTimeoutRepliesTransient(t *testing.T) {
	// Simulated latency far above the server's per-request budget: the
	// server must reply an in-band transient error (and keep the connection)
	// rather than hang or tear down.
	e, _ := tinyEngine(t, LatencyModel{Connect: time.Second, Sleep: true})
	srv := NewServer(e)
	srv.SetTimeouts(Timeouts{Request: 20 * time.Millisecond, Write: time.Minute})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	remote, err := DialPolicy(addr, RetryPolicy{
		MaxAttempts: 1, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond,
		DialTimeout: time.Second, IOTimeout: 10 * time.Second, Seed: 1,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer remote.Close()

	_, _, err = remote.ComputeChunks(context.Background(), e.Grid().Lattice().Top(), []int{0})
	if err == nil {
		t.Fatalf("expected a server-side timeout error")
	}
	if !IsTransient(err) && !errors.Is(err, ErrUnavailable) {
		t.Fatalf("server timeout should classify as retryable/outage, got %v", err)
	}
}
