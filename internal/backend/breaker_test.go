package backend

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
)

// stubBackend is a scriptable Backend for breaker and fault tests.
type stubBackend struct {
	mu    sync.Mutex
	err   error
	calls int
	gate  chan struct{} // when non-nil, ComputeChunks blocks on it first
}

func (s *stubBackend) setErr(err error) {
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
}

func (s *stubBackend) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func (s *stubBackend) ComputeChunks(ctx context.Context, gb lattice.ID, nums []int) ([]*chunk.Chunk, Stats, error) {
	s.mu.Lock()
	s.calls++
	err := s.err
	gate := s.gate
	s.mu.Unlock()
	if gate != nil {
		<-gate
	}
	if err != nil {
		return nil, Stats{}, err
	}
	return make([]*chunk.Chunk, len(nums)), Stats{}, nil
}

func (s *stubBackend) EstimateScan(ctx context.Context, gb lattice.ID, nums []int) (int64, error) {
	s.mu.Lock()
	s.calls++
	err := s.err
	s.mu.Unlock()
	return 0, err
}

func (s *stubBackend) EstimateScans(ctx context.Context, gb lattice.ID, nums []int) ([]int64, error) {
	if _, err := s.EstimateScan(ctx, gb, nums); err != nil {
		return nil, err
	}
	return make([]int64, len(nums)), nil
}

func (s *stubBackend) Close() error { return nil }

// fakeClock drives the breaker's cooldown without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func breakerFixture(threshold int, cooldown time.Duration) (*Breaker, *stubBackend, *fakeClock) {
	stub := &stubBackend{}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(stub, BreakerConfig{FailureThreshold: threshold, Cooldown: cooldown, now: clk.now})
	return b, stub, clk
}

func TestBreakerOpensAfterThresholdAndFailsFast(t *testing.T) {
	b, stub, _ := breakerFixture(3, time.Second)
	stub.setErr(MarkTransient(errors.New("connection reset")))
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, err := b.ComputeChunks(ctx, 0, []int{0}); err == nil {
			t.Fatalf("call %d: expected error", i)
		}
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", got)
	}
	before := stub.callCount()
	_, _, err := b.ComputeChunks(ctx, 0, []int{0})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("open breaker error = %v, want ErrUnavailable", err)
	}
	if stub.callCount() != before {
		t.Fatalf("open breaker still reached the backend")
	}
}

func TestBreakerHalfOpenProbeClosesOnSuccess(t *testing.T) {
	b, stub, clk := breakerFixture(2, time.Second)
	stub.setErr(MarkTransient(errors.New("reset")))
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		b.ComputeChunks(ctx, 0, []int{0})
	}
	if b.State() != BreakerOpen {
		t.Fatalf("breaker did not open")
	}
	clk.advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("breaker did not go half-open after cooldown")
	}
	stub.setErr(nil) // backend recovered
	if _, _, err := b.ComputeChunks(ctx, 0, []int{0}); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, stub, clk := breakerFixture(2, time.Second)
	stub.setErr(MarkTransient(errors.New("reset")))
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		b.ComputeChunks(ctx, 0, []int{0})
	}
	clk.advance(time.Second)
	if _, _, err := b.ComputeChunks(ctx, 0, []int{0}); err == nil {
		t.Fatalf("probe against a down backend should fail")
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// And the cooldown restarted: still open, not half-open.
	clk.advance(time.Second / 2)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state mid-cooldown = %v, want open", got)
	}
}

func TestBreakerAdmitsOneProbeAtATime(t *testing.T) {
	b, stub, clk := breakerFixture(1, time.Second)
	stub.setErr(MarkTransient(errors.New("reset")))
	ctx := context.Background()
	b.ComputeChunks(ctx, 0, []int{0})
	clk.advance(time.Second)

	stub.setErr(nil)
	gate := make(chan struct{})
	stub.mu.Lock()
	stub.gate = gate
	stub.mu.Unlock()
	probeDone := make(chan error, 1)
	go func() {
		_, _, err := b.ComputeChunks(ctx, 0, []int{0})
		probeDone <- err
	}()
	// Wait for the probe to reach the backend, then try a second request:
	// it must fail fast, not become a second probe.
	for stub.callCount() == 1 {
		time.Sleep(time.Millisecond)
	}
	if _, _, err := b.ComputeChunks(ctx, 0, []int{0}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("second request during probe = %v, want ErrUnavailable", err)
	}
	close(gate)
	if err := <-probeDone; err != nil {
		t.Fatalf("probe: %v", err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("breaker did not close after probe")
	}
}

func TestBreakerIgnoresPermanentErrorsAndCancellation(t *testing.T) {
	b, stub, _ := breakerFixture(2, time.Second)
	ctx := context.Background()

	// Permanent per-request errors prove the backend is answering: they
	// reset the failure run and never trip the breaker.
	stub.setErr(&RemoteError{Msg: "bad group-by"})
	for i := 0; i < 10; i++ {
		b.ComputeChunks(ctx, 0, []int{0})
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("permanent errors tripped the breaker: %v", got)
	}

	// One outage failure, then a permanent answer: run resets.
	stub.setErr(MarkTransient(errors.New("reset")))
	b.ComputeChunks(ctx, 0, []int{0})
	stub.setErr(&RemoteError{Msg: "bad group-by"})
	b.ComputeChunks(ctx, 0, []int{0})
	stub.setErr(MarkTransient(errors.New("reset")))
	b.ComputeChunks(ctx, 0, []int{0})
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("non-consecutive failures tripped the breaker: %v", got)
	}

	// Caller cancellation is neutral: neither advances nor resets the run.
	stub.setErr(context.Canceled)
	b.ComputeChunks(ctx, 0, []int{0})
	stub.setErr(MarkTransient(errors.New("reset")))
	b.ComputeChunks(ctx, 0, []int{0})
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("run of 2 outages (with neutral cancel between) = %v, want open", got)
	}
}
