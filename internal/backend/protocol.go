package backend

import (
	"fmt"
	"time"

	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/wire"
)

// Frame types of the backend wire protocol (see DESIGN.md §11). A request
// names one group-by and a batch of chunk numbers; whether the server
// computes them or only estimates their scan cost is the frame type, so a
// Phase-2 partition with N missing chunks — or a Phase-1b batch of N cost
// probes — is one round trip either way.
const (
	frameCompute   uint8 = 0x01 // request: compute the listed chunks
	frameEstimate  uint8 = 0x02 // request: estimate per-chunk scan cost
	frameChunks    uint8 = 0x81 // response to frameCompute
	frameEstimates uint8 = 0x82 // response to frameEstimate
	frameError     uint8 = 0xE0 // response: in-band error (FlagTransient = retryable)
)

// encodeRequest appends a compute/estimate request payload:
// gb u32 | n u32 | nums u32×n.
func encodeRequest(b []byte, gb lattice.ID, nums []int) []byte {
	b = wire.AppendU32(b, uint32(gb))
	b = wire.AppendU32(b, uint32(len(nums)))
	for _, n := range nums {
		b = wire.AppendU32(b, uint32(n))
	}
	return b
}

// decodeRequest parses a request payload.
func decodeRequest(p []byte) (lattice.ID, []int, error) {
	d := wire.NewDec(p)
	gb := lattice.ID(d.U32())
	n := int(d.U32())
	if err := d.Err(); err != nil || n > d.Remaining()/4 {
		return 0, nil, fmt.Errorf("backend: malformed request payload")
	}
	nums := make([]int, n)
	for i := range nums {
		nums[i] = int(int32(d.U32()))
	}
	if err := d.Err(); err != nil {
		return 0, nil, fmt.Errorf("backend: malformed request payload")
	}
	return gb, nums, nil
}

// encodeChunksResponse appends a frameChunks payload:
// stats (4×u64) | nchunks u32 | chunk slabs.
func encodeChunksResponse(b []byte, chunks []*chunk.Chunk, stats Stats) []byte {
	b = wire.AppendU64(b, uint64(stats.TuplesScanned))
	b = wire.AppendU64(b, uint64(stats.ResultCells))
	b = wire.AppendU64(b, uint64(stats.Sim))
	b = wire.AppendU64(b, uint64(stats.Wall))
	b = wire.AppendU32(b, uint32(len(chunks)))
	for _, c := range chunks {
		b = wire.AppendChunk(b, c)
	}
	return b
}

// decodeChunksResponse parses a frameChunks payload.
func decodeChunksResponse(p []byte) ([]*chunk.Chunk, Stats, error) {
	d := wire.NewDec(p)
	var stats Stats
	stats.TuplesScanned = int64(d.U64())
	stats.ResultCells = int64(d.U64())
	stats.Sim = time.Duration(d.U64())
	stats.Wall = time.Duration(d.U64())
	n := int(d.U32())
	if err := d.Err(); err != nil || n > d.Remaining()/13 {
		return nil, Stats{}, fmt.Errorf("backend: malformed chunks response")
	}
	chunks := make([]*chunk.Chunk, 0, n)
	for i := 0; i < n; i++ {
		c := d.Chunk()
		if c == nil {
			return nil, Stats{}, fmt.Errorf("backend: malformed chunks response")
		}
		chunks = append(chunks, c)
	}
	return chunks, stats, nil
}

// encodeEstimatesResponse appends a frameEstimates payload: n u32 | u64×n.
func encodeEstimatesResponse(b []byte, ests []int64) []byte {
	b = wire.AppendU32(b, uint32(len(ests)))
	for _, e := range ests {
		b = wire.AppendU64(b, uint64(e))
	}
	return b
}

// decodeEstimatesResponse parses a frameEstimates payload.
func decodeEstimatesResponse(p []byte) ([]int64, error) {
	d := wire.NewDec(p)
	n := int(d.U32())
	if err := d.Err(); err != nil || n > d.Remaining()/8 {
		return nil, fmt.Errorf("backend: malformed estimates response")
	}
	ests := make([]int64, n)
	for i := range ests {
		ests[i] = int64(d.U64())
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("backend: malformed estimates response")
	}
	return ests, nil
}

// errorFrame builds an in-band error response. transient marks the failure
// as retryable per the PR-3 taxonomy: the engine did not answer (timeout,
// recovered panic, outage behind this server), as opposed to a
// deterministic per-request rejection.
func errorFrame(msg string, transient bool) wire.Frame {
	var flags uint8
	if transient {
		flags |= wire.FlagTransient
	}
	return wire.Frame{Type: frameError, Flags: flags, Payload: wire.AppendString(nil, msg)}
}

// decodeErrorFrame extracts the message of a frameError payload.
func decodeErrorFrame(p []byte) string {
	d := wire.NewDec(p)
	msg := d.String()
	if d.Err() != nil {
		return "unreadable error payload"
	}
	return msg
}
