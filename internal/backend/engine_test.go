package backend

import (
	"context"
	"testing"
	"time"

	"aggcache/internal/apb"
	"aggcache/internal/chunk"
	"aggcache/internal/data"
	"aggcache/internal/lattice"
)

func tinyEngine(t testing.TB, latency LatencyModel) (*Engine, *data.Table) {
	t.Helper()
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(5)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	e, err := NewEngine(g, tab, latency)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e, tab
}

// directAggregate computes the expected cells of one chunk by a full scan of
// the raw table.
func directAggregate(g *chunk.Grid, tab *data.Table, gb lattice.ID, num int) map[uint64]float64 {
	sch := g.Schema()
	lat := g.Lattice()
	lv := lat.Level(gb)
	nd := sch.NumDims()
	want := make(map[uint64]float64)
	mapped := make([]int32, nd)
	for i := 0; i < tab.Len(); i++ {
		row := tab.Row(i)
		for d := 0; d < nd; d++ {
			dim := sch.Dim(d)
			mapped[d] = dim.Ancestor(dim.Hierarchy(), lv[d], row[d])
		}
		n, key := g.ChunkOfCell(gb, mapped)
		if n == num {
			want[key] += tab.Value(i)
		}
	}
	return want
}

func TestEngineMatchesDirectAggregation(t *testing.T) {
	e, tab := tinyEngine(t, LatencyModel{})
	g := e.Grid()
	lat := g.Lattice()
	for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
		nums := make([]int, g.NumChunks(id))
		for i := range nums {
			nums[i] = i
		}
		chunks, stats, err := e.ComputeChunks(context.Background(), id, nums)
		if err != nil {
			t.Fatalf("ComputeChunks(%s): %v", lat.LevelTupleString(id), err)
		}
		if len(chunks) != len(nums) {
			t.Fatalf("got %d chunks, want %d", len(chunks), len(nums))
		}
		var cells int64
		for i, c := range chunks {
			if c == nil {
				t.Fatalf("nil chunk %d", i)
			}
			want := directAggregate(g, tab, id, i)
			if c.Cells() != len(want) {
				t.Fatalf("gb %s chunk %d: %d cells, want %d", lat.LevelTupleString(id), i, c.Cells(), len(want))
			}
			for j, key := range c.Keys {
				// Summation order differs between the engine and the oracle;
				// allow float rounding slack.
				if diff := want[key] - c.Vals[j]; diff > 1e-6 || diff < -1e-6 {
					t.Fatalf("gb %s chunk %d cell %d: %v, want %v", lat.LevelTupleString(id), i, key, c.Vals[j], want[key])
				}
			}
			cells += int64(c.Cells())
		}
		if stats.ResultCells != cells {
			t.Fatalf("stats.ResultCells = %d, want %d", stats.ResultCells, cells)
		}
	}
}

func TestEngineScanIsClusteredPerChunk(t *testing.T) {
	e, tab := tinyEngine(t, LatencyModel{})
	g := e.Grid()
	lat := g.Lattice()
	base := lat.Base()
	// Requesting a single base chunk must scan only its own rows, not the
	// whole table — that is the point of the clustered index.
	chunks, stats, err := e.ComputeChunks(context.Background(), base, []int{0})
	if err != nil {
		t.Fatalf("ComputeChunks: %v", err)
	}
	if stats.TuplesScanned >= int64(tab.Len()) {
		t.Fatalf("scanned %d tuples for one base chunk of a %d-row table", stats.TuplesScanned, tab.Len())
	}
	if stats.TuplesScanned != int64(chunks[0].Cells()) {
		t.Fatalf("base chunk scan %d tuples but produced %d cells", stats.TuplesScanned, chunks[0].Cells())
	}
	// Requesting the top chunk scans everything exactly once.
	_, stats, err = e.ComputeChunks(context.Background(), lat.Top(), []int{0})
	if err != nil {
		t.Fatalf("ComputeChunks(top): %v", err)
	}
	if stats.TuplesScanned != int64(tab.Len()) {
		t.Fatalf("top chunk scanned %d, want %d", stats.TuplesScanned, tab.Len())
	}
}

func TestEngineLatencyModel(t *testing.T) {
	m := LatencyModel{Connect: time.Millisecond, PerTuple: time.Microsecond}
	e, tab := tinyEngine(t, m)
	_, stats, err := e.ComputeChunks(context.Background(), e.Grid().Lattice().Top(), []int{0})
	if err != nil {
		t.Fatalf("ComputeChunks: %v", err)
	}
	want := time.Millisecond + time.Duration(tab.Len())*time.Microsecond
	if stats.Sim != want {
		t.Fatalf("Sim = %v, want %v", stats.Sim, want)
	}
	if stats.Cost() < stats.Sim {
		t.Fatalf("Cost %v below Sim %v", stats.Cost(), stats.Sim)
	}
}

func TestEngineErrors(t *testing.T) {
	e, _ := tinyEngine(t, LatencyModel{})
	if _, _, err := e.ComputeChunks(context.Background(), lattice.ID(9999), []int{0}); err == nil {
		t.Errorf("out-of-range group-by: expected error")
	}
	if _, _, err := e.ComputeChunks(context.Background(), e.Grid().Lattice().Top(), []int{5}); err == nil {
		t.Errorf("out-of-range chunk: expected error")
	}
	if err := e.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestComputeGroupByTotalsMatchTable(t *testing.T) {
	e, tab := tinyEngine(t, LatencyModel{})
	lat := e.Grid().Lattice()
	var tableTotal float64
	for i := 0; i < tab.Len(); i++ {
		tableTotal += tab.Value(i)
	}
	for _, id := range []lattice.ID{lat.Base(), lat.Top(), lattice.ID(3)} {
		chunks, _, err := e.ComputeGroupBy(id)
		if err != nil {
			t.Fatalf("ComputeGroupBy: %v", err)
		}
		var total float64
		for _, c := range chunks {
			total += c.Total()
		}
		if diff := total - tableTotal; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("gb %s total %v, want %v", lat.LevelTupleString(id), total, tableTotal)
		}
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{TuplesScanned: 1, ResultCells: 2, Sim: 3, Wall: 4}
	a.Add(Stats{TuplesScanned: 10, ResultCells: 20, Sim: 30, Wall: 40})
	if a.TuplesScanned != 11 || a.ResultCells != 22 || a.Sim != 33 || a.Wall != 44 {
		t.Fatalf("Add = %+v", a)
	}
}
