package backend

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
)

func TestErrorClassification(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		transient bool
		outage    bool
	}{
		{"nil", nil, false, false},
		{"marked transient", MarkTransient(errors.New("reset")), true, true},
		{"wrapped mark", fmt.Errorf("send: %w", MarkTransient(errors.New("reset"))), true, true},
		{"remote error", &RemoteError{Msg: "bad group-by"}, false, false},
		{"transient remote error", MarkTransient(&RemoteError{Msg: "server timeout"}), true, true},
		{"eof", io.EOF, true, true},
		{"unexpected eof", io.ErrUnexpectedEOF, true, true},
		{"canceled", context.Canceled, false, false},
		{"deadline", context.DeadlineExceeded, false, true},
		{"canceled wrapping mark", fmt.Errorf("%w: %w", context.Canceled, MarkTransient(errors.New("x"))), false, false},
		{"unavailable", fmt.Errorf("circuit open: %w", ErrUnavailable), false, true},
		{"plain", errors.New("bad input"), false, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.transient {
			t.Errorf("IsTransient(%s) = %v, want %v", c.name, got, c.transient)
		}
		if got := countsAsOutage(c.err); got != c.outage {
			t.Errorf("countsAsOutage(%s) = %v, want %v", c.name, got, c.outage)
		}
	}
}
