// Package backend implements the backend database tier of the paper's
// three-tier setup: a fact store clustered on base chunk number (the paper's
// "chunked file organization ... achieved by building a clustered index on
// the chunk number for the fact file"), an aggregation executor that answers
// chunk requests at any group-by level, a latency model standing in for the
// network + commercial-DBMS overhead, and a TCP wire protocol for running
// the backend out of process.
package backend

import (
	"context"
	"time"

	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
)

// Backend answers chunk computation requests — the interface the middle
// tier's cache manager issues its "single SQL statement" equivalent against.
//
// Every data method takes a context: implementations must return promptly
// (with ctx.Err() or an error wrapping it) once the context is cancelled or
// its deadline passes, so a hung backend can never hang a query. Transient
// failures are classified by IsTransient and availability failures wrap
// ErrUnavailable; see errors.go for the taxonomy.
type Backend interface {
	// ComputeChunks computes the requested chunks of group-by gb from the
	// fact data. Chunks are returned in request order; chunks with no data
	// are returned empty (zero cells), never nil.
	ComputeChunks(ctx context.Context, gb lattice.ID, nums []int) ([]*chunk.Chunk, Stats, error)
	// EstimateScan returns the number of tuples ComputeChunks would scan
	// for the request, without executing it. A cost-based middle tier (§5.2)
	// compares it against VCMC's in-cache cost estimate.
	EstimateScan(ctx context.Context, gb lattice.ID, nums []int) (int64, error)
	// EstimateScans is the batched form: one estimate per requested chunk,
	// in request order, so a Phase-1b pass over N cost-bypass candidates is
	// one backend round trip instead of N.
	EstimateScans(ctx context.Context, gb lattice.ID, nums []int) ([]int64, error)
	// Close releases resources (network connections for remote backends).
	Close() error
}

// Stats describes the work one backend request performed.
type Stats struct {
	// TuplesScanned counts base fact tuples read.
	TuplesScanned int64
	// ResultCells counts cells across all returned chunks.
	ResultCells int64
	// Sim is the simulated latency charged by the LatencyModel (connection
	// overhead plus per-tuple scan cost).
	Sim time.Duration
	// Wall is the real time the engine spent computing.
	Wall time.Duration
}

// Cost returns the total time attributed to the request: real compute plus
// simulated latency.
func (s Stats) Cost() time.Duration { return s.Wall + s.Sim }

// Add merges another request's stats into s.
func (s *Stats) Add(o Stats) {
	s.TuplesScanned += o.TuplesScanned
	s.ResultCells += o.ResultCells
	s.Sim += o.Sim
	s.Wall += o.Wall
}

// LatencyModel stands in for the backend overheads the paper's testbed had
// (issuing SQL over a network to a commercial DBMS reading a disk-resident
// fact file). The model charges a fixed per-request connection overhead plus
// a per-tuple scan cost; see DESIGN.md §3 for why this preserves the paper's
// comparisons.
type LatencyModel struct {
	// Connect is charged once per ComputeChunks request.
	Connect time.Duration
	// PerTuple is charged per base tuple scanned.
	PerTuple time.Duration
	// Sleep, when true, actually sleeps the simulated latency (used by the
	// three-tier example); otherwise it is only accounted in Stats.Sim.
	Sleep bool
}

// DefaultLatency is calibrated so that, at the experiment scales, computing
// a chunk at the backend is roughly an order of magnitude slower than
// aggregating equivalent cached chunks — the ≈8× factor the paper measured
// (§7.1 "Benefit of Aggregation").
var DefaultLatency = LatencyModel{
	Connect:  3 * time.Millisecond,
	PerTuple: 1200 * time.Nanosecond,
}

// charge returns the simulated latency for one request that scanned n
// tuples.
func (m LatencyModel) charge(n int64) time.Duration {
	return m.Connect + time.Duration(n)*m.PerTuple
}
