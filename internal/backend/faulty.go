package backend

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
)

// FaultPlan configures deterministic fault injection: each request draws
// from a seeded stream and, in fixed order, may be failed, "disconnected",
// hung, or slowed before reaching the wrapped backend. Probabilities are in
// [0,1]. The draw sequence is fully determined by Seed; under concurrency
// the assignment of draws to requests follows scheduling order, so chaos
// tests get a reproducible fault mix even when the interleaving varies.
type FaultPlan struct {
	Seed int64
	// ErrorRate injects a generic transient backend error.
	ErrorRate float64
	// DisconnectRate injects a dropped-connection-shaped transient error —
	// what a middle tier sees when the backend's TCP stream dies mid-request.
	DisconnectRate float64
	// HangRate stalls the request for HangFor (or until the context
	// expires, whichever is first); if the context outlives the hang the
	// request then fails transiently, modeling a hung-then-reset stream.
	HangRate float64
	HangFor  time.Duration
	// SpikeRate delays the request by SpikeFor and then lets it proceed —
	// a latency spike, not a failure.
	SpikeRate float64
	SpikeFor  time.Duration
}

// FaultCounts reports how many faults a Faulty has injected, by kind.
type FaultCounts struct {
	Errors, Disconnects, Hangs, Spikes, Outages int64
}

// Faulty wraps a Backend with seeded fault injection for chaos tests and
// the chaos bench experiment. Independently of the plan's random faults,
// SetDown(true) simulates a hard outage: every request fails immediately
// with a transient connection-refused-shaped error until SetDown(false).
type Faulty struct {
	inner Backend
	plan  FaultPlan
	down  atomic.Bool

	mu  sync.Mutex
	rng *rand.Rand

	errors, disconnects, hangs, spikes, outages atomic.Int64
}

// NewFaulty wraps inner with the given fault plan.
func NewFaulty(inner Backend, plan FaultPlan) *Faulty {
	return &Faulty{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// SetDown toggles the simulated hard outage.
func (f *Faulty) SetDown(down bool) { f.down.Store(down) }

// Down reports whether the simulated outage is active.
func (f *Faulty) Down() bool { return f.down.Load() }

// Counts returns the number of injected faults so far, by kind.
func (f *Faulty) Counts() FaultCounts {
	return FaultCounts{
		Errors:      f.errors.Load(),
		Disconnects: f.disconnects.Load(),
		Hangs:       f.hangs.Load(),
		Spikes:      f.spikes.Load(),
		Outages:     f.outages.Load(),
	}
}

// draw takes the next four variates from the seeded stream under the lock,
// keeping the stream itself deterministic.
func (f *Faulty) draw() (errV, discV, hangV, spikeV float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64(), f.rng.Float64(), f.rng.Float64(), f.rng.Float64()
}

// inject applies the plan to one request; a nil return lets the request
// through to the wrapped backend.
func (f *Faulty) inject(ctx context.Context) error {
	if f.down.Load() {
		f.outages.Add(1)
		return MarkTransient(fmt.Errorf("faulty: backend down: connection refused"))
	}
	errV, discV, hangV, spikeV := f.draw()
	if errV < f.plan.ErrorRate {
		f.errors.Add(1)
		return MarkTransient(fmt.Errorf("faulty: injected backend error"))
	}
	if discV < f.plan.DisconnectRate {
		f.disconnects.Add(1)
		return MarkTransient(fmt.Errorf("faulty: injected disconnect: connection reset by peer"))
	}
	if hangV < f.plan.HangRate {
		f.hangs.Add(1)
		if err := sleepCtx(ctx, f.plan.HangFor); err != nil {
			return err
		}
		return MarkTransient(fmt.Errorf("faulty: stream hung %v then reset", f.plan.HangFor))
	}
	if spikeV < f.plan.SpikeRate {
		f.spikes.Add(1)
		if err := sleepCtx(ctx, f.plan.SpikeFor); err != nil {
			return err
		}
	}
	return nil
}

// sleepCtx waits d or until the context ends, returning ctx.Err() in the
// latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ComputeChunks implements Backend with fault injection.
func (f *Faulty) ComputeChunks(ctx context.Context, gb lattice.ID, nums []int) ([]*chunk.Chunk, Stats, error) {
	if err := f.inject(ctx); err != nil {
		return nil, Stats{}, err
	}
	return f.inner.ComputeChunks(ctx, gb, nums)
}

// EstimateScan implements Backend with fault injection.
func (f *Faulty) EstimateScan(ctx context.Context, gb lattice.ID, nums []int) (int64, error) {
	if err := f.inject(ctx); err != nil {
		return 0, err
	}
	return f.inner.EstimateScan(ctx, gb, nums)
}

// EstimateScans implements Backend with fault injection.
func (f *Faulty) EstimateScans(ctx context.Context, gb lattice.ID, nums []int) ([]int64, error) {
	if err := f.inject(ctx); err != nil {
		return nil, err
	}
	return f.inner.EstimateScans(ctx, gb, nums)
}

// Close implements Backend.
func (f *Faulty) Close() error { return f.inner.Close() }
