package backend

import (
	"context"
	"errors"
	"io"
	"net"

	"aggcache/internal/wire"
)

// ErrUnavailable is the typed availability error of the fault-tolerant
// backend path: the remote client returns it (wrapped) once its bounded
// redial/retry budget is exhausted, and the circuit breaker returns it
// immediately while open. Callers match it with errors.Is; core re-exports
// it as ErrBackendUnavailable so the middle tier can fail fast instead of
// hanging when the backend is down.
var ErrUnavailable = errors.New("backend unavailable")

// RemoteError is an error the backend server's engine reported for one
// request. The connection is healthy and the engine answered — the request
// itself is bad (unknown group-by, chunk out of range) or failed
// deterministically — so retrying the same request cannot help and the
// error is permanent.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "backend: remote: " + e.Msg }

// transientError marks an error as worth retrying (see MarkTransient).
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// MarkTransient wraps err so IsTransient reports true for it. Fault
// injectors and the wire layer use it to tag connection-shaped failures.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient classifies an error as transient — a failure of the path to
// the backend (dropped connection, reset, I/O timeout) that a retry over a
// fresh connection may cure — as opposed to a permanent one (a RemoteError
// the engine computed, or the caller's own context expiring, which must
// never be retried against because the caller has already given up).
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// The explicit transient mark wins over everything below it: the server
	// replies retryable failures (its own request timeout, a recovered
	// panic) as a RemoteError wrapped in the mark, and those must retry.
	var te *transientError
	if errors.As(err, &te) {
		return true
	}
	// A Busy reply is load shedding, not failure: the request is fine and a
	// retry after the server's hint may succeed, so it is transient by
	// definition — but the caller should honor BusyError.RetryAfter rather
	// than retrying immediately.
	var be *wire.BusyError
	if errors.As(err, &be) {
		return true
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// countsAsOutage reports whether an error should advance the circuit
// breaker toward open: transient wire failures, exhausted retry budgets and
// I/O deadline expiries all indicate the backend is unreachable, while
// permanent per-request errors and caller cancellation do not.
func countsAsOutage(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) {
		return false
	}
	// Busy replies never advance the breaker: the server answered — it is
	// overloaded, not unreachable — and tripping into degraded mode would
	// turn deliberate load shedding into a phantom outage.
	var be *wire.BusyError
	if errors.As(err, &be) {
		return false
	}
	return IsTransient(err) || errors.Is(err, ErrUnavailable) || errors.Is(err, context.DeadlineExceeded)
}
