package backend

import (
	"context"
	"sync"
	"testing"

	"aggcache/internal/obs"
)

func TestServerRoundTrip(t *testing.T) {
	e, _ := tinyEngine(t, LatencyModel{})
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	remote, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer remote.Close()

	lat := e.Grid().Lattice()
	wantChunks, wantStats, err := e.ComputeChunks(context.Background(), lat.Top(), []int{0})
	if err != nil {
		t.Fatalf("local compute: %v", err)
	}
	gotChunks, gotStats, err := remote.ComputeChunks(context.Background(), lat.Top(), []int{0})
	if err != nil {
		t.Fatalf("remote compute: %v", err)
	}
	if len(gotChunks) != 1 || gotChunks[0].Cells() != wantChunks[0].Cells() {
		t.Fatalf("remote chunks differ: %v vs %v", gotChunks, wantChunks)
	}
	if gotChunks[0].Total() != wantChunks[0].Total() {
		t.Fatalf("remote totals differ")
	}
	if gotStats.TuplesScanned != wantStats.TuplesScanned {
		t.Fatalf("remote stats differ: %+v vs %+v", gotStats, wantStats)
	}
}

func TestServerPipelinesRequests(t *testing.T) {
	e, _ := tinyEngine(t, LatencyModel{})
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	remote, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer remote.Close()

	lat := e.Grid().Lattice()
	// Many requests pipelined concurrently over one multiplexed connection.
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := remote.ComputeChunks(context.Background(), lat.Top(), []int{0})
			if err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent request: %v", err)
	}
}

// TestServerPipelinedOutOfOrderContents issues K concurrent requests for
// different chunks over ONE multiplexed connection. Responses complete in
// whatever order the server's concurrent handlers finish; each caller must
// still get the chunk it asked for (contents verified against a local
// compute), and the redial counter proves no second connection was opened.
func TestServerPipelinedOutOfOrderContents(t *testing.T) {
	e, tab := tinyEngine(t, LatencyModel{})
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	remote, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer remote.Close()
	met := obs.NewRemoteMetrics(obs.NewRegistry())
	remote.SetMetrics(met)

	g := e.Grid()
	gb := g.Lattice().Top()
	nchunks := g.NumChunks(gb)
	const k = 16
	var wg sync.WaitGroup
	errs := make(chan error, k)
	for i := 0; i < k; i++ {
		num := i % nchunks
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, err := remote.ComputeChunks(context.Background(), gb, []int{num})
			if err != nil {
				errs <- err
				return
			}
			want := directAggregate(g, tab, gb, num)
			if len(got) != 1 || got[0].Cells() != len(want) {
				t.Errorf("chunk %d: got %d cells, want %d", num, got[0].Cells(), len(want))
				return
			}
			for j, key := range got[0].Keys {
				// Summation order differs between the engine and the oracle;
				// allow float rounding slack.
				if diff := want[key] - got[0].Vals[j]; diff > 1e-6 || diff < -1e-6 {
					t.Errorf("chunk %d key %d: got %v, want %v", num, key, got[0].Vals[j], want[key])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("pipelined request: %v", err)
	}
	if n := met.Redials.Value(); n != 0 {
		t.Fatalf("pipelined requests redialed %d times; want all on one connection", n)
	}
}

func TestServerRemoteError(t *testing.T) {
	e, _ := tinyEngine(t, LatencyModel{})
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	remote, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer remote.Close()

	if _, _, err := remote.ComputeChunks(context.Background(), 9999, []int{0}); err == nil {
		t.Fatalf("expected remote error for bad group-by")
	}
	// The connection survives an application-level error.
	if _, _, err := remote.ComputeChunks(context.Background(), e.Grid().Lattice().Top(), []int{0}); err != nil {
		t.Fatalf("connection did not survive error: %v", err)
	}
}

func TestRemoteClosed(t *testing.T) {
	e, _ := tinyEngine(t, LatencyModel{})
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	remote, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := remote.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := remote.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if _, _, err := remote.ComputeChunks(context.Background(), 0, []int{0}); err == nil {
		t.Fatalf("expected error after Close")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatalf("expected dial error")
	}
}
