package backend

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/obs"
)

// BreakerState is the circuit breaker's current disposition.
type BreakerState int32

// Breaker states. The gauge on /metrics exports these ordinals.
const (
	// BreakerClosed: requests flow to the backend normally.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed; one probe request is allowed
	// through to test recovery while everything else still fails fast.
	BreakerHalfOpen
	// BreakerOpen: the backend is presumed down; every request fails fast
	// with ErrUnavailable until the cooldown elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// BreakerConfig tunes the circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the run of consecutive outage-class failures
	// (see countsAsOutage) that opens the breaker. Default 5.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe. Default 2s.
	Cooldown time.Duration
	// SuccessThreshold is the run of successful probes that closes a
	// half-open breaker. Default 1.
	SuccessThreshold int

	// now is a test hook; nil means time.Now.
	now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = 1
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Breaker wraps a Backend with a circuit breaker: a run of outage-class
// failures opens it, and while open every request fails fast with
// ErrUnavailable instead of waiting out dial timeouts and retry budgets.
// After the cooldown a single probe is let through; its success closes the
// breaker, its failure re-opens it. Permanent per-request errors (the
// engine answered, the request was bad) and caller cancellation never move
// the breaker — only availability failures do.
type Breaker struct {
	inner Backend
	cfg   BreakerConfig
	met   obs.BreakerMetrics

	mu        sync.Mutex
	state     BreakerState
	failures  int
	successes int
	openedAt  time.Time
	probing   bool
}

// NewBreaker wraps inner with a circuit breaker.
func NewBreaker(inner Backend, cfg BreakerConfig) *Breaker {
	return &Breaker{inner: inner, cfg: cfg.withDefaults()}
}

// SetMetrics attaches live observability metrics. Call it before the first
// request; it is not synchronized with requests in flight.
func (b *Breaker) SetMetrics(m obs.BreakerMetrics) {
	b.met = m
	b.met.State.Set(int64(b.State()))
}

// State returns the breaker's current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked()
}

// stateLocked folds the cooldown expiry into the reported state so readers
// (health checks, the engine's degraded-mode accounting) see half-open as
// soon as a probe would be admitted.
func (b *Breaker) stateLocked() BreakerState {
	if b.state == BreakerOpen && b.cfg.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// admit decides one request's fate: proceed (probe reports whether it is a
// half-open probe) or fail fast with ErrUnavailable.
func (b *Breaker) admit() (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked() {
	case BreakerClosed:
		return false, nil
	case BreakerHalfOpen:
		if b.state == BreakerOpen {
			// Cooldown just elapsed: materialize the half-open transition.
			b.state = BreakerHalfOpen
			b.met.State.Set(int64(BreakerHalfOpen))
		}
		if b.probing {
			return false, fmt.Errorf("backend: circuit half-open, probe in flight: %w", ErrUnavailable)
		}
		b.probing = true
		b.met.Probes.Inc()
		return true, nil
	default: // BreakerOpen
		return false, fmt.Errorf("backend: circuit open: %w", ErrUnavailable)
	}
}

// record folds one request's outcome back into the breaker.
func (b *Breaker) record(err error, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	if countsAsOutage(err) {
		b.failures++
		b.successes = 0
		if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.failures >= b.cfg.FailureThreshold) {
			b.openLocked()
		} else if b.state == BreakerOpen {
			// A failure while open (a probe raced the cooldown) restarts it.
			b.openedAt = b.cfg.now()
		}
		return
	}
	if err != nil && errors.Is(err, context.Canceled) {
		// The caller gave up; says nothing about availability either way.
		return
	}
	// Success — or a permanent per-request error, which still proves the
	// backend is reachable and answering.
	b.failures = 0
	if b.state == BreakerHalfOpen {
		b.successes++
		if b.successes >= b.cfg.SuccessThreshold {
			b.state = BreakerClosed
			b.successes = 0
			b.met.State.Set(int64(BreakerClosed))
		}
	}
}

// openLocked trips the breaker. The caller must hold b.mu.
func (b *Breaker) openLocked() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.now()
	b.probing = false
	b.successes = 0
	b.met.Opens.Inc()
	b.met.State.Set(int64(BreakerOpen))
}

// ComputeChunks implements Backend through the breaker.
func (b *Breaker) ComputeChunks(ctx context.Context, gb lattice.ID, nums []int) ([]*chunk.Chunk, Stats, error) {
	probe, err := b.admit()
	if err != nil {
		b.met.FastFails.Inc()
		return nil, Stats{}, err
	}
	chunks, stats, err := b.inner.ComputeChunks(ctx, gb, nums)
	b.record(err, probe)
	return chunks, stats, err
}

// EstimateScan implements Backend through the breaker.
func (b *Breaker) EstimateScan(ctx context.Context, gb lattice.ID, nums []int) (int64, error) {
	probe, err := b.admit()
	if err != nil {
		b.met.FastFails.Inc()
		return 0, err
	}
	est, err := b.inner.EstimateScan(ctx, gb, nums)
	b.record(err, probe)
	return est, err
}

// EstimateScans implements Backend through the breaker.
func (b *Breaker) EstimateScans(ctx context.Context, gb lattice.ID, nums []int) ([]int64, error) {
	probe, err := b.admit()
	if err != nil {
		b.met.FastFails.Inc()
		return nil, err
	}
	ests, err := b.inner.EstimateScans(ctx, gb, nums)
	b.record(err, probe)
	return ests, err
}

// Close implements Backend.
func (b *Breaker) Close() error { return b.inner.Close() }
