package backend

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFaultyDeterministicStream(t *testing.T) {
	plan := FaultPlan{Seed: 42, ErrorRate: 0.3, DisconnectRate: 0.2}
	run := func() []bool {
		f := NewFaulty(&stubBackend{}, plan)
		outcomes := make([]bool, 50)
		for i := range outcomes {
			_, _, err := f.ComputeChunks(context.Background(), 0, []int{0})
			outcomes[i] = err != nil
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs across identically seeded runs", i)
		}
	}
	f := NewFaulty(&stubBackend{}, plan)
	for i := 0; i < 50; i++ {
		f.ComputeChunks(context.Background(), 0, []int{0})
	}
	c := f.Counts()
	if c.Errors == 0 || c.Disconnects == 0 {
		t.Fatalf("expected both fault kinds at these rates, got %+v", c)
	}
}

func TestFaultyInjectedErrorsAreTransient(t *testing.T) {
	f := NewFaulty(&stubBackend{}, FaultPlan{Seed: 1, ErrorRate: 1})
	_, _, err := f.ComputeChunks(context.Background(), 0, []int{0})
	if !IsTransient(err) {
		t.Fatalf("injected error should be transient, got %v", err)
	}
}

func TestFaultyDown(t *testing.T) {
	stub := &stubBackend{}
	f := NewFaulty(stub, FaultPlan{Seed: 1})
	f.SetDown(true)
	_, _, err := f.ComputeChunks(context.Background(), 0, []int{0})
	if !IsTransient(err) {
		t.Fatalf("outage error should be transient, got %v", err)
	}
	if stub.callCount() != 0 {
		t.Fatalf("request reached a down backend")
	}
	if f.Counts().Outages != 1 {
		t.Fatalf("outage not counted: %+v", f.Counts())
	}
	f.SetDown(false)
	if _, _, err := f.ComputeChunks(context.Background(), 0, []int{0}); err != nil {
		t.Fatalf("recovered backend: %v", err)
	}
}

func TestFaultyHangHonorsContext(t *testing.T) {
	f := NewFaulty(&stubBackend{}, FaultPlan{Seed: 1, HangRate: 1, HangFor: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := f.ComputeChunks(ctx, 0, []int{0})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang under deadline = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("hang ignored the context deadline")
	}
}
