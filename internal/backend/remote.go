package backend

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/obs"
)

// RetryPolicy tunes the self-healing remote client: how many times one
// request is tried, how the backoff between tries grows, and the wire
// deadlines each try runs under.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request, including the
	// first. At least 1.
	MaxAttempts int
	// BaseBackoff is the pause before the first retry; each further retry
	// doubles it (with ±50% deterministic jitter) up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// DialTimeout bounds each (re)connect attempt.
	DialTimeout time.Duration
	// IOTimeout bounds one request/response exchange on the wire when the
	// caller's context carries no earlier deadline.
	IOTimeout time.Duration
	// Seed drives the jitter; runs with the same seed back off identically.
	Seed int64
}

// DefaultRetryPolicy is the client's out-of-the-box resilience policy.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 4,
	BaseBackoff: 10 * time.Millisecond,
	MaxBackoff:  640 * time.Millisecond,
	DialTimeout: 2 * time.Second,
	IOTimeout:   30 * time.Second,
	Seed:        1,
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = d.DialTimeout
	}
	if p.IOTimeout <= 0 {
		p.IOTimeout = d.IOTimeout
	}
	return p
}

// backoff returns the pause before retry number retry (1-based), with ±50%
// jitter so a burst of failing clients does not hammer a recovering server
// in lockstep.
func (r *Remote) backoff(retry int) time.Duration {
	d := r.pol.BaseBackoff << (retry - 1)
	if d > r.pol.MaxBackoff || d <= 0 {
		d = r.pol.MaxBackoff
	}
	r.rngMu.Lock()
	f := 0.5 + r.rng.Float64()
	r.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// Remote is a Backend talking to a Server over TCP. It is safe for
// concurrent use; requests are serialized over one connection. The client is
// self-healing: a broken connection is torn down and transparently re-dialed
// instead of poisoning the gob stream, and transient failures are retried
// with capped exponential backoff + jitter up to the policy's attempt
// budget, after which the error wraps ErrUnavailable.
type Remote struct {
	addr string
	pol  RetryPolicy
	met  obs.RemoteMetrics

	closed atomic.Bool

	rngMu sync.Mutex
	rng   *rand.Rand

	mu   sync.Mutex
	conn net.Conn
	dec  *gob.Decoder
	enc  *gob.Encoder
}

// Dial connects to a backend server with DefaultRetryPolicy.
func Dial(addr string) (*Remote, error) {
	return DialPolicy(addr, DefaultRetryPolicy)
}

// DialPolicy connects to a backend server with an explicit retry policy.
// The initial connection is established eagerly so configuration errors
// fail fast.
func DialPolicy(addr string, pol RetryPolicy) (*Remote, error) {
	pol = pol.withDefaults()
	r := &Remote{addr: addr, pol: pol, rng: rand.New(rand.NewSource(pol.Seed))}
	r.mu.Lock()
	err := r.redialLocked(context.Background())
	r.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("backend: dial %s: %w", addr, err)
	}
	return r, nil
}

// SetMetrics attaches live observability metrics. Call it before the first
// request; it is not synchronized with requests in flight.
func (r *Remote) SetMetrics(m obs.RemoteMetrics) { r.met = m }

// redialLocked replaces the connection. The caller must hold r.mu.
func (r *Remote) redialLocked(ctx context.Context) error {
	d := net.Dialer{Timeout: r.pol.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", r.addr)
	if err != nil {
		return MarkTransient(err)
	}
	r.conn = conn
	r.dec = gob.NewDecoder(conn)
	r.enc = gob.NewEncoder(conn)
	return nil
}

// teardownLocked drops a connection whose gob stream can no longer be
// trusted. The caller must hold r.mu.
func (r *Remote) teardownLocked() {
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
		r.dec, r.enc = nil, nil
	}
}

// attempt performs one request/response exchange, redialing first if the
// previous attempt tore the connection down. Any wire failure invalidates
// the stream, so the connection is dropped before returning the error.
func (r *Remote) attempt(ctx context.Context, req *request) (*response, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Load() {
		return nil, errors.New("backend: remote is closed")
	}
	if r.conn == nil {
		r.met.Redials.Inc()
		if err := r.redialLocked(ctx); err != nil {
			return nil, err
		}
	}
	deadline := time.Now().Add(r.pol.IOTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	r.conn.SetDeadline(deadline)
	if err := r.enc.Encode(req); err != nil {
		r.teardownLocked()
		return nil, fmt.Errorf("backend: send: %w", err)
	}
	var resp response
	if err := r.dec.Decode(&resp); err != nil {
		r.teardownLocked()
		return nil, fmt.Errorf("backend: receive: %w", err)
	}
	return &resp, nil
}

// roundTrip sends one request, retrying transient failures per the policy.
func (r *Remote) roundTrip(ctx context.Context, req *request) (*response, error) {
	r.met.Requests.Inc()
	var lastErr error
	for try := 0; try < r.pol.MaxAttempts; try++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if try > 0 {
			r.met.Retries.Inc()
			t := time.NewTimer(r.backoff(try))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
		}
		resp, err := r.attempt(ctx, req)
		if err == nil {
			if resp.Err == "" {
				return resp, nil
			}
			rerr := &RemoteError{Msg: resp.Err}
			if !resp.Transient {
				return nil, rerr // deterministic per-request failure
			}
			err = MarkTransient(rerr)
		}
		// The caller's context expiring dominates any wire classification:
		// the I/O deadline that fired may have been the context's own.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if !IsTransient(err) {
			return nil, err
		}
		lastErr = err
	}
	r.met.Unavailable.Inc()
	return nil, fmt.Errorf("backend: %s unreachable after %d attempts (%v): %w",
		r.addr, r.pol.MaxAttempts, lastErr, ErrUnavailable)
}

// ComputeChunks implements Backend over the wire.
func (r *Remote) ComputeChunks(ctx context.Context, gb lattice.ID, nums []int) ([]*chunk.Chunk, Stats, error) {
	resp, err := r.roundTrip(ctx, &request{GB: gb, Nums: nums})
	if err != nil {
		return nil, Stats{}, err
	}
	return resp.Chunks, resp.Stats, nil
}

// EstimateScan implements Backend over the wire.
func (r *Remote) EstimateScan(ctx context.Context, gb lattice.ID, nums []int) (int64, error) {
	resp, err := r.roundTrip(ctx, &request{GB: gb, Nums: nums, EstimateOnly: true})
	if err != nil {
		return 0, err
	}
	return resp.Estimate, nil
}

// Close implements Backend. In-flight retry loops observe the flag on their
// next attempt and stop.
func (r *Remote) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var err error
	if r.conn != nil {
		err = r.conn.Close()
		r.conn = nil
		r.dec, r.enc = nil, nil
	}
	return err
}
