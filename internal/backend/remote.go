package backend

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/obs"
	"aggcache/internal/wire"
)

// RetryPolicy tunes the self-healing remote client: how many times one
// request is tried, how the backoff between tries grows, and the wire
// deadlines each try runs under.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request, including the
	// first. At least 1.
	MaxAttempts int
	// BaseBackoff is the pause before the first retry; each further retry
	// doubles it (with ±50% deterministic jitter) up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// DialTimeout bounds each (re)connect attempt.
	DialTimeout time.Duration
	// IOTimeout bounds one request/response exchange on the wire when the
	// caller's context carries no earlier deadline.
	IOTimeout time.Duration
	// Seed drives the jitter; runs with the same seed back off identically.
	Seed int64
}

// DefaultRetryPolicy is the client's out-of-the-box resilience policy.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 4,
	BaseBackoff: 10 * time.Millisecond,
	MaxBackoff:  640 * time.Millisecond,
	DialTimeout: 2 * time.Second,
	IOTimeout:   30 * time.Second,
	Seed:        1,
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = d.DialTimeout
	}
	if p.IOTimeout <= 0 {
		p.IOTimeout = d.IOTimeout
	}
	return p
}

// backoff returns the pause before retry number retry (1-based), with ±50%
// jitter so a burst of failing clients does not hammer a recovering server
// in lockstep.
func (r *Remote) backoff(retry int) time.Duration {
	d := r.pol.BaseBackoff << (retry - 1)
	if d > r.pol.MaxBackoff || d <= 0 {
		d = r.pol.MaxBackoff
	}
	r.rngMu.Lock()
	f := 0.5 + r.rng.Float64()
	r.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// errRemoteClosed is the permanent error after Close: never retried, never
// counted as an outage (the owner chose to shut down).
var errRemoteClosed = errors.New("backend: remote is closed")

// Remote is a Backend talking to a Server over TCP. It is safe for
// concurrent use: callers multiplex one connection through per-request
// frame ids (wire.Mux), so N in-flight requests pipeline instead of
// queueing on a client-side lock. The client is self-healing — a broken
// connection is torn down and transparently re-dialed, and transient
// failures are retried with capped exponential backoff + jitter up to the
// policy's attempt budget, after which the error wraps ErrUnavailable.
// Close tears the connection down promptly; exchanges in flight fail with
// a permanent (non-retried, non-outage) error rather than waiting out
// their I/O deadlines.
type Remote struct {
	addr   string
	pol    RetryPolicy
	met    obs.RemoteMetrics
	maxPay int

	closed atomic.Bool

	rngMu sync.Mutex
	rng   *rand.Rand

	mu   sync.Mutex // guards conn/mux pointer swaps only, never held across I/O
	conn net.Conn   // eagerly dialed, not yet multiplexed (configuration window)
	mux  *wire.Mux
}

// Dial connects to a backend server with DefaultRetryPolicy.
func Dial(addr string) (*Remote, error) {
	return DialPolicy(addr, DefaultRetryPolicy)
}

// DialPolicy connects to a backend server with an explicit retry policy.
// The initial connection is established eagerly so configuration errors
// fail fast, but it is not multiplexed until the first request — the window
// in which SetMetrics and SetMaxPayload may still reconfigure the client.
func DialPolicy(addr string, pol RetryPolicy) (*Remote, error) {
	pol = pol.withDefaults()
	r := &Remote{addr: addr, pol: pol, rng: rand.New(rand.NewSource(pol.Seed))}
	conn, err := r.rawDial(context.Background())
	if err != nil {
		return nil, fmt.Errorf("backend: dial %s: %w", addr, err)
	}
	r.mu.Lock()
	r.conn = conn
	r.mu.Unlock()
	return r, nil
}

// SetMetrics attaches live observability metrics. Call it before the first
// request; it is not synchronized with requests in flight.
func (r *Remote) SetMetrics(m obs.RemoteMetrics) { r.met = m }

// SetMaxPayload bounds response frame payloads (0 means
// wire.DefaultMaxPayload). Call it before the first request.
func (r *Remote) SetMaxPayload(n int) { r.maxPay = n }

// rawDial opens one TCP connection.
func (r *Remote) rawDial(ctx context.Context) (net.Conn, error) {
	d := net.Dialer{Timeout: r.pol.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", r.addr)
	if err != nil {
		return nil, MarkTransient(err)
	}
	return conn, nil
}

// newMux wraps a connection with the multiplexer under the client's current
// configuration (metrics, payload bound).
func (r *Remote) newMux(conn net.Conn) *wire.Mux {
	return wire.NewMux(conn, r.maxPay, wire.Metrics{
		BytesIn:   r.met.WireBytesIn,
		BytesOut:  r.met.WireBytesOut,
		FramesIn:  r.met.FramesIn,
		FramesOut: r.met.FramesOut,
		InFlight:  r.met.InFlight,
	})
}

// dial establishes one multiplexed connection.
func (r *Remote) dial(ctx context.Context) (*wire.Mux, error) {
	conn, err := r.rawDial(ctx)
	if err != nil {
		return nil, err
	}
	return r.newMux(conn), nil
}

// getMux returns the live multiplexed connection, re-dialing if the
// previous one was torn down. Concurrent callers share the result.
func (r *Remote) getMux(ctx context.Context) (*wire.Mux, error) {
	r.mu.Lock()
	if r.closed.Load() {
		r.mu.Unlock()
		return nil, errRemoteClosed
	}
	if m := r.mux; m != nil && m.Healthy() {
		r.mu.Unlock()
		return m, nil
	}
	if c := r.conn; c != nil {
		// First request: multiplex the eagerly-dialed connection now that
		// configuration is settled. Not a redial.
		r.conn = nil
		m := r.newMux(c)
		r.mux = m
		r.mu.Unlock()
		return m, nil
	}
	r.mu.Unlock()
	// Dial outside the lock so a slow connect never blocks Close or callers
	// racing toward an already-live connection.
	r.met.Redials.Inc()
	m, err := r.dial(ctx)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.closed.Load() {
		r.mu.Unlock()
		m.Close()
		return nil, errRemoteClosed
	}
	if cur := r.mux; cur != nil && cur.Healthy() {
		// Another caller re-dialed first; share theirs.
		r.mu.Unlock()
		m.Close()
		return cur, nil
	}
	old := r.mux
	r.mux = m
	r.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return m, nil
}

// dropMux discards a connection whose stream failed, if it is still the
// current one.
func (r *Remote) dropMux(m *wire.Mux) {
	r.mu.Lock()
	if r.mux == m {
		r.mux = nil
	}
	r.mu.Unlock()
	m.Close()
}

// attempt performs one pipelined exchange. Wire-level failures are marked
// transient (the PR-3 taxonomy: a retry over a fresh connection may cure
// them) and the connection is dropped; in-band error frames become
// RemoteError, transient or permanent per the frame's flag; Close and the
// caller's context produce permanent errors untouched.
func (r *Remote) attempt(ctx context.Context, typ uint8, payload []byte) (*wire.Frame, error) {
	m, err := r.getMux(ctx)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(r.pol.IOTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	fr, err := m.RoundTrip(ctx, typ, 0, payload, deadline)
	if err != nil {
		// The caller's context expiring dominates any wire classification:
		// the exchange deadline that fired may have been the context's own.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if errors.Is(err, wire.ErrClosed) {
			return nil, errRemoteClosed
		}
		r.dropMux(m)
		return nil, MarkTransient(fmt.Errorf("backend: exchange: %w", err))
	}
	if fr.Type == wire.FrameBusy {
		// The server shed this request before doing any work on it.
		// Transient (a retry may get through) but never an outage, and the
		// retry loop honors the frame's retry-after hint.
		r.met.Busy.Inc()
		return nil, wire.DecodeBusy(fr.Payload)
	}
	if fr.Type == frameError {
		rerr := &RemoteError{Msg: decodeErrorFrame(fr.Payload)}
		if fr.Flags&wire.FlagTransient == 0 {
			return nil, rerr // deterministic per-request failure
		}
		return nil, MarkTransient(rerr)
	}
	return &fr, nil
}

// roundTrip sends one request, retrying transient failures per the policy.
func (r *Remote) roundTrip(ctx context.Context, typ uint8, payload []byte) (*wire.Frame, error) {
	r.met.Requests.Inc()
	var lastErr error
	for try := 0; try < r.pol.MaxAttempts; try++ {
		if r.closed.Load() {
			return nil, errRemoteClosed
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if try > 0 {
			r.met.Retries.Inc()
			pause := r.backoff(try)
			// A shedding server's retry-after hint is a floor on the pause:
			// retrying sooner than the server asked just earns another Busy.
			if be, ok := wire.AsBusy(lastErr); ok && be.RetryAfter > pause {
				pause = be.RetryAfter
			}
			t := time.NewTimer(pause)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
		}
		fr, err := r.attempt(ctx, typ, payload)
		if err == nil {
			return fr, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if !IsTransient(err) {
			return nil, err
		}
		lastErr = err
	}
	r.met.Unavailable.Inc()
	return nil, fmt.Errorf("backend: %s unreachable after %d attempts (%v): %w",
		r.addr, r.pol.MaxAttempts, lastErr, ErrUnavailable)
}

// ComputeChunks implements Backend over the wire: one frame out, one frame
// of chunk slabs back, however many chunks the batch names.
func (r *Remote) ComputeChunks(ctx context.Context, gb lattice.ID, nums []int) ([]*chunk.Chunk, Stats, error) {
	fr, err := r.roundTrip(ctx, frameCompute, encodeRequest(nil, gb, nums))
	if err != nil {
		return nil, Stats{}, err
	}
	chunks, stats, err := decodeChunksResponse(fr.Payload)
	if err != nil {
		return nil, Stats{}, err
	}
	return chunks, stats, nil
}

// EstimateScans implements Backend over the wire: per-chunk scan estimates
// for the whole batch in one round trip.
func (r *Remote) EstimateScans(ctx context.Context, gb lattice.ID, nums []int) ([]int64, error) {
	fr, err := r.roundTrip(ctx, frameEstimate, encodeRequest(nil, gb, nums))
	if err != nil {
		return nil, err
	}
	return decodeEstimatesResponse(fr.Payload)
}

// EstimateScan implements Backend over the wire.
func (r *Remote) EstimateScan(ctx context.Context, gb lattice.ID, nums []int) (int64, error) {
	ests, err := r.EstimateScans(ctx, gb, nums)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range ests {
		total += e
	}
	return total, nil
}

// Close implements Backend. The connection is torn down immediately:
// exchanges in flight fail promptly with a permanent error (never retried,
// never counted as an outage), and retry loops observe the flag on their
// next attempt and stop.
func (r *Remote) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	r.mu.Lock()
	m := r.mux
	c := r.conn
	r.mux = nil
	r.conn = nil
	r.mu.Unlock()
	if m != nil {
		m.Close()
	}
	if c != nil {
		c.Close()
	}
	return nil
}
