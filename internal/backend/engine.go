package backend

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"aggcache/internal/chunk"
	"aggcache/internal/data"
	"aggcache/internal/lattice"
	"aggcache/internal/obs"
)

// factSource is one chunk-clustered relation the engine can scan: the base
// fact table, or a materialized aggregate of it. Rows are sorted by chunk
// number at the source's group-by level with a dense offset index — the
// paper's "clustered index on the chunk number".
type factSource struct {
	gb      lattice.ID
	members []int32   // row-major member ids at gb's levels
	values  []float64 // measure sums
	counts  []int64   // contributing fact-row counts (1 for base rows)
	offsets []int64   // offsets[c]..offsets[c+1] = row range of chunk c
}

func (s *factSource) rows() int64 { return int64(len(s.values)) }

// Engine is the in-process backend: the fact table (plus any materialized
// aggregate group-bys) stored clustered by chunk number, with an aggregation
// executor. Materialized aggregates model the pre-computed summary tables a
// production warehouse keeps (§7.1 notes the backend-vs-cache factor depends
// on their presence).
//
// ComputeChunks and EstimateScan are safe for concurrent use: the cache
// engine issues backend round trips outside its own lock, so several queries
// can be in flight here at once. mu guards the sources and ancestor-table
// maps; the clustered row data itself is immutable once built.
type Engine struct {
	grid    *chunk.Grid
	latency LatencyModel
	nd      int

	mu      sync.RWMutex
	sources map[lattice.ID]*factSource
	// ancCache[(src<<32)|dst][d] maps a member at src's level to its
	// ancestor at dst's level.
	ancCache map[uint64][][]int32

	// met is the optional live-metrics bundle (zero value records nothing);
	// handles are atomics, so ComputeChunks records without taking mu.
	met obs.BackendMetrics
}

// NewEngine loads the fact table into clustered chunk order. The table is
// copied; the caller may discard it.
func NewEngine(g *chunk.Grid, tab *data.Table, latency LatencyModel) (*Engine, error) {
	if tab.Schema() != g.Schema() {
		return nil, fmt.Errorf("backend: table and grid use different schemas")
	}
	e := &Engine{
		grid:     g,
		latency:  latency,
		nd:       g.Schema().NumDims(),
		sources:  make(map[lattice.ID]*factSource),
		ancCache: make(map[uint64][][]int32),
	}
	base := g.Lattice().Base()
	n := tab.Len()
	rows := make([][]int32, 0, n)
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, tab.Row(i))
		vals = append(vals, tab.Value(i))
	}
	e.sources[base] = e.clusterRows(base, rows, vals, nil)
	return e, nil
}

// clusterRows sorts (member-vector, sum, count) rows by chunk number at gb
// and builds the offset index. A nil counts means one fact row each.
func (e *Engine) clusterRows(gb lattice.ID, rows [][]int32, vals []float64, counts []int64) *factSource {
	g := e.grid
	n := len(rows)
	nums := make([]int32, n)
	order := make([]int32, n)
	for i := 0; i < n; i++ {
		num, _ := g.ChunkOfCell(gb, rows[i])
		nums[i] = int32(num)
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return nums[order[a]] < nums[order[b]] })
	s := &factSource{
		gb:      gb,
		members: make([]int32, 0, n*e.nd),
		values:  make([]float64, 0, n),
		counts:  make([]int64, 0, n),
		offsets: make([]int64, g.NumChunks(gb)+1),
	}
	for _, ri := range order {
		s.members = append(s.members, rows[ri]...)
		s.values = append(s.values, vals[ri])
		if counts == nil {
			s.counts = append(s.counts, 1)
		} else {
			s.counts = append(s.counts, counts[ri])
		}
	}
	c := 0
	for i, ri := range order {
		for c <= int(nums[ri]) {
			s.offsets[c] = int64(i)
			c++
		}
	}
	for ; c < len(s.offsets); c++ {
		s.offsets[c] = int64(n)
	}
	return s
}

// Rows returns the number of base fact rows loaded.
func (e *Engine) Rows() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.sources[e.grid.Lattice().Base()].rows()
}

// Grid returns the engine's chunk grid.
func (e *Engine) Grid() *chunk.Grid { return e.grid }

// SetMetrics attaches live observability metrics. Call it before the engine
// serves requests; it is not synchronized with requests in flight.
func (e *Engine) SetMetrics(m obs.BackendMetrics) { e.met = m }

// Materialize precomputes and stores the given group-bys, clustered on
// chunk number, so requests on their descendants scan the (much smaller)
// aggregate instead of the base table — the warehouse's summary tables.
func (e *Engine) Materialize(gbs ...lattice.ID) error {
	lat := e.grid.Lattice()
	for _, gb := range gbs {
		if int(gb) < 0 || int(gb) >= lat.NumNodes() {
			return fmt.Errorf("backend: materialize: group-by %d out of range", gb)
		}
		e.mu.RLock()
		_, ok := e.sources[gb]
		e.mu.RUnlock()
		if ok {
			continue
		}
		chunks, _, err := e.ComputeChunks(context.Background(), gb, allChunks(e.grid, gb))
		if err != nil {
			return fmt.Errorf("backend: materialize %s: %w", lat.LevelTupleString(gb), err)
		}
		var rows [][]int32
		var vals []float64
		var cnts []int64
		for _, c := range chunks {
			for i, key := range c.Keys {
				rows = append(rows, e.grid.CellMembers(gb, int(c.Num), key, nil))
				vals = append(vals, c.Vals[i])
				cnts = append(cnts, c.Counts[i])
			}
		}
		src := e.clusterRows(gb, rows, vals, cnts)
		e.mu.Lock()
		e.sources[gb] = src
		e.mu.Unlock()
	}
	return nil
}

// Materialized returns the group-bys with a materialized source (always
// including the base).
func (e *Engine) Materialized() []lattice.ID {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]lattice.ID, 0, len(e.sources))
	for gb := range e.sources {
		out = append(out, gb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func allChunks(g *chunk.Grid, gb lattice.ID) []int {
	nums := make([]int, g.NumChunks(gb))
	for i := range nums {
		nums[i] = i
	}
	return nums
}

// pickSource returns the smallest materialized relation that can answer gb.
func (e *Engine) pickSource(gb lattice.ID) *factSource {
	e.mu.RLock()
	defer e.mu.RUnlock()
	lat := e.grid.Lattice()
	var best *factSource
	for sgb, s := range e.sources {
		if !lat.ComputableFrom(gb, sgb) {
			continue
		}
		if best == nil || s.rows() < best.rows() {
			best = s
		}
	}
	return best // never nil: the base answers everything
}

// ancestors returns member maps from src's levels down to dst's levels.
// Tables are built lazily and cached; concurrent misses may build the same
// table twice, with the last write winning — both copies are identical.
func (e *Engine) ancestors(src, dst lattice.ID) [][]int32 {
	key := uint64(src)<<32 | uint64(uint32(dst))
	e.mu.RLock()
	a, ok := e.ancCache[key]
	e.mu.RUnlock()
	if ok {
		return a
	}
	sch := e.grid.Schema()
	lat := e.grid.Lattice()
	a = make([][]int32, e.nd)
	for d := 0; d < e.nd; d++ {
		dim := sch.Dim(d)
		from, to := lat.LevelAt(src, d), lat.LevelAt(dst, d)
		tab := make([]int32, dim.Card(from))
		for m := range tab {
			tab[m] = dim.Ancestor(from, to, int32(m))
		}
		a[d] = tab
	}
	e.mu.Lock()
	e.ancCache[key] = a
	e.mu.Unlock()
	return a
}

// ComputeChunks implements Backend. Each requested chunk's region is located
// through the clustered index of the smallest applicable source and scanned
// once; tuples aggregate directly into the target chunk's cell map.
func (e *Engine) ComputeChunks(ctx context.Context, gb lattice.ID, nums []int) ([]*chunk.Chunk, Stats, error) {
	start := time.Now()
	g := e.grid
	lat := g.Lattice()
	if int(gb) < 0 || int(gb) >= lat.NumNodes() {
		return nil, Stats{}, fmt.Errorf("backend: group-by %d out of range", gb)
	}
	src := e.pickSource(gb)
	anc := e.ancestors(src.gb, gb)
	var stats Stats
	out := make([]*chunk.Chunk, 0, len(nums))
	var sbuf []int
	mapped := make([]int32, e.nd)
	for _, num := range nums {
		// One cancellation check per chunk keeps a long multi-chunk scan
		// responsive to deadlines without per-tuple overhead.
		if err := ctx.Err(); err != nil {
			return nil, Stats{}, err
		}
		if num < 0 || num >= g.NumChunks(gb) {
			return nil, Stats{}, fmt.Errorf("backend: chunk %d of group-by %s out of range", num, lat.LevelTupleString(gb))
		}
		// Pooled accumulator: the built chunk is handed to the caller (which
		// may cache it indefinitely) so Build allocates fresh arrays, but the
		// accumulator itself — the large transient — is reused across chunks
		// and requests.
		cm := g.GetCellMap(gb, num)
		sbuf = g.AncestorChunks(gb, num, src.gb, sbuf[:0])
		for _, sc := range sbuf {
			lo, hi := src.offsets[sc], src.offsets[sc+1]
			for r := lo; r < hi; r++ {
				row := src.members[r*int64(e.nd) : (r+1)*int64(e.nd)]
				for d := 0; d < e.nd; d++ {
					mapped[d] = anc[d][row[d]]
				}
				_, key := g.ChunkOfCell(gb, mapped)
				cm.AddCell(key, src.values[r], src.counts[r])
			}
			stats.TuplesScanned += hi - lo
		}
		c := cm.Build(gb, num)
		chunk.PutCellMap(cm)
		stats.ResultCells += int64(c.Cells())
		out = append(out, c)
	}
	stats.Wall = time.Since(start)
	stats.Sim = e.latency.charge(stats.TuplesScanned)
	e.met.Requests.Inc()
	e.met.Chunks.Add(int64(len(out)))
	e.met.TuplesScanned.Add(stats.TuplesScanned)
	e.met.ResultCells.Add(stats.ResultCells)
	e.met.Wall.Observe(stats.Wall)
	e.met.Sim.Observe(stats.Sim)
	if e.latency.Sleep {
		t := time.NewTimer(stats.Sim)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, Stats{}, ctx.Err()
		}
	}
	return out, stats, nil
}

// EstimateScans implements Backend: the tuples ComputeChunks would read per
// requested chunk, resolved through the clustered index without scanning.
func (e *Engine) EstimateScans(ctx context.Context, gb lattice.ID, nums []int) ([]int64, error) {
	g := e.grid
	lat := g.Lattice()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if int(gb) < 0 || int(gb) >= lat.NumNodes() {
		return nil, fmt.Errorf("backend: group-by %d out of range", gb)
	}
	src := e.pickSource(gb)
	ests := make([]int64, len(nums))
	var sbuf []int
	for i, num := range nums {
		if num < 0 || num >= g.NumChunks(gb) {
			return nil, fmt.Errorf("backend: chunk %d of group-by %s out of range", num, lat.LevelTupleString(gb))
		}
		sbuf = g.AncestorChunks(gb, num, src.gb, sbuf[:0])
		for _, sc := range sbuf {
			ests[i] += src.offsets[sc+1] - src.offsets[sc]
		}
	}
	return ests, nil
}

// EstimateScan implements Backend: the total over EstimateScans.
func (e *Engine) EstimateScan(ctx context.Context, gb lattice.ID, nums []int) (int64, error) {
	ests, err := e.EstimateScans(ctx, gb, nums)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, est := range ests {
		total += est
	}
	return total, nil
}

// ComputeGroupBy computes every chunk of a group-by; used for cache
// preloading and for building exact size oracles.
func (e *Engine) ComputeGroupBy(gb lattice.ID) ([]*chunk.Chunk, Stats, error) {
	return e.ComputeChunks(context.Background(), gb, allChunks(e.grid, gb))
}

// Close implements Backend; the in-process engine has nothing to release.
func (e *Engine) Close() error { return nil }
