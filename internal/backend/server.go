package backend

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
)

// request is one wire-protocol request: compute (or, with EstimateOnly,
// cost-estimate) the listed chunks of one group-by.
type request struct {
	GB           lattice.ID
	Nums         []int
	EstimateOnly bool
}

// response carries the computed chunks back. Err is non-empty on failure.
type response struct {
	Chunks   []*chunk.Chunk
	Stats    Stats
	Estimate int64
	Err      string
}

// Server exposes an Engine over a TCP listener with a gob protocol: each
// connection carries a stream of request/response pairs. It stands in for
// the paper's remote commercial DBMS tier.
type Server struct {
	engine *Engine

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer wraps an engine for serving.
func NewServer(e *Engine) *Server {
	return &Server{engine: e, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serving happens on background goroutines until
// Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("backend: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken connection
		}
		var resp response
		if req.EstimateOnly {
			est, err := s.engine.EstimateScan(req.GB, req.Nums)
			resp = response{Estimate: est}
			if err != nil {
				resp = response{Err: err.Error()}
			}
		} else {
			chunks, stats, err := s.engine.ComputeChunks(req.GB, req.Nums)
			resp = response{Chunks: chunks, Stats: stats}
			if err != nil {
				resp = response{Err: err.Error()}
			}
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Close stops the listener and closes active connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Remote is a Backend talking to a Server over TCP. It is safe for
// concurrent use; requests are serialized over one connection.
type Remote struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *gob.Decoder
	enc  *gob.Encoder
}

// Dial connects to a backend server.
func Dial(addr string) (*Remote, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("backend: dial %s: %w", addr, err)
	}
	return &Remote{conn: conn, dec: gob.NewDecoder(conn), enc: gob.NewEncoder(conn)}, nil
}

// roundTrip sends one request and decodes its response.
func (r *Remote) roundTrip(req *request) (*response, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn == nil {
		return nil, errors.New("backend: remote is closed")
	}
	if err := r.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("backend: send: %w", err)
	}
	var resp response
	if err := r.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			err = errors.New("server closed the connection")
		}
		return nil, fmt.Errorf("backend: receive: %w", err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("backend: remote: %s", resp.Err)
	}
	return &resp, nil
}

// ComputeChunks implements Backend over the wire.
func (r *Remote) ComputeChunks(gb lattice.ID, nums []int) ([]*chunk.Chunk, Stats, error) {
	resp, err := r.roundTrip(&request{GB: gb, Nums: nums})
	if err != nil {
		return nil, Stats{}, err
	}
	return resp.Chunks, resp.Stats, nil
}

// EstimateScan implements Backend over the wire.
func (r *Remote) EstimateScan(gb lattice.ID, nums []int) (int64, error) {
	resp, err := r.roundTrip(&request{GB: gb, Nums: nums, EstimateOnly: true})
	if err != nil {
		return 0, err
	}
	return resp.Estimate, nil
}

// Close implements Backend.
func (r *Remote) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn == nil {
		return nil
	}
	err := r.conn.Close()
	r.conn = nil
	return err
}
