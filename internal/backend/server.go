package backend

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"aggcache/internal/obs"
	"aggcache/internal/wire"
)

// Timeouts bounds the server side of the wire protocol; it is wire.Timeouts
// shared with the middle-tier server (see that type for field semantics).
type Timeouts = wire.Timeouts

// DefaultTimeouts is the server's out-of-the-box deadline policy.
var DefaultTimeouts = Timeouts{Write: time.Minute}

// Server exposes an Engine over a TCP listener speaking the length-prefixed
// binary frame protocol of package wire (DESIGN.md §11). It stands in for
// the paper's remote commercial DBMS tier. Each connection is pipelined:
// request frames are dispatched to concurrent handlers and responses return
// in completion order, matched to their request by id. Per-request engine
// errors are replied in-band; only wire-level failures (bad magic, a
// truncated frame, a reset) close the connection, and an idle-deadline
// reaping is counted separately from those.
type Server struct {
	engine      *Engine
	tmo         Timeouts
	met         obs.BackendMetrics
	maxPay      int
	maxInFlight int
	busyLimit   int

	busy atomic.Int64 // requests executing server-wide, for the busy limit

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer wraps an engine for serving with DefaultTimeouts.
func NewServer(e *Engine) *Server {
	return &Server{engine: e, tmo: DefaultTimeouts, conns: make(map[net.Conn]struct{})}
}

// SetTimeouts replaces the deadline policy. Call it before Listen; it is not
// synchronized with connections in flight.
func (s *Server) SetTimeouts(t Timeouts) { s.tmo = t }

// SetMaxPayload bounds request frame payloads (0 means
// wire.DefaultMaxPayload). Call it before Listen.
func (s *Server) SetMaxPayload(n int) { s.maxPay = n }

// SetMaxInFlight caps concurrently executing handlers per connection (0
// means wire.DefaultMaxInFlight). Call it before Listen.
func (s *Server) SetMaxInFlight(n int) { s.maxInFlight = n }

// SetBusyLimit caps concurrently executing requests across all connections;
// excess requests are refused with an in-band Busy reply (transient, with a
// retry-after hint) instead of queueing behind the engine. 0 disables the
// limit. Call it before Listen.
func (s *Server) SetBusyLimit(n int) { s.busyLimit = n }

// SetMetrics attaches live observability metrics (the server records the
// wire-level counters; attach the same bundle to the engine for the compute
// counters). Call it before Listen.
func (s *Server) SetMetrics(m obs.BackendMetrics) { s.met = m }

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serving happens on background goroutines until
// Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("backend: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	wire.ServeConn(conn, wire.ConnOptions{
		Timeouts:    s.tmo,
		MaxPayload:  s.maxPay,
		MaxInFlight: s.maxInFlight,
		Metrics: wire.Metrics{
			BytesIn:   s.met.WireBytesIn,
			BytesOut:  s.met.WireBytesOut,
			FramesIn:  s.met.FramesIn,
			FramesOut: s.met.FramesOut,
			InFlight:  s.met.InFlight,
		},
		WireErrors: s.met.WireErrors,
		IdleCloses: s.met.IdleCloses,
	}, s.handleFrame)
}

// handleFrame serves one request frame, converting engine errors — and
// panics — into in-band error frames so one bad request never tears down
// the connection under its pipelined neighbors. The transient flag carries
// the PR-3 taxonomy to the client: countsAsOutage failures (the engine did
// not answer) are retryable, deterministic rejections are not.
func (s *Server) handleFrame(fr *wire.Frame) (resp wire.Frame) {
	if s.busyLimit > 0 {
		if s.busy.Add(1) > int64(s.busyLimit) {
			s.busy.Add(-1)
			s.met.Sheds.Inc()
			// The hint is rough — half the request timeout, floored — but any
			// positive value beats clients retrying in lockstep immediately.
			hint := s.tmo.Request / 2
			if hint <= 0 {
				hint = 10 * time.Millisecond
			}
			return wire.BusyFrame(hint, "queue_full")
		}
		defer s.busy.Add(-1)
	}
	defer func() {
		if p := recover(); p != nil {
			s.met.Panics.Inc()
			resp = errorFrame(fmt.Sprintf("panic serving request: %v", p), true)
		}
	}()
	gb, nums, err := decodeRequest(fr.Payload)
	if err != nil {
		return errorFrame(err.Error(), false)
	}
	ctx := context.Background()
	if s.tmo.Request > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.tmo.Request)
		defer cancel()
	}
	switch fr.Type {
	case frameCompute:
		chunks, stats, err := s.engine.ComputeChunks(ctx, gb, nums)
		if err != nil {
			return errorFrame(err.Error(), countsAsOutage(err))
		}
		return wire.Frame{Type: frameChunks, Payload: encodeChunksResponse(nil, chunks, stats)}
	case frameEstimate:
		ests, err := s.engine.EstimateScans(ctx, gb, nums)
		if err != nil {
			return errorFrame(err.Error(), countsAsOutage(err))
		}
		return wire.Frame{Type: frameEstimates, Payload: encodeEstimatesResponse(nil, ests)}
	default:
		return errorFrame(fmt.Sprintf("unknown frame type 0x%02x", fr.Type), false)
	}
}

// Close stops the listener and closes active connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}
