package backend

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/obs"
)

// request is one wire-protocol request: compute (or, with EstimateOnly,
// cost-estimate) the listed chunks of one group-by.
type request struct {
	GB           lattice.ID
	Nums         []int
	EstimateOnly bool
}

// response carries the computed chunks back. Err is non-empty on failure;
// Transient marks the failure as retryable (the engine did not answer — a
// server-side timeout or panic), as opposed to a deterministic per-request
// rejection the client must not retry.
type response struct {
	Chunks    []*chunk.Chunk
	Stats     Stats
	Estimate  int64
	Err       string
	Transient bool
}

// Timeouts bounds the server side of the wire protocol so a stuck peer or a
// runaway request can never wedge a serving goroutine forever.
type Timeouts struct {
	// Read bounds the wait for the next request frame; connections idle
	// longer are closed. 0 means no limit (middle tiers legitimately keep
	// idle persistent connections).
	Read time.Duration
	// Write bounds encoding one response to a slow or stuck client.
	Write time.Duration
	// Request bounds the engine computation for one request; the reply is a
	// transient error rather than a torn-down connection. 0 means no limit.
	Request time.Duration
}

// DefaultTimeouts is the server's out-of-the-box deadline policy.
var DefaultTimeouts = Timeouts{Write: time.Minute}

// Server exposes an Engine over a TCP listener with a gob protocol: each
// connection carries a stream of request/response pairs. It stands in for
// the paper's remote commercial DBMS tier. Per-request engine errors are
// replied in-band; only wire-level failures (a malformed gob frame loses
// the stream framing and cannot be resynchronized) close the connection.
type Server struct {
	engine *Engine
	tmo    Timeouts
	met    obs.BackendMetrics

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer wraps an engine for serving with DefaultTimeouts.
func NewServer(e *Engine) *Server {
	return &Server{engine: e, tmo: DefaultTimeouts, conns: make(map[net.Conn]struct{})}
}

// SetTimeouts replaces the deadline policy. Call it before Listen; it is not
// synchronized with connections in flight.
func (s *Server) SetTimeouts(t Timeouts) { s.tmo = t }

// SetMetrics attaches live observability metrics (the server records the
// wire-level counters; attach the same bundle to the engine for the compute
// counters). Call it before Listen.
func (s *Server) SetMetrics(m obs.BackendMetrics) { s.met = m }

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serving happens on background goroutines until
// Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("backend: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		if s.tmo.Read > 0 {
			conn.SetReadDeadline(time.Now().Add(s.tmo.Read))
		}
		var req request
		if err := dec.Decode(&req); err != nil {
			// EOF is the client's clean goodbye; anything else — a garbage
			// frame, a reset, an idle timeout — still just closes this one
			// connection, counted so it is visible on /metrics.
			if !errors.Is(err, io.EOF) {
				s.met.WireErrors.Inc()
			}
			return
		}
		resp := s.handle(&req)
		if s.tmo.Write > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.tmo.Write))
		}
		if err := enc.Encode(resp); err != nil {
			s.met.WireErrors.Inc()
			return
		}
	}
}

// handle serves one decoded request, converting engine errors — and panics —
// into in-band error responses so one bad request never tears down the
// connection under its neighbors.
func (s *Server) handle(req *request) (resp *response) {
	defer func() {
		if p := recover(); p != nil {
			s.met.Panics.Inc()
			resp = &response{Err: fmt.Sprintf("panic serving request: %v", p), Transient: true}
		}
	}()
	ctx := context.Background()
	if s.tmo.Request > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.tmo.Request)
		defer cancel()
	}
	if req.EstimateOnly {
		est, err := s.engine.EstimateScan(ctx, req.GB, req.Nums)
		if err != nil {
			return &response{Err: err.Error(), Transient: countsAsOutage(err)}
		}
		return &response{Estimate: est}
	}
	chunks, stats, err := s.engine.ComputeChunks(ctx, req.GB, req.Nums)
	if err != nil {
		return &response{Err: err.Error(), Transient: countsAsOutage(err)}
	}
	return &response{Chunks: chunks, Stats: stats}
}

// Close stops the listener and closes active connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}
