package backend

import (
	"context"
	"testing"

	"aggcache/internal/lattice"
)

func TestMaterializeMatchesBase(t *testing.T) {
	plain, tab := tinyEngine(t, LatencyModel{})
	mat, _ := tinyEngine(t, LatencyModel{})
	lat := plain.Grid().Lattice()
	// Materialize a mid-level group-by: Product aggregated out, time at
	// month, channel at base.
	mid := lat.MustID(0, 2, 1)
	if err := mat.Materialize(mid); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	_ = tab
	// Every descendant of mid must produce identical results either way.
	for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
		if !lat.ComputableFrom(id, mid) {
			continue
		}
		want, _, err := plain.ComputeGroupBy(id)
		if err != nil {
			t.Fatalf("plain: %v", err)
		}
		got, _, err := mat.ComputeGroupBy(id)
		if err != nil {
			t.Fatalf("materialized: %v", err)
		}
		for i := range want {
			if want[i].Cells() != got[i].Cells() {
				t.Fatalf("gb %s chunk %d: %d cells vs %d", lat.LevelTupleString(id), i, got[i].Cells(), want[i].Cells())
			}
			for j, key := range want[i].Keys {
				v, ok := got[i].Value(key)
				if !ok {
					t.Fatalf("gb %s chunk %d: missing cell", lat.LevelTupleString(id), i)
				}
				if diff := v - want[i].Vals[j]; diff > 1e-6 || diff < -1e-6 {
					t.Fatalf("gb %s chunk %d: value %v vs %v", lat.LevelTupleString(id), i, v, want[i].Vals[j])
				}
			}
		}
	}
}

func TestMaterializeReducesScan(t *testing.T) {
	e, tab := tinyEngine(t, LatencyModel{})
	lat := e.Grid().Lattice()
	mid := lat.MustID(0, 2, 1)
	before, _, err := e.ComputeChunks(context.Background(), lat.Top(), []int{0})
	if err != nil {
		t.Fatalf("before: %v", err)
	}
	_ = before
	est0, err := e.EstimateScan(context.Background(), lat.Top(), []int{0})
	if err != nil {
		t.Fatalf("EstimateScan: %v", err)
	}
	if est0 != int64(tab.Len()) {
		t.Fatalf("base estimate %d, want %d", est0, tab.Len())
	}
	if err := e.Materialize(mid); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	est1, err := e.EstimateScan(context.Background(), lat.Top(), []int{0})
	if err != nil {
		t.Fatalf("EstimateScan: %v", err)
	}
	if est1 >= est0 {
		t.Fatalf("materialization did not reduce estimated scan: %d -> %d", est0, est1)
	}
	// The actual scan matches the estimate.
	_, stats, err := e.ComputeChunks(context.Background(), lat.Top(), []int{0})
	if err != nil {
		t.Fatalf("ComputeChunks: %v", err)
	}
	if stats.TuplesScanned != est1 {
		t.Fatalf("scanned %d, estimated %d", stats.TuplesScanned, est1)
	}
	// A group-by not computable from mid still scans the base.
	est2, err := e.EstimateScan(context.Background(), lat.Base(), []int{0})
	if err != nil {
		t.Fatalf("EstimateScan(base): %v", err)
	}
	if est2 <= 0 {
		t.Fatalf("base-level estimate %d", est2)
	}
}

func TestMaterializeIdempotentAndErrors(t *testing.T) {
	e, _ := tinyEngine(t, LatencyModel{})
	lat := e.Grid().Lattice()
	if got := len(e.Materialized()); got != 1 {
		t.Fatalf("initial Materialized = %d, want 1 (base)", got)
	}
	if err := e.Materialize(lat.Top(), lat.Top()); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if got := len(e.Materialized()); got != 2 {
		t.Fatalf("Materialized = %d, want 2", got)
	}
	if err := e.Materialize(lattice.ID(9999)); err == nil {
		t.Fatalf("out-of-range materialize: expected error")
	}
	if _, err := e.EstimateScan(context.Background(), lattice.ID(9999), []int{0}); err == nil {
		t.Fatalf("out-of-range estimate: expected error")
	}
	if _, err := e.EstimateScan(context.Background(), lat.Top(), []int{7}); err == nil {
		t.Fatalf("out-of-range chunk estimate: expected error")
	}
}

func TestRemoteEstimateScan(t *testing.T) {
	e, tab := tinyEngine(t, LatencyModel{})
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	remote, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer remote.Close()
	lat := e.Grid().Lattice()
	est, err := remote.EstimateScan(context.Background(), lat.Top(), []int{0})
	if err != nil {
		t.Fatalf("EstimateScan: %v", err)
	}
	if est != int64(tab.Len()) {
		t.Fatalf("remote estimate %d, want %d", est, tab.Len())
	}
	if _, err := remote.EstimateScan(context.Background(), 9999, []int{0}); err == nil {
		t.Fatalf("remote bad estimate: expected error")
	}
}
