package views

import (
	"testing"

	"aggcache/internal/apb"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/schema"
	"aggcache/internal/sizer"
)

// fixedSizer returns hand-set group-by sizes.
type fixedSizer map[lattice.ID]int64

func (f fixedSizer) ChunkCells(gb lattice.ID, num int) int64 { return f[gb] }
func (f fixedSizer) GroupByCells(gb lattice.ID) int64        { return f[gb] }

// diamond builds the 2x2 lattice (two dimensions, hierarchy 1 each).
func diamond(t *testing.T) *chunk.Grid {
	t.Helper()
	a := schema.MustNewDimension("A", []schema.HierarchySpec{{Name: "a", Card: 4}})
	b := schema.MustNewDimension("B", []schema.HierarchySpec{{Name: "b", Card: 4}})
	return chunk.MustNewGrid(schema.MustNew("M", a, b), [][]int{{1, 2}, {1, 2}})
}

func TestGreedyPicksSmallUsefulView(t *testing.T) {
	g := diamond(t)
	lat := g.Lattice()
	// Sizes: base 100; (1,0) tiny (10), (0,1) large (90), top 1.
	sz := fixedSizer{
		lat.MustID(1, 1): 100,
		lat.MustID(1, 0): 10,
		lat.MustID(0, 1): 90,
		lat.MustID(0, 0): 1,
	}
	sel, err := Greedy(g, sz, 1, 0)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if len(sel.Views) != 1 || sel.Views[0] != lat.MustID(1, 0) {
		t.Fatalf("selected %s, want (1,0)", sel.Describe(lat))
	}
	// Benefit: (1,0) improves itself and (0,0): (100-10)*2 = 180; (0,1)
	// would improve itself and (0,0): (100-90)*2 = 20.
	if sel.Benefits[0] != 180 {
		t.Fatalf("benefit = %d, want 180", sel.Benefits[0])
	}
	// Total cost after: base 100 + (1,0) 10 + (0,1) 100 + top 10 = 220.
	if sel.TotalCost != 220 {
		t.Fatalf("TotalCost = %d, want 220", sel.TotalCost)
	}
	if got := TotalCostOf(g, sz, sel.Views); got != 220 {
		t.Fatalf("TotalCostOf = %d, want 220", got)
	}
}

func TestGreedyStopsWhenNoBenefit(t *testing.T) {
	g := diamond(t)
	lat := g.Lattice()
	// Every aggregate as large as the base: nothing helps.
	sz := fixedSizer{
		lat.MustID(1, 1): 100,
		lat.MustID(1, 0): 100,
		lat.MustID(0, 1): 100,
		lat.MustID(0, 0): 100,
	}
	sel, err := Greedy(g, sz, 3, 0)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if len(sel.Views) != 0 {
		t.Fatalf("selected %s, want none", sel.Describe(lat))
	}
	if sel.Describe(lat) != "(none)" {
		t.Fatalf("Describe = %q", sel.Describe(lat))
	}
}

func TestGreedyMonotoneImprovement(t *testing.T) {
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(3)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sz := sizer.NewEstimate(g, int64(tab.Len()))
	prev := TotalCostOf(g, sz, nil)
	var views []lattice.ID
	for k := 1; k <= 4; k++ {
		sel, err := Greedy(g, sz, k, 0)
		if err != nil {
			t.Fatalf("Greedy(%d): %v", k, err)
		}
		cost := sel.TotalCost
		if cost > prev {
			t.Fatalf("k=%d: cost %d worse than %d", k, cost, prev)
		}
		if len(sel.Views) > k {
			t.Fatalf("k=%d: %d views", k, len(sel.Views))
		}
		// Selection order benefits are non-increasing (greedy invariant).
		for i := 1; i < len(sel.Benefits); i++ {
			if sel.Benefits[i] > sel.Benefits[i-1] {
				t.Fatalf("benefits not non-increasing: %v", sel.Benefits)
			}
		}
		prev = cost
		views = sel.Views
	}
	// The final cost matches an independent evaluation.
	if got := TotalCostOf(g, sz, views); got != prev {
		t.Fatalf("TotalCostOf = %d, want %d", got, prev)
	}
}

func TestGreedyByteBudget(t *testing.T) {
	cfg := apb.New(apb.ScaleTiny)
	g, tab, err := cfg.Build(3)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sz := sizer.NewEstimate(g, int64(tab.Len()))
	unbounded, _ := Greedy(g, sz, 8, 0)
	if len(unbounded.Views) == 0 {
		t.Skip("no beneficial views at this scale")
	}
	capped, _ := Greedy(g, sz, 8, 1) // 1 byte: nothing fits
	if len(capped.Views) != 0 {
		t.Fatalf("budget 1 byte selected %d views", len(capped.Views))
	}
	half, _ := Greedy(g, sz, 8, unbounded.Bytes/2+1)
	if half.Bytes > unbounded.Bytes/2+1 {
		t.Fatalf("budget exceeded: %d > %d", half.Bytes, unbounded.Bytes/2+1)
	}
}

func TestGreedyErrors(t *testing.T) {
	g := diamond(t)
	if _, err := Greedy(g, fixedSizer{}, -1, 0); err == nil {
		t.Fatalf("negative k: expected error")
	}
	sel, err := Greedy(g, fixedSizer{0: 1, 1: 1, 2: 1, 3: 1}, 0, 0)
	if err != nil || len(sel.Views) != 0 {
		t.Fatalf("k=0: %v %v", sel, err)
	}
}

func TestSortIDs(t *testing.T) {
	ids := []lattice.ID{3, 1, 2}
	sortIDs(ids)
	if ids[0] != 1 || ids[2] != 3 {
		t.Fatalf("sortIDs = %v", ids)
	}
}
