// Package views implements greedy materialized-view selection over the
// group-by lattice, after Harinarayan, Rajaraman and Ullman's "Implementing
// Data Cubes Efficiently" (SIGMOD 1996) — the precomputation work the paper
// builds on (§3, §5 cite [HRU96]). The backend uses it to decide which
// aggregates to materialize; the cost-based middle tier (§5.2) then routes
// queries between the cache and those views.
//
// Under the linear cost model, answering a query on group-by w from a
// materialized view v (with w computable from v) costs size(v) tuples. The
// greedy algorithm repeatedly materializes the view with the largest total
// benefit: the sum, over all group-bys, of the reduction in their cheapest
// answering cost.
package views

import (
	"fmt"
	"sort"

	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/sizer"
)

// Selection is the result of a greedy run.
type Selection struct {
	// Views lists the chosen group-bys in selection order (excluding the
	// base group-by, which is always available).
	Views []lattice.ID
	// Benefits[i] is the total cost reduction achieved by Views[i] at the
	// time it was chosen.
	Benefits []int64
	// TotalCost is Σ over all group-bys of their cheapest answering cost
	// after materializing every chosen view.
	TotalCost int64
	// Bytes estimates the storage the chosen views occupy.
	Bytes int64
}

// Greedy picks up to k views (beyond the base group-by) maximizing total
// benefit under the linear cost model. A non-positive-benefit candidate
// stops the selection early. maxBytes, when positive, caps the cumulative
// estimated storage of the chosen views.
func Greedy(g *chunk.Grid, s sizer.Sizer, k int, maxBytes int64) (*Selection, error) {
	if k < 0 {
		return nil, fmt.Errorf("views: k must be non-negative, got %d", k)
	}
	lat := g.Lattice()
	n := lat.NumNodes()
	base := lat.Base()

	size := make([]int64, n)
	for id := 0; id < n; id++ {
		size[id] = s.GroupByCells(lattice.ID(id))
	}
	// cost[w] = size of the smallest materialized ancestor of w.
	cost := make([]int64, n)
	for id := 0; id < n; id++ {
		cost[id] = size[base]
	}
	cost[base] = size[base]

	sel := &Selection{}
	var usedBytes int64
	for len(sel.Views) < k {
		bestView := lattice.ID(-1)
		var bestBenefit int64
		for v := lattice.ID(0); int(v) < n; v++ {
			if v == base {
				continue
			}
			var benefit int64
			for w := lattice.ID(0); int(w) < n; w++ {
				if lat.ComputableFrom(w, v) && cost[w] > size[v] {
					benefit += cost[w] - size[v]
				}
			}
			if benefit > bestBenefit {
				bestBenefit = benefit
				bestView = v
			}
		}
		if bestView < 0 || bestBenefit <= 0 {
			break
		}
		vBytes := size[bestView] * chunk.CellBytes
		if maxBytes > 0 && usedBytes+vBytes > maxBytes {
			// Skip views that no longer fit; since benefit is monotone in
			// future iterations only through cost updates, stopping here is
			// the standard budgeted-greedy behaviour.
			break
		}
		usedBytes += vBytes
		sel.Views = append(sel.Views, bestView)
		sel.Benefits = append(sel.Benefits, bestBenefit)
		for w := lattice.ID(0); int(w) < n; w++ {
			if lat.ComputableFrom(w, bestView) && cost[w] > size[bestView] {
				cost[w] = size[bestView]
			}
		}
	}
	for w := 0; w < n; w++ {
		sel.TotalCost += cost[w]
	}
	sel.Bytes = usedBytes
	return sel, nil
}

// TotalCostOf evaluates Σ cheapest answering cost for an arbitrary view set
// (plus the base); used to compare selections and in tests.
func TotalCostOf(g *chunk.Grid, s sizer.Sizer, views []lattice.ID) int64 {
	lat := g.Lattice()
	n := lat.NumNodes()
	base := lat.Base()
	mat := append([]lattice.ID{base}, views...)
	var total int64
	for w := lattice.ID(0); int(w) < n; w++ {
		best := int64(-1)
		for _, v := range mat {
			if !lat.ComputableFrom(w, v) {
				continue
			}
			c := s.GroupByCells(v)
			if best < 0 || c < best {
				best = c
			}
		}
		total += best
	}
	return total
}

// Describe renders the selection for reports.
func (sel *Selection) Describe(lat *lattice.Lattice) string {
	out := ""
	for i, v := range sel.Views {
		if i > 0 {
			out += ", "
		}
		out += lat.LevelTupleString(v)
	}
	if out == "" {
		out = "(none)"
	}
	return out
}

// sortIDs is a test helper kept here for reuse.
func sortIDs(ids []lattice.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
