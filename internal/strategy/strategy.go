// Package strategy implements the paper's cache lookup strategies: given a
// chunk of a group-by, decide whether it can be answered from the cache —
// directly or by aggregating other cached chunks — and produce an executable
// aggregation plan.
//
//   - ESM  (§3.1): exhaustive search over all lattice paths, first hit wins.
//   - ESMC (§5.1): exhaustive search returning the cheapest plan.
//   - VCM  (§4):   virtual counts make the computability test O(1); one
//     successful path is materialized.
//   - VCMC (§5.2): virtual counts plus Cost/BestParent arrays; the cheapest
//     plan is materialized in time linear in the plan size.
//   - NoAgg:       a conventional cache (exact chunk hits only), the paper's
//     "no aggregation" baseline.
//
// Strategies register as the cache's Listener so inserts and evictions keep
// their summary state (virtual counts, costs) current.
package strategy

import (
	"errors"
	"sync/atomic"
	"time"

	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
)

// ErrBudget is returned by budget-limited strategies when a single Find
// visits more nodes than allowed. The engine treats it as "not computable"
// and reports the truncation; it exists because faithful ESM/ESMC lookups
// are exponential (the paper measured 19,826 s for one ESMC lookup).
var ErrBudget = errors.New("strategy: lookup budget exceeded")

// Plan describes how to obtain one chunk from the cache. Either the chunk is
// Present, or it is aggregated from the Inputs — the full set of its chunks
// at the parent group-by Via.
type Plan struct {
	GB      lattice.ID
	Num     int
	Present bool
	Via     lattice.ID
	Inputs  []*Plan
	// Cost is the plan's estimated aggregation cost in tuples scanned
	// (linear cost model, §5); 0 for present chunks.
	Cost int64
}

// Leaves appends the cache keys of all present leaf chunks of the plan —
// the group of chunks the two-level policy reinforces after use.
func (p *Plan) Leaves(dst []cache.Key) []cache.Key {
	if p.Present {
		return append(dst, cache.Key{GB: p.GB, Num: int32(p.Num)})
	}
	for _, in := range p.Inputs {
		dst = in.Leaves(dst)
	}
	return dst
}

// Nodes returns the number of plan nodes (present leaves and intermediate
// aggregations).
func (p *Plan) Nodes() int {
	n := 1
	for _, in := range p.Inputs {
		n += in.Nodes()
	}
	return n
}

// Maint reports cumulative maintenance work a strategy has performed in its
// OnInsert/OnEvent handlers: state updates applied and wall time spent.
// Callers snapshot and diff it to attribute per-query update cost
// (Figure 10's "update" component, Table 2).
type Maint struct {
	Updates int64
	Time    time.Duration
}

// Sub returns m - o.
func (m Maint) Sub(o Maint) Maint {
	return Maint{Updates: m.Updates - o.Updates, Time: m.Time - o.Time}
}

// maintCounters accumulates maintenance work with atomic counters so
// Maintenance() can be sampled lock-free while queries are in flight (bench
// reporters and snapshots read it concurrently). The handlers that bump the
// counters run under their strategy's write lock.
type maintCounters struct {
	updates atomic.Int64
	nanos   atomic.Int64
}

// bump records n state updates.
func (m *maintCounters) bump(n int64) { m.updates.Add(n) }

// snapshot returns the counters as a Maint value.
func (m *maintCounters) snapshot() Maint {
	return Maint{Updates: m.updates.Load(), Time: time.Duration(m.nanos.Load())}
}

// timeMaint attributes fn's wall time to m.
func timeMaint(m *maintCounters, fn func()) {
	start := time.Now()
	fn()
	m.nanos.Add(int64(time.Since(start)))
}

// Strategy is a cache lookup strategy. Implementations synchronize
// internally: concurrent Finds share a read lock over the summary state,
// while OnInsert/OnEvent (which the cache store invokes from its Listener
// hooks, possibly from several shards at once) take the write lock. Every
// method may be called from any goroutine. A plan returned by Find reflects
// residence at lookup time; the engine re-validates it by pinning the leaves
// and falls back to fetching when a leaf has since been evicted.
type Strategy interface {
	// Name identifies the strategy in reports ("ESM", "VCMC", …).
	Name() string
	// Find reports whether chunk num of gb is answerable from the cache and
	// returns an executable plan. It returns ErrBudget when a node budget
	// was exhausted before an answer was established.
	Find(gb lattice.ID, num int) (*Plan, bool, error)
	// OnInsert and OnEvent implement cache.Listener to maintain summary
	// state. OnEvent distinguishes tier moves (Demoted, Promoted — the chunk
	// stays answerable, summary state must not change) from true departures
	// (Evicted, Removed).
	OnInsert(e *cache.Entry)
	OnEvent(ev cache.Event)
	// Overhead returns the strategy's summary-state space in bytes using the
	// paper's accounting (Table 3: 1 byte per count, 4 per cost, 1 per best
	// parent).
	Overhead() int64
	// Maintenance returns cumulative maintenance counters.
	Maintenance() Maint
	// LastVisited returns the number of nodes visited by the most recent
	// Find — the lookup-complexity metric behind Table 1. With concurrent
	// Finds in flight the value is that of whichever Find stored last.
	LastVisited() int64
}

// CostEstimator is the benefit API a strategy may offer on top of Find:
// the least cost (in tuples scanned, the linear cost model of §5) of
// computing one chunk from what is currently resident, answered in O(1)
// without materializing a plan. ok is false when the chunk is not
// computable from the cache at all; a resident chunk costs 0. The engine's
// intermediate-recycler uses this to price an interior plan node: the
// estimate is exactly the re-derivation cost the cache would pay next time
// if the node is thrown away now. VCMC implements it from its Cost array.
type CostEstimator interface {
	CostEstimate(gb lattice.ID, num int) (cost int64, ok bool)
}

// AsCostEstimator returns the CostEstimator behind s, unwrapping decorators
// (e.g. Instrumented) via their Unwrap method. It reports false for
// strategies with no cost model (ESM, VCM, NoAgg).
func AsCostEstimator(s Strategy) (CostEstimator, bool) {
	for s != nil {
		if ce, ok := s.(CostEstimator); ok {
			return ce, true
		}
		u, ok := s.(interface{ Unwrap() Strategy })
		if !ok {
			return nil, false
		}
		s = u.Unwrap()
	}
	return nil, false
}

// presence tracks which chunks are resident, one bitset per group-by.
// Strategies keep their own copy (kept current via listener callbacks) so
// probes never touch the cache's replacement state.
type presence struct {
	bits [][]uint64
}

func newPresence(g *chunk.Grid) *presence {
	n := g.Lattice().NumNodes()
	p := &presence{bits: make([][]uint64, n)}
	for id := 0; id < n; id++ {
		p.bits[id] = make([]uint64, (g.NumChunks(lattice.ID(id))+63)/64)
	}
	return p
}

func (p *presence) set(gb lattice.ID, num int)   { p.bits[gb][num/64] |= 1 << (num % 64) }
func (p *presence) clear(gb lattice.ID, num int) { p.bits[gb][num/64] &^= 1 << (num % 64) }
func (p *presence) has(gb lattice.ID, num int) bool {
	return p.bits[gb][num/64]&(1<<(num%64)) != 0
}
