package strategy

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/sizer"
)

// infCost marks a chunk that is not computable from the cache.
const infCost = math.MaxInt64

// VCMC is the cost-based virtual count method (§5.2). In addition to VCM's
// counts it maintains, per chunk, the least cost of computing it from the
// cache (Cost array) and the lattice parent through which that least-cost
// path passes (BestParent array):
//
//	cost = 0                                   if the chunk is resident
//	     = min over parents P with a complete
//	       path:  Σ over the chunk's inputs c
//	       at P of (cost(c) + size(c))         otherwise
//
// Find is O(plan size): it just follows BestParent pointers. CostEstimate
// answers "how expensive would this chunk be?" in O(1) without aggregating —
// the hook the paper offers to a cost-based optimizer. Maintenance
// propagates on insert/evict whenever computability or least cost changes.
type VCMC struct {
	grid    *chunk.Grid
	lat     *lattice.Lattice
	sizes   sizer.Sizer
	mu      sync.RWMutex
	present *presence
	// silent marks recycled intermediates: resident (in present) but
	// excluded from count/cost bookkeeping, so the cost field stays a
	// consistent upper bound that never has to be re-derived when they
	// churn. recompute must ignore silent presence when assigning cost 0.
	silent  *presence
	counts  [][]int32
	costs   [][]int64
	best    [][]int16 // index into lat.Parents(gb); -1 none, -2 present
	maint   maintCounters
	visited atomic.Int64
	// levelSum[gb] orders propagation: children always have a strictly
	// smaller sum, so processing pending nodes by descending sum recomputes
	// each affected chunk exactly once per maintenance operation.
	levelSum []int
	maxSum   int
}

// NewVCMC creates a VCMC strategy; sizes supplies the cost model's chunk
// sizes.
func NewVCMC(g *chunk.Grid, sizes sizer.Sizer) *VCMC {
	lat := g.Lattice()
	n := lat.NumNodes()
	s := &VCMC{
		grid:    g,
		lat:     lat,
		sizes:   sizes,
		present: newPresence(g),
		silent:  newPresence(g),
		counts:  make([][]int32, n),
		costs:   make([][]int64, n),
		best:    make([][]int16, n),
	}
	s.levelSum = make([]int, n)
	for id := 0; id < n; id++ {
		sum := 0
		for _, l := range lat.Level(lattice.ID(id)) {
			sum += l
		}
		s.levelSum[id] = sum
		if sum > s.maxSum {
			s.maxSum = sum
		}
	}
	for id := 0; id < n; id++ {
		nc := g.NumChunks(lattice.ID(id))
		s.counts[id] = make([]int32, nc)
		s.costs[id] = make([]int64, nc)
		s.best[id] = make([]int16, nc)
		for i := 0; i < nc; i++ {
			s.costs[id][i] = infCost
			s.best[id][i] = -1
		}
	}
	return s
}

// Name implements Strategy.
func (s *VCMC) Name() string { return "VCMC" }

// Count exposes a chunk's virtual count.
func (s *VCMC) Count(gb lattice.ID, num int) int32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.counts[gb][num]
}

// CostEstimate returns the least cost (in tuples scanned) of computing the
// chunk from the cache, in constant time. ok is false when the chunk is not
// computable. A resident chunk costs 0.
func (s *VCMC) CostEstimate(gb lattice.ID, num int) (cost int64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := s.costs[gb][num]
	if c == infCost {
		return 0, false
	}
	return c, true
}

// Find implements Strategy, materializing the least-cost plan by following
// BestParent pointers. Concurrent Finds share the read lock.
func (s *VCMC) Find(gb lattice.ID, num int) (*Plan, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var visited int64
	plan := s.build(gb, num, &visited)
	s.visited.Store(visited)
	return plan, plan != nil, nil
}

func (s *VCMC) build(gb lattice.ID, num int, visited *int64) *Plan {
	*visited++
	// Presence is checked before the count: recycled intermediates are
	// resident but excluded from count/cost bookkeeping, so a present chunk
	// may carry a zero count.
	if s.present.has(gb, num) {
		return &Plan{GB: gb, Num: num, Present: true}
	}
	if s.counts[gb][num] == 0 {
		return nil
	}
	// Prefer a parent whose input chunks are all resident — one roll-up step
	// over present chunks — when that is no worse than the stored least
	// cost. Recycled intermediates are excluded from the cost lattice, so
	// the best-parent pointer cannot know about them; this presence scan (a
	// handful of bit tests) lets plans exploit them anyway. The cost guard
	// keeps Find's minimum-cost guarantee: without silent residents the
	// all-present candidate is one of the paths the stored cost already
	// minimized over, and with them the stored cost is an upper bound the
	// candidate must beat or match.
	{
		var nums []int
		for _, parent := range s.lat.Parents(gb) {
			nums = s.grid.ParentChunks(gb, num, parent, nums[:0])
			all := true
			cost := int64(0)
			for _, cn := range nums {
				if !s.present.has(parent, cn) {
					all = false
					break
				}
				cost += s.sizes.ChunkCells(parent, cn)
			}
			if !all || cost > s.costs[gb][num] {
				continue
			}
			*visited += int64(len(nums))
			inputs := make([]*Plan, 0, len(nums))
			for _, cn := range nums {
				inputs = append(inputs, &Plan{GB: parent, Num: cn, Present: true})
			}
			return &Plan{GB: gb, Num: num, Via: parent, Inputs: inputs, Cost: cost}
		}
	}
	bp := s.best[gb][num]
	if bp < 0 {
		panic(fmt.Sprintf("strategy: VCMC computable chunk without best parent (gb %d chunk %d)", gb, num))
	}
	parent := s.lat.Parents(gb)[bp]
	nums := s.grid.ParentChunks(gb, num, parent, nil)
	inputs := make([]*Plan, 0, len(nums))
	for _, cn := range nums {
		sub := s.build(parent, cn, visited)
		if sub == nil {
			panic(fmt.Sprintf("strategy: VCMC best-parent path broken at gb %d chunk %d", parent, cn))
		}
		inputs = append(inputs, sub)
	}
	return &Plan{GB: gb, Num: num, Via: parent, Inputs: inputs, Cost: s.costs[gb][num]}
}

// OnInsert implements cache.Listener. Recycled intermediates get
// presence-only maintenance: they serve as Present plan nodes (and exact
// hits) but never enter the cost lattice, so admitting one is O(1) instead
// of a propagation over every affected descendant. The stored costs then
// describe the cache without its speculative entries — a consistent upper
// bound: plans that do route through a recycled chunk still stop at its
// presence and pay nothing.
func (s *VCMC) OnInsert(e *cache.Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	timeMaint(&s.maint, func() {
		gb, num := e.Key.GB, int(e.Key.Num)
		s.present.set(gb, num)
		if e.Recycled {
			s.silent.set(gb, num)
			s.maint.bump(1)
			return
		}
		if s.recompute(gb, num) {
			s.propagate(gb, num)
		}
	})
}

// OnEvent implements cache.Listener: the eviction dual. A recycled entry
// never touched the cost lattice, so clearing its presence bits is the
// entire dual. Tier moves (Demoted, Promoted) leave the chunk answerable
// through the store, so they are ignored here; the dual runs only when the
// chunk truly leaves (Evicted, Removed).
func (s *VCMC) OnEvent(ev cache.Event) {
	if ev.Answerable() {
		return
	}
	e := ev.Entry
	s.mu.Lock()
	defer s.mu.Unlock()
	timeMaint(&s.maint, func() {
		gb, num := e.Key.GB, int(e.Key.Num)
		s.present.clear(gb, num)
		if e.Recycled {
			s.silent.clear(gb, num)
			s.maint.bump(1)
			return
		}
		if s.recompute(gb, num) {
			s.propagate(gb, num)
		}
	})
}

// nodeRef identifies one chunk of one group-by during propagation.
type nodeRef struct {
	gb  lattice.ID
	num int
}

// propagate re-derives every child chunk affected by a computability or
// least-cost change of (gb, num). Pending nodes are processed in descending
// level-sum order, so each affected chunk is recomputed exactly once, after
// all of its parents have settled — avoiding the exponential re-derivation a
// naive depth-first walk would do through lattice diamonds.
func (s *VCMC) propagate(gb lattice.ID, num int) {
	pending := make([]map[nodeRef]struct{}, s.maxSum+1)
	enqueue := func(gb lattice.ID, num int) {
		for _, child := range s.lat.Children(gb) {
			sum := s.levelSum[child]
			if pending[sum] == nil {
				pending[sum] = make(map[nodeRef]struct{})
			}
			pending[sum][nodeRef{child, s.grid.ChildChunk(gb, num, child)}] = struct{}{}
		}
	}
	enqueue(gb, num)
	for sum := s.levelSum[gb] - 1; sum >= 0; sum-- {
		for ref := range pending[sum] {
			if s.recompute(ref.gb, ref.num) {
				enqueue(ref.gb, ref.num)
			}
		}
	}
}

// recompute re-derives count/cost/best of one chunk from the current state
// of its lattice parents and its own presence. It reports whether the
// chunk's externally visible state (computability or least cost) changed.
func (s *VCMC) recompute(gb lattice.ID, num int) bool {
	s.maint.bump(1)
	oldCount, oldCost := s.counts[gb][num], s.costs[gb][num]
	newCount := int32(0)
	newCost := int64(infCost)
	newBest := int16(-1)
	if s.present.has(gb, num) && !s.silent.has(gb, num) {
		newCount++
		newCost = 0
		newBest = -2
	}
	var nums []int
	for pi, parent := range s.lat.Parents(gb) {
		nums = s.grid.ParentChunks(gb, num, parent, nums[:0])
		complete := true
		cand := int64(0)
		for _, cn := range nums {
			c := s.costs[parent][cn]
			if c == infCost {
				complete = false
				break
			}
			cand += c + s.sizes.ChunkCells(parent, cn)
		}
		if !complete {
			continue
		}
		newCount++
		if newBest != -2 && cand < newCost {
			newCost = cand
			newBest = int16(pi)
		}
	}
	s.counts[gb][num] = newCount
	s.costs[gb][num] = newCost
	s.best[gb][num] = newBest
	return (oldCount == 0) != (newCount == 0) || oldCost != newCost
}

// Overhead implements Strategy: per chunk, 1 byte of count, 4 of cost and 1
// of best parent (Table 3 accounting).
func (s *VCMC) Overhead() int64 { return 6 * s.grid.TotalChunks() }

// Maintenance implements Strategy.
func (s *VCMC) Maintenance() Maint { return s.maint.snapshot() }

// LastVisited implements Strategy.
func (s *VCMC) LastVisited() int64 { return s.visited.Load() }
