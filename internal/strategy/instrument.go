package strategy

import (
	"sync/atomic"
	"time"

	"aggcache/internal/lattice"
	"aggcache/internal/obs"
)

// findSampleMask samples 1 in 16 Find calls for latency timing. Find runs
// once per chunk on the engine's hottest path; the counters are single
// atomic adds but timing needs two clock reads, so it is sampled — the
// histogram stays statistically representative (calls are sampled by
// arrival order, not outcome) at a sixteenth of the cost.
const findSampleMask = 15

// Instrumented decorates a Strategy with live observability: every Find is
// counted, its visited-node total accumulated, and a sample of calls timed
// into a log-scale histogram, all labeled with the wrapped strategy's name.
// Everything else — listener callbacks, overhead accounting, maintenance
// counters — delegates unchanged, so an Instrumented strategy is a drop-in
// anywhere a Strategy is accepted (including as the cache's listener).
type Instrumented struct {
	Strategy
	met obs.StrategyMetrics
	n   atomic.Int64
}

// Instrument wraps s with the given metric bundle. Wrap before handing the
// strategy to core.New so the engine's lookups are observed.
func Instrument(s Strategy, m obs.StrategyMetrics) *Instrumented {
	return &Instrumented{Strategy: s, met: m}
}

// Find delegates to the wrapped strategy, recording call count, plan hits,
// visited nodes, and (for sampled calls) latency. The added cost is a few
// atomic adds, plus two clock reads on every sixteenth call.
func (i *Instrumented) Find(gb lattice.ID, num int) (*Plan, bool, error) {
	sampled := i.n.Add(1)&findSampleMask == 0
	var start time.Time
	if sampled {
		start = time.Now()
	}
	p, ok, err := i.Strategy.Find(gb, num)
	if sampled {
		i.met.FindLatency.Observe(time.Since(start))
	}
	i.met.Finds.Inc()
	if ok {
		i.met.FindHits.Inc()
	}
	i.met.NodesVisited.Add(i.Strategy.LastVisited())
	return p, ok, err
}

// Unwrap returns the underlying strategy.
func (i *Instrumented) Unwrap() Strategy { return i.Strategy }
