package strategy_test

import (
	"fmt"

	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/schema"
	"aggcache/internal/strategy"
)

// ExampleVCM walks the paper's Figure 4 scenario: as detail chunks are
// inserted, virtual counts make aggregate chunks answerable the instant all
// of their inputs are in the cache.
func ExampleVCM() {
	a := schema.MustNewDimension("A", []schema.HierarchySpec{{Name: "a", Card: 4}})
	b := schema.MustNewDimension("B", []schema.HierarchySpec{{Name: "b", Card: 4}})
	g := chunk.MustNewGrid(schema.MustNew("M", a, b), [][]int{{1, 2}, {1, 2}})
	lat := g.Lattice()
	vcm := strategy.NewVCM(g)

	g11 := lat.MustID(1, 1) // detail level, 4 chunks
	g10 := lat.MustID(1, 0) // A only, 2 chunks

	vcm.OnInsert(&cache.Entry{Key: cache.Key{GB: g11, Num: 0}})
	_, found, _ := vcm.Find(g10, 0)
	fmt.Println("after one detail chunk, (1,0)#0 computable:", found)

	vcm.OnInsert(&cache.Entry{Key: cache.Key{GB: g11, Num: 1}})
	plan, found, _ := vcm.Find(g10, 0)
	fmt.Println("after both detail chunks, (1,0)#0 computable:", found)
	fmt.Println("count:", vcm.Count(g10, 0), "plan inputs:", len(plan.Inputs))
	// Output:
	// after one detail chunk, (1,0)#0 computable: false
	// after both detail chunks, (1,0)#0 computable: true
	// count: 1 plan inputs: 2
}

// ExampleVCMC_CostEstimate shows the §5.2 optimizer hook: the least cost of
// computing a chunk from the cache is available in constant time, without
// aggregating anything.
func ExampleVCMC_CostEstimate() {
	a := schema.MustNewDimension("A", []schema.HierarchySpec{{Name: "a", Card: 4}})
	b := schema.MustNewDimension("B", []schema.HierarchySpec{{Name: "b", Card: 4}})
	g := chunk.MustNewGrid(schema.MustNew("M", a, b), [][]int{{1, 2}, {1, 2}})
	lat := g.Lattice()
	vcmc := strategy.NewVCMC(g, constSizer{})

	for num := 0; num < g.NumChunks(lat.Base()); num++ {
		vcmc.OnInsert(&cache.Entry{Key: cache.Key{GB: lat.Base(), Num: int32(num)}})
	}
	cost, ok := vcmc.CostEstimate(lat.Top(), 0)
	fmt.Println("top chunk computable:", ok, "cost:", cost)
	// Output:
	// top chunk computable: true cost: 60
}

// constSizer charges 10 tuples per chunk, keeping the example's arithmetic
// obvious: the top chunk aggregates 4 base chunks (cost 20 per intermediate
// chunk) plus the 2 intermediate chunks themselves = 60.
type constSizer struct{}

func (constSizer) ChunkCells(lattice.ID, int) int64 { return 10 }
func (constSizer) GroupByCells(lattice.ID) int64    { return 40 }
