package strategy

import (
	"sync"
	"sync/atomic"

	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/sizer"
)

// ESM is the Exhaustive Search Method (§3.1): on a miss, recursively search
// every lattice path toward the base group-by until one succeeds. It keeps
// no summary state beyond chunk presence, so inserts and evictions are free;
// lookups are worst-case exponential in the distance to the base level
// (Lemma 1).
type ESM struct {
	grid    *chunk.Grid
	lat     *lattice.Lattice
	mu      sync.RWMutex
	present *presence
	// budget bounds nodes visited per Find; 0 means unlimited (faithful).
	budget  int64
	visited atomic.Int64
}

// NewESM creates an ESM strategy for the grid. budget bounds the nodes
// visited by one Find (0 = unlimited).
func NewESM(g *chunk.Grid, budget int64) *ESM {
	return &ESM{grid: g, lat: g.Lattice(), present: newPresence(g), budget: budget}
}

// Name implements Strategy.
func (s *ESM) Name() string { return "ESM" }

// Find implements Strategy: the paper's ESM(Level, ChunkNumber) returning an
// executable plan on success. Concurrent Finds share the read lock.
func (s *ESM) Find(gb lattice.ID, num int) (*Plan, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var visited int64
	p, ok, err := s.find(gb, num, &visited)
	s.visited.Store(visited)
	return p, ok, err
}

func (s *ESM) find(gb lattice.ID, num int, visited *int64) (*Plan, bool, error) {
	*visited++
	if s.budget > 0 && *visited > s.budget {
		return nil, false, ErrBudget
	}
	if s.present.has(gb, num) {
		return &Plan{GB: gb, Num: num, Present: true}, true, nil
	}
	var nums []int
	for _, parent := range s.lat.Parents(gb) {
		nums = s.grid.ParentChunks(gb, num, parent, nums[:0])
		inputs := make([]*Plan, 0, len(nums))
		ok := true
		for _, cn := range nums {
			sub, found, err := s.find(parent, cn, visited)
			if err != nil {
				return nil, false, err
			}
			if !found {
				ok = false
				break
			}
			inputs = append(inputs, sub)
		}
		if ok {
			return &Plan{GB: gb, Num: num, Via: parent, Inputs: inputs}, true, nil
		}
	}
	return nil, false, nil
}

// OnInsert implements cache.Listener; ESM only tracks presence.
func (s *ESM) OnInsert(e *cache.Entry) {
	s.mu.Lock()
	s.present.set(e.Key.GB, int(e.Key.Num))
	s.mu.Unlock()
}

// OnEvent implements cache.Listener. Tier moves (Demoted, Promoted) leave
// the chunk answerable through the store, so presence is untouched.
func (s *ESM) OnEvent(ev cache.Event) {
	if ev.Answerable() {
		return
	}
	s.mu.Lock()
	s.present.clear(ev.Key.GB, int(ev.Key.Num))
	s.mu.Unlock()
}

// Overhead implements Strategy; ESM keeps no count/cost arrays (Table 3).
func (s *ESM) Overhead() int64 { return 0 }

// Maintenance implements Strategy; ESM performs none.
func (s *ESM) Maintenance() Maint { return Maint{} }

// LastVisited implements Strategy.
func (s *ESM) LastVisited() int64 { return s.visited.Load() }

// ESMC is the cost-based exhaustive method (§5.1): it explores *all* lattice
// paths and returns the cheapest plan under the linear cost model. Its
// average complexity is far worse than ESM's because it cannot stop at the
// first success — the paper abandons it after Table 1.
type ESMC struct {
	grid    *chunk.Grid
	lat     *lattice.Lattice
	mu      sync.RWMutex
	present *presence
	sizes   sizer.Sizer
	budget  int64
	visited atomic.Int64
}

// NewESMC creates an ESMC strategy; sizes supplies the cost model's chunk
// sizes and budget bounds nodes per Find (0 = unlimited).
func NewESMC(g *chunk.Grid, sizes sizer.Sizer, budget int64) *ESMC {
	return &ESMC{grid: g, lat: g.Lattice(), present: newPresence(g), sizes: sizes, budget: budget}
}

// Name implements Strategy.
func (s *ESMC) Name() string { return "ESMC" }

// Find implements Strategy, returning the minimum-cost plan.
func (s *ESMC) Find(gb lattice.ID, num int) (*Plan, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var visited int64
	p, ok, err := s.find(gb, num, &visited)
	s.visited.Store(visited)
	return p, ok, err
}

func (s *ESMC) find(gb lattice.ID, num int, visited *int64) (*Plan, bool, error) {
	*visited++
	if s.budget > 0 && *visited > s.budget {
		return nil, false, ErrBudget
	}
	if s.present.has(gb, num) {
		return &Plan{GB: gb, Num: num, Present: true}, true, nil
	}
	var best *Plan
	var nums []int
	for _, parent := range s.lat.Parents(gb) {
		nums = s.grid.ParentChunks(gb, num, parent, nums[:0])
		inputs := make([]*Plan, 0, len(nums))
		cost := int64(0)
		ok := true
		for _, cn := range nums {
			sub, found, err := s.find(parent, cn, visited)
			if err != nil {
				return nil, false, err
			}
			if !found {
				ok = false
				break
			}
			cost += sub.Cost + s.sizes.ChunkCells(parent, cn)
			inputs = append(inputs, sub)
		}
		if ok && (best == nil || cost < best.Cost) {
			best = &Plan{GB: gb, Num: num, Via: parent, Inputs: inputs, Cost: cost}
		}
	}
	return best, best != nil, nil
}

// OnInsert implements cache.Listener.
func (s *ESMC) OnInsert(e *cache.Entry) {
	s.mu.Lock()
	s.present.set(e.Key.GB, int(e.Key.Num))
	s.mu.Unlock()
}

// OnEvent implements cache.Listener. Tier moves (Demoted, Promoted) leave
// the chunk answerable through the store, so presence is untouched.
func (s *ESMC) OnEvent(ev cache.Event) {
	if ev.Answerable() {
		return
	}
	s.mu.Lock()
	s.present.clear(ev.Key.GB, int(ev.Key.Num))
	s.mu.Unlock()
}

// Overhead implements Strategy.
func (s *ESMC) Overhead() int64 { return 0 }

// Maintenance implements Strategy.
func (s *ESMC) Maintenance() Maint { return Maint{} }

// LastVisited implements Strategy.
func (s *ESMC) LastVisited() int64 { return s.visited.Load() }

// NoAgg is the conventional chunk cache of the paper's comparison (§7.2
// "no aggregation"): a chunk is answerable only when it is itself resident.
type NoAgg struct {
	mu      sync.RWMutex
	present *presence
	visited atomic.Int64
}

// NewNoAgg creates the no-aggregation baseline.
func NewNoAgg(g *chunk.Grid) *NoAgg { return &NoAgg{present: newPresence(g)} }

// Name implements Strategy.
func (s *NoAgg) Name() string { return "NoAgg" }

// Find implements Strategy.
func (s *NoAgg) Find(gb lattice.ID, num int) (*Plan, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.visited.Store(1)
	if s.present.has(gb, num) {
		return &Plan{GB: gb, Num: num, Present: true}, true, nil
	}
	return nil, false, nil
}

// OnInsert implements cache.Listener.
func (s *NoAgg) OnInsert(e *cache.Entry) {
	s.mu.Lock()
	s.present.set(e.Key.GB, int(e.Key.Num))
	s.mu.Unlock()
}

// OnEvent implements cache.Listener. Tier moves (Demoted, Promoted) leave
// the chunk answerable through the store, so presence is untouched.
func (s *NoAgg) OnEvent(ev cache.Event) {
	if ev.Answerable() {
		return
	}
	s.mu.Lock()
	s.present.clear(ev.Key.GB, int(ev.Key.Num))
	s.mu.Unlock()
}

// Overhead implements Strategy.
func (s *NoAgg) Overhead() int64 { return 0 }

// Maintenance implements Strategy.
func (s *NoAgg) Maintenance() Maint { return Maint{} }

// LastVisited implements Strategy.
func (s *NoAgg) LastVisited() int64 { return s.visited.Load() }
