package strategy

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
	"aggcache/internal/schema"
	"aggcache/internal/sizer"
)

// fig4Grid builds the paper's Figure 4 lattice: two dimensions with
// hierarchy size 1, two chunks each at the detailed level. Group-by (1,1)
// has 4 chunks, (1,0) and (0,1) have 2, (0,0) has 1.
func fig4Grid(t testing.TB) *chunk.Grid {
	t.Helper()
	a := schema.MustNewDimension("A", []schema.HierarchySpec{{Name: "a", Card: 4}})
	b := schema.MustNewDimension("B", []schema.HierarchySpec{{Name: "b", Card: 4}})
	return chunk.MustNewGrid(schema.MustNew("M", a, b), [][]int{{1, 2}, {1, 2}})
}

// apb3Grid is a 3-dimension grid with multi-level hierarchies, large enough
// for interesting lattice diamonds but small enough for exhaustive oracles.
func apb3Grid(t testing.TB) *chunk.Grid {
	t.Helper()
	p := schema.MustNewDimension("Product", []schema.HierarchySpec{
		{Name: "Group", Card: 2}, {Name: "Code", Card: 8},
	})
	c := schema.MustNewDimension("Customer", []schema.HierarchySpec{{Name: "Store", Card: 6}})
	tm := schema.MustNewDimension("Time", []schema.HierarchySpec{
		{Name: "Year", Card: 2}, {Name: "Month", Card: 8},
	})
	s := schema.MustNew("M", p, c, tm)
	return chunk.MustNewGrid(s, [][]int{{1, 2, 4}, {1, 2}, {1, 1, 2}})
}

func entry(gb lattice.ID, num int) *cache.Entry {
	return &cache.Entry{Key: cache.Key{GB: gb, Num: int32(num)}}
}

// evicted wraps entry in a true-departure event, the shape stores deliver
// when a chunk leaves every tier.
func evicted(gb lattice.ID, num int) cache.Event {
	e := entry(gb, num)
	return cache.Event{Key: e.Key, Reason: cache.Evicted, Entry: e}
}

// oracle answers computability and least cost by exhaustive memoized search
// over the present set — the ground truth for Property 1 and for VCMC/ESMC
// costs.
type oracle struct {
	grid    *chunk.Grid
	lat     *lattice.Lattice
	sizes   sizer.Sizer
	present map[cache.Key]bool
	memo    map[cache.Key]int64 // least cost; infCost = not computable
}

func newOracle(g *chunk.Grid, sizes sizer.Sizer) *oracle {
	return &oracle{
		grid:    g,
		lat:     g.Lattice(),
		sizes:   sizes,
		present: make(map[cache.Key]bool),
		memo:    make(map[cache.Key]int64),
	}
}

func (o *oracle) insert(gb lattice.ID, num int) {
	o.present[cache.Key{GB: gb, Num: int32(num)}] = true
	o.memo = make(map[cache.Key]int64)
}

func (o *oracle) evict(gb lattice.ID, num int) {
	delete(o.present, cache.Key{GB: gb, Num: int32(num)})
	o.memo = make(map[cache.Key]int64)
}

// cost returns the least cost of computing the chunk, or infCost.
func (o *oracle) cost(gb lattice.ID, num int) int64 {
	k := cache.Key{GB: gb, Num: int32(num)}
	if c, ok := o.memo[k]; ok {
		return c
	}
	if o.present[k] {
		o.memo[k] = 0
		return 0
	}
	best := int64(infCost)
	for _, parent := range o.lat.Parents(gb) {
		total := int64(0)
		ok := true
		for _, cn := range o.grid.ParentChunks(gb, num, parent, nil) {
			c := o.cost(parent, cn)
			if c == infCost {
				ok = false
				break
			}
			total += c + o.sizes.ChunkCells(parent, cn)
		}
		if ok && total < best {
			best = total
		}
	}
	o.memo[k] = best
	return best
}

func (o *oracle) computable(gb lattice.ID, num int) bool { return o.cost(gb, num) != infCost }

// oracleCount recomputes a chunk's virtual count from scratch: presence plus
// the number of parents with a complete path (Definition 1).
func (o *oracle) count(gb lattice.ID, num int) int32 {
	n := int32(0)
	if o.present[cache.Key{GB: gb, Num: int32(num)}] {
		n++
	}
	for _, parent := range o.lat.Parents(gb) {
		complete := true
		for _, cn := range o.grid.ParentChunks(gb, num, parent, nil) {
			if !o.computable(parent, cn) {
				complete = false
				break
			}
		}
		if complete {
			n++
		}
	}
	return n
}

// checkPlan validates plan structure: leaves are present, Via is a lattice
// parent, inputs cover exactly the parent chunk set.
func checkPlan(t *testing.T, g *chunk.Grid, o *oracle, p *Plan) {
	t.Helper()
	if p.Present {
		if !o.present[cache.Key{GB: p.GB, Num: int32(p.Num)}] {
			t.Fatalf("plan leaf (%d,%d) is not present", p.GB, p.Num)
		}
		if len(p.Inputs) != 0 {
			t.Fatalf("present plan node has inputs")
		}
		return
	}
	want := g.ParentChunks(p.GB, p.Num, p.Via, nil)
	if len(want) != len(p.Inputs) {
		t.Fatalf("plan node (%d,%d): %d inputs, want %d", p.GB, p.Num, len(p.Inputs), len(want))
	}
	for i, in := range p.Inputs {
		if in.GB != p.Via || in.Num != want[i] {
			t.Fatalf("plan node (%d,%d): input %d is (%d,%d), want (%d,%d)",
				p.GB, p.Num, i, in.GB, in.Num, p.Via, want[i])
		}
		checkPlan(t, g, o, in)
	}
}

// allStrategies builds one of each lookup strategy over the grid.
func allStrategies(g *chunk.Grid, sizes sizer.Sizer) []Strategy {
	return []Strategy{
		NewESM(g, 0),
		NewESMC(g, sizes, 0),
		NewVCM(g),
		NewVCMC(g, sizes),
	}
}

// TestPropertyOneAndCosts drives random insert/evict sequences and checks,
// after every operation and for every chunk of every group-by:
//   - ESM/VCM/ESMC/VCMC agree with the oracle on computability (Property 1);
//   - VCM and VCMC counts equal the from-scratch Definition 1 count;
//   - VCMC's O(1) cost equals the oracle's least cost, and ESMC's plan cost
//     matches it;
//   - all returned plans are structurally valid.
func TestPropertyOneAndCosts(t *testing.T) {
	g := apb3Grid(t)
	lat := g.Lattice()
	sizes := sizer.NewEstimate(g, 500)
	strategies := allStrategies(g, sizes)
	vcm := strategies[2].(*VCM)
	vcmc := strategies[3].(*VCMC)
	o := newOracle(g, sizes)
	rng := rand.New(rand.NewSource(17))

	resident := map[cache.Key]bool{}
	for op := 0; op < 120; op++ {
		gb := lattice.ID(rng.Intn(lat.NumNodes()))
		num := rng.Intn(g.NumChunks(gb))
		k := cache.Key{GB: gb, Num: int32(num)}
		if resident[k] && rng.Intn(2) == 0 {
			delete(resident, k)
			o.evict(gb, num)
			for _, s := range strategies {
				s.OnEvent(evicted(gb, num))
			}
		} else if !resident[k] {
			resident[k] = true
			o.insert(gb, num)
			for _, s := range strategies {
				s.OnInsert(entry(gb, num))
			}
		}
		// Check a sample of chunks every op, everything every 20 ops.
		full := op%20 == 19
		for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
			for n := 0; n < g.NumChunks(id); n++ {
				if !full && rng.Intn(8) != 0 {
					continue
				}
				want := o.computable(id, n)
				wantCost := o.cost(id, n)
				if got := vcm.Count(id, n); (got != 0) != want {
					t.Fatalf("op %d: VCM count %d for (%s,%d), oracle computable=%v",
						op, got, lat.LevelTupleString(id), n, want)
				}
				if got := vcm.Count(id, n); got != o.count(id, n) {
					t.Fatalf("op %d: VCM count %d for (%s,%d), Definition-1 count %d",
						op, got, lat.LevelTupleString(id), n, o.count(id, n))
				}
				if got := vcmc.Count(id, n); got != o.count(id, n) {
					t.Fatalf("op %d: VCMC count %d for (%s,%d), Definition-1 count %d",
						op, got, lat.LevelTupleString(id), n, o.count(id, n))
				}
				gotCost, gotOK := vcmc.CostEstimate(id, n)
				if gotOK != want {
					t.Fatalf("op %d: VCMC CostEstimate ok=%v for (%s,%d), oracle %v",
						op, gotOK, lat.LevelTupleString(id), n, want)
				}
				if want && gotCost != wantCost {
					t.Fatalf("op %d: VCMC cost %d for (%s,%d), oracle %d",
						op, gotCost, lat.LevelTupleString(id), n, wantCost)
				}
				for _, s := range strategies {
					plan, found, err := s.Find(id, n)
					if err != nil {
						t.Fatalf("op %d: %s.Find: %v", op, s.Name(), err)
					}
					if found != want {
						t.Fatalf("op %d: %s.Find(%s,%d) = %v, oracle %v",
							op, s.Name(), lat.LevelTupleString(id), n, found, want)
					}
					if found {
						checkPlan(t, g, o, plan)
					}
				}
				// Cost-based strategies must return minimum-cost plans.
				if want {
					for _, s := range []Strategy{strategies[1], strategies[3]} {
						plan, _, _ := s.Find(id, n)
						if plan.Cost != wantCost {
							t.Fatalf("op %d: %s plan cost %d for (%s,%d), oracle %d",
								op, s.Name(), plan.Cost, lat.LevelTupleString(id), n, wantCost)
						}
					}
				}
			}
		}
	}
}

// TestVCMExample4 walks the paper's Example 4 scenario on the Figure 4
// lattice: presence of both detail chunks covering a column makes the
// aggregated chunk computable with count 1; presence adds to the count.
func TestVCMExample4(t *testing.T) {
	g := fig4Grid(t)
	lat := g.Lattice()
	vcm := NewVCM(g)
	g11 := lat.MustID(1, 1)
	g10 := lat.MustID(1, 0)
	g01 := lat.MustID(0, 1)
	g00 := lat.MustID(0, 0)

	// Insert chunks 0 and 1 of (1,1): the full first row of the detail level
	// (dimension A chunk 0 crossed with both B chunks).
	vcm.OnInsert(entry(g11, 0))
	vcm.OnInsert(entry(g11, 1))
	if got := vcm.Count(g11, 0); got != 1 {
		t.Fatalf("count (1,1)#0 = %d, want 1 (present, no other path)", got)
	}
	if got := vcm.Count(g11, 3); got != 0 {
		t.Fatalf("count (1,1)#3 = %d, want 0", got)
	}
	// (1,0)#0 aggregates (1,1)#{0,1}: computable though absent.
	if got := vcm.Count(g10, 0); got != 1 {
		t.Fatalf("count (1,0)#0 = %d, want 1 (computable via one parent)", got)
	}
	if got := vcm.Count(g10, 1); got != 0 {
		t.Fatalf("count (1,0)#1 = %d, want 0", got)
	}
	// (0,1) chunks need both A-chunks: not computable.
	if got := vcm.Count(g01, 0); got != 0 {
		t.Fatalf("count (0,1)#0 = %d, want 0", got)
	}
	// (0,0) needs everything: not computable yet.
	if got := vcm.Count(g00, 0); got != 0 {
		t.Fatalf("count (0,0)#0 = %d, want 0", got)
	}
	// Complete the base level and insert (0,0) itself: count becomes
	// presence (1) + paths through both parents (2) = 3 — the paper's value.
	vcm.OnInsert(entry(g11, 2))
	vcm.OnInsert(entry(g11, 3))
	vcm.OnInsert(entry(g00, 0))
	if got := vcm.Count(g00, 0); got != 3 {
		t.Fatalf("count (0,0)#0 = %d, want 3", got)
	}
	// Evicting one base chunk breaks both aggregate paths again.
	vcm.OnEvent(evicted(g11, 0))
	if got := vcm.Count(g00, 0); got != 1 {
		t.Fatalf("after evict, count (0,0)#0 = %d, want 1 (present only)", got)
	}
}

// TestVCMEvictAllReturnsToZero inserts a random set, evicts it, and expects
// a pristine count table.
func TestVCMEvictAllReturnsToZero(t *testing.T) {
	f := func(seed int64) bool {
		g := apb3Grid(t)
		lat := g.Lattice()
		vcm := NewVCM(g)
		rng := rand.New(rand.NewSource(seed))
		var keys []cache.Key
		seen := map[cache.Key]bool{}
		for i := 0; i < 40; i++ {
			gb := lattice.ID(rng.Intn(lat.NumNodes()))
			num := rng.Intn(g.NumChunks(gb))
			k := cache.Key{GB: gb, Num: int32(num)}
			if seen[k] {
				continue
			}
			seen[k] = true
			keys = append(keys, k)
			vcm.OnInsert(entry(gb, num))
		}
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		for _, k := range keys {
			vcm.OnEvent(evicted(k.GB, int(k.Num)))
		}
		for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
			for n := 0; n < g.NumChunks(id); n++ {
				if vcm.Count(id, n) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestLemma2UpdateBound checks the paper's bound on VCM insert maintenance:
// inserting a chunk at level (l_1..l_n) updates at most n·Π(l_i+1) counts.
func TestLemma2UpdateBound(t *testing.T) {
	g := apb3Grid(t)
	lat := g.Lattice()
	vcm := NewVCM(g)
	rng := rand.New(rand.NewSource(5))
	n := int64(lat.NumDims())
	for i := 0; i < 200; i++ {
		gb := lattice.ID(rng.Intn(lat.NumNodes()))
		num := rng.Intn(g.NumChunks(gb))
		before := vcm.Maintenance().Updates
		vcm.OnInsert(entry(gb, num))
		updates := vcm.Maintenance().Updates - before
		bound := n * int64(lat.Descendants(gb))
		if updates > bound {
			t.Fatalf("insert at %s: %d updates > bound %d",
				lat.LevelTupleString(gb), updates, bound)
		}
	}
}

// TestAmortizedInsertCheap re-inserts chunks whose aggregates are already
// computable: updates must not propagate (the paper's Table 2 shows zeros
// when loading (6,2,3,0,0) after the base level).
func TestAmortizedInsertCheap(t *testing.T) {
	g := fig4Grid(t)
	lat := g.Lattice()
	vcm := NewVCM(g)
	base := lat.Base()
	for n := 0; n < g.NumChunks(base); n++ {
		vcm.OnInsert(entry(base, n))
	}
	// Everything is computable now; inserting aggregate chunks must cost
	// exactly one update each (their own count increment).
	for _, id := range []lattice.ID{lat.MustID(1, 0), lat.MustID(0, 1)} {
		for n := 0; n < g.NumChunks(id); n++ {
			before := vcm.Maintenance().Updates
			vcm.OnInsert(entry(id, n))
			if got := vcm.Maintenance().Updates - before; got != 1 {
				t.Fatalf("insert of already-computable (%s,%d) did %d updates, want 1",
					lat.LevelTupleString(id), n, got)
			}
		}
	}
}

func TestESMBudget(t *testing.T) {
	g := apb3Grid(t)
	lat := g.Lattice()
	esm := NewESM(g, 3)
	// Empty cache: the exhaustive search would visit many nodes; the budget
	// must trip.
	_, _, err := esm.Find(lat.Top(), 0)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	esmc := NewESMC(g, sizer.NewEstimate(g, 100), 3)
	if _, _, err := esmc.Find(lat.Top(), 0); !errors.Is(err, ErrBudget) {
		t.Fatalf("ESMC err = %v, want ErrBudget", err)
	}
	// A present chunk is found within any budget.
	esm.OnInsert(entry(lat.Top(), 0))
	if _, found, err := esm.Find(lat.Top(), 0); !found || err != nil {
		t.Fatalf("present chunk not found: %v %v", found, err)
	}
}

func TestESMVisitedGrowsWithAggregation(t *testing.T) {
	g := apb3Grid(t)
	lat := g.Lattice()
	esm := NewESM(g, 0)
	// Lookup misses: highly aggregated chunks must visit far more nodes than
	// base-level chunks (Lemma 1's point behind Table 1).
	_, found, _ := esm.Find(lat.Base(), 0)
	if found {
		t.Fatalf("empty cache should not find")
	}
	baseVisits := esm.LastVisited()
	_, _, _ = esm.Find(lat.Top(), 0)
	topVisits := esm.LastVisited()
	if topVisits <= baseVisits*10 {
		t.Fatalf("top visits %d not ≫ base visits %d", topVisits, baseVisits)
	}
}

func TestNoAgg(t *testing.T) {
	g := fig4Grid(t)
	lat := g.Lattice()
	s := NewNoAgg(g)
	base := lat.Base()
	for n := 0; n < g.NumChunks(base); n++ {
		s.OnInsert(entry(base, n))
	}
	// Exact hits work.
	if _, found, _ := s.Find(base, 0); !found {
		t.Fatalf("present chunk not found")
	}
	// Aggregates are never answered, even though they are computable.
	if _, found, _ := s.Find(lat.Top(), 0); found {
		t.Fatalf("NoAgg must not aggregate")
	}
	s.OnEvent(evicted(base, 0))
	if _, found, _ := s.Find(base, 0); found {
		t.Fatalf("evicted chunk still found")
	}
	if s.Overhead() != 0 || s.LastVisited() != 1 || s.Name() != "NoAgg" {
		t.Fatalf("NoAgg metadata wrong")
	}
}

func TestOverheadAccounting(t *testing.T) {
	g := apb3Grid(t)
	total := g.TotalChunks()
	sizes := sizer.NewEstimate(g, 100)
	if got := NewESM(g, 0).Overhead(); got != 0 {
		t.Fatalf("ESM overhead = %d", got)
	}
	if got := NewESMC(g, sizes, 0).Overhead(); got != 0 {
		t.Fatalf("ESMC overhead = %d", got)
	}
	if got := NewVCM(g).Overhead(); got != total {
		t.Fatalf("VCM overhead = %d, want %d", got, total)
	}
	if got := NewVCMC(g, sizes).Overhead(); got != 6*total {
		t.Fatalf("VCMC overhead = %d, want %d", got, 6*total)
	}
}

func TestPlanLeavesAndNodes(t *testing.T) {
	g := fig4Grid(t)
	lat := g.Lattice()
	vcm := NewVCM(g)
	base := lat.Base()
	for n := 0; n < g.NumChunks(base); n++ {
		vcm.OnInsert(entry(base, n))
	}
	plan, found, err := vcm.Find(lat.Top(), 0)
	if !found || err != nil {
		t.Fatalf("Find: %v %v", found, err)
	}
	leaves := plan.Leaves(nil)
	if len(leaves) != 4 {
		t.Fatalf("plan leaves = %v, want the 4 base chunks", leaves)
	}
	// 1 root + 2 mid + 4 leaves = 7 nodes.
	if got := plan.Nodes(); got != 7 {
		t.Fatalf("plan nodes = %d, want 7", got)
	}
}

func TestMaintSub(t *testing.T) {
	a := Maint{Updates: 10, Time: 100}
	b := Maint{Updates: 4, Time: 30}
	d := a.Sub(b)
	if d.Updates != 6 || d.Time != 70 {
		t.Fatalf("Sub = %+v", d)
	}
}
