package strategy

import (
	"fmt"
	"sync"
	"sync/atomic"

	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/lattice"
)

// VCM is the Virtual Count based Method (§4). For every chunk of every
// group-by it maintains a count:
//
//	count = (1 if the chunk is resident) +
//	        (number of lattice parents through which a complete
//	         computation path exists)
//
// Property 1: count ≠ 0 ⇔ the chunk is answerable from the cache. Lookups
// therefore reject misses in O(1) and explore exactly one successful path on
// hits; the price is count maintenance on insert and eviction
// (VCM_InsertUpdateCount and its eviction dual).
type VCM struct {
	grid    *chunk.Grid
	lat     *lattice.Lattice
	mu      sync.RWMutex
	present *presence
	counts  [][]int32
	maint   maintCounters
	visited atomic.Int64
}

// NewVCM creates a VCM strategy with all-zero counts (empty cache).
func NewVCM(g *chunk.Grid) *VCM {
	lat := g.Lattice()
	s := &VCM{grid: g, lat: lat, present: newPresence(g), counts: make([][]int32, lat.NumNodes())}
	for id := range s.counts {
		s.counts[id] = make([]int32, g.NumChunks(lattice.ID(id)))
	}
	return s
}

// Name implements Strategy.
func (s *VCM) Name() string { return "VCM" }

// Count exposes a chunk's virtual count (tests and diagnostics).
func (s *VCM) Count(gb lattice.ID, num int) int32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.counts[gb][num]
}

// Find implements Strategy. A zero count returns immediately; otherwise
// exactly one successful path is expanded into a plan. Concurrent Finds share
// the read lock.
func (s *VCM) Find(gb lattice.ID, num int) (*Plan, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var visited int64
	plan := s.build(gb, num, &visited)
	s.visited.Store(visited)
	return plan, plan != nil, nil
}

func (s *VCM) build(gb lattice.ID, num int, visited *int64) *Plan {
	*visited++
	// Presence is checked before the count: recycled intermediates are
	// resident but excluded from count bookkeeping, so a present chunk may
	// legitimately carry a zero count.
	if s.present.has(gb, num) {
		return &Plan{GB: gb, Num: num, Present: true}
	}
	if s.counts[gb][num] == 0 {
		return nil
	}
	// Prefer a parent whose input chunks are all resident (recycled
	// intermediates included — they are excluded from count bookkeeping, so
	// the count scan below cannot see them): one roll-up step over present
	// chunks beats re-deriving a deeper path.
	var nums []int
	for _, parent := range s.lat.Parents(gb) {
		nums = s.grid.ParentChunks(gb, num, parent, nums[:0])
		all := true
		for _, cn := range nums {
			if !s.present.has(parent, cn) {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		*visited += int64(len(nums))
		inputs := make([]*Plan, 0, len(nums))
		for _, cn := range nums {
			inputs = append(inputs, &Plan{GB: parent, Num: cn, Present: true})
		}
		return &Plan{GB: gb, Num: num, Via: parent, Inputs: inputs}
	}
	for _, parent := range s.lat.Parents(gb) {
		nums = s.grid.ParentChunks(gb, num, parent, nums[:0])
		ok := true
		for _, cn := range nums {
			if s.counts[parent][cn] == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		inputs := make([]*Plan, 0, len(nums))
		for _, cn := range nums {
			sub := s.build(parent, cn, visited)
			if sub == nil {
				// Property 1 guarantees this cannot happen.
				panic(fmt.Sprintf("strategy: VCM count invariant violated at gb %d chunk %d", parent, cn))
			}
			inputs = append(inputs, sub)
		}
		return &Plan{GB: gb, Num: num, Via: parent, Inputs: inputs}
	}
	panic(fmt.Sprintf("strategy: VCM count %d at gb %d chunk %d but no successful parent",
		s.counts[gb][num], gb, num))
}

// OnInsert implements cache.Listener: the paper's VCM_InsertUpdateCount.
// Recycled intermediates get presence-only maintenance — they answer
// lookups as resident chunks but never enter the count lattice, so their
// admission (and later eviction) is O(1) instead of a cascade. The counts
// then describe exactly the non-speculative contents, which keeps the
// insert/evict duals consistent no matter how recycled entries churn.
func (s *VCM) OnInsert(e *cache.Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	timeMaint(&s.maint, func() {
		gb, num := e.Key.GB, int(e.Key.Num)
		s.present.set(gb, num)
		if e.Recycled {
			s.maint.bump(1)
			return
		}
		s.inc(gb, num)
	})
}

// inc increments a chunk's count and, when the chunk has *newly* become
// computable, propagates to every child whose sibling set through this
// group-by just completed.
func (s *VCM) inc(gb lattice.ID, num int) {
	s.maint.bump(1)
	s.counts[gb][num]++
	if s.counts[gb][num] > 1 {
		return // was already computable; children unaffected
	}
	var nums []int
	for _, child := range s.lat.Children(gb) {
		ccn := s.grid.ChildChunk(gb, num, child)
		nums = s.grid.ParentChunks(child, ccn, gb, nums[:0])
		complete := true
		for _, cn := range nums {
			if s.counts[gb][cn] == 0 {
				complete = false
				break
			}
		}
		if complete {
			s.inc(child, ccn)
		}
	}
}

// OnEvent implements cache.Listener: the eviction dual of insert (the paper
// notes it is "similar in implementation and complexity"). A demotion or
// promotion is a tier move — the chunk still answers through the store, so
// presence and counts are untouched; the count teardown runs only when the
// chunk truly leaves (Evicted, Removed).
func (s *VCM) OnEvent(ev cache.Event) {
	if ev.Answerable() {
		return
	}
	e := ev.Entry
	s.mu.Lock()
	defer s.mu.Unlock()
	timeMaint(&s.maint, func() {
		gb, num := e.Key.GB, int(e.Key.Num)
		s.present.clear(gb, num)
		if e.Recycled {
			s.maint.bump(1)
			return
		}
		s.dec(gb, num)
	})
}

// dec decrements a chunk's count; when the chunk just stopped being
// computable, every child whose path through this group-by was previously
// complete loses that path.
func (s *VCM) dec(gb lattice.ID, num int) {
	s.maint.bump(1)
	s.counts[gb][num]--
	if s.counts[gb][num] > 0 {
		return // still computable; children unaffected
	}
	if s.counts[gb][num] < 0 {
		panic(fmt.Sprintf("strategy: VCM count below zero at gb %d chunk %d", gb, num))
	}
	var nums []int
	for _, child := range s.lat.Children(gb) {
		ccn := s.grid.ChildChunk(gb, num, child)
		nums = s.grid.ParentChunks(child, ccn, gb, nums[:0])
		// The path through gb existed before this chunk went to zero iff all
		// of its siblings are (still) computable.
		complete := true
		for _, cn := range nums {
			if cn != num && s.counts[gb][cn] == 0 {
				complete = false
				break
			}
		}
		if complete {
			s.dec(child, ccn)
		}
	}
}

// Overhead implements Strategy: one count byte per chunk over all levels
// (Table 3 accounting).
func (s *VCM) Overhead() int64 { return s.grid.TotalChunks() }

// Maintenance implements Strategy.
func (s *VCM) Maintenance() Maint { return s.maint.snapshot() }

// LastVisited implements Strategy.
func (s *VCM) LastVisited() int64 { return s.visited.Load() }
