// Package metrics provides the timing instrumentation used throughout the
// experiments: per-query time breakups (cache lookup / aggregation / count
// maintenance / backend, matching Figure 10 of the paper) and min/max/avg
// accumulators for the lookup- and update-time tables.
package metrics

import (
	"fmt"
	"time"
)

// Breakdown is the cost of answering one query, split the way Figure 10
// splits it, plus the backend component for cache misses.
type Breakdown struct {
	// Lookup is the time spent deciding, per chunk, whether the cache can
	// answer (strategy Find calls).
	Lookup time.Duration
	// Aggregate is the time spent aggregating cached chunks.
	Aggregate time.Duration
	// Update is the time spent maintaining strategy state (virtual counts,
	// costs) while inserting and evicting chunks.
	Update time.Duration
	// Backend is the time attributed to backend execution: real compute plus
	// the latency model's simulated component.
	Backend time.Duration
}

// Total returns the full response time.
func (b Breakdown) Total() time.Duration {
	return b.Lookup + b.Aggregate + b.Update + b.Backend
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	b.Lookup += o.Lookup
	b.Aggregate += o.Aggregate
	b.Update += o.Update
	b.Backend += o.Backend
}

// Scale returns b divided by n (for averaging); n must be positive.
func (b Breakdown) Scale(n int) Breakdown {
	if n <= 0 {
		panic("metrics: Scale by non-positive count")
	}
	return Breakdown{
		Lookup:    b.Lookup / time.Duration(n),
		Aggregate: b.Aggregate / time.Duration(n),
		Update:    b.Update / time.Duration(n),
		Backend:   b.Backend / time.Duration(n),
	}
}

// String formats the breakdown compactly.
func (b Breakdown) String() string {
	return fmt.Sprintf("lookup=%v agg=%v update=%v backend=%v total=%v",
		b.Lookup, b.Aggregate, b.Update, b.Backend, b.Total())
}

// Accumulator tracks min/max/sum/count of durations — the shape of the
// paper's Tables 1 and 2 (min, max, average).
type Accumulator struct {
	Min, Max, Sum time.Duration
	N             int64
}

// Observe adds one sample.
func (a *Accumulator) Observe(d time.Duration) {
	if a.N == 0 || d < a.Min {
		a.Min = d
	}
	if d > a.Max {
		a.Max = d
	}
	a.Sum += d
	a.N++
}

// Avg returns the mean of the observed samples (0 if none).
func (a *Accumulator) Avg() time.Duration {
	if a.N == 0 {
		return 0
	}
	return a.Sum / time.Duration(a.N)
}

// Merge folds another accumulator into a.
func (a *Accumulator) Merge(o Accumulator) {
	if o.N == 0 {
		return
	}
	if a.N == 0 || o.Min < a.Min {
		a.Min = o.Min
	}
	if o.Max > a.Max {
		a.Max = o.Max
	}
	a.Sum += o.Sum
	a.N += o.N
}

// String formats the accumulator like the paper's tables: min/max/avg.
func (a *Accumulator) String() string {
	return fmt.Sprintf("min=%v max=%v avg=%v (n=%d)", a.Min, a.Max, a.Avg(), a.N)
}

// StopwatchFunc times fn and returns its duration.
func StopwatchFunc(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// Ms renders a duration as fractional milliseconds, the unit used by the
// paper's tables.
func Ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
