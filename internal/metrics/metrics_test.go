package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestBreakdown(t *testing.T) {
	b := Breakdown{Lookup: 1, Aggregate: 2, Update: 3, Backend: 4}
	if b.Total() != 10 {
		t.Fatalf("Total = %v", b.Total())
	}
	b.Add(Breakdown{Lookup: 10, Aggregate: 20, Update: 30, Backend: 40})
	if b.Lookup != 11 || b.Aggregate != 22 || b.Update != 33 || b.Backend != 44 {
		t.Fatalf("Add = %+v", b)
	}
	s := b.Scale(11)
	if s.Lookup != 1 || s.Aggregate != 2 || s.Update != 3 || s.Backend != 4 {
		t.Fatalf("Scale = %+v", s)
	}
	if !strings.Contains(b.String(), "lookup=") {
		t.Fatalf("String = %q", b.String())
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Scale(0) should panic")
		}
	}()
	b.Scale(0)
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	if a.Avg() != 0 {
		t.Fatalf("empty Avg = %v", a.Avg())
	}
	a.Observe(10)
	a.Observe(30)
	a.Observe(20)
	if a.Min != 10 || a.Max != 30 || a.Avg() != 20 || a.N != 3 {
		t.Fatalf("acc = %+v", a)
	}
	var b Accumulator
	b.Observe(5)
	b.Observe(100)
	a.Merge(b)
	if a.Min != 5 || a.Max != 100 || a.N != 5 {
		t.Fatalf("merged = %+v", a)
	}
	var empty Accumulator
	a.Merge(empty)
	if a.N != 5 {
		t.Fatalf("merge with empty changed N")
	}
	empty.Merge(a)
	if empty.Min != 5 || empty.Max != 100 {
		t.Fatalf("merge into empty = %+v", empty)
	}
	if !strings.Contains(a.String(), "min=") {
		t.Fatalf("String = %q", a.String())
	}
}

func TestStopwatchAndMs(t *testing.T) {
	d := StopwatchFunc(func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond {
		t.Fatalf("StopwatchFunc = %v", d)
	}
	if Ms(1500*time.Microsecond) != 1.5 {
		t.Fatalf("Ms = %v", Ms(1500*time.Microsecond))
	}
}
