package chunk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aggcache/internal/lattice"
	"aggcache/internal/schema"
)

// fig1Schema models the paper's Figure 1: two dimensions Product and Time,
// single-level hierarchies, 2 chunks each at the detailed level.
func fig1Schema(t testing.TB) (*schema.Schema, *Grid) {
	t.Helper()
	p := schema.MustNewDimension("Product", []schema.HierarchySpec{{Name: "P", Card: 4}})
	tm := schema.MustNewDimension("Time", []schema.HierarchySpec{{Name: "T", Card: 4}})
	s := schema.MustNew("Sales", p, tm)
	g, err := NewGrid(s, [][]int{{1, 2}, {1, 2}})
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	return s, g
}

func TestFig1ChunkClosure(t *testing.T) {
	_, g := fig1Schema(t)
	lat := g.Lattice()
	pt := lat.MustID(1, 1)       // (Product, Time)
	timeOnly := lat.MustID(0, 1) // (Time)
	if got := g.NumChunks(pt); got != 4 {
		t.Fatalf("NumChunks(P,T) = %d, want 4", got)
	}
	if got := g.NumChunks(timeOnly); got != 2 {
		t.Fatalf("NumChunks(T) = %d, want 2", got)
	}
	// Chunk 0 of (Time) is computed from the two chunks of (Product,Time)
	// covering time chunk 0 — the Figure 1 correspondence.
	got := g.ParentChunks(timeOnly, 0, pt, nil)
	want := map[int]bool{0: true, 2: true} // product chunks 0,1 x time chunk 0
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Fatalf("ParentChunks = %v, want {0,2}", got)
	}
	for _, pc := range got {
		if cc := g.ChildChunk(pt, pc, timeOnly); cc != 0 {
			t.Fatalf("ChildChunk(%d) = %d, want 0", pc, cc)
		}
	}
}

func TestGridErrors(t *testing.T) {
	p := schema.MustNewDimension("P", []schema.HierarchySpec{{Name: "a", Card: 4}})
	s := schema.MustNew("M", p)
	cases := []struct {
		name   string
		counts [][]int
	}{
		{"wrong dims", [][]int{{1, 2}, {1, 2}}},
		{"wrong levels", [][]int{{1}}},
		{"ALL not 1", [][]int{{2, 2}}},
		{"zero chunks", [][]int{{1, 0}}},
		{"too many chunks", [][]int{{1, 5}}},
	}
	for _, c := range cases {
		if _, err := NewGrid(s, c.counts); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Decreasing chunk counts with level.
	d2 := schema.MustNewDimension("D", []schema.HierarchySpec{{Name: "a", Card: 4}, {Name: "b", Card: 8}})
	s2 := schema.MustNew("M", d2)
	if _, err := NewGrid(s2, [][]int{{1, 4, 2}}); err == nil {
		t.Errorf("decreasing counts: expected error")
	}
}

// TestClosureUnalignable checks that a grid whose chunk counts cannot be
// aligned with hierarchy boundaries is rejected. One parent with all the
// members means level "a" has no aligned interior boundary.
func TestClosureUnalignable(t *testing.T) {
	d := schema.MustNewDimension("D", []schema.HierarchySpec{
		{Name: "a", Card: 2, ParentOf: nil},
		{Name: "b", Card: 8, ParentOf: []int32{0, 0, 0, 0, 0, 0, 0, 1}},
	})
	s := schema.MustNew("M", d)
	// Level b split into 4 chunks of 2 members: boundaries at 2,4,6 — none
	// aligns with the parent change at member 7. So level a cannot get 2
	// chunks.
	if _, err := NewGrid(s, [][]int{{1, 2, 4}}); err == nil {
		t.Fatalf("expected closure alignment error")
	}
	// With 1 chunk at level a it is fine.
	if _, err := NewGrid(s, [][]int{{1, 1, 4}}); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func apb3Grid(t testing.TB) *Grid {
	t.Helper()
	p := schema.MustNewDimension("Product", []schema.HierarchySpec{
		{Name: "Group", Card: 4}, {Name: "Class", Card: 16}, {Name: "Code", Card: 64},
	})
	c := schema.MustNewDimension("Customer", []schema.HierarchySpec{
		{Name: "Retailer", Card: 6}, {Name: "Store", Card: 24},
	})
	tm := schema.MustNewDimension("Time", []schema.HierarchySpec{
		{Name: "Year", Card: 2}, {Name: "Quarter", Card: 8}, {Name: "Month", Card: 24},
	})
	s := schema.MustNew("UnitSales", p, c, tm)
	g, err := NewGrid(s, [][]int{{1, 2, 4, 8}, {1, 3, 6}, {1, 1, 2, 6}})
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	return g
}

// TestClosureProperty verifies, for every group-by, every chunk, and every
// lattice parent, that the parent chunks partition the chunk: their member
// regions are disjoint and exactly tile the chunk's region.
func TestClosureProperty(t *testing.T) {
	g := apb3Grid(t)
	lat := g.Lattice()
	for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
		for _, parent := range lat.Parents(id) {
			d, _ := lat.StepDim(id, parent)
			for num := 0; num < g.NumChunks(id); num++ {
				pcs := g.ParentChunks(id, num, parent, nil)
				if len(pcs) == 0 {
					t.Fatalf("gb %s chunk %d: no parent chunks", lat.LevelTupleString(id), num)
				}
				// Every parent chunk must map back to num, and their member
				// ranges along d must tile the chunk's range mapped down.
				var cbuf [16]int32
				coords := g.Coords(id, num, cbuf[:0])
				l := lat.LevelAt(id, d)
				myRange := g.MemberRange(d, l, coords[d])
				dim := g.Schema().Dim(d)
				wantLo, wantHi := dim.DescendantRange(l, l+1, myRange.Lo)
				_, wantHi = dim.DescendantRange(l, l+1, myRange.Hi-1)
				_ = wantLo
				lo, _ := dim.DescendantRange(l, l+1, myRange.Lo)
				next := lo
				for _, pc := range pcs {
					if back := g.ChildChunk(parent, pc, id); back != num {
						t.Fatalf("gb %s chunk %d parent chunk %d maps back to %d", lat.LevelTupleString(id), num, pc, back)
					}
					pcoords := g.Coords(parent, pc, nil)
					pr := g.MemberRange(d, l+1, pcoords[d])
					if pr.Lo != next {
						t.Fatalf("gb %s chunk %d: parent chunks do not tile (gap at %d)", lat.LevelTupleString(id), num, next)
					}
					next = pr.Hi
				}
				if next != wantHi {
					t.Fatalf("gb %s chunk %d: parent chunks end at %d, want %d", lat.LevelTupleString(id), num, next, wantHi)
				}
			}
		}
	}
}

// TestAncestorChunksMatchesRecursiveParents cross-checks the multi-step
// AncestorChunks against repeated single-step ParentChunks.
func TestAncestorChunksMatchesRecursiveParents(t *testing.T) {
	g := apb3Grid(t)
	lat := g.Lattice()
	base := lat.Base()
	rng := rand.New(rand.NewSource(7))
	for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
		num := rng.Intn(g.NumChunks(id))
		// Walk one random path of parent steps up to base, expanding sets.
		set := map[int]bool{num: true}
		cur := id
		for cur != base {
			ps := lat.Parents(cur)
			p := ps[rng.Intn(len(ps))]
			nset := map[int]bool{}
			for c := range set {
				for _, pc := range g.ParentChunks(cur, c, p, nil) {
					nset[pc] = true
				}
			}
			set, cur = nset, p
		}
		want := g.AncestorChunks(id, num, base, nil)
		if len(want) != len(set) {
			t.Fatalf("gb %s chunk %d: AncestorChunks %d vs recursive %d", lat.LevelTupleString(id), num, len(want), len(set))
		}
		for _, c := range want {
			if !set[c] {
				t.Fatalf("gb %s chunk %d: AncestorChunks has %d not reached recursively", lat.LevelTupleString(id), num, c)
			}
		}
	}
}

func TestCoordsNumberRoundTrip(t *testing.T) {
	g := apb3Grid(t)
	lat := g.Lattice()
	for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
		for num := 0; num < g.NumChunks(id); num++ {
			coords := g.Coords(id, num, nil)
			if got := g.Number(id, coords); got != num {
				t.Fatalf("gb %d: %d -> %v -> %d", id, num, coords, got)
			}
		}
	}
}

func TestCellKeyRoundTrip(t *testing.T) {
	g := apb3Grid(t)
	lat := g.Lattice()
	rng := rand.New(rand.NewSource(3))
	for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
		lv := lat.Level(id)
		for trial := 0; trial < 20; trial++ {
			members := make([]int32, len(lv))
			for d, l := range lv {
				members[d] = int32(rng.Intn(g.Schema().Dim(d).Card(l)))
			}
			num, key := g.ChunkOfCell(id, members)
			got := g.CellMembers(id, num, key, nil)
			for d := range members {
				if got[d] != members[d] {
					t.Fatalf("gb %s: members %v -> (%d,%d) -> %v", lat.LevelTupleString(id), members, num, key, got)
				}
			}
		}
	}
}

func TestTotalChunks(t *testing.T) {
	g := apb3Grid(t)
	lat := g.Lattice()
	var want int64
	for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
		want += int64(g.NumChunks(id))
	}
	if got := g.TotalChunks(); got != want {
		t.Fatalf("TotalChunks = %d, want %d", got, want)
	}
}

func TestDimBaseRange(t *testing.T) {
	g := apb3Grid(t)
	// Time dimension (d=2): level 0 chunk 0 covers all 6 base chunks.
	if r := g.DimBaseRange(2, 0, 0); r.Lo != 0 || r.Hi != 6 {
		t.Fatalf("DimBaseRange(2,0,0) = %+v, want [0,6)", r)
	}
	// Level 2 (Quarter) has 2 chunks -> base chunks [0,3) and [3,6).
	if r := g.DimBaseRange(2, 2, 1); r.Lo != 3 || r.Hi != 6 {
		t.Fatalf("DimBaseRange(2,2,1) = %+v, want [3,6)", r)
	}
	// Base level maps to itself.
	if r := g.DimBaseRange(2, 3, 4); r.Lo != 4 || r.Hi != 5 {
		t.Fatalf("DimBaseRange(2,3,4) = %+v, want [4,5)", r)
	}
}

func TestSpanAndCapacity(t *testing.T) {
	_, g := fig1Schema(t)
	lat := g.Lattice()
	base := lat.Base()
	span := g.Span(base, 0, nil)
	if len(span) != 2 || span[0] != 2 || span[1] != 2 {
		t.Fatalf("Span = %v, want [2 2]", span)
	}
	if got := g.CellCapacity(base, 0); got != 4 {
		t.Fatalf("CellCapacity = %d, want 4", got)
	}
	if got := g.CellCapacity(lat.Top(), 0); got != 1 {
		t.Fatalf("CellCapacity(top) = %d, want 1", got)
	}
}

// TestGridPropertyRandom builds random closure-compatible grids and checks
// the partition invariants hold everywhere.
func TestGridPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 1 + rng.Intn(3)
		dims := make([]*schema.Dimension, nd)
		counts := make([][]int, nd)
		for d := range dims {
			nl := 1 + rng.Intn(3)
			specs := make([]schema.HierarchySpec, nl)
			card := 1
			fan := 1 + rng.Intn(3)
			for i := range specs {
				card *= fan + 1
				specs[i] = schema.HierarchySpec{Name: string(rune('A' + i)), Card: card}
			}
			dims[d] = schema.MustNewDimension(string(rune('X'+d)), specs)
			// Uniform hierarchy: chunk counts that divide the fanout chain
			// are always alignable; use powers of the fanout.
			cts := make([]int, nl+1)
			cts[0] = 1
			c := 1
			for l := 1; l <= nl; l++ {
				if rng.Intn(2) == 0 && c*(fan+1) <= dims[d].Card(l) {
					c *= fan + 1
				}
				cts[l] = c
			}
			counts[d] = cts
		}
		s := schema.MustNew("M", dims...)
		g, err := NewGrid(s, counts)
		if err != nil {
			return false
		}
		lat := g.Lattice()
		for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
			for _, parent := range lat.Parents(id) {
				seen := make(map[int]int)
				for num := 0; num < g.NumChunks(id); num++ {
					for _, pc := range g.ParentChunks(id, num, parent, nil) {
						seen[pc]++
						if g.ChildChunk(parent, pc, id) != num {
							return false
						}
					}
				}
				// Each parent chunk claimed exactly once.
				if len(seen) != g.NumChunks(parent) {
					return false
				}
				for _, n := range seen {
					if n != 1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
