// Package chunk implements chunk-based organization of multidimensional data
// (§2 of the paper, following [DRSN98]).
//
// The distinct members of every dimension level are divided into contiguous
// ranges; the cross product of those ranges partitions each group-by's space
// into chunks. The grid is built so that the *closure property* holds: every
// chunk at an aggregated level corresponds exactly to a whole, contiguous run
// of chunks at the next more detailed level. This is what lets a chunk be
// computed by aggregating a well-defined set of more detailed chunks.
package chunk

import (
	"fmt"
	"sync"

	"aggcache/internal/lattice"
	"aggcache/internal/schema"
)

// Range is a half-open interval [Lo, Hi) of chunk or member indexes.
type Range struct{ Lo, Hi int32 }

// Len returns the number of indexes in the range.
func (r Range) Len() int { return int(r.Hi - r.Lo) }

// Grid is the chunking of a schema: per dimension and per hierarchy level, a
// division of the members into contiguous chunk ranges, aligned across
// levels so that the closure property holds. A Grid's geometry is immutable
// after New; the only mutable state is the internal, concurrency-safe memo
// of roll-up mappers (see rollUpMapper), which is pure memoization of that
// geometry.
type Grid struct {
	sch *schema.Schema
	lat *lattice.Lattice
	// counts[d][l] = number of chunks of dimension d at level l.
	counts [][]int
	// starts[d][l] has counts[d][l]+1 member boundaries; chunk c covers
	// members [starts[c], starts[c+1]).
	starts [][][]int32
	// chunkOf[d][l][m] = chunk index containing member m.
	chunkOf [][][]int32
	// parentRange[d][l][c] = run of chunks at level l+1 that chunk c at level
	// l maps to. parentRange[d][h] is nil.
	parentRange [][][]Range
	// childChunk[d][l][c] = chunk at level l-1 containing chunk c of level l.
	// childChunk[d][0] is nil.
	childChunk [][][]int32
	// baseRange[d][l][c] = run of base-level chunks covered by chunk c.
	baseRange [][][]Range
	// chunkStrides[gb] = row-major strides over per-dimension chunk counts.
	chunkStrides [][]int
	// numChunks[gb] = total chunks of group-by gb.
	numChunks []int

	// mapMu guards mappers, the memoized roll-up translation tables keyed by
	// (srcGB, srcNum, dstGB). Read-mostly: every steady-state RollUpInto is
	// one RLock'd lookup.
	mapMu   sync.RWMutex
	mappers map[mapperKey]*rollUpMapper
}

// NewGrid builds a grid with counts[d][l] chunks for dimension d at level l.
// Requirements, checked with descriptive errors:
//   - counts[d][0] == 1 and counts are non-decreasing with level;
//   - counts[d][l] ≤ the level's cardinality;
//   - chunk boundaries can be aligned with hierarchy boundaries (closure).
//
// Base-level chunk boundaries split the members as evenly as possible; at
// each aggregated level, boundaries are chosen among the detail boundaries
// that coincide with a parent-member change, spread as evenly as possible.
func NewGrid(sch *schema.Schema, counts [][]int) (*Grid, error) {
	if len(counts) != sch.NumDims() {
		return nil, fmt.Errorf("chunk: counts has %d dimensions, want %d", len(counts), sch.NumDims())
	}
	g := &Grid{
		sch:         sch,
		lat:         lattice.New(sch),
		counts:      make([][]int, sch.NumDims()),
		starts:      make([][][]int32, sch.NumDims()),
		chunkOf:     make([][][]int32, sch.NumDims()),
		parentRange: make([][][]Range, sch.NumDims()),
		childChunk:  make([][][]int32, sch.NumDims()),
		baseRange:   make([][][]Range, sch.NumDims()),
		mappers:     make(map[mapperKey]*rollUpMapper),
	}
	for d := 0; d < sch.NumDims(); d++ {
		if err := g.buildDim(d, counts[d]); err != nil {
			return nil, err
		}
	}
	g.buildGroupByTables()
	return g, nil
}

// MustNewGrid is NewGrid but panics on error.
func MustNewGrid(sch *schema.Schema, counts [][]int) *Grid {
	g, err := NewGrid(sch, counts)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Grid) buildDim(d int, counts []int) error {
	dim := g.sch.Dim(d)
	h := dim.Hierarchy()
	if len(counts) != h+1 {
		return fmt.Errorf("chunk: dimension %s: %d chunk counts, want %d", dim.Name(), len(counts), h+1)
	}
	if counts[0] != 1 {
		return fmt.Errorf("chunk: dimension %s: level 0 (ALL) must have 1 chunk, got %d", dim.Name(), counts[0])
	}
	for l := 0; l <= h; l++ {
		if counts[l] < 1 || counts[l] > dim.Card(l) {
			return fmt.Errorf("chunk: dimension %s level %s: %d chunks outside [1,%d]",
				dim.Name(), dim.LevelName(l), counts[l], dim.Card(l))
		}
		if l > 0 && counts[l] < counts[l-1] {
			return fmt.Errorf("chunk: dimension %s level %s: chunk count %d below more aggregated level's %d",
				dim.Name(), dim.LevelName(l), counts[l], counts[l-1])
		}
	}
	g.counts[d] = append([]int(nil), counts...)
	g.starts[d] = make([][]int32, h+1)
	g.parentRange[d] = make([][]Range, h+1)
	g.childChunk[d] = make([][]int32, h+1)

	// Base level: balanced split.
	g.starts[d][h] = balancedSplit(dim.Card(h), counts[h])

	// Aggregated levels, from detailed to aggregated: choose cuts among
	// detail chunk boundaries that align with parent-member boundaries.
	for l := h - 1; l >= 0; l-- {
		det := g.starts[d][l+1]
		k := counts[l+1] // number of detail chunks
		// Candidate interior cuts: detail chunk boundary j (1..k-1) such that
		// the parent changes across the boundary.
		var cand []int
		for j := 1; j < k; j++ {
			b := det[j]
			if dim.Parent(l+1, b-1) != dim.Parent(l+1, b) {
				cand = append(cand, j)
			}
		}
		need := counts[l] - 1
		if len(cand) < need {
			return fmt.Errorf("chunk: dimension %s level %s: want %d chunks but only %d aligned boundaries exist; reduce the chunk count or re-chunk level %s",
				dim.Name(), dim.LevelName(l), counts[l], len(cand)+1, dim.LevelName(l+1))
		}
		cuts := spreadSelect(cand, need, k)
		// Chunk c at level l maps to detail chunks [cuts[c], cuts[c+1]).
		pr := make([]Range, counts[l])
		st := make([]int32, counts[l]+1)
		st[counts[l]] = int32(dim.Card(l))
		full := append(append([]int{0}, cuts...), k)
		for c := 0; c < counts[l]; c++ {
			pr[c] = Range{Lo: int32(full[c]), Hi: int32(full[c+1])}
			st[c] = dim.Parent(l+1, det[full[c]])
		}
		g.parentRange[d][l] = pr
		g.starts[d][l] = st
		// Inverse mapping for level l+1.
		cc := make([]int32, counts[l+1])
		for c := 0; c < counts[l]; c++ {
			for j := pr[c].Lo; j < pr[c].Hi; j++ {
				cc[j] = int32(c)
			}
		}
		g.childChunk[d][l+1] = cc
	}

	// Member -> chunk and base chunk ranges.
	g.chunkOf[d] = make([][]int32, h+1)
	g.baseRange[d] = make([][]Range, h+1)
	for l := 0; l <= h; l++ {
		co := make([]int32, dim.Card(l))
		st := g.starts[d][l]
		for c := 0; c < counts[l]; c++ {
			for m := st[c]; m < st[c+1]; m++ {
				co[m] = int32(c)
			}
		}
		g.chunkOf[d][l] = co
	}
	for l := h; l >= 0; l-- {
		br := make([]Range, counts[l])
		for c := range br {
			if l == h {
				br[c] = Range{Lo: int32(c), Hi: int32(c + 1)}
			} else {
				pr := g.parentRange[d][l][c]
				br[c] = Range{
					Lo: g.baseRange[d][l+1][pr.Lo].Lo,
					Hi: g.baseRange[d][l+1][pr.Hi-1].Hi,
				}
			}
		}
		g.baseRange[d][l] = br
	}
	return nil
}

// balancedSplit returns n+1 boundaries splitting card members into n chunks
// of near-equal size.
func balancedSplit(card, n int) []int32 {
	st := make([]int32, n+1)
	for i := 0; i <= n; i++ {
		st[i] = int32(i * card / n)
	}
	return st
}

// spreadSelect picks need values from the sorted candidate list cand,
// spreading them as evenly as possible over [0, k]. It keeps selections
// strictly increasing and always leaves enough candidates for the remaining
// picks.
func spreadSelect(cand []int, need, k int) []int {
	if need == 0 {
		return nil
	}
	out := make([]int, 0, need)
	pos := 0
	for i := 1; i <= need; i++ {
		target := i * k / (need + 1)
		// Advance while the next candidate is closer to the target and enough
		// candidates remain for the outstanding picks.
		for pos+1 < len(cand) &&
			len(cand)-(pos+1) >= need-i &&
			abs(cand[pos+1]-target) <= abs(cand[pos]-target) {
			pos++
		}
		out = append(out, cand[pos])
		pos++
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func (g *Grid) buildGroupByTables() {
	n := g.lat.NumNodes()
	nd := g.sch.NumDims()
	g.chunkStrides = make([][]int, n)
	g.numChunks = make([]int, n)
	for id := 0; id < n; id++ {
		lv := g.lat.Level(lattice.ID(id))
		strides := make([]int, nd)
		total := 1
		for d := nd - 1; d >= 0; d-- {
			strides[d] = total
			total *= g.counts[d][lv[d]]
		}
		g.chunkStrides[id] = strides
		g.numChunks[id] = total
	}
}

// Schema returns the schema the grid chunks.
func (g *Grid) Schema() *schema.Schema { return g.sch }

// Lattice returns the group-by lattice of the grid's schema.
func (g *Grid) Lattice() *lattice.Lattice { return g.lat }

// ChunkCount returns the number of chunks of dimension d at level l.
func (g *Grid) ChunkCount(d, l int) int { return g.counts[d][l] }

// NumChunks returns the total number of chunks of group-by gb.
func (g *Grid) NumChunks(gb lattice.ID) int { return g.numChunks[gb] }

// TotalChunks returns the number of chunks summed over every group-by in the
// lattice — the size of the virtual-count arrays (§7.1 "Space Overhead").
func (g *Grid) TotalChunks() int64 {
	total := int64(1)
	for d := range g.counts {
		s := int64(0)
		for _, c := range g.counts[d] {
			s += int64(c)
		}
		total *= s
	}
	return total
}

// MemberRange returns the member range of chunk c of dimension d at level l.
func (g *Grid) MemberRange(d, l int, c int32) Range {
	st := g.starts[d][l]
	return Range{Lo: st[c], Hi: st[c+1]}
}

// ChunkOfMember returns the chunk index containing member m of dimension d
// at level l.
func (g *Grid) ChunkOfMember(d, l int, m int32) int32 { return g.chunkOf[d][l][m] }

// DimParentRange returns the run of chunks at level l+1 of dimension d that
// chunk c at level l corresponds to.
func (g *Grid) DimParentRange(d, l int, c int32) Range { return g.parentRange[d][l][c] }

// DimChildChunk returns the chunk at level l-1 of dimension d containing
// chunk c at level l.
func (g *Grid) DimChildChunk(d, l int, c int32) int32 { return g.childChunk[d][l][c] }

// DimBaseRange returns the run of base-level chunks of dimension d covered
// by chunk c at level l.
func (g *Grid) DimBaseRange(d, l int, c int32) Range { return g.baseRange[d][l][c] }

// Coords decodes chunk number num of group-by gb into per-dimension chunk
// coordinates, appending to dst (which may be nil).
func (g *Grid) Coords(gb lattice.ID, num int, dst []int32) []int32 {
	strides := g.chunkStrides[gb]
	for _, s := range strides {
		dst = append(dst, int32(num/s))
		num %= s
	}
	return dst
}

// Number encodes per-dimension chunk coordinates into a chunk number of
// group-by gb.
func (g *Grid) Number(gb lattice.ID, coords []int32) int {
	strides := g.chunkStrides[gb]
	num := 0
	for d, c := range coords {
		num += int(c) * strides[d]
	}
	return num
}

// ParentChunks returns the chunk numbers at parent group-by parent (one
// level more detailed on a single dimension) whose aggregation yields chunk
// num of gb — the paper's GetParentChunkNumbers. The result is appended to
// dst.
func (g *Grid) ParentChunks(gb lattice.ID, num int, parent lattice.ID, dst []int) []int {
	d, ok := g.lat.StepDim(gb, parent)
	if !ok {
		panic(fmt.Sprintf("chunk: %s is not a lattice parent of %s", g.lat.LevelTupleString(parent), g.lat.LevelTupleString(gb)))
	}
	var buf [16]int32
	coords := g.Coords(gb, num, buf[:0])
	l := g.lat.LevelAt(gb, d)
	r := g.parentRange[d][l][coords[d]]
	for c := r.Lo; c < r.Hi; c++ {
		coords[d] = c
		dst = append(dst, g.Number(parent, coords))
	}
	return dst
}

// ChildChunk returns the chunk number at child group-by child (one level
// more aggregated on a single dimension) that chunk num of gb contributes to
// — the paper's GetChildChunkNumber.
func (g *Grid) ChildChunk(gb lattice.ID, num int, child lattice.ID) int {
	d, ok := g.lat.StepDim(child, gb)
	if !ok {
		panic(fmt.Sprintf("chunk: %s is not a lattice child of %s", g.lat.LevelTupleString(child), g.lat.LevelTupleString(gb)))
	}
	var buf [16]int32
	coords := g.Coords(gb, num, buf[:0])
	l := g.lat.LevelAt(gb, d)
	coords[d] = g.childChunk[d][l][coords[d]]
	return g.Number(child, coords)
}

// AncestorChunks appends the chunk numbers at ancestor group-by anc
// (componentwise ≥ gb) covering chunk num of gb. For a direct parent this
// equals ParentChunks.
func (g *Grid) AncestorChunks(gb lattice.ID, num int, anc lattice.ID, dst []int) []int {
	if !g.lat.ComputableFrom(gb, anc) {
		panic(fmt.Sprintf("chunk: %s is not an ancestor of %s", g.lat.LevelTupleString(anc), g.lat.LevelTupleString(gb)))
	}
	var buf [16]int32
	coords := g.Coords(gb, num, buf[:0])
	nd := g.sch.NumDims()
	ranges := make([]Range, nd)
	for d := 0; d < nd; d++ {
		lo, hi := g.lat.LevelAt(gb, d), g.lat.LevelAt(anc, d)
		r := Range{Lo: coords[d], Hi: coords[d] + 1}
		for l := lo; l < hi; l++ {
			r = Range{
				Lo: g.parentRange[d][l][r.Lo].Lo,
				Hi: g.parentRange[d][l][r.Hi-1].Hi,
			}
		}
		ranges[d] = r
	}
	// Cartesian product.
	cur := make([]int32, nd)
	for d := range cur {
		cur[d] = ranges[d].Lo
	}
	for {
		dst = append(dst, g.Number(anc, cur))
		d := nd - 1
		for d >= 0 {
			cur[d]++
			if cur[d] < ranges[d].Hi {
				break
			}
			cur[d] = ranges[d].Lo
			d--
		}
		if d < 0 {
			return dst
		}
	}
}

// DescendantChunk returns the chunk number at descendant group-by desc
// (componentwise ≤ gb) that chunk num of gb contributes to.
func (g *Grid) DescendantChunk(gb lattice.ID, num int, desc lattice.ID) int {
	if !g.lat.ComputableFrom(desc, gb) {
		panic(fmt.Sprintf("chunk: %s is not a descendant of %s", g.lat.LevelTupleString(desc), g.lat.LevelTupleString(gb)))
	}
	var buf [16]int32
	coords := g.Coords(gb, num, buf[:0])
	for d := 0; d < g.sch.NumDims(); d++ {
		for l := g.lat.LevelAt(gb, d); l > g.lat.LevelAt(desc, d); l-- {
			coords[d] = g.childChunk[d][l][coords[d]]
		}
	}
	return g.Number(desc, coords)
}

// Span returns the per-dimension member counts of chunk num of gb, appended
// to dst.
func (g *Grid) Span(gb lattice.ID, num int, dst []int32) []int32 {
	var buf [16]int32
	coords := g.Coords(gb, num, buf[:0])
	lv := g.lat.Level(gb)
	for d, c := range coords {
		r := g.MemberRange(d, lv[d], c)
		dst = append(dst, r.Hi-r.Lo)
	}
	return dst
}

// CellCapacity returns the dense cell capacity of chunk num of gb: the
// product of its per-dimension member spans.
func (g *Grid) CellCapacity(gb lattice.ID, num int) int64 {
	var buf [16]int32
	span := g.Span(gb, num, buf[:0])
	cap := int64(1)
	for _, s := range span {
		cap *= int64(s)
	}
	return cap
}

// ChunkOfCell returns the chunk number and intra-chunk cell key of the cell
// with the given absolute member ids at group-by gb.
func (g *Grid) ChunkOfCell(gb lattice.ID, members []int32) (num int, key uint64) {
	lv := g.lat.Level(gb)
	var cbuf [16]int32
	coords := cbuf[:0]
	for d, m := range members {
		coords = append(coords, g.chunkOf[d][lv[d]][m])
	}
	num = g.Number(gb, coords)
	key = 0
	for d, m := range members {
		r := g.MemberRange(d, lv[d], coords[d])
		key = key*uint64(r.Hi-r.Lo) + uint64(m-r.Lo)
	}
	return num, key
}

// CellMembers decodes an intra-chunk cell key of chunk num at gb back into
// absolute member ids, appended to dst.
func (g *Grid) CellMembers(gb lattice.ID, num int, key uint64, dst []int32) []int32 {
	lv := g.lat.Level(gb)
	var cbuf, sbuf [16]int32
	coords := g.Coords(gb, num, cbuf[:0])
	spans := sbuf[:0]
	for d, c := range coords {
		r := g.MemberRange(d, lv[d], c)
		spans = append(spans, r.Hi-r.Lo)
	}
	start := len(dst)
	dst = append(dst, make([]int32, len(coords))...)
	for d := len(coords) - 1; d >= 0; d-- {
		span := uint64(spans[d])
		off := key % span
		key /= span
		r := g.MemberRange(d, lv[d], coords[d])
		dst[start+d] = r.Lo + int32(off)
	}
	return dst
}
