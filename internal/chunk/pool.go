package chunk

import (
	"sync"

	"aggcache/internal/lattice"
)

// The aggregation hot path runs one accumulator per plan node and one
// transient chunk per intermediate result; both are pooled so the steady
// state allocates (near) nothing. Ownership rules (DESIGN.md §9):
//
//   - a CellMap from GetCellMap must go back through PutCellMap and must not
//     be touched afterwards;
//   - a Chunk from GetScratchChunk may be filled via CellMap.BuildInto, fed
//     to RollUpInto as a source, and released with PutScratchChunk — it must
//     NEVER be inserted into a cache, stored in a Result, or otherwise
//     retained past the release;
//   - chunks that outlive the computation (cache inserts, query results) are
//     built with CellMap.Build, which always allocates fresh backing arrays.
var (
	cellMapPool      = sync.Pool{New: func() any { return new(CellMap) }}
	scratchChunkPool = sync.Pool{New: func() any { return new(Chunk) }}
)

// GetCellMap returns a pooled accumulator sized for chunk num of group-by gb
// — dense when the chunk's cell capacity permits, like Grid.NewCellMap, but
// reusing a previous accumulator's arrays when one is available. Release it
// with PutCellMap.
func (g *Grid) GetCellMap(gb lattice.ID, num int) *CellMap {
	cm := cellMapPool.Get().(*CellMap)
	cm.prepare(g.CellCapacity(gb, num))
	return cm
}

// PutCellMap resets cm and returns it to the pool; nil is a no-op. The
// reset-before-pool step is what upholds the pool invariant that every
// pooled accumulator's backing arrays are fully zeroed, so a reuse at a
// larger capacity cannot observe a previous query's cells.
func PutCellMap(cm *CellMap) {
	if cm == nil {
		return
	}
	cm.Reset()
	cellMapPool.Put(cm)
}

// GetScratchChunk returns a pooled Chunk for CellMap.BuildInto to emit an
// intermediate (non-retained) result into. Release it with PutScratchChunk
// once the consumer — typically a parent RollUpInto — is done with it.
func GetScratchChunk() *Chunk {
	return scratchChunkPool.Get().(*Chunk)
}

// PutScratchChunk returns c and its backing arrays to the scratch pool; nil
// is a no-op. The caller must not retain c afterwards.
func PutScratchChunk(c *Chunk) {
	if c == nil {
		return
	}
	scratchChunkPool.Put(c)
}
