package chunk

import (
	"encoding/binary"
	"errors"
	"math"

	"aggcache/internal/lattice"
)

// Sparse-payload codec: the compressed representation the cache's cold tier
// and the snapshot log store chunks in. Cell keys are sorted and distinct,
// so they delta-encode into varints (one or two bytes for the clustered
// offsets APB chunks produce, against eight in memory); fact-row counts are
// small non-negative integers and varint-encode the same way; the float64
// sums are stored as raw little-endian words (aggregated measures use the
// full mantissa, so there is nothing to squeeze without going lossy).
//
// Layout, all little-endian:
//
//	u8      flags          (bit0: counts present)
//	uvarint cells          (number of cells, n)
//	uvarint key[0], key[i]-key[i-1]-1 ...   (n strictly ascending deltas)
//	u64     val ... (n raw float64 words)
//	uvarint count ...      (n, only when bit0 set)
//
// The codec is deliberately self-contained per payload: group-by and chunk
// number travel outside it (cold-tier map key, snapshot record header), so
// the same bytes serve both consumers.

// codecHasCounts marks payloads whose cells carry fact-row counts.
const codecHasCounts = 0x01

// ErrCodec is wrapped by every decode failure, so callers can distinguish a
// corrupt payload from I/O errors with errors.Is.
var ErrCodec = errors.New("chunk: corrupt encoded payload")

var (
	errCodecShort    = wrapCodec("chunk: encoded payload truncated")
	errCodecCells    = wrapCodec("chunk: encoded cell count exceeds payload size")
	errCodecKeys     = wrapCodec("chunk: encoded keys not strictly ascending")
	errCodecVarint   = wrapCodec("chunk: malformed varint")
	errCodecCount    = wrapCodec("chunk: encoded count overflows int64")
	errCodecTrailing = wrapCodec("chunk: trailing garbage after encoded payload")
	errCodecFlags    = wrapCodec("chunk: unknown payload flags")
)

// wrapCodec makes a sentinel that errors.Is-matches ErrCodec.
func wrapCodec(msg string) error { return &codecError{msg: msg} }

type codecError struct{ msg string }

func (e *codecError) Error() string { return e.msg }
func (e *codecError) Is(target error) bool {
	return target == ErrCodec
}

// AppendPayload appends the encoded form of c's cells to dst and returns the
// extended slice. The result decodes back with DecodePayload; EncodedSize
// bounds the growth for pre-allocation.
func AppendPayload(dst []byte, c *Chunk) []byte {
	var flags byte
	if c.Counts != nil {
		flags |= codecHasCounts
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(c.Keys)))
	prev := uint64(0)
	for i, k := range c.Keys {
		if i == 0 {
			dst = binary.AppendUvarint(dst, k)
		} else {
			dst = binary.AppendUvarint(dst, k-prev-1)
		}
		prev = k
	}
	for _, v := range c.Vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	if flags&codecHasCounts != 0 {
		for _, n := range c.Counts {
			dst = binary.AppendUvarint(dst, uint64(n))
		}
	}
	return dst
}

// EncodedSize returns an upper bound on AppendPayload's output for c, for
// sizing destination buffers.
func EncodedSize(c *Chunk) int {
	n := len(c.Keys)
	// flags + cells varint + worst-case 10-byte key deltas and counts + raw vals.
	return 1 + binary.MaxVarintLen64 + n*(2*binary.MaxVarintLen64+8)
}

// uvarint decodes a canonical (minimal-length) varint from src. Overlong
// encodings — a multi-byte varint whose final byte is zero — are rejected
// (n = 0) so that every chunk has exactly one encoding; the fuzz round-trip
// and snapshot checksums rely on that.
func uvarint(src []byte) (uint64, int) {
	v, n := binary.Uvarint(src)
	if n > 1 && src[n-1] == 0 {
		return 0, 0
	}
	return v, n
}

// DecodePayload reconstructs the chunk encoded by AppendPayload, stamping it
// with the given group-by and chunk number. It is safe on arbitrary input:
// corrupt, truncated or oversized payloads return an error wrapping ErrCodec
// without panicking, and allocation is bounded by the input length (a huge
// declared cell count is rejected before any allocation). Trailing bytes
// after a well-formed payload are an error, so framing bugs surface here.
func DecodePayload(gb lattice.ID, num int32, src []byte) (*Chunk, error) {
	if len(src) < 2 {
		return nil, errCodecShort
	}
	flags := src[0]
	if flags&^codecHasCounts != 0 {
		return nil, errCodecFlags
	}
	rest := src[1:]
	cells, n := uvarint(rest)
	if n <= 0 {
		return nil, errCodecVarint
	}
	rest = rest[n:]
	// Each cell needs at least one key-delta byte and eight val bytes (plus
	// one count byte when present), so a declared count beyond len(rest)/9
	// cannot be satisfied — reject before allocating.
	minPerCell := uint64(9)
	if flags&codecHasCounts != 0 {
		minPerCell = 10
	}
	if cells > uint64(len(rest))/minPerCell+1 {
		return nil, errCodecCells
	}
	c := &Chunk{GB: gb, Num: num}
	c.Keys = make([]uint64, cells)
	c.Vals = make([]float64, cells)
	prev := uint64(0)
	for i := uint64(0); i < cells; i++ {
		d, n := uvarint(rest)
		if n <= 0 {
			return nil, errCodecShort
		}
		rest = rest[n:]
		k := d
		if i > 0 {
			k = prev + 1 + d
			if k <= prev { // overflow wraps below the previous key
				return nil, errCodecKeys
			}
		}
		c.Keys[i] = k
		prev = k
	}
	if uint64(len(rest)) < cells*8 {
		return nil, errCodecShort
	}
	for i := uint64(0); i < cells; i++ {
		c.Vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
	}
	rest = rest[cells*8:]
	if flags&codecHasCounts != 0 {
		c.Counts = make([]int64, cells)
		for i := uint64(0); i < cells; i++ {
			v, n := uvarint(rest)
			if n <= 0 {
				return nil, errCodecShort
			}
			if v > math.MaxInt64 {
				return nil, errCodecCount
			}
			rest = rest[n:]
			c.Counts[i] = int64(v)
		}
	}
	if len(rest) != 0 {
		return nil, errCodecTrailing
	}
	return c, nil
}
