package chunk

import (
	"testing"

	"aggcache/internal/lattice"
)

// kernelFixture builds the shared micro-benchmark fixture: a fully populated
// base chunk plus the destination chunk coordinates one roll-up step above
// it. The grid is the same one the kernel unit tests use.
type kernelFixture struct {
	g      *Grid
	src    *Chunk     // base chunk 0, all 64 cells populated
	dstGB  lattice.ID // (Group, Store, Year) — 16-cell destination chunks
	dstNum int
}

func newKernelFixture(b testing.TB) *kernelFixture {
	g := rollupTestGrid(b)
	lat := g.Lattice()
	base := lat.Base()
	cm := NewCellMap()
	cap := g.CellCapacity(base, 0)
	for k := uint64(0); k < uint64(cap); k++ {
		cm.Add(k, float64(k%7+1))
	}
	src := cm.Build(base, 0)
	dstGB := lat.MustID(1, 1, 1)
	dstNum := g.DescendantChunk(base, 0, dstGB)
	return &kernelFixture{g: g, src: src, dstGB: dstGB, dstNum: dstNum}
}

// BenchmarkRollUpInto measures one roll-up of a dense 64-cell base chunk
// into its 16-cell destination — the aggregation kernel's unit of work.
// Allocations per op cover mapper lookup plus key translation.
func BenchmarkRollUpInto(b *testing.B) {
	f := newKernelFixture(b)
	cm := f.g.NewCellMap(f.dstGB, f.dstNum)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.g.RollUpInto(cm, f.dstGB, f.dstNum, f.src); err != nil {
			b.Fatalf("RollUpInto: %v", err)
		}
	}
}

// BenchmarkRollUpIntoWide is RollUpInto against the top chunk: every source
// cell collapses into one destination cell (the all-identity-dims extreme).
func BenchmarkRollUpIntoWide(b *testing.B) {
	f := newKernelFixture(b)
	top := f.g.Lattice().Top()
	cm := f.g.NewCellMap(top, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.g.RollUpInto(cm, top, 0, f.src); err != nil {
			b.Fatalf("RollUpInto: %v", err)
		}
	}
}

// BenchmarkCellMapBuild measures the accumulate-then-build cycle the engine
// runs per intermediate plan node: obtain an accumulator, add the source
// cells, build the result chunk, release everything. This is the pooled
// steady state (GetCellMap → BuildInto scratch → Put).
func BenchmarkCellMapBuild(b *testing.B) {
	f := newKernelFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm := f.g.GetCellMap(f.dstGB, f.dstNum)
		for k := uint64(0); k < 16; k++ {
			cm.AddCell(k, float64(k), 1)
		}
		c := cm.BuildInto(f.dstGB, f.dstNum, GetScratchChunk())
		if c.Cells() != 16 {
			b.Fatalf("built %d cells, want 16", c.Cells())
		}
		PutScratchChunk(c)
		PutCellMap(cm)
	}
}

// BenchmarkCellMapBuildFresh is the same cycle without pooling — what every
// plan node paid before accumulator reuse, and what retained results
// (Build) still pay by design.
func BenchmarkCellMapBuildFresh(b *testing.B) {
	f := newKernelFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm := f.g.NewCellMap(f.dstGB, f.dstNum)
		for k := uint64(0); k < 16; k++ {
			cm.AddCell(k, float64(k), 1)
		}
		c := cm.Build(f.dstGB, f.dstNum)
		if c.Cells() != 16 {
			b.Fatalf("built %d cells, want 16", c.Cells())
		}
	}
}

// BenchmarkGridSlice measures trimming a 64-cell chunk to a half-region.
func BenchmarkGridSlice(b *testing.B) {
	f := newKernelFixture(b)
	ranges := []Range{{0, 2}, {0, 4}, {0, 4}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := f.g.Slice(f.src, ranges)
		if out.Cells() == 0 {
			b.Fatalf("empty slice")
		}
	}
}

// BenchmarkGridSliceFull measures the no-trim case: every cell inside the
// requested ranges.
func BenchmarkGridSliceFull(b *testing.B) {
	f := newKernelFixture(b)
	ranges := []Range{{0, 4}, {0, 4}, {0, 4}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := f.g.Slice(f.src, ranges)
		if out.Cells() != f.src.Cells() {
			b.Fatalf("full slice dropped cells")
		}
	}
}
