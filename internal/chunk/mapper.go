package chunk

import (
	"fmt"
	"math"

	"aggcache/internal/lattice"
)

// fusedLimit is the largest source-chunk cell capacity for which the mapper
// tabulates the whole srcKey → dstKey translation into one lookup table
// (≤ 16 KiB per table). Larger sources use the per-dimension generic path.
const fusedLimit = 1 << 12

// mapperKey identifies one roll-up translation: source chunk (srcGB, srcNum)
// into its destination chunk at dstGB. The destination chunk number is not
// part of the key — a source chunk falls in exactly one destination chunk —
// so it is stored in the mapper and verified on every lookup instead.
type mapperKey struct {
	srcGB, dstGB lattice.ID
	srcNum       int32
}

// rollUpMapper is the precomputed key translation for rolling one source
// chunk's cells up into its destination chunk. Mappers are built once per
// (srcGB, srcNum, dstGB) and memoized on the Grid for the process lifetime:
// the translation depends only on the grid's immutable geometry (chunk
// coordinates, member ranges and hierarchy ancestors), never on chunk
// payloads, so cached mappers need no invalidation. Exactly one of the three
// translation forms is active, fastest first:
//
//   - copyThrough: source and destination coordinate spaces coincide (same
//     group-by, or every dimension translates identically) — keys pass
//     through untouched;
//   - fused: fused[srcKey] = dstKey, one table lookup per cell;
//   - generic: per-dimension decode restricted to the non-trivial dimensions
//     (source span > 1), with the constant contribution of span-1 dimensions
//     folded into base.
type rollUpMapper struct {
	dstNum      int32
	copyThrough bool
	fused       []uint32
	base        uint64
	spans       []uint64   // source spans of non-trivial dims, least-significant first
	strides     []uint64   // destination strides of those dims
	tables      [][]uint32 // tables[j][srcOff] = destination offset
}

// rollUpMapperFor returns the memoized mapper for rolling chunk srcNum of
// srcGB into chunk dstNum of dstGB, building and caching it on first use.
// Safe for concurrent use; concurrent first lookups may build the same
// mapper twice, with one copy winning — both are identical.
func (g *Grid) rollUpMapperFor(dstGB lattice.ID, dstNum int, srcGB lattice.ID, srcNum int) (*rollUpMapper, error) {
	key := mapperKey{srcGB: srcGB, dstGB: dstGB, srcNum: int32(srcNum)}
	g.mapMu.RLock()
	m := g.mappers[key]
	g.mapMu.RUnlock()
	if m == nil {
		var err error
		m, err = g.buildRollUpMapper(dstGB, srcGB, srcNum)
		if err != nil {
			return nil, err
		}
		g.mapMu.Lock()
		if prev, ok := g.mappers[key]; ok {
			m = prev
		} else {
			g.mappers[key] = m
		}
		g.mapMu.Unlock()
	}
	if int(m.dstNum) != dstNum {
		return nil, fmt.Errorf("chunk: source chunk %d of %s does not fall in chunk %d of %s",
			srcNum, g.lat.LevelTupleString(srcGB), dstNum, g.lat.LevelTupleString(dstGB))
	}
	return m, nil
}

// buildRollUpMapper constructs the translation tables for one (src chunk,
// dst group-by) pair and picks the fastest applicable form.
func (g *Grid) buildRollUpMapper(dstGB, srcGB lattice.ID, srcNum int) (*rollUpMapper, error) {
	if !g.lat.ComputableFrom(dstGB, srcGB) {
		return nil, fmt.Errorf("chunk: group-by %s is not computable from %s",
			g.lat.LevelTupleString(dstGB), g.lat.LevelTupleString(srcGB))
	}
	dstNum := g.DescendantChunk(srcGB, srcNum, dstGB)
	m := &rollUpMapper{dstNum: int32(dstNum)}
	if srcGB == dstGB {
		m.copyThrough = true
		return m, nil
	}

	nd := g.sch.NumDims()
	var sbuf, dbuf [16]int32
	srcCoords := g.Coords(srcGB, srcNum, sbuf[:0])
	dstCoords := g.Coords(dstGB, dstNum, dbuf[:0])
	srcSpans := make([]uint64, nd)
	dstStrides := make([]uint64, nd)
	tables := make([][]uint32, nd)
	dstSpans := make([]uint64, nd)
	for d := 0; d < nd; d++ {
		sl, dl := g.lat.LevelAt(srcGB, d), g.lat.LevelAt(dstGB, d)
		sr := g.MemberRange(d, sl, srcCoords[d])
		dr := g.MemberRange(d, dl, dstCoords[d])
		srcSpans[d] = uint64(sr.Hi - sr.Lo)
		dstSpans[d] = uint64(dr.Hi - dr.Lo)
		tab := make([]uint32, sr.Hi-sr.Lo)
		dim := g.sch.Dim(d)
		for off := range tab {
			anc := dim.Ancestor(sl, dl, sr.Lo+int32(off))
			tab[off] = uint32(anc - dr.Lo)
		}
		tables[d] = tab
	}
	srcCap, dstCap := uint64(1), uint64(1)
	stride := uint64(1)
	for d := nd - 1; d >= 0; d-- {
		dstStrides[d] = stride
		stride *= dstSpans[d]
		srcCap *= srcSpans[d]
		dstCap *= dstSpans[d]
	}

	// Fold span-1 source dimensions into a constant and keep the rest in
	// least-significant-first decode order.
	srcStride := uint64(1)
	identity := true
	for d := nd - 1; d >= 0; d-- {
		if srcSpans[d] == 1 {
			m.base += uint64(tables[d][0]) * dstStrides[d]
			continue
		}
		if dstStrides[d] != srcStride || !identityTable(tables[d]) {
			identity = false
		}
		m.spans = append(m.spans, srcSpans[d])
		m.strides = append(m.strides, dstStrides[d])
		m.tables = append(m.tables, tables[d])
		srcStride *= srcSpans[d]
	}
	if identity && m.base == 0 {
		// Every cell key maps to itself (the destination only collapses
		// span-1 dimensions) — the pure-copy path.
		m.copyThrough = true
		m.spans, m.strides, m.tables = nil, nil, nil
		return m, nil
	}
	if srcCap <= fusedLimit && dstCap <= math.MaxUint32 {
		fused := make([]uint32, srcCap)
		for k := uint64(0); k < srcCap; k++ {
			dk := m.base
			rem := k
			for j, span := range m.spans {
				off := rem % span
				rem /= span
				dk += uint64(m.tables[j][off]) * m.strides[j]
			}
			fused[k] = uint32(dk)
		}
		m.fused = fused
		m.spans, m.strides, m.tables = nil, nil, nil
	}
	return m, nil
}

// identityTable reports whether tab maps every offset to itself.
func identityTable(tab []uint32) bool {
	for off, v := range tab {
		if v != uint32(off) {
			return false
		}
	}
	return true
}
