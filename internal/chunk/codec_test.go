package chunk

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randChunk builds a chunk with n sorted distinct keys, random values and —
// when withCounts — per-cell counts, spread over a sparse key space.
func randChunk(rng *rand.Rand, n int, withCounts bool) *Chunk {
	c := &Chunk{GB: 3, Num: 7}
	key := uint64(0)
	for i := 0; i < n; i++ {
		key += 1 + uint64(rng.Intn(1<<uint(rng.Intn(20))))
		c.Keys = append(c.Keys, key)
		c.Vals = append(c.Vals, rng.NormFloat64()*1e6)
	}
	if withCounts {
		for range c.Keys {
			c.Counts = append(c.Counts, int64(rng.Intn(1_000_000)))
		}
	}
	return c
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		orig := randChunk(rng, rng.Intn(300), trial%2 == 0)
		enc := AppendPayload(nil, orig)
		if len(enc) > EncodedSize(orig) {
			t.Fatalf("trial %d: encoded %d bytes exceeds EncodedSize bound %d", trial, len(enc), EncodedSize(orig))
		}
		dec, err := DecodePayload(orig.GB, orig.Num, enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if dec.GB != orig.GB || dec.Num != orig.Num {
			t.Fatalf("trial %d: identity (%d,%d) != (%d,%d)", trial, dec.GB, dec.Num, orig.GB, orig.Num)
		}
		if len(dec.Keys) != len(orig.Keys) {
			t.Fatalf("trial %d: %d cells, want %d", trial, len(dec.Keys), len(orig.Keys))
		}
		for i := range orig.Keys {
			if dec.Keys[i] != orig.Keys[i] {
				t.Fatalf("trial %d: key[%d] = %d, want %d", trial, i, dec.Keys[i], orig.Keys[i])
			}
			if math.Float64bits(dec.Vals[i]) != math.Float64bits(orig.Vals[i]) {
				t.Fatalf("trial %d: val[%d] = %v, want %v", trial, i, dec.Vals[i], orig.Vals[i])
			}
		}
		if (dec.Counts == nil) != (orig.Counts == nil) && len(orig.Keys) > 0 {
			t.Fatalf("trial %d: counts presence lost", trial)
		}
		for i := range orig.Counts {
			if dec.Counts[i] != orig.Counts[i] {
				t.Fatalf("trial %d: count[%d] = %d, want %d", trial, i, dec.Counts[i], orig.Counts[i])
			}
		}
	}
}

// TestCodecSpecialValues pins NaN/Inf/negative-zero round-tripping (bit-exact
// floats) and the empty chunk.
func TestCodecSpecialValues(t *testing.T) {
	orig := &Chunk{GB: 1, Num: 2,
		Keys: []uint64{0, 1, math.MaxUint64 - 1, math.MaxUint64},
		Vals: []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)},
	}
	dec, err := DecodePayload(1, 2, AppendPayload(nil, orig))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range orig.Vals {
		if math.Float64bits(dec.Vals[i]) != math.Float64bits(orig.Vals[i]) {
			t.Fatalf("val[%d] bits differ", i)
		}
		if dec.Keys[i] != orig.Keys[i] {
			t.Fatalf("key[%d] = %d, want %d", i, dec.Keys[i], orig.Keys[i])
		}
	}

	empty, err := DecodePayload(0, 0, AppendPayload(nil, &Chunk{}))
	if err != nil {
		t.Fatalf("empty chunk: %v", err)
	}
	if len(empty.Keys) != 0 {
		t.Fatalf("empty chunk decoded %d cells", len(empty.Keys))
	}
}

// TestCodecCompresses pins the space win the cold tier is built on: a dense
// ascending key run must encode well under the 24 B/cell raw layout.
func TestCodecCompresses(t *testing.T) {
	c := &Chunk{GB: 0, Num: 0}
	for i := 0; i < 1000; i++ {
		c.Keys = append(c.Keys, uint64(i))
		c.Vals = append(c.Vals, float64(i))
	}
	enc := AppendPayload(nil, c)
	raw := len(c.Keys) * CellBytes
	if len(enc) >= raw/2 {
		t.Fatalf("dense chunk encoded to %d bytes, want < half of raw %d", len(enc), raw)
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	orig := randChunk(rng, 100, true)
	enc := AppendPayload(nil, orig)

	// Truncation at every prefix length must error, never panic.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodePayload(orig.GB, orig.Num, enc[:cut]); err == nil {
			// A prefix can only be valid if it is a complete encoding, which
			// a strict trailing-bytes check rules out for proper prefixes.
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		} else if !errors.Is(err, ErrCodec) {
			t.Fatalf("truncation to %d: error %v does not wrap ErrCodec", cut, err)
		}
	}

	// Trailing garbage is rejected.
	if _, err := DecodePayload(orig.GB, orig.Num, append(bytes.Clone(enc), 0xFF)); err == nil {
		t.Fatalf("trailing byte accepted")
	}

	// Unknown flag bits are rejected.
	bad := bytes.Clone(enc)
	bad[0] |= 0x80
	if _, err := DecodePayload(orig.GB, orig.Num, bad); err == nil {
		t.Fatalf("unknown flag bit accepted")
	}

	// An absurd cell count must be rejected before allocation.
	if _, err := DecodePayload(0, 0, []byte{0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}); err == nil {
		t.Fatalf("giant cell count accepted")
	}
}

// FuzzChunkCodec throws arbitrary bytes at the decoder (no panics, no
// over-allocation) and round-trips whatever decodes successfully.
func FuzzChunkCodec(f *testing.F) {
	rng := rand.New(rand.NewSource(17))
	f.Add([]byte{})
	f.Add(AppendPayload(nil, randChunk(rng, 40, false)))
	f.Add(AppendPayload(nil, randChunk(rng, 40, true)))
	f.Add([]byte{0x01, 0x05})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodePayload(2, 4, data)
		if err != nil {
			if !errors.Is(err, ErrCodec) {
				t.Fatalf("decode error %v does not wrap ErrCodec", err)
			}
			return
		}
		// Anything that decodes must re-encode to the identical bytes — the
		// codec has exactly one encoding per chunk.
		enc := AppendPayload(nil, c)
		if !bytes.Equal(enc, data) {
			t.Fatalf("re-encode mismatch: %d bytes in, %d out", len(data), len(enc))
		}
	})
}
